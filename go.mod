module tracer

go 1.22
