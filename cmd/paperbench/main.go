// Command paperbench regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic benchmark suite.
//
// Usage:
//
//	paperbench [-k 5] [-timeout 2s] [-iters 200] [-only table1,fig12,...]
//
// Without -only it runs everything, in the paper's order. Results that share
// the same (benchmark, client, k) run are computed once and cached.
//
// Beyond the paper's artifacts, two warm-start experiments measure the
// persistent clause store (internal/warm): fig12warm re-solves the whole
// Figure 12 workload against a freshly populated store, and editchain
// replays -editchain-steps single-statement edits of -editchain-bench,
// cold vs warm. -warm-dir warm-starts the paper tables themselves.
//
// Observability (see internal/obs and ARCHITECTURE.md):
//
//	-bench-json BENCH_paperbench.json
//	                       write per-experiment wall times and aggregated
//	                       solver metrics in the github-action-benchmark
//	                       {name, value, unit} JSON shape ("" disables); the
//	                       BENCH_*.json series accumulates the repo's perf
//	                       trajectory across PRs
//	-trace events.ndjson   write the per-query structured event stream
//	-metrics               print aggregated counters/gauges/timers at exit
//	-cpuprofile cpu.pprof  capture a pprof CPU profile of the whole run
//	-memprofile mem.pprof  write a pprof heap profile at exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"tracer/internal/bench"
	"tracer/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 5, "beam width k of the backward meta-analysis")
	timeout := flag.Duration("timeout", 2*time.Second, "per-query wall-clock budget")
	iters := flag.Int("iters", 200, "per-query CEGAR iteration cap")
	workers := flag.Int("workers", 1, "concurrent query resolutions (0/1 = sequential)")
	batchWorkers := flag.Int("batch-workers", 1, "worker pool of the grouped batch solver; results are identical for every value")
	fwdCache := flag.Int("fwd-cache", 0, "forward-run memo size of the batch experiment (0 = core default, negative disables); results are identical for every value")
	only := flag.String("only", "", "comma-separated subset: table1,fig12,fig13,table2,table3,table4,fig14,nullness,batch,fig12warm,editchain")
	warmDir := flag.String("warm-dir", "", "warm-start store directory for the table/figure runs (\"\" = cold); fig12warm and editchain always use their own store")
	editBench := flag.String("editchain-bench", "hedc", "benchmark the editchain experiment edits")
	editSteps := flag.Int("editchain-steps", 6, "number of single-statement edits in the editchain experiment")
	benchJSON := flag.String("bench-json", "BENCH_paperbench.json", "write github-action-benchmark {name,value,unit} JSON to this file (\"\" disables)")
	tracePath := flag.String("trace", "", "write NDJSON events of every CEGAR iteration to this file")
	metrics := flag.Bool("metrics", false, "print aggregated counters/gauges/timers at exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	// paperbench is a batch tool over an almost entirely transient heap: the
	// solver allocates short-lived DNF cubes and worklist entries at a high
	// rate while live data (intern tables, caches) stays small. The default
	// GOGC=100 therefore re-collects a tiny live set constantly and, on the
	// single-core CI runners, every collection steals directly from the
	// mutator. Trading memory headroom for throughput is the right call for a
	// benchmark regenerator; an explicit GOGC still wins (SetGCPercent is a
	// no-op when the variable is set).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
		}()
	}

	var sinks []obs.Recorder
	if *tracePath != "" {
		nd, err := obs.CreateNDJSON(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := nd.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
		}()
		sinks = append(sinks, nd)
	}
	var agg *obs.Agg
	if *benchJSON != "" || *metrics {
		agg = obs.NewAgg()
		sinks = append(sinks, agg)
	}

	// SIGINT cancels the in-flight experiment cooperatively; the loop below
	// then stops scheduling new experiments, so the bench JSON and NDJSON
	// trace of the completed ones are still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := bench.RunOptions{K: *k, MaxIters: *iters, Timeout: *timeout, Workers: *workers,
		BatchWorkers: *batchWorkers, FwdCacheSize: *fwdCache,
		Recorder: obs.Multi(sinks...), Context: ctx,
		WarmDir: *warmDir}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func() (string, error)
	}
	experiments := []experiment{
		{"table1", func() (string, error) {
			rows, err := bench.Table1()
			if err != nil {
				return "", err
			}
			return bench.RenderTable1(rows), nil
		}},
		// nullness runs before fig12 so its gated wall measures the
		// null-deref sweep cold; fig12's null-deref rows then reuse the
		// shared run cache, as tables 2-4 reuse fig12's runs.
		{"nullness", func() (string, error) {
			rows, err := bench.NullnessTable(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderNullnessTable(rows), nil
		}},
		{"fig12", func() (string, error) {
			rows, err := bench.Figure12(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure12(rows), nil
		}},
		{"fig13", func() (string, error) {
			rows, err := bench.Figure13(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure13(rows), nil
		}},
		{"table2", func() (string, error) {
			rows, err := bench.Table2(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderTable2(rows), nil
		}},
		{"table3", func() (string, error) {
			rows, err := bench.Table3(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderTable3(rows), nil
		}},
		{"table4", func() (string, error) {
			rows, err := bench.Table4(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderTable4(rows), nil
		}},
		{"fig14", func() (string, error) {
			rows, err := bench.Figure14(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure14(rows), nil
		}},
		{"batch", func() (string, error) {
			rows, err := bench.BatchTable(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderBatchTable(rows, *batchWorkers), nil
		}},
		{"fig12warm", func() (string, error) {
			dir, err := os.MkdirTemp("", "paperbench-warm-")
			if err != nil {
				return "", err
			}
			defer os.RemoveAll(dir)
			rows, err := bench.WarmTable(opts, dir)
			if err != nil {
				return "", err
			}
			return bench.RenderWarmTable(rows), nil
		}},
		{"editchain", func() (string, error) {
			var cfg *bench.Config
			for _, c := range bench.Suite() {
				if c.Name == *editBench {
					cc := c
					cfg = &cc
					break
				}
			}
			if cfg == nil {
				return "", fmt.Errorf("editchain: unknown benchmark %q", *editBench)
			}
			dir, err := os.MkdirTemp("", "paperbench-editchain-")
			if err != nil {
				return "", err
			}
			defer os.RemoveAll(dir)
			rows, err := bench.EditChainTable(*cfg, *editSteps, opts, dir)
			if err != nil {
				return "", err
			}
			return bench.RenderEditChainTable(cfg.Name, rows), nil
		}},
	}

	var entries []obs.BenchEntry
	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		if ctx.Err() != nil {
			fmt.Printf("[interrupted: skipping %s and later experiments]\n\n", e.name)
			break
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		wall := time.Since(start)
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v with k=%d, timeout=%v]\n\n", e.name, wall.Round(time.Millisecond), *k, *timeout)
		// The batch experiment runs under the grouped solver's own pool, so
		// its entry reports -batch-workers, not the per-query -workers knob.
		w := *workers
		if e.name == "batch" {
			w = *batchWorkers
		}
		entries = append(entries, obs.BenchEntry{
			Name:  "paperbench/" + e.name + "/wall",
			Value: float64(wall) / float64(time.Millisecond),
			Unit:  "ms",
			Extra: fmt.Sprintf("k=%d timeout=%v iters=%d workers=%d", *k, *timeout, *iters, w),
		})
	}

	if *benchJSON != "" {
		entries = append(entries, agg.BenchEntries("paperbench/obs/")...)
		if err := obs.WriteBenchJSON(*benchJSON, entries); err != nil {
			return err
		}
		fmt.Printf("[benchmark data written to %s]\n", *benchJSON)
	}
	if *metrics {
		fmt.Print(agg.Render())
	}
	return nil
}
