// Command paperbench regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic benchmark suite.
//
// Usage:
//
//	paperbench [-k 5] [-timeout 2s] [-iters 200] [-only table1,fig12,...]
//
// Without -only it runs everything, in the paper's order. Results that share
// the same (benchmark, client, k) run are computed once and cached.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tracer/internal/bench"
)

func main() {
	k := flag.Int("k", 5, "beam width k of the backward meta-analysis")
	timeout := flag.Duration("timeout", 2*time.Second, "per-query wall-clock budget")
	iters := flag.Int("iters", 200, "per-query CEGAR iteration cap")
	workers := flag.Int("workers", 1, "concurrent query resolutions (0/1 = sequential)")
	only := flag.String("only", "", "comma-separated subset: table1,fig12,fig13,table2,table3,table4,fig14")
	flag.Parse()

	opts := bench.RunOptions{K: *k, MaxIters: *iters, Timeout: *timeout, Workers: *workers}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func() (string, error)
	}
	experiments := []experiment{
		{"table1", func() (string, error) {
			rows, err := bench.Table1()
			if err != nil {
				return "", err
			}
			return bench.RenderTable1(rows), nil
		}},
		{"fig12", func() (string, error) {
			rows, err := bench.Figure12(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure12(rows), nil
		}},
		{"fig13", func() (string, error) {
			rows, err := bench.Figure13(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure13(rows), nil
		}},
		{"table2", func() (string, error) {
			rows, err := bench.Table2(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderTable2(rows), nil
		}},
		{"table3", func() (string, error) {
			rows, err := bench.Table3(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderTable3(rows), nil
		}},
		{"table4", func() (string, error) {
			rows, err := bench.Table4(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderTable4(rows), nil
		}},
		{"fig14", func() (string, error) {
			rows, err := bench.Figure14(opts)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure14(rows), nil
		}},
	}

	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v with k=%d, timeout=%v]\n\n", e.name, time.Since(start).Round(time.Millisecond), *k, *timeout)
	}
}
