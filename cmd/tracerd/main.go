// Command tracerd is the hardened solver daemon: an HTTP service that
// accepts solve requests (a serialized mini-IR program, a query, a budget),
// coalesces compatible requests into shared batch rounds, and survives
// overload, malformed input, and injected faults by degrading per-request
// instead of dying.
//
// Endpoints:
//
//	POST /solve    solve one query; see internal/server for the wire format
//	GET  /healthz  "ok", or 503 "draining" during shutdown
//	GET  /stats    JSON snapshot of the server.* counters
//
// Flags:
//
//	-addr :8791            listen address (use :0 for an ephemeral port; the
//	                       bound address is printed as "tracerd: listening on
//	                       <addr>", which scripts parse)
//	-batch-size 8          coalescing group size that fires a round
//	-max-wait 15ms         max wait before a partial group fires anyway
//	-queue-limit 256       accept-queue bound; beyond it requests get 429
//	-max-batches 4         concurrent batch rounds (executor pool size)
//	-max-request-bytes N   request body cap (default 1MiB); larger bodies 400
//	-default-timeout 5s    per-request budget when the request names none
//	-max-timeout 60s       cap on any request's timeout_ms
//	-max-iters 1000        cap on any request's max_iters
//	-tenant-rps 0          per-tenant sustained requests/second (0 = off)
//	-tenant-burst 10       per-tenant burst size
//	-workers N             solver workers per batch round
//	-fwd-cache N           cross-round forward-run memo entries per round
//	-prog-cache 32         loaded-program LRU entries
//	-warm-dir DIR          mount a persistent warm-start store
//	-access-log FILE       NDJSON access log: per-request event streams, each
//	                       terminated by exactly one query_resolved, plus
//	                       server.* counter records; flushed on shutdown
//	-metrics               print aggregated counters/timers after shutdown
//	-chaos-seed N          deterministic fault injection seed (0 = off)
//	-chaos-rate 0.02       fraction of hook points that fire under chaos
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — new requests get
// 503, queued and in-flight requests finish, the access log flushes, and the
// process exits 0. A second signal (or -drain-timeout) forces in-flight
// solves to trip their budgets cooperatively; the exit is still clean.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tracer/internal/faultinject"
	"tracer/internal/obs"
	"tracer/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracerd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8791", "listen address")
	batchSize := flag.Int("batch-size", 8, "coalescing group size that fires a batch round")
	maxWait := flag.Duration("max-wait", 15*time.Millisecond, "max wait before a partial group fires")
	queueLimit := flag.Int("queue-limit", 256, "accept-queue bound (beyond it: 429)")
	maxBatches := flag.Int("max-batches", 4, "concurrent batch rounds")
	maxReqBytes := flag.Int64("max-request-bytes", 1<<20, "request body size cap")
	defTimeout := flag.Duration("default-timeout", 5*time.Second, "per-request budget when unspecified")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on requested timeouts")
	maxIters := flag.Int("max-iters", 1000, "cap on requested CEGAR iterations")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant requests/second (0 = quotas off)")
	tenantBurst := flag.Int("tenant-burst", 10, "per-tenant burst")
	workers := flag.Int("workers", 0, "solver workers per batch round (0 = sequential)")
	fwdCache := flag.Int("fwd-cache", 0, "cross-round forward memo entries (0 = default)")
	progCache := flag.Int("prog-cache", 32, "loaded-program cache entries")
	warmDir := flag.String("warm-dir", "", "persistent warm-start store directory")
	accessLog := flag.String("access-log", "", "write the NDJSON access log to this file")
	metrics := flag.Bool("metrics", false, "print aggregated counters after shutdown")
	chaosSeed := flag.Int64("chaos-seed", 0, "deterministic fault injection seed (0 = off)")
	chaosRate := flag.Float64("chaos-rate", 0.02, "fraction of hook points that fire under chaos")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work at shutdown")
	flag.Parse()

	var sinks []obs.Recorder
	if *accessLog != "" {
		nd, err := obs.CreateNDJSON(*accessLog)
		if err != nil {
			return err
		}
		defer func() {
			if err := nd.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tracerd:", err)
			}
		}()
		sinks = append(sinks, nd)
	}
	var agg *obs.Agg
	if *metrics {
		agg = obs.NewAgg()
		sinks = append(sinks, agg)
	}

	var inj *faultinject.Injector
	if *chaosSeed != 0 {
		inj = faultinject.Seeded(*chaosSeed, *chaosRate)
		fmt.Fprintf(os.Stderr, "tracerd: chaos mode on (seed %d, rate %.3f)\n",
			*chaosSeed, *chaosRate)
	}

	srv := server.New(server.Config{
		BatchSize:            *batchSize,
		MaxWait:              *maxWait,
		QueueLimit:           *queueLimit,
		MaxConcurrentBatches: *maxBatches,
		MaxRequestBytes:      *maxReqBytes,
		DefaultTimeout:       *defTimeout,
		MaxTimeout:           *maxTimeout,
		MaxIters:             *maxIters,
		TenantRPS:            *tenantRPS,
		TenantBurst:          *tenantBurst,
		Workers:              *workers,
		FwdCacheSize:         *fwdCache,
		ProgCacheSize:        *progCache,
		WarmDir:              *warmDir,
		Recorder:             obs.Multi(sinks...),
		Inject:               inj,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Scripts parse this line to learn the bound (possibly ephemeral) port.
	fmt.Printf("tracerd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "tracerd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the solve pipeline first (new arrivals 503 while the listener is
	// still up — clients see the structured rejection, not a reset), then
	// close the HTTP side.
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "tracerd: forced drain:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if agg != nil {
		fmt.Print(agg.Render())
	}
	fmt.Fprintln(os.Stderr, "tracerd: drained, exiting")
	return nil
}
