// Command traceload is the load generator for tracerd: it replays queries
// from the internal/bench corpora against a running daemon at configurable
// concurrency and request rate, retries shed requests (429/503) with capped
// exponential backoff and seeded jitter, and reports per-status counts and
// latency percentiles. With -verify it computes local ground truth for every
// replayed query and fails when the daemon returns a wrong verdict — the
// check the chaos harness relies on: under fault injection a request may
// degrade to failed/exhausted or be shed, but a proved/impossible answer
// must never be wrong.
//
// Flags:
//
//	-addr HOST:PORT        tracerd address (required)
//	-bench tsp             corpus to replay (a name from the bench suite)
//	-client typestate      typestate | escape | nullness
//	-k 5                   beam width sent with every request
//	-n 64                  total requests to send
//	-concurrency 8         in-flight request cap
//	-qps 0                 target request rate (0 = as fast as possible)
//	-queries 0             replay only the first N queries of the corpus
//	-request-timeout 10s   per-request solver budget (timeout_ms)
//	-http-timeout 30s      HTTP client timeout per attempt
//	-max-retries 8         retry budget per request for 429/503/transport
//	-backoff 50ms          initial retry backoff (doubles per retry)
//	-backoff-cap 2s        backoff ceiling
//	-seed 1                jitter/backoff randomization seed
//	-tenant ""             X-Tenant header value
//	-verify                check proved/impossible verdicts and costs
//	                       against local core.Solve ground truth
//	-require-success       exit nonzero unless every request ends HTTP 200
//	                       with a non-failed solver status
//
// Exit status: 0 on a clean run; 1 on wrong verdicts, transport exhaustion,
// or (-require-success) any failed/shed request.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tracer/internal/bench"
	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr           string
	benchName      string
	client         string
	k              int
	n              int
	concurrency    int
	qps            float64
	maxQueries     int
	requestTimeout time.Duration
	httpTimeout    time.Duration
	maxRetries     int
	backoff        time.Duration
	backoffCap     time.Duration
	seed           int64
	tenant         string
	verify         bool
	requireSuccess bool
}

// outcome is the final fate of one replayed request.
type outcome struct {
	httpStatus   int    // 0 = transport failure after retries
	solverStatus string // for 200s
	wrongVerdict bool
	latency      time.Duration // arrival-to-final-answer, retries included
	retries      int
}

type truth struct {
	status string
	cost   int
}

func run() error {
	var o options
	flag.StringVar(&o.addr, "addr", "", "tracerd address (host:port)")
	flag.StringVar(&o.benchName, "bench", "tsp", "bench corpus to replay")
	flag.StringVar(&o.client, "client", "typestate", "client: "+strings.Join(driver.ClientNames(), "|"))
	flag.IntVar(&o.k, "k", 5, "beam width")
	flag.IntVar(&o.n, "n", 64, "total requests")
	flag.IntVar(&o.concurrency, "concurrency", 8, "in-flight request cap")
	flag.Float64Var(&o.qps, "qps", 0, "target request rate (0 = unpaced)")
	flag.IntVar(&o.maxQueries, "queries", 0, "replay only the first N corpus queries (0 = all)")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 10*time.Second, "per-request solver budget")
	flag.DurationVar(&o.httpTimeout, "http-timeout", 30*time.Second, "HTTP timeout per attempt")
	flag.IntVar(&o.maxRetries, "max-retries", 8, "retries per request on 429/503/transport errors")
	flag.DurationVar(&o.backoff, "backoff", 50*time.Millisecond, "initial retry backoff")
	flag.DurationVar(&o.backoffCap, "backoff-cap", 2*time.Second, "backoff ceiling")
	flag.Int64Var(&o.seed, "seed", 1, "jitter seed")
	flag.StringVar(&o.tenant, "tenant", "", "X-Tenant header")
	flag.BoolVar(&o.verify, "verify", false, "verify verdicts against local ground truth")
	flag.BoolVar(&o.requireSuccess, "require-success", false, "fail unless every request succeeds")
	flag.Parse()

	if o.addr == "" {
		return fmt.Errorf("-addr is required")
	}
	spec := driver.ClientByName(o.client)
	if spec == nil {
		return fmt.Errorf("unknown -client %q (want %s)", o.client, strings.Join(driver.ClientNames(), "|"))
	}
	cfg, err := findBench(o.benchName)
	if err != nil {
		return err
	}
	b := bench.MustLoad(cfg)
	nq := len(spec.Queries(b.Prog))
	if nq == 0 {
		return fmt.Errorf("bench %s has no %s queries", o.benchName, o.client)
	}
	if o.maxQueries > 0 && o.maxQueries < nq {
		nq = o.maxQueries
	}

	var truths []truth
	if o.verify {
		fmt.Fprintf(os.Stderr, "traceload: computing ground truth for %d queries\n", nq)
		truths = groundTruth(b, spec, o, nq)
	}

	fmt.Fprintf(os.Stderr, "traceload: %d requests, %d queries of %s/%s, concurrency %d\n",
		o.n, nq, o.benchName, o.client, o.concurrency)
	outcomes := fire(b, o, nq, truths)
	return report(o, outcomes)
}

func findBench(name string) (bench.Config, error) {
	var names []string
	for _, c := range bench.Suite() {
		if c.Name == name {
			return c, nil
		}
		names = append(names, c.Name)
	}
	return bench.Config{}, fmt.Errorf("unknown bench %q (want one of %s)",
		name, strings.Join(names, "|"))
}

// groundTruth solves each replayed query locally with the same per-query
// budget the daemon will get.
func groundTruth(b *bench.Benchmark, spec *driver.ClientSpec, o options, nq int) []truth {
	truths := make([]truth, nq)
	for i := 0; i < nq; i++ {
		job := spec.Job(b.Prog, i, o.k)
		r, err := core.Solve(job, core.Options{Timeout: o.requestTimeout})
		if err != nil {
			truths[i] = truth{status: "failed"}
			continue
		}
		truths[i] = truth{status: r.Status.String(), cost: r.Abstraction.Len()}
	}
	return truths
}

// fire replays o.n requests round-robin over the first nq corpus queries.
func fire(b *bench.Benchmark, o options, nq int, truths []truth) []outcome {
	client := &http.Client{
		Timeout: o.httpTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        o.concurrency,
			MaxIdleConnsPerHost: o.concurrency,
		},
	}
	outcomes := make([]outcome, o.n)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(worker)))
			for {
				i := int(next.Add(1) - 1)
				if i >= o.n {
					return
				}
				if o.qps > 0 {
					// Pace against the global schedule: request i is due at
					// start + i/qps.
					due := start.Add(time.Duration(float64(i) / o.qps * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				outcomes[i] = o.one(client, rng, b, i%nq, truths)
			}
		}(w)
	}
	wg.Wait()
	return outcomes
}

// one sends a single request, retrying shed (429/503) and transport-failed
// attempts with capped exponential backoff, jittered and honoring the
// server's Retry-After when it is shorter than the cap.
func (o options) one(client *http.Client, rng *rand.Rand, b *bench.Benchmark, qix int, truths []truth) outcome {
	body, _ := json.Marshal(server.SolveRequest{
		Program:   b.Source,
		Client:    o.client,
		Query:     fmt.Sprintf("#%d", qix),
		K:         o.k,
		TimeoutMS: int64(o.requestTimeout / time.Millisecond),
		Tenant:    o.tenant,
	})
	start := time.Now()
	var out outcome
	for attempt := 0; ; attempt++ {
		status, resp, retryMS, err := o.post(client, body)
		out.httpStatus = status
		out.latency = time.Since(start)
		switch {
		case err == nil && status == http.StatusOK:
			out.solverStatus = resp.Status
			if truths != nil && (resp.Status == "proved" || resp.Status == "impossible") {
				t := truths[qix]
				if resp.Status != t.status || (resp.Status == "proved" && resp.Cost != t.cost) {
					out.wrongVerdict = true
					fmt.Fprintf(os.Stderr,
						"traceload: WRONG VERDICT query #%d: got %s cost %d, want %s cost %d\n",
						qix, resp.Status, resp.Cost, t.status, t.cost)
				}
			}
			return out
		case err == nil && status != http.StatusTooManyRequests &&
			status != http.StatusServiceUnavailable:
			// 400 and friends: not retryable.
			return out
		}
		if attempt >= o.maxRetries {
			return out
		}
		out.retries++
		d := o.backoff << attempt
		if d > o.backoffCap || d <= 0 {
			d = o.backoffCap
		}
		if server := time.Duration(retryMS) * time.Millisecond; server > 0 && server < d {
			d = server
		}
		// Full jitter: a uniformly random fraction of the computed delay
		// decorrelates the retry herd after a shed burst.
		time.Sleep(time.Duration(rng.Int63n(int64(d) + 1)))
	}
}

// post sends one attempt. status 0 means a transport failure.
func (o options) post(client *http.Client, body []byte) (int, *server.SolveResponse, int64, error) {
	req, err := http.NewRequest(http.MethodPost, "http://"+o.addr+"/solve",
		bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if o.tenant != "" {
		req.Header.Set("X-Tenant", o.tenant)
	}
	hr, err := client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hr.Body, 1<<22))
	if err != nil {
		return 0, nil, 0, err
	}
	if hr.StatusCode == http.StatusOK {
		var resp server.SolveResponse
		if jerr := json.Unmarshal(data, &resp); jerr != nil {
			return 0, nil, 0, jerr
		}
		return hr.StatusCode, &resp, 0, nil
	}
	var eresp server.ErrorResponse
	_ = json.Unmarshal(data, &eresp)
	return hr.StatusCode, nil, eresp.RetryAfterMS, nil
}

// report prints the final per-status and latency summary and decides the
// exit status.
func report(o options, outcomes []outcome) error {
	httpCounts := map[int]int{}
	solverCounts := map[string]int{}
	var lat []time.Duration
	retries, wrong := 0, 0
	for _, out := range outcomes {
		httpCounts[out.httpStatus]++
		if out.solverStatus != "" {
			solverCounts[out.solverStatus]++
		}
		lat = append(lat, out.latency)
		retries += out.retries
		if out.wrongVerdict {
			wrong++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}

	fmt.Printf("traceload: %d requests, %d retries\n", len(outcomes), retries)
	var hs []int
	for s := range httpCounts {
		hs = append(hs, s)
	}
	sort.Ints(hs)
	for _, s := range hs {
		label := fmt.Sprintf("HTTP %d", s)
		if s == 0 {
			label = "transport failure"
		}
		fmt.Printf("  %-18s %d\n", label, httpCounts[s])
	}
	var ss []string
	for s := range solverCounts {
		ss = append(ss, s)
	}
	sort.Strings(ss)
	for _, s := range ss {
		fmt.Printf("  status %-11s %d\n", s, solverCounts[s])
	}
	fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond), pct(1.0).Round(time.Millisecond))
	if wrong > 0 {
		return fmt.Errorf("%d wrong verdicts", wrong)
	}
	if o.requireSuccess {
		bad := 0
		for _, out := range outcomes {
			if out.httpStatus != http.StatusOK || out.solverStatus == "failed" {
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d of %d requests did not succeed", bad, len(outcomes))
		}
	}
	if httpCounts[0] > 0 {
		return fmt.Errorf("%d transport failures", httpCounts[0])
	}
	return nil
}
