// Command benchhistory maintains the committed perf-trajectory ledger:
// BENCH_HISTORY.json, an append-only series of per-commit paperbench
// measurements, and the trend table it renders into EXPERIMENTS.md.
//
// Modes:
//
//	benchhistory                      # append: record BENCH_paperbench.json
//	                                  # under the current commit and rewrite
//	                                  # the trend table (make bench-history)
//	benchhistory -verify              # CI gate: the ledger parses, stays
//	                                  # append-only consistent, its last entry
//	                                  # matches the committed measurement, and
//	                                  # the rendered table is current
//	benchhistory -backfill            # rebuild the ledger from every commit
//	                                  # that touched the measurement file
//
// Append mode is idempotent per commit: re-measuring on the same commit
// replaces that commit's entry instead of growing the ledger; entries for
// earlier commits are never rewritten. The tracked series are the gated
// experiment walls — the long-lived numbers worth trending; per-run obs
// counters stay in BENCH_paperbench.json only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

// defaultKeys are the trended series: every experiment wall the perf gate
// or the docs quote.
const defaultKeys = "paperbench/fig12/wall,paperbench/fig13/wall,paperbench/nullness/wall,paperbench/batch/wall,paperbench/fig12warm/wall,paperbench/editchain/wall"

const (
	markBegin = "<!-- bench-history:begin -->"
	markEnd   = "<!-- bench-history:end -->"
)

type benchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// histEntry is one commit's measurement of the tracked series.
type histEntry struct {
	Commit string             `json:"commit"`
	Date   string             `json:"date"`
	Series map[string]float64 `json:"series"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchhistory: "+format+"\n", args...)
	os.Exit(1)
}

func loadBench(data []byte, keys []string) (map[string]float64, error) {
	var es []benchEntry
	if err := json.Unmarshal(data, &es); err != nil {
		return nil, err
	}
	byName := make(map[string]float64, len(es))
	for _, e := range es {
		byName[e.Name] = e.Value
	}
	out := map[string]float64{}
	for _, k := range keys {
		if v, ok := byName[k]; ok {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tracked series present")
	}
	return out, nil
}

func loadHistory(path string) ([]histEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var h []histEntry
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return h, nil
}

func writeHistory(path string, h []histEntry) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func git(args ...string) (string, error) {
	out, err := exec.Command("git", args...).Output()
	if err != nil {
		return "", fmt.Errorf("git %s: %w", strings.Join(args, " "), err)
	}
	return strings.TrimSpace(string(out)), nil
}

// shortName projects "paperbench/fig12/wall" to "fig12" for table headers.
func shortName(key string) string {
	parts := strings.Split(key, "/")
	if len(parts) >= 2 {
		return parts[len(parts)-2]
	}
	return key
}

// renderTable renders the ledger as the markdown trend table, newest last
// so the table reads as a trajectory.
func renderTable(h []histEntry, keys []string) string {
	var b strings.Builder
	b.WriteString("| Commit | Date |")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s |", shortName(k))
	}
	b.WriteString("\n|---|---|")
	for range keys {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for _, e := range h {
		fmt.Fprintf(&b, "| %s | %s |", e.Commit, e.Date)
		for _, k := range keys {
			if v, ok := e.Series[k]; ok {
				fmt.Fprintf(&b, " %.0f ms |", v)
			} else {
				b.WriteString(" — |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// spliceDoc replaces the region between the trend markers.
func spliceDoc(doc, table string) (string, error) {
	begin := strings.Index(doc, markBegin)
	end := strings.Index(doc, markEnd)
	if begin < 0 || end < 0 || end < begin {
		return "", fmt.Errorf("trend markers %q/%q not found", markBegin, markEnd)
	}
	return doc[:begin+len(markBegin)] + "\n" + table + doc[end:], nil
}

// checkLedger validates the append-only invariants: unique commits and
// non-decreasing dates (ISO dates compare lexically).
func checkLedger(h []histEntry) error {
	seen := map[string]bool{}
	for i, e := range h {
		if e.Commit == "" || e.Date == "" {
			return fmt.Errorf("entry %d: missing commit or date", i)
		}
		if seen[e.Commit] {
			return fmt.Errorf("entry %d: duplicate commit %s", i, e.Commit)
		}
		seen[e.Commit] = true
		if i > 0 && e.Date < h[i-1].Date {
			return fmt.Errorf("entry %d: date %s precedes %s", i, e.Date, h[i-1].Date)
		}
	}
	return nil
}

func main() {
	benchPath := flag.String("bench", "BENCH_paperbench.json", "measurement JSON (cmd/paperbench -bench-json)")
	histPath := flag.String("history", "BENCH_HISTORY.json", "append-only ledger")
	docPath := flag.String("doc", "EXPERIMENTS.md", "doc holding the trend table markers")
	keysFlag := flag.String("keys", defaultKeys, "comma-separated tracked series")
	verify := flag.Bool("verify", false, "validate ledger + table instead of appending")
	backfill := flag.Bool("backfill", false, "rebuild the ledger from the measurement file's git history")
	commit := flag.String("commit", "", "commit id to record (default: git rev-parse --short HEAD)")
	date := flag.String("date", "", "commit date to record (default: git show -s --format=%cs)")
	flag.Parse()

	var keys []string
	for _, k := range strings.Split(*keysFlag, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}

	hist, err := loadHistory(*histPath)
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *verify:
		if len(hist) == 0 {
			fatalf("%s is missing or empty", *histPath)
		}
		if err := checkLedger(hist); err != nil {
			fatalf("ledger: %v", err)
		}
		data, err := os.ReadFile(*benchPath)
		if err != nil {
			fatalf("%v", err)
		}
		series, err := loadBench(data, keys)
		if err != nil {
			fatalf("%s: %v", *benchPath, err)
		}
		last := hist[len(hist)-1]
		for k, v := range series {
			if got, ok := last.Series[k]; !ok || got != v {
				fatalf("ledger is stale: last entry (%s) has %s = %v, committed measurement has %v — run `make bench-history`",
					last.Commit, k, got, v)
			}
		}
		doc, err := os.ReadFile(*docPath)
		if err != nil {
			fatalf("%v", err)
		}
		want, err := spliceDoc(string(doc), renderTable(hist, keys))
		if err != nil {
			fatalf("%s: %v", *docPath, err)
		}
		if string(doc) != want {
			fatalf("%s trend table is stale — run `make bench-history`", *docPath)
		}
		fmt.Printf("benchhistory: OK (%d entries, last %s %s)\n", len(hist), last.Commit, last.Date)
		return

	case *backfill:
		commits, err := git("log", "--reverse", "--format=%h %cs", "--", *benchPath)
		if err != nil {
			fatalf("%v", err)
		}
		hist = nil
		for _, line := range strings.Split(commits, "\n") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			blob, err := git("show", fields[0]+":"+*benchPath)
			if err != nil {
				continue // commit deleted or predates the file
			}
			series, err := loadBench([]byte(blob), keys)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchhistory: skipping %s: %v\n", fields[0], err)
				continue
			}
			hist = append(hist, histEntry{Commit: fields[0], Date: fields[1], Series: series})
		}
		if err := checkLedger(hist); err != nil {
			fatalf("backfilled ledger: %v", err)
		}

	default:
		data, err := os.ReadFile(*benchPath)
		if err != nil {
			fatalf("%v", err)
		}
		series, err := loadBench(data, keys)
		if err != nil {
			fatalf("%s: %v", *benchPath, err)
		}
		c, d := *commit, *date
		if c == "" {
			if c, err = git("rev-parse", "--short", "HEAD"); err != nil {
				fatalf("%v", err)
			}
		}
		if d == "" {
			if d, err = git("show", "-s", "--format=%cs", "HEAD"); err != nil {
				fatalf("%v", err)
			}
		}
		e := histEntry{Commit: c, Date: d, Series: series}
		if n := len(hist); n > 0 && hist[n-1].Commit == c {
			hist[n-1] = e // idempotent re-measure of the same commit
		} else {
			hist = append(hist, e)
		}
		if err := checkLedger(hist); err != nil {
			fatalf("ledger: %v", err)
		}
	}

	if err := writeHistory(*histPath, hist); err != nil {
		fatalf("%v", err)
	}
	doc, err := os.ReadFile(*docPath)
	if err != nil {
		fatalf("%v", err)
	}
	out, err := spliceDoc(string(doc), renderTable(hist, keys))
	if err != nil {
		fatalf("%s: %v", *docPath, err)
	}
	if err := os.WriteFile(*docPath, []byte(out), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("benchhistory: recorded %d entries; trend table updated\n", len(hist))
}
