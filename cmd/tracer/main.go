// Command tracer runs the optimum-abstraction search on a mini-IR program.
//
// It answers the program's explicit queries ("query name local(v)" and
// "query name state(v: s1 s2 ...)") and, with -auto, also the pervasively
// generated queries of the paper's evaluation (§6): a type-state query per
// call site and a thread-escape query per field access.
//
// Usage:
//
//	tracer [-k 5] [-timeout 5s] [-auto] [-property file] program.tir
//
// The -property flag selects the automaton for explicit type-state queries:
// "file" (open/close protocol) or "stress" (the paper's fictitious
// evaluation property).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/explain"
	"tracer/internal/typestate"
)

func main() {
	k := flag.Int("k", 5, "beam width k of the backward meta-analysis")
	timeout := flag.Duration("timeout", 5*time.Second, "per-query wall-clock budget")
	auto := flag.Bool("auto", false, "also answer pervasively generated queries (§6)")
	engine := flag.String("engine", "inline", "forward engine: inline (context-sensitive inlining) or rhs (summary-based tabulation; supports recursion)")
	explainFlag := flag.Bool("explain", false, "narrate each CEGAR iteration (trace with α/ψ annotations, as in Figs 1 and 6)")
	property := flag.String("property", "file", "automaton for explicit type-state queries: file|stress")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracer [flags] program.tir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	opts := core.Options{MaxIters: 1000, Timeout: *timeout}

	var prop *typestate.Property
	switch *property {
	case "file":
		prop = typestate.FileProperty()
	case "stress":
		prop = typestate.StressProperty(nil)
	default:
		fail(fmt.Errorf("unknown -property %q", *property))
	}

	if *engine == "rhs" {
		runRHS(string(src), prop, *k, opts)
		return
	}
	prog, err := driver.Load(string(src))
	if err != nil {
		fail(err)
	}

	report := func(name string, job core.Problem, paramName func(i int) string) {
		start := time.Now()
		res, err := core.Solve(job, opts)
		if err != nil {
			fail(err)
		}
		switch res.Status {
		case core.Proved:
			names := make([]string, 0, res.Abstraction.Len())
			for _, i := range res.Abstraction.Elems() {
				names = append(names, paramName(i))
			}
			fmt.Printf("%-40s PROVED    cheapest abstraction (|p|=%d): %v  [%d iterations, %v]\n",
				name, res.Abstraction.Len(), names, res.Iterations, time.Since(start).Round(time.Millisecond))
		case core.Impossible:
			fmt.Printf("%-40s IMPOSSIBLE  no abstraction in the family proves it  [%d iterations, %v]\n",
				name, res.Iterations, time.Since(start).Round(time.Millisecond))
		default:
			fmt.Printf("%-40s UNRESOLVED  budget exhausted after %d iterations\n", name, res.Iterations)
		}
	}

	// Explicit queries.
	tsJobs, err := prog.ExplicitTypestateJobs(prop, *k)
	if err != nil {
		fail(err)
	}
	for _, name := range sortedKeys(tsJobs) {
		job := tsJobs[name]
		if *explainFlag {
			fmt.Printf("=== query %s ===\n", name)
			if _, err := explain.ForTypestate(job, os.Stdout).Solve(opts); err != nil {
				fail(err)
			}
			fmt.Println()
			continue
		}
		report("query "+name, job, job.ParamName)
	}
	escJobs := prog.ExplicitEscapeJobs(*k)
	for _, name := range sortedKeys(escJobs) {
		job := escJobs[name]
		if *explainFlag {
			fmt.Printf("=== query %s ===\n", name)
			if _, err := explain.ForEscape(job, os.Stdout).Solve(opts); err != nil {
				fail(err)
			}
			fmt.Println()
			continue
		}
		report("query "+name, job, job.ParamName)
	}

	if *auto {
		stats := prog.ComputeStats(string(src))
		fmt.Printf("\nGenerated queries (N_ts=%d variables, N_esc=%d sites):\n", stats.TypestateParams, stats.EscapeParams)
		for _, q := range prog.TypestateQueries() {
			job := prog.TypestateJob(q, *k)
			report(q.ID, job, job.ParamName)
		}
		for _, q := range prog.EscapeQueries() {
			job := prog.EscapeJob(q, *k)
			report(q.ID, job, job.ParamName)
		}
	}
}

// runRHS answers the program's explicit queries with the summary-based
// tabulation backend, which also handles recursive call graphs.
func runRHS(src string, prop *typestate.Property, k int, opts core.Options) {
	p, err := driver.LoadRHS(src)
	if err != nil {
		fail(err)
	}
	jobs, err := p.ExplicitJobs(prop, k)
	if err != nil {
		fail(err)
	}
	names := make([]string, 0, len(jobs))
	for name := range jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		job := jobs[name]
		start := time.Now()
		res, err := core.Solve(job, opts)
		if err != nil {
			fail(err)
		}
		paramName := func(i int) string { return fmt.Sprintf("p%d", i) }
		switch j := job.(type) {
		case *driver.RHSEscapeJob:
			paramName = j.ParamName
		case *driver.RHSTypestateJob:
			paramName = j.ParamName
		}
		switch res.Status {
		case core.Proved:
			var params []string
			for _, i := range res.Abstraction.Elems() {
				params = append(params, paramName(i))
			}
			fmt.Printf("%-40s PROVED    cheapest abstraction (|p|=%d): %v  [%d iterations, %v]\n",
				"query "+name, res.Abstraction.Len(), params, res.Iterations, time.Since(start).Round(time.Millisecond))
		case core.Impossible:
			fmt.Printf("%-40s IMPOSSIBLE  no abstraction in the family proves it  [%d iterations, %v]\n",
				"query "+name, res.Iterations, time.Since(start).Round(time.Millisecond))
		default:
			fmt.Printf("%-40s UNRESOLVED  budget exhausted after %d iterations\n", "query "+name, res.Iterations)
		}
	}
}

func sortedKeys[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracer:", err)
	os.Exit(1)
}
