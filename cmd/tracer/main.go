// Command tracer runs the optimum-abstraction search on a mini-IR program.
//
// It answers the program's explicit queries ("query name local(v)" and
// "query name state(v: s1 s2 ...)") and, with -auto, also the pervasively
// generated queries of the paper's evaluation (§6): a type-state query per
// call site, and a thread-escape and a null-dereference query per field
// access.
//
// Usage:
//
//	tracer [-k 5] [-timeout 5s] [-auto] [-batch] [-batch-workers 4] [-warm-dir DIR] [-property file] program.tir
//
// With -auto -batch the generated queries go through the grouped
// multi-query solver (§6): queries whose learned clause sets coincide share
// forward runs, and -batch-workers schedules independent groups in
// parallel. Results are identical for every worker count.
//
// With -warm-dir the generated queries are warm-started from a persistent
// clause store (internal/warm): a later invocation on the same — or a
// slightly edited — program seeds each query with the previously learned
// blocking clauses that survive the IR delta, and saves what it learns back.
//
// The -property flag selects the automaton for explicit type-state queries:
// "file" (open/close protocol) or "stress" (the paper's fictitious
// evaluation property).
//
// Observability (see internal/obs and ARCHITECTURE.md):
//
//	-trace events.ndjson   write the structured event stream of every CEGAR
//	                       iteration (iter_start, forward_done, backward_done,
//	                       clause_learned, query_resolved, and the failure
//	                       events budget_trip / panic_recovered) plus inline
//	                       counter/gauge/timing records, one JSON object per
//	                       line, tagged with the query name
//	-metrics               print the aggregated counters, gauges, and timers
//	                       after all queries resolve
//	-cpuprofile cpu.pprof  capture a pprof CPU profile of the whole run
//	-memprofile mem.pprof  write a pprof heap profile at exit
//
// Failure model (see ARCHITECTURE.md "Failure model & cancellation"):
//
//	SIGINT                 cancels the solve cooperatively: in-flight phases
//	                       abort at their next budget poll, unresolved
//	                       queries report UNRESOLVED, and the NDJSON trace is
//	                       flushed before exit
//	-chaos-seed N          enable deterministic fault injection: panics,
//	                       delays, and budget trips fire pseudo-randomly at
//	                       the solver's hook points, reproducibly in the seed
//	                       (0 disables; see internal/faultinject)
//	-chaos-rate R          fraction of hook points that fire (default 0.05)
//
// Differential fuzzing (see "Ground truth & fuzzing" in ARCHITECTURE.md):
//
//	tracer -fuzz-n 10000 [-fuzz-seed 1] [-fuzz-meta]
//
// runs the brute-force oracle of internal/oracle on that many generated
// programs per client (type-state, thread-escape, and nullness) instead of
// analyzing a program file. Case i derives from seed+i, so every reported discrepancy
// replays in isolation; -fuzz-meta adds the metamorphic checks (parameter
// permutation, padding, batch worker/cache invariance). Exit status is
// nonzero iff a discrepancy survived shrinking.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/explain"
	"tracer/internal/faultinject"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/oracle"
	"tracer/internal/typestate"
	"tracer/internal/uset"
	"tracer/internal/warm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 5, "beam width k of the backward meta-analysis")
	timeout := flag.Duration("timeout", 5*time.Second, "per-query wall-clock budget")
	auto := flag.Bool("auto", false, "also answer pervasively generated queries (§6)")
	batch := flag.Bool("batch", false, "resolve -auto queries through the grouped multi-query solver (§6) instead of one at a time")
	batchWorkers := flag.Int("batch-workers", 1, "worker pool of the grouped solver; results are identical for every value")
	warmDir := flag.String("warm-dir", "", "persistent warm-start store for -auto queries (internal/warm): learned clauses are loaded at start and saved at exit, keyed by the program's IR fingerprint")
	engine := flag.String("engine", "inline", "forward engine: inline (context-sensitive inlining) or rhs (summary-based tabulation; supports recursion)")
	explainFlag := flag.Bool("explain", false, "narrate each CEGAR iteration (trace with α/ψ annotations, as in Figs 1 and 6)")
	property := flag.String("property", "file", "automaton for explicit type-state queries: file|stress")
	tracePath := flag.String("trace", "", "write NDJSON events of every CEGAR iteration to this file")
	metrics := flag.Bool("metrics", false, "print aggregated counters/gauges/timers after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	chaosSeed := flag.Int64("chaos-seed", 0, "enable deterministic fault injection with this seed (0 = off)")
	chaosRate := flag.Float64("chaos-rate", 0.05, "fraction of hook points that fire under -chaos-seed")
	fuzzSeed := flag.Int64("fuzz-seed", 1, "base seed of the differential fuzzer; case i uses seed+i")
	fuzzN := flag.Int("fuzz-n", 0, "run the differential oracle on this many generated cases per client instead of analyzing a program (0 = off)")
	fuzzMeta := flag.Bool("fuzz-meta", false, "also run the metamorphic checks (permutation, padding, batch invariance) on every fuzz case")
	flag.Parse()

	if *fuzzN > 0 {
		return runFuzz(*fuzzSeed, *fuzzN, *fuzzMeta)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracer [flags] program.tir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracer:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tracer:", err)
			}
		}()
	}

	var sinks []obs.Recorder
	if *tracePath != "" {
		nd, err := obs.CreateNDJSON(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := nd.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tracer:", err)
			}
		}()
		sinks = append(sinks, nd)
	}
	var agg *obs.Agg
	if *metrics {
		agg = obs.NewAgg()
		sinks = append(sinks, agg)
	}
	rec := obs.Multi(sinks...)
	// SIGINT cancels cooperatively: in-flight phases abort at their next
	// budget poll, partial results are printed, and the deferred NDJSON
	// close above still flushes the trace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := core.Options{MaxIters: 1000, Timeout: *timeout, Context: ctx}
	if *chaosSeed != 0 {
		opts.Inject = faultinject.Seeded(*chaosSeed, *chaosRate)
		fmt.Printf("[chaos: injecting faults at ~%.0f%% of hook points, seed %d]\n", *chaosRate*100, *chaosSeed)
	}

	var prop *typestate.Property
	switch *property {
	case "file":
		prop = typestate.FileProperty()
	case "stress":
		prop = typestate.StressProperty(nil)
	default:
		return fmt.Errorf("unknown -property %q", *property)
	}

	opts.Workers = *batchWorkers

	if *engine == "rhs" {
		if err := runRHS(string(src), prop, *k, opts, rec); err != nil {
			return err
		}
	} else {
		if err := runInline(string(src), prop, *k, opts, rec, *auto, *batch, *explainFlag, *warmDir); err != nil {
			return err
		}
	}

	if agg != nil {
		fmt.Print(agg.Render())
	}
	return nil
}

// runFuzz cross-checks the CEGAR loop against the brute-force oracle on
// seeded generated programs for every client, printing every discrepancy
// (already minimized by the deterministic shrinker) with its replay seed.
func runFuzz(seed int64, n int, meta bool) error {
	opts := oracle.FuzzOptions{Seed: seed, N: n, Meta: meta}
	var total int
	for _, client := range []struct {
		name string
		run  func(oracle.FuzzOptions) []oracle.Discrepancy
	}{
		{"typestate", oracle.FuzzTypestate},
		{"escape", oracle.FuzzEscape},
		{"nullness", oracle.FuzzNullness},
	} {
		start := time.Now()
		ds := client.run(opts)
		fmt.Printf("fuzz %-9s  %d cases, seed %d, meta=%v: %d discrepancies  [%v]\n",
			client.name, n, seed, meta, len(ds), time.Since(start).Round(time.Millisecond))
		for _, d := range ds {
			fmt.Println(d)
		}
		total += len(ds)
	}
	if total > 0 {
		return fmt.Errorf("%d oracle discrepancies", total)
	}
	return nil
}

// runInline answers queries through the context-sensitive inlining engine.
func runInline(src string, prop *typestate.Property, k int, opts core.Options, rec obs.Recorder, auto, batch, explainFlag bool, warmDir string) error {
	prog, err := driver.Load(src)
	if err != nil {
		return err
	}

	report := func(name string, job core.Problem, paramName func(i int) string) error {
		qopts := opts
		qopts.Recorder = obs.Tag(rec, name)
		start := time.Now()
		res, err := core.Solve(job, qopts)
		if err != nil {
			return err
		}
		printResult(name, res, paramName, time.Since(start))
		return nil
	}

	// Explicit queries.
	tsJobs, err := prog.ExplicitTypestateJobs(prop, k)
	if err != nil {
		return err
	}
	for _, name := range sortedKeys(tsJobs) {
		job := tsJobs[name]
		if explainFlag {
			fmt.Printf("=== query %s ===\n", name)
			if _, err := explain.ForTypestate(job, os.Stdout).Solve(opts); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if err := report("query "+name, job, job.ParamName); err != nil {
			return err
		}
	}
	escJobs := prog.ExplicitEscapeJobs(k)
	for _, name := range sortedKeys(escJobs) {
		job := escJobs[name]
		if explainFlag {
			fmt.Printf("=== query %s ===\n", name)
			if _, err := explain.ForEscape(job, os.Stdout).Solve(opts); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if err := report("query "+name, job, job.ParamName); err != nil {
			return err
		}
	}

	if auto {
		stats := prog.ComputeStats(src)
		fmt.Printf("\nGenerated queries (N_ts=%d variables, N_esc=%d sites, N_null=%d cells):\n",
			stats.TypestateParams, stats.EscapeParams, stats.NullnessParams)
		// The warm store applies to the generated queries only: explicit
		// queries have no position-independent key. Sessions are created
		// lazily per client so a typestate-only program writes no escape
		// snapshot.
		store := warm.Open(warmDir, rec)
		session := func(cl warm.Client) *warm.Session {
			if !store.Enabled() {
				return nil
			}
			return store.Session(prog, warm.Config{
				Client: cl, K: k, MaxIters: opts.MaxIters, Timeout: opts.Timeout,
			})
		}
		if batch {
			return runBatch(prog, k, opts, rec, session)
		}
		solveWarm := func(q string, key string, sess *warm.Session, job core.Problem, paramName func(i int) string) error {
			if sess != nil {
				if r, ok := sess.Replay(key); ok {
					printResult(q, r, paramName, 0)
					return nil
				}
			}
			qopts := opts
			qopts.Recorder = obs.Tag(rec, q)
			if sess != nil {
				qopts.Seed = sess.SeedFor(key)
				qopts.OnLearn = func(_ int, _ uset.Set, t lang.Trace, cubes []core.ParamCube) {
					sess.RecordLearn(key, t, cubes)
				}
			}
			start := time.Now()
			res, err := core.Solve(job, qopts)
			if err != nil {
				return err
			}
			if sess != nil {
				sess.RecordResult(key, res)
			}
			printResult(q, res, paramName, time.Since(start))
			return nil
		}
		tsSess := session(warm.Typestate)
		for _, q := range prog.TypestateQueries() {
			job := prog.TypestateJob(q, k)
			if err := solveWarm(q.ID, q.Key, tsSess, job, job.ParamName); err != nil {
				return err
			}
		}
		if tsSess != nil {
			if err := tsSess.Save(); err != nil {
				return err
			}
		}
		escSess := session(warm.Escape)
		for _, q := range prog.EscapeQueries() {
			job := prog.EscapeJob(q, k)
			if err := solveWarm(q.ID, q.Key, escSess, job, job.ParamName); err != nil {
				return err
			}
		}
		if escSess != nil {
			if err := escSess.Save(); err != nil {
				return err
			}
		}
		nullSess := session(warm.Nullness)
		for _, q := range prog.NullnessQueries() {
			job := prog.NullnessJob(q, k)
			if err := solveWarm(q.ID, q.Key, nullSess, job, job.ParamName); err != nil {
				return err
			}
		}
		if nullSess != nil {
			if err := nullSess.Save(); err != nil {
				return err
			}
		}
	}
	return nil
}

// runBatch resolves the generated queries through the grouped multi-query
// solver of §6: queries with identical learned-clause sets share forward
// runs, and opts.Workers schedules independent groups in parallel.
func runBatch(prog *driver.Program, k int, opts core.Options, rec obs.Recorder, session func(warm.Client) *warm.Session) error {
	tsQueries := prog.TypestateQueries()
	escQueries := prog.EscapeQueries()
	type batchCase struct {
		ids, keys []string
		paramName func(i int) string
		problem   core.BatchProblem
		sess      *warm.Session
	}
	cases := []batchCase{}
	if len(tsQueries) > 0 {
		ids := make([]string, len(tsQueries))
		keys := make([]string, len(tsQueries))
		for i, q := range tsQueries {
			ids[i], keys[i] = q.ID, q.Key
		}
		job := prog.TypestateJob(tsQueries[0], k)
		cases = append(cases, batchCase{ids, keys, job.ParamName, driver.NewTypestateBatch(prog, tsQueries, k), session(warm.Typestate)})
	}
	if len(escQueries) > 0 {
		ids := make([]string, len(escQueries))
		keys := make([]string, len(escQueries))
		for i, q := range escQueries {
			ids[i], keys[i] = q.ID, q.Key
		}
		job := prog.EscapeJob(escQueries[0], k)
		cases = append(cases, batchCase{ids, keys, job.ParamName, driver.NewEscapeBatch(prog, escQueries, k), session(warm.Escape)})
	}
	if nullQueries := prog.NullnessQueries(); len(nullQueries) > 0 {
		ids := make([]string, len(nullQueries))
		keys := make([]string, len(nullQueries))
		for i, q := range nullQueries {
			ids[i], keys[i] = q.ID, q.Key
		}
		job := prog.NullnessJob(nullQueries[0], k)
		cases = append(cases, batchCase{ids, keys, job.ParamName, driver.NewNullnessBatch(prog, nullQueries, k), session(warm.Nullness)})
	}
	for _, c := range cases {
		bopts := opts
		bopts.Recorder = rec
		if bopts.Timeout > 0 {
			bopts.Timeout *= time.Duration(len(c.ids)) // opts.Timeout is per query
		}
		if c.sess != nil {
			sess, keys := c.sess, c.keys
			bopts.SeedBatch = func(q int) []core.ParamCube { return sess.SeedFor(keys[q]) }
			bopts.OnLearn = func(q int, _ uset.Set, t lang.Trace, cubes []core.ParamCube) {
				sess.RecordLearn(keys[q], t, cubes)
			}
		}
		start := time.Now()
		res, err := core.SolveBatch(c.problem, bopts)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		for i, r := range res.Results {
			printResult(c.ids[i], r, c.paramName, wall/time.Duration(len(res.Results)))
		}
		if c.sess != nil {
			// Exhausted verdicts from a batch are measured against the shared
			// batch budget, not a per-query one; persisting them would make
			// them look replayable to a later per-query run. Verdict-bearing
			// statuses only.
			for i, r := range res.Results {
				if r.Status == core.Proved || r.Status == core.Impossible {
					c.sess.RecordResult(c.keys[i], r)
				}
			}
			if err := c.sess.Save(); err != nil {
				return err
			}
		}
		fmt.Printf("[batch: %d queries, %d forward phases (%d memo hits), %d groups, %d rounds, %v]\n",
			len(res.Results), res.Stats.ForwardRuns, res.Stats.FwdCacheHits,
			res.Stats.TotalGroups, res.Stats.Rounds, wall.Round(time.Millisecond))
	}
	return nil
}

// runRHS answers the program's explicit queries with the summary-based
// tabulation backend, which also handles recursive call graphs.
func runRHS(src string, prop *typestate.Property, k int, opts core.Options, rec obs.Recorder) error {
	p, err := driver.LoadRHS(src)
	if err != nil {
		return err
	}
	jobs, err := p.ExplicitJobs(prop, k)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(jobs))
	for name := range jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		job := jobs[name]
		qopts := opts
		qopts.Recorder = obs.Tag(rec, "query "+name)
		paramName := func(i int) string { return fmt.Sprintf("p%d", i) }
		switch j := job.(type) {
		case *driver.RHSEscapeJob:
			paramName = j.ParamName
			j.Rec = qopts.Recorder
		case *driver.RHSTypestateJob:
			paramName = j.ParamName
			j.Rec = qopts.Recorder
		}
		start := time.Now()
		res, err := core.Solve(job, qopts)
		if err != nil {
			return err
		}
		printResult("query "+name, res, paramName, time.Since(start))
	}
	return nil
}

// printResult renders one resolved query in the fixed-width report format.
func printResult(name string, res core.Result, paramName func(i int) string, wall time.Duration) {
	switch res.Status {
	case core.Proved:
		names := make([]string, 0, res.Abstraction.Len())
		for _, i := range res.Abstraction.Elems() {
			names = append(names, paramName(i))
		}
		fmt.Printf("%-40s PROVED    cheapest abstraction (|p|=%d): %v  [%d iterations, %v]\n",
			name, res.Abstraction.Len(), names, res.Iterations, wall.Round(time.Millisecond))
	case core.Impossible:
		fmt.Printf("%-40s IMPOSSIBLE  no abstraction in the family proves it  [%d iterations, %v]\n",
			name, res.Iterations, wall.Round(time.Millisecond))
	case core.Failed:
		fmt.Printf("%-40s FAILED      %s  [%d iterations]\n", name, res.Failure, res.Iterations)
	default:
		fmt.Printf("%-40s UNRESOLVED  budget exhausted after %d iterations\n", name, res.Iterations)
	}
}

func sortedKeys[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
