// Command benchgen emits the synthetic benchmark programs of the suite as
// mini-IR source files, one per benchmark, so they can be inspected or fed
// to cmd/tracer.
//
// Usage:
//
//	benchgen [-dir out] [-name tsp]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tracer/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	name := flag.String("name", "", "emit only the named benchmark")
	flag.Parse()

	for _, cfg := range bench.Suite() {
		if *name != "" && cfg.Name != *name {
			continue
		}
		src := bench.Generate(cfg)
		path := filepath.Join(*dir, cfg.Name+".tir")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(src))
	}
}
