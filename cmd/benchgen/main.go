// Command benchgen emits the synthetic benchmark programs of the suite as
// mini-IR source files, one per benchmark, so they can be inspected or fed
// to cmd/tracer.
//
// Usage:
//
//	benchgen [-dir out] [-name tsp] [-edits 0]
//
// With -edits N it additionally emits a deterministic chain of N
// single-statement edits per benchmark (name.e1.tir … name.eN.tir), the
// incremental workload of the warm-start store: feed successive steps to
// `tracer -auto -warm-dir DIR` to watch delta invalidation at work.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tracer/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	name := flag.String("name", "", "emit only the named benchmark")
	edits := flag.Int("edits", 0, "also emit this many single-statement edit steps per benchmark")
	flag.Parse()

	emit := func(path, src string) {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(src))
	}

	for _, cfg := range bench.Suite() {
		if *name != "" && cfg.Name != *name {
			continue
		}
		if *edits > 0 {
			chain, steps := bench.EditChain(cfg, *edits)
			emit(filepath.Join(*dir, cfg.Name+".tir"), chain[0])
			for i := 1; i < len(chain); i++ {
				fmt.Printf("  edit %d: %s at line %d\n", i, steps[i-1].Kind, steps[i-1].Line)
				emit(filepath.Join(*dir, fmt.Sprintf("%s.e%d.tir", cfg.Name, i)), chain[i])
			}
			continue
		}
		emit(filepath.Join(*dir, cfg.Name+".tir"), bench.Generate(cfg))
	}
}
