// Command benchdelta compares two github-action-benchmark JSON files (the
// BENCH_*.json shape written by cmd/paperbench) and fails when a gated
// series regressed beyond a threshold. It is the teeth of the perf gate:
// scripts/bench_delta.sh regenerates a fresh measurement and runs this
// comparator against the committed baseline.
//
// Usage:
//
//	benchdelta -old BENCH_paperbench.json -new /tmp/fresh.json \
//	    [-max-regress 25] [-keys paperbench/fig12/wall,...]
//
// Only the -keys series gate (walls of the heavyweight experiments; the
// sub-millisecond table walls are pure noise). A gated key missing from
// either file is an error — silently passing on a renamed series would
// defeat the gate. Exit status 1 on any regression beyond -max-regress
// percent; improvements and noise below the threshold pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type entry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var es []entry
	if err := json.Unmarshal(data, &es); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(es))
	for _, e := range es {
		m[e.Name] = e
	}
	return m, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_paperbench.json", "committed baseline JSON")
	newPath := flag.String("new", "", "freshly measured JSON")
	maxRegress := flag.Float64("max-regress", 25, "maximum allowed regression in percent")
	keys := flag.String("keys", "paperbench/fig12/wall,paperbench/fig13/wall,paperbench/batch/wall",
		"comma-separated gated series names")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdelta: -new is required")
		os.Exit(2)
	}

	oldE, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}
	newE, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}

	failed := false
	for _, key := range strings.Split(*keys, ",") {
		key = strings.TrimSpace(key)
		if key == "" {
			continue
		}
		o, okO := oldE[key]
		n, okN := newE[key]
		if !okO || !okN {
			fmt.Printf("MISSING  %-28s old=%v new=%v\n", key, okO, okN)
			failed = true
			continue
		}
		if o.Value <= 0 {
			fmt.Printf("SKIP     %-28s baseline is %.3f%s\n", key, o.Value, o.Unit)
			continue
		}
		pct := 100 * (n.Value - o.Value) / o.Value
		verdict := "OK"
		if pct > *maxRegress {
			verdict = "REGRESS"
			failed = true
		}
		fmt.Printf("%-8s %-28s %10.1f%s -> %10.1f%s  (%+.1f%%, limit +%.0f%%)\n",
			verdict, key, o.Value, o.Unit, n.Value, n.Unit, pct, *maxRegress)
	}
	if failed {
		os.Exit(1)
	}
}
