// Command benchdelta compares two github-action-benchmark JSON files (the
// BENCH_*.json shape written by cmd/paperbench) and fails when a gated
// series regressed beyond its threshold. It is the teeth of the perf gate:
// scripts/bench_delta.sh regenerates a fresh measurement and runs this
// comparator against the committed baseline.
//
// Usage:
//
//	benchdelta -old BENCH_paperbench.json -new /tmp/fresh.json \
//	    [-max-regress 25] [-keys paperbench/fig12/wall,paperbench/fig12warm/wall=40,...]
//
// Only the -keys series gate (walls of the heavyweight experiments; the
// sub-millisecond table walls are pure noise). Each key may carry its own
// threshold as `name=percent`; a bare name uses -max-regress. The defaults
// hold the primary experiment walls (fig12, fig13, batch) to the tight
// global threshold and give the warm-start experiments (fig12warm,
// editchain) looser ones: their walls fold in store I/O and per-step
// process setup, which wobble more run to run than pure solver time. A
// gated key missing from either file is an error — silently passing on a
// renamed series would defeat the gate. Exit status 1 on any regression
// beyond the threshold; improvements and noise below it pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// defaultKeys gates the primary walls at -max-regress and the warm-start
// walls at an explicit looser bound.
const defaultKeys = "paperbench/fig12/wall,paperbench/fig13/wall,paperbench/nullness/wall," +
	"paperbench/batch/wall," +
	"paperbench/fig12warm/wall=40,paperbench/editchain/wall=40"

type entry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var es []entry
	if err := json.Unmarshal(data, &es); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(es))
	for _, e := range es {
		m[e.Name] = e
	}
	return m, nil
}

// gate is one gated series with its resolved threshold.
type gate struct {
	key string
	max float64
}

// parseGates expands the -keys syntax. Order is preserved so the report
// reads in the order the flag lists.
func parseGates(spec string, defaultMax float64) ([]gate, error) {
	var gs []gate
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		g := gate{key: item, max: defaultMax}
		if name, pct, ok := strings.Cut(item, "="); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
			if err != nil {
				return nil, fmt.Errorf("threshold %q: %w", item, err)
			}
			g.key, g.max = strings.TrimSpace(name), v
		}
		gs = append(gs, g)
	}
	return gs, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_paperbench.json", "committed baseline JSON")
	newPath := flag.String("new", "", "freshly measured JSON")
	maxRegress := flag.Float64("max-regress", 25, "default maximum allowed regression in percent")
	keys := flag.String("keys", defaultKeys,
		"comma-separated gated series, each optionally `name=percent` for a per-series threshold")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdelta: -new is required")
		os.Exit(2)
	}

	gates, err := parseGates(*keys, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}
	oldE, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}
	newE, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}

	failed := false
	for _, g := range gates {
		o, okO := oldE[g.key]
		n, okN := newE[g.key]
		if !okO || !okN {
			fmt.Printf("MISSING  %-28s old=%v new=%v\n", g.key, okO, okN)
			failed = true
			continue
		}
		if o.Value <= 0 {
			fmt.Printf("SKIP     %-28s baseline is %.3f%s\n", g.key, o.Value, o.Unit)
			continue
		}
		pct := 100 * (n.Value - o.Value) / o.Value
		verdict := "OK"
		if pct > g.max {
			verdict = "REGRESS"
			failed = true
		}
		fmt.Printf("%-8s %-28s %10.1f%s -> %10.1f%s  (%+.1f%%, limit +%.0f%%)\n",
			verdict, g.key, o.Value, o.Unit, n.Value, n.Unit, pct, g.max)
	}
	if failed {
		os.Exit(1)
	}
}
