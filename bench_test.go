package tracer

// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// table and figure, plus ablations for the design choices DESIGN.md calls
// out. Each testing.B iteration recomputes its experiment from scratch on a
// scaled-down query budget so that `go test -bench=.` finishes in minutes;
// `go run ./cmd/paperbench` runs the full-budget versions and prints the
// complete tables.

import (
	"fmt"
	"testing"
	"time"

	"tracer/internal/bench"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/driver"
	"tracer/internal/escape"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/minsat"
	"tracer/internal/uset"
)

// escapePrimFor adapts the thread-escape theory for the formula
// micro-benchmark below.
func escapePrimFor(_ *escape.Analysis, st lang.Store) formula.Prim {
	return escape.PField{F: st.F, O: escape.N}
}

// benchOpts is the scaled-down budget used inside testing.B loops.
func benchOpts() bench.RunOptions {
	return bench.RunOptions{
		K:          5,
		MaxIters:   100,
		Timeout:    300 * time.Millisecond,
		MaxQueries: 24,
		Fresh:      true,
	}
}

// BenchmarkTable1 regenerates the benchmark-statistics table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable1(rows))
		}
	}
}

// BenchmarkFigure12 regenerates the precision figure (proven / impossible /
// unresolved per benchmark per client).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure12(rows))
		}
	}
}

// BenchmarkFigure13 regenerates the k-sweep (k ∈ {1,5,10}) of the
// thread-escape client on the smallest four benchmarks.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure13(rows))
		}
	}
}

// BenchmarkTable2 regenerates the scalability table (iterations and
// thread-escape running times).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable2(rows))
		}
	}
}

// BenchmarkTable3 regenerates the cheapest-abstraction-size table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable3(rows))
		}
	}
}

// BenchmarkTable4 regenerates the abstraction-reuse table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable4(rows))
		}
	}
}

// BenchmarkFigure14 regenerates the histogram of cheapest abstraction sizes
// for the thread-escape client on the largest three benchmarks.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure14(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure14(rows))
		}
	}
}

// ---------- ablations ----------

// BenchmarkAblationGrouping compares resolving the type-state queries of
// one benchmark individually vs through the §6 query-grouping batch driver.
func BenchmarkAblationGrouping(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[1]) // elevator
	opts := benchOpts()
	b.Run("individual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.Run(bm, bench.Typestate, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grouped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.RunBatch(bm, bench.Typestate, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Stats.ForwardRuns), "forward-runs")
				b.ReportMetric(float64(res.Stats.TotalGroups), "groups")
			}
		}
	})
}

// BenchmarkAblationUnderApprox measures the backward meta-analysis with and
// without under-approximation on one failing run, reporting the formula
// blow-up that §6 attributes to disabling it.
func BenchmarkAblationUnderApprox(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[3]) // weblech
	queries := bm.Prog.EscapeQueries()
	if len(queries) == 0 {
		b.Fatal("no queries")
	}
	// Pick the failing query with the longest counterexample trace so the
	// backward pass has room to blow up.
	best, bestLen := -1, 0
	for i, q := range queries {
		out := bm.Prog.EscapeJob(q, 5).Forward(nil, nil)
		if !out.Proved && len(out.Trace) > bestLen {
			best, bestLen = i, len(out.Trace)
		}
	}
	if best < 0 {
		b.Skip("all queries proven under the empty abstraction")
	}
	for _, cfg := range []struct {
		name string
		k    int
	}{{"k=1", 1}, {"k=5", 5}, {"off", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			job := bm.Prog.EscapeJob(queries[best], cfg.k)
			out := job.Forward(nil, nil)
			// The un-approximated backward pass blows up doubly
			// exponentially on full traces (the paper reports timeouts on
			// every query of even the smallest benchmark), so all variants
			// analyze the same bounded suffix of the counterexample. Even
			// there the formula-size metric shows the gap.
			trace := out.Trace
			const suffix = 40
			if len(trace) > suffix {
				trace = trace[len(trace)-suffix:]
			}
			dI := job.A.Initial()
			full := dataflow.StatesAlong(out.Trace, dI, job.A.Transfer(nil))
			states := full[len(full)-len(trace)-1:]
			post := job.A.NotQ(job.Q)
			b.ResetTimer()
			maxSize := 0
			for i := 0; i < b.N; i++ {
				ann := meta.RunAnnotated(job.Client(nil), trace, states, post)
				for _, f := range ann {
					if f.Size() > maxSize {
						maxSize = f.Size()
					}
				}
			}
			b.ReportMetric(float64(maxSize), "max-formula-size")
		})
	}
}

// BenchmarkForwardTypestate measures one forward type-state solve over the
// largest benchmark's supergraph.
func BenchmarkForwardTypestate(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[5]) // avrora
	queries := bm.Prog.TypestateQueries()
	job := bm.Prog.TypestateJob(queries[0], 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Forward(nil, nil)
	}
}

// BenchmarkForwardEscape measures one forward thread-escape solve (under
// the empty abstraction, every site mapped to E).
func BenchmarkForwardEscape(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[5]) // avrora
	queries := bm.Prog.EscapeQueries()
	job := bm.Prog.EscapeJob(queries[0], 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Forward(nil, nil)
	}
}

// BenchmarkBackwardMeta measures one backward meta-analysis pass over a
// counterexample trace (k = 5).
func BenchmarkBackwardMeta(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[3]) // weblech
	queries := bm.Prog.EscapeQueries()
	job := bm.Prog.EscapeJob(queries[0], 5)
	out := job.Forward(nil, nil)
	if out.Proved {
		b.Skip("query proven under the empty abstraction")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Backward(nil, nil, out.Trace)
	}
}

// BenchmarkEngines compares the two interprocedural backends — the inlined
// supergraph with the intraprocedural solver vs. the RHS tabulation — on
// one forward thread-escape solve of the same program.
func BenchmarkEngines(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[2]) // hedc
	rhsProg, err := driver.LoadRHS(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("inline", func(b *testing.B) {
		queries := bm.Prog.EscapeQueries()
		job := bm.Prog.EscapeJob(queries[0], 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job.Forward(nil, nil)
		}
	})
	b.Run("rhs", func(b *testing.B) {
		queries := rhsProg.EscapeQueries()
		job := rhsProg.EscapeJob(queries[0], 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job.Forward(nil, nil)
		}
	})
}

// BenchmarkMinSAT measures the abstraction chooser on a clause set shaped
// like a long TRACER run: a chain forcing variables on one by one.
func BenchmarkMinSAT(b *testing.B) {
	const n = 60
	s := minsat.New(n)
	for i := 0; i < n-1; i++ {
		// ¬(x_i off): each clause requires x_i, emulating learned cubes.
		s.Block(nil, uset.New(i))
		// ¬(x_i on ∧ x_{i+1} off).
		s.Block(uset.New(i), uset.New(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Minimum(); !ok {
			b.Fatal("unexpectedly unsat")
		}
	}
}

// BenchmarkFormulaToDNF measures DNF conversion of a store weakest
// precondition, the largest single formula in either theory.
func BenchmarkFormulaToDNF(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[0])
	a := bm.Prog.EscapeAnalysis()
	var store lang.Atom
	for _, e := range bm.Prog.Low.G.Edges {
		if s, ok := e.A.(lang.Store); ok {
			store = s
			break
		}
	}
	if store == nil {
		b.Skip("no store in benchmark")
	}
	st := store.(lang.Store)
	prim := escapePrimFor(a, st)
	u := formula.NewUniverse(escape.Theory{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := a.WP(store, prim)
		formula.ToDNF(f, u)
	}
}

// BenchmarkLowering measures parsing + points-to + inlining of the largest
// benchmark.
func BenchmarkLowering(b *testing.B) {
	cfg := bench.Suite()[5]
	src := bench.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver.Load(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleQuery measures one full TRACER resolution end to end.
func BenchmarkSingleQuery(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[2]) // hedc
	queries := bm.Prog.TypestateQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := bm.Prog.TypestateJob(queries[i%len(queries)], 5)
		if _, err := core.Solve(job, core.Options{MaxIters: 100, Timeout: time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

// batchOpts is the budget for the batch-scheduler benchmarks. Unlike
// benchOpts it sets no per-run timeout: SolveBatch enforces Timeout as a
// whole-batch wall cap, and a 300ms cap would truncate the larger runs into
// the Exhausted bucket instead of measuring them.
func batchOpts(workers int) bench.RunOptions {
	return bench.RunOptions{
		K: 5, MaxIters: 100, MaxQueries: 24, Fresh: true, BatchWorkers: workers,
	}
}

// BenchmarkSolveBatch measures the grouped multi-query solver across worker
// counts. The scheduler's results are identical for every worker count (see
// TestSolveBatchWorkerDeterminism); only wall time may differ, so the
// speedup at Workers=4 over Workers=1 is the parallelism win on the host.
// Forward-run phases and memo hits are reported from the first iteration.
func BenchmarkSolveBatch(b *testing.B) {
	cases := []struct {
		idx    int
		client bench.Client
	}{
		{0, bench.Escape},    // tsp
		{0, bench.Typestate}, // tsp
		{3, bench.Typestate}, // weblech
	}
	for _, tc := range cases {
		bm := bench.MustLoad(bench.Suite()[tc.idx])
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%s/workers=%d", bm.Config.Name, tc.client, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := bench.RunBatch(bm, tc.client, batchOpts(workers))
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(res.Stats.ForwardRuns), "forward-runs")
						b.ReportMetric(float64(res.Stats.FwdCacheHits), "memo-hits")
					}
				}
			})
		}
	}
}

// BenchmarkSolveBatchCache isolates the forward-run memo: the same batch
// with the memo disabled re-executes every forward phase.
func BenchmarkSolveBatchCache(b *testing.B) {
	bm := bench.MustLoad(bench.Suite()[0]) // tsp
	for _, tc := range []struct {
		name string
		size int
	}{{"memo", 0}, {"nomemo", -1}} {
		b.Run(tc.name, func(b *testing.B) {
			opts := batchOpts(1)
			opts.FwdCacheSize = tc.size
			for i := 0; i < b.N; i++ {
				res, err := bench.RunBatch(bm, bench.Escape, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.FwdCacheHits), "memo-hits")
					b.ReportMetric(float64(res.Stats.FwdCacheMisses), "memo-misses")
				}
			}
		})
	}
}
