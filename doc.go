// Package tracer is a from-scratch Go reproduction of
//
//	Xin Zhang, Mayur Naik, Hongseok Yang.
//	Finding Optimum Abstractions in Parametric Dataflow Analysis.
//	PLDI 2013.
//
// Given a dataflow analysis that is parametric in its abstraction and a
// query, TRACER either finds the cheapest abstraction in the exponential
// family that proves the query or shows no abstraction in the family can.
// It alternates a forward client analysis with a backward meta-analysis
// that generalizes each counterexample into a blocking clause over the
// abstraction parameters; a minimum-cost SAT query picks the next
// abstraction to try.
//
// The implementation lives under internal/, layered bottom-up:
//
//   - uset, intern: immutable sets, bitsets, interning tables
//   - lang: the structured regular language of §3.1 (atoms, traces, CFGs)
//   - ir, pointsto: a Java-like mini-IR front end with 0-CFA points-to
//   - dataflow, rhs: the forward solvers — disjunctive with provenance
//     (Fig 3), and summary-based RHS tabulation for recursive call graphs
//   - formula, meta: boolean formulas with drop_k under-approximation
//     (§4.1) and the backward meta-analysis driver B[t] (Fig 7)
//   - typestate, escape: the two client analyses (Figs 4, 5, 9–11)
//   - minsat: exact minimum-cost SAT (Alg 1 line 8)
//   - core: TRACER (Algorithm 1) and the §6 multi-query grouping driver
//   - driver, explain: front-end pipelines, §6 query generation, and
//     Fig 1/6-style narration
//   - bench: the synthetic benchmark suite and experiment harness
//   - obs: the observability layer — structured events (NDJSON), counters,
//     gauges, and timers threaded through core, minsat, rhs, and bench;
//     a no-op by default. The counter vocabulary is defined (and documented)
//     on the constants in internal/obs: minsat.search_nodes and
//     minsat.incremental_reuse for the incremental min-cost solver,
//     formula.subsumption_checks / formula.sig_filtered / formula.sig_skips
//     for the signature-screened kernel scans, and
//     meta.wp_formula_memo_hits/_misses for the whole-formula WP memo;
//     README.md has the full reference table and a guide to reading the
//     bench JSON these land in
//
// Three commands sit on top. cmd/tracer answers the queries of one
// mini-IR program (-engine inline|rhs, -auto, -explain, plus -trace for
// an NDJSON event transcript, -metrics for aggregate counters, and
// -cpuprofile/-memprofile for pprof capture). cmd/paperbench regenerates
// every table and figure of the paper's evaluation and writes the repo's
// perf trajectory as github-action-benchmark BENCH_*.json data
// (-bench-json). cmd/benchgen emits the synthetic suite as .tir files.
//
// See README.md for a tour, ARCHITECTURE.md for the package map and the
// data flow of Algorithm 1, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure as testing.B benchmarks;
// `make check` is the tier-1 gate.
package tracer
