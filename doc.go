// Package tracer is a from-scratch Go reproduction of
//
//	Xin Zhang, Mayur Naik, Hongseok Yang.
//	Finding Optimum Abstractions in Parametric Dataflow Analysis.
//	PLDI 2013.
//
// The implementation lives under internal/: the TRACER algorithm
// (internal/core), the backward meta-analysis framework (internal/meta,
// internal/formula), the two client analyses (internal/typestate,
// internal/escape), the parametric dataflow framework (internal/dataflow,
// internal/lang), the mini-IR front end with 0-CFA points-to
// (internal/ir, internal/pointsto, internal/driver), the minimum-cost SAT
// solver for abstraction selection (internal/minsat), and the benchmark
// suite and experiment harness (internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as testing.B benchmarks.
package tracer
