// Package explain instruments a TRACER problem so that every CEGAR
// iteration is narrated the way the paper's Figs 1 and 6 are drawn: the
// abstract counterexample trace annotated with the forward states (α) and
// the backward meta-analysis's failure conditions (ψ), followed by the
// eliminated abstraction cubes. cmd/tracer's -explain flag and the
// examples use it.
package explain

import (
	"fmt"
	"io"
	"strings"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// coreCube aliases the cube type for the per-client constructors.
type coreCube = core.ParamCube

// Hooks supplies the analysis-specific pieces the narrator needs. D is the
// forward analysis's abstract state type.
type Hooks[D comparable] struct {
	// Initial is dI.
	Initial D
	// Transfer instantiates the forward transfer function at p.
	Transfer func(p uset.Set) dataflow.Transfer[D]
	// Client builds the meta-analysis client for p.
	Client func(p uset.Set) *meta.Client[D]
	// Post is the failure condition not(q).
	Post formula.Formula
	// FormatState renders an abstract state (the α annotations).
	FormatState func(D) string
	// FormatAbstraction renders an abstraction (e.g. variable names).
	FormatAbstraction func(uset.Set) string
	// Cubes projects a failure-condition DNF onto parameter cubes.
	Cubes func(dnf formula.DNF, dI D) []core.ParamCube
	// DescribeCube renders one eliminated cube.
	DescribeCube func(core.ParamCube) string
}

// Problem wraps a core.Problem, writing a narration of every iteration to
// W. It implements core.Problem and is otherwise transparent: outcomes and
// learned cubes are exactly the inner problem's.
type Problem[D comparable] struct {
	Inner core.Problem
	W     io.Writer
	H     Hooks[D]

	iteration int
}

// New builds a narrated problem.
func New[D comparable](inner core.Problem, w io.Writer, h Hooks[D]) *Problem[D] {
	return &Problem[D]{Inner: inner, W: w, H: h}
}

// NumParams delegates to the inner problem.
func (p *Problem[D]) NumParams() int { return p.Inner.NumParams() }

// Forward narrates the chosen abstraction, then delegates.
func (p *Problem[D]) Forward(b *budget.Budget, abs uset.Set) core.Outcome {
	p.iteration++
	fmt.Fprintf(p.W, "\niteration %d: forward analysis with p = %s\n", p.iteration, p.H.FormatAbstraction(abs))
	out := p.Inner.Forward(b, abs)
	if out.Proved {
		fmt.Fprintf(p.W, "  query proven\n")
	}
	return out
}

// Backward recomputes the annotated backward pass for display, then
// delegates to the inner problem for the actual cubes. The recomputed cubes
// are expected to match the inner result (the meta-analysis is
// deterministic), but that identity is verified rather than trusted: if the
// narrated pass diverges from what the solver actually learned — a
// mismatched wrapper, a stateful inner problem, a drifted hook — an
// explicit warning is printed instead of silently narrating the wrong pass.
func (p *Problem[D]) Backward(b *budget.Budget, abs uset.Set, t lang.Trace) []core.ParamCube {
	states := dataflow.StatesAlong(t, p.H.Initial, p.H.Transfer(abs))
	ann := meta.RunAnnotated(p.H.Client(abs), t, states, p.H.Post)
	fmt.Fprintf(p.W, "  counterexample trace (α = forward state, ψ = failure condition):\n")
	fmt.Fprintf(p.W, "    %-28s α %-30s ψ %s\n", "", p.H.FormatState(states[0]), ann[0])
	for i, atom := range t {
		fmt.Fprintf(p.W, "    %-28s α %-30s ψ %s\n", atom.String()+";", p.H.FormatState(states[i+1]), ann[i+1])
	}
	narrated := p.H.Cubes(ann[0], p.H.Initial)
	for _, c := range narrated {
		fmt.Fprintf(p.W, "  eliminated: %s\n", p.H.DescribeCube(c))
	}
	cubes := p.Inner.Backward(b, abs, t)
	if !sameCubes(narrated, cubes) {
		fmt.Fprintf(p.W, "  WARNING: narration diverges from the solver's backward pass\n")
		fmt.Fprintf(p.W, "    narrated cubes: %s\n", renderCubes(narrated))
		fmt.Fprintf(p.W, "    solver learned: %s\n", renderCubes(cubes))
	}
	return cubes
}

// sameCubes reports whether the two cube sequences are identical (same
// cubes, same order — the meta-analysis is deterministic, so a faithful
// narration reproduces the order too).
func sameCubes(a, b []core.ParamCube) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Pos.Equal(b[i].Pos) || !a[i].Neg.Equal(b[i].Neg) {
			return false
		}
	}
	return true
}

// renderCubes renders a cube sequence in the solver's raw parameter-index
// form (the client DescribeCube hooks are skipped: a divergence may involve
// indices outside the client's vocabulary).
func renderCubes(cs []core.ParamCube) string {
	if len(cs) == 0 {
		return "(none)"
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, "; ")
}

// Solve runs TRACER on the narrated problem and prints the verdict.
func (p *Problem[D]) Solve(opts core.Options) (core.Result, error) {
	res, err := core.Solve(p, opts)
	if err != nil {
		return res, err
	}
	switch res.Status {
	case core.Proved:
		fmt.Fprintf(p.W, "PROVED with cheapest abstraction p = %s after %d iterations\n",
			p.H.FormatAbstraction(res.Abstraction), res.Iterations)
	case core.Impossible:
		fmt.Fprintf(p.W, "IMPOSSIBLE: no abstraction in the family proves the query (%d iterations)\n", res.Iterations)
	case core.Failed:
		fmt.Fprintf(p.W, "FAILED: %s (%d iterations)\n", res.Failure, res.Iterations)
	default:
		fmt.Fprintf(p.W, "UNRESOLVED: budget exhausted after %d iterations\n", res.Iterations)
	}
	return res, nil
}
