// Package explain instruments a TRACER problem so that every CEGAR
// iteration is narrated the way the paper's Figs 1 and 6 are drawn: the
// abstract counterexample trace annotated with the forward states (α) and
// the backward meta-analysis's failure conditions (ψ), followed by the
// eliminated abstraction cubes. cmd/tracer's -explain flag and the
// examples use it.
package explain

import (
	"fmt"
	"io"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// coreCube aliases the cube type for the per-client constructors.
type coreCube = core.ParamCube

// Hooks supplies the analysis-specific pieces the narrator needs. D is the
// forward analysis's abstract state type.
type Hooks[D comparable] struct {
	// Initial is dI.
	Initial D
	// Transfer instantiates the forward transfer function at p.
	Transfer func(p uset.Set) dataflow.Transfer[D]
	// Client builds the meta-analysis client for p.
	Client func(p uset.Set) *meta.Client[D]
	// Post is the failure condition not(q).
	Post formula.Formula
	// FormatState renders an abstract state (the α annotations).
	FormatState func(D) string
	// FormatAbstraction renders an abstraction (e.g. variable names).
	FormatAbstraction func(uset.Set) string
	// Cubes projects a failure-condition DNF onto parameter cubes.
	Cubes func(dnf formula.DNF, dI D) []core.ParamCube
	// DescribeCube renders one eliminated cube.
	DescribeCube func(core.ParamCube) string
}

// Problem wraps a core.Problem, writing a narration of every iteration to
// W. It implements core.Problem and is otherwise transparent: outcomes and
// learned cubes are exactly the inner problem's.
type Problem[D comparable] struct {
	Inner core.Problem
	W     io.Writer
	H     Hooks[D]

	iteration int
}

// New builds a narrated problem.
func New[D comparable](inner core.Problem, w io.Writer, h Hooks[D]) *Problem[D] {
	return &Problem[D]{Inner: inner, W: w, H: h}
}

// NumParams delegates to the inner problem.
func (p *Problem[D]) NumParams() int { return p.Inner.NumParams() }

// Forward narrates the chosen abstraction, then delegates.
func (p *Problem[D]) Forward(b *budget.Budget, abs uset.Set) core.Outcome {
	p.iteration++
	fmt.Fprintf(p.W, "\niteration %d: forward analysis with p = %s\n", p.iteration, p.H.FormatAbstraction(abs))
	out := p.Inner.Forward(b, abs)
	if out.Proved {
		fmt.Fprintf(p.W, "  query proven\n")
	}
	return out
}

// Backward recomputes the annotated backward pass for display, then
// delegates to the inner problem for the actual cubes (which are identical
// by construction; the meta-analysis is deterministic).
func (p *Problem[D]) Backward(b *budget.Budget, abs uset.Set, t lang.Trace) []core.ParamCube {
	states := dataflow.StatesAlong(t, p.H.Initial, p.H.Transfer(abs))
	ann := meta.RunAnnotated(p.H.Client(abs), t, states, p.H.Post)
	fmt.Fprintf(p.W, "  counterexample trace (α = forward state, ψ = failure condition):\n")
	fmt.Fprintf(p.W, "    %-28s α %-30s ψ %s\n", "", p.H.FormatState(states[0]), ann[0])
	for i, atom := range t {
		fmt.Fprintf(p.W, "    %-28s α %-30s ψ %s\n", atom.String()+";", p.H.FormatState(states[i+1]), ann[i+1])
	}
	for _, c := range p.H.Cubes(ann[0], p.H.Initial) {
		fmt.Fprintf(p.W, "  eliminated: %s\n", p.H.DescribeCube(c))
	}
	return p.Inner.Backward(b, abs, t)
}

// Solve runs TRACER on the narrated problem and prints the verdict.
func (p *Problem[D]) Solve(opts core.Options) (core.Result, error) {
	res, err := core.Solve(p, opts)
	if err != nil {
		return res, err
	}
	switch res.Status {
	case core.Proved:
		fmt.Fprintf(p.W, "PROVED with cheapest abstraction p = %s after %d iterations\n",
			p.H.FormatAbstraction(res.Abstraction), res.Iterations)
	case core.Impossible:
		fmt.Fprintf(p.W, "IMPOSSIBLE: no abstraction in the family proves the query (%d iterations)\n", res.Iterations)
	case core.Failed:
		fmt.Fprintf(p.W, "FAILED: %s (%d iterations)\n", res.Failure, res.Iterations)
	default:
		fmt.Fprintf(p.W, "UNRESOLVED: budget exhausted after %d iterations\n", res.Iterations)
	}
	return res, nil
}
