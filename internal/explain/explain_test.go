package explain

import (
	"strings"
	"testing"

	"tracer/internal/core"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// TestNarratedFigure1: the narrated run resolves exactly like the plain
// run and the narration contains the Fig 1 landmarks.
func TestNarratedFigure1(t *testing.T) {
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.Atoms(lang.Invoke{V: "x", M: "open"}),
		lang.Atoms(lang.Invoke{V: "y", M: "close"}),
	)
	g := lang.BuildCFG(prog)
	a := typestate.New(typestate.FileProperty(), "h", typestate.CollectVars(g))
	closed := uset.Bits(0).Add(a.Prop.MustState("closed"))
	job := &typestate.Job{A: a, G: g, Q: typestate.Query{Nodes: []int{g.Exit}, Want: closed}, K: 1}

	plain, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	narrated, err := ForTypestate(job, &sb).Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if narrated.Status != plain.Status || !narrated.Abstraction.Equal(plain.Abstraction) {
		t.Fatalf("narration changed the result: %+v vs %+v", narrated, plain)
	}
	out := sb.String()
	for _, want := range []string{
		"iteration 1: forward analysis with p = {}",
		"x = new h;",
		"α ⊤",
		"eliminated: every p with x∉p",
		"iteration 3",
		"PROVED with cheapest abstraction p = {x, y}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("narration missing %q:\n%s", want, out)
		}
	}
}

// TestNarratedFigure6: the escape narration renders the site mapping and
// the eliminated cubes of Fig 6(b).
func TestNarratedFigure6(t *testing.T) {
	prog := lang.Atoms(
		lang.Alloc{V: "u", H: "h1"},
		lang.Alloc{V: "v", H: "h2"},
		lang.Store{Dst: "v", F: "f", Src: "u"},
	)
	g := lang.BuildCFG(prog)
	locals, fields, sites := escape.Universe(g)
	a := escape.New(locals, fields, sites)
	job := &escape.Job{A: a, G: g, Q: escape.Query{Nodes: []int{g.Exit}, V: "u"}, K: 1}

	var sb strings.Builder
	res, err := ForEscape(job, &sb).Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved || res.Iterations != 3 {
		t.Fatalf("result = %+v", res)
	}
	out := sb.String()
	for _, want := range []string{
		"p = [h1↦E, h2↦E]",
		"eliminated: every p with h1↦E",
		"eliminated: every p with h1↦L with h2↦E",
		"PROVED with cheapest abstraction p = [h1↦L, h2↦L]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("narration missing %q:\n%s", want, out)
		}
	}
}
