package explain

import (
	"fmt"
	"io"
	"strings"

	"tracer/internal/escape"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// ForTypestate narrates a type-state job.
func ForTypestate(job *typestate.Job, w io.Writer) *Problem[typestate.State] {
	a := job.A
	return New[typestate.State](job, w, Hooks[typestate.State]{
		Initial:     a.Initial(),
		Transfer:    a.Transfer,
		Client:      job.Client,
		Post:        a.NotQ(job.Q),
		FormatState: a.Format,
		FormatAbstraction: func(p uset.Set) string {
			names := make([]string, 0, p.Len())
			for _, v := range p.Elems() {
				names = append(names, a.Vars.Value(v))
			}
			return "{" + strings.Join(names, ", ") + "}"
		},
		Cubes: job.Cubes,
		DescribeCube: func(c coreCube) string {
			out := "every p"
			for _, v := range c.Pos.Elems() {
				out += fmt.Sprintf(" with %s∈p", a.Vars.Value(v))
			}
			for _, v := range c.Neg.Elems() {
				out += fmt.Sprintf(" with %s∉p", a.Vars.Value(v))
			}
			return out
		},
	})
}

// ForEscape narrates a thread-escape job.
func ForEscape(job *escape.Job, w io.Writer) *Problem[escape.State] {
	a := job.A
	return New[escape.State](job, w, Hooks[escape.State]{
		Initial:     a.Initial(),
		Transfer:    a.Transfer,
		Client:      job.Client,
		Post:        a.NotQ(job.Q),
		FormatState: a.Format,
		FormatAbstraction: func(p uset.Set) string {
			parts := make([]string, 0, a.Sites.Len())
			for i := 0; i < a.Sites.Len(); i++ {
				o := "E"
				if p.Has(i) {
					o = "L"
				}
				parts = append(parts, a.Sites.Value(i)+"↦"+o)
			}
			return "[" + strings.Join(parts, ", ") + "]"
		},
		Cubes: job.Cubes,
		DescribeCube: func(c coreCube) string {
			out := "every p"
			for _, h := range c.Pos.Elems() {
				out += fmt.Sprintf(" with %s↦L", a.Sites.Value(h))
			}
			for _, h := range c.Neg.Elems() {
				out += fmt.Sprintf(" with %s↦E", a.Sites.Value(h))
			}
			return out
		},
	})
}
