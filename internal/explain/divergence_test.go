package explain

import (
	"strings"
	"testing"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// duplicatingInner tampers with a problem's backward pass by duplicating
// its first cube. The solver's behavior is unchanged (the duplicate clause
// is deduplicated by minsat), but the learned sequence no longer matches
// what the narration recomputes — exactly the silent divergence the
// narrator used to trust away.
type duplicatingInner struct {
	core.Problem
}

func (d duplicatingInner) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	cubes := d.Problem.Backward(b, p, t)
	if len(cubes) > 0 {
		cubes = append(cubes[:len(cubes):len(cubes)], cubes[0])
	}
	return cubes
}

func divergenceJob(t *testing.T) *typestate.Job {
	t.Helper()
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.Atoms(lang.Invoke{V: "x", M: "open"}),
		lang.Atoms(lang.Invoke{V: "y", M: "close"}),
	)
	g := lang.BuildCFG(prog)
	a := typestate.New(typestate.FileProperty(), "h", typestate.CollectVars(g))
	closed := uset.Bits(0).Add(a.Prop.MustState("closed"))
	return &typestate.Job{A: a, G: g, Q: typestate.Query{Nodes: []int{g.Exit}, Want: closed}, K: 1}
}

// TestBackwardDivergenceWarning: when the inner problem's cubes differ from
// the narrated recomputation, the narration carries an explicit warning
// showing both sequences instead of silently describing a pass the solver
// never learned. A faithful inner problem produces no warning.
func TestBackwardDivergenceWarning(t *testing.T) {
	var clean strings.Builder
	res, err := ForTypestate(divergenceJob(t), &clean).Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("result = %+v, want proved", res)
	}
	if strings.Contains(clean.String(), "WARNING") {
		t.Fatalf("faithful narration contains a divergence warning:\n%s", clean.String())
	}

	var sb strings.Builder
	pr := ForTypestate(divergenceJob(t), &sb)
	pr.Inner = duplicatingInner{Problem: pr.Inner}
	tampered, err := pr.Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate clause is deduplicated, so the resolution is unchanged…
	if tampered.Status != res.Status || !tampered.Abstraction.Equal(res.Abstraction) {
		t.Fatalf("tampering changed the resolution: %+v vs %+v", tampered, res)
	}
	// …which is exactly why the divergence must be called out explicitly.
	out := sb.String()
	for _, want := range []string{
		"WARNING: narration diverges from the solver's backward pass",
		"narrated cubes:",
		"solver learned:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tampered narration missing %q:\n%s", want, out)
		}
	}
}
