package dataflow_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/oracle/gen"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// The flip-chain differential suite drives one Chain through a seeded
// random walk over the abstraction lattice — the access pattern the CEGAR
// loop produces — and pins the Chain's advertised contract against a cold
// solve at every step: same discoveries in the same order, same Steps, same
// witness traces. The external test package avoids the dataflow ⇄ client
// import cycle.

var (
	chainLocals = []string{"u", "v", "w"}
	chainFields = []string{"f", "g"}
	chainSites  = []string{"h1", "h2", "h3"}
	chainVars   = []string{"w", "x", "y", "z"}
)

// randAbs draws a random abstraction over n parameters.
func randAbs(rng *rand.Rand, n int) uset.Set {
	var ks []int
	for k := 0; k < n; k++ {
		if rng.Intn(2) == 0 {
			ks = append(ks, k)
		}
	}
	return uset.New(ks...)
}

// checkEquiv compares a Chain solve against a cold reference solve of the
// same abstraction on the same analysis instance: every node's discovery
// sequence, the step count, and (for every reached fact) a replayable
// witness identical to the cold one.
func checkEquiv[D comparable](t *testing.T, g *lang.CFG, got, want *dataflow.Result[D], init D, tr dataflow.Transfer[D]) {
	t.Helper()
	if got.Steps != want.Steps {
		t.Fatalf("Steps = %d, cold %d", got.Steps, want.Steps)
	}
	for n := 0; n < g.Nodes; n++ {
		gs, ws := got.States(n), want.States(n)
		if !reflect.DeepEqual(gs, ws) {
			t.Fatalf("node %d states = %v, cold %v", n, gs, ws)
		}
		for _, d := range ws {
			gw, ww := got.Witness(n, d), want.Witness(n, d)
			if !reflect.DeepEqual(gw, ww) {
				t.Fatalf("node %d fact %v witness %v, cold %v", n, d, gw, ww)
			}
			if replay := dataflow.EvalTrace(gw, init, tr); replay != d {
				t.Fatalf("node %d witness replays to %v, want %v", n, replay, d)
			}
		}
	}
}

func TestChainFlipChainEscape(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainLocals, Sites: chainSites, Fields: chainFields,
		Globals: []string{"G"}, Methods: []string{"m"},
	})
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(4+rng.Intn(8))))
			a := escape.New(chainLocals, chainFields, chainSites)
			ch := dataflow.NewChain[escape.State](g)
			for step := 0; step < 12; step++ {
				p := randAbs(rng, len(chainSites))
				got := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
				want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(p), nil)
				checkEquiv(t, g, got, want, a.Initial(), a.Transfer(p))
			}
		})
	}
}

func TestChainFlipChainTypestate(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainVars, Sites: []string{"h", "g"}, Fields: []string{"f"},
		Globals: []string{"G"},
		Methods: []string{"open", "close", "connect", "send", "next", "hasNext"},
	})
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(4+rng.Intn(8))))
			a := typestate.New(typestate.FileProperty(), "h", chainVars)
			ch := dataflow.NewChain[typestate.State](g)
			for step := 0; step < 12; step++ {
				p := randAbs(rng, len(chainVars))
				got := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
				want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(p), nil)
				checkEquiv(t, g, got, want, a.Initial(), a.Transfer(p))
			}
		})
	}
}

// TestChainSingleBitWalk flips exactly one parameter per step — the minimal
// CEGAR move and the sharpest test of the invalidation cone: everything the
// flipped parameter never touched must be served from the retained run.
func TestChainSingleBitWalk(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainLocals, Sites: chainSites, Fields: chainFields,
		Globals: []string{"G"}, Methods: []string{"m"},
	})
	rng := rand.New(rand.NewSource(42))
	g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(10)))
	a := escape.New(chainLocals, chainFields, chainSites)
	ch := dataflow.NewChain[escape.State](g)
	cur := uset.Set(nil)
	for step := 0; step < 16; step++ {
		k := rng.Intn(len(chainSites))
		if cur.Has(k) {
			cur = cur.Remove(k)
		} else {
			cur = cur.Add(k)
		}
		got := ch.Solve(cur, a.Initial(), a.TransferDep(cur), nil)
		want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(cur), nil)
		checkEquiv(t, g, got, want, a.Initial(), a.Transfer(cur))
	}
}

// TestChainRepeatedAbstraction re-solves the same abstraction back to back:
// the second solve must take the zero-work fast path and still return the
// full, correct result.
func TestChainRepeatedAbstraction(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainLocals, Sites: chainSites, Fields: chainFields,
		Globals: []string{"G"}, Methods: []string{"m"},
	})
	rng := rand.New(rand.NewSource(7))
	g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(8)))
	a := escape.New(chainLocals, chainFields, chainSites)
	ch := dataflow.NewChain[escape.State](g)
	p := uset.New(0, 2)
	first := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
	second := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
	if resumed, _, invalidated := ch.Stats(); !resumed || invalidated != 0 {
		t.Fatalf("repeat solve: resumed=%v invalidated=%d, want a clean resume", resumed, invalidated)
	}
	if second != first {
		t.Fatalf("repeat solve did not serve the retained result")
	}
	want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(p), nil)
	checkEquiv(t, g, second, want, a.Initial(), a.Transfer(p))
}
