package dataflow_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/nullness"
	"tracer/internal/oracle/gen"
	"tracer/internal/uset"
)

// The nullness flip suite mirrors the escape/typestate chains above for the
// third client. Nullness parameters are the cells themselves (locals then
// fields), so the walks flip over locals+fields rather than sites.

func nullnessChainCells() int { return len(chainLocals) + len(chainFields) }

func TestChainFlipChainNullness(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainLocals, Sites: chainSites, Fields: chainFields,
		Globals: []string{"G"}, Methods: []string{"m"},
	})
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(4+rng.Intn(8))))
			a := nullness.New(chainLocals, chainFields)
			ch := dataflow.NewChain[nullness.State](g)
			for step := 0; step < 12; step++ {
				p := randAbs(rng, nullnessChainCells())
				got := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
				want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(p), nil)
				checkEquiv(t, g, got, want, a.Initial(), a.Transfer(p))
			}
		})
	}
}

// TestChainSingleBitWalkNullness flips exactly one cell per step (see
// TestChainSingleBitWalk).
func TestChainSingleBitWalkNullness(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainLocals, Sites: chainSites, Fields: chainFields,
		Globals: []string{"G"}, Methods: []string{"m"},
	})
	rng := rand.New(rand.NewSource(42))
	g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(10)))
	a := nullness.New(chainLocals, chainFields)
	ch := dataflow.NewChain[nullness.State](g)
	cur := uset.Set(nil)
	for step := 0; step < 16; step++ {
		k := rng.Intn(nullnessChainCells())
		if cur.Has(k) {
			cur = cur.Remove(k)
		} else {
			cur = cur.Add(k)
		}
		got := ch.Solve(cur, a.Initial(), a.TransferDep(cur), nil)
		want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(cur), nil)
		checkEquiv(t, g, got, want, a.Initial(), a.Transfer(cur))
	}
}

// TestChainRepeatedAbstractionNullness re-solves the same abstraction back
// to back: the second solve must take the zero-work fast path and still
// return the full, correct result.
func TestChainRepeatedAbstractionNullness(t *testing.T) {
	pool := gen.Pool(gen.Universe{
		Vars: chainLocals, Sites: chainSites, Fields: chainFields,
		Globals: []string{"G"}, Methods: []string{"m"},
	})
	rng := rand.New(rand.NewSource(7))
	g := lang.BuildCFG(gen.Program(rng, pool, gen.DefaultConfig(8)))
	a := nullness.New(chainLocals, chainFields)
	ch := dataflow.NewChain[nullness.State](g)
	p := uset.New(0, 3)
	first := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
	second := ch.Solve(p, a.Initial(), a.TransferDep(p), nil)
	if resumed, _, invalidated := ch.Stats(); !resumed || invalidated != 0 {
		t.Fatalf("repeat solve: resumed=%v invalidated=%d, want a clean resume", resumed, invalidated)
	}
	if second != first {
		t.Fatalf("repeat solve did not serve the retained result")
	}
	want := dataflow.SolveBudget(g, a.Initial(), a.Transfer(p), nil)
	checkEquiv(t, g, second, want, a.Initial(), a.Transfer(p))
}
