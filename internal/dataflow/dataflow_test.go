package dataflow

import (
	"math/rand"
	"testing"

	"tracer/internal/lang"
)

// The mock analysis: states are small ints; atoms act as functions chosen
// by variable name. "a = null" maps s→min(s+1,3); "b = null" maps s→0;
// invoke toggles parity. The domain is finite (0..3), as §3.2 requires.
func mockTransfer(a lang.Atom, d int) int {
	switch at := a.(type) {
	case lang.MoveNull:
		if at.V == "a" {
			if d < 3 {
				return d + 1
			}
			return 3
		}
		return 0
	case lang.Invoke:
		return d ^ 1
	}
	return d
}

func randProg(rng *rand.Rand, depth int) lang.Prog {
	atoms := []lang.Atom{
		lang.MoveNull{V: "a"}, lang.MoveNull{V: "b"}, lang.Invoke{V: "x", M: "m"},
	}
	if depth == 0 || rng.Intn(3) == 0 {
		return lang.Atomic{A: atoms[rng.Intn(len(atoms))]}
	}
	switch rng.Intn(4) {
	case 0:
		return lang.Seq{Fst: randProg(rng, depth-1), Snd: randProg(rng, depth-1)}
	case 1:
		return lang.Choice{Left: randProg(rng, depth-1), Right: randProg(rng, depth-1)}
	case 2:
		return lang.Star{Body: randProg(rng, depth-1)}
	default:
		return lang.Atomic{A: atoms[rng.Intn(len(atoms))]}
	}
}

// TestSolveMatchesEvalProg: the CFG worklist solver computes exactly
// Fp[s]({dI}) of the structured evaluator (Fig 3) at the exit node.
func TestSolveMatchesEvalProg(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		p := randProg(rng, 4)
		g := lang.BuildCFG(p)
		want := EvalProg(p, map[int]bool{0: true}, mockTransfer)
		res := Solve(g, 0, mockTransfer)
		got := map[int]bool{}
		for _, d := range res.States(g.Exit) {
			got[d] = true
		}
		if len(got) != len(want) {
			t.Fatalf("program %s: got %v want %v", p, got, want)
		}
		for d := range want {
			if !got[d] {
				t.Fatalf("program %s: missing state %d (got %v)", p, d, got)
			}
		}
	}
}

// TestWitnessReplay: for every reachable (node, state), replaying the
// witness trace through the transfer function reproduces the state — the
// executable content of Lemma 1.
func TestWitnessReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		p := randProg(rng, 4)
		g := lang.BuildCFG(p)
		res := Solve(g, 0, mockTransfer)
		for n := 0; n < g.Nodes; n++ {
			for _, d := range res.States(n) {
				tr := res.Witness(n, d)
				if got := EvalTrace(tr, 0, mockTransfer); got != d {
					t.Fatalf("witness %q replays to %d, want %d", tr, got, d)
				}
			}
		}
	}
}

// TestWitnessIsProgramTrace: witnesses for exit states are prefixes of real
// program traces (they follow CFG edges), so the meta-analysis may treat
// them as members of trace(s).
func TestWitnessIsProgramTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		p := randProg(rng, 3)
		g := lang.BuildCFG(p)
		res := Solve(g, 0, mockTransfer)
		for _, d := range res.States(g.Exit) {
			tr := res.Witness(g.Exit, d)
			// The trace must be spelled by some entry→exit CFG path.
			if !accepts(g, tr) {
				t.Fatalf("witness %q is not a CFG path of %s", tr, p)
			}
		}
	}
}

func accepts(g *lang.CFG, tr lang.Trace) bool {
	type state struct{ node, pos int }
	seen := map[state]bool{}
	stack := []state{{g.Entry, 0}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.node == g.Exit && s.pos == len(tr) {
			return true
		}
		for _, ei := range g.Out[s.node] {
			e := g.Edges[ei]
			var next state
			if e.A == nil {
				next = state{e.To, s.pos}
			} else if s.pos < len(tr) && e.A == tr[s.pos] {
				next = state{e.To, s.pos + 1}
			} else {
				continue
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// TestLemma1 checks the paper's Lemma 1 on loop-free programs exactly
// (Fp[s]({d}) = {Fp[t](d) | t ∈ trace(s)}) and as an over-approximation
// check under bounded unrolling for programs with loops (every bounded
// trace's result is included in the fixpoint).
func TestLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 60; trial++ {
		p := randProg(rng, 2)
		full := EvalProg(p, map[int]bool{0: true}, mockTransfer)
		traces := lang.Traces(p, 7, 150)
		viaTraces := map[int]bool{}
		for _, tr := range traces {
			viaTraces[EvalTrace(tr, 0, mockTransfer)] = true
		}
		// Soundness direction: trace results are always in the fixpoint.
		for d := range viaTraces {
			if !full[d] {
				t.Fatalf("program %s: trace result %d missing from Fp[s]", p, d)
			}
		}
		// Exactness for loop-free programs.
		if !hasLoop(p) {
			for d := range full {
				if !viaTraces[d] {
					t.Fatalf("loop-free program %s: fixpoint state %d has no witness trace", p, d)
				}
			}
		}
	}
}

func hasLoop(p lang.Prog) bool {
	switch p := p.(type) {
	case lang.Star:
		return true
	case lang.Seq:
		return hasLoop(p.Fst) || hasLoop(p.Snd)
	case lang.Choice:
		return hasLoop(p.Left) || hasLoop(p.Right)
	default:
		return false
	}
}

// TestStatesAlong returns the pre-state sequence.
func TestStatesAlong(t *testing.T) {
	tr := lang.Trace{lang.MoveNull{V: "a"}, lang.MoveNull{V: "a"}, lang.MoveNull{V: "b"}}
	states := StatesAlong(tr, 0, mockTransfer)
	want := []int{0, 1, 2, 0}
	if len(states) != len(want) {
		t.Fatalf("len = %d", len(states))
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
}

// TestWitnessPanicsOnUnreached: asking for a witness of an unreached state
// is a programming error and must fail loudly.
func TestWitnessPanicsOnUnreached(t *testing.T) {
	g := lang.BuildCFG(lang.Atoms(lang.MoveNull{V: "a"}))
	res := Solve(g, 0, mockTransfer)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Witness(g.Exit, 99)
}

// TestStepsCountsDiscoveries: Steps equals the number of distinct
// (node, state) pairs found.
func TestStepsCountsDiscoveries(t *testing.T) {
	p := lang.Choice{Left: lang.Atoms(lang.MoveNull{V: "a"}), Right: lang.Atoms(lang.MoveNull{V: "b"})}
	g := lang.BuildCFG(p)
	res := Solve(g, 1, mockTransfer)
	total := 0
	for n := 0; n < g.Nodes; n++ {
		total += len(res.States(n))
	}
	if res.Steps != total {
		t.Fatalf("Steps = %d, want %d", res.Steps, total)
	}
}
