// Package dataflow implements the parametric dataflow framework of §3.2.
//
// A parametric analysis is specified by a set of abstractions P with a cost
// preorder, a finite set of abstract states D, and a transfer function
// [a]p : D → D for each atomic command a (Fig 4 and Fig 5 are the two
// instances). The analysis is disjunctive: a program denotes a transformer
// on sets of abstract states (Fig 3), and by Lemma 1 every reachable final
// state has a loop-free witness trace. The solver here records provenance
// for each (node, state) pair it discovers so that witness traces — the
// abstract counterexamples consumed by the backward meta-analysis — can be
// reconstructed in time linear in their length.
package dataflow

import (
	"fmt"

	"tracer/internal/budget"
	"tracer/internal/lang"
)

// Transfer is an instantiated transfer function λa,d. [a]p(d): the
// abstraction p has already been supplied by the analysis instance.
type Transfer[D comparable] func(a lang.Atom, d D) D

// EvalProg evaluates Fp[s](D0) per Fig 3, directly on the structured
// program. Loops are least fixpoints in the powerset order. It is the
// executable specification against which the CFG solver is tested.
func EvalProg[D comparable](p lang.Prog, init map[D]bool, tr Transfer[D]) map[D]bool {
	switch p := p.(type) {
	case lang.Skip:
		return copySet(init)
	case lang.Atomic:
		out := make(map[D]bool, len(init))
		for d := range init {
			out[tr(p.A, d)] = true
		}
		return out
	case lang.Seq:
		return EvalProg(p.Snd, EvalProg(p.Fst, init, tr), tr)
	case lang.Choice:
		out := EvalProg(p.Left, init, tr)
		for d := range EvalProg(p.Right, init, tr) {
			out[d] = true
		}
		return out
	case lang.Star:
		cur := copySet(init)
		for {
			next := EvalProg(p.Body, cur, tr)
			grew := false
			for d := range next {
				if !cur[d] {
					cur[d] = true
					grew = true
				}
			}
			if !grew {
				return cur
			}
		}
	}
	panic("dataflow: unknown program form")
}

// EvalTrace evaluates Fp[t](d) per Fig 3 on a single trace.
func EvalTrace[D comparable](t lang.Trace, d D, tr Transfer[D]) D {
	for _, a := range t {
		d = tr(a, d)
	}
	return d
}

// StatesAlong returns the length len(t)+1 sequence of abstract states
// visited while evaluating trace t from d: states[i] is the state before
// atom t[i]. The backward meta-analysis needs these pre-states for its
// under-approximation operator (Fig 7 threads Fp[t](d) through B).
func StatesAlong[D comparable](t lang.Trace, d D, tr Transfer[D]) []D {
	out := make([]D, len(t)+1)
	out[0] = d
	for i, a := range t {
		out[i+1] = tr(a, out[i])
	}
	return out
}

func copySet[D comparable](s map[D]bool) map[D]bool {
	out := make(map[D]bool, len(s))
	for d := range s {
		out[d] = true
	}
	return out
}

// origin records how a (node, state) pair was first discovered.
type origin[D comparable] struct {
	root      bool // true for the initial state at the entry node
	pred      int  // predecessor node
	predState D    // state at the predecessor
	atom      lang.Atom
}

// nodeState is a discovered (node, state) pair, the key of the flat
// provenance map.
type nodeState[D comparable] struct {
	node  int
	state D
}

// Result holds the states computed at every CFG node along with provenance.
// Discoveries live in one flat map keyed by (node, state) — a solve touches
// far fewer pairs than the CFG has nodes, so per-node maps would spend most
// of their allocation on empty buckets — plus a per-node slice for O(states
// at n) enumeration.
type Result[D comparable] struct {
	g      *lang.CFG
	tr     Transfer[D]
	seen   map[nodeState[D]]origin[D]
	byNode [][]D
	// Steps counts (node, state) discoveries, a machine-independent cost
	// measure used by the benchmark harness.
	Steps int
}

// States returns the abstract states reaching node n, in discovery order.
// The slice is shared with the result and must not be mutated.
func (r *Result[D]) States(n int) []D {
	return r.byNode[n]
}

// Has reports whether state d reaches node n.
func (r *Result[D]) Has(n int, d D) bool {
	_, ok := r.seen[nodeState[D]{n, d}]
	return ok
}

// Witness reconstructs an abstract counterexample trace ending at node n in
// state d: a loop-free walk through the (node, state) discovery graph, as
// guaranteed by Lemma 1. It panics if (n, d) was not reached.
func (r *Result[D]) Witness(n int, d D) lang.Trace {
	var rev []lang.Atom
	for {
		o, ok := r.seen[nodeState[D]{n, d}]
		if !ok {
			panic(fmt.Sprintf("dataflow: no witness for state %v at node %d", d, n))
		}
		if o.root {
			break
		}
		if o.atom != nil {
			rev = append(rev, o.atom)
		}
		n, d = o.pred, o.predState
	}
	out := make(lang.Trace, len(rev))
	for i, a := range rev {
		out[len(rev)-1-i] = a
	}
	return out
}

// Solve runs the disjunctive forward analysis over the CFG from the initial
// state at the entry node. ε edges propagate states unchanged. The solver
// is a chaotic worklist iteration; since D is finite for the analyses in
// this repository, it terminates.
func Solve[D comparable](g *lang.CFG, init D, tr Transfer[D]) *Result[D] {
	return SolveBudget(g, init, tr, nil)
}

// SolveBudget is Solve under a cooperative budget: the worklist polls b once
// per dequeued item and stops early when the budget trips, returning the
// partial fixpoint computed so far. A partial result under-approximates the
// reachable states, so callers must check b.Tripped() before trusting a
// "no failing state found" scan of it. A nil budget never trips.
func SolveBudget[D comparable](g *lang.CFG, init D, tr Transfer[D], b *budget.Budget) *Result[D] {
	return SolveBudgetHint(g, init, tr, b, 0)
}

// SolveBudgetHint is SolveBudget with a capacity hint for the discovery map:
// the expected number of (node, state) discoveries, typically the Steps
// count of a previous solve of the same CFG (CEGAR re-solves one CFG dozens
// of times, and consecutive iterations discover similar state counts — the
// exact hint avoids both rehash doublings and a mostly-empty table).
// hint <= 0 falls back to a bounded guess from the CFG size.
func SolveBudgetHint[D comparable](g *lang.CFG, init D, tr Transfer[D], b *budget.Budget, hint int) *Result[D] {
	return SolveScratch(g, init, tr, b, hint, nil)
}

// Scratch is reusable solver state for repeated solves over the same (or a
// same-sized) CFG — the CEGAR loop re-solves one CFG dozens of times, and
// re-allocating the discovery map, the per-node slices, and the worklist
// each iteration dominates the solver's allocation. A Scratch is owned by
// one solve at a time: reusing it invalidates the Result of the previous
// SolveScratch call that used it.
type Scratch[D comparable] struct {
	seen   map[nodeState[D]]origin[D]
	byNode [][]D
	work   []nodeState[D]
}

// SolveScratch is SolveBudgetHint with optional state reuse; sc may be nil.
func SolveScratch[D comparable](g *lang.CFG, init D, tr Transfer[D], b *budget.Budget, hint int, sc *Scratch[D]) *Result[D] {
	r := &Result[D]{g: g, tr: tr}
	var work []nodeState[D]
	if sc != nil && sc.seen != nil && len(sc.byNode) >= g.Nodes {
		clear(sc.seen)
		byNode := sc.byNode[:g.Nodes]
		for i := range byNode {
			byNode[i] = byNode[i][:0]
		}
		r.seen, r.byNode = sc.seen, byNode
		work = sc.work[:0]
	} else {
		if hint <= 0 {
			hint = g.Nodes
			if hint > 1024 {
				hint = 1024
			}
		}
		if hint < 64 {
			hint = 64
		}
		r.seen = make(map[nodeState[D]]origin[D], hint)
		r.byNode = make([][]D, g.Nodes)
	}
	r.seen[nodeState[D]{g.Entry, init}] = origin[D]{root: true}
	r.byNode[g.Entry] = append(r.byNode[g.Entry], init)
	r.Steps++
	work = append(work, nodeState[D]{g.Entry, init})
	for len(work) > 0 {
		if !b.Poll() {
			break
		}
		it := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range g.Out[it.node] {
			e := g.Edges[ei]
			next := it.state
			if e.A != nil {
				next = tr(e.A, it.state)
			}
			key := nodeState[D]{e.To, next}
			if _, seen := r.seen[key]; seen {
				continue
			}
			r.seen[key] = origin[D]{pred: it.node, predState: it.state, atom: e.A}
			r.byNode[e.To] = append(r.byNode[e.To], next)
			r.Steps++
			work = append(work, key)
		}
	}
	if sc != nil {
		sc.seen, sc.work = r.seen, work[:0]
		// Keep the longer per-node table when the scratch outgrew this CFG.
		if len(sc.byNode) < len(r.byNode) {
			sc.byNode = r.byNode
		}
	}
	return r
}
