// Package dataflow implements the parametric dataflow framework of §3.2.
//
// A parametric analysis is specified by a set of abstractions P with a cost
// preorder, a finite set of abstract states D, and a transfer function
// [a]p : D → D for each atomic command a (Fig 4 and Fig 5 are the two
// instances). The analysis is disjunctive: a program denotes a transformer
// on sets of abstract states (Fig 3), and by Lemma 1 every reachable final
// state has a loop-free witness trace. The solver here records provenance
// for each (node, state) pair it discovers so that witness traces — the
// abstract counterexamples consumed by the backward meta-analysis — can be
// reconstructed in time linear in their length.
package dataflow

import (
	"fmt"

	"tracer/internal/budget"
	"tracer/internal/lang"
)

// Transfer is an instantiated transfer function λa,d. [a]p(d): the
// abstraction p has already been supplied by the analysis instance.
type Transfer[D comparable] func(a lang.Atom, d D) D

// EvalProg evaluates Fp[s](D0) per Fig 3, directly on the structured
// program. Loops are least fixpoints in the powerset order. It is the
// executable specification against which the CFG solver is tested.
func EvalProg[D comparable](p lang.Prog, init map[D]bool, tr Transfer[D]) map[D]bool {
	switch p := p.(type) {
	case lang.Skip:
		return copySet(init)
	case lang.Atomic:
		out := make(map[D]bool, len(init))
		for d := range init {
			out[tr(p.A, d)] = true
		}
		return out
	case lang.Seq:
		return EvalProg(p.Snd, EvalProg(p.Fst, init, tr), tr)
	case lang.Choice:
		out := EvalProg(p.Left, init, tr)
		for d := range EvalProg(p.Right, init, tr) {
			out[d] = true
		}
		return out
	case lang.Star:
		cur := copySet(init)
		for {
			next := EvalProg(p.Body, cur, tr)
			grew := false
			for d := range next {
				if !cur[d] {
					cur[d] = true
					grew = true
				}
			}
			if !grew {
				return cur
			}
		}
	}
	panic("dataflow: unknown program form")
}

// EvalTrace evaluates Fp[t](d) per Fig 3 on a single trace.
func EvalTrace[D comparable](t lang.Trace, d D, tr Transfer[D]) D {
	for _, a := range t {
		d = tr(a, d)
	}
	return d
}

// StatesAlong returns the length len(t)+1 sequence of abstract states
// visited while evaluating trace t from d: states[i] is the state before
// atom t[i]. The backward meta-analysis needs these pre-states for its
// under-approximation operator (Fig 7 threads Fp[t](d) through B).
func StatesAlong[D comparable](t lang.Trace, d D, tr Transfer[D]) []D {
	out := make([]D, len(t)+1)
	out[0] = d
	for i, a := range t {
		out[i+1] = tr(a, out[i])
	}
	return out
}

func copySet[D comparable](s map[D]bool) map[D]bool {
	out := make(map[D]bool, len(s))
	for d := range s {
		out[d] = true
	}
	return out
}

// origin records how a (node, state) pair was first discovered.
type origin[D comparable] struct {
	root      bool // true for the initial state at the entry node
	pred      int  // predecessor node
	predState D    // state at the predecessor
	atom      lang.Atom
}

// Result holds the states computed at every CFG node along with provenance.
type Result[D comparable] struct {
	g      *lang.CFG
	tr     Transfer[D]
	states []map[D]origin[D]
	// Steps counts (node, state) discoveries, a machine-independent cost
	// measure used by the benchmark harness.
	Steps int
}

// States returns the set of abstract states reaching node n.
func (r *Result[D]) States(n int) []D {
	out := make([]D, 0, len(r.states[n]))
	for d := range r.states[n] {
		out = append(out, d)
	}
	return out
}

// Has reports whether state d reaches node n.
func (r *Result[D]) Has(n int, d D) bool {
	_, ok := r.states[n][d]
	return ok
}

// Witness reconstructs an abstract counterexample trace ending at node n in
// state d: a loop-free walk through the (node, state) discovery graph, as
// guaranteed by Lemma 1. It panics if (n, d) was not reached.
func (r *Result[D]) Witness(n int, d D) lang.Trace {
	var rev []lang.Atom
	for {
		o, ok := r.states[n][d]
		if !ok {
			panic(fmt.Sprintf("dataflow: no witness for state %v at node %d", d, n))
		}
		if o.root {
			break
		}
		if o.atom != nil {
			rev = append(rev, o.atom)
		}
		n, d = o.pred, o.predState
	}
	out := make(lang.Trace, len(rev))
	for i, a := range rev {
		out[len(rev)-1-i] = a
	}
	return out
}

// Solve runs the disjunctive forward analysis over the CFG from the initial
// state at the entry node. ε edges propagate states unchanged. The solver
// is a chaotic worklist iteration; since D is finite for the analyses in
// this repository, it terminates.
func Solve[D comparable](g *lang.CFG, init D, tr Transfer[D]) *Result[D] {
	return SolveBudget(g, init, tr, nil)
}

// SolveBudget is Solve under a cooperative budget: the worklist polls b once
// per dequeued item and stops early when the budget trips, returning the
// partial fixpoint computed so far. A partial result under-approximates the
// reachable states, so callers must check b.Tripped() before trusting a
// "no failing state found" scan of it. A nil budget never trips.
func SolveBudget[D comparable](g *lang.CFG, init D, tr Transfer[D], b *budget.Budget) *Result[D] {
	r := &Result[D]{g: g, tr: tr, states: make([]map[D]origin[D], g.Nodes)}
	for i := range r.states {
		r.states[i] = make(map[D]origin[D])
	}
	type item struct {
		node  int
		state D
	}
	var work []item
	r.states[g.Entry][init] = origin[D]{root: true}
	r.Steps++
	work = append(work, item{g.Entry, init})
	for len(work) > 0 {
		if !b.Poll() {
			break
		}
		it := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range g.Out[it.node] {
			e := g.Edges[ei]
			next := it.state
			if e.A != nil {
				next = tr(e.A, it.state)
			}
			if _, seen := r.states[e.To][next]; seen {
				continue
			}
			r.states[e.To][next] = origin[D]{pred: it.node, predState: it.state, atom: e.A}
			r.Steps++
			work = append(work, item{e.To, next})
		}
	}
	return r
}
