// Delta-driven incremental re-solving.
//
// The CEGAR loop re-solves one CFG dozens of times under abstractions that
// differ in a handful of parameters. A Chain retains the complete execution
// of its last solve — the discovery sequence, the dequeue order, and a
// per-(node, state) expansion memo tagged with dependency literals naming
// the abstraction parameters each transfer application actually consulted —
// and, when asked to solve under a flipped abstraction, validates the
// retained execution against the flip and resumes from the first divergent
// dequeue instead of starting cold.
//
// Determinism argument. The chaotic iteration in SolveScratch is a pure
// function of (CFG, abstraction, initial state): the worklist is LIFO, edges
// are expanded in CFG order, and discovery dedup is semantic equality. A
// Chain replays that exact function: a memo record is served only when its
// dependency literals agree with the new abstraction, in which case the
// recorded successor states are — by the DepTransfer contract — what the
// transfer function would have returned; and the retained execution prefix
// before the first dirty dequeue is exactly the prefix a cold solve under
// the new abstraction would produce, so reconstructing the worklist at that
// point (the discoveries not yet dequeued, in push order) and continuing
// yields an execution indistinguishable from the cold one: same discovery
// sequence, same Steps, same provenance, same Witness traces.
package dataflow

import (
	"tracer/internal/budget"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// DepTransfer is a Transfer that additionally reports which abstraction
// parameter the application consulted, as a signed dependency literal:
// 0 when the result is independent of the abstraction, +(k+1) when
// parameter k was consulted and was ON in the instantiating abstraction,
// -(k+1) when parameter k was consulted and was OFF. The contract is exact:
// applying the same atom to the same state under any abstraction p' that
// agrees with the literal (p'.Has(k) iff the literal is positive) must
// produce the same result. Both analysis clients consult at most one
// parameter per application, which is what makes a single literal
// sufficient; a client that consulted several would need the rhs-style
// literal lists instead.
type DepTransfer[D comparable] func(a lang.Atom, d D) (D, int32)

// DepLit encodes "parameter param was consulted under p" as a dependency
// literal for a DepTransfer result.
func DepLit(p uset.Set, param int) int32 {
	if p.Has(param) {
		return int32(param) + 1
	}
	return -(int32(param) + 1)
}

// Chain is a resumable forward solver over one CFG. It is bound to a single
// analysis instance: memo records store interned abstract states, so serving
// them through a different instance (different intern tables) is unsound —
// retain the Chain and its analysis together, and drop both together.
//
// Ownership follows Scratch: each Solve returns a Result backed by the
// chain's retained maps, and the next Solve on the same chain invalidates
// every previously returned Result. A Chain is owned by one solve at a time
// and is not safe for concurrent use.
type Chain[D comparable] struct {
	g *lang.CFG

	// Persistent expansion memo, valid across runs and abstractions. The
	// expansion of (node, state) — successor state and dependency literal
	// per out-edge, in CFG edge order — is a pure fact about the transfer
	// function, guarded by its literals. expIdx maps the pair to a record;
	// recStart[ri] is the record's offset into the recNext/recLit arenas
	// (records are allocated contiguously, so a record ends where the next
	// begins). A record whose literals disagree with the current abstraction
	// is recomputed and overwritten in place — same node, same out-degree —
	// so the arenas never accumulate garbage.
	expIdx   map[nodeState[D]]int32
	recStart []int32
	recNext  []D
	recLit   []int32

	// Retained execution of the last run, meaningful only when complete.
	complete bool
	init     D
	res      *Result[D]
	seq      []nodeState[D] // discoveries, in discovery order
	dqPos    []int32        // per discovery: its dequeue position
	deq      []int32        // per dequeue position: discovery index dequeued
	nDisc    []int32        // per dequeue position: len(seq) before the dequeue
	recOf    []int32        // per dequeue position: record served or computed

	// Aggregate dependency signature of the last run: every parameter some
	// used record consulted, split by the polarity it observed. The run is
	// valid as-is under p' iff onW ⊆ p' and offW ∩ p' = ∅ — an O(params/64)
	// check that skips even the validation scan when the flip touched only
	// parameters the run never consulted.
	onW, offW uset.Words

	work []int32 // worklist of discovery indices (scratch)

	lastResumed             bool
	lastReused, lastInvalid int
}

// NewChain returns an empty chain for g.
func NewChain[D comparable](g *lang.CFG) *Chain[D] {
	return &Chain[D]{g: g, expIdx: make(map[nodeState[D]]int32, 64)}
}

// Solve runs the forward analysis under abstraction p from init, reusing as
// much of the previous run as the parameter delta allows. The result is
// byte-equivalent to SolveBudget with the instantiated transfer function:
// same discoveries in the same order, same Steps, same provenance. A budget
// trip poisons the retained run (the next Solve starts cold, keeping only
// the expansion memo) and returns the partial fixpoint, which then owns its
// maps.
func (c *Chain[D]) Solve(p uset.Set, init D, tr DepTransfer[D], b *budget.Budget) *Result[D] {
	pw := paramWords(p)
	c.lastResumed, c.lastReused, c.lastInvalid = false, 0, 0
	if c.complete && init == c.init {
		if c.allClean(pw) {
			c.lastResumed = true
			c.lastReused = len(c.seq)
			return c.res
		}
		if t := c.firstDirty(pw); t >= 0 {
			c.lastResumed = true
			return c.resume(pw, tr, b, t)
		}
		// The aggregate signature is exact at record granularity, so a
		// failed fast path always yields a dirty dequeue; this is defensive.
		c.lastResumed = true
		c.lastReused = len(c.seq)
		return c.res
	}
	return c.cold(pw, init, tr, b)
}

// Stats reports the delta accounting of the most recent Solve: whether the
// delta path served it (a retained run existed and was validated), how many
// discoveries survived validation or were served from the memo without a
// transfer call, and how many were rolled back.
func (c *Chain[D]) Stats() (resumed bool, reused, invalidated int) {
	return c.lastResumed, c.lastReused, c.lastInvalid
}

// cold starts a fresh execution, reusing retained allocations and the
// expansion memo (serving a memo record in a cold run is still sound — its
// literals are checked against the current abstraction like any other).
func (c *Chain[D]) cold(pw uset.Words, init D, tr DepTransfer[D], b *budget.Budget) *Result[D] {
	g := c.g
	c.complete = false
	c.init = init
	if c.res == nil {
		hint := g.Nodes
		if hint > 1024 {
			hint = 1024
		}
		if hint < 64 {
			hint = 64
		}
		c.res = &Result[D]{g: g, seen: make(map[nodeState[D]]origin[D], hint), byNode: make([][]D, g.Nodes)}
	} else {
		clear(c.res.seen)
		for i := range c.res.byNode {
			c.res.byNode[i] = c.res.byNode[i][:0]
		}
		c.res.Steps = 0
	}
	c.seq, c.dqPos = c.seq[:0], c.dqPos[:0]
	c.deq, c.nDisc, c.recOf = c.deq[:0], c.nDisc[:0], c.recOf[:0]
	clearWords(c.onW)
	clearWords(c.offW)
	c.work = c.work[:0]
	key := nodeState[D]{g.Entry, init}
	c.res.seen[key] = origin[D]{root: true}
	c.res.byNode[g.Entry] = append(c.res.byNode[g.Entry], init)
	c.seq = append(c.seq, key)
	c.dqPos = append(c.dqPos, -1)
	c.work = append(c.work, 0)
	return c.finish(pw, tr, b)
}

// resume rolls the retained execution back to dequeue position t — the
// first whose record disagrees with the new abstraction — and continues.
// The discoveries made by the first t dequeues (a prefix of seq, since
// discovery order is monotone in dequeue order) survive; later ones are
// removed from the provenance map and the per-node slices in reverse
// discovery order, which keeps each per-node slice a pop-only truncation.
// The worklist at time t is exactly the surviving discoveries not yet
// dequeued by then, bottom-to-top in discovery (= push) order.
func (c *Chain[D]) resume(pw uset.Words, tr DepTransfer[D], b *budget.Budget, t int) *Result[D] {
	nT := int(c.nDisc[t])
	c.lastInvalid = len(c.seq) - nT
	// When almost nothing survives, rolling back entry-by-entry costs more
	// than replaying the run from the root: a replay still serves every
	// clean record from the expansion memo without a transfer call, and
	// clearing the provenance map wholesale beats deleting nearly all of its
	// keys one hash at a time. Either path reconstructs the identical
	// execution; only the accounting of "reused" shifts from
	// surviving-prefix discoveries to memo-served dequeues.
	if nT*8 < len(c.seq) {
		c.lastReused = 0
		return c.cold(pw, c.init, tr, b)
	}
	c.lastReused = nT
	for j := len(c.seq) - 1; j >= nT; j-- {
		key := c.seq[j]
		delete(c.res.seen, key)
		bn := c.res.byNode[key.node]
		c.res.byNode[key.node] = bn[:len(bn)-1]
	}
	c.seq = c.seq[:nT]
	c.dqPos = c.dqPos[:nT]
	c.deq = c.deq[:t]
	c.nDisc = c.nDisc[:t]
	c.recOf = c.recOf[:t]
	c.work = c.work[:0]
	for j := 0; j < nT; j++ {
		if c.dqPos[j] >= int32(t) {
			c.work = append(c.work, int32(j))
		}
	}
	c.complete = false
	return c.finish(pw, tr, b)
}

// finish drains the worklist, serving expansions from clean memo records
// and computing (and recording) the rest, then marks the run complete.
func (c *Chain[D]) finish(pw uset.Words, tr DepTransfer[D], b *budget.Budget) *Result[D] {
	g := c.g
	for len(c.work) > 0 {
		if !b.Poll() {
			// Poison the retained run: it no longer describes a completed
			// execution, and the escaping partial Result takes sole
			// ownership of the maps. The expansion memo survives.
			res := c.res
			res.Steps = len(c.seq)
			c.res = nil
			c.seq, c.dqPos, c.deq, c.nDisc, c.recOf, c.work = nil, nil, nil, nil, nil, nil
			c.onW, c.offW = nil, nil
			c.complete = false
			return res
		}
		j := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		it := c.seq[j]
		c.dqPos[j] = int32(len(c.deq))
		c.deq = append(c.deq, j)
		c.nDisc = append(c.nDisc, int32(len(c.seq)))
		out := g.Out[it.node]
		ri, known := c.expIdx[it]
		recompute := !known
		if known && !c.recClean(ri, pw) {
			recompute = true
		}
		if !known {
			ri = int32(len(c.recStart))
			c.recStart = append(c.recStart, int32(len(c.recNext)))
			var zero D
			for range out {
				c.recNext = append(c.recNext, zero)
				c.recLit = append(c.recLit, 0)
			}
			c.expIdx[it] = ri
		}
		start := c.recStart[ri]
		if recompute {
			for i, ei := range out {
				e := g.Edges[ei]
				next, lit := it.state, int32(0)
				if e.A != nil {
					next, lit = tr(e.A, it.state)
				}
				c.recNext[start+int32(i)] = next
				c.recLit[start+int32(i)] = lit
			}
		} else if c.lastResumed {
			c.lastReused++
		}
		c.recOf = append(c.recOf, ri)
		for i, ei := range out {
			e := g.Edges[ei]
			c.orLit(c.recLit[start+int32(i)])
			c.propagate(e.To, c.recNext[start+int32(i)], it, e.A)
		}
	}
	c.complete = true
	c.res.Steps = len(c.seq)
	return c.res
}

// propagate records a successor discovery, mirroring SolveScratch exactly.
func (c *Chain[D]) propagate(to int, next D, from nodeState[D], atom lang.Atom) {
	key := nodeState[D]{to, next}
	if _, seen := c.res.seen[key]; seen {
		return
	}
	c.res.seen[key] = origin[D]{pred: from.node, predState: from.state, atom: atom}
	c.res.byNode[to] = append(c.res.byNode[to], next)
	c.seq = append(c.seq, key)
	c.dqPos = append(c.dqPos, -1)
	c.work = append(c.work, int32(len(c.seq)-1))
}

// firstDirty scans the retained run's dequeues in order against the new
// abstraction, rebuilding the aggregate signature over the clean prefix,
// and returns the first dequeue position whose record disagrees (-1 if
// none).
func (c *Chain[D]) firstDirty(pw uset.Words) int {
	clearWords(c.onW)
	clearWords(c.offW)
	for t := 0; t < len(c.deq); t++ {
		start, end := c.recBounds(c.recOf[t])
		for k := start; k < end; k++ {
			if !litOK(c.recLit[k], pw) {
				return t
			}
		}
		for k := start; k < end; k++ {
			c.orLit(c.recLit[k])
		}
	}
	return -1
}

// recBounds returns the arena extent of record ri.
func (c *Chain[D]) recBounds(ri int32) (int32, int32) {
	start := c.recStart[ri]
	if int(ri)+1 < len(c.recStart) {
		return start, c.recStart[ri+1]
	}
	return start, int32(len(c.recLit))
}

// recClean reports whether every literal of record ri agrees with pw.
func (c *Chain[D]) recClean(ri int32, pw uset.Words) bool {
	start, end := c.recBounds(ri)
	for k := start; k < end; k++ {
		if !litOK(c.recLit[k], pw) {
			return false
		}
	}
	return true
}

// allClean is the aggregate fast path: no parameter the last run consulted
// changed polarity.
func (c *Chain[D]) allClean(pw uset.Words) bool {
	for i, w := range c.onW {
		var pv uint64
		if i < len(pw) {
			pv = pw[i]
		}
		if w&^pv != 0 {
			return false
		}
	}
	for i, w := range c.offW {
		var pv uint64
		if i < len(pw) {
			pv = pw[i]
		}
		if w&pv != 0 {
			return false
		}
	}
	return true
}

// orLit folds one dependency literal into the aggregate signature.
func (c *Chain[D]) orLit(lit int32) {
	switch {
	case lit == 0:
	case lit > 0:
		c.onW = setWordBit(c.onW, uint32(lit-1))
	default:
		c.offW = setWordBit(c.offW, uint32(-lit-1))
	}
}

func setWordBit(w uset.Words, i uint32) uset.Words {
	if int(i>>6) >= len(w) {
		w = w.Grow(int(i) + 1)
	}
	w.SetBit(i)
	return w
}

// litOK reports whether a dependency literal agrees with abstraction pw.
func litOK(lit int32, pw uset.Words) bool {
	switch {
	case lit == 0:
		return true
	case lit > 0:
		return pw.Has(uint32(lit - 1))
	default:
		return !pw.Has(uint32(-lit - 1))
	}
}

// paramWords converts an abstraction to a bitset for O(1) membership during
// validation. Bits beyond the top parameter read as unset, matching Has.
func paramWords(p uset.Set) uset.Words {
	if len(p) == 0 {
		return nil
	}
	w := uset.MakeWords(p[len(p)-1] + 1)
	for _, k := range p {
		w.SetBit(uint32(k))
	}
	return w
}

func clearWords(w uset.Words) {
	for i := range w {
		w[i] = 0
	}
}
