package typestate

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// figure1 builds the example program of Fig 1(a):
//
//	x = new File; y = x; if (*) z = x; x.open(); y.close(); check(x, σ)
//
// and returns the analysis plus the CFG (the query node is the exit).
func figure1(t *testing.T) (*Analysis, *lang.CFG) {
	t.Helper()
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.If(lang.Atoms(lang.Move{Dst: "z", Src: "x"})),
		lang.Atoms(lang.Invoke{V: "x", M: "open"}),
		lang.Atoms(lang.Invoke{V: "y", M: "close"}),
	)
	g := lang.BuildCFG(prog)
	a := New(FileProperty(), "h", CollectVars(g))
	return a, g
}

func (a *Analysis) wantStates(names ...string) uset.Bits {
	var b uset.Bits
	for _, n := range names {
		b = b.Add(a.Prop.MustState(n))
	}
	return b
}

// TestFigure1Check1 reproduces the check1 query: provable, with unique
// cheapest abstraction {x, y}, in three iterations.
func TestFigure1Check1(t *testing.T) {
	a, g := figure1(t)
	job := &Job{A: a, G: g, Q: Query{Nodes: []int{g.Exit}, Want: a.wantStates("closed")}, K: 1}
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("status = %v, want proved", res.Status)
	}
	got := map[string]bool{}
	for _, v := range res.Abstraction.Elems() {
		got[a.Vars.Value(v)] = true
	}
	if len(got) != 2 || !got["x"] || !got["y"] {
		t.Fatalf("cheapest abstraction = %v, want {x, y}", got)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3 (p={}, p={x}, p={x,y})", res.Iterations)
	}
}

// TestFigure1Check2 reproduces the check2 query: impossible for every
// abstraction, discovered in two iterations.
func TestFigure1Check2(t *testing.T) {
	a, g := figure1(t)
	job := &Job{A: a, G: g, Q: Query{Nodes: []int{g.Exit}, Want: a.wantStates("opened")}, K: 1}
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Impossible {
		t.Fatalf("status = %v, want impossible", res.Status)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

// TestFigure1Iteration1Formulas replays the meta-analysis of Fig 1(c):
// running with p = {} must yield the start condition
// closed∈ts ∧ opened∉ts ∧ x∉p.
func TestFigure1Iteration1Formulas(t *testing.T) {
	a, g := figure1(t)
	q := Query{Nodes: []int{g.Exit}, Want: a.wantStates("closed")}
	job := &Job{A: a, G: g, Q: q, K: 1}
	out := job.Forward(nil, nil)
	if out.Proved {
		t.Fatal("p = {} must fail to prove check1")
	}
	dI := a.Initial()
	states := dataflow.StatesAlong(out.Trace, dI, a.Transfer(nil))
	final := states[len(states)-1]
	if !final.Top {
		t.Fatalf("final state = %s, want ⊤", a.Format(final))
	}
	ann := meta.RunAnnotated(job.Client(nil), out.Trace, states, a.NotQ(q))
	start := ann[0]
	if len(start) != 1 {
		t.Fatalf("start formula = %v, want a single disjunct", start)
	}
	wantLits := map[string]bool{"t:0": false, "!t:1": false, "!p:x": false}
	for _, l := range start[0].Lits() {
		if _, ok := wantLits[l.Key()]; !ok {
			t.Fatalf("unexpected literal %s in %v", l, start)
		}
		wantLits[l.Key()] = true
	}
	for k, seen := range wantLits {
		if !seen {
			t.Errorf("missing literal %s in %v", k, start)
		}
	}
	// The derived cube must eliminate exactly the abstractions without x.
	cubes := job.Cubes(start, dI)
	if len(cubes) != 1 {
		t.Fatalf("cubes = %v, want 1", cubes)
	}
	x, _ := a.Vars.Lookup("x")
	if !cubes[0].Pos.Empty() || !cubes[0].Neg.Equal(uset.New(x)) {
		t.Fatalf("cube = %v, want off{x}", cubes[0])
	}
}

// TestFigure1Iteration2Formulas replays Fig 1(d): with p = {x} the start
// condition is closed∈ts ∧ opened∉ts ∧ y∉p ∧ x∈p.
func TestFigure1Iteration2Formulas(t *testing.T) {
	a, g := figure1(t)
	q := Query{Nodes: []int{g.Exit}, Want: a.wantStates("closed")}
	job := &Job{A: a, G: g, Q: q, K: 1}
	x, _ := a.Vars.Lookup("x")
	p := uset.New(x)
	out := job.Forward(nil, p)
	if out.Proved {
		t.Fatal("p = {x} must fail to prove check1")
	}
	cubes := job.Backward(nil, p, out.Trace)
	if len(cubes) != 1 {
		t.Fatalf("cubes = %v, want 1", cubes)
	}
	y, _ := a.Vars.Lookup("y")
	if !cubes[0].Pos.Equal(uset.New(x)) || !cubes[0].Neg.Equal(uset.New(y)) {
		t.Fatalf("cube = %v, want on{x} off{y}", cubes[0])
	}
}

// TestFigure1ForwardStates checks the α annotations of Fig 1(c) and (d).
func TestFigure1ForwardStates(t *testing.T) {
	a, g := figure1(t)
	q := Query{Nodes: []int{g.Exit}, Want: a.wantStates("closed")}
	job := &Job{A: a, G: g, Q: q, K: 1}

	// Iteration 1, p = {}: weak updates everywhere, ending in ⊤.
	out := job.Forward(nil, nil)
	states := dataflow.StatesAlong(out.Trace, a.Initial(), a.Transfer(nil))
	if got := a.Format(states[0]); got != "({closed}, {})" {
		t.Errorf("dI = %s", got)
	}
	if got := a.Format(states[len(states)-1]); got != "⊤" {
		t.Errorf("final = %s", got)
	}
	sawWeakOpen := false
	for i, at := range out.Trace {
		if iv, ok := at.(lang.Invoke); ok && iv.M == "open" {
			if got := a.Format(states[i+1]); got != "({closed,opened}, {})" {
				t.Errorf("state after x.open() = %s, want ({closed,opened}, {})", got)
			}
			sawWeakOpen = true
		}
	}
	if !sawWeakOpen {
		t.Error("trace lacks x.open()")
	}

	// Iteration 2, p = {x}: strong update at x.open().
	x, _ := a.Vars.Lookup("x")
	p := uset.New(x)
	out = job.Forward(nil, p)
	states = dataflow.StatesAlong(out.Trace, a.Initial(), a.Transfer(p))
	for i, at := range out.Trace {
		if iv, ok := at.(lang.Invoke); ok && iv.M == "open" {
			if got := a.Format(states[i+1]); got != "({opened}, {x})" {
				t.Errorf("state after x.open() = %s, want ({opened}, {x})", got)
			}
		}
	}
}

// TestIrrelevantVariableNotTracked: the z = x statement (Fig 1(a)) must not
// drag z into any abstraction TRACER tries.
func TestIrrelevantVariableNotTracked(t *testing.T) {
	a, g := figure1(t)
	job := &Job{A: a, G: g, Q: Query{Nodes: []int{g.Exit}, Want: a.wantStates("closed")}, K: 1}
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	z, ok := a.Vars.Lookup("z")
	if !ok {
		t.Fatal("z missing from variable universe")
	}
	if res.Abstraction.Has(z) {
		t.Fatalf("abstraction %v tracks irrelevant variable z", res.Abstraction)
	}
}
