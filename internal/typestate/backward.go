package typestate

import (
	"fmt"

	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// The primitive formulas of the type-state meta-analysis (Fig 9):
//
//	err       — the abstract state is ⊤
//	param(x)  — the abstraction p contains variable x
//	var(x)    — the state is (ts, vs) and x ∈ vs
//	type(σ)   — the state is (ts, vs) and σ ∈ ts
//
// δ(param(x)) constrains only the abstraction (it includes ⊤ states);
// var and type implicitly exclude ⊤.

// PErr is the primitive err.
type PErr struct{}

// PParam is the primitive param(x).
type PParam struct{ X string }

// PVar is the primitive var(x).
type PVar struct{ X string }

// PType is the primitive type(σ); S is an automaton state index and Name its
// printable name.
type PType struct {
	S    int
	Name string
}

func (PErr) Key() string     { return "err" }
func (p PParam) Key() string { return "p:" + p.X }
func (p PVar) Key() string   { return "v:" + p.X }
func (p PType) Key() string  { return "t:" + itoa(p.S) }

// itoa is a tiny strconv.Itoa for small non-negative state indices; it
// avoids pulling fmt into the literal-key hot path.
func itoa(v int) string {
	if v < 10 {
		return string([]byte{byte('0' + v)})
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
func (PErr) String() string     { return "err" }
func (p PParam) String() string { return p.X + "∈p" }
func (p PVar) String() string   { return p.X + "∈vs" }
func (p PType) String() string  { return p.Name + "∈ts" }

// Theory is the literal theory of the type-state meta-analysis. Negation
// keeps signed literals (Fig 9's formulas use ¬var, ¬type, ¬param directly).
type Theory struct{}

// NegLit keeps signed literals: there is no positive expansion of negation
// in this theory.
func (Theory) NegLit(l formula.Lit) ([]formula.Lit, bool) { return nil, false }

// Implies implements the fast entailment of Fig 9: identical literals,
// positive var/type literals entail ¬err, and err entails ¬var/¬type.
func (Theory) Implies(a, b formula.Lit) bool {
	if a == b {
		return true
	}
	if b.Neg {
		if _, ok := b.P.(PErr); ok && !a.Neg {
			switch a.P.(type) {
			case PVar, PType:
				return true
			}
		}
		if _, ok := a.P.(PErr); ok && !a.Neg {
			switch b.P.(type) {
			case PVar, PType:
				return true
			}
		}
	}
	return false
}

// Contradicts reports mutual exclusion: err conflicts with any positive
// var/type literal.
func (Theory) Contradicts(a, b formula.Lit) bool {
	if a.Neg || b.Neg {
		return false
	}
	if _, ok := a.P.(PErr); ok {
		switch b.P.(type) {
		case PVar, PType:
			return true
		}
	}
	return false
}

// EvalLit evaluates a literal at abstraction p and state d.
func (a *Analysis) EvalLit(l formula.Lit, p uset.Set, d State) bool {
	v := a.evalPrim(l.P, p, d)
	if l.Neg {
		return !v
	}
	return v
}

func (a *Analysis) evalPrim(pr formula.Prim, p uset.Set, d State) bool {
	switch pr := pr.(type) {
	case PErr:
		return d.Top
	case PParam:
		return p.Has(a.varID(pr.X))
	case PVar:
		return !d.Top && a.vsets.Value(d.VS).Has(a.varID(pr.X))
	case PType:
		return !d.Top && d.TS.Has(pr.S)
	}
	panic(fmt.Sprintf("typestate: unknown primitive %T", pr))
}

// typeLit builds the literal type(σ).
func (a *Analysis) typeLit(s int) formula.Formula {
	return formula.L(PType{S: s, Name: a.Prop.States[s]})
}

// WP returns the weakest precondition [at]♭(π) of a positive primitive π
// with respect to atomic command at (Fig 10, extended to the full atom set
// and to OnlyWeak transitions). Soundness — requirement (2) of §4 — is
// verified exhaustively in the tests.
func (a *Analysis) WP(at lang.Atom, prim formula.Prim) formula.Formula {
	switch pr := prim.(type) {
	case PParam:
		return formula.L(pr) // abstractions are not changed by execution
	case PErr:
		return a.wpErr(at)
	case PVar:
		return a.wpVar(at, pr)
	case PType:
		return a.wpType(at, pr)
	}
	panic(fmt.Sprintf("typestate: unknown primitive %T", prim))
}

// invokeInfo resolves whether an Invoke atom drives the automaton; it
// returns the transition and true only when the call can affect the tracked
// object.
func (a *Analysis) invokeInfo(at lang.Atom) (lang.Invoke, Transition, bool) {
	iv, ok := at.(lang.Invoke)
	if !ok {
		return lang.Invoke{}, Transition{}, false
	}
	tr, ok := a.Prop.Methods[iv.M]
	if !ok || !a.mayPoint(iv.V) {
		return lang.Invoke{}, Transition{}, false
	}
	return iv, tr, true
}

// topSources returns the automaton states s with Next[s] = ⊤.
func topSources(tr Transition) []int {
	var out []int
	for s, n := range tr.Next {
		if n == Err {
			out = append(out, s)
		}
	}
	return out
}

// wpErr computes [at]♭(err).
func (a *Analysis) wpErr(at lang.Atom) formula.Formula {
	err := formula.L(PErr{})
	iv, tr, drives := a.invokeInfo(at)
	if !drives {
		return err
	}
	var tops []formula.Formula
	for _, s := range topSources(tr) {
		tops = append(tops, a.typeLit(s))
	}
	if len(tops) == 0 {
		return err
	}
	cause := formula.Or(tops...)
	if tr.OnlyWeak {
		// The call errs only along the weak branch (receiver untracked).
		cause = formula.And(formula.NegL(PVar{iv.V}), cause)
	}
	return formula.Or(err, cause)
}

// wpVar computes [at]♭(var(z)).
func (a *Analysis) wpVar(at lang.Atom, pr PVar) formula.Formula {
	self := formula.L(pr)
	switch at := at.(type) {
	case lang.Alloc:
		if at.V != pr.X {
			return self
		}
		if at.H != a.Site {
			return formula.False()
		}
		// x joins vs exactly when tracked: param(x), on non-⊤ states.
		return formula.And(formula.L(PParam{pr.X}), formula.NegL(PErr{}))
	case lang.Move:
		if at.Dst != pr.X {
			return self
		}
		return formula.And(formula.L(PParam{pr.X}), formula.L(PVar{at.Src}))
	case lang.MoveNull:
		if at.V == pr.X {
			return formula.False()
		}
		return self
	case lang.GlobalRead:
		if at.V == pr.X {
			return formula.False()
		}
		return self
	case lang.Load:
		if at.Dst == pr.X {
			return formula.False()
		}
		return self
	case lang.GlobalWrite, lang.Store:
		return self
	case lang.Invoke:
		iv, tr, drives := a.invokeInfo(at)
		if !drives {
			return self
		}
		var noTop []formula.Formula
		for _, s := range topSources(tr) {
			noTop = append(noTop, formula.NegL(PType{S: s, Name: a.Prop.States[s]}))
		}
		safe := formula.And(noTop...)
		if tr.OnlyWeak {
			// Post-state is non-⊤ iff the receiver was tracked or no
			// current state transitions to ⊤.
			return formula.And(self, formula.Or(formula.L(PVar{iv.V}), safe))
		}
		return formula.And(self, safe)
	}
	return self
}

// wpType computes [at]♭(type(σ)).
func (a *Analysis) wpType(at lang.Atom, pr PType) formula.Formula {
	self := formula.L(pr)
	iv, tr, drives := a.invokeInfo(at)
	if !drives {
		return self // ts is unchanged by every non-driving atom
	}
	var noTop []formula.Formula
	for _, s := range topSources(tr) {
		noTop = append(noTop, formula.NegL(PType{S: s, Name: a.Prop.States[s]}))
	}
	safe := formula.And(noTop...)
	var sources []formula.Formula
	for s, n := range tr.Next {
		if n == pr.S {
			sources = append(sources, a.typeLit(s))
		}
	}
	from := formula.Or(sources...)
	if tr.OnlyWeak {
		// Tracked receiver: identity. Untracked: weak update with no ⊤.
		return formula.Or(
			formula.And(formula.L(PVar{iv.V}), self),
			formula.And(formula.NegL(PVar{iv.V}), safe, formula.Or(self, from)),
		)
	}
	// Fig 10: ¬err ∧ ⋀{¬type(s)|[m](s)=⊤} ∧ ((¬var(x) ∧ type(σ)) ∨ ⋁{type(s')|[m](s')=σ}).
	return formula.And(
		formula.NegL(PErr{}),
		safe,
		formula.Or(formula.And(formula.NegL(PVar{iv.V}), self), from),
	)
}

// NotQ returns the failure condition not(q) for a query: err ∨ ⋁{type(σ) |
// σ ∉ Want}.
func (a *Analysis) NotQ(q Query) formula.Formula {
	out := []formula.Formula{formula.L(PErr{})}
	for s := range a.Prop.States {
		if !q.Want.Has(s) {
			out = append(out, a.typeLit(s))
		}
	}
	return formula.Or(out...)
}
