package typestate

import (
	"testing"

	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// describe builds a conjunction that holds at exactly (p, d) within the
// two-variable test universe — the Descriptor of the WP synthesizer. The
// conjunction interns its literals into u.
func (a *Analysis) describe(u *formula.Universe, p uset.Set, d State) formula.Conj {
	var lits []formula.Lit
	for i := 0; i < a.Vars.Len(); i++ {
		lits = append(lits, formula.Lit{P: PParam{a.Vars.Value(i)}, Neg: !p.Has(i)})
	}
	if d.Top {
		lits = append(lits, formula.Lit{P: PErr{}})
		return formula.NewConj(u, lits...)
	}
	lits = append(lits, formula.Lit{P: PErr{}, Neg: true})
	for s, name := range a.Prop.States {
		lits = append(lits, formula.Lit{P: PType{S: s, Name: name}, Neg: !d.TS.Has(s)})
	}
	vs := a.MustAlias(d)
	for i := 0; i < a.Vars.Len(); i++ {
		lits = append(lits, formula.Lit{P: PVar{a.Vars.Value(i)}, Neg: !vs.Has(i)})
	}
	return formula.NewConj(u, lits...)
}

// TestHandwrittenWPMatchesSynthesized cross-checks the Fig 10 transfer
// functions against the brute-force synthesized weakest preconditions (§8's
// proposed recipe) on the full small universe.
func TestHandwrittenWPMatchesSynthesized(t *testing.T) {
	for _, prop := range []*Property{FileProperty(), StressProperty([]string{"m"})} {
		a := newTestAnalysis(prop)
		u := formula.NewUniverse(Theory{})
		desc := meta.Descriptor[uset.Set, State]{
			Describe: func(p uset.Set, d State) formula.Conj { return a.describe(u, p, d) },
			Eval:     func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
		}
		abstractions := a.AllAbstractions()
		states := a.AllStates()
		for _, atom := range testAtoms(prop) {
			for _, prim := range primsFor(a) {
				bad := meta.CheckAgainstSynthesized(
					atom, prim, a.WP,
					func(p uset.Set, d State) State { return a.step(p, atom, d) },
					desc, u, abstractions, states,
				)
				if bad != 0 {
					t.Errorf("[%s]♭(%s) disagrees with synthesized WP at %d points", atom, prim, bad)
				}
			}
		}
	}
}

// TestSynthesizedWPIsPrecondition sanity-checks the synthesizer itself on a
// single known case: [x = y]♭(var(x)) must denote param(x) ∧ var(y).
func TestSynthesizedWPIsPrecondition(t *testing.T) {
	a := newTestAnalysis(FileProperty())
	u := formula.NewUniverse(Theory{})
	desc := meta.Descriptor[uset.Set, State]{
		Describe: func(p uset.Set, d State) formula.Conj { return a.describe(u, p, d) },
		Eval:     func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
	}
	atom := lang.Move{Dst: "x", Src: "y"}
	synth := meta.SynthesizeWP(
		atom, PVar{"x"},
		func(p uset.Set, d State) State { return a.step(p, atom, d) },
		desc, a.AllAbstractions(), a.AllStates(),
	)
	want := formula.ToDNF(formula.And(formula.L(PParam{"x"}), formula.L(PVar{"y"})), u)
	for _, p := range a.AllAbstractions() {
		for _, d := range a.AllStates() {
			ev := func(l formula.Lit) bool { return a.EvalLit(l, p, d) }
			if synth.Eval(ev) != want.Eval(ev) {
				t.Fatalf("synthesized %s disagrees with param(x)∧var(y) at p=%v d=%s", synth, p, a.Format(d))
			}
		}
	}
}
