// Package typestate implements the parametric type-state analysis of §3.2
// (Fig 4) and its backward meta-analysis (Figs 9 and 10).
//
// The analysis tracks, for a single allocation site of interest, a pair
// (ts, vs) or ⊤, where ts over-approximates the possible type-states of an
// object created at that site and vs is a must-alias set of variables that
// definitely point to it. The abstraction parameter p ⊆ V chooses which
// variables may appear in must-alias sets; larger p is more precise and more
// expensive (the cost order compares |p|).
package typestate

import (
	"fmt"
	"sort"

	"tracer/internal/dataflow"
	"tracer/internal/intern"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// Top is the error abstract state ⊤: a type-state error has been detected.
// Non-⊤ states are (TS, VS) pairs; VS is an interned must-alias set.
type State struct {
	Top bool
	TS  uset.Bits // set of automaton state indices
	VS  int       // intern.Sets ID of the must-alias variable set
}

// Transition describes how a method call changes the type-state automaton.
type Transition struct {
	// Next[s] is the state reached from s, or Err for the error outcome ⊤.
	Next []int
	// OnlyWeak makes the transition apply only when the receiver is NOT in
	// the must-alias set. This models clients like the paper's fictitious
	// stress-test property (§6), where a precisely tracked receiver keeps
	// the object in its current state.
	OnlyWeak bool
}

// Err is the transition target denoting the type-state error ⊤.
const Err = -1

// Property is a type-state automaton: a finite set of states with an
// initial state and per-method transitions. Methods not in the map leave
// the type-state unchanged.
type Property struct {
	States  []string
	Init    int
	Methods map[string]Transition
}

// MustState panics unless s names an automaton state; it returns its index.
func (pr *Property) MustState(s string) int {
	for i, n := range pr.States {
		if n == s {
			return i
		}
	}
	panic(fmt.Sprintf("typestate: no automaton state %q", s))
}

// FileProperty returns the File automaton of the paper's §2 example:
// states closed/opened, open() and close() toggling, with errors on
// double-open and double-close.
func FileProperty() *Property {
	return &Property{
		States: []string{"closed", "opened"},
		Init:   0,
		Methods: map[string]Transition{
			"open":  {Next: []int{1, Err}},
			"close": {Next: []int{Err, 0}},
		},
	}
}

// SocketProperty returns a three-state connection protocol: a socket is
// created closed, must be bound before it is connected, and may only send
// while connected. Misordered calls are type-state errors.
func SocketProperty() *Property {
	const (
		closed = iota
		bound
		connected
	)
	return &Property{
		States: []string{"closed", "bound", "connected"},
		Init:   closed,
		Methods: map[string]Transition{
			"bind":    {Next: []int{bound, Err, Err}},
			"connect": {Next: []int{Err, connected, Err}},
			"send":    {Next: []int{Err, Err, connected}},
			"close":   {Next: []int{Err, closed, closed}},
		},
	}
}

// IteratorProperty returns the hasNext/next protocol: next() is only legal
// immediately after a hasNext() that has not been consumed.
func IteratorProperty() *Property {
	const (
		unknown = iota
		ready
	)
	return &Property{
		States: []string{"unknown", "ready"},
		Init:   unknown,
		Methods: map[string]Transition{
			"hasNext": {Next: []int{ready, ready}},
			"next":    {Next: []int{Err, unknown}},
		},
	}
}

// StressProperty returns the fictitious property used in the paper's
// evaluation (§6): two states init/error; any call of one of the given
// methods on an imprecisely tracked receiver moves the object to error.
func StressProperty(methods []string) *Property {
	pr := &Property{
		States:  []string{"init", "error"},
		Init:    0,
		Methods: make(map[string]Transition, len(methods)),
	}
	for _, m := range methods {
		pr.Methods[m] = Transition{Next: []int{1, 1}, OnlyWeak: true}
	}
	return pr
}

// Analysis is the parametric type-state analysis for one tracked allocation
// site in one program.
type Analysis struct {
	Prop *Property
	Site string // the tracked allocation site
	// Vars is the universe of pointer variables; indices into it are the
	// parameter indices of the abstraction family P = 2^V.
	Vars *intern.Strings
	// MayPoint reports whether a variable may point to an object allocated
	// at Site (the 0-CFA oracle of §6). nil means "always".
	MayPoint func(v string) bool

	vsets *intern.Sets
}

// New builds an analysis for the given property and tracked site over the
// variable universe vars.
func New(prop *Property, site string, vars []string) *Analysis {
	a := &Analysis{
		Prop:  prop,
		Site:  site,
		Vars:  intern.NewStrings(),
		vsets: intern.NewSets(),
	}
	for _, v := range vars {
		a.Vars.ID(v)
	}
	return a
}

// CollectVars returns the sorted set of local variable names mentioned by
// the atoms of a CFG, for building the variable universe.
func CollectVars(g *lang.CFG) []string {
	seen := make(map[string]bool)
	add := func(vs ...string) {
		for _, v := range vs {
			seen[v] = true
		}
	}
	for _, e := range g.Edges {
		switch a := e.A.(type) {
		case lang.Alloc:
			add(a.V)
		case lang.Move:
			add(a.Dst, a.Src)
		case lang.MoveNull:
			add(a.V)
		case lang.GlobalWrite:
			add(a.V)
		case lang.GlobalRead:
			add(a.V)
		case lang.Load:
			add(a.Dst, a.Src)
		case lang.Store:
			add(a.Dst, a.Src)
		case lang.Invoke:
			add(a.V)
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Initial returns the initial abstract state dI = ({init}, ∅).
func (a *Analysis) Initial() State {
	return State{TS: uset.Bits(0).Add(a.Prop.Init), VS: a.vsets.ID(nil)}
}

// MkState builds the abstract state (ts, vs); vs holds variable indices.
// It is intended for tests and clients that enumerate the state space.
func (a *Analysis) MkState(ts uset.Bits, vs uset.Set) State {
	return State{TS: ts, VS: a.vsets.ID(vs)}
}

// TopState returns ⊤.
func TopState() State { return State{Top: true} }

// AllStates enumerates the full abstract domain D over the analysis's
// variable universe: every (ts, vs) pair plus ⊤. It is exponential and
// meant for exhaustive soundness tests on small universes.
func (a *Analysis) AllStates() []State {
	nv := a.Vars.Len()
	ns := len(a.Prop.States)
	var out []State
	for ts := 0; ts < 1<<ns; ts++ {
		for vsBits := 0; vsBits < 1<<nv; vsBits++ {
			var vs uset.Set
			for v := 0; v < nv; v++ {
				if vsBits&(1<<v) != 0 {
					vs = vs.Add(v)
				}
			}
			out = append(out, a.MkState(uset.Bits(ts), vs))
		}
	}
	return append(out, TopState())
}

// AllAbstractions enumerates the abstraction family 2^V. Exponential; for
// tests on small universes.
func (a *Analysis) AllAbstractions() []uset.Set {
	nv := a.Vars.Len()
	out := make([]uset.Set, 0, 1<<nv)
	for bits := 0; bits < 1<<nv; bits++ {
		var p uset.Set
		for v := 0; v < nv; v++ {
			if bits&(1<<v) != 0 {
				p = p.Add(v)
			}
		}
		out = append(out, p)
	}
	return out
}

// MustAlias returns the must-alias set of a non-⊤ state.
func (a *Analysis) MustAlias(d State) uset.Set { return a.vsets.Value(d.VS) }

// Format renders a state like the α annotations of Fig 1.
func (a *Analysis) Format(d State) string {
	if d.Top {
		return "⊤"
	}
	names := []string{}
	for _, s := range d.TS.Elems() {
		names = append(names, a.Prop.States[s])
	}
	vs := []string{}
	for _, v := range a.MustAlias(d).Elems() {
		vs = append(vs, a.Vars.Value(v))
	}
	return fmt.Sprintf("({%s}, {%s})", join(names), join(vs))
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// varID returns the parameter index of a variable name, interning unseen
// names so that programs may mention variables outside the initial universe.
func (a *Analysis) varID(v string) int { return a.Vars.ID(v) }

// mayPoint consults the may-alias oracle.
func (a *Analysis) mayPoint(v string) bool {
	if a.MayPoint == nil {
		return true
	}
	return a.MayPoint(v)
}

// Transfer instantiates the transfer function [a]p of Fig 4 at abstraction
// p (a set of variable indices allowed in must-alias sets).
func (a *Analysis) Transfer(p uset.Set) dataflow.Transfer[State] {
	return func(at lang.Atom, d State) State {
		return a.step(p, at, d)
	}
}

// TransferDep is Transfer with dependency reporting for the incremental
// solver (dataflow.Chain): each application also returns the dependency
// literal naming the parameter it consulted. The type-state transfer reads
// the abstraction in exactly two places, both guarded: Alloc consults
// p.Has(x) only when the allocation is at the tracked site, and Move
// consults p.Has(dst) only when the source is in the must-alias set. Every
// other case — including Invoke, which reads the automaton, the may-point
// oracle, and the must-alias set but never p — is abstraction-independent.
func (a *Analysis) TransferDep(p uset.Set) dataflow.DepTransfer[State] {
	return func(at lang.Atom, d State) (State, int32) {
		lit := int32(0)
		if !d.Top {
			switch at := at.(type) {
			case lang.Alloc:
				if at.H == a.Site {
					lit = dataflow.DepLit(p, a.varID(at.V))
				}
			case lang.Move:
				if a.vsets.Value(d.VS).Has(a.varID(at.Src)) {
					lit = dataflow.DepLit(p, a.varID(at.Dst))
				}
			}
		}
		return a.step(p, at, d), lit
	}
}

func (a *Analysis) step(p uset.Set, at lang.Atom, d State) State {
	if d.Top {
		return d
	}
	vs := a.vsets.Value(d.VS)
	setVS := func(nvs uset.Set) State {
		return State{TS: d.TS, VS: a.vsets.ID(nvs)}
	}
	switch at := at.(type) {
	case lang.Alloc:
		x := a.varID(at.V)
		nvs := vs.Remove(x)
		if at.H == a.Site && p.Has(x) {
			nvs = nvs.Add(x)
		}
		return setVS(nvs)
	case lang.Move:
		x, y := a.varID(at.Dst), a.varID(at.Src)
		if vs.Has(y) && p.Has(x) {
			return setVS(vs.Add(x))
		}
		return setVS(vs.Remove(x))
	case lang.MoveNull:
		return setVS(vs.Remove(a.varID(at.V)))
	case lang.GlobalRead:
		return setVS(vs.Remove(a.varID(at.V)))
	case lang.Load:
		return setVS(vs.Remove(a.varID(at.Dst)))
	case lang.GlobalWrite, lang.Store:
		return d
	case lang.Invoke:
		tr, ok := a.Prop.Methods[at.M]
		if !ok || !a.mayPoint(at.V) {
			return d
		}
		x := a.varID(at.V)
		must := vs.Has(x)
		if tr.OnlyWeak && must {
			return d
		}
		next := uset.Bits(0)
		for _, s := range d.TS.Elems() {
			n := tr.Next[s]
			if n == Err {
				return State{Top: true}
			}
			next = next.Add(n)
		}
		if must {
			return State{TS: next, VS: d.VS}
		}
		return State{TS: d.TS.Union(next), VS: d.VS}
	}
	return d
}

// Query asks whether, at a program point, the tracked object's type-state is
// always within Want (and no error ⊤ has occurred). This subsumes both the
// File example's check(x, σ) queries and the evaluation's stress queries
// (Want = {init}). A source-level program point may correspond to several
// CFG nodes after inlining, so a query carries a node set.
type Query struct {
	Nodes []int
	Want  uset.Bits
}

// Holds reports whether a single abstract state satisfies the query.
func (q Query) Holds(d State) bool {
	if d.Top {
		return false
	}
	return d.TS.Intersect(^q.Want) == 0
}
