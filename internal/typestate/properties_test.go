package typestate

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// TestSocketProtocolEndToEnd runs TRACER on a socket protocol scenario:
// the socket flows through an alias before each call, so the proof must
// track the whole alias set; a second query after a stray send is
// impossible.
func TestSocketProtocolEndToEnd(t *testing.T) {
	// s = new Socket; a = s; s.bind(); b = a; b.connect(); a.send();
	prog := lang.Atoms(
		lang.Alloc{V: "s", H: "h"},
		lang.Move{Dst: "a", Src: "s"},
		lang.Invoke{V: "s", M: "bind"},
		lang.Move{Dst: "b", Src: "a"},
		lang.Invoke{V: "b", M: "connect"},
		lang.Invoke{V: "a", M: "send"},
	)
	g := lang.BuildCFG(prog)
	a := New(SocketProperty(), "h", CollectVars(g))
	want := uset.Bits(0).Add(a.Prop.MustState("connected"))
	job := &Job{A: a, G: g, Q: Query{Nodes: []int{g.Exit}, Want: want}, K: 5}
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("status = %v after %d iterations", res.Status, res.Iterations)
	}
	// All three aliases participate in events; tracking all of them is the
	// cheapest proof.
	if res.Abstraction.Len() != 3 {
		names := []string{}
		for _, v := range res.Abstraction.Elems() {
			names = append(names, a.Vars.Value(v))
		}
		t.Fatalf("cheapest abstraction = %v (|p|=%d), want all three aliases", names, res.Abstraction.Len())
	}
}

// TestSocketMisuseImpossible: send before connect cannot be proven safe by
// any abstraction (it is genuinely an error).
func TestSocketMisuseImpossible(t *testing.T) {
	prog := lang.Atoms(
		lang.Alloc{V: "s", H: "h"},
		lang.Invoke{V: "s", M: "bind"},
		lang.Invoke{V: "s", M: "send"}, // protocol violation
	)
	g := lang.BuildCFG(prog)
	a := New(SocketProperty(), "h", CollectVars(g))
	want := uset.Bits(0).Add(a.Prop.MustState("connected"))
	job := &Job{A: a, G: g, Q: Query{Nodes: []int{g.Exit}, Want: want}, K: 5}
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Impossible {
		t.Fatalf("status = %v, want impossible", res.Status)
	}
}

// TestIteratorProtocol: a well-guarded next() is provable; a double next()
// is impossible.
func TestIteratorProtocol(t *testing.T) {
	a := New(IteratorProperty(), "h", []string{"it", "jt"})
	want := uset.Bits(0).Add(a.Prop.MustState("unknown")).Add(a.Prop.MustState("ready"))

	good := lang.BuildCFG(lang.Atoms(
		lang.Alloc{V: "it", H: "h"},
		lang.Invoke{V: "it", M: "hasNext"},
		lang.Invoke{V: "it", M: "next"},
	))
	res, err := core.Solve(&Job{A: a, G: good, Q: Query{Nodes: []int{good.Exit}, Want: want}, K: 5}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("guarded next: %v", res.Status)
	}

	a2 := New(IteratorProperty(), "h", []string{"it", "jt"})
	bad := lang.BuildCFG(lang.Atoms(
		lang.Alloc{V: "it", H: "h"},
		lang.Invoke{V: "it", M: "hasNext"},
		lang.Invoke{V: "it", M: "next"},
		lang.Invoke{V: "it", M: "next"}, // unguarded second next
	))
	res, err = core.Solve(&Job{A: a2, G: bad, Q: Query{Nodes: []int{bad.Exit}, Want: want}, K: 5}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Impossible {
		t.Fatalf("double next: %v, want impossible", res.Status)
	}
}

// TestSocketWPSoundness extends the exhaustive requirement-(2) check to the
// three-state socket property, exercising multi-state ⊤ transitions in the
// backward transfer functions.
func TestSocketWPSoundness(t *testing.T) {
	prop := SocketProperty()
	a := newTestAnalysis(prop)
	u := formula.NewUniverse(Theory{})
	abstractions := a.AllAbstractions()
	states := a.AllStates()
	for _, atom := range testAtoms(prop) {
		for _, prim := range primsFor(a) {
			bad := meta.CheckWP(
				atom, prim, a.WP, u,
				abstractions, states,
				func(p uset.Set, d State) State { return a.step(p, atom, d) },
				func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
			)
			if len(bad) != 0 {
				t.Errorf("[%s]♭(%s): %d violations", atom, prim, len(bad))
			}
		}
	}
}
