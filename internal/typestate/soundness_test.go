package typestate

import (
	"math/rand"
	"sort"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/oracle/gen"
	"tracer/internal/uset"
)

// testAtoms returns the full atom pool over the universe {x, y}, site h
// (tracked) and g (untracked), field f, global G, and every property
// method. The pool is the oracle generator's cross product (see
// internal/oracle/gen), so these exhaustive suites and the fuzzing harness
// exercise the same command vocabulary.
func testAtoms(prop *Property) []lang.Atom {
	methods := make([]string, 0, len(prop.Methods))
	for m := range prop.Methods {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	return gen.Pool(gen.Universe{
		Vars:    []string{"x", "y"},
		Sites:   []string{"h", "g"},
		Fields:  []string{"f"},
		Globals: []string{"G"},
		Methods: methods,
	})
}

// primsFor returns every primitive over the test universe.
func primsFor(a *Analysis) []formula.Prim {
	prims := []formula.Prim{PErr{}}
	for i := 0; i < a.Vars.Len(); i++ {
		v := a.Vars.Value(i)
		prims = append(prims, PParam{v}, PVar{v})
	}
	for s, name := range a.Prop.States {
		prims = append(prims, PType{S: s, Name: name})
	}
	return prims
}

// newTestAnalysis builds an analysis over {x, y} for the given property.
func newTestAnalysis(prop *Property) *Analysis {
	return New(prop, "h", []string{"x", "y"})
}

// TestWPRequirement2 exhaustively verifies requirement (2) of §4 for every
// (atom, primitive) pair over the full universe of abstractions and states:
// the backward transfer function must compute exactly the weakest
// precondition of the forward transfer function.
func TestWPRequirement2(t *testing.T) {
	for _, tc := range []struct {
		name string
		prop *Property
	}{
		{"file", FileProperty()},
		{"stress", StressProperty([]string{"m"})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := newTestAnalysis(tc.prop)
			u := formula.NewUniverse(Theory{})
			abstractions := a.AllAbstractions()
			states := a.AllStates()
			for _, atom := range testAtoms(tc.prop) {
				for _, prim := range primsFor(a) {
					bad := meta.CheckWP(
						atom, prim, a.WP, u,
						abstractions, states,
						func(p uset.Set, d State) State { return a.step(p, atom, d) },
						func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
					)
					if len(bad) != 0 {
						pi, di := bad[0][0], bad[0][1]
						t.Errorf("[%s]♭(%s) wrong at p=%v d=%s (%d violations)",
							atom, prim, abstractions[pi], a.Format(states[di]), len(bad))
					}
				}
			}
		})
	}
}

// TestWPRequirement2WithMayAlias repeats the exhaustive check with a
// non-trivial may-alias oracle (y never points to the tracked site), since
// the oracle gates which calls drive the automaton.
func TestWPRequirement2WithMayAlias(t *testing.T) {
	a := newTestAnalysis(FileProperty())
	a.MayPoint = func(v string) bool { return v != "y" }
	u := formula.NewUniverse(Theory{})
	abstractions := a.AllAbstractions()
	states := a.AllStates()
	for _, atom := range []lang.Atom{
		lang.Invoke{V: "x", M: "open"},
		lang.Invoke{V: "y", M: "open"},
		lang.Invoke{V: "y", M: "close"},
	} {
		for _, prim := range primsFor(a) {
			bad := meta.CheckWP(
				atom, prim, a.WP, u,
				abstractions, states,
				func(p uset.Set, d State) State { return a.step(p, atom, d) },
				func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
			)
			if len(bad) != 0 {
				t.Errorf("[%s]♭(%s): %d violations", atom, prim, len(bad))
			}
		}
	}
}

// TestTheorem3RandomTraces checks both clauses of Theorem 3 on random
// traces: clause 1 (the analyzed (p, dI) stays in the computed condition
// when the run fails) and clause 2 (every pair in the condition leads to
// failure).
func TestTheorem3RandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, prop := range []*Property{FileProperty(), StressProperty([]string{"m"})} {
		a := newTestAnalysis(prop)
		atoms := testAtoms(prop)
		abstractions := a.AllAbstractions()
		states := a.AllStates()
		q := Query{Want: uset.Bits(0).Add(prop.Init)}
		post := a.NotQ(q)
		for trial := 0; trial < 60; trial++ {
			n := 1 + rng.Intn(6)
			tr := make(lang.Trace, n)
			for i := range tr {
				tr[i] = atoms[rng.Intn(len(atoms))]
			}
			p := abstractions[rng.Intn(len(abstractions))]
			dI := a.Initial()
			selfTr := a.Transfer(p)
			final := dataflow.EvalTrace(tr, dI, selfTr)
			failed := post.Eval(func(l formula.Lit) bool { return a.EvalLit(l, p, final) })
			for _, k := range []int{1, 2, 0} {
				client := &meta.Client[State]{
					WP:   a.WP,
					U:    formula.NewUniverse(Theory{}),
					Eval: func(l formula.Lit, d State) bool { return a.EvalLit(l, p, d) },
					K:    k,
				}
				c1, c2 := meta.CheckSoundness(
					client, tr, dI, post, failed,
					abstractions, states,
					func(p0 uset.Set) dataflow.Transfer[State] { return a.Transfer(p0) },
					func(p0 uset.Set) func(l formula.Lit, d State) bool {
						return func(l formula.Lit, d State) bool { return a.EvalLit(l, p0, d) }
					},
					selfTr,
				)
				if c1 != 0 {
					t.Fatalf("k=%d trace %q p=%v: clause 1 violated", k, tr, p)
				}
				if c2 != 0 {
					t.Fatalf("k=%d trace %q p=%v: clause 2 violated %d times", k, tr, p, c2)
				}
			}
		}
	}
}

// TestTransferInvariant checks that transfer functions keep must-alias sets
// within the abstraction (vs ⊆ p) when started from conforming states.
func TestTransferInvariant(t *testing.T) {
	a := newTestAnalysis(FileProperty())
	rng := rand.New(rand.NewSource(3))
	atoms := testAtoms(FileProperty())
	for _, p := range a.AllAbstractions() {
		d := a.Initial()
		tr := a.Transfer(p)
		for i := 0; i < 100; i++ {
			d = tr(atoms[rng.Intn(len(atoms))], d)
			if d.Top {
				break
			}
			if !a.MustAlias(d).SubsetOf(p) {
				t.Fatalf("vs=%v ⊄ p=%v", a.MustAlias(d), p)
			}
		}
	}
}
