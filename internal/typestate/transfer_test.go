package typestate

import (
	"testing"

	"tracer/internal/lang"
	"tracer/internal/uset"
)

// TestTransferRulesFig4 spells out the transfer function of Fig 4 case by
// case on the File property, as executable documentation.
func TestTransferRulesFig4(t *testing.T) {
	a := newTestAnalysis(FileProperty())
	x, _ := a.Vars.Lookup("x")
	y, _ := a.Vars.Lookup("y")
	closed, opened := uset.Bits(1), uset.Bits(2)
	both := closed | opened

	mk := func(ts uset.Bits, vs ...int) State { return a.MkState(ts, uset.New(vs...)) }
	pAll := uset.New(x, y)

	cases := []struct {
		name string
		p    uset.Set
		atom lang.Atom
		in   State
		want State
	}{
		// [x = y]p: x joins vs iff y ∈ vs and x ∈ p.
		{"move tracked alias", pAll, lang.Move{Dst: "x", Src: "y"}, mk(closed, y), mk(closed, x, y)},
		{"move untracked dst", uset.New(y), lang.Move{Dst: "x", Src: "y"}, mk(closed, y), mk(closed, y)},
		{"move non-alias src", pAll, lang.Move{Dst: "x", Src: "y"}, mk(closed, x), mk(closed)},
		// [x = null]p: x leaves vs.
		{"null kills", pAll, lang.MoveNull{V: "x"}, mk(closed, x, y), mk(closed, y)},
		// [x = new h]p at the tracked site: x definitely points to it.
		{"alloc tracked site", pAll, lang.Alloc{V: "x", H: "h"}, mk(closed, y), mk(closed, x, y)},
		{"alloc other site", pAll, lang.Alloc{V: "x", H: "other"}, mk(closed, x), mk(closed)},
		{"alloc untracked var", uset.New(y), lang.Alloc{V: "x", H: "h"}, mk(closed), mk(closed)},
		// Loads and global reads kill must-alias facts.
		{"load kills", pAll, lang.Load{Dst: "x", Src: "y", F: "f"}, mk(closed, x), mk(closed)},
		{"global read kills", pAll, lang.GlobalRead{V: "x", G: "G"}, mk(closed, x), mk(closed)},
		// Stores and global writes are identity.
		{"store identity", pAll, lang.Store{Dst: "x", F: "f", Src: "y"}, mk(opened, x), mk(opened, x)},
		// [x.m()]p: strong update when x ∈ vs.
		{"strong open", pAll, lang.Invoke{V: "x", M: "open"}, mk(closed, x), mk(opened, x)},
		// Weak update when x ∉ vs: union of old and new type-states.
		{"weak open", pAll, lang.Invoke{V: "x", M: "open"}, mk(closed), mk(both)},
		// ⊤ when any current state transitions to error.
		{"double open errs", pAll, lang.Invoke{V: "x", M: "open"}, mk(opened, x), TopState()},
		{"weak close errs", pAll, lang.Invoke{V: "y", M: "close"}, mk(both), TopState()},
		// Non-property methods are ignored.
		{"unknown method", pAll, lang.Invoke{V: "x", M: "frob"}, mk(opened, x), mk(opened, x)},
		// ⊤ is absorbing.
		{"top absorbs", pAll, lang.Move{Dst: "x", Src: "y"}, TopState(), TopState()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := a.step(tc.p, tc.atom, tc.in)
			if got != tc.want {
				t.Fatalf("[%s]p(%s) = %s, want %s", tc.atom, a.Format(tc.in), a.Format(got), a.Format(tc.want))
			}
		})
	}
}

// TestOnlyWeakTransition: the stress property's transition fires only on
// weak updates (precisely tracked receivers stay in init).
func TestOnlyWeakTransition(t *testing.T) {
	a := newTestAnalysis(StressProperty([]string{"m"}))
	x, _ := a.Vars.Lookup("x")
	init := uset.Bits(1)
	tracked := a.MkState(init, uset.New(x))
	untracked := a.MkState(init, nil)
	call := lang.Invoke{V: "x", M: "m"}

	if got := a.step(uset.New(x), call, tracked); got != tracked {
		t.Fatalf("tracked receiver transitioned: %s", a.Format(got))
	}
	got := a.step(nil, call, untracked)
	if got.Top || !got.TS.Has(1) || !got.TS.Has(0) {
		t.Fatalf("untracked receiver state = %s, want {init,error}", a.Format(got))
	}
}

// TestMayAliasOracleGates: calls whose receiver cannot point to the tracked
// site are identity.
func TestMayAliasOracleGates(t *testing.T) {
	a := newTestAnalysis(FileProperty())
	a.MayPoint = func(v string) bool { return v == "x" }
	opened := uset.Bits(2)
	d := a.MkState(opened, nil)
	if got := a.step(nil, lang.Invoke{V: "y", M: "open"}, d); got != d {
		t.Fatalf("gated call changed state: %s", a.Format(got))
	}
	if got := a.step(nil, lang.Invoke{V: "x", M: "open"}, d); !got.Top {
		t.Fatalf("ungated double open did not err: %s", a.Format(got))
	}
}
