package bench

import (
	"fmt"
	"sync"

	"tracer/internal/driver"
)

// Benchmark is one loaded suite member.
type Benchmark struct {
	Config Config
	Source string
	Prog   *driver.Program
}

// Suite returns the configurations of the seven benchmark stand-ins, in the
// paper's order (Table 1). Sizes are scaled down uniformly; the relative
// ordering of class counts, method counts, call depth, alias-chain length,
// and abstraction-family sizes follows the paper's suite, so the shapes of
// the measured results are comparable (who is hardest, where impossibility
// dominates, how cheapest-abstraction sizes grow).
func Suite() []Config {
	return []Config{
		{
			Name: "tsp", Desc: "Traveling Salesman implementation", Seed: 101,
			AppClasses: 4, Services: 7, CallDepth: 2, ChainLen: 2, Globals: 2,
			LeakPct: 30, LoopPct: 25, BoxPct: 20, GlobalReadPct: 20, ExtraAllocPct: 20,
		},
		{
			Name: "elevator", Desc: "discrete event simulator", Seed: 202,
			AppClasses: 5, Services: 8, CallDepth: 2, ChainLen: 2, Globals: 2,
			LeakPct: 35, LoopPct: 35, BoxPct: 25, GlobalReadPct: 20, ExtraAllocPct: 20,
		},
		{
			Name: "hedc", Desc: "web crawler from ETH", Seed: 303,
			AppClasses: 9, Services: 14, CallDepth: 3, ChainLen: 2, Globals: 3,
			LeakPct: 35, LoopPct: 30, BoxPct: 30, GlobalReadPct: 25, ExtraAllocPct: 25,
		},
		{
			Name: "weblech", Desc: "website download/mirror tool", Seed: 404,
			AppClasses: 11, Services: 17, CallDepth: 3, ChainLen: 3, Globals: 3,
			LeakPct: 40, LoopPct: 30, BoxPct: 30, GlobalReadPct: 25, ExtraAllocPct: 25,
		},
		{
			Name: "antlr", Desc: "a parser/translator generator", Seed: 505,
			AppClasses: 16, Services: 24, CallDepth: 4, ChainLen: 5, Globals: 4,
			LeakPct: 40, LoopPct: 35, BoxPct: 30, GlobalReadPct: 25, ExtraAllocPct: 30,
		},
		{
			Name: "avrora", Desc: "microcontroller simulator/analyzer", Seed: 606,
			AppClasses: 24, Services: 36, CallDepth: 6, ChainLen: 8, Globals: 5,
			LeakPct: 40, LoopPct: 35, BoxPct: 30, GlobalReadPct: 25, ExtraAllocPct: 30,
		},
		{
			Name: "lusearch", Desc: "text indexing and search tool", Seed: 707,
			AppClasses: 18, Services: 28, CallDepth: 4, ChainLen: 6, Globals: 4,
			LeakPct: 40, LoopPct: 35, BoxPct: 30, GlobalReadPct: 25, ExtraAllocPct: 30,
		},
	}
}

// SmallSuite returns the four smallest benchmarks (used by Fig 13, which
// the paper reports only on those because k=1 and k=10 exhaust memory on
// the larger three).
func SmallSuite() []Config { return Suite()[:4] }

var (
	loadMu    sync.Mutex
	loadCache = map[string]*Benchmark{}
)

// Load generates, parses, and prepares a benchmark, caching the result.
func Load(cfg Config) (*Benchmark, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	if b, ok := loadCache[cfg.Name]; ok {
		return b, nil
	}
	src := Generate(cfg)
	prog, err := driver.Load(src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", cfg.Name, err)
	}
	b := &Benchmark{Config: cfg, Source: src, Prog: prog}
	loadCache[cfg.Name] = b
	return b, nil
}

// MustLoad is Load that panics on error; the suite is generated and must
// always be well-formed.
func MustLoad(cfg Config) *Benchmark {
	b, err := Load(cfg)
	if err != nil {
		panic(err)
	}
	return b
}
