package bench

import "testing"

// TestParallelRace checks that parallel query resolution (a) is free of
// data races (run under -race in CI) and (b) yields exactly the sequential
// outcomes.
func TestParallelRace(t *testing.T) {
	b := MustLoad(Suite()[0])
	// No wall-clock timeout: outcomes must be deterministic regardless of
	// scheduling, which a timeout under contention would break.
	opts := RunOptions{K: 5, MaxIters: 300, Workers: 8, Fresh: true}
	seq := opts
	seq.Workers = 1
	par, err := Run(b, Escape, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(b, Escape, seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Outcomes {
		if par.Outcomes[i].Status != ref.Outcomes[i].Status || par.Outcomes[i].ID != ref.Outcomes[i].ID {
			t.Fatalf("parallel diverged at %d: %+v vs %+v", i, par.Outcomes[i], ref.Outcomes[i])
		}
	}
	if _, err := Run(b, Typestate, opts); err != nil {
		t.Fatal(err)
	}
}
