// Package bench synthesizes the benchmark suite and drives the experiments
// of §6. The seven Java programs of Table 1 (tsp, elevator, hedc, weblech,
// antlr, avrora, lusearch) are replaced by deterministic synthetic stand-ins
// generated in the mini-IR, scaled down but preserving the suite's relative
// ordering of size, abstraction-family size, call depth, and sharing
// structure (see DESIGN.md for the substitution rationale). The package
// also contains the harness that regenerates every table and figure.
package bench

// rng is a splitmix64 pseudo-random generator: tiny, fast, and fully
// deterministic across platforms, which keeps the generated benchmarks and
// therefore the experiment outputs reproducible.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// chance reports true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }
