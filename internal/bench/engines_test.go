package bench

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/driver"
)

// TestEnginesAgreeOnSuite cross-validates the two interprocedural backends
// on a generated benchmark: every §6-style query must resolve to the same
// status, with the same cheapest-abstraction size, whether the program is
// analyzed over the inlined CFG or over the RHS supergraph. Queries are
// matched by their source-statement identity (the IDs embed positions,
// which coincide because both pipelines parse the same source).
func TestEnginesAgreeOnSuite(t *testing.T) {
	cfg := Suite()[0] // tsp
	b := MustLoad(cfg)
	rhsProg, err := driver.LoadRHS(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{MaxIters: 300}

	// Type-state client.
	inlTS := b.Prog.TypestateQueries()
	rhsTS := rhsProg.TypestateQueries()
	if len(inlTS) != len(rhsTS) {
		t.Fatalf("type-state query counts differ: inline %d vs rhs %d", len(inlTS), len(rhsTS))
	}
	const cap = 15
	for i := range inlTS {
		if i >= cap {
			break
		}
		if inlTS[i].ID != rhsTS[i].ID {
			t.Fatalf("query %d: ids differ: %s vs %s", i, inlTS[i].ID, rhsTS[i].ID)
		}
		want, err := core.Solve(b.Prog.TypestateJob(inlTS[i], 5), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.Solve(rhsProg.TypestateJob(rhsTS[i], 5), opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Errorf("%s: rhs %v vs inline %v", inlTS[i].ID, got.Status, want.Status)
		}
		if want.Status == core.Proved && got.Abstraction.Len() != want.Abstraction.Len() {
			t.Errorf("%s: rhs |p|=%d vs inline %d", inlTS[i].ID, got.Abstraction.Len(), want.Abstraction.Len())
		}
	}

	// Thread-escape client.
	inlEsc := b.Prog.EscapeQueries()
	rhsEsc := rhsProg.EscapeQueries()
	if len(inlEsc) != len(rhsEsc) {
		t.Fatalf("escape query counts differ: inline %d vs rhs %d", len(inlEsc), len(rhsEsc))
	}
	for i := range inlEsc {
		if i >= cap {
			break
		}
		if inlEsc[i].ID != rhsEsc[i].ID {
			t.Fatalf("query %d: ids differ: %s vs %s", i, inlEsc[i].ID, rhsEsc[i].ID)
		}
		want, err := core.Solve(b.Prog.EscapeJob(inlEsc[i], 5), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.Solve(rhsProg.EscapeJob(rhsEsc[i], 5), opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Errorf("%s: rhs %v vs inline %v", inlEsc[i].ID, got.Status, want.Status)
		}
		if want.Status == core.Proved && got.Abstraction.Len() != want.Abstraction.Len() {
			t.Errorf("%s: rhs |p|=%d vs inline %d", inlEsc[i].ID, got.Abstraction.Len(), want.Abstraction.Len())
		}
	}
}
