package bench

import (
	"reflect"
	"testing"

	"tracer/internal/core"
)

// TestRunBatchWorkerDeterminism: on a real benchmark, the parallel batch
// scheduler is bit-identical to the sequential run — same Results and same
// BatchStats for every worker count — and the forward-run memo gets real
// hits. Runs under the tier-1 -race gate, so it also exercises the
// concurrent Check/Backward paths of both drivers.
func TestRunBatchWorkerDeterminism(t *testing.T) {
	b := MustLoad(Suite()[0]) // tsp
	for _, cl := range []Client{Typestate, Escape} {
		run := func(workers int) *core.BatchResult {
			res, err := RunBatch(b, cl, RunOptions{
				K: 5, MaxIters: 300, MaxQueries: 24, BatchWorkers: workers,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", cl, workers, err)
			}
			return res
		}
		base := run(1)
		if base.Stats.FwdCacheHits == 0 {
			t.Errorf("%s: forward-run memo saw no hits on tsp", cl)
		}
		for _, workers := range []int{2, 4} {
			got := run(workers)
			if !reflect.DeepEqual(got.Results, base.Results) {
				t.Errorf("%s: Results differ between workers=%d and workers=1", cl, workers)
			}
			if got.Stats != base.Stats {
				t.Errorf("%s: Stats = %+v (workers=%d), want %+v (workers=1)", cl, got.Stats, workers, base.Stats)
			}
		}
		t.Logf("%-13s queries=%d fwd=%d hits=%d misses=%d rounds=%d",
			cl, len(base.Results), base.Stats.ForwardRuns,
			base.Stats.FwdCacheHits, base.Stats.FwdCacheMisses, base.Stats.Rounds)
	}
}
