package bench

import (
	"testing"
	"time"

	"tracer/internal/core"
)

func warmTestOpts() RunOptions {
	return RunOptions{K: 5, MaxIters: 100, Timeout: 2 * time.Second, MaxQueries: 40, Fresh: true}
}

// A warm re-run of an unchanged program must reproduce the cold verdicts and
// abstractions exactly, and every non-replayed query must finish within two
// CEGAR iterations (the seeded clauses make the first minimum already
// sufficient, or expose impossibility outright).
func TestRunWarmMatchesCold(t *testing.T) {
	b := MustLoad(Suite()[0])
	for _, cl := range []Client{Typestate, Escape} {
		dir := t.TempDir()
		opts := warmTestOpts()
		cold, err := Run(b, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.WarmDir = dir
		if _, err := Run(b, cl, opts); err != nil { // populate
			t.Fatal(err)
		}
		warm, err := Run(b, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(cold.Outcomes) != len(warm.Outcomes) {
			t.Fatalf("%s: %d cold vs %d warm outcomes", cl, len(cold.Outcomes), len(warm.Outcomes))
		}
		for i, c := range cold.Outcomes {
			w := warm.Outcomes[i]
			if c.Status != w.Status || c.Abstraction != w.Abstraction {
				t.Errorf("%s %s: cold %s/%q vs warm %s/%q", cl, c.ID, c.Status, c.Abstraction, w.Status, w.Abstraction)
			}
			if w.Status != core.Exhausted && w.Iterations > 2 {
				t.Errorf("%s %s: warm run took %d iterations", cl, w.ID, w.Iterations)
			}
		}
	}
}

// The grouped batch solver must also produce identical verdicts when warm
// started, and its learned clauses must round-trip into a later run.
func TestRunBatchWarmMatchesCold(t *testing.T) {
	b := MustLoad(Suite()[0])
	for _, cl := range []Client{Typestate, Escape} {
		dir := t.TempDir()
		opts := warmTestOpts()
		opts.Timeout = 30 * time.Second // batch budget is whole-run
		cold, err := RunBatch(b, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.WarmDir = dir
		if _, err := RunBatch(b, cl, opts); err != nil { // populate
			t.Fatal(err)
		}
		warm, err := RunBatch(b, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(cold.Results) != len(warm.Results) {
			t.Fatalf("%s: %d cold vs %d warm results", cl, len(cold.Results), len(warm.Results))
		}
		for q, c := range cold.Results {
			w := warm.Results[q]
			if c.Status != w.Status || c.Abstraction.Key() != w.Abstraction.Key() {
				t.Errorf("%s query %d: cold %s/%q vs warm %s/%q",
					cl, q, c.Status, c.Abstraction.Key(), w.Status, w.Abstraction.Key())
			}
		}
		// Warm seeding must not cost forward work: the warm batch needs no
		// more forward runs than the cold one.
		if warm.Stats.ForwardRuns > cold.Stats.ForwardRuns {
			t.Errorf("%s: warm batch did %d forward runs, cold %d",
				cl, warm.Stats.ForwardRuns, cold.Stats.ForwardRuns)
		}
	}
}

// An edit-chain experiment over a couple of steps must run end to end and
// keep warm answers identical to cold ones step by step (the table only
// reports walls; correctness is Run's warm-vs-cold contract, checked above —
// here we check the chain plumbing: distinct fingerprints, persisted store).
func TestEditChainTableRuns(t *testing.T) {
	opts := warmTestOpts()
	opts.MaxQueries = 15
	rows, err := EditChainTable(Suite()[0], 2, opts, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows[1:] {
		if r.Kind == "" || r.Kind == "none" {
			t.Errorf("step %d: missing edit kind", r.Step)
		}
		if r.ColdMilli <= 0 || r.WarmMilli <= 0 {
			t.Errorf("step %d: non-positive walls %v/%v", r.Step, r.ColdMilli, r.WarmMilli)
		}
	}
}
