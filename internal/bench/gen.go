package bench

import (
	"fmt"
	"strings"
)

// Config sizes one synthetic benchmark. The knobs mirror the structural
// properties that drive the paper's results: call depth (cheapest type-state
// abstractions grow with it), alias-chain length (how many variables a proof
// must track), leak rate (how many escape queries are impossible), and the
// box/global-read rates (patterns whose queries no abstraction can prove,
// because must-alias information dies at heap loads and global reads).
type Config struct {
	Name string
	Desc string
	Seed uint64

	AppClasses int
	Services   int // service methods forming an acyclic call DAG
	CallDepth  int // DAG layers
	ChainLen   int // alias-chain length inside a service
	Globals    int

	LeakPct       int // chance a service leaks an object to a global
	LoopPct       int // chance of a nondeterministic loop
	BoxPct        int // chance of a LibBox round trip (unprovable type-state)
	GlobalReadPct int // chance of reading a global (unprovable both clients)
	ExtraAllocPct int // chance of a second allocation in a service
}

// generator accumulates the program text.
type generator struct {
	cfg Config
	r   *rng
	b   strings.Builder
	// svcClass[k] is the index of the app class holding service k.
	svcClass []int
	// layer[k] is service k's DAG layer; calls go strictly downward.
	layer []int
	sites int
}

// Generate produces the benchmark's mini-IR source text.
func Generate(cfg Config) string {
	g := &generator{cfg: cfg, r: newRNG(cfg.Seed)}
	g.emitHeader()
	g.emitLibrary()
	g.assignServices()
	g.emitAppClasses()
	g.emitMain()
	return g.b.String()
}

func (g *generator) printf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// site allocates a fresh allocation-site label.
func (g *generator) site() string {
	g.sites++
	return fmt.Sprintf("h%d", g.sites)
}

func (g *generator) global() string {
	return fmt.Sprintf("G%d", g.r.intn(g.cfg.Globals))
}

func (g *generator) emitHeader() {
	g.printf("// %s — %s\n", g.cfg.Name, g.cfg.Desc)
	g.printf("// Synthetic stand-in generated deterministically (seed %d).\n", g.cfg.Seed)
	names := make([]string, g.cfg.Globals)
	for i := range names {
		names[i] = fmt.Sprintf("G%d", i)
	}
	g.printf("global %s\n\n", strings.Join(names, ", "))
}

// emitLibrary writes the fixed "JDK" stand-in: container classes that are
// analyzed but generate no queries.
func (g *generator) emitLibrary() {
	g.printf(`class LibBox {
  field boxval
  method set(this, x) {
    this.boxval = x
  }
  method get(this) {
    var r
    r = this.boxval
    return r
  }
}

class LibCell {
  field cellval
  method put(this, x) {
    if * {
      this.cellval = x
    }
  }
  method take(this) {
    var r
    r = this.cellval
    return r
  }
}

`)
}

func (g *generator) assignServices() {
	g.svcClass = make([]int, g.cfg.Services)
	g.layer = make([]int, g.cfg.Services)
	for k := 0; k < g.cfg.Services; k++ {
		g.svcClass[k] = k % g.cfg.AppClasses
		g.layer[k] = k * g.cfg.CallDepth / g.cfg.Services
	}
}

// pure reports whether service k lies on a "clean spine": pure services
// leak nothing, read no globals, and call only pure services, so escape
// queries along the spine are provable — with cheapest abstractions whose
// size grows with the spine depth (the long tail of Fig 14).
func (g *generator) pure(k int) bool { return k%4 == 3 }

// callees picks the services k may call: strictly deeper layers, at most
// two, preferring nearby indices so the DAG stays narrow. Pure services
// call only pure services.
func (g *generator) callees(k int) []int {
	var candidates []int
	for j := k + 1; j < g.cfg.Services; j++ {
		if g.layer[j] > g.layer[k] && (!g.pure(k) || g.pure(j)) {
			candidates = append(candidates, j)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	n := 1
	if len(candidates) > 1 && g.r.chance(45) {
		n = 2
	}
	out := []int{candidates[g.r.intn(min(3, len(candidates)))]}
	if n == 2 {
		c := candidates[g.r.intn(len(candidates))]
		if c != out[0] {
			out = append(out, c)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (g *generator) emitAppClasses() {
	byClass := make([][]int, g.cfg.AppClasses)
	for k := 0; k < g.cfg.Services; k++ {
		c := g.svcClass[k]
		byClass[c] = append(byClass[c], k)
	}
	for c := 0; c < g.cfg.AppClasses; c++ {
		g.printf("class C%d {\n", c)
		if c == 0 {
			// link is shared by every class: stores through it couple the
			// escape abstractions of otherwise unrelated allocation sites.
			g.printf("  field link\n")
		}
		// pfld is reserved for pure services, keeping the clean spine's
		// field summaries untainted by impure stores.
		g.printf("  field fld%d, pfld%d\n", c, c)
		g.printf("  native method ping()\n")
		g.printf("  native method poke()\n")
		for _, k := range byClass[c] {
			g.emitService(k)
		}
		g.printf("}\n\n")
	}
}

// emitService writes one service method. Statement patterns are chosen by
// the seeded RNG; every pattern is a workload the paper's clients care
// about (alias chains, leaks, container round trips, global reads, loops).
func (g *generator) emitService(k int) {
	g.printf("  method svc%d(this, a0, a1) {\n", k)
	chain := 1 + g.r.intn(g.cfg.ChainLen)
	var vars []string
	for i := 0; i <= chain; i++ {
		vars = append(vars, fmt.Sprintf("t%d", i))
	}
	decls := append([]string{}, vars...)
	decls = append(decls, "bx", "rr", "ww", "uu")
	g.printf("    var %s\n", strings.Join(decls, ", "))

	allocClass := g.r.intn(g.cfg.AppClasses)
	pure := g.pure(k)
	// An event on the parameter before anything else: queries on the
	// parameter's sites in deeper frames must track the whole chain of
	// argument-binding variables back to the allocation, so the cheapest
	// abstraction grows with call depth (the avrora effect of Table 3).
	g.printf("    a0.poke()\n")
	g.printf("    t0 = new C%d @ %s\n", allocClass, g.site())
	for i := 1; i <= chain; i++ {
		g.printf("    t%d = t%d\n", i, i-1)
	}
	leakEarly := !pure && g.r.chance(g.cfg.LeakPct)
	if leakEarly {
		g.printf("    if * {\n      %s = t0\n    }\n", g.global())
	}
	// A type-state event on the chain end followed by a second event on the
	// chain head: the second event's query is provable only if the whole
	// alias chain is tracked (so the first event was a strong update).
	g.printf("    t%d.ping()\n", chain)
	g.printf("    t0.ping()\n")
	// Field traffic on the fresh object: the escape client's bread and
	// butter. Provable when the allocation site can be mapped to L; stores
	// through the shared field `link` couple sites across services.
	field := fmt.Sprintf("fld%d", allocClass)
	if pure {
		field = fmt.Sprintf("pfld%d", allocClass)
	} else if g.r.chance(50) {
		field = "link"
	}
	g.printf("    t0.%s = a0\n", field)
	g.printf("    uu = t%d.%s\n", min(1, chain), field)
	// A store through the loaded value: its escape query holds only if the
	// base object's site AND every site the field's contents may come from
	// are L-mapped, so cheapest abstractions grow with the argument chain
	// (the long tail of Fig 14).
	g.printf("    uu.fld%d = t%d\n", allocClass, min(1, chain))
	if !pure && g.r.chance(g.cfg.ExtraAllocPct) {
		g.printf("    ww = new C%d @ %s\n", g.r.intn(g.cfg.AppClasses), g.site())
		g.printf("    ww.%s = t0\n", field)
	}
	if !pure && g.r.chance(g.cfg.BoxPct) {
		// Round-trip through a container: the value read back has no
		// must-alias information, so its type-state queries are impossible.
		// The box carries its own payload so the poisoning stays on that
		// payload's site rather than on the main chain's.
		g.printf("    ww = new C%d @ %s\n", g.r.intn(g.cfg.AppClasses), g.site())
		g.printf("    bx = new LibBox @ %s\n", g.site())
		g.printf("    bx.set(ww)\n")
		g.printf("    rr = bx.get()\n")
		g.printf("    rr.ping()\n")
	}
	if !pure && g.r.chance(g.cfg.GlobalReadPct) {
		// Objects read from globals are escaped and untracked: both
		// clients' queries on them are impossible.
		g.printf("    ww = %s\n", g.global())
		g.printf("    ww.poke()\n")
	}
	if g.r.chance(g.cfg.LoopPct) {
		g.printf("    loop {\n      t%d = t0\n      t0.fld%d = a1\n    }\n", min(1, chain), allocClass)
	}
	for _, j := range g.callees(k) {
		rcv := fmt.Sprintf("rcv%d", j)
		g.printf("    var %s\n", rcv)
		g.printf("    %s = new C%d @ %s\n", rcv, g.svcClass[j], g.site())
		arg0 := vars[g.r.intn(len(vars))]
		arg1 := "a1"
		if g.r.chance(50) {
			arg1 = "a0"
		}
		if g.r.chance(50) {
			g.printf("    rr = %s.svc%d(%s, %s)\n", rcv, j, arg0, arg1)
			g.printf("    rr.poke()\n")
		} else {
			g.printf("    %s.svc%d(%s, %s)\n", rcv, j, arg0, arg1)
		}
	}
	if !pure && !leakEarly && g.r.chance(g.cfg.LeakPct) {
		g.printf("    if * {\n      %s = t%d\n    }\n", g.global(), g.r.intn(chain+1))
	}
	g.printf("    return t0\n")
	g.printf("  }\n")
}

// emitMain writes the entry point: it allocates seed objects and invokes a
// few layer-0 services.
func (g *generator) emitMain() {
	g.printf("class Main {\n")
	g.printf("  method main(this) {\n")
	var roots []int
	for k := 0; k < g.cfg.Services; k++ {
		if g.layer[k] == 0 {
			roots = append(roots, k)
		}
	}
	if len(roots) > 3 {
		roots = roots[:3]
	}
	g.printf("    var x0, x1\n")
	g.printf("    x0 = new C0 @ %s\n", g.site())
	g.printf("    x1 = new C%d @ %s\n", g.cfg.AppClasses-1, g.site())
	for i, k := range roots {
		rcv := fmt.Sprintf("m%d", i)
		g.printf("    var %s\n", rcv)
		g.printf("    %s = new C%d @ %s\n", rcv, g.svcClass[k], g.site())
		g.printf("    %s.svc%d(x0, x1)\n", rcv, k)
	}
	// Enter the clean spine directly with fresh arguments: its queries are
	// provable and their cheapest abstractions span the spine's sites.
	for k := 0; k < g.cfg.Services; k++ {
		if g.pure(k) {
			g.printf("    var mp, y0, y1\n")
			g.printf("    y0 = new C%d @ %s\n", g.r.intn(g.cfg.AppClasses), g.site())
			g.printf("    y1 = new C%d @ %s\n", g.r.intn(g.cfg.AppClasses), g.site())
			g.printf("    mp = new C%d @ %s\n", g.svcClass[k], g.site())
			g.printf("    mp.svc%d(y0, y1)\n", k)
			break
		}
	}
	g.printf("  }\n")
	g.printf("}\n")
}
