package bench

import (
	"strings"
	"testing"
	"time"
)

// quickOpts keeps the experiment tests fast: few queries, short budget.
func quickOpts() RunOptions {
	return RunOptions{K: 5, MaxIters: 60, Timeout: 250 * time.Millisecond, MaxQueries: 8, Workers: 4}
}

func TestTable1Structure(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Name != Suite()[i].Name {
			t.Errorf("row %d name %s", i, r.Name)
		}
		if r.AppClasses > r.TotalClasses || r.AppMethods > r.TotalMethods || r.AppAtoms > r.TotalAtoms {
			t.Errorf("%s: app exceeds total: %+v", r.Name, r)
		}
		if r.Log2Typestate <= 0 || r.Log2Escape <= 0 || r.Log2Nullness <= 0 {
			t.Errorf("%s: empty abstraction family", r.Name)
		}
	}
	// avrora must be the largest benchmark in every size column.
	var avrora, largestAtoms Table1Row
	for _, r := range rows {
		if r.Name == "avrora" {
			avrora = r
		}
		if r.TotalAtoms > largestAtoms.TotalAtoms {
			largestAtoms = r
		}
	}
	if largestAtoms.Name != avrora.Name {
		t.Errorf("largest benchmark is %s, want avrora", largestAtoms.Name)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "avrora") || !strings.Contains(out, "log2") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestFigure12Structure(t *testing.T) {
	rows, err := Figure12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Clients())*len(Suite()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Clients())*len(Suite()))
	}
	for _, r := range rows {
		if r.Proven+r.Impossible+r.Unresolved != r.Total {
			t.Errorf("%s/%s: buckets %d+%d+%d ≠ %d", r.Name, r.Client, r.Proven, r.Impossible, r.Unresolved, r.Total)
		}
		if r.Total == 0 {
			t.Errorf("%s/%s: no queries", r.Name, r.Client)
		}
	}
	out := RenderFigure12(rows)
	if !strings.Contains(out, "%") {
		t.Errorf("render missing percentages:\n%s", out)
	}
}

func TestFigure13Structure(t *testing.T) {
	rows, err := Figure13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(SmallSuite()) {
		t.Fatalf("rows = %d", len(rows))
	}
	ks := map[int]bool{}
	for _, r := range rows {
		ks[r.K] = true
		if r.TotalIters == 0 {
			t.Errorf("%s k=%d: zero iterations", r.Name, r.K)
		}
	}
	for _, k := range []int{1, 5, 10} {
		if !ks[k] {
			t.Errorf("missing k=%d", k)
		}
	}
}

func TestTables234Structure(t *testing.T) {
	opts := quickOpts()
	t2, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != len(Suite()) || len(t3) != len(Suite()) || len(t4) != len(Suite()) {
		t.Fatalf("row counts: %d %d %d", len(t2), len(t3), len(t4))
	}
	for i := range t2 {
		if t2[i].TSProvenIters.N > 0 && (t2[i].TSProvenIters.Min > t2[i].TSProvenIters.Max) {
			t.Errorf("%s: min > max", t2[i].Name)
		}
		if t3[i].TS.N > 0 && t3[i].TS.Min < 0 {
			t.Errorf("%s: negative abstraction size", t3[i].Name)
		}
		// Groups cannot outnumber proven queries.
		if t4[i].TSGroups > 0 && t4[i].TSGroupSize.N != t4[i].TSGroups {
			t.Errorf("%s: group summary inconsistent", t4[i].Name)
		}
	}
	for _, s := range []string{RenderTable2(t2), RenderTable3(t3), RenderTable4(t4)} {
		if !strings.Contains(s, "tsp") {
			t.Error("render missing benchmark rows")
		}
	}
}

func TestFigure14Structure(t *testing.T) {
	rows, err := Figure14(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (largest three benchmarks)", len(rows))
	}
	suite := Suite()
	for i, r := range rows {
		if r.Name != suite[len(suite)-3+i].Name {
			t.Errorf("row %d = %s", i, r.Name)
		}
		for size, n := range r.Hist {
			if size < 1 || n < 1 {
				t.Errorf("%s: bad histogram entry %d→%d", r.Name, size, n)
			}
		}
	}
	_ = RenderFigure14(rows)
}

func TestNullnessTableStructure(t *testing.T) {
	rows, err := NullnessTable(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Suite()))
	}
	resolved := 0
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("%s: no nullness queries", r.Name)
		}
		if r.Proven+r.Impossible+r.Unresolved != r.Queries {
			t.Errorf("%s: buckets %d+%d+%d ≠ %d", r.Name, r.Proven, r.Impossible, r.Unresolved, r.Queries)
		}
		if r.AbsSize.N != r.Proven {
			t.Errorf("%s: %d abstraction sizes for %d proven queries", r.Name, r.AbsSize.N, r.Proven)
		}
		resolved += r.Proven + r.Impossible
	}
	if resolved == 0 {
		t.Error("no nullness query resolved anywhere in the suite")
	}
	out := RenderNullnessTable(rows)
	if !strings.Contains(out, "tsp") || !strings.Contains(out, "Null-deref") {
		t.Errorf("render missing content:\n%s", out)
	}
}

// TestSummaryHelpers covers the statistics plumbing.
func TestSummaryHelpers(t *testing.T) {
	s := summarize([]int{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Avg != 2 || s.N != 3 {
		t.Fatalf("summarize = %+v", s)
	}
	if summarize(nil).N != 0 {
		t.Fatal("empty summarize")
	}
	ms := summarizeMs([]float64{10, 20})
	if ms.Min != 10 || ms.Max != 20 || ms.Avg != 15 {
		t.Fatalf("summarizeMs = %+v", ms)
	}
	for in, want := range map[float64]string{500: "500ms", 1500: "1.5s", 90000: "1.5m"} {
		if got := fmtMs(in); got != want {
			t.Errorf("fmtMs(%v) = %q, want %q", in, got, want)
		}
	}
}
