package bench

import (
	"testing"

	"tracer/internal/driver"
	"tracer/internal/ir"
)

// Every step of an edit chain must stay loadable, and each step must change
// the program (the fingerprint moves) while staying deterministic.
func TestEditChainParsesAndMoves(t *testing.T) {
	cfg := Suite()[0]
	const n = 10
	chain, edits := EditChain(cfg, n)
	if len(chain) != n+1 || len(edits) != n {
		t.Fatalf("got %d sources, %d edits", len(chain), len(edits))
	}
	var prev uint64
	for i, src := range chain {
		p, err := driver.Load(src)
		if err != nil {
			t.Fatalf("step %d (%+v): %v", i, edits, err)
		}
		fp := ir.Fingerprint(p.IR)
		if i > 0 && fp.Whole == prev {
			t.Fatalf("step %d (%s): edit did not change the fingerprint", i, edits[i-1].Kind)
		}
		prev = fp.Whole
	}

	again, _ := EditChain(cfg, n)
	for i := range chain {
		if chain[i] != again[i] {
			t.Fatalf("step %d: chain not deterministic", i)
		}
	}
}

// Most edits must be body-local: the shape fingerprint stays fixed and only
// few methods are touched per step, so warm-start invalidation has something
// to preserve.
func TestEditChainIsDeltaFriendly(t *testing.T) {
	cfg := Suite()[1]
	chain, edits := EditChain(cfg, 12)
	prev, err := driver.Load(chain[0])
	if err != nil {
		t.Fatal(err)
	}
	prevFP := ir.Fingerprint(prev.IR)
	for i := 1; i < len(chain); i++ {
		p, err := driver.Load(chain[i])
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		fp := ir.Fingerprint(p.IR)
		if fp.Shape != prevFP.Shape {
			t.Fatalf("step %d (%s): shape fingerprint changed", i, edits[i-1].Kind)
		}
		d := ir.Diff(prevFP, fp)
		if len(d.Touched) != 1 {
			t.Fatalf("step %d (%s): touched %v, want exactly one method", i, edits[i-1].Kind, d.Touched)
		}
		prevFP = fp
	}
}
