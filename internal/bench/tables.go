package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
)

// This file regenerates every table and figure of §6. Each experiment
// returns both structured rows (consumed by tests) and a rendered text
// table (printed by cmd/paperbench and the testing.B benchmarks).

// ---------- shared statistics helpers ----------

type summary struct {
	Min, Max int
	Avg      float64
	N        int
}

func summarize(xs []int) summary {
	if len(xs) == 0 {
		return summary{}
	}
	s := summary{Min: xs[0], Max: xs[0], N: len(xs)}
	total := 0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		total += x
	}
	s.Avg = float64(total) / float64(len(xs))
	return s
}

func (s summary) String() string {
	if s.N == 0 {
		return "-    -    -"
	}
	return fmt.Sprintf("%-4d %-4d %.1f", s.Min, s.Max, s.Avg)
}

type msSummary struct {
	Min, Max, Avg float64
	N             int
}

func summarizeMs(xs []float64) msSummary {
	if len(xs) == 0 {
		return msSummary{}
	}
	s := msSummary{Min: xs[0], Max: xs[0], N: len(xs)}
	total := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		total += x
	}
	s.Avg = total / float64(len(xs))
	return s
}

func fmtMs(ms float64) string {
	switch {
	case ms >= 60_000:
		return fmt.Sprintf("%.1fm", ms/60_000)
	case ms >= 1_000:
		return fmt.Sprintf("%.1fs", ms/1_000)
	default:
		return fmt.Sprintf("%.0fms", ms)
	}
}

func (s msSummary) String() string {
	if s.N == 0 {
		return "-     -     -"
	}
	return fmt.Sprintf("%-5s %-5s %s", fmtMs(s.Min), fmtMs(s.Max), fmtMs(s.Avg))
}

// iterations and sizes and times filtered by status.
func iters(r *ClientResult, st core.Status) []int {
	var out []int
	for _, o := range r.Outcomes {
		if o.Status == st {
			out = append(out, o.Iterations)
		}
	}
	return out
}

func absSizes(r *ClientResult) []int {
	var out []int
	for _, o := range r.Outcomes {
		if o.Status == core.Proved {
			out = append(out, o.AbsSize)
		}
	}
	return out
}

func timesMs(r *ClientResult, st core.Status) []float64 {
	var out []float64
	for _, o := range r.Outcomes {
		if o.Status == st {
			out = append(out, o.Millis)
		}
	}
	return out
}

// ---------- Table 1: benchmark statistics ----------

// Table1Row mirrors one row of Table 1.
type Table1Row struct {
	Name, Desc               string
	AppClasses, TotalClasses int
	AppMethods, TotalMethods int
	AppAtoms, TotalAtoms     int
	Lines                    int
	Log2Typestate, Log2Escape,
	Log2Nullness int
}

// Table1 computes benchmark statistics for the whole suite.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		st := b.Prog.ComputeStats(b.Source)
		rows = append(rows, Table1Row{
			Name: cfg.Name, Desc: cfg.Desc,
			AppClasses: st.AppClasses, TotalClasses: st.TotalClasses,
			AppMethods: st.AppMethods, TotalMethods: st.TotalMethods,
			AppAtoms: st.AppAtoms, TotalAtoms: st.TotalAtoms,
			Lines:         st.SourceLines,
			Log2Typestate: st.TypestateParams, Log2Escape: st.EscapeParams,
			Log2Nullness: st.NullnessParams,
		})
	}
	return rows, nil
}

// RenderTable1 renders Table 1 as aligned text.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Benchmark statistics (synthetic stand-ins; see DESIGN.md).\n")
	fmt.Fprintf(&b, "%-9s | %-36s | %11s | %11s | %13s | %5s | %s\n",
		"", "description", "classes", "methods", "atoms", "lines", "log2(#abstractions)")
	fmt.Fprintf(&b, "%-9s | %-36s | %5s %5s | %5s %5s | %6s %6s | %5s | %9s %9s %9s\n",
		"", "", "app", "total", "app", "total", "app", "total", "", "type-state", "thr-esc", "null-drf")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %-36s | %5d %5d | %5d %5d | %6d %6d | %5d | %9d %9d %9d\n",
			r.Name, r.Desc, r.AppClasses, r.TotalClasses, r.AppMethods, r.TotalMethods,
			r.AppAtoms, r.TotalAtoms, r.Lines, r.Log2Typestate, r.Log2Escape, r.Log2Nullness)
	}
	return b.String()
}

// ---------- Figure 12: precision ----------

// Figure12Row is one (benchmark, client) precision bar.
type Figure12Row struct {
	Name       string
	Client     Client
	Total      int
	Proven     int
	Impossible int
	Unresolved int
}

// Figure12 resolves all queries of every registered client on the whole
// suite.
func Figure12(opts RunOptions) ([]Figure12Row, error) {
	var rows []Figure12Row
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		for _, cl := range Clients() {
			r, err := Run(b, cl, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure12Row{
				Name: cfg.Name, Client: cl, Total: len(r.Outcomes),
				Proven: r.Proven(), Impossible: r.Impossible(), Unresolved: r.Unresolved(),
			})
		}
	}
	return rows, nil
}

// RenderFigure12 renders the precision figure as a text bar chart.
func RenderFigure12(rows []Figure12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12. Precision: queries proven / impossible / unresolved.\n")
	fmt.Fprintf(&b, "%-9s %-13s %7s | %14s %14s %14s | bar (#=proven, x=impossible, .=unresolved)\n",
		"", "client", "queries", "proven", "impossible", "unresolved")
	for _, r := range rows {
		pct := func(n int) float64 {
			if r.Total == 0 {
				return 0
			}
			return 100 * float64(n) / float64(r.Total)
		}
		bar := strings.Repeat("#", int(pct(r.Proven)/4)) +
			strings.Repeat("x", int(pct(r.Impossible)/4)) +
			strings.Repeat(".", int(pct(r.Unresolved)/4))
		fmt.Fprintf(&b, "%-9s %-13s %7d | %6d (%4.1f%%) %6d (%4.1f%%) %6d (%4.1f%%) | %s\n",
			r.Name, r.Client, r.Total,
			r.Proven, pct(r.Proven), r.Impossible, pct(r.Impossible),
			r.Unresolved, pct(r.Unresolved), bar)
	}
	return b.String()
}

// ---------- Figure 13: effect of k on thread-escape running time ----------

// Figure13Row is one (benchmark, k) measurement.
type Figure13Row struct {
	Name       string
	K          int
	WallMilli  float64
	Unresolved int
	TotalIters int
}

// Figure13 varies the beam width k over the smallest four benchmarks.
func Figure13(opts RunOptions) ([]Figure13Row, error) {
	var rows []Figure13Row
	for _, cfg := range SmallSuite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 5, 10} {
			o := opts
			o.K = k
			start := time.Now()
			r, err := Run(b, Escape, o)
			if err != nil {
				return nil, err
			}
			wall := r.WallMilli
			if wall == 0 {
				wall = float64(time.Since(start).Microseconds()) / 1000
			}
			totalIters := 0
			for _, o := range r.Outcomes {
				totalIters += o.Iterations
			}
			rows = append(rows, Figure13Row{Name: cfg.Name, K: k, WallMilli: wall, Unresolved: r.Unresolved(), TotalIters: totalIters})
		}
	}
	return rows, nil
}

// RenderFigure13 renders the k sweep.
func RenderFigure13(rows []Figure13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13. Thread-escape running time for k ∈ {1, 5, 10} (smallest four benchmarks).\n")
	fmt.Fprintf(&b, "%-9s | %4s | %10s | %10s | %10s\n", "", "k", "total time", "iterations", "unresolved")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %4d | %10s | %10d | %10d\n", r.Name, r.K, fmtMs(r.WallMilli), r.TotalIters, r.Unresolved)
	}
	return b.String()
}

// ---------- Table 2: scalability ----------

// Table2Row is one benchmark's scalability summary.
type Table2Row struct {
	Name string
	// Iteration statistics per client and resolution.
	TSProvenIters, TSImpossibleIters   summary
	EscProvenIters, EscImpossibleIters summary
	// Thread-escape per-query running times.
	EscProvenMs, EscImpossibleMs msSummary
}

// Table2 gathers iteration and running-time statistics (k = opts.K).
func Table2(opts RunOptions) ([]Table2Row, error) {
	var rows []Table2Row
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		ts, err := Run(b, Typestate, opts)
		if err != nil {
			return nil, err
		}
		esc, err := Run(b, Escape, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Name:               cfg.Name,
			TSProvenIters:      summarize(iters(ts, core.Proved)),
			TSImpossibleIters:  summarize(iters(ts, core.Impossible)),
			EscProvenIters:     summarize(iters(esc, core.Proved)),
			EscImpossibleIters: summarize(iters(esc, core.Impossible)),
			EscProvenMs:        summarizeMs(timesMs(esc, core.Proved)),
			EscImpossibleMs:    summarizeMs(timesMs(esc, core.Impossible)),
		})
	}
	return rows, nil
}

// RenderTable2 renders the scalability table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Scalability: iterations (min max avg) and thread-escape per-query times.\n")
	fmt.Fprintf(&b, "%-9s | %-30s | %-30s | %-40s\n",
		"", "type-state iterations", "thread-escape iterations", "thread-escape running time")
	fmt.Fprintf(&b, "%-9s | %-14s  %-14s | %-14s  %-14s | %-19s  %-19s\n",
		"", "proven", "impossible", "proven", "impossible", "proven", "impossible")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %-14s  %-14s | %-14s  %-14s | %-19s  %-19s\n",
			r.Name, r.TSProvenIters, r.TSImpossibleIters,
			r.EscProvenIters, r.EscImpossibleIters,
			r.EscProvenMs, r.EscImpossibleMs)
	}
	return b.String()
}

// ---------- Table 3: cheapest abstraction sizes ----------

// Table3Row summarizes cheapest-abstraction sizes for proven queries.
type Table3Row struct {
	Name    string
	TS, Esc summary
}

// Table3 gathers cheapest-abstraction size statistics.
func Table3(opts RunOptions) ([]Table3Row, error) {
	var rows []Table3Row
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		ts, err := Run(b, Typestate, opts)
		if err != nil {
			return nil, err
		}
		esc, err := Run(b, Escape, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Name: cfg.Name, TS: summarize(absSizes(ts)), Esc: summarize(absSizes(esc))})
	}
	return rows, nil
}

// RenderTable3 renders the cheapest-abstraction size table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Cheapest abstraction size for proven queries (min max avg).\n")
	fmt.Fprintf(&b, "%-9s | %-16s | %-16s\n", "", "type-state", "thread-escape")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %-16s | %-16s\n", r.Name, r.TS, r.Esc)
	}
	return b.String()
}

// ---------- Table 4: cheapest abstraction reuse ----------

// Table4Row summarizes how many proven queries share a cheapest abstraction.
type Table4Row struct {
	Name         string
	TSGroups     int
	TSGroupSize  summary
	EscGroups    int
	EscGroupSize summary
}

func groupSizes(r *ClientResult) (int, summary) {
	counts := map[string]int{}
	for _, o := range r.Outcomes {
		if o.Status == core.Proved {
			counts[o.Abstraction]++
		}
	}
	var sizes []int
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	return len(counts), summarize(sizes)
}

// Table4 gathers abstraction-reuse statistics.
func Table4(opts RunOptions) ([]Table4Row, error) {
	var rows []Table4Row
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		ts, err := Run(b, Typestate, opts)
		if err != nil {
			return nil, err
		}
		esc, err := Run(b, Escape, opts)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Name: cfg.Name}
		row.TSGroups, row.TSGroupSize = groupSizes(ts)
		row.EscGroups, row.EscGroupSize = groupSizes(esc)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable4 renders the reuse table.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Cheapest abstraction reuse for proven queries (#groups; group size min max avg).\n")
	fmt.Fprintf(&b, "%-9s | %-26s | %-26s\n", "", "type-state", "thread-escape")
	fmt.Fprintf(&b, "%-9s | %8s %-16s | %8s %-16s\n", "", "#groups", "min max avg", "#groups", "min max avg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %8d %-16s | %8d %-16s\n",
			r.Name, r.TSGroups, r.TSGroupSize, r.EscGroups, r.EscGroupSize)
	}
	return b.String()
}

// ---------- Figure 14: distribution of cheapest abstraction sizes ----------

// Figure14Row is one benchmark's histogram for the thread-escape client.
type Figure14Row struct {
	Name string
	// Hist[size] = number of proven queries whose cheapest abstraction maps
	// exactly `size` sites to L.
	Hist map[int]int
}

// Figure14 builds the histograms for the largest three benchmarks.
func Figure14(opts RunOptions) ([]Figure14Row, error) {
	suite := Suite()
	var rows []Figure14Row
	for _, cfg := range suite[len(suite)-3:] {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		r, err := Run(b, Escape, opts)
		if err != nil {
			return nil, err
		}
		hist := map[int]int{}
		for _, o := range r.Outcomes {
			if o.Status == core.Proved {
				hist[o.AbsSize]++
			}
		}
		rows = append(rows, Figure14Row{Name: cfg.Name, Hist: hist})
	}
	return rows, nil
}

// RenderFigure14 renders the histograms.
func RenderFigure14(rows []Figure14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14. Distribution of cheapest abstraction sizes (thread-escape, largest three benchmarks).\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s:\n", r.Name)
		var sizes []int
		for s := range r.Hist {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		for _, s := range sizes {
			fmt.Fprintf(&b, "  %3d L-mapped site(s): %4d queries  %s\n", s, r.Hist[s], strings.Repeat("#", r.Hist[s]))
		}
	}
	return b.String()
}

// ---------- Batch scheduler: grouped multi-query solving (§6) ----------

// BatchRow summarizes one (benchmark, client) run of the grouped
// multi-query solver: how far group sharing and the forward-run memo
// compress the per-query iteration total into whole-program forward phases.
type BatchRow struct {
	Name      string
	Client    Client
	Queries   int
	TotalIter int // sum of per-query CEGAR iterations
	Stats     core.BatchStats
	WallMilli float64
}

// BatchTable runs the grouped solver for every registered client over the
// whole suite, honoring opts.BatchWorkers and opts.FwdCacheSize.
// opts.Timeout is the per-query budget of the individual runs; SolveBatch
// enforces a whole-batch cap, so the batch gets query-count times that
// budget.
func BatchTable(opts RunOptions) ([]BatchRow, error) {
	var rows []BatchRow
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		for _, spec := range driver.Clients() {
			cl := Client(spec.BenchName)
			bopts := opts
			if bopts.Timeout > 0 {
				n := len(spec.Queries(b.Prog))
				if bopts.MaxQueries > 0 && n > bopts.MaxQueries {
					n = bopts.MaxQueries
				}
				bopts.Timeout *= time.Duration(n)
			}
			start := time.Now()
			res, err := RunBatch(b, cl, bopts)
			if err != nil {
				return nil, err
			}
			row := BatchRow{
				Name: cfg.Name, Client: cl, Queries: len(res.Results),
				Stats:     res.Stats,
				WallMilli: float64(time.Since(start).Microseconds()) / 1000,
			}
			for _, r := range res.Results {
				row.TotalIter += r.Iterations
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderBatchTable renders the grouped-solver statistics.
func RenderBatchTable(rows []BatchRow, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batch scheduler (§6 grouping, %d worker(s)): forward phases vs per-query iterations.\n", workers)
	fmt.Fprintf(&b, "%-9s %-13s | %7s %7s | %7s %7s | %5s %5s | %6s %6s | %8s\n",
		"", "client", "queries", "iters", "fwdruns", "rounds", "hits", "miss", "groups", "peak", "wall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-13s | %7d %7d | %7d %7d | %5d %5d | %6d %6d | %8s\n",
			r.Name, r.Client, r.Queries, r.TotalIter,
			r.Stats.ForwardRuns, r.Stats.Rounds,
			r.Stats.FwdCacheHits, r.Stats.FwdCacheMisses,
			r.Stats.TotalGroups, r.Stats.PeakGroups, fmtMs(r.WallMilli))
	}
	return b.String()
}

// ---------- Nullness: null-dereference precision and cost ----------

// NullnessRow summarizes the null-deref client on one benchmark: precision
// split plus iteration and per-query time statistics by resolution.
type NullnessRow struct {
	Name       string
	Queries    int
	Proven     int
	Impossible int
	Unresolved int

	ProvenIters, ImpossibleIters summary
	AbsSize                      summary
	ProvenMs, ImpossibleMs       msSummary
}

// NullnessTable runs the null-deref client over the whole suite.
func NullnessTable(opts RunOptions) ([]NullnessRow, error) {
	var rows []NullnessRow
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		r, err := Run(b, Nullness, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NullnessRow{
			Name: cfg.Name, Queries: len(r.Outcomes),
			Proven: r.Proven(), Impossible: r.Impossible(), Unresolved: r.Unresolved(),
			ProvenIters:     summarize(iters(r, core.Proved)),
			ImpossibleIters: summarize(iters(r, core.Impossible)),
			AbsSize:         summarize(absSizes(r)),
			ProvenMs:        summarizeMs(timesMs(r, core.Proved)),
			ImpossibleMs:    summarizeMs(timesMs(r, core.Impossible)),
		})
	}
	return rows, nil
}

// RenderNullnessTable renders the null-deref experiment.
func RenderNullnessTable(rows []NullnessRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Null-deref client: precision, iterations, cheapest tracked-cell sets.\n")
	fmt.Fprintf(&b, "%-9s | %7s %6s %6s %6s | %-14s  %-14s | %-16s | %-19s  %-19s\n",
		"", "queries", "prov", "imposs", "unres",
		"proven iters", "imposs iters", "cells min max avg", "proven time", "imposs time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s | %7d %6d %6d %6d | %-14s  %-14s | %-16s | %-19s  %-19s\n",
			r.Name, r.Queries, r.Proven, r.Impossible, r.Unresolved,
			r.ProvenIters, r.ImpossibleIters, r.AbsSize, r.ProvenMs, r.ImpossibleMs)
	}
	return b.String()
}
