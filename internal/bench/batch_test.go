package bench

import (
	"testing"

	"tracer/internal/core"
)

// TestBatchMatchesIndividual: the §6 query-grouping driver must resolve
// every query to the same status and cheapest-abstraction size as running
// TRACER per query, while performing fewer forward runs than the total of
// the individual iterations.
func TestBatchMatchesIndividual(t *testing.T) {
	b := MustLoad(Suite()[0]) // tsp
	opts := RunOptions{K: 5, MaxIters: 300, MaxQueries: 20}
	for _, cl := range []Client{Typestate, Escape} {
		ind, err := Run(b, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := RunBatch(b, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Results) != len(ind.Outcomes) {
			t.Fatalf("%s: %d batch results vs %d individual", cl, len(batch.Results), len(ind.Outcomes))
		}
		totalIndividualIters := 0
		for q, o := range ind.Outcomes {
			br := batch.Results[q]
			if br.Status != o.Status {
				t.Errorf("%s query %s: batch %v vs individual %v", cl, o.ID, br.Status, o.Status)
			}
			if o.Status == core.Proved && br.Abstraction.Len() != o.AbsSize {
				t.Errorf("%s query %s: batch |p|=%d vs individual %d", cl, o.ID, br.Abstraction.Len(), o.AbsSize)
			}
			totalIndividualIters += o.Iterations
		}
		if batch.Stats.ForwardRuns >= totalIndividualIters {
			t.Errorf("%s: grouping gave no sharing: %d forward runs vs %d individual iterations",
				cl, batch.Stats.ForwardRuns, totalIndividualIters)
		}
		t.Logf("%-13s batch forward runs %d vs individual iterations %d (groups: %d)",
			cl, batch.Stats.ForwardRuns, totalIndividualIters, batch.Stats.TotalGroups)
	}
}
