package bench

import (
	"fmt"
	"strings"
)

// Edit is one applied step of an edit chain.
type Edit struct {
	Kind string // "poke", "alias", "ping", or "alloc"
	Line int    // 1-based line of the statement the edit anchored to
}

// EditChain derives n successive variants of cfg's generated source, each
// obtained from the previous by one statement-level edit inside one method
// body — the workload the warm-start store's delta invalidation targets.
// chain[0] is the pristine source; chain[i] is chain[i-1] plus edit
// edits[i-1]. Everything is deterministic in (cfg, n).
//
// Three of the four edit kinds are points-to-neutral (an extra event on a
// parameter, a duplicated alias move, an extra event on an already-tracked
// variable), so clauses learned in untouched methods survive verbatim. The
// fourth introduces a fresh allocation site, which extends the escape
// client's parameter universe and query set — the "new code" case an edit
// chain must also exercise.
func EditChain(cfg Config, n int) (chain []string, edits []Edit) {
	src := Generate(cfg)
	chain = []string{src}
	r := newRNG(cfg.Seed ^ 0xed17c4a1)
	allocs := 0
	for i := 0; i < n; i++ {
		var e Edit
		src, e = applyEdit(src, r, &allocs)
		chain = append(chain, src)
		edits = append(edits, e)
	}
	return chain, edits
}

// applyEdit performs one deterministic single-statement edit. Anchors are
// chosen so the inserted statement is always well-formed: `t0 = new` lines
// only occur in service bodies (where a0, t0, and uu are declared), and
// `return t0` lines only end service bodies.
func applyEdit(src string, r *rng, allocs *int) (string, Edit) {
	lines := strings.Split(src, "\n")
	type anchor struct {
		kind string
		line int // index into lines
	}
	var anchors []anchor
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "    t0 = new "):
			anchors = append(anchors, anchor{"poke", i})
			anchors = append(anchors, anchor{"alloc", i})
		case strings.HasPrefix(ln, "    t1 = t0"):
			anchors = append(anchors, anchor{"alias", i})
		case ln == "    return t0":
			anchors = append(anchors, anchor{"ping", i})
		}
	}
	if len(anchors) == 0 {
		return src, Edit{Kind: "none"}
	}
	// A fresh allocation site only every fourth edit on average; the chain
	// should be dominated by the edits warm starting can actually exploit.
	a := anchors[r.intn(len(anchors))]
	for a.kind == "alloc" && !r.chance(25) {
		a = anchors[r.intn(len(anchors))]
	}
	var ins string
	switch a.kind {
	case "poke":
		ins = "    a0.poke()"
	case "alias":
		ins = lines[a.line]
	case "ping":
		ins = "    t0.ping()"
	case "alloc":
		*allocs++
		ins = fmt.Sprintf("    uu = new C0 @ hx%d", *allocs)
	}
	out := make([]string, 0, len(lines)+1)
	if a.kind == "ping" {
		// Insert before the return; everything else goes after its anchor.
		out = append(out, lines[:a.line]...)
		out = append(out, ins)
		out = append(out, lines[a.line:]...)
	} else {
		out = append(out, lines[:a.line+1]...)
		out = append(out, ins)
		out = append(out, lines[a.line+1:]...)
	}
	return strings.Join(out, "\n"), Edit{Kind: a.kind, Line: a.line + 1}
}
