package bench

import (
	"fmt"
	"strings"

	"tracer/internal/core"
	"tracer/internal/driver"
)

// This file holds the warm-start experiments: re-solving an unchanged
// program from a populated store (the paper-suite sweep) and re-solving
// along a chain of single-statement edits (the incremental workload the
// delta invalidation exists for).

// LoadSource builds a Benchmark from explicit source text — the edit-chain
// steps are not Suite members, so they bypass the generation cache.
func LoadSource(cfg Config, src string) (*Benchmark, error) {
	prog, err := driver.Load(src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", cfg.Name, err)
	}
	return &Benchmark{Config: cfg, Source: src, Prog: prog}, nil
}

// WarmRow is one (benchmark, client) cold-vs-warm measurement.
type WarmRow struct {
	Name      string
	Client    Client
	Queries   int
	ColdMilli float64 // first run against an empty store (includes the write)
	WarmMilli float64 // identical re-run against the populated store
	// MaxWarmIters is the largest CEGAR iteration count any non-replayed
	// query needed on the warm run (replayed Exhausted verdicts do no
	// iterations at all; they report the stored count).
	MaxWarmIters int
	Replayed     int // Exhausted queries answered by replay on the warm run
}

// Speedup is cold wall over warm wall.
func (r WarmRow) Speedup() float64 {
	if r.WarmMilli <= 0 {
		return 0
	}
	return r.ColdMilli / r.WarmMilli
}

// WarmTable re-runs the Figure 12 workload twice per (benchmark, client)
// against warmDir: once cold (populating the store) and once warm. Both runs
// bypass the in-process result cache; the store directory is the only state
// shared between them.
func WarmTable(opts RunOptions, warmDir string) ([]WarmRow, error) {
	var rows []WarmRow
	for _, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			return nil, err
		}
		for _, cl := range Clients() {
			o := opts
			o.Fresh = true
			o.WarmDir = warmDir
			cold, err := Run(b, cl, o)
			if err != nil {
				return nil, err
			}
			warmRes, err := Run(b, cl, o)
			if err != nil {
				return nil, err
			}
			row := WarmRow{
				Name: cfg.Name, Client: cl, Queries: len(warmRes.Outcomes),
				ColdMilli: cold.WallMilli, WarmMilli: warmRes.WallMilli,
			}
			for _, q := range warmRes.Outcomes {
				if q.Status == core.Exhausted {
					row.Replayed++
					continue
				}
				if q.Iterations > row.MaxWarmIters {
					row.MaxWarmIters = q.Iterations
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderWarmTable renders the cold-vs-warm sweep.
func RenderWarmTable(rows []WarmRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warm start: Figure 12 workload, cold (empty store) vs warm (populated store).\n")
	fmt.Fprintf(&b, "%-9s %-13s | %7s | %8s %8s %8s | %9s %8s\n",
		"", "client", "queries", "cold", "warm", "speedup", "max iters", "replayed")
	var coldTot, warmTot float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-13s | %7d | %8s %8s %7.1fx | %9d %8d\n",
			r.Name, r.Client, r.Queries, fmtMs(r.ColdMilli), fmtMs(r.WarmMilli),
			r.Speedup(), r.MaxWarmIters, r.Replayed)
		coldTot += r.ColdMilli
		warmTot += r.WarmMilli
	}
	if warmTot > 0 {
		fmt.Fprintf(&b, "whole workload: cold %s, warm %s (%.1fx)\n",
			fmtMs(coldTot), fmtMs(warmTot), coldTot/warmTot)
	}
	return b.String()
}

// EditChainRow is one step of the incremental re-solving experiment.
type EditChainRow struct {
	Step      int
	Kind      string  // edit kind applied to reach this step ("" for step 0)
	ColdMilli float64 // solving the step with no store at all
	WarmMilli float64 // solving it warm-started from the previous steps
}

// EditChainTable replays a deterministic chain of single-statement edits on
// one benchmark, solving every step both cold and warm (every registered
// client, walls summed). The warm store persists across steps, so step i is seeded by
// whatever survived the diff against step i-1's snapshot.
func EditChainTable(cfg Config, steps int, opts RunOptions, warmDir string) ([]EditChainRow, error) {
	chain, edits := EditChain(cfg, steps)
	var rows []EditChainRow
	for i, src := range chain {
		stepCfg := cfg
		stepCfg.Name = fmt.Sprintf("%s+e%d", cfg.Name, i)
		b, err := LoadSource(stepCfg, src)
		if err != nil {
			return nil, err
		}
		row := EditChainRow{Step: i}
		if i > 0 {
			row.Kind = edits[i-1].Kind
		}
		for _, cl := range Clients() {
			o := opts
			o.Fresh = true
			o.WarmDir = ""
			cold, err := Run(b, cl, o)
			if err != nil {
				return nil, err
			}
			row.ColdMilli += cold.WallMilli
			o.WarmDir = warmDir
			warmRes, err := Run(b, cl, o)
			if err != nil {
				return nil, err
			}
			row.WarmMilli += warmRes.WallMilli
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderEditChainTable renders the edit-chain experiment.
func RenderEditChainTable(name string, rows []EditChainRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Edit chain (%s): per-step wall, cold vs warm-started from the previous step.\n", name)
	fmt.Fprintf(&b, "%-5s %-7s | %8s %8s %8s\n", "step", "edit", "cold", "warm", "speedup")
	var coldTot, warmTot float64
	for _, r := range rows {
		sp := 0.0
		if r.WarmMilli > 0 {
			sp = r.ColdMilli / r.WarmMilli
		}
		kind := r.Kind
		if kind == "" {
			kind = "-"
		}
		fmt.Fprintf(&b, "%-5d %-7s | %8s %8s %7.1fx\n", r.Step, kind, fmtMs(r.ColdMilli), fmtMs(r.WarmMilli), sp)
		if r.Step > 0 { // step 0 populates the store; both runs are cold
			coldTot += r.ColdMilli
			warmTot += r.WarmMilli
		}
	}
	if warmTot > 0 {
		fmt.Fprintf(&b, "edited steps total: cold %s, warm %s (%.1fx)\n",
			fmtMs(coldTot), fmtMs(warmTot), coldTot/warmTot)
	}
	return b.String()
}
