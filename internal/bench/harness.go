package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/escape"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/nullness"
	"tracer/internal/obs"
	"tracer/internal/typestate"
	"tracer/internal/uset"
	"tracer/internal/warm"
)

// Client names a client analysis by its bench/table display name (the
// driver registry's BenchName; the wire name differs — see driver.Clients).
type Client string

const (
	Typestate Client = "type-state"
	Escape    Client = "thread-escape"
	Nullness  Client = "null-deref"
)

// Clients returns every registered client in the driver registry's
// deterministic order, under bench display names.
func Clients() []Client {
	var out []Client
	for _, spec := range driver.Clients() {
		out = append(out, Client(spec.BenchName))
	}
	return out
}

// RunOptions tunes a client run over one benchmark.
type RunOptions struct {
	K          int           // beam width (the paper's k; 5 in the evaluation)
	MaxIters   int           // CEGAR iteration cap per query
	Timeout    time.Duration // wall-clock cap per query (paper: 1,000 min)
	MaxQueries int           // 0 = all queries
	Fresh      bool          // bypass the result cache (for testing.B loops)
	// Workers resolves queries concurrently (queries are independent; each
	// job owns its analysis instance). 0 or 1 means sequential. Per-query
	// timings remain meaningful; total wall time shrinks.
	Workers int
	// BatchWorkers is the worker-pool size of the grouped multi-query
	// solver (core.Options.Workers): RunBatch schedules independent query
	// groups and per-query meta-analyses across it. Results are identical
	// for every value.
	BatchWorkers int
	// FwdCacheSize is RunBatch's forward-run memo size
	// (core.Options.FwdCacheSize): 0 = default, negative disables.
	FwdCacheSize int
	// Context, when non-nil, cancels in-flight solves cooperatively
	// (core.Options.Context); unresolved queries report Exhausted with
	// partial stats. paperbench wires a signal.NotifyContext here so SIGINT
	// still flushes the bench JSON.
	Context context.Context
	// Recorder receives the TRACER loop's structured telemetry, tagged with
	// each query's ID (see internal/obs). It must be safe for concurrent
	// use when Workers > 1. Note the run cache: cached results replay no
	// events — set Fresh to re-record a previously computed run.
	Recorder obs.Recorder
	// NoDelta disables the delta-incremental forward engine: per-query jobs
	// solve cold every CEGAR iteration and the batch scheduler never resumes
	// a cached run across an abstraction flip. The differential suite uses
	// it to obtain the reference (cold) executor.
	NoDelta bool
	// WarmDir, when non-empty, names a warm-start store directory
	// (internal/warm): Run and RunBatch seed each query with its surviving
	// stored clauses before iteration 1 and persist what this run learned
	// on completion. Run additionally replays stored Exhausted verdicts on
	// a byte-exact program match under the identical budget; RunBatch never
	// replays (its budget is batch-wide, so per-query Exhausted verdicts
	// are not comparable across runs).
	WarmDir string
}

// DefaultRunOptions are the settings used to regenerate the paper's tables.
func DefaultRunOptions() RunOptions {
	return RunOptions{K: 5, MaxIters: 200, Timeout: 5 * time.Second}
}

// QueryOutcome records the resolution of one query.
type QueryOutcome struct {
	ID          string
	Status      core.Status
	Iterations  int
	AbsSize     int    // |cheapest abstraction| when proved
	Abstraction string // canonical key of the cheapest abstraction
	Millis      float64
	Steps       int
}

// ClientResult is one (benchmark, client, k) run over all queries.
type ClientResult struct {
	Benchmark string
	Client    Client
	K         int
	Outcomes  []QueryOutcome
	WallMilli float64
}

// Proven, Impossible, Unresolved count outcomes by status.
func (r *ClientResult) Proven() int     { return r.count(core.Proved) }
func (r *ClientResult) Impossible() int { return r.count(core.Impossible) }
func (r *ClientResult) Unresolved() int { return r.count(core.Exhausted) }

func (r *ClientResult) count(s core.Status) int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Status == s {
			n++
		}
	}
	return n
}

// Run executes every generated query of the given client individually
// through TRACER, mirroring the paper's per-query resolution. Results are
// cached per (benchmark, client, k, query cap).
func Run(b *Benchmark, client Client, opts RunOptions) (*ClientResult, error) {
	key := fmt.Sprintf("%s/%s/k=%d/max=%d/cap=%d/to=%s/warm=%s/nodelta=%t", b.Config.Name, client, opts.K, opts.MaxIters, opts.MaxQueries, opts.Timeout, opts.WarmDir, opts.NoDelta)
	if !opts.Fresh {
		runMu.Lock()
		if r, ok := runCache[key]; ok {
			runMu.Unlock()
			return r, nil
		}
		runMu.Unlock()
	}

	var runFn func(*Benchmark, RunOptions, *ClientResult, *warm.Session) error
	switch client {
	case Typestate:
		runFn = runTypestate
	case Escape:
		runFn = runEscape
	case Nullness:
		runFn = runNullness
	default:
		return nil, fmt.Errorf("bench: unknown client %q", client)
	}

	res := &ClientResult{Benchmark: b.Config.Name, Client: client, K: opts.K}
	start := time.Now()
	sess := warmSession(b, client, opts)
	if err := runFn(b, opts, res, sess); err != nil {
		return nil, err
	}
	if sess != nil {
		if werr := sess.Save(); werr != nil {
			return nil, fmt.Errorf("bench: saving warm snapshot: %w", werr)
		}
	}
	res.WallMilli = float64(time.Since(start).Microseconds()) / 1000

	if !opts.Fresh {
		runMu.Lock()
		runCache[key] = res
		runMu.Unlock()
	}
	return res, nil
}

var (
	runMu    sync.Mutex
	runCache = map[string]*ClientResult{}
)

func coreOpts(opts RunOptions) core.Options {
	return core.Options{
		MaxIters: opts.MaxIters, Timeout: opts.Timeout, Context: opts.Context,
		Recorder: opts.Recorder,
		Workers:  opts.BatchWorkers, FwdCacheSize: opts.FwdCacheSize,
		NoDelta: opts.NoDelta,
	}
}

// warmClient maps the bench client name onto the warm store's. The mapping
// is exhaustive: an unknown bench client must not silently alias another
// client's warm snapshots, so it panics (Run/RunBatch reject unknown
// clients before any warm session is opened).
func warmClient(client Client) warm.Client {
	switch client {
	case Typestate:
		return warm.Typestate
	case Escape:
		return warm.Escape
	case Nullness:
		return warm.Nullness
	}
	panic(fmt.Sprintf("bench: no warm client for %q", client))
}

// warmSession opens the warm-start session for one run, or nil when WarmDir
// is unset. The config carries the *effective* budget (core's defaults
// applied) so Exhausted replay compares like with like.
func warmSession(b *Benchmark, client Client, opts RunOptions) *warm.Session {
	if opts.WarmDir == "" {
		return nil
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 1000 // core.Options default
	}
	st := warm.Open(opts.WarmDir, opts.Recorder)
	return st.Session(b.Prog, warm.Config{
		Client:   warmClient(client),
		K:        opts.K,
		MaxIters: maxIters,
		Timeout:  opts.Timeout,
	})
}

func runTypestate(b *Benchmark, opts RunOptions, res *ClientResult, sess *warm.Session) error {
	queries := b.Prog.TypestateQueries()
	if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
		queries = queries[:opts.MaxQueries]
	}
	// Share the literal universe run-wide and the WP cache per tracked
	// site, exactly as the batch driver does (the type-state WP depends on
	// the analysis's site and may-point set, so only same-site jobs compute
	// identical preconditions; both structures are concurrency-safe). The
	// per-query loop otherwise re-derives every interned literal and WP DNF
	// from scratch for each query on the same program.
	uni := formula.NewUniverse(typestate.Theory{})
	siteWPC := map[string]*meta.WPCache{}
	for _, q := range queries {
		if siteWPC[q.Site] == nil {
			siteWPC[q.Site] = meta.NewWPCache()
		}
	}
	return runAll(len(queries), opts, res, sess, func(i int) (string, string, core.Problem) {
		job := b.Prog.TypestateJob(queries[i], opts.K)
		job.Uni, job.WPC = uni, siteWPC[queries[i].Site]
		job.NoDelta = opts.NoDelta
		return queries[i].ID, queries[i].Key, job
	})
}

func runEscape(b *Benchmark, opts RunOptions, res *ClientResult, sess *warm.Session) error {
	queries := b.Prog.EscapeQueries()
	if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
		queries = queries[:opts.MaxQueries]
	}
	// Share one literal universe and one WP cache across all queries of the
	// run, as the batch driver does: the escape WP depends only on the atom
	// and primitive, never on the query or the abstraction.
	uni := formula.NewUniverse(escape.Theory{})
	wpc := meta.NewWPCache()
	return runAll(len(queries), opts, res, sess, func(i int) (string, string, core.Problem) {
		job := b.Prog.EscapeJob(queries[i], opts.K)
		job.Uni, job.WPC = uni, wpc
		job.NoDelta = opts.NoDelta
		return queries[i].ID, queries[i].Key, job
	})
}

func runNullness(b *Benchmark, opts RunOptions, res *ClientResult, sess *warm.Session) error {
	queries := b.Prog.NullnessQueries()
	if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
		queries = queries[:opts.MaxQueries]
	}
	// As for escape: one literal universe and one WP cache run-wide — the
	// nullness WP depends only on the atom and primitive.
	uni := formula.NewUniverse(nullness.Theory{})
	wpc := meta.NewWPCache()
	return runAll(len(queries), opts, res, sess, func(i int) (string, string, core.Problem) {
		job := b.Prog.NullnessJob(queries[i], opts.K)
		job.Uni, job.WPC = uni, wpc
		job.NoDelta = opts.NoDelta
		return queries[i].ID, queries[i].Key, job
	})
}

// runAll resolves n queries, optionally across a worker pool. Results keep
// query order regardless of completion order. job returns a query's display
// ID, its position-independent warm-store key, and the solver problem.
func runAll(n int, opts RunOptions, res *ClientResult, sess *warm.Session, job func(i int) (string, string, core.Problem)) error {
	outcomes := make([]QueryOutcome, n)
	errs := make([]error, n)
	workers := opts.Workers
	if workers <= 1 {
		for i := 0; i < n; i++ {
			id, key, pr := job(i)
			outcomes[i], errs[i] = solveOne(id, key, pr, opts, sess)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					id, key, pr := job(i)
					outcomes[i], errs[i] = solveOne(id, key, pr, opts, sess)
				}
			}()
		}
		for i := 0; i < n; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	res.Outcomes = append(res.Outcomes, outcomes...)
	return nil
}

func solveOne(id, key string, job core.Problem, opts RunOptions, sess *warm.Session) (QueryOutcome, error) {
	start := time.Now()
	if sess != nil {
		if r, ok := sess.Replay(key); ok {
			return QueryOutcome{
				ID:         id,
				Status:     r.Status,
				Iterations: r.Iterations,
				Millis:     float64(time.Since(start).Microseconds()) / 1000,
			}, nil
		}
	}
	copts := coreOpts(opts)
	copts.Recorder = obs.Tag(opts.Recorder, id)
	if sess != nil {
		copts.Seed = sess.SeedFor(key)
		copts.OnLearn = func(_ int, _ uset.Set, t lang.Trace, cubes []core.ParamCube) {
			sess.RecordLearn(key, t, cubes)
		}
	}
	r, err := core.Solve(job, copts)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("query %s: %w", id, err)
	}
	if sess != nil {
		sess.RecordResult(key, r)
	}
	o := QueryOutcome{
		ID:         id,
		Status:     r.Status,
		Iterations: r.Iterations,
		Millis:     float64(time.Since(start).Microseconds()) / 1000,
		Steps:      r.ForwardSteps,
	}
	if r.Status == core.Proved {
		o.AbsSize = r.Abstraction.Len()
		o.Abstraction = r.Abstraction.Key()
	}
	return o, nil
}

// RunBatch resolves the same queries through the grouped multi-query driver
// of §6, for the grouping ablation. With WarmDir set it seeds each query's
// surviving clauses (seeded queries start in their own solver group) and
// records what the batch learns; it never replays stored verdicts, and it
// does not persist Exhausted verdicts either — the batch budget is shared
// across queries, so a per-query "exhausted under budget B" claim measured
// inside a batch would not be comparable to any later run.
func RunBatch(b *Benchmark, client Client, opts RunOptions) (*core.BatchResult, error) {
	var bp core.BatchProblem
	var keys []string
	switch client {
	case Typestate:
		queries := b.Prog.TypestateQueries()
		if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
			queries = queries[:opts.MaxQueries]
		}
		for _, q := range queries {
			keys = append(keys, q.Key)
		}
		bp = driver.NewTypestateBatch(b.Prog, queries, opts.K)
	case Escape:
		queries := b.Prog.EscapeQueries()
		if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
			queries = queries[:opts.MaxQueries]
		}
		for _, q := range queries {
			keys = append(keys, q.Key)
		}
		bp = driver.NewEscapeBatch(b.Prog, queries, opts.K)
	case Nullness:
		queries := b.Prog.NullnessQueries()
		if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
			queries = queries[:opts.MaxQueries]
		}
		for _, q := range queries {
			keys = append(keys, q.Key)
		}
		bp = driver.NewNullnessBatch(b.Prog, queries, opts.K)
	default:
		return nil, fmt.Errorf("bench: unknown client %q", client)
	}
	sess := warmSession(b, client, opts)
	copts := coreOpts(opts)
	if sess != nil {
		copts.SeedBatch = func(q int) []core.ParamCube { return sess.SeedFor(keys[q]) }
		copts.OnLearn = func(q int, _ uset.Set, t lang.Trace, cubes []core.ParamCube) {
			sess.RecordLearn(keys[q], t, cubes)
		}
	}
	res, err := core.SolveBatch(bp, copts)
	if err != nil {
		return nil, err
	}
	if sess != nil {
		for q, r := range res.Results {
			if r.Status == core.Proved || r.Status == core.Impossible {
				sess.RecordResult(keys[q], r)
			}
		}
		if werr := sess.Save(); werr != nil {
			return nil, fmt.Errorf("bench: saving warm snapshot: %w", werr)
		}
	}
	return res, nil
}
