package bench

import (
	"testing"
)

// TestGenerateDeterministic: the same config yields byte-identical source.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Suite()[0]
	a := Generate(cfg)
	b := Generate(cfg)
	if a != b {
		t.Fatal("generator is not deterministic")
	}
}

// TestSuiteLoads: every benchmark parses, checks, points-to-analyzes, and
// lowers; sizes grow roughly with position in the suite.
func TestSuiteLoads(t *testing.T) {
	var prevAtoms int
	for i, cfg := range Suite() {
		b, err := Load(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		st := b.Prog.ComputeStats(b.Source)
		t.Logf("%-9s classes=%d methods=%d atoms=%d lines=%d N_ts=%d N_esc=%d",
			cfg.Name, st.TotalClasses, st.TotalMethods, st.TotalAtoms,
			st.SourceLines, st.TypestateParams, st.EscapeParams)
		if st.TotalAtoms == 0 {
			t.Fatalf("%s: empty lowering", cfg.Name)
		}
		if i >= 4 && st.TotalAtoms < prevAtoms/4 {
			t.Errorf("%s: unexpectedly small (%d atoms)", cfg.Name, st.TotalAtoms)
		}
		if i < 4 {
			prevAtoms = st.TotalAtoms
		}
	}
}

// TestSuiteQueryGeneration: every benchmark yields queries for both clients.
func TestSuiteQueryGeneration(t *testing.T) {
	for _, cfg := range SmallSuite() {
		b := MustLoad(cfg)
		ts := b.Prog.TypestateQueries()
		esc := b.Prog.EscapeQueries()
		t.Logf("%-9s ts-queries=%d esc-queries=%d", cfg.Name, len(ts), len(esc))
		if len(ts) == 0 {
			t.Errorf("%s: no type-state queries", cfg.Name)
		}
		if len(esc) == 0 {
			t.Errorf("%s: no escape queries", cfg.Name)
		}
	}
}
