// Package rhs implements a summary-based interprocedural tabulation solver
// in the style of Reps–Horwitz–Sagiv [POPL'95], the framework the paper's
// forward analyses are implemented in ("The forward analysis is expressed
// as an instance of the RHS tabulation framework", §6).
//
// The solver works on a supergraph: one control-flow graph per method, with
// call edges that carry the parameter-binding and return-binding atoms.
// Dataflow facts are single abstract states D (the analyses are
// disjunctive), path edges are ⟨d_entry, n, d⟩ triples per method, and
// procedure summaries map (method, entry fact) to exit facts. Provenance is
// recorded per path edge so that abstract counterexample traces — flat
// sequences of atomic commands with callee traces spliced in at call sites
// — can be reconstructed for the backward meta-analysis.
//
// Unlike the inlining lowering (ir.Lower), the tabulation handles recursive
// call graphs: recursion becomes a fixpoint over summaries. Locals are
// still identified per method (not per frame), so recursive frames collapse
// into one abstract frame; DESIGN.md discusses this modeling choice.
package rhs

import (
	"fmt"

	"tracer/internal/lang"
)

// CallEdge describes the interprocedural part of an edge: which method is
// invoked, the atoms binding actuals to formals (and nulling the callee's
// frame), and the atoms binding the returned value after the callee exits.
type CallEdge struct {
	Callee int // method index
	Bind   []lang.Atom
	Ret    []lang.Atom
}

// Edge is a supergraph edge within one method. Exactly one of {Atom, Call}
// may be set; both nil is an ε edge.
type Edge struct {
	From, To int
	Atom     lang.Atom
	Call     *CallEdge
}

// Method is one method's control-flow graph.
type Method struct {
	Name  string
	Nodes int
	Entry int
	Exit  int
	Edges []Edge
	Out   [][]int
}

// AddNode allocates a node.
func (m *Method) AddNode() int {
	n := m.Nodes
	m.Nodes++
	m.Out = append(m.Out, nil)
	return n
}

// AddEdge appends an edge.
func (m *Method) AddEdge(e Edge) {
	if e.Atom != nil && e.Call != nil {
		panic("rhs: edge cannot be both intra and call")
	}
	if e.From < 0 || e.From >= m.Nodes || e.To < 0 || e.To >= m.Nodes {
		panic(fmt.Sprintf("rhs: edge (%d,%d) out of range [0,%d)", e.From, e.To, m.Nodes))
	}
	m.Edges = append(m.Edges, e)
	m.Out[e.From] = append(m.Out[e.From], len(m.Edges)-1)
}

// Graph is a whole-program supergraph.
type Graph struct {
	Methods []*Method
	Main    int // index of the entry method
}

// NewMethod appends an empty method graph and returns its index.
func (g *Graph) NewMethod(name string) int {
	m := &Method{Name: name}
	g.Methods = append(g.Methods, m)
	return len(g.Methods) - 1
}

// EachAtom visits every atom of the supergraph, including call-edge binding
// atoms. It is how universe collectors (variables, fields, sites) see the
// whole program.
func (g *Graph) EachAtom(f func(a lang.Atom)) {
	for _, m := range g.Methods {
		for _, e := range m.Edges {
			if e.Atom != nil {
				f(e.Atom)
			}
			if e.Call != nil {
				for _, a := range e.Call.Bind {
					f(a)
				}
				for _, a := range e.Call.Ret {
					f(a)
				}
			}
		}
	}
}

// AtomsCFG flattens every atom onto a throwaway single-method CFG, so the
// analyses' universe collectors (escape.Universe, typestate.CollectVars),
// which consume lang.CFG values, apply unchanged.
func (g *Graph) AtomsCFG() *lang.CFG {
	out := lang.NewCFG()
	cur := out.AddNode()
	g.EachAtom(func(a lang.Atom) {
		next := out.AddNode()
		out.AddEdge(cur, next, a)
		cur = next
	})
	out.Exit = cur
	return out
}

// Atoms counts non-ε intra edges plus binding atoms, a size measure.
func (g *Graph) Atoms() int {
	n := 0
	for _, m := range g.Methods {
		for _, e := range m.Edges {
			if e.Atom != nil {
				n++
			}
			if e.Call != nil {
				n += len(e.Call.Bind) + len(e.Call.Ret)
			}
		}
	}
	return n
}
