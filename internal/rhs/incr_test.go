package rhs

import (
	"math/rand"
	"reflect"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// The flip-chain differential suite for the tabulation Chain: a parametric
// mock transfer whose three atoms are each gated on one abstraction
// parameter, a supergraph mixing branching contexts with recursion, and a
// seeded random walk over the abstraction lattice. Every step pins the
// Chain's contract against a cold SolveBudget of the same abstraction:
// identical Steps, identical per-node discovery sequences, identical
// witness traces.

// paramMockTr instantiates the gated mock transfer under p: atom "a"
// increments only when parameter 0 is on, "b" zeroes only under parameter
// 1, "c" doubles only under parameter 2; off-parameters make the atom an
// identity, exactly the shape of the clients' parameter gating.
func paramMockTr(p uset.Set) dataflow.Transfer[int] {
	return func(a lang.Atom, d int) int {
		tr, _ := paramMockDep(p)(a, d)
		return tr
	}
}

// paramMockDep is paramMockTr with dependency literals.
func paramMockDep(p uset.Set) dataflow.DepTransfer[int] {
	return func(a lang.Atom, d int) (int, int32) {
		mn, ok := a.(lang.MoveNull)
		if !ok {
			return d, 0
		}
		switch mn.V {
		case "a":
			if !p.Has(0) {
				return d, dataflow.DepLit(p, 0)
			}
			if d < 9 {
				return d + 1, dataflow.DepLit(p, 0)
			}
			return 9, dataflow.DepLit(p, 0)
		case "b":
			if !p.Has(1) {
				return d, dataflow.DepLit(p, 1)
			}
			return 0, dataflow.DepLit(p, 1)
		case "c":
			if !p.Has(2) {
				return d, dataflow.DepLit(p, 2)
			}
			return (d * 2) % 10, dataflow.DepLit(p, 2)
		}
		return d, 0
	}
}

// flipGraph builds the shared fixture: main branches into two call contexts
// of a helper, then calls a self-recursive grower — summaries, multiple
// contexts, and a recursive fixpoint all participate in every replay.
func flipGraph() *Graph {
	g := &Graph{}
	helper := straightMethod(g, "helper", inc(), dbl())

	recIdx := g.NewMethod("rec")
	rm := g.Methods[recIdx]
	r0, r1, r2 := rm.AddNode(), rm.AddNode(), rm.AddNode()
	rm.Entry, rm.Exit = r0, r2
	rm.AddEdge(Edge{From: r0, To: r2})
	rm.AddEdge(Edge{From: r0, To: r1, Atom: inc()})
	rm.AddEdge(Edge{From: r1, To: r2, Call: &CallEdge{Callee: recIdx}})

	mainIdx := g.NewMethod("main")
	m := g.Methods[mainIdx]
	g.Main = mainIdx
	n0, nA, nB, n1, n2 := m.AddNode(), m.AddNode(), m.AddNode(), m.AddNode(), m.AddNode()
	m.Entry, m.Exit = n0, n2
	m.AddEdge(Edge{From: n0, To: nA, Atom: zero()})
	m.AddEdge(Edge{From: n0, To: nB, Atom: inc()})
	m.AddEdge(Edge{From: nA, To: n1, Call: &CallEdge{Callee: helper, Bind: []lang.Atom{inc()}}})
	m.AddEdge(Edge{From: nB, To: n1, Call: &CallEdge{Callee: helper, Ret: []lang.Atom{dbl()}}})
	m.AddEdge(Edge{From: n1, To: n2, Call: &CallEdge{Callee: recIdx}})
	return g
}

// checkChainEquiv compares a Chain solve against a cold solve node by node.
func checkChainEquiv(t *testing.T, g *Graph, got, want *Result[int], dI int, tr dataflow.Transfer[int]) {
	t.Helper()
	if got.Steps != want.Steps {
		t.Fatalf("Steps = %d, cold %d", got.Steps, want.Steps)
	}
	for mi, m := range g.Methods {
		for n := 0; n < m.Nodes; n++ {
			gs, ws := got.States(mi, n), want.States(mi, n)
			if !reflect.DeepEqual(gs, ws) {
				t.Fatalf("method %d node %d states = %v, cold %v", mi, n, gs, ws)
			}
			for _, d := range ws {
				gw, ww := got.Witness(mi, n, d), want.Witness(mi, n, d)
				if !reflect.DeepEqual(gw, ww) {
					t.Fatalf("method %d node %d fact %v witness %v, cold %v", mi, n, d, gw, ww)
				}
			}
		}
	}
	exit := g.Methods[g.Main].Exit
	for _, d := range want.States(g.Main, exit) {
		if replay := dataflow.EvalTrace(got.Witness(g.Main, exit, d), dI, tr); replay != d {
			t.Fatalf("main exit witness for %v replays to %v", d, replay)
		}
	}
}

func TestChainFlipChain(t *testing.T) {
	g := flipGraph()
	ch := NewChain[int](g)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 24; step++ {
		var ks []int
		for k := 0; k < 3; k++ {
			if rng.Intn(2) == 0 {
				ks = append(ks, k)
			}
		}
		p := uset.New(ks...)
		got := ch.Solve(p, 1, paramMockDep(p), nil, nil)
		want := SolveBudget(g, 1, paramMockTr(p), nil, nil)
		checkChainEquiv(t, g, got, want, 1, paramMockTr(p))
	}
}

// TestChainFastPath re-solves an unchanged abstraction: the retained Result
// must be handed back without a replay, and a flip of a never-consulted
// parameter must do the same.
func TestChainFastPath(t *testing.T) {
	g := flipGraph()
	ch := NewChain[int](g)
	p := uset.New(0, 2)
	first := ch.Solve(p, 1, paramMockDep(p), nil, nil)
	second := ch.Solve(p, 1, paramMockDep(p), nil, nil)
	if second != first {
		t.Fatalf("unchanged abstraction did not serve the retained result")
	}
	if resumed, reused, invalidated := ch.Stats(); !resumed || reused != first.Steps || invalidated != 0 {
		t.Fatalf("fast path stats = (%v, %d, %d), want (true, %d, 0)", resumed, reused, invalidated, first.Steps)
	}
}

// TestChainInvalidation flips a consulted parameter and checks the delta
// accounting distinguishes reuse from recomputation.
func TestChainInvalidation(t *testing.T) {
	g := flipGraph()
	ch := NewChain[int](g)
	p := uset.New(0)
	ch.Solve(p, 1, paramMockDep(p), nil, nil)
	q := uset.New(0, 1)
	got := ch.Solve(q, 1, paramMockDep(q), nil, nil)
	want := SolveBudget(g, 1, paramMockTr(q), nil, nil)
	checkChainEquiv(t, g, got, want, 1, paramMockTr(q))
	resumed, _, invalidated := ch.Stats()
	if !resumed || invalidated == 0 {
		t.Fatalf("flip of a consulted parameter: stats = (%v, _, %d), want a resume with invalidations", resumed, invalidated)
	}
}
