// Delta-driven incremental re-solving for the tabulation backend.
//
// A Chain retains the last tabulation Result together with an aggregate
// dependency signature — every abstraction parameter some transfer
// application of the run consulted, split by the polarity it observed — and
// a persistent apply-memo mapping (atom, fact) to (result, dependency
// literal). When the CEGAR loop re-solves under a flipped abstraction:
//
//   - If no consulted parameter changed polarity, the retained Result is
//     returned as-is: an O(params/64) check serves the whole solve.
//   - Otherwise the tabulation replays, serving every transfer application
//     whose memoized dependency literal agrees with the new abstraction from
//     the memo (no transfer call) and recomputing — and re-memoizing — only
//     the applications the flip actually touched: the invalidation cone of
//     the parameter delta, at path-edge-derivation granularity.
//
// Determinism argument. The tabulation in SolveBudget is a pure function of
// (supergraph, transfer function, initial fact): its worklist is LIFO, edges
// expand in supergraph order, summaries apply in discovery order, and
// dedup is semantic. A memo entry is served only when its dependency literal
// agrees with the current abstraction, in which case — by the DepTransfer
// contract — its stored result equals what the transfer function would
// return, so a replayed execution is indistinguishable from a cold one:
// same discoveries, same Steps, same provenance, same Witness traces. The
// zero-work fast path returns the Result of exactly that execution.
//
// Unlike dataflow.Chain, the retained Result shares no storage with later
// solves (every run allocates fresh maps), so previously returned Results
// stay valid after the chain moves on.
package rhs

import (
	"tracer/internal/budget"
	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// applyKey identifies one transfer application: the same atom applied to the
// same fact yields the same result under every abstraction agreeing with the
// recorded dependency literal.
type applyKey[D comparable] struct {
	a lang.Atom
	d D
}

// applyVal is one memoized transfer application.
type applyVal[D comparable] struct {
	next D
	lit  int32
}

// Chain is a resumable tabulation solver over one supergraph. Like
// dataflow.Chain it is bound to a single analysis instance (memoized facts
// are interned values of that instance) and is owned by one solve at a time.
type Chain[D comparable] struct {
	g    *Graph
	memo map[applyKey[D]]applyVal[D]

	// Retained last complete run and its aggregate signature.
	complete  bool
	dI        D
	res       *Result[D]
	onW, offW uset.Words

	lastResumed             bool
	lastReused, lastInvalid int
}

// NewChain returns an empty chain for g.
func NewChain[D comparable](g *Graph) *Chain[D] {
	return &Chain[D]{g: g, memo: make(map[applyKey[D]]applyVal[D], 256)}
}

// Solve runs the tabulation under abstraction p from initial fact dI,
// serving it from the retained run when the parameter delta allows. The
// result is byte-equivalent to SolveBudget with the instantiated transfer
// function. A budget trip returns the partial tabulation without retaining
// it (the next Solve replays from the memo).
func (c *Chain[D]) Solve(p uset.Set, dI D, tr dataflow.DepTransfer[D], rec obs.Recorder, b *budget.Budget) *Result[D] {
	pw := chainParamWords(p)
	recording := rec != nil && rec.Enabled()
	if c.complete && dI == c.dI && c.allClean(pw) {
		c.lastResumed, c.lastReused, c.lastInvalid = true, c.res.Steps, 0
		if recording {
			rec.Count(obs.RhsDeltaResumes, 1)
			if c.lastReused > 0 {
				rec.Count(obs.RhsPEReused, int64(c.lastReused))
			}
		}
		return c.res
	}
	resumed := c.complete && dI == c.dI
	c.lastResumed, c.lastReused, c.lastInvalid = resumed, 0, 0
	c.complete = false
	c.dI = dI
	clearChainWords(c.onW)
	clearChainWords(c.offW)
	wrapped := func(a lang.Atom, d D) D {
		k := applyKey[D]{a, d}
		if v, ok := c.memo[k]; ok {
			if chainLitOK(v.lit, pw) {
				c.orLit(v.lit)
				c.lastReused++
				return v.next
			}
			c.lastInvalid++
		}
		next, lit := tr(a, d)
		c.memo[k] = applyVal[D]{next, lit}
		c.orLit(lit)
		return next
	}
	res := SolveBudget(c.g, dI, wrapped, rec, b)
	if !b.Tripped() {
		c.res = res
		c.complete = true
	}
	if recording {
		if resumed {
			rec.Count(obs.RhsDeltaResumes, 1)
		}
		if c.lastReused > 0 {
			rec.Count(obs.RhsPEReused, int64(c.lastReused))
		}
		if c.lastInvalid > 0 {
			rec.Count(obs.RhsPEInvalidated, int64(c.lastInvalid))
		}
	}
	return res
}

// Stats reports the delta accounting of the most recent Solve: whether a
// retained run existed to resume from, how many transfer applications were
// served without a transfer call (on the fast path: every path edge of the
// retained run), and how many memo entries the flip invalidated.
func (c *Chain[D]) Stats() (resumed bool, reused, invalidated int) {
	return c.lastResumed, c.lastReused, c.lastInvalid
}

// allClean reports that no parameter the retained run consulted changed
// polarity, so the run is valid under pw as-is.
func (c *Chain[D]) allClean(pw uset.Words) bool {
	for i, w := range c.onW {
		var pv uint64
		if i < len(pw) {
			pv = pw[i]
		}
		if w&^pv != 0 {
			return false
		}
	}
	for i, w := range c.offW {
		var pv uint64
		if i < len(pw) {
			pv = pw[i]
		}
		if w&pv != 0 {
			return false
		}
	}
	return true
}

// orLit folds one dependency literal into the aggregate signature.
func (c *Chain[D]) orLit(lit int32) {
	switch {
	case lit == 0:
	case lit > 0:
		c.onW = setChainWordBit(c.onW, uint32(lit-1))
	default:
		c.offW = setChainWordBit(c.offW, uint32(-lit-1))
	}
}

// chainLitOK reports whether a dependency literal agrees with abstraction pw.
func chainLitOK(lit int32, pw uset.Words) bool {
	switch {
	case lit == 0:
		return true
	case lit > 0:
		return pw.Has(uint32(lit - 1))
	default:
		return !pw.Has(uint32(-lit - 1))
	}
}

func setChainWordBit(w uset.Words, i uint32) uset.Words {
	if int(i>>6) >= len(w) {
		w = w.Grow(int(i) + 1)
	}
	w.SetBit(i)
	return w
}

// chainParamWords converts an abstraction to a bitset for O(1) membership.
func chainParamWords(p uset.Set) uset.Words {
	if len(p) == 0 {
		return nil
	}
	w := uset.MakeWords(p[len(p)-1] + 1)
	for _, k := range p {
		w.SetBit(uint32(k))
	}
	return w
}

func clearChainWords(w uset.Words) {
	for i := range w {
		w[i] = 0
	}
}
