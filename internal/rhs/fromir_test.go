package rhs

import (
	"sort"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/ir"
	"tracer/internal/lang"
	"tracer/internal/pointsto"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

const nonRecursiveSrc = `
global G

class Box {
  field val
  method fill(this, x) {
    this.val = x
    return this
  }
  method leakMaybe(this) {
    if * {
      G = this
    }
  }
}

class Main {
  method main(this) {
    var a, b, c, r
    a = new Box @ hA
    b = new Box @ hB
    r = a.fill(b)
    a.leakMaybe()
    c = a.val
    loop {
      c = b
    }
  }
}
`

func load(t *testing.T, src string) (*ir.Program, *pointsto.Result, *Program) {
	t.Helper()
	prog := ir.MustParse(src)
	pt, err := pointsto.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := FromIR(prog, pt)
	if err != nil {
		t.Fatal(err)
	}
	return prog, pt, sp
}

// TestEquivalenceWithInliner: on an acyclic program, the tabulation over
// the supergraph computes exactly the same fact sets at each source-level
// field access as the intraprocedural solver over the inlined CFG, for the
// thread-escape analysis under several abstractions.
func TestEquivalenceWithInliner(t *testing.T) {
	prog, pt, sp := load(t, nonRecursiveSrc)
	low, err := ir.Lower(prog, pt, ir.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	locals, fields, sites := escape.Universe(low.G)
	aInl := escape.New(locals, fields, sites)
	aRHS := escape.New(locals, fields, sites)

	for bits := 0; bits < 1<<len(sites); bits++ {
		var p uset.Set
		for i := range sites {
			if bits&(1<<i) != 0 {
				p = p.Add(aInl.Sites.ID(sites[i]))
			}
		}
		inl := dataflow.Solve(low.G, aInl.Initial(), aInl.Transfer(p))
		rhs := Solve(sp.G, aRHS.Initial(), aRHS.Transfer(p))

		// Compare fact sets per source access statement.
		inlByStmt := map[ir.Stmt]map[string]bool{}
		for _, fa := range low.Accesses {
			set := inlByStmt[fa.Stmt]
			if set == nil {
				set = map[string]bool{}
				inlByStmt[fa.Stmt] = set
			}
			for _, d := range inl.States(fa.Node) {
				set[aInl.Format(d)] = true
			}
		}
		for _, fa := range sp.Accesses {
			want := inlByStmt[fa.Stmt]
			got := map[string]bool{}
			for _, d := range rhs.States(fa.At.Method, fa.At.Node) {
				got[aRHS.Format(d)] = true
			}
			if len(got) != len(want) {
				t.Fatalf("p=%v stmt %v: RHS %v vs inliner %v", p, fa.Stmt.Position(), keys(got), keys(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("p=%v stmt %v: RHS missing %s", p, fa.Stmt.Position(), k)
				}
			}
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestWitnessReplayEscape: RHS witnesses replay to their facts under the
// escape transfer functions across call boundaries.
func TestWitnessReplayEscape(t *testing.T) {
	_, _, sp := load(t, nonRecursiveSrc)
	locals, fields, sites := universeOf(sp.G)
	a := escape.New(locals, fields, sites)
	p := uset.New(a.Sites.ID("hA"))
	res := Solve(sp.G, a.Initial(), a.Transfer(p))
	for _, fa := range sp.Accesses {
		for _, d := range res.States(fa.At.Method, fa.At.Node) {
			tr := res.Witness(fa.At.Method, fa.At.Node, d)
			if got := dataflow.EvalTrace(tr, a.Initial(), a.Transfer(p)); got != d {
				t.Fatalf("witness at %v replays to %s, want %s", fa.Stmt.Position(), a.Format(got), a.Format(d))
			}
		}
	}
}

// universeOf collects the universes from the supergraph's atoms.
func universeOf(g *Graph) (locals, fields, sites []string) {
	tmp := lang.NewCFG()
	n := tmp.AddNode()
	add := func(a lang.Atom) {
		m := tmp.AddNode()
		tmp.AddEdge(n, m, a)
	}
	for _, m := range g.Methods {
		for _, e := range m.Edges {
			if e.Atom != nil {
				add(e.Atom)
			}
			if e.Call != nil {
				for _, a := range e.Call.Bind {
					add(a)
				}
				for _, a := range e.Call.Ret {
					add(a)
				}
			}
		}
	}
	return escape.Universe(tmp)
}

const recursiveSrc = `
global G

class Node {
  field next
  method build(this, depth) {
    var child, out
    out = this
    if * {
      child = new Node @ hChild
      this.next = child
      out = child.build(depth)
    }
    return out
  }
}

class File {
  native method open(this)
  native method close(this)
}

class Main {
  method main(this) {
    var root, last, f
    root = new Node @ hRoot
    last = root.build(root)
    f = new File @ hFile
    f.open()
    f.close()
    query qf state(f: closed)
    query qroot local(root)
  }
}
`

// TestRecursiveProgram: ir.Lower rejects the program, but the tabulation
// analyzes it; the File protocol query must be provable.
func TestRecursiveProgram(t *testing.T) {
	prog, pt, sp := load(t, recursiveSrc)
	if _, err := ir.Lower(prog, pt, ir.LowerOptions{}); err == nil {
		t.Fatal("expected the inliner to reject recursion")
	}

	// Type-state on the File object: the trace through the recursive build
	// does not touch it, so tracking {f} proves the query.
	vars := universeVars(sp.G)
	a := typestate.New(typestate.FileProperty(), "hFile", vars)
	var fVar int
	for i, v := range vars {
		if v == "Main.main::f" {
			fVar = i
		}
	}
	p := uset.New(fVar)
	res := Solve(sp.G, a.Initial(), a.Transfer(p))
	var qf *ExplicitQuery
	for i := range sp.Queries {
		if sp.Queries[i].Name == "qf" {
			qf = &sp.Queries[i]
		}
	}
	if qf == nil {
		t.Fatal("query qf not lowered")
	}
	closed := uset.Bits(0).Add(a.Prop.MustState("closed"))
	for _, d := range res.States(qf.At.Method, qf.At.Node) {
		if !(typestate.Query{Want: closed}).Holds(d) {
			t.Fatalf("state %s violates qf despite tracking f", a.Format(d))
		}
	}
}

func universeVars(g *Graph) []string {
	tmp := lang.NewCFG()
	n := tmp.AddNode()
	add := func(a lang.Atom) {
		m := tmp.AddNode()
		tmp.AddEdge(n, m, a)
	}
	for _, m := range g.Methods {
		for _, e := range m.Edges {
			if e.Atom != nil {
				add(e.Atom)
			}
			if e.Call != nil {
				for _, a := range e.Call.Bind {
					add(a)
				}
				for _, a := range e.Call.Ret {
					add(a)
				}
			}
		}
	}
	return typestate.CollectVars(tmp)
}
