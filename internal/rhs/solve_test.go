package rhs

import (
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/lang"
)

// The mock domain: ints with atoms interpreted by variable name:
// "a = null" increments (capped at 9), "b = null" zeroes, "c = null"
// doubles mod 10.
func mockTr(a lang.Atom, d int) int {
	if mn, ok := a.(lang.MoveNull); ok {
		switch mn.V {
		case "a":
			if d < 9 {
				return d + 1
			}
			return 9
		case "b":
			return 0
		case "c":
			return (d * 2) % 10
		}
	}
	return d
}

func inc() lang.Atom  { return lang.MoveNull{V: "a"} }
func zero() lang.Atom { return lang.MoveNull{V: "b"} }
func dbl() lang.Atom  { return lang.MoveNull{V: "c"} }

// straightMethod builds a method executing the given atoms in sequence.
func straightMethod(g *Graph, name string, atoms ...lang.Atom) int {
	idx := g.NewMethod(name)
	m := g.Methods[idx]
	m.Entry = m.AddNode()
	cur := m.Entry
	for _, a := range atoms {
		next := m.AddNode()
		m.AddEdge(Edge{From: cur, To: next, Atom: a})
		cur = next
	}
	m.Exit = cur
	return idx
}

// TestIntraOnly: a single method behaves like the intraprocedural solver.
func TestIntraOnly(t *testing.T) {
	g := &Graph{}
	g.Main = straightMethod(g, "main", inc(), inc(), dbl())
	r := Solve(g, 0, mockTr)
	exit := g.Methods[g.Main].Exit
	states := r.States(g.Main, exit)
	if len(states) != 1 || states[0] != 4 {
		t.Fatalf("exit states = %v, want [4]", states)
	}
	tr := r.Witness(g.Main, exit, 4)
	if got := dataflow.EvalTrace(tr, 0, mockTr); got != 4 {
		t.Fatalf("witness %q replays to %d", tr, got)
	}
}

// TestCallAndSummary: main calls helper twice; the summary is reused and
// bind/ret atoms apply around the call.
func TestCallAndSummary(t *testing.T) {
	g := &Graph{}
	helper := straightMethod(g, "helper", inc(), inc())
	mainIdx := g.NewMethod("main")
	m := g.Methods[mainIdx]
	g.Main = mainIdx
	n0 := m.AddNode()
	n1 := m.AddNode()
	n2 := m.AddNode()
	m.Entry, m.Exit = n0, n2
	m.AddEdge(Edge{From: n0, To: n1, Call: &CallEdge{Callee: helper, Bind: []lang.Atom{dbl()}}})
	m.AddEdge(Edge{From: n1, To: n2, Call: &CallEdge{Callee: helper, Ret: []lang.Atom{dbl()}}})
	r := Solve(g, 1, mockTr)
	// 1 → bind dbl → 2 → helper(+2) → 4 → call 2 → 6 → ret dbl → 12 mod 10 = 2.
	states := r.States(mainIdx, n2)
	if len(states) != 1 || states[0] != 2 {
		t.Fatalf("exit states = %v, want [2]", states)
	}
	tr := r.Witness(mainIdx, n2, 2)
	if got := dataflow.EvalTrace(tr, 1, mockTr); got != 2 {
		t.Fatalf("witness %q replays to %d", tr, got)
	}
	// The spliced trace contains both helper bodies: four increments.
	incs := 0
	for _, a := range tr {
		if a == inc() {
			incs++
		}
	}
	if incs != 4 {
		t.Fatalf("witness %q has %d increments, want 4", tr, incs)
	}
}

// TestBranchingContexts: a callee invoked with two different entry facts
// gets two summaries.
func TestBranchingContexts(t *testing.T) {
	g := &Graph{}
	helper := straightMethod(g, "helper", inc())
	mainIdx := g.NewMethod("main")
	m := g.Methods[mainIdx]
	g.Main = mainIdx
	n0, nA, nB, n1, n2 := m.AddNode(), m.AddNode(), m.AddNode(), m.AddNode(), m.AddNode()
	m.Entry, m.Exit = n0, n2
	m.AddEdge(Edge{From: n0, To: nA, Atom: zero()}) // 0
	m.AddEdge(Edge{From: n0, To: nB, Atom: inc()})  // dI+1
	m.AddEdge(Edge{From: nA, To: n1})
	m.AddEdge(Edge{From: nB, To: n1})
	m.AddEdge(Edge{From: n1, To: n2, Call: &CallEdge{Callee: helper}})
	r := Solve(g, 3, mockTr)
	got := map[int]bool{}
	for _, d := range r.States(mainIdx, n2) {
		got[d] = true
	}
	if !got[1] || !got[5] || len(got) != 2 {
		t.Fatalf("exit states = %v, want {1, 5}", got)
	}
	for d := range got {
		tr := r.Witness(mainIdx, n2, d)
		if replay := dataflow.EvalTrace(tr, 3, mockTr); replay != d {
			t.Fatalf("witness %q replays to %d, want %d", tr, replay, d)
		}
	}
}

// TestRecursion: a method that either stops or increments and recurses.
// The summary fixpoint must produce every value from the entry fact up to
// the cap without diverging.
func TestRecursion(t *testing.T) {
	g := &Graph{}
	recIdx := g.NewMethod("rec")
	m := g.Methods[recIdx]
	n0, n1, n2 := m.AddNode(), m.AddNode(), m.AddNode()
	m.Entry, m.Exit = n2, n2 // set below properly
	m.Entry = n0
	m.Exit = n2
	// entry → (ε) exit  |  entry → inc → call rec → exit
	m.AddEdge(Edge{From: n0, To: n2})
	m.AddEdge(Edge{From: n0, To: n1, Atom: inc()})
	m.AddEdge(Edge{From: n1, To: n2, Call: &CallEdge{Callee: recIdx}})

	mainIdx := g.NewMethod("main")
	mm := g.Methods[mainIdx]
	g.Main = mainIdx
	a0, a1 := mm.AddNode(), mm.AddNode()
	mm.Entry, mm.Exit = a0, a1
	mm.AddEdge(Edge{From: a0, To: a1, Call: &CallEdge{Callee: recIdx}})

	r := Solve(g, 5, mockTr)
	got := map[int]bool{}
	for _, d := range r.States(mainIdx, a1) {
		got[d] = true
	}
	for want := 5; want <= 9; want++ {
		if !got[want] {
			t.Fatalf("exit states = %v, missing %d", got, want)
		}
	}
	if len(got) != 5 {
		t.Fatalf("exit states = %v, want exactly {5..9}", got)
	}
	// Witnesses through recursive splices must replay correctly.
	for d := range got {
		tr := r.Witness(mainIdx, a1, d)
		if replay := dataflow.EvalTrace(tr, 5, mockTr); replay != d {
			t.Fatalf("witness %q replays to %d, want %d", tr, replay, d)
		}
	}
}

// TestWitnessPanicsOnUnreached mirrors the intraprocedural solver contract.
func TestWitnessPanicsOnUnreached(t *testing.T) {
	g := &Graph{}
	g.Main = straightMethod(g, "main", inc())
	r := Solve(g, 0, mockTr)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Witness(g.Main, g.Methods[g.Main].Exit, 42)
}
