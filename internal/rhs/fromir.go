package rhs

import (
	"fmt"

	"tracer/internal/ir"
	"tracer/internal/lang"
)

// Point is a program point in the supergraph: a node within a method.
type Point struct {
	Method int
	Node   int
}

// CallSite records a lowered call statement (one per source statement —
// unlike the inliner, the supergraph has exactly one copy of each method).
type CallSite struct {
	Stmt   *ir.CallStmt
	Method *ir.Method
	At     Point // immediately before the Invoke event
	Recv   string
}

// FieldAccess records a lowered field load or store.
type FieldAccess struct {
	Stmt   ir.Stmt
	Method *ir.Method
	At     Point
	Base   string
}

// ExplicitQuery records a lowered query statement.
type ExplicitQuery struct {
	Name   string
	Kind   ir.QueryKind
	Var    string
	States []string
	At     Point
	Method *ir.Method
}

// Program is a whole program lowered onto a supergraph.
type Program struct {
	G        *Graph
	IR       *ir.Program
	Calls    []CallSite
	Accesses []FieldAccess
	Queries  []ExplicitQuery

	methodIdx map[*ir.Method]int
}

// MethodIndex returns the supergraph index of a lowered method, or -1.
func (p *Program) MethodIndex(m *ir.Method) int {
	if i, ok := p.methodIdx[m]; ok {
		return i
	}
	return -1
}

// reachability abstracts "which methods to lower"; the pointsto package's
// Result provides both this and call resolution.
type Oracle interface {
	ir.Resolver
	Reachable(m *ir.Method) bool
}

// FromIR lowers every reachable non-native method onto its own graph, with
// call edges for resolved targets. Unlike ir.Lower, recursion is allowed:
// the tabulation solver computes summaries as fixpoints.
func FromIR(prog *ir.Program, res Oracle) (*Program, error) {
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("rhs: program has no Main.main entry method")
	}
	p := &Program{G: &Graph{}, IR: prog, methodIdx: map[*ir.Method]int{}}
	for _, m := range prog.Methods() {
		if m.Native || !res.Reachable(m) {
			continue
		}
		p.methodIdx[m] = p.G.NewMethod(m.QualName())
	}
	if _, ok := p.methodIdx[main]; !ok {
		return nil, fmt.Errorf("rhs: entry method not reachable")
	}
	p.G.Main = p.methodIdx[main]
	for m, idx := range p.methodIdx {
		if err := p.lowerMethod(m, idx, res); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (p *Program) lowerMethod(m *ir.Method, idx int, res ir.Resolver) error {
	mg := p.G.Methods[idx]
	mg.Entry = mg.AddNode()
	cur := mg.Entry
	// Fresh frame: locals start null on every invocation (including
	// recursive ones).
	for _, v := range m.Locals {
		next := mg.AddNode()
		mg.AddEdge(Edge{From: cur, To: next, Atom: lang.MoveNull{V: ir.Qualify(m, v)}})
		cur = next
	}
	end, err := p.lowerBlock(m, idx, mg, m.Body, cur, res)
	if err != nil {
		return err
	}
	mg.Exit = end
	return nil
}

func (p *Program) lowerBlock(m *ir.Method, idx int, mg *Method, body []ir.Stmt, from int, res ir.Resolver) (int, error) {
	cur := from
	var err error
	for _, s := range body {
		cur, err = p.lowerStmt(m, idx, mg, s, cur, res)
		if err != nil {
			return 0, err
		}
	}
	return cur, nil
}

// atom appends an intra edge.
func (p *Program) atom(mg *Method, from int, a lang.Atom) int {
	to := mg.AddNode()
	mg.AddEdge(Edge{From: from, To: to, Atom: a})
	return to
}

func (p *Program) lowerStmt(m *ir.Method, idx int, mg *Method, s ir.Stmt, from int, res ir.Resolver) (int, error) {
	q := func(v string) string { return ir.Qualify(m, v) }
	switch s := s.(type) {
	case *ir.NewStmt:
		return p.atom(mg, from, lang.Alloc{V: q(s.Dst), H: s.Site}), nil
	case *ir.MoveStmt:
		return p.atom(mg, from, lang.Move{Dst: q(s.Dst), Src: q(s.Src)}), nil
	case *ir.NullStmt:
		return p.atom(mg, from, lang.MoveNull{V: q(s.Dst)}), nil
	case *ir.GlobalGet:
		return p.atom(mg, from, lang.GlobalRead{V: q(s.Dst), G: s.Global}), nil
	case *ir.GlobalPut:
		return p.atom(mg, from, lang.GlobalWrite{G: s.Global, V: q(s.Src)}), nil
	case *ir.LoadStmt:
		p.Accesses = append(p.Accesses, FieldAccess{Stmt: s, Method: m, At: Point{idx, from}, Base: q(s.Src)})
		return p.atom(mg, from, lang.Load{Dst: q(s.Dst), Src: q(s.Src), F: s.Field}), nil
	case *ir.StoreStmt:
		p.Accesses = append(p.Accesses, FieldAccess{Stmt: s, Method: m, At: Point{idx, from}, Base: q(s.Dst)})
		return p.atom(mg, from, lang.Store{Dst: q(s.Dst), F: s.Field, Src: q(s.Src)}), nil
	case *ir.IfStmt:
		thenEnd, err := p.lowerBlock(m, idx, mg, s.Then, from, res)
		if err != nil {
			return 0, err
		}
		elseEnd, err := p.lowerBlock(m, idx, mg, s.Else, from, res)
		if err != nil {
			return 0, err
		}
		join := mg.AddNode()
		mg.AddEdge(Edge{From: thenEnd, To: join})
		mg.AddEdge(Edge{From: elseEnd, To: join})
		return join, nil
	case *ir.LoopStmt:
		head := mg.AddNode()
		mg.AddEdge(Edge{From: from, To: head})
		bodyEnd, err := p.lowerBlock(m, idx, mg, s.Body, head, res)
		if err != nil {
			return 0, err
		}
		mg.AddEdge(Edge{From: bodyEnd, To: head})
		return head, nil
	case *ir.ReturnStmt:
		return from, nil
	case *ir.QueryStmt:
		p.Queries = append(p.Queries, ExplicitQuery{
			Name: s.Name, Kind: s.Kind, Var: q(s.Var), States: s.States,
			At: Point{idx, from}, Method: m,
		})
		return from, nil
	case *ir.CallStmt:
		return p.lowerCall(m, idx, mg, s, from, res)
	}
	return 0, fmt.Errorf("rhs: cannot lower statement %T", s)
}

func (p *Program) lowerCall(m *ir.Method, idx int, mg *Method, s *ir.CallStmt, from int, res ir.Resolver) (int, error) {
	recv := ir.Qualify(m, s.Recv)
	p.Calls = append(p.Calls, CallSite{Stmt: s, Method: m, At: Point{idx, from}, Recv: recv})
	cur := p.atom(mg, from, lang.Invoke{V: recv, M: s.Method})
	var bodied []*ir.Method
	for _, callee := range res.Targets(s) {
		if !callee.Native {
			if _, lowered := p.methodIdx[callee]; lowered {
				bodied = append(bodied, callee)
			}
		}
	}
	if len(bodied) == 0 {
		if s.Dst != "" {
			cur = p.atom(mg, cur, lang.MoveNull{V: ir.Qualify(m, s.Dst)})
		}
		return cur, nil
	}
	retSite := mg.AddNode()
	for _, callee := range bodied {
		ce := &CallEdge{Callee: p.methodIdx[callee]}
		ce.Bind = append(ce.Bind, lang.Move{Dst: ir.Qualify(callee, "this"), Src: recv})
		for i, param := range callee.Params {
			if i < len(s.Args) {
				ce.Bind = append(ce.Bind, lang.Move{Dst: ir.Qualify(callee, param), Src: ir.Qualify(m, s.Args[i])})
			} else {
				ce.Bind = append(ce.Bind, lang.MoveNull{V: ir.Qualify(callee, param)})
			}
		}
		if s.Dst != "" {
			if ret := returnVar(callee); ret != "" {
				ce.Ret = append(ce.Ret, lang.Move{Dst: ir.Qualify(m, s.Dst), Src: ir.Qualify(callee, ret)})
			} else {
				ce.Ret = append(ce.Ret, lang.MoveNull{V: ir.Qualify(m, s.Dst)})
			}
		}
		mg.AddEdge(Edge{From: cur, To: retSite, Call: ce})
	}
	return retSite, nil
}

func returnVar(m *ir.Method) string {
	if len(m.Body) == 0 {
		return ""
	}
	if ret, ok := m.Body[len(m.Body)-1].(*ir.ReturnStmt); ok {
		return ret.Src
	}
	return ""
}
