package rhs

import (
	"fmt"
	"time"

	"tracer/internal/budget"
	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/obs"
)

// peKey identifies a path edge ⟨dIn, n, d⟩ within method m: running the
// method body from its entry with fact dIn reaches node n with fact d.
type peKey[D comparable] struct {
	m   int
	dIn D
	n   int
	d   D
}

// originKind distinguishes how a path edge was first derived.
type originKind uint8

const (
	oRoot originKind = iota // entry path edge ⟨dIn, entry, dIn⟩
	oIntra
	oRet // return-site edge derived from a caller edge + callee summary
)

// origin records the first derivation of a path edge, for witnesses. The
// discovery order makes the provenance graph well-founded.
type origin[D comparable] struct {
	kind  originKind
	order int
	// oIntra, oRet: the predecessor path edge in the same method.
	prev peKey[D]
	// oIntra: the atom (nil for ε). oRet: unused.
	atom lang.Atom
	// oRet: the call edge taken and the callee-side summary instance.
	call      *CallEdge
	calleeDIn D
	calleeOut D
}

// ctxKey identifies a procedure-summary context (method, entry fact).
type ctxKey[D comparable] struct {
	m   int
	dIn D
}

// caller records a call awaiting (or consuming) a context's summaries.
type caller[D comparable] struct {
	pe   peKey[D] // caller path edge at the call node
	edge *Edge    // the call edge taken (From = pe.n)
}

// nodeKey addresses one node of one method in the node index.
type nodeKey struct {
	m, n int
}

// nodeFacts indexes the facts reaching one (method, node) pair. It is built
// incrementally during tabulation so that States/Has/Witness answer in time
// proportional to the answer instead of scanning the full path-edge map —
// the batch driver calls them once per query per CEGAR iteration.
type nodeFacts[D comparable] struct {
	// facts lists the distinct facts in discovery order.
	facts []D
	// first maps each fact to the earliest-discovered path edge carrying it;
	// discovery order is monotone in origin.order, so the first edge seen is
	// the minimum-order one, which Witness must pick.
	first map[D]peKey[D]
}

// summarySet holds one context's summary exit facts in discovery order: the
// tabulation iterates recorded summaries when a new call into the context
// arrives, and map-order iteration there would leak into discovery order —
// and through it into witness choice — making runs nondeterministic.
type summarySet[D comparable] struct {
	list []D
	has  map[D]bool
}

// Result is the tabulation fixpoint with provenance.
type Result[D comparable] struct {
	g  *Graph
	tr dataflow.Transfer[D]

	pe        map[peKey[D]]origin[D]
	index     map[nodeKey]*nodeFacts[D]
	summaries map[ctxKey[D]]*summarySet[D]
	incoming  map[ctxKey[D]][]caller[D]
	// firstIn is the first caller recorded for a context: the canonical,
	// well-founded witness parent.
	firstIn map[ctxKey[D]]caller[D]
	// Steps counts path-edge discoveries (the solver's cost measure).
	Steps int
	// MaxWorklist is the worklist's high-water mark over the run.
	MaxWorklist int
	order       int
	rootDIn     D
}

// Solve runs the tabulation from the main method's entry with fact dI.
func Solve[D comparable](g *Graph, dI D, tr dataflow.Transfer[D]) *Result[D] {
	return SolveObs(g, dI, tr, nil)
}

// SolveObs is Solve with an observability recorder: the run reports its
// wall time (timer "rhs.solve"), path-edge discoveries (counter
// "rhs.path_edges" — equal to Result.Steps), discovered procedure-summary
// contexts (counter "rhs.contexts"), and the worklist high-water mark
// (gauge "rhs.worklist_peak"). A nil recorder is Solve.
func SolveObs[D comparable](g *Graph, dI D, tr dataflow.Transfer[D], rec obs.Recorder) *Result[D] {
	return SolveBudget(g, dI, tr, rec, nil)
}

// SolveBudget is SolveObs under a cooperative budget: the tabulation
// worklist polls b once per dequeued path edge and stops early when the
// budget trips, returning the partial tabulation computed so far. Partial
// results under-approximate the reachable facts, so callers must check
// b.Tripped() before trusting a "no failing state found" scan. A nil budget
// never trips.
func SolveBudget[D comparable](g *Graph, dI D, tr dataflow.Transfer[D], rec obs.Recorder, b *budget.Budget) *Result[D] {
	r := &Result[D]{
		g:         g,
		tr:        tr,
		pe:        map[peKey[D]]origin[D]{},
		index:     map[nodeKey]*nodeFacts[D]{},
		summaries: map[ctxKey[D]]*summarySet[D]{},
		incoming:  map[ctxKey[D]][]caller[D]{},
		firstIn:   map[ctxKey[D]]caller[D]{},
		rootDIn:   dI,
	}
	recording := rec != nil && rec.Enabled()
	var start time.Time
	if recording {
		start = time.Now()
	}
	var work []peKey[D]
	propagate := func(k peKey[D], o origin[D]) {
		if _, seen := r.pe[k]; seen {
			return
		}
		o.order = r.order
		r.order++
		r.pe[k] = o
		nk := nodeKey{k.m, k.n}
		nf := r.index[nk]
		if nf == nil {
			nf = &nodeFacts[D]{first: map[D]peKey[D]{}}
			r.index[nk] = nf
		}
		if _, known := nf.first[k.d]; !known {
			nf.first[k.d] = k
			nf.facts = append(nf.facts, k.d)
		}
		r.Steps++
		work = append(work, k)
		if len(work) > r.MaxWorklist {
			r.MaxWorklist = len(work)
		}
	}
	main := g.Methods[g.Main]
	propagate(peKey[D]{g.Main, dI, main.Entry, dI}, origin[D]{kind: oRoot})

	apply := func(atoms []lang.Atom, d D) D {
		for _, a := range atoms {
			d = tr(a, d)
		}
		return d
	}

	for len(work) > 0 {
		if !b.Poll() {
			break
		}
		k := work[len(work)-1]
		work = work[:len(work)-1]
		m := g.Methods[k.m]
		for _, ei := range m.Out[k.n] {
			e := &m.Edges[ei]
			switch {
			case e.Call == nil:
				next := k.d
				if e.Atom != nil {
					next = tr(e.Atom, k.d)
				}
				propagate(peKey[D]{k.m, k.dIn, e.To, next},
					origin[D]{kind: oIntra, prev: k, atom: e.Atom})
			default:
				callee := e.Call.Callee
				dCall := apply(e.Call.Bind, k.d)
				ctx := ctxKey[D]{callee, dCall}
				c := caller[D]{pe: k, edge: e}
				if _, known := r.firstIn[ctx]; !known {
					r.firstIn[ctx] = c
				}
				r.incoming[ctx] = append(r.incoming[ctx], c)
				calleeEntry := g.Methods[callee].Entry
				propagate(peKey[D]{callee, dCall, calleeEntry, dCall}, origin[D]{kind: oRoot})
				if s := r.summaries[ctx]; s != nil {
					for _, dExit := range s.list {
						dRet := apply(e.Call.Ret, dExit)
						propagate(peKey[D]{k.m, k.dIn, e.To, dRet},
							origin[D]{kind: oRet, prev: k, call: e.Call, calleeDIn: dCall, calleeOut: dExit})
					}
				}
			}
		}
		if k.n == m.Exit {
			ctx := ctxKey[D]{k.m, k.dIn}
			s := r.summaries[ctx]
			if s == nil {
				s = &summarySet[D]{has: map[D]bool{}}
				r.summaries[ctx] = s
			}
			if !s.has[k.d] {
				s.has[k.d] = true
				s.list = append(s.list, k.d)
				for _, c := range r.incoming[ctx] {
					dRet := apply(c.edge.Call.Ret, k.d)
					propagate(peKey[D]{c.pe.m, c.pe.dIn, c.edge.To, dRet},
						origin[D]{kind: oRet, prev: c.pe, call: c.edge.Call, calleeDIn: k.dIn, calleeOut: k.d})
				}
			}
		}
	}
	if recording {
		rec.Timing("rhs.solve", time.Since(start))
		rec.Count("rhs.path_edges", int64(r.Steps))
		rec.Count("rhs.contexts", int64(len(r.summaries)))
		rec.Gauge("rhs.worklist_peak", int64(r.MaxWorklist))
	}
	return r
}

// States returns the facts reaching node n of method m, across all calling
// contexts, in discovery order.
func (r *Result[D]) States(m, n int) []D {
	nf := r.index[nodeKey{m, n}]
	if nf == nil {
		return nil
	}
	return append([]D(nil), nf.facts...)
}

// Has reports whether fact d reaches node n of method m in some context.
func (r *Result[D]) Has(m, n int, d D) bool {
	nf := r.index[nodeKey{m, n}]
	if nf == nil {
		return false
	}
	_, ok := nf.first[d]
	return ok
}

// Witness reconstructs a whole-program abstract counterexample trace from
// the main entry to node n of method m with fact d: the atoms of the
// caller chain with callee traces spliced at call sites — exactly the flat
// traces the backward meta-analysis consumes. The earliest-discovered path
// edge is chosen, making the result deterministic.
func (r *Result[D]) Witness(m, n int, d D) lang.Trace {
	nf := r.index[nodeKey{m, n}]
	if nf == nil {
		panic(fmt.Sprintf("rhs: no witness for fact %v at method %d node %d", d, m, n))
	}
	best, ok := nf.first[d]
	if !ok {
		panic(fmt.Sprintf("rhs: no witness for fact %v at method %d node %d", d, m, n))
	}
	return r.fullTrace(best)
}

// relTrace reconstructs the trace of a path edge relative to its method's
// entry.
func (r *Result[D]) relTrace(k peKey[D]) lang.Trace {
	var rev []lang.Atom // reversed segments appended atom by atom
	for {
		o, ok := r.pe[k]
		if !ok {
			panic("rhs: dangling path edge in provenance")
		}
		switch o.kind {
		case oRoot:
			reverse(rev)
			return rev
		case oIntra:
			if o.atom != nil {
				rev = append(rev, o.atom)
			}
			k = o.prev
		case oRet:
			// Splice: Bind ++ callee trace ++ Ret, reversed.
			for i := len(o.call.Ret) - 1; i >= 0; i-- {
				rev = append(rev, o.call.Ret[i])
			}
			calleeExit := r.g.Methods[o.call.Callee].Exit
			inner := r.relTrace(peKey[D]{o.call.Callee, o.calleeDIn, calleeExit, o.calleeOut})
			for i := len(inner) - 1; i >= 0; i-- {
				rev = append(rev, inner[i])
			}
			for i := len(o.call.Bind) - 1; i >= 0; i-- {
				rev = append(rev, o.call.Bind[i])
			}
			k = o.prev
		}
	}
}

// fullTrace extends a path edge's relative trace with the canonical caller
// chain back to the main entry.
func (r *Result[D]) fullTrace(k peKey[D]) lang.Trace {
	rel := r.relTrace(k)
	if k.m == r.g.Main && k.dIn == r.rootDIn {
		return rel // the root context needs no caller prefix
	}
	c, ok := r.firstIn[ctxKey[D]{k.m, k.dIn}]
	if !ok {
		panic("rhs: context without a caller")
	}
	prefix := r.fullTrace(c.pe)
	out := make(lang.Trace, 0, len(prefix)+len(c.edge.Call.Bind)+len(rel))
	out = append(out, prefix...)
	out = append(out, c.edge.Call.Bind...)
	out = append(out, rel...)
	return out
}

func reverse(a []lang.Atom) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
