package uset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDedupSort(t *testing.T) {
	s := New(3, 1, 2, 3, 1)
	want := []int{1, 2, 3}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestEmpty(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Has(0) {
		t.Fatal("zero Set should be empty")
	}
	if s.Key() != "" || s.String() != "{}" {
		t.Fatalf("empty key/string: %q %q", s.Key(), s.String())
	}
}

func TestAddRemove(t *testing.T) {
	s := New(1, 3)
	s2 := s.Add(2)
	if !s2.Has(2) || s2.Len() != 3 {
		t.Fatalf("Add: %v", s2)
	}
	if s.Len() != 2 {
		t.Fatalf("Add mutated receiver: %v", s)
	}
	if got := s2.Add(2); !got.Equal(s2) {
		t.Fatalf("Add existing changed set: %v", got)
	}
	s3 := s2.Remove(3)
	if s3.Has(3) || s3.Len() != 2 {
		t.Fatalf("Remove: %v", s3)
	}
	if got := s3.Remove(99); !got.Equal(s3) {
		t.Fatalf("Remove absent changed set: %v", got)
	}
	if got := New(7).Remove(7); !got.Empty() {
		t.Fatalf("Remove last: %v", got)
	}
}

func TestSetOpsAgainstMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a, b := randSet(rng), randSet(rng)
		ma, mb := toMap(a), toMap(b)
		checkSame(t, "union", a.Union(b), union(ma, mb))
		checkSame(t, "intersect", a.Intersect(b), intersect(ma, mb))
		checkSame(t, "diff", a.Diff(b), diff(ma, mb))
		if got, want := a.SubsetOf(b), subset(ma, mb); got != want {
			t.Fatalf("SubsetOf(%v,%v)=%v want %v", a, b, got, want)
		}
	}
}

func randSet(rng *rand.Rand) Set {
	n := rng.Intn(10)
	elems := make([]int, n)
	for i := range elems {
		elems[i] = rng.Intn(12)
	}
	return New(elems...)
}

func toMap(s Set) map[int]bool {
	m := make(map[int]bool)
	for _, e := range s.Elems() {
		m[e] = true
	}
	return m
}

func fromMap(m map[int]bool) []int {
	var out []int
	for e := range m {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

func union(a, b map[int]bool) []int {
	m := make(map[int]bool)
	for e := range a {
		m[e] = true
	}
	for e := range b {
		m[e] = true
	}
	return fromMap(m)
}

func intersect(a, b map[int]bool) []int {
	m := make(map[int]bool)
	for e := range a {
		if b[e] {
			m[e] = true
		}
	}
	return fromMap(m)
}

func diff(a, b map[int]bool) []int {
	m := make(map[int]bool)
	for e := range a {
		if !b[e] {
			m[e] = true
		}
	}
	return fromMap(m)
}

func subset(a, b map[int]bool) bool {
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

func checkSame(t *testing.T, op string, got Set, want []int) {
	t.Helper()
	g := got.Elems()
	if len(g) != len(want) {
		t.Fatalf("%s: got %v want %v", op, g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("%s: got %v want %v", op, g, want)
		}
	}
}

func TestKeyCanonical(t *testing.T) {
	if New(2, 1).Key() != New(1, 2, 2).Key() {
		t.Fatal("keys of equal sets differ")
	}
	if New(1, 2).Key() == New(1, 2, 3).Key() {
		t.Fatal("keys of different sets collide")
	}
	// {1,23} must not collide with {12,3}.
	if New(1, 23).Key() == New(12, 3).Key() {
		t.Fatal("separator failed to disambiguate")
	}
}

func TestUnionCommutesQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := fromBytes(xs)
		b := fromBytes(ys)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionIdempotentQuick(t *testing.T) {
	f := func(xs []uint8) bool {
		a := fromBytes(xs)
		return a.Union(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganDiffQuick(t *testing.T) {
	// a ∖ (a ∩ b) == a ∖ b
	f := func(xs, ys []uint8) bool {
		a := fromBytes(xs)
		b := fromBytes(ys)
		return a.Diff(a.Intersect(b)).Equal(a.Diff(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromBytes(bs []uint8) Set {
	elems := make([]int, len(bs))
	for i, b := range bs {
		elems[i] = int(b % 16)
	}
	return New(elems...)
}

func TestBits(t *testing.T) {
	b := BitsOf(0, 2, 5)
	if !b.Has(0) || !b.Has(2) || !b.Has(5) || b.Has(1) {
		t.Fatalf("membership wrong: %b", b)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	b2 := b.Add(1).Remove(5)
	want := []int{0, 1, 2}
	got := b2.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems %v want %v", got, want)
		}
	}
	if !Bits(0).Empty() || b.Empty() {
		t.Fatal("Empty wrong")
	}
	if b.Union(BitsOf(1)).Len() != 4 || b.Intersect(BitsOf(2, 7)).Len() != 1 {
		t.Fatal("union/intersect wrong")
	}
}

func TestWords(t *testing.T) {
	w := MakeWords(130)
	if len(w) != 3 {
		t.Fatalf("MakeWords(130) = %d words", len(w))
	}
	for _, i := range []uint32{0, 63, 64, 129} {
		if w.Has(i) {
			t.Fatalf("fresh Words has %d", i)
		}
		w.SetBit(i)
		if !w.Has(i) {
			t.Fatalf("SetBit(%d) lost", i)
		}
	}
	// Has is total: indices beyond the allocation are simply absent.
	if w.Has(1000) {
		t.Fatal("out-of-range Has must be false")
	}
	g := w.Grow(256)
	if len(g) != 4 {
		t.Fatalf("Grow(256) = %d words", len(g))
	}
	for _, i := range []uint32{0, 63, 64, 129} {
		if !g.Has(i) {
			t.Fatalf("Grow dropped bit %d", i)
		}
	}
	// Grow copies: mutating the grown row must not touch the original.
	g.SetBit(200)
	if w.Has(200) {
		t.Fatal("Grow aliased the original words")
	}
}

func TestWordsIntersects(t *testing.T) {
	a := MakeWords(128)
	b := MakeWords(64)
	if a.Intersects(b) {
		t.Fatal("empty rows intersect")
	}
	a.SetBit(70) // beyond b's length
	if a.Intersects(b) || b.Intersects(a) {
		t.Fatal("intersection must respect the shorter row")
	}
	b.SetBit(3)
	a.SetBit(3)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("shared bit not detected")
	}
}
