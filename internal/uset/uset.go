// Package uset provides small immutable sorted integer sets and fixed-width
// bitsets. They are the building blocks for abstract states throughout the
// analyses: type-state sets and must-alias sets in the type-state analysis,
// and site sets in the thread-escape analysis.
//
// Sets returned by this package share no mutable state with their inputs;
// every operation returns a fresh (or aliased-but-never-mutated) slice, so a
// Set can be used as a value in maps via its Key form or an intern table.
package uset

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an immutable sorted set of non-negative integers. The zero value is
// the empty set. Callers must not mutate the underlying slice.
type Set []int

// New builds a Set from the given elements, deduplicating and sorting.
func New(elems ...int) Set {
	if len(elems) == 0 {
		return nil
	}
	s := make([]int, len(elems))
	copy(s, elems)
	sort.Ints(s)
	out := s[:1]
	for _, e := range s[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return Set(out)
}

// Len reports the number of elements.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// Has reports whether x is a member.
func (s Set) Has(x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// Add returns s ∪ {x}.
func (s Set) Add(x int) Set {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	out := make([]int, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// Remove returns s ∖ {x}.
func (s Set) Remove(x int) Set {
	i := sort.SearchInts(s, x)
	if i >= len(s) || s[i] != x {
		return s
	}
	if len(s) == 1 {
		return nil
	}
	out := make([]int, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := make([]int, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns s ∖ t.
func (s Set) Diff(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(t) || s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	i, j := 0, 0
	for i < len(s) {
		if j >= len(t) {
			return false
		}
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Elems returns the elements in ascending order. The result must not be
// mutated.
func (s Set) Elems() []int { return s }

// Key returns a canonical string form usable as a map key.
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	return b.String()
}

// String renders the set as {e1,e2,...}.
func (s Set) String() string { return "{" + s.Key() + "}" }

// Bits is a bitset over a small universe (up to 64 elements). It is used for
// type-state sets, which are tiny (the paper's properties have 2–4 states).
type Bits uint64

// BitsOf builds a Bits from element indices. Indices must be < 64.
func BitsOf(elems ...int) Bits {
	var b Bits
	for _, e := range elems {
		b |= 1 << uint(e)
	}
	return b
}

// Has reports whether element i is present.
func (b Bits) Has(i int) bool { return b&(1<<uint(i)) != 0 }

// Add returns b ∪ {i}.
func (b Bits) Add(i int) Bits { return b | 1<<uint(i) }

// Remove returns b ∖ {i}.
func (b Bits) Remove(i int) Bits { return b &^ (1 << uint(i)) }

// Union returns b ∪ c.
func (b Bits) Union(c Bits) Bits { return b | c }

// Intersect returns b ∩ c.
func (b Bits) Intersect(c Bits) Bits { return b & c }

// Empty reports whether the bitset is empty.
func (b Bits) Empty() bool { return b == 0 }

// Len reports the number of set bits.
func (b Bits) Len() int {
	n := 0
	for x := b; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Elems returns the indices of set bits in ascending order.
func (b Bits) Elems() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Words is a bitset over an unbounded universe of dense uint32 IDs, stored as
// 64-bit words. Unlike Bits it grows with the universe; the formula package
// uses it for the per-literal theory-memo rows of a formula.Universe. A Words
// value published to concurrent readers must no longer be mutated — extend it
// with Grow (which copies) and publish the copy instead.
type Words []uint64

// MakeWords returns a zeroed bitset with capacity for n bits.
func MakeWords(n int) Words { return make(Words, (n+63)>>6) }

// Has reports whether bit i is set. Bits beyond the allocated words read as
// unset, so a short row is a safe under-approximation.
func (w Words) Has(i uint32) bool {
	wi := int(i >> 6)
	return wi < len(w) && w[wi]&(1<<(i&63)) != 0
}

// SetBit sets bit i. The receiver must have been allocated with room for i
// (see MakeWords/Grow); it is a builder-side operation, not for shared rows.
func (w Words) SetBit(i uint32) { w[i>>6] |= 1 << (i & 63) }

// ClearBit clears bit i; bits beyond the allocated words are already unset,
// so out-of-range indices are a no-op. A builder-side operation like SetBit.
func (w Words) ClearBit(i uint32) {
	if wi := int(i >> 6); wi < len(w) {
		w[wi] &^= 1 << (i & 63)
	}
}

// Grow returns a copy of w with capacity for at least n bits. The receiver is
// left untouched, so rows already visible to concurrent readers stay frozen.
func (w Words) Grow(n int) Words {
	out := MakeWords(n)
	copy(out, w)
	return out
}

// Intersects reports whether w and v share a set bit.
func (w Words) Intersects(v Words) bool {
	n := len(w)
	if len(v) < n {
		n = len(v)
	}
	for i := 0; i < n; i++ {
		if w[i]&v[i] != 0 {
			return true
		}
	}
	return false
}
