package meta

import (
	"tracer/internal/formula"
	"tracer/internal/obs"
)

// FlushUniverseObs records a universe's interning and theory-memo telemetry
// as the formula.* obs counters, consuming the deltas accumulated since the
// previous flush (the universe size is reported as a gauge). Client jobs and
// the driver's batch problems use it to implement core.ObsFlusher; the
// counters are scheduling-dependent under concurrency and are deliberately
// kept out of the deterministic event stream.
func FlushUniverseObs(rec obs.Recorder, u *formula.Universe) {
	if u == nil || rec == nil || !rec.Enabled() {
		return
	}
	s := u.TakeStats()
	rec.Gauge(obs.FormulaUniverseSize, int64(s.Size))
	rec.Count(obs.FormulaCubeProducts, s.CubeProducts)
	rec.Count(obs.FormulaSubsumptionChecks, s.SubsumptionChecks)
	rec.Count(obs.FormulaTheoryMemoHits, s.TheoryMemoHits)
	rec.Count(obs.FormulaTheoryMemoFills, s.TheoryMemoFills)
}
