package meta

import (
	"tracer/internal/formula"
	"tracer/internal/obs"
)

// FlushUniverseObs records a universe's interning and theory-memo telemetry
// as the formula.* obs counters, consuming the deltas accumulated since the
// previous flush (the universe size is reported as a gauge). Client jobs and
// the driver's batch problems use it to implement core.ObsFlusher; the
// counters are scheduling-dependent under concurrency and are deliberately
// kept out of the deterministic event stream.
func FlushUniverseObs(rec obs.Recorder, u *formula.Universe) {
	if u == nil || rec == nil || !rec.Enabled() {
		return
	}
	s := u.TakeStats()
	rec.Gauge(obs.FormulaUniverseSize, int64(s.Size))
	rec.Count(obs.FormulaCubeProducts, s.CubeProducts)
	rec.Count(obs.FormulaSubsumptionChecks, s.SubsumptionChecks)
	rec.Count(obs.FormulaSigFiltered, s.SigFiltered)
	rec.Count(obs.FormulaSigSkips, s.SigSkips)
	rec.Count(obs.FormulaTheoryMemoHits, s.TheoryMemoHits)
	rec.Count(obs.FormulaTheoryMemoFills, s.TheoryMemoFills)
}

// FlushWPObs records a WP cache's formula-memo telemetry as the
// meta.wp_formula_memo_* counters, consuming the deltas accumulated since
// the previous flush. Like FlushUniverseObs it is called by the jobs'
// core.ObsFlusher implementations.
func FlushWPObs(rec obs.Recorder, c *WPCache) {
	if c == nil || rec == nil || !rec.Enabled() {
		return
	}
	if h := c.fmHits.Swap(0); h != 0 {
		rec.Count(obs.MetaWPFormulaMemoHits, h)
	}
	if m := c.fmMisses.Swap(0); m != 0 {
		rec.Count(obs.MetaWPFormulaMemoMisses, m)
	}
}
