package meta

import (
	"tracer/internal/formula"
	"tracer/internal/lang"
)

// This file implements one of the paper's proposed extensions (§8):
// "devise a general recipe for synthesizing these [backward transfer]
// functions automatically from a given abstract domain and parametric
// analysis." Over explicit (finite, small) universes the recipe is exact:
// the weakest precondition of a primitive is the disjunction of
// characterizing formulas of every (p, d) whose successor satisfies it.
// The result is unusable at production scale (it enumerates P × D), but it
// is exact by construction, which makes it a reference oracle: analysis
// designers can check a hand-written [a]♭ against the synthesized one on a
// small universe before trusting it at scale — precisely how this
// repository's soundness tests found their bugs.

// Descriptor characterizes (p, d) pairs as conjunctions of literals.
type Descriptor[P any, D comparable] struct {
	// Describe returns a conjunction that holds at exactly (p, d) within
	// the given universes.
	Describe func(p P, d D) formula.Conj
	// Eval evaluates a literal at (p, d).
	Eval func(l formula.Lit, p P, d D) bool
}

// SynthesizeWP computes the exact weakest precondition of prim across atom
// a by brute-force preimage over the universes:
//
//	δ(wp) = {(p, d) | (p, [a]p(d)) ∈ δ(prim)}.
//
// The returned DNF is simplified with the universe's theory.
func SynthesizeWP[P any, D comparable](
	a lang.Atom,
	prim formula.Prim,
	transfer func(p P, d D) D,
	desc Descriptor[P, D],
	abstractions []P,
	states []D,
) formula.DNF {
	var out formula.DNF
	for _, p := range abstractions {
		for _, d := range states {
			post := transfer(p, d)
			if desc.Eval(formula.Lit{P: prim}, p, post) {
				out = append(out, desc.Describe(p, d))
			}
		}
	}
	return out.Simplify()
}

// CheckAgainstSynthesized verifies a hand-written weakest precondition
// against the synthesized oracle, returning the number of (p, d) points
// where they disagree. It subsumes CheckWP but reports against the exact
// reference rather than the transfer function directly.
func CheckAgainstSynthesized[P any, D comparable](
	a lang.Atom,
	prim formula.Prim,
	wp func(a lang.Atom, p formula.Prim) formula.Formula,
	transfer func(p P, d D) D,
	desc Descriptor[P, D],
	u *formula.Universe,
	abstractions []P,
	states []D,
) int {
	hand := formula.ToDNF(wp(a, prim), u)
	synth := SynthesizeWP(a, prim, transfer, desc, abstractions, states)
	bad := 0
	for _, p := range abstractions {
		for _, d := range states {
			ev := func(l formula.Lit) bool { return desc.Eval(l, p, d) }
			if hand.Eval(ev) != synth.Eval(ev) {
				bad++
			}
		}
	}
	return bad
}
