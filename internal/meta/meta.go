// Package meta implements the backward meta-analysis of §4 (Fig 7).
//
// Given an abstract counterexample trace t of the forward analysis run with
// abstraction p from initial state dI, the meta-analysis walks t backward,
// transforming a boolean formula over (abstraction, abstract-state) pairs.
// The formula is a sufficient condition for the forward analysis to fail:
// for every (p', d') in its denotation, instantiating the forward analysis
// with p' and running it from d' along the analyzed suffix fails to prove
// the query (Theorem 3). Each step applies the analysis-specific weakest
// precondition [a]♭ and then the under-approximation operator approx at the
// abstract state the forward analysis computed at that point.
package meta

import (
	"sync"
	"sync/atomic"

	"tracer/internal/budget"
	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
)

// Client bundles what an analysis must provide to run the meta-analysis.
// D is the forward analysis's abstract state type.
type Client[D comparable] struct {
	// WP returns the weakest precondition [a]♭ of a positive primitive π:
	// the set of (p, d) such that (p, [a]p(d)) ∈ δ(π). Negative literals are
	// handled generically: since [a]p is a total function, wp(¬π) = ¬wp(π).
	WP func(a lang.Atom, p formula.Prim) formula.Formula
	// U is the interned literal universe (wrapping the analysis's literal
	// theory) used for DNF conversion and subsumption. One universe is shared
	// per analysis instance — across CEGAR iterations and across batch
	// backward jobs; it is safe for concurrent use.
	U *formula.Universe
	// Eval evaluates a literal at (p, d) where p is the abstraction the
	// client was built for (captured in the closure).
	Eval func(l formula.Lit, d D) bool
	// K is the beam width for dropk; K ≤ 0 disables under-approximation.
	K int
	// Cache optionally shares memoized weakest preconditions across clients
	// (they depend only on the analysis, not on the abstraction p). Entries
	// are keyed by (atom, interned literal ID), so a shared cache must be
	// used with the same U it was filled through.
	Cache *WPCache
	// Budget, when non-nil, is polled during the backward walk (once per
	// trace atom and once per DNF cube expansion); when it trips, the walk
	// stops early and the remaining (earlier) trace points keep zero-value
	// formulas. Callers must check Budget.Tripped() before using the result,
	// since a truncated condition is not a sound failure condition.
	Budget *budget.Budget
}

// WPCache memoizes per-(atom, literal) weakest-precondition DNFs. It is
// safe to share across all Clients of one analysis instance, including
// concurrently: lookups take a read lock, and the batch solver's backward
// jobs fill it from multiple workers. Entries are immutable once stored
// (both goroutines of a racing fill compute the same value).
//
// The cache is two-level: the atom map is consulted once per wpDNF call
// (atoms are interface values, so the map lookup pays a typehash), and the
// per-atom level is a plain slice indexed by the dense interned literal ID —
// the per-literal lookups on the backward walk's hot path are a bounds check,
// not a hash.
//
// WPCache rows are deliberately NOT persisted by the warm-start store
// (internal/warm), even though they are immutable within a run: type-state
// WP consults the analysis instance's points-to results and site
// identities, and the interned literal IDs the rows are keyed by are
// assigned per-session, so a stored row would need its whole intern table
// and environment re-validated to be trusted. The store persists blocking
// clauses instead — a warm solve re-proves its verdict in at most one
// forward run and near-zero backward passes, leaving almost nothing for a
// persisted WP row to save.
type WPCache struct {
	mu sync.RWMutex
	m  map[lang.Atom]*atomWP

	// Formula-memo telemetry, flushed as the meta.wp_formula_memo_* obs
	// counters by FlushWPObs.
	fmHits, fmMisses atomic.Int64
}

// atomWP holds one atom's per-literal entries, indexed by interned ID. It is
// a grow-only two-level table: an atomically published directory of
// fixed-size blocks, each slot an atomic pointer to an immutable entry. A
// lookup is two pointer loads and a fill is a single atomic store into its
// slot — nothing is copied, so filling n literals costs O(n) total rather
// than the O(n²) a copy-on-write snapshot would pay. Only directory growth
// and block creation take the mutex, and both are rare.
type atomWP struct {
	mu     sync.Mutex // serializes directory growth
	blocks atomic.Pointer[[]*atomic.Pointer[wpBlock]]

	// idbm summarizes the per-literal entries for the unchanged fast path of
	// wpDNF, which needs only each literal's identity flag: known marks
	// literals whose entry has been computed, ident those whose wp is the
	// identity. One pointer load plus two bit tests replaces the three
	// dependent atomic loads (and entry copy) of a full get. Published
	// copy-on-write; fills are once per (atom, literal), so the copies are
	// rare.
	idbm atomic.Pointer[idBits]

	// Formula-level memo: wp applied to a whole DNF, keyed by the formula's
	// fingerprint. The backward walks of successive CEGAR iterations revisit
	// the same (atom, formula) pairs whenever counterexample traces share
	// structure, and a hit skips the entire per-cube substitution including
	// its And chain. Like the per-literal entries, results depend only on
	// the atom and the formula (never on the abstraction or the forward
	// state), so entries are valid forever.
	fmu     sync.RWMutex
	fm      map[uint64][]fmEntry
	fmCount int
}

// fmEntry is one memoized wpDNF result. For unchanged formulas out is nil
// and the caller returns its own input, avoiding a redundant retained ref.
type fmEntry struct {
	in        formula.DNF
	out       formula.DNF
	unchanged bool
}

// fmMaxEntries bounds one atom's formula memo; beyond it new results are
// simply not stored (the per-literal cache below still serves them).
const fmMaxEntries = 1 << 14

func (w *atomWP) getFM(key uint64, d formula.DNF) (formula.DNF, bool, bool) {
	w.fmu.RLock()
	defer w.fmu.RUnlock()
	for _, e := range w.fm[key] {
		if e.in.Equal(d) {
			return e.out, e.unchanged, true
		}
	}
	return nil, false, false
}

func (w *atomWP) putFM(key uint64, d, out formula.DNF, unchanged bool) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.fmCount >= fmMaxEntries {
		return
	}
	for _, e := range w.fm[key] {
		if e.in.Equal(d) {
			return // racing fill computed the same value
		}
	}
	if w.fm == nil {
		w.fm = map[uint64][]fmEntry{}
	}
	w.fm[key] = append(w.fm[key], fmEntry{in: d, out: out, unchanged: unchanged})
	w.fmCount++
}

const (
	wpBlockBits = 7
	wpBlockSize = 1 << wpBlockBits
)

// idBits is an immutable pair of bitmaps over interned literal IDs (see
// atomWP.idbm).
type idBits struct{ known, ident []uint64 }

// has reports whether literal lid's entry is known and, if so, whether it is
// the identity.
func (b *idBits) has(lid uint32) (known, ident bool) {
	w := int(lid >> 6)
	if b == nil || w >= len(b.known) {
		return false, false
	}
	bit := uint64(1) << (lid & 63)
	return b.known[w]&bit != 0, b.ident[w]&bit != 0
}

// mark publishes literal lid's identity flag into w.idbm.
func (w *atomWP) mark(lid uint32, identity bool) {
	for {
		old := w.idbm.Load()
		n := int(lid>>6) + 1
		if old != nil && len(old.known) > n {
			n = len(old.known)
		}
		nb := &idBits{known: make([]uint64, n), ident: make([]uint64, n)}
		if old != nil {
			copy(nb.known, old.known)
			copy(nb.ident, old.ident)
		}
		bit := uint64(1) << (lid & 63)
		nb.known[lid>>6] |= bit
		if identity {
			nb.ident[lid>>6] |= bit
		}
		if w.idbm.CompareAndSwap(old, nb) {
			return
		}
	}
}

type wpBlock [wpBlockSize]atomic.Pointer[wpEntry]

// NewWPCache returns an empty cache.
func NewWPCache() *WPCache { return &WPCache{m: map[lang.Atom]*atomWP{}} }

// atom returns a's per-literal cache level, creating it on first use.
func (c *WPCache) atom(a lang.Atom) *atomWP {
	c.mu.RLock()
	aw := c.m[a]
	c.mu.RUnlock()
	if aw != nil {
		return aw
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if aw = c.m[a]; aw == nil {
		aw = &atomWP{}
		c.m[a] = aw
	}
	return aw
}

func (w *atomWP) get(lid uint32) (wpEntry, bool) {
	bi := int(lid >> wpBlockBits)
	if bp := w.blocks.Load(); bp != nil && bi < len(*bp) {
		if b := (*bp)[bi].Load(); b != nil {
			if e := b[lid&(wpBlockSize-1)].Load(); e != nil {
				return *e, true
			}
		}
	}
	return wpEntry{}, false
}

func (w *atomWP) put(lid uint32, e wpEntry) {
	bi := int(lid >> wpBlockBits)
	for {
		bp := w.blocks.Load()
		if bp == nil || bi >= len(*bp) {
			w.growDir(bi + 1)
			continue
		}
		cell := (*bp)[bi]
		b := cell.Load()
		if b == nil {
			nb := new(wpBlock)
			if cell.CompareAndSwap(nil, nb) {
				b = nb
			} else {
				b = cell.Load()
			}
		}
		// Racing fills of the same slot store equal values, so last-write-
		// wins is fine.
		b[lid&(wpBlockSize-1)].Store(&e)
		return
	}
}

// growDir extends the block directory to cover at least n blocks. The old
// directory's cells are carried over by pointer, so entries published through
// them stay visible.
func (w *atomWP) growDir(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.blocks.Load()
	if old != nil && len(*old) >= n {
		return
	}
	if old != nil && 2*len(*old) > n {
		n = 2 * len(*old)
	}
	nd := make([]*atomic.Pointer[wpBlock], n)
	var copied int
	if old != nil {
		copied = copy(nd, *old)
	}
	for i := copied; i < n; i++ {
		nd[i] = new(atomic.Pointer[wpBlock])
	}
	w.blocks.Store(&nd)
}

// wpLit applies the weakest precondition to a possibly negated literal.
func (c *Client[D]) wpLit(a lang.Atom, l formula.Lit) formula.Formula {
	f := c.WP(a, l.P)
	if l.Neg {
		return formula.Not(f)
	}
	return f
}

type wpEntry struct {
	identity bool // wp(l) = l: the common case, handled without DNF work
	d        formula.DNF
}

// wpLitDNF returns the cached DNF of [a]♭(l), where lid is the literal's
// interned ID in c.U and aw the atom's cache level. Cached DNFs are
// complete: ToDNF is not budgeted, so a tripped budget never stores a
// truncated entry.
func (c *Client[D]) wpLitDNF(aw *atomWP, a lang.Atom, lid uint32) wpEntry {
	if e, ok := aw.get(lid); ok {
		return e
	}
	l := c.U.Lit(lid)
	d := formula.ToDNF(c.wpLit(a, l), c.U)
	e := wpEntry{d: d}
	if len(d) == 1 && len(d[0].IDs()) == 1 && d[0].IDs()[0] == lid {
		e.identity = true
	}
	aw.put(lid, e)
	aw.mark(lid, e.identity)
	return e
}

// wpDNF applies [a]♭ to a whole DNF formula, returning DNF directly and a
// flag telling whether the formula is unchanged (the atom does not affect
// any literal — the overwhelmingly common case on long inlined traces,
// which lets the driver skip the approx step entirely). For each disjunct
// it splits literals into the unchanged majority (retained in one sorted
// pass) and the few literals the atom actually affects (whose preconditions
// are conjoined in).
func (c *Client[D]) wpDNF(a lang.Atom, d formula.DNF) (formula.DNF, bool) {
	if c.Cache == nil {
		c.Cache = NewWPCache()
	}
	aw := c.Cache.atom(a) // one interface-keyed lookup for the whole DNF
	// Fast path: most atoms on an inlined trace touch none of the formula's
	// literals. Literals repeat heavily across cubes, so test identity once
	// per distinct literal of the whole formula instead of once per
	// (cube, literal) pair; only a changed formula pays the per-cube pass.
	var sup [64]uint32
	ns := 0
	bounded := true
supScan:
	for _, conj := range d {
		for _, lid := range conj.IDs() {
			dup := false
			for _, s := range sup[:ns] {
				if s == lid {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if ns == len(sup) {
				bounded = false
				break supScan
			}
			sup[ns] = lid
			ns++
		}
	}
	if bounded {
		unchanged := true
		bm := aw.idbm.Load()
		for _, lid := range sup[:ns] {
			if known, ident := bm.has(lid); known {
				if !ident {
					unchanged = false
					break
				}
				continue
			}
			if !c.wpLitDNF(aw, a, lid).identity {
				unchanged = false
				break
			}
		}
		if unchanged {
			return d, true
		}
	}
	// The formula changes (or is too wide for the scan above): consult the
	// per-atom formula memo before paying for the per-cube substitution.
	// Unchanged formulas are answered above and stay out of the memo, so it
	// holds only the expensive cases.
	key := d.Fingerprint()
	if mout, munchanged, ok := aw.getFM(key, d); ok {
		c.Cache.fmHits.Add(1)
		if munchanged {
			return d, true
		}
		return mout, false
	}
	c.Cache.fmMisses.Add(1)
	var out formula.DNF
	var seen formula.ConjSet
	allIdentity := true
	var subs []formula.DNF
	var identity []bool // only allocated for cubes wider than the bitmask
	for ci, conj := range d {
		ids := conj.IDs()
		subs = subs[:0]
		// Cubes virtually never exceed 64 literals, so the per-literal
		// identity flags live in a word; the slice is a cold fallback.
		var idBits uint64
		wide := len(ids) > 64
		if wide {
			if cap(identity) < len(ids) {
				identity = make([]bool, len(ids))
			} else {
				identity = identity[:len(ids)]
				clear(identity)
			}
		}
		allID := true
		for i, lid := range ids {
			e := c.wpLitDNF(aw, a, lid)
			if e.identity {
				if wide {
					identity[i] = true
				} else {
					idBits |= 1 << uint(i)
				}
			} else {
				allID = false
				subs = append(subs, e.d)
			}
		}
		if allID && allIdentity {
			// Still on the unchanged fast path: defer any copying.
			continue
		}
		if allIdentity {
			// First changed disjunct: materialize the prefix.
			allIdentity = false
			out = append(make(formula.DNF, 0, len(d)), d[:ci]...)
			for _, pc := range d[:ci] {
				seen.Add(pc)
			}
		}
		keep := func(i int) bool { return idBits&(1<<uint(i)) != 0 }
		if wide {
			keep = func(i int) bool { return identity[i] }
		}
		// AndChain carries the accumulator's And filter state across the
		// fold, instead of re-deriving it once per substituted literal.
		acc := formula.DNF{conj.Retain(keep)}.AndChain(subs, c.Budget.Poll)
		for _, nc := range acc {
			if seen.Add(nc) {
				out = append(out, nc)
			}
		}
	}
	if allIdentity {
		aw.putFM(key, d, nil, true)
		return d, true
	}
	// Simplify here rather than in the walk's approx step: the memo then
	// serves already-simplified formulas, so a hit skips the subsumption
	// pass along with everything else (the walk keeps only the beam
	// truncation, which depends on the forward state and abstraction).
	out = out.Simplify()
	// A budget trip mid-chain truncates the conjunction; the partial result
	// is fine to return (the walk is being abandoned) but must never be
	// memoized as the true value.
	if !c.Budget.Tripped() {
		aw.putFM(key, d, out, false)
	}
	return out, false
}

// approxAt runs the approx operator relative to the abstract state d that
// the forward analysis computed at the current point.
func (c *Client[D]) approxAt(f formula.DNF, d D) formula.DNF {
	holds := func(conj formula.Conj) bool {
		return conj.Eval(func(l formula.Lit) bool { return c.Eval(l, d) })
	}
	return formula.ApproxDNF(f, c.K, holds)
}

// dropAt is approxAt minus the simplification: the beam truncation (dropk)
// for formulas wpDNF already returns simplified. Composing wpDNF's Simplify
// with dropAt yields exactly approxAt's dropk ∘ simplify.
func (c *Client[D]) dropAt(f formula.DNF, d D) formula.DNF {
	if c.K <= 0 || len(f) <= c.K {
		return f
	}
	holds := func(conj formula.Conj) bool {
		return conj.Eval(func(l formula.Lit) bool { return c.Eval(l, d) })
	}
	return f.DropK(c.K, holds)
}

// Run computes B[t](p, dI, not(q)): the sufficient condition for failure at
// the start of trace t. states must be the pre-state sequence returned by
// dataflow.StatesAlong(t, dI, tr) — states[i] is the forward state before
// atom t[i], and states[len(t)] the failing final state. post is not(q).
func Run[D comparable](c *Client[D], t lang.Trace, states []D, post formula.Formula) formula.DNF {
	ann := RunAnnotated(c, t, states, post)
	return ann[0]
}

// RunAnnotated is Run but returns the formula at every point of the trace:
// result[i] is the condition before atom t[i] (so result[0] is B[t]'s value
// and result[len(t)] the approximated not(q)). These per-point formulas are
// the ψ annotations of Figs 1 and 6.
func RunAnnotated[D comparable](c *Client[D], t lang.Trace, states []D, post formula.Formula) []formula.DNF {
	if len(states) != len(t)+1 {
		panic("meta: states must have length len(t)+1")
	}
	out := make([]formula.DNF, len(t)+1)
	cur := c.approxAt(formula.ToDNF(post, c.U), states[len(t)])
	out[len(t)] = cur
	for i := len(t) - 1; i >= 0; i-- {
		if !c.Budget.Poll() {
			break
		}
		pre, unchanged := c.wpDNF(t[i], cur)
		if !unchanged {
			// approx is idempotent, so unchanged formulas (already
			// simplified and within the beam width) skip it; changed ones
			// come back simplified from wpDNF and need only the beam cut.
			pre = c.dropAt(pre, states[i])
		}
		cur = pre
		out[i] = cur
	}
	return out
}

// CheckWP verifies requirement (2) of §4 for a single atom over explicit
// universes: δ([a]♭(π)) must equal {(p, d) | (p, [a]p(d)) ∈ δ(π)}. It
// returns the offending (p, d) pairs (as indices into the given slices)
// where the two sides disagree. transfer(p, d) must implement [a]p.
// It is used by the analyses' soundness tests.
func CheckWP[P any, D comparable](
	a lang.Atom,
	prim formula.Prim,
	wp func(a lang.Atom, p formula.Prim) formula.Formula,
	u *formula.Universe,
	abstractions []P,
	states []D,
	transfer func(p P, d D) D,
	eval func(l formula.Lit, p P, d D) bool,
) (bad [][2]int) {
	f := wp(a, prim)
	pre := formula.ToDNF(f, u)
	for pi, p := range abstractions {
		for di, d := range states {
			lhs := pre.Eval(func(l formula.Lit) bool { return eval(l, p, d) })
			post := transfer(p, d)
			rhs := eval(formula.Lit{P: prim}, p, post)
			if lhs != rhs {
				bad = append(bad, [2]int{pi, di})
			}
		}
	}
	return bad
}

// CheckSoundness verifies both clauses of Theorem 3 on a concrete trace for
// the client's abstraction p (captured in c.Eval) against explicit universes
// of alternative abstractions and states:
//
//  1. if (p, Fp[t](dI)) ∈ δ(f) then (p, dI) ∈ δ(B[t](p, dI, f));
//  2. every (p0, d0) ∈ δ(B[t](p, dI, f)) satisfies (p0, Fp0[t](d0)) ∈ δ(f).
//
// evalFor(p0) must evaluate literals under abstraction p0; transferFor(p0)
// must be the forward transfer instantiated at p0. It returns a descriptive
// violation count of each clause.
func CheckSoundness[P any, D comparable](
	c *Client[D],
	t lang.Trace,
	dI D,
	post formula.Formula,
	selfHolds bool, // whether (p, Fp[t](dI)) ∈ δ(post), i.e. the run failed
	abstractions []P,
	states []D,
	transferFor func(p P) dataflow.Transfer[D],
	evalFor func(p P) func(l formula.Lit, d D) bool,
	selfTransfer dataflow.Transfer[D],
) (clause1Violations, clause2Violations int) {
	pre := dataflow.StatesAlong(t, dI, selfTransfer)
	f := Run(c, t, pre, post)
	if selfHolds {
		if !f.Eval(func(l formula.Lit) bool { return c.Eval(l, dI) }) {
			clause1Violations++
		}
	}
	for _, p0 := range abstractions {
		ev := evalFor(p0)
		tr := transferFor(p0)
		for _, d0 := range states {
			if !f.Eval(func(l formula.Lit) bool { return ev(l, d0) }) {
				continue
			}
			final := dataflow.EvalTrace(t, d0, tr)
			if !post.Eval(func(l formula.Lit) bool { return ev(l, final) }) {
				clause2Violations++
			}
		}
	}
	return clause1Violations, clause2Violations
}
