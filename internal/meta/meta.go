// Package meta implements the backward meta-analysis of §4 (Fig 7).
//
// Given an abstract counterexample trace t of the forward analysis run with
// abstraction p from initial state dI, the meta-analysis walks t backward,
// transforming a boolean formula over (abstraction, abstract-state) pairs.
// The formula is a sufficient condition for the forward analysis to fail:
// for every (p', d') in its denotation, instantiating the forward analysis
// with p' and running it from d' along the analyzed suffix fails to prove
// the query (Theorem 3). Each step applies the analysis-specific weakest
// precondition [a]♭ and then the under-approximation operator approx at the
// abstract state the forward analysis computed at that point.
package meta

import (
	"sync"

	"tracer/internal/budget"
	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
)

// Client bundles what an analysis must provide to run the meta-analysis.
// D is the forward analysis's abstract state type.
type Client[D comparable] struct {
	// WP returns the weakest precondition [a]♭ of a positive primitive π:
	// the set of (p, d) such that (p, [a]p(d)) ∈ δ(π). Negative literals are
	// handled generically: since [a]p is a total function, wp(¬π) = ¬wp(π).
	WP func(a lang.Atom, p formula.Prim) formula.Formula
	// U is the interned literal universe (wrapping the analysis's literal
	// theory) used for DNF conversion and subsumption. One universe is shared
	// per analysis instance — across CEGAR iterations and across batch
	// backward jobs; it is safe for concurrent use.
	U *formula.Universe
	// Eval evaluates a literal at (p, d) where p is the abstraction the
	// client was built for (captured in the closure).
	Eval func(l formula.Lit, d D) bool
	// K is the beam width for dropk; K ≤ 0 disables under-approximation.
	K int
	// Cache optionally shares memoized weakest preconditions across clients
	// (they depend only on the analysis, not on the abstraction p). Entries
	// are keyed by (atom, interned literal ID), so a shared cache must be
	// used with the same U it was filled through.
	Cache *WPCache
	// Budget, when non-nil, is polled during the backward walk (once per
	// trace atom and once per DNF cube expansion); when it trips, the walk
	// stops early and the remaining (earlier) trace points keep zero-value
	// formulas. Callers must check Budget.Tripped() before using the result,
	// since a truncated condition is not a sound failure condition.
	Budget *budget.Budget
}

// WPCache memoizes per-(atom, literal) weakest-precondition DNFs. It is
// safe to share across all Clients of one analysis instance, including
// concurrently: lookups take a read lock, and the batch solver's backward
// jobs fill it from multiple workers. Entries are immutable once stored
// (both goroutines of a racing fill compute the same value).
type WPCache struct {
	mu sync.RWMutex
	m  map[wpKey]wpEntry
}

// NewWPCache returns an empty cache.
func NewWPCache() *WPCache { return &WPCache{m: map[wpKey]wpEntry{}} }

func (c *WPCache) get(k wpKey) (wpEntry, bool) {
	c.mu.RLock()
	e, ok := c.m[k]
	c.mu.RUnlock()
	return e, ok
}

func (c *WPCache) put(k wpKey, e wpEntry) {
	c.mu.Lock()
	c.m[k] = e
	c.mu.Unlock()
}

// wpLit applies the weakest precondition to a possibly negated literal.
func (c *Client[D]) wpLit(a lang.Atom, l formula.Lit) formula.Formula {
	f := c.WP(a, l.P)
	if l.Neg {
		return formula.Not(f)
	}
	return f
}

// wpKey memoizes per-(atom, interned literal) weakest preconditions. Atoms
// are small comparable values and literal IDs are dense ints, and a trace
// mentions the same atom at every iteration of the CEGAR loop, so the cache
// hit rate is high.
type wpKey struct {
	a   lang.Atom
	lid uint32
}

type wpEntry struct {
	identity bool // wp(l) = l: the common case, handled without DNF work
	d        formula.DNF
}

// wpLitDNF returns the cached DNF of [a]♭(l), where lid is the literal's
// interned ID in c.U. Cached DNFs are complete: ToDNF is not budgeted, so a
// tripped budget never stores a truncated entry.
func (c *Client[D]) wpLitDNF(a lang.Atom, lid uint32) wpEntry {
	if c.Cache == nil {
		c.Cache = NewWPCache()
	}
	k := wpKey{a, lid}
	if e, ok := c.Cache.get(k); ok {
		return e
	}
	l := c.U.Lit(lid)
	d := formula.ToDNF(c.wpLit(a, l), c.U)
	e := wpEntry{d: d}
	if len(d) == 1 && len(d[0].IDs()) == 1 && d[0].IDs()[0] == lid {
		e.identity = true
	}
	c.Cache.put(k, e)
	return e
}

// wpDNF applies [a]♭ to a whole DNF formula, returning DNF directly and a
// flag telling whether the formula is unchanged (the atom does not affect
// any literal — the overwhelmingly common case on long inlined traces,
// which lets the driver skip the approx step entirely). For each disjunct
// it splits literals into the unchanged majority (retained in one sorted
// pass) and the few literals the atom actually affects (whose preconditions
// are conjoined in).
func (c *Client[D]) wpDNF(a lang.Atom, d formula.DNF) (formula.DNF, bool) {
	var out formula.DNF
	var seen formula.ConjSet
	allIdentity := true
	for ci, conj := range d {
		ids := conj.IDs()
		var subs []formula.DNF
		identity := make([]bool, len(ids))
		allID := true
		for i, lid := range ids {
			e := c.wpLitDNF(a, lid)
			if e.identity {
				identity[i] = true
			} else {
				allID = false
				subs = append(subs, e.d)
			}
		}
		if allID && allIdentity {
			// Still on the unchanged fast path: defer any copying.
			continue
		}
		if allIdentity {
			// First changed disjunct: materialize the prefix.
			allIdentity = false
			out = append(out, d[:ci]...)
			for _, pc := range d[:ci] {
				seen.Add(pc)
			}
		}
		acc := formula.DNF{conj.Retain(func(i int) bool { return identity[i] })}
		for _, s := range subs {
			if !c.Budget.Poll() {
				break
			}
			acc = acc.And(s)
			if acc.IsFalse() {
				break
			}
		}
		for _, nc := range acc {
			if seen.Add(nc) {
				out = append(out, nc)
			}
		}
	}
	if allIdentity {
		return d, true
	}
	return out, false
}

// approxAt runs the approx operator relative to the abstract state d that
// the forward analysis computed at the current point.
func (c *Client[D]) approxAt(f formula.DNF, d D) formula.DNF {
	holds := func(conj formula.Conj) bool {
		return conj.Eval(func(l formula.Lit) bool { return c.Eval(l, d) })
	}
	return formula.ApproxDNF(f, c.K, holds)
}

// Run computes B[t](p, dI, not(q)): the sufficient condition for failure at
// the start of trace t. states must be the pre-state sequence returned by
// dataflow.StatesAlong(t, dI, tr) — states[i] is the forward state before
// atom t[i], and states[len(t)] the failing final state. post is not(q).
func Run[D comparable](c *Client[D], t lang.Trace, states []D, post formula.Formula) formula.DNF {
	ann := RunAnnotated(c, t, states, post)
	return ann[0]
}

// RunAnnotated is Run but returns the formula at every point of the trace:
// result[i] is the condition before atom t[i] (so result[0] is B[t]'s value
// and result[len(t)] the approximated not(q)). These per-point formulas are
// the ψ annotations of Figs 1 and 6.
func RunAnnotated[D comparable](c *Client[D], t lang.Trace, states []D, post formula.Formula) []formula.DNF {
	if len(states) != len(t)+1 {
		panic("meta: states must have length len(t)+1")
	}
	out := make([]formula.DNF, len(t)+1)
	cur := c.approxAt(formula.ToDNF(post, c.U), states[len(t)])
	out[len(t)] = cur
	for i := len(t) - 1; i >= 0; i-- {
		if !c.Budget.Poll() {
			break
		}
		pre, unchanged := c.wpDNF(t[i], cur)
		if !unchanged {
			// approx is idempotent, so unchanged formulas (already
			// simplified and within the beam width) skip it.
			pre = c.approxAt(pre, states[i])
		}
		cur = pre
		out[i] = cur
	}
	return out
}

// CheckWP verifies requirement (2) of §4 for a single atom over explicit
// universes: δ([a]♭(π)) must equal {(p, d) | (p, [a]p(d)) ∈ δ(π)}. It
// returns the offending (p, d) pairs (as indices into the given slices)
// where the two sides disagree. transfer(p, d) must implement [a]p.
// It is used by the analyses' soundness tests.
func CheckWP[P any, D comparable](
	a lang.Atom,
	prim formula.Prim,
	wp func(a lang.Atom, p formula.Prim) formula.Formula,
	u *formula.Universe,
	abstractions []P,
	states []D,
	transfer func(p P, d D) D,
	eval func(l formula.Lit, p P, d D) bool,
) (bad [][2]int) {
	f := wp(a, prim)
	pre := formula.ToDNF(f, u)
	for pi, p := range abstractions {
		for di, d := range states {
			lhs := pre.Eval(func(l formula.Lit) bool { return eval(l, p, d) })
			post := transfer(p, d)
			rhs := eval(formula.Lit{P: prim}, p, post)
			if lhs != rhs {
				bad = append(bad, [2]int{pi, di})
			}
		}
	}
	return bad
}

// CheckSoundness verifies both clauses of Theorem 3 on a concrete trace for
// the client's abstraction p (captured in c.Eval) against explicit universes
// of alternative abstractions and states:
//
//  1. if (p, Fp[t](dI)) ∈ δ(f) then (p, dI) ∈ δ(B[t](p, dI, f));
//  2. every (p0, d0) ∈ δ(B[t](p, dI, f)) satisfies (p0, Fp0[t](d0)) ∈ δ(f).
//
// evalFor(p0) must evaluate literals under abstraction p0; transferFor(p0)
// must be the forward transfer instantiated at p0. It returns a descriptive
// violation count of each clause.
func CheckSoundness[P any, D comparable](
	c *Client[D],
	t lang.Trace,
	dI D,
	post formula.Formula,
	selfHolds bool, // whether (p, Fp[t](dI)) ∈ δ(post), i.e. the run failed
	abstractions []P,
	states []D,
	transferFor func(p P) dataflow.Transfer[D],
	evalFor func(p P) func(l formula.Lit, d D) bool,
	selfTransfer dataflow.Transfer[D],
) (clause1Violations, clause2Violations int) {
	pre := dataflow.StatesAlong(t, dI, selfTransfer)
	f := Run(c, t, pre, post)
	if selfHolds {
		if !f.Eval(func(l formula.Lit) bool { return c.Eval(l, dI) }) {
			clause1Violations++
		}
	}
	for _, p0 := range abstractions {
		ev := evalFor(p0)
		tr := transferFor(p0)
		for _, d0 := range states {
			if !f.Eval(func(l formula.Lit) bool { return ev(l, d0) }) {
				continue
			}
			final := dataflow.EvalTrace(t, d0, tr)
			if !post.Eval(func(l formula.Lit) bool { return ev(l, final) }) {
				clause2Violations++
			}
		}
	}
	return clause1Violations, clause2Violations
}
