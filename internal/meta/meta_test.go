package meta_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/obs"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// naiveBackward is a direct transcription of Fig 7 without the identity
// fast path, the WP cache, or DNF-level accumulation: the reference the
// optimized driver is checked against.
func naiveBackward(c *meta.Client[typestate.State], t lang.Trace, states []typestate.State, post formula.Formula) []formula.DNF {
	out := make([]formula.DNF, len(t)+1)
	approx := func(f formula.Formula, d typestate.State) formula.DNF {
		holds := func(conj formula.Conj) bool {
			return conj.Eval(func(l formula.Lit) bool { return c.Eval(l, d) })
		}
		return formula.Approx(f, c.U, c.K, holds)
	}
	cur := approx(post, states[len(t)])
	out[len(t)] = cur
	for i := len(t) - 1; i >= 0; i-- {
		var disjuncts []formula.Formula
		for _, conj := range cur {
			var lits []formula.Formula
			for _, l := range conj.Lits() {
				wp := c.WP(t[i], l.P)
				if l.Neg {
					wp = formula.Not(wp)
				}
				lits = append(lits, wp)
			}
			disjuncts = append(disjuncts, formula.And(lits...))
		}
		cur = approx(formula.Or(disjuncts...), states[i])
		out[i] = cur
	}
	return out
}

func testSetup() (*typestate.Analysis, []lang.Atom) {
	a := typestate.New(typestate.FileProperty(), "h", []string{"x", "y"})
	atoms := []lang.Atom{
		lang.Alloc{V: "x", H: "h"},
		lang.Alloc{V: "y", H: "g"},
		lang.Move{Dst: "y", Src: "x"},
		lang.Move{Dst: "x", Src: "y"},
		lang.MoveNull{V: "y"},
		lang.Invoke{V: "x", M: "open"},
		lang.Invoke{V: "y", M: "close"},
		lang.Store{Dst: "x", F: "f", Src: "y"},
	}
	return a, atoms
}

// TestOptimizedDriverMatchesNaive compares the production driver (with its
// identity fast path and WP caching) against the naive Fig 7 transcription,
// point by point, on random traces, semantically over all (p, d).
func TestOptimizedDriverMatchesNaive(t *testing.T) {
	a, atoms := testSetup()
	rng := rand.New(rand.NewSource(31))
	abstractions := a.AllAbstractions()
	states := a.AllStates()
	post := a.NotQ(typestate.Query{Want: uset.Bits(0).Add(0)})
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		tr := make(lang.Trace, n)
		for i := range tr {
			tr[i] = atoms[rng.Intn(len(atoms))]
		}
		p := abstractions[rng.Intn(len(abstractions))]
		for _, k := range []int{1, 2, 0} {
			client := &meta.Client[typestate.State]{
				WP:   a.WP,
				U:    formula.NewUniverse(typestate.Theory{}),
				Eval: func(l formula.Lit, d typestate.State) bool { return a.EvalLit(l, p, d) },
				K:    k,
			}
			pre := dataflow.StatesAlong(tr, a.Initial(), a.Transfer(p))
			got := meta.RunAnnotated(client, tr, pre, post)
			ref := naiveBackward(client, tr, pre, post)
			for i := range got {
				for _, p0 := range abstractions {
					for _, d0 := range states {
						ev := func(l formula.Lit) bool { return a.EvalLit(l, p0, d0) }
						if got[i].Eval(ev) != ref[i].Eval(ev) {
							t.Fatalf("k=%d trace %q point %d: optimized %s vs naive %s differ at p=%v d=%s",
								k, tr, i, got[i], ref[i], p0, a.Format(d0))
						}
					}
				}
			}
		}
	}
}

// TestRunAnnotatedLengths and the state-length contract.
func TestRunAnnotatedLengths(t *testing.T) {
	a, _ := testSetup()
	client := &meta.Client[typestate.State]{
		WP:   a.WP,
		U:    formula.NewUniverse(typestate.Theory{}),
		Eval: func(l formula.Lit, d typestate.State) bool { return a.EvalLit(l, nil, d) },
		K:    1,
	}
	tr := lang.Trace{lang.MoveNull{V: "x"}}
	states := dataflow.StatesAlong(tr, a.Initial(), a.Transfer(nil))
	post := a.NotQ(typestate.Query{Want: uset.Bits(0).Add(0)})
	ann := meta.RunAnnotated(client, tr, states, post)
	if len(ann) != 2 {
		t.Fatalf("annotations = %d, want 2", len(ann))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched states length")
		}
	}()
	meta.RunAnnotated(client, tr, states[:1], post)
}

// TestWPCacheShared: results are identical with and without a shared cache.
func TestWPCacheShared(t *testing.T) {
	a, atoms := testSetup()
	cache := meta.NewWPCache()
	u := formula.NewUniverse(typestate.Theory{})
	tr := lang.Trace{atoms[0], atoms[2], atoms[5], atoms[6]}
	post := a.NotQ(typestate.Query{Want: uset.Bits(0).Add(0)})
	states := dataflow.StatesAlong(tr, a.Initial(), a.Transfer(nil))
	mk := func(c *meta.WPCache) formula.DNF {
		client := &meta.Client[typestate.State]{
			WP:    a.WP,
			U:     u,
			Eval:  func(l formula.Lit, d typestate.State) bool { return a.EvalLit(l, nil, d) },
			K:     1,
			Cache: c,
		}
		return meta.Run(client, tr, states, post)
	}
	first := mk(cache)
	second := mk(cache) // warm cache
	fresh := mk(nil)
	if first.String() != second.String() || first.String() != fresh.String() {
		t.Fatalf("cache changed results: %s / %s / %s", first, second, fresh)
	}
}

// TestWPCacheConcurrent drives many goroutines through one shared Universe
// and WPCache — the batch driver's sharing pattern — and requires every
// concurrent run to produce the same canonical DNF as a sequential one.
// Run under -race this pins the concurrency contract of both structures.
func TestWPCacheConcurrent(t *testing.T) {
	a, atoms := testSetup()
	u := formula.NewUniverse(typestate.Theory{})
	cache := meta.NewWPCache()
	post := a.NotQ(typestate.Query{Want: uset.Bits(0).Add(0)})
	traces := make([]lang.Trace, 8)
	rng := rand.New(rand.NewSource(17))
	for i := range traces {
		tr := make(lang.Trace, 3+rng.Intn(5))
		for j := range tr {
			tr[j] = atoms[rng.Intn(len(atoms))]
		}
		traces[i] = tr
	}
	run := func(tr lang.Trace) string {
		client := &meta.Client[typestate.State]{
			WP:    a.WP,
			U:     u,
			Eval:  func(l formula.Lit, d typestate.State) bool { return a.EvalLit(l, nil, d) },
			K:     2,
			Cache: cache,
		}
		states := dataflow.StatesAlong(tr, a.Initial(), a.Transfer(nil))
		return meta.Run(client, tr, states, post).String()
	}
	want := make([]string, len(traces))
	for i, tr := range traces {
		want[i] = run(tr) // sequential reference (also warms the shared state)
	}
	const workers = 8
	errs := make(chan error, workers*len(traces))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, tr := range traces {
				if got := run(tr); got != want[i] {
					errs <- fmt.Errorf("trace %d: concurrent %s != sequential %s", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFlushUniverseObs: the flush reports every formula.* counter name —
// including the signature-filter pair — and consumes the deltas, so a second
// flush reports zero-valued deltas while the size gauge persists.
func TestFlushUniverseObs(t *testing.T) {
	u := formula.NewUniverse(typestate.Theory{})
	vars := []string{"a", "b", "c", "d"}
	var disjuncts []formula.Formula
	for i, x := range vars {
		c := formula.And(
			formula.L(typestate.PVar{X: x}),
			formula.L(typestate.PParam{X: vars[(i+1)%len(vars)]}),
		)
		disjuncts = append(disjuncts, c, formula.L(typestate.PVar{X: x}))
	}
	d := formula.ToDNF(formula.Or(disjuncts...), u)
	_ = d.And(d).Simplify()

	agg := obs.NewAgg()
	meta.FlushUniverseObs(agg, u)
	if agg.GaugeMax(obs.FormulaUniverseSize) == 0 {
		t.Fatal("flush did not report the universe size gauge")
	}
	if agg.Counter(obs.FormulaCubeProducts) == 0 {
		t.Fatal("flush did not report cube products")
	}
	if agg.Counter(obs.FormulaSigFiltered)+agg.Counter(obs.FormulaSubsumptionChecks) == 0 {
		t.Fatal("Simplify reported neither filtered pairs nor full checks")
	}
	// Deltas were consumed: a second flush adds nothing to the counters.
	before := agg.Counter(obs.FormulaCubeProducts)
	meta.FlushUniverseObs(agg, u)
	if got := agg.Counter(obs.FormulaCubeProducts); got != before {
		t.Fatalf("second flush re-reported consumed deltas: %d != %d", got, before)
	}
}
