// Package faultinject implements deterministic fault injection for chaos
// tests of the TRACER loop.
//
// An Injector is nil in production (every hook is a nil-check and return).
// Tests and cmd/tracer -chaos-seed wire one through core.Options.Inject;
// the solver then calls At at named hook points — just before the minimum
// search, a forward run, and a backward analysis — passing a deterministic
// key that identifies the exact occurrence (iteration number in the
// single-query loop; round plus group/abstraction/query in the batch
// scheduler). Because keys depend only on solver state, never on goroutine
// scheduling, the same injector fires the same faults for every worker
// count, which is what lets the chaos tests pin byte-identical degraded
// event streams across Workers 1/2/4.
//
// Faults come in three flavors: a panic (thrown as *Fault, exercising the
// scheduler's recover paths), a delay (perturbing goroutine interleaving to
// stress determinism), and a budget trip (exercising the cooperative
// cancellation paths). Rules are either explicit (PanicAt/DelayAt/TripAt)
// or derived from a seed: Seeded hashes (seed, site, key) so a fraction of
// hook points fire pseudo-randomly yet reproducibly.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"tracer/internal/budget"
)

// Site names a class of hook points in the solver.
type Site string

const (
	// SiteMinimum fires just before a minsat.MinimumBudget search.
	// Keys: "i<iter>" (core.Solve), "r<round>.g<group>" (SolveBatch).
	SiteMinimum Site = "minimum"
	// SiteForward fires just before a forward run.
	// Keys: "i<iter>" (core.Solve), "r<round>.<abstraction-key>" (SolveBatch).
	SiteForward Site = "forward"
	// SiteBackward fires just before a backward analysis.
	// Keys: "i<iter>" (core.Solve), "r<round>.q<query>" (SolveBatch).
	SiteBackward Site = "backward"

	// SiteServerRequest fires in the solver daemon's admission path, after a
	// request decodes cleanly and before it is enqueued. Keys: the
	// server-assigned request id ("r<seq>"). A panic here degrades only that
	// request (it resolves Failed); a trip resolves it Exhausted.
	SiteServerRequest Site = "server.request"
	// SiteServerBatch fires just before the daemon executes one coalesced
	// batch round. Keys: the batch id ("b<seq>"). A panic fails every
	// request of the round; a trip shrinks the round's budget to nothing so
	// its requests resolve Exhausted.
	SiteServerBatch Site = "server.batch"
	// SiteServerDrain fires once at the start of graceful drain. Key:
	// "drain". A panic here is recovered and drain proceeds — shutdown must
	// survive its own chaos.
	SiteServerDrain Site = "server.drain"
)

// Fault is the value thrown by an injected panic, so recover sites (and
// tests) can tell injected faults from genuine bugs.
type Fault struct {
	Site Site
	Key  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s %s", f.Site, f.Key)
}

type action uint8

const (
	actPanic action = iota + 1
	actDelay
	actTrip
)

func (a action) String() string {
	switch a {
	case actPanic:
		return "panic"
	case actDelay:
		return "delay"
	case actTrip:
		return "trip"
	}
	return "?"
}

type rule struct {
	act   action
	delay time.Duration
}

// Injector decides, at each hook point, whether to fire a fault. A nil
// *Injector is inert. Explicit rules take precedence over the seeded mode.
type Injector struct {
	seeded bool
	seed   uint64
	rate   uint64 // firing threshold out of 2^32

	mu    sync.Mutex
	rules map[string]rule
	fired []string
}

// New returns an injector with no rules; add them with PanicAt/DelayAt/TripAt.
func New() *Injector {
	return &Injector{rules: map[string]rule{}}
}

// Seeded returns an injector that fires pseudo-randomly at roughly
// rate·100% of hook points, deterministically in (seed, site, key).
// The action at a firing point (panic, trip, or a sub-millisecond delay)
// is likewise derived from the hash.
func Seeded(seed int64, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Injector{
		rules:  map[string]rule{},
		seeded: true,
		seed:   uint64(seed),
		rate:   uint64(rate * float64(math.MaxUint32)),
	}
}

func (in *Injector) add(site Site, key string, r rule) {
	in.mu.Lock()
	in.rules[string(site)+"\x00"+key] = r
	in.mu.Unlock()
}

// PanicAt makes the hook point (site, key) panic with a *Fault.
func (in *Injector) PanicAt(site Site, key string) { in.add(site, key, rule{act: actPanic}) }

// DelayAt makes the hook point (site, key) sleep for d.
func (in *Injector) DelayAt(site Site, key string, d time.Duration) {
	in.add(site, key, rule{act: actDelay, delay: d})
}

// TripAt makes the hook point (site, key) trip the solve's budget with
// cause budget.Injected.
func (in *Injector) TripAt(site Site, key string) { in.add(site, key, rule{act: actTrip}) }

// At is the hook the solver calls. It fires at most one fault: a panic
// (*Fault), a sleep, or b.Trip(budget.Injected). nil receivers return
// immediately; a trip on a nil budget is a no-op.
func (in *Injector) At(b *budget.Budget, site Site, key string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	r, ok := in.rules[string(site)+"\x00"+key]
	if !ok && in.seeded {
		r, ok = in.seededRule(site, key)
	}
	if ok {
		in.fired = append(in.fired, fmt.Sprintf("%s %s %s", r.act, site, key))
	}
	in.mu.Unlock()
	if !ok {
		return
	}
	switch r.act {
	case actDelay:
		time.Sleep(r.delay)
	case actTrip:
		b.Trip(budget.Injected)
	case actPanic:
		panic(&Fault{Site: site, Key: key})
	}
}

func (in *Injector) seededRule(site Site, key string) (rule, bool) {
	h := fnv.New64a()
	var buf [8]byte
	s := in.seed
	for i := range buf {
		buf[i] = byte(s >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(site))
	h.Write([]byte{0})
	h.Write([]byte(key))
	v := h.Sum64()
	if v&math.MaxUint32 >= in.rate {
		return rule{}, false
	}
	switch (v >> 32) % 3 {
	case 0:
		return rule{act: actPanic}, true
	case 1:
		return rule{act: actTrip}, true
	default:
		return rule{act: actDelay, delay: time.Duration(200+(v>>34)%800) * time.Microsecond}, true
	}
}

// Fired returns the fired faults as "action site key" strings, in firing
// order. The set of fired faults is deterministic for a given solve; the
// order is deterministic only under Workers <= 1 (parallel phases may
// reach their hooks in any order).
func (in *Injector) Fired() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.fired))
	copy(out, in.fired)
	return out
}
