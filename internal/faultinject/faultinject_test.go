package faultinject

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"tracer/internal/budget"
)

// TestNilInjector: a nil *Injector is inert at every hook.
func TestNilInjector(t *testing.T) {
	var in *Injector
	in.At(nil, SiteForward, "i1") // must not panic
	if in.Fired() != nil {
		t.Fatal("nil injector reports fired faults")
	}
}

// TestPanicAt: an explicit panic rule throws a *Fault identifying the hook.
func TestPanicAt(t *testing.T) {
	in := New()
	in.PanicAt(SiteBackward, "r0.q1")
	in.At(nil, SiteBackward, "r0.q2") // different key: no fault
	func() {
		defer func() {
			r := recover()
			f, ok := r.(*Fault)
			if !ok {
				t.Fatalf("recovered %v (%T), want *Fault", r, r)
			}
			if f.Site != SiteBackward || f.Key != "r0.q1" {
				t.Fatalf("Fault = %+v, want backward r0.q1", f)
			}
			if !strings.Contains(f.Error(), "backward r0.q1") {
				t.Fatalf("Error() = %q", f.Error())
			}
		}()
		in.At(nil, SiteBackward, "r0.q1")
		t.Fatal("PanicAt rule did not panic")
	}()
	if got := in.Fired(); !reflect.DeepEqual(got, []string{"panic backward r0.q1"}) {
		t.Fatalf("Fired = %v", got)
	}
}

// TestTripAt: a trip rule trips the budget with cause Injected, and is a
// no-op on a nil budget.
func TestTripAt(t *testing.T) {
	in := New()
	in.TripAt(SiteMinimum, "i3")
	in.At(nil, SiteMinimum, "i3") // nil budget: no crash
	b := budget.New(nil, time.Time{}, 0)
	in.At(b, SiteMinimum, "i3")
	if b.Cause() != budget.Injected {
		t.Fatalf("cause = %v, want injected", b.Cause())
	}
}

// TestDelayAt: a delay rule sleeps at least the configured duration.
func TestDelayAt(t *testing.T) {
	in := New()
	in.DelayAt(SiteForward, "i1", 5*time.Millisecond)
	start := time.Now()
	in.At(nil, SiteForward, "i1")
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay was %v, want >= 5ms", d)
	}
}

// TestSeededDeterminism: the same seed fires the same faults at the same
// hooks; a different seed gives a different firing set; rate 0 never fires.
func TestSeededDeterminism(t *testing.T) {
	hooks := []struct {
		site Site
		key  string
	}{}
	for _, site := range []Site{SiteMinimum, SiteForward, SiteBackward} {
		for _, key := range []string{"r0.g0", "r0.g1", "r1.g0", "r1.q2", "r2.0,3,", "i1", "i2"} {
			hooks = append(hooks, struct {
				site Site
				key  string
			}{site, key})
		}
	}
	sweep := func(seed int64, rate float64) []string {
		in := Seeded(seed, rate)
		for _, h := range hooks {
			func() {
				defer func() { recover() }() // swallow injected panics
				in.At(budget.New(nil, time.Time{}, 0), h.site, h.key)
			}()
		}
		return in.Fired()
	}
	a, b := sweep(42, 0.5), sweep(42, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed fired differently:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rate 0.5 over 21 hooks fired nothing; seeded hashing is broken")
	}
	if c := sweep(43, 0.5); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds fired identically; seed is not mixed into the hash")
	}
	if z := sweep(42, 0); len(z) != 0 {
		t.Fatalf("rate 0 fired %v", z)
	}
}

// TestExplicitOverridesSeeded: an explicit rule at a hook beats the seeded
// decision for that hook.
func TestExplicitOverridesSeeded(t *testing.T) {
	in := Seeded(7, 1) // every hook would fire something
	in.DelayAt(SiteForward, "i1", time.Microsecond)
	in.At(nil, SiteForward, "i1") // must not panic: explicit delay wins
	if got := in.Fired(); !reflect.DeepEqual(got, []string{"delay forward i1"}) {
		t.Fatalf("Fired = %v, want the explicit delay", got)
	}
}
