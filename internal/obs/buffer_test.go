package obs

import (
	"testing"
	"time"
)

// TestBufferReplayOrder: a Buffer forwards every record kind to the target
// sink in insertion order.
func TestBufferReplayOrder(t *testing.T) {
	b := NewBuffer()
	if !b.Enabled() {
		t.Fatal("buffer must report enabled")
	}
	b.Record(Event{Kind: IterStart, Iter: 1})
	b.Count("c", 2)
	b.Gauge("g", 7)
	b.Timing("t", 3*time.Millisecond)
	b.Record(Event{Kind: ForwardDone, Iter: 1, Steps: 5})
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}

	cap := NewCapture()
	b.ReplayTo(cap)
	got := cap.Events()
	want := []Event{
		{Kind: IterStart, Iter: 1},
		{Kind: CounterKind, Name: "c", Value: 2},
		{Kind: GaugeKind, Name: "g", Value: 7},
		{Kind: TimingKind, Name: "t", WallNS: int64(3 * time.Millisecond)},
		{Kind: ForwardDone, Iter: 1, Steps: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Replay is repeatable: buffers are snapshots, not queues.
	cap2 := NewCapture()
	b.ReplayTo(cap2)
	if len(cap2.Events()) != len(want) {
		t.Fatalf("second replay produced %d records, want %d", len(cap2.Events()), len(want))
	}
}
