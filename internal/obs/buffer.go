package obs

import "time"

// Counter names recorded by core.SolveBatch's forward-run memo (see the
// "Concurrency model" section of ARCHITECTURE.md). A hit means a group's
// chosen abstraction was served by an already-available forward run (shared
// within the round or memoized from an earlier round); a miss means a fresh
// whole-program forward solve was executed.
const (
	BatchFwdCacheHit  = "batch.fwd_cache_hit"
	BatchFwdCacheMiss = "batch.fwd_cache_miss"
)

// Counter names for the failure paths of core.Solve/SolveBatch: one
// CorePanicRecovered per panic caught and converted to a Failed result, one
// CoreBudgetTrip per solve whose budget tripped (mirroring the
// panic_recovered / budget_trip events).
const (
	CorePanicRecovered = "core.panic_recovered"
	CoreBudgetTrip     = "core.budget_trip"
	// CoreClauseRejected counts contradictory cubes rejected at the learn
	// site (mirroring the clause_rejected events).
	CoreClauseRejected = "core.clause_rejected"
)

// Counter/gauge names for the interned formula kernel (formula.Universe).
// Problems that own a universe implement core.ObsFlusher; Solve/SolveBatch
// flush these once per solve, after the event stream. FormulaUniverseSize is
// a gauge (interned literal count); the others are deltas since the previous
// flush. See the "Formula kernel" section of ARCHITECTURE.md.
const (
	FormulaUniverseSize      = "formula.universe_size"
	FormulaCubeProducts      = "formula.cube_products"
	FormulaSubsumptionChecks = "formula.subsumption_checks"
	FormulaTheoryMemoHits    = "formula.theory_memo_hits"
	FormulaTheoryMemoFills   = "formula.theory_memo_fills"
)

// opKind discriminates the buffered record types.
type opKind uint8

const (
	opEvent opKind = iota
	opCount
	opGauge
	opTiming
)

// op is one buffered record.
type op struct {
	kind opKind
	e    Event
	name string
	v    int64
	d    time.Duration
}

// Buffer is a Recorder that retains records in order for later replay into
// another sink. The parallel batch scheduler gives each concurrent work
// unit its own Buffer and replays them in a deterministic merge order, so
// the observable event stream is independent of goroutine interleaving.
//
// A Buffer is NOT safe for concurrent use: it is meant to be owned by a
// single goroutine and replayed after that goroutine has finished (with a
// happens-before edge between the two, e.g. a WaitGroup).
type Buffer struct {
	ops []op
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

func (b *Buffer) Enabled() bool  { return true }
func (b *Buffer) Record(e Event) { b.ops = append(b.ops, op{kind: opEvent, e: e}) }
func (b *Buffer) Count(name string, delta int64) {
	b.ops = append(b.ops, op{kind: opCount, name: name, v: delta})
}
func (b *Buffer) Gauge(name string, v int64) {
	b.ops = append(b.ops, op{kind: opGauge, name: name, v: v})
}
func (b *Buffer) Timing(name string, d time.Duration) {
	b.ops = append(b.ops, op{kind: opTiming, name: name, d: d})
}

// Len reports how many records are buffered.
func (b *Buffer) Len() int { return len(b.ops) }

// ReplayTo forwards every buffered record, in order, to r.
func (b *Buffer) ReplayTo(r Recorder) {
	for _, o := range b.ops {
		switch o.kind {
		case opEvent:
			r.Record(o.e)
		case opCount:
			r.Count(o.name, o.v)
		case opGauge:
			r.Gauge(o.name, o.v)
		case opTiming:
			r.Timing(o.name, o.d)
		}
	}
}
