package obs

import (
	"sync/atomic"
	"time"
)

// Counter names for the delta-incremental forward engines (dataflow.Chain
// and rhs.Chain). RhsDeltaResumes counts forward solves served by the delta
// path — a retained previous run was validated against the flipped
// parameters instead of solving cold (whether or not anything had to be
// recomputed). RhsPEReused counts path edges (discoveries) that survived
// validation or were served from the expansion memo without re-evaluating a
// transfer function; RhsPEInvalidated counts path edges rolled back because
// a transfer application on the retained run had consulted a flipped
// parameter. The names are rhs.* for both engines: the counters describe
// path-edge reuse regardless of which tabulation produced the edges.
const (
	RhsDeltaResumes  = "rhs.delta_resumes"
	RhsPEReused      = "rhs.pe_reused"
	RhsPEInvalidated = "rhs.pe_invalidated"
)

// FlushDelta drains the delta counters a problem accumulated since its last
// flush into rec, in the fixed order resumes/reused/invalidated. Problems
// call it from FlushObs so the counts ride the same deterministic flush
// point as the formula.* and meta.* counters.
func FlushDelta(rec Recorder, resumes, reused, invalidated *atomic.Int64) {
	if n := resumes.Swap(0); n > 0 {
		rec.Count(RhsDeltaResumes, n)
	}
	if n := reused.Swap(0); n > 0 {
		rec.Count(RhsPEReused, n)
	}
	if n := invalidated.Swap(0); n > 0 {
		rec.Count(RhsPEInvalidated, n)
	}
}

// Counter names recorded by core.SolveBatch's forward-run memo (see the
// "Concurrency model" section of ARCHITECTURE.md). A hit means a group's
// chosen abstraction was served by an already-available forward run (shared
// within the round or memoized from an earlier round); a miss means a fresh
// whole-program forward solve was executed.
const (
	BatchFwdCacheHit  = "batch.fwd_cache_hit"
	BatchFwdCacheMiss = "batch.fwd_cache_miss"
)

// Counter names for the failure paths of core.Solve/SolveBatch: one
// CorePanicRecovered per panic caught and converted to a Failed result, one
// CoreBudgetTrip per solve whose budget tripped (mirroring the
// panic_recovered / budget_trip events).
const (
	CorePanicRecovered = "core.panic_recovered"
	CoreBudgetTrip     = "core.budget_trip"
	// CoreClauseRejected counts contradictory cubes rejected at the learn
	// site (mirroring the clause_rejected events).
	CoreClauseRejected = "core.clause_rejected"
)

// Names recorded by the minimum-model solver (minsat.Solver) when
// instrumented. MinsatMinimum is a timer (wall time of one Minimum call);
// MinsatSearchNodes counts branch-and-bound nodes visited;
// MinsatIncrementalReuse counts Minimum calls answered entirely from the
// solver's warm state — the cached model still satisfies every clause added
// since it was computed, or UNSAT was already proven — without visiting a
// single search node. See the "Minsat incrementality" section of
// ARCHITECTURE.md for the warm-start contract.
const (
	MinsatMinimum          = "minsat.minimum"
	MinsatSearchNodes      = "minsat.search_nodes"
	MinsatIncrementalReuse = "minsat.incremental_reuse"
)

// Counter/gauge names for the interned formula kernel (formula.Universe).
// Problems that own a universe implement core.ObsFlusher; Solve/SolveBatch
// flush these once per solve, after the event stream. FormulaUniverseSize is
// a gauge (interned literal count); the others are deltas since the previous
// flush. See the "Formula kernel" section of ARCHITECTURE.md.
// FormulaSubsumptionChecks counts full (bitset-row) entailment checks only;
// FormulaSigFiltered counts candidate×kept Simplify pairs dismissed by the
// signature/watched-literal pre-filter before any cube was dereferenced, so
// the filter hit rate is sig_filtered / (sig_filtered + subsumption_checks).
// FormulaSigSkips counts whole unsat/reduce scans proven unnecessary by
// capability signatures inside And/Or.
const (
	FormulaUniverseSize      = "formula.universe_size"
	FormulaCubeProducts      = "formula.cube_products"
	FormulaSubsumptionChecks = "formula.subsumption_checks"
	FormulaSigFiltered       = "formula.sig_filtered"
	FormulaSigSkips          = "formula.sig_skips"
	FormulaTheoryMemoHits    = "formula.theory_memo_hits"
	FormulaTheoryMemoFills   = "formula.theory_memo_fills"
)

// Names recorded by the weakest-precondition cache (meta.WPCache).
// MetaWPFormulaMemoHits counts whole-formula wp applications answered from
// the per-atom formula memo — each hit skips an entire per-cube
// substitution pass, And chain included; misses count the applications that
// had to compute (and then stored their result). Backward walks of
// successive CEGAR iterations revisit the same (atom, formula) pairs
// whenever counterexample traces share structure, so the hit rate tracks
// trace similarity across iterations.
const (
	MetaWPFormulaMemoHits   = "meta.wp_formula_memo_hits"
	MetaWPFormulaMemoMisses = "meta.wp_formula_memo_misses"
)

// Counter names for warm-start solving. CoreWarmSeededClauses is recorded by
// core.Solve/SolveBatch (clauses genuinely added from Options.Seed/SeedBatch,
// mirroring the warm_seed events); the warm.* names are recorded by the store
// layer (internal/warm) against the Recorder handed to warm.Open. QueryHit
// counts queries that found a usable stored entry; ClausesLoaded/Invalidated
// count per-clause survival of the IR delta check; ReplayExhausted counts
// stored Exhausted verdicts returned without re-solving (exact
// fingerprint+budget match only); EntriesCorrupt counts snapshot files or
// entries dropped as unreadable (the cold-fallback path).
const (
	CoreWarmSeededClauses  = "core.warm_seeded_clauses"
	WarmQueryHit           = "warm.query_hit"
	WarmQueryMiss          = "warm.query_miss"
	WarmClausesLoaded      = "warm.clauses_loaded"
	WarmClausesInvalidated = "warm.clauses_invalidated"
	WarmReplayExhausted    = "warm.replay_exhausted"
	WarmEntriesCorrupt     = "warm.entries_corrupt"
	WarmSnapshots          = "warm.snapshots"
)

// Counter/gauge/timer names recorded by the solver daemon (internal/server).
// ServerAccepted counts admitted requests (mirroring the request_accepted
// events); the ServerRejected* counters partition turned-away requests by
// reason (mirroring request_rejected). ServerBatches counts executed
// coalescing rounds; ServerCoalesced counts requests that shared a round with
// at least one other request; ServerExpired counts requests whose per-request
// deadline passed while still queued (resolved Exhausted without solving).
// ServerQueueDepth is a gauge of the accept queue's high-water mark.
// ServerBatchWait times enqueue→round-start per request; ServerBatchSolve
// times one round's SolveBatch wall.
const (
	ServerAccepted       = "server.accepted"
	ServerRejectedBadReq = "server.rejected_bad_request"
	ServerRejectedQueue  = "server.rejected_queue_full"
	ServerRejectedQuota  = "server.rejected_quota"
	ServerRejectedDrain  = "server.rejected_draining"
	ServerBatches        = "server.batches"
	ServerCoalesced      = "server.coalesced"
	ServerExpired        = "server.expired_in_queue"
	ServerQueueDepth     = "server.queue_depth"
	ServerBatchWait      = "server.batch_wait"
	ServerBatchSolve     = "server.batch_solve"
)

// opKind discriminates the buffered record types.
type opKind uint8

const (
	opEvent opKind = iota
	opCount
	opGauge
	opTiming
)

// op is one buffered record.
type op struct {
	kind opKind
	e    Event
	name string
	v    int64
	d    time.Duration
}

// Buffer is a Recorder that retains records in order for later replay into
// another sink. The parallel batch scheduler gives each concurrent work
// unit its own Buffer and replays them in a deterministic merge order, so
// the observable event stream is independent of goroutine interleaving.
//
// A Buffer is NOT safe for concurrent use: it is meant to be owned by a
// single goroutine and replayed after that goroutine has finished (with a
// happens-before edge between the two, e.g. a WaitGroup).
type Buffer struct {
	ops []op
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

func (b *Buffer) Enabled() bool  { return true }
func (b *Buffer) Record(e Event) { b.ops = append(b.ops, op{kind: opEvent, e: e}) }
func (b *Buffer) Count(name string, delta int64) {
	b.ops = append(b.ops, op{kind: opCount, name: name, v: delta})
}
func (b *Buffer) Gauge(name string, v int64) {
	b.ops = append(b.ops, op{kind: opGauge, name: name, v: v})
}
func (b *Buffer) Timing(name string, d time.Duration) {
	b.ops = append(b.ops, op{kind: opTiming, name: name, d: d})
}

// Len reports how many records are buffered.
func (b *Buffer) Len() int { return len(b.ops) }

// ReplayTo forwards every buffered record, in order, to r.
func (b *Buffer) ReplayTo(r Recorder) {
	for _, o := range b.ops {
		switch o.kind {
		case opEvent:
			r.Record(o.e)
		case opCount:
			r.Count(o.name, o.v)
		case opGauge:
			r.Gauge(o.name, o.v)
		case opTiming:
			r.Timing(o.name, o.d)
		}
	}
}
