// Package obs is the observability layer of the TRACER loop: a
// zero-dependency, low-overhead subsystem for structured event tracing,
// metrics, and timing.
//
// The central type is Recorder, a sink for three kinds of telemetry:
//
//   - Events: a structured stream mirroring the phases of Algorithm 1
//     (IterStart, ForwardDone, BackwardDone, ClauseLearned, GroupSplit,
//     QueryResolved), each carrying abstraction size, step counts, clause
//     counts, and wall time. Per-query event totals reconcile exactly with
//     core.Result and core.BatchStats counters.
//   - Counters and gauges: named monotonic sums (rhs.path_edges,
//     minsat.search_nodes) and high-water marks (rhs.worklist_peak).
//   - Timings: named duration distributions (minsat.minimum, rhs.solve).
//
// Implementations: Nop (the default — all instrumented code paths guard on
// Enabled, so the uninstrumented cost is a single interface call), Agg (an
// aggregating in-memory sink), NDJSON (one JSON object per line to an
// io.Writer), Capture (an in-memory event list, for tests), and Multi
// (fan-out). Tag wraps a Recorder so every event is stamped with a query
// identifier.
//
// All sinks are safe for concurrent use; the bench harness records from a
// worker pool.
package obs

import "time"

// EventKind names a phase of the TRACER loop (or a metric record in an
// NDJSON stream, where counters and timings appear inline).
type EventKind string

const (
	// IterStart opens one CEGAR iteration: a minimum abstraction has been
	// chosen (AbsSize = |p|) against the current clause set (Clauses).
	IterStart EventKind = "iter_start"
	// ForwardDone closes one forward analysis run (Steps, WallNS). In batch
	// mode Queries is the number of queries sharing the run.
	ForwardDone EventKind = "forward_done"
	// BackwardDone closes one backward meta-analysis run (Cubes, WallNS).
	BackwardDone EventKind = "backward_done"
	// ClauseLearned records a blocking clause actually added (not a
	// duplicate); Clauses is the running deduplicated total.
	ClauseLearned EventKind = "clause_learned"
	// ClauseRejected records a broken cube returned by the backward
	// meta-analysis: one whose Pos and Neg overlap, so it describes no
	// abstraction at all and its blocking clause would canonicalize to a
	// tautology silently dropped by minsat.Solver.Add. Name carries the
	// cube's rendering. A rejected cube indicates an unsound backward
	// transfer function; if no other cube of the pass eliminates the
	// current abstraction the query resolves failed with a diagnostic
	// naming the cubes.
	ClauseRejected EventKind = "clause_rejected"
	// GroupSplit records a query group splitting into several successor
	// groups in SolveBatch (Groups = live groups after redistribution,
	// Queries = successor groups born from this split).
	GroupSplit EventKind = "group_split"
	// QueryResolved closes a query: Status is
	// proved/impossible/exhausted/failed, and Iter, Clauses, Steps, WallNS
	// are the query's final totals, matching the core.Result counters
	// exactly. Every query, even one ending in a budget trip, a recovered
	// panic, or a no-progress error, gets exactly one QueryResolved.
	QueryResolved EventKind = "query_resolved"
	// PanicRecovered records a panic caught by the solver and converted
	// into a Failed resolution. Name carries the recovered value's message;
	// in batch mode Query is set when the panic was confined to one query's
	// backward unit. Stack traces are kept out of the event stream (they
	// embed goroutine IDs, which would break cross-worker-count
	// determinism) and live in core.Result.Stack instead.
	PanicRecovered EventKind = "panic_recovered"
	// BudgetTrip records the first budget trip of a solve (Name = the
	// budget.Cause string: canceled|deadline|steps|injected). Emitted once,
	// just before the tripped queries resolve as exhausted.
	BudgetTrip EventKind = "budget_trip"
	// WarmSeed records blocking clauses seeded into a solve before
	// iteration 1 from a warm-start store (Clauses = clauses genuinely
	// added after dedup; Query set in batch mode). Emitted at most once per
	// query, and only when at least one seed clause was offered.
	WarmSeed EventKind = "warm_seed"
	// RequestAccepted opens one solver-daemon request's access-log stream
	// (Query = the server-assigned request id, Name = the coalescing
	// compatibility key). The stream continues with the solver's per-query
	// events, re-tagged from batch indices to request ids, and terminates
	// with exactly one QueryResolved whose totals match the HTTP response.
	RequestAccepted EventKind = "request_accepted"
	// RequestRejected records a request turned away at admission (Query =
	// request id, Name = reason: bad_request|queue_full|quota|draining,
	// Status = the HTTP status sent). A rejected request has no further
	// events.
	RequestRejected EventKind = "request_rejected"

	// CounterKind, GaugeKind, and TimingKind are how Count/Gauge/Timing
	// records appear when serialized into an NDJSON event stream.
	CounterKind EventKind = "counter"
	GaugeKind   EventKind = "gauge"
	TimingKind  EventKind = "timing"
)

// Event is one record of the structured stream. Zero-valued fields are
// omitted from JSON, so each kind serializes only what it carries.
type Event struct {
	Kind  EventKind `json:"kind"`
	Query string    `json:"query,omitempty"` // query identifier (Tag, or batch index)
	Iter  int       `json:"iter,omitempty"`  // 1-based CEGAR iteration / forward-run ordinal

	AbsSize int `json:"abs_size,omitempty"` // |p| of the abstraction tried
	Steps   int `json:"steps,omitempty"`    // forward solver steps
	Clauses int `json:"clauses,omitempty"`  // learned blocking clauses (deduplicated)
	Cubes   int `json:"cubes,omitempty"`    // cubes returned by one backward run
	Groups  int `json:"groups,omitempty"`   // live query groups (batch mode)
	Queries int `json:"queries,omitempty"`  // queries sharing a run / born groups
	Reused  int `json:"reused,omitempty"`   // ForwardDone: path edges served by the delta path

	Status string `json:"status,omitempty"`  // QueryResolved: proved|impossible|exhausted|failed
	WallNS int64  `json:"wall_ns,omitempty"` // wall time of the phase

	// Name and Value carry Count/Gauge/Timing records through an NDJSON
	// stream (Kind = counter|gauge|timing; timings use WallNS).
	Name  string `json:"name,omitempty"`
	Value int64  `json:"value,omitempty"`
}

// Recorder is the sink threaded through the solver stack. Implementations
// must be safe for concurrent use.
type Recorder interface {
	// Enabled reports whether records are consumed at all; hot paths guard
	// event construction and time.Now calls on it.
	Enabled() bool
	// Record consumes one structured event.
	Record(e Event)
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge records an observation of a high-water metric; sinks keep the
	// maximum seen.
	Gauge(name string, v int64)
	// Timing records one duration observation of the named timer.
	Timing(name string, d time.Duration)
}

// Nop is the default Recorder: it drops everything and reports disabled.
type Nop struct{}

func (Nop) Enabled() bool                { return false }
func (Nop) Record(Event)                 {}
func (Nop) Count(string, int64)          {}
func (Nop) Gauge(string, int64)          {}
func (Nop) Timing(string, time.Duration) {}

// Default normalizes a possibly-nil Recorder to a usable one.
func Default(r Recorder) Recorder {
	if r == nil {
		return Nop{}
	}
	return r
}

// tagger stamps a query identifier on every event lacking one.
type tagger struct {
	r     Recorder
	query string
}

// Tag returns a Recorder that stamps query on every event that does not
// already carry a query identifier. Tagging a nil or disabled Recorder
// returns Nop, so the no-op fast path is preserved.
func Tag(r Recorder, query string) Recorder {
	if r == nil || !r.Enabled() {
		return Nop{}
	}
	return tagger{r: r, query: query}
}

func (t tagger) Enabled() bool { return true }
func (t tagger) Record(e Event) {
	if e.Query == "" {
		e.Query = t.query
	}
	t.r.Record(e)
}
func (t tagger) Count(name string, delta int64)      { t.r.Count(name, delta) }
func (t tagger) Gauge(name string, v int64)          { t.r.Gauge(name, v) }
func (t tagger) Timing(name string, d time.Duration) { t.r.Timing(name, d) }

// multi fans records out to several sinks.
type multi []Recorder

// Multi returns a Recorder forwarding to every non-nil, enabled sink. With
// no usable sinks it returns Nop.
func Multi(rs ...Recorder) Recorder {
	var out multi
	for _, r := range rs {
		if r != nil && r.Enabled() {
			out = append(out, r)
		}
	}
	switch len(out) {
	case 0:
		return Nop{}
	case 1:
		return out[0]
	}
	return out
}

func (m multi) Enabled() bool { return true }
func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}
func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}
func (m multi) Gauge(name string, v int64) {
	for _, r := range m {
		r.Gauge(name, v)
	}
}
func (m multi) Timing(name string, d time.Duration) {
	for _, r := range m {
		r.Timing(name, d)
	}
}
