package obs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestCaptureOrdering: events are retained in record order, including
// counter/gauge/timing records folded into the stream.
func TestCaptureOrdering(t *testing.T) {
	c := NewCapture()
	c.Record(Event{Kind: IterStart, Iter: 1})
	c.Count("steps", 3)
	c.Record(Event{Kind: ForwardDone, Iter: 1, Steps: 3})
	c.Timing("phase", 5*time.Millisecond)
	c.Record(Event{Kind: QueryResolved, Iter: 1, Status: "proved"})

	got := c.Events()
	wantKinds := []EventKind{IterStart, CounterKind, ForwardDone, TimingKind, QueryResolved}
	if len(got) != len(wantKinds) {
		t.Fatalf("got %d events, want %d", len(got), len(wantKinds))
	}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Errorf("event %d: kind %q, want %q", i, got[i].Kind, k)
		}
	}
	if fd := c.Filter(ForwardDone); len(fd) != 1 || fd[0].Steps != 3 {
		t.Errorf("Filter(ForwardDone) = %+v", fd)
	}
}

// TestAggMath: counter sums, gauge maxima, timer min/max/total/mean, and
// per-kind event counts aggregate correctly.
func TestAggMath(t *testing.T) {
	a := NewAgg()
	a.Count("c", 2)
	a.Count("c", 5)
	a.Gauge("g", 7)
	a.Gauge("g", 3) // below the max: ignored
	a.Timing("t", 10*time.Millisecond)
	a.Timing("t", 30*time.Millisecond)
	a.Timing("t", 20*time.Millisecond)
	a.Record(Event{Kind: ForwardDone, Steps: 11, WallNS: int64(time.Millisecond)})
	a.Record(Event{Kind: ForwardDone, Steps: 4, WallNS: int64(3 * time.Millisecond)})

	if got := a.Counter("c"); got != 7 {
		t.Errorf("Counter(c) = %d, want 7", got)
	}
	if got := a.GaugeMax("g"); got != 7 {
		t.Errorf("GaugeMax(g) = %d, want 7", got)
	}
	ts := a.Timer("t")
	if ts.Count != 3 || ts.Min != 10*time.Millisecond || ts.Max != 30*time.Millisecond ||
		ts.Total != 60*time.Millisecond || ts.Mean() != 20*time.Millisecond {
		t.Errorf("Timer(t) = %+v", ts)
	}
	if got := a.Events(ForwardDone); got != 2 {
		t.Errorf("Events(ForwardDone) = %d, want 2", got)
	}
	// Event-derived aggregates: step sums and per-kind wall timers.
	if got := a.Counter("event.forward_done.steps"); got != 15 {
		t.Errorf("event.forward_done.steps = %d, want 15", got)
	}
	if ws := a.Timer("event.forward_done"); ws.Count != 2 || ws.Total != 4*time.Millisecond {
		t.Errorf("event.forward_done timer = %+v", ws)
	}
	if a.Render() == "" {
		t.Error("Render() is empty")
	}
}

// TestAggConcurrent: the sink tolerates concurrent recording (the bench
// harness records from a worker pool); run under -race.
func TestAggConcurrent(t *testing.T) {
	a := NewAgg()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.Count("n", 1)
				a.Gauge("m", int64(i))
				a.Timing("t", time.Microsecond)
				a.Record(Event{Kind: IterStart})
			}
		}()
	}
	wg.Wait()
	if got := a.Counter("n"); got != 800 {
		t.Errorf("Counter(n) = %d, want 800", got)
	}
	if got := a.Events(IterStart); got != 800 {
		t.Errorf("Events(IterStart) = %d, want 800", got)
	}
}

// TestNDJSONRoundTrip: a mixed stream survives serialization byte-exactly
// in order and content.
func TestNDJSONRoundTrip(t *testing.T) {
	want := []Event{
		{Kind: IterStart, Query: "q0", Iter: 1, AbsSize: 2, Clauses: 3},
		{Kind: ForwardDone, Query: "q0", Iter: 1, AbsSize: 2, Steps: 41, WallNS: 1234},
		{Kind: BackwardDone, Query: "q0", Iter: 1, Cubes: 2, WallNS: 99},
		{Kind: ClauseLearned, Query: "q0", Iter: 1, Clauses: 4},
		{Kind: CounterKind, Name: "rhs.path_edges", Value: 41},
		{Kind: GaugeKind, Name: "rhs.worklist_peak", Value: 7},
		{Kind: TimingKind, Name: "minsat.minimum", WallNS: 555},
		{Kind: GroupSplit, Iter: 2, Groups: 3, Queries: 2},
		{Kind: QueryResolved, Query: "q0", Iter: 1, Status: "proved", WallNS: 2000},
	}
	var buf bytes.Buffer
	n := NewNDJSON(&buf)
	for _, e := range want {
		switch e.Kind {
		case CounterKind:
			n.Count(e.Name, e.Value)
		case GaugeKind:
			n.Gauge(e.Name, e.Value)
		case TimingKind:
			n.Timing(e.Name, time.Duration(e.WallNS))
		default:
			n.Record(e)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestTag: events lacking a query get stamped; existing tags are kept; a
// disabled underlying recorder short-circuits to Nop.
func TestTag(t *testing.T) {
	c := NewCapture()
	r := Tag(c, "q7")
	r.Record(Event{Kind: IterStart})
	r.Record(Event{Kind: IterStart, Query: "other"})
	ev := c.Events()
	if ev[0].Query != "q7" || ev[1].Query != "other" {
		t.Errorf("tagged queries = %q, %q", ev[0].Query, ev[1].Query)
	}
	if _, ok := Tag(Nop{}, "x").(Nop); !ok {
		t.Error("Tag(Nop) should collapse to Nop")
	}
	if _, ok := Tag(nil, "x").(Nop); !ok {
		t.Error("Tag(nil) should collapse to Nop")
	}
}

// TestMulti: fan-out reaches every sink; degenerate cases collapse.
func TestMulti(t *testing.T) {
	c1, c2 := NewCapture(), NewCapture()
	m := Multi(c1, nil, Nop{}, c2)
	m.Record(Event{Kind: IterStart})
	m.Count("n", 1)
	if len(c1.Events()) != 2 || len(c2.Events()) != 2 {
		t.Errorf("sinks saw %d and %d records, want 2 and 2", len(c1.Events()), len(c2.Events()))
	}
	if _, ok := Multi().(Nop); !ok {
		t.Error("Multi() should be Nop")
	}
	if Multi(c1) != Recorder(c1) {
		t.Error("Multi(one) should return the sink itself")
	}
	if Multi(nil, Nop{}).Enabled() {
		t.Error("Multi(nil, Nop) should be disabled")
	}
}

// TestBenchEntries: aggregate export produces the github-action-benchmark
// {name, value, unit} shape deterministically.
func TestBenchEntries(t *testing.T) {
	a := NewAgg()
	a.Timing("solve", 250*time.Millisecond)
	a.Count("steps", 42)
	a.Gauge("peak", 9)
	got := a.BenchEntries("pfx/")
	want := []BenchEntry{
		{Name: "pfx/solve", Value: 250, Unit: "ms", Extra: "n=1 mean=250ms"},
		{Name: "pfx/steps", Value: 42, Unit: "count"},
		{Name: "pfx/peak", Value: 9, Unit: "max"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BenchEntries:\ngot  %+v\nwant %+v", got, want)
	}
}
