package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// BenchEntry is one data point in the github-action-benchmark "customSmallerIsBetter"
// JSON shape: an array of {name, value, unit} objects. BENCH_*.json files in
// this shape accumulate the repo's perf trajectory across PRs.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// WriteBenchJSON writes entries as a github-action-benchmark JSON array.
func WriteBenchJSON(path string, entries []BenchEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchEntries exports the aggregate state as benchmark data points under
// the given name prefix: timers as total milliseconds (with count and mean
// in Extra), counters as raw sums, and gauges as maxima.
func (a *Agg) BenchEntries(prefix string) []BenchEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []BenchEntry
	for _, k := range sortedKeys(a.timers) {
		t := a.timers[k]
		out = append(out, BenchEntry{
			Name:  prefix + k,
			Value: float64(t.Total) / float64(time.Millisecond),
			Unit:  "ms",
			Extra: fmt.Sprintf("n=%d mean=%v", t.Count, t.Mean().Round(time.Microsecond)),
		})
	}
	for _, k := range sortedKeys(a.counters) {
		out = append(out, BenchEntry{Name: prefix + k, Value: float64(a.counters[k]), Unit: "count"})
	}
	for _, k := range sortedKeys(a.gauges) {
		out = append(out, BenchEntry{Name: prefix + k, Value: float64(a.gauges[k]), Unit: "max"})
	}
	return out
}
