package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// NDJSON is a Recorder serializing every record as one JSON object per line
// (newline-delimited JSON). Events are written as-is; Count, Gauge, and
// Timing records appear inline with Kind counter/gauge/timing, so the file
// is a faithful, ordered transcript of everything the solvers reported.
type NDJSON struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
}

// NewNDJSON wraps an io.Writer. The caller owns the writer; Close flushes
// but does not close it.
func NewNDJSON(w io.Writer) *NDJSON {
	bw := bufio.NewWriter(w)
	return &NDJSON{w: bw, enc: json.NewEncoder(bw)}
}

// CreateNDJSON creates (truncating) the file at path and returns a sink
// that owns it; Close flushes and closes the file.
func CreateNDJSON(path string) (*NDJSON, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace file: %w", err)
	}
	n := NewNDJSON(f)
	n.c = f
	return n, nil
}

func (n *NDJSON) Enabled() bool { return true }

func (n *NDJSON) Record(e Event) {
	n.mu.Lock()
	if n.err == nil {
		n.err = n.enc.Encode(e)
	}
	n.mu.Unlock()
}

func (n *NDJSON) Count(name string, delta int64) {
	n.Record(Event{Kind: CounterKind, Name: name, Value: delta})
}

func (n *NDJSON) Gauge(name string, v int64) {
	n.Record(Event{Kind: GaugeKind, Name: name, Value: v})
}

func (n *NDJSON) Timing(name string, d time.Duration) {
	n.Record(Event{Kind: TimingKind, Name: name, WallNS: int64(d)})
}

// Close flushes buffered lines (and closes the file when the sink owns
// one), returning the first error seen while writing.
func (n *NDJSON) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.w.Flush(); err != nil && n.err == nil {
		n.err = err
	}
	if n.c != nil {
		if err := n.c.Close(); err != nil && n.err == nil {
			n.err = err
		}
		n.c = nil
	}
	return n.err
}

// ReadEvents parses an NDJSON stream back into events, preserving order.
// Blank lines are skipped; a malformed line is an error.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadEventsFile parses the NDJSON trace file at path.
func ReadEventsFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEvents(f)
}
