package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TimerStat summarizes the observations of one named timer.
type TimerStat struct {
	Count    int64
	Total    time.Duration
	Min, Max time.Duration
}

// Mean is the average observation (0 when empty).
func (t TimerStat) Mean() time.Duration {
	if t.Count == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Count)
}

// Agg is an aggregating in-memory Recorder: it keeps per-kind event counts
// (plus per-kind wall-time and step sums), counter sums, gauge maxima, and
// timer distributions, but not the events themselves (use Capture or NDJSON
// to retain the stream).
type Agg struct {
	mu       sync.Mutex
	events   map[EventKind]int64
	counters map[string]int64
	gauges   map[string]int64
	timers   map[string]TimerStat
}

// NewAgg returns an empty aggregating sink.
func NewAgg() *Agg {
	return &Agg{
		events:   map[EventKind]int64{},
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		timers:   map[string]TimerStat{},
	}
}

func (a *Agg) Enabled() bool { return true }

func (a *Agg) Record(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events[e.Kind]++
	if e.WallNS > 0 {
		a.timing("event."+string(e.Kind), time.Duration(e.WallNS))
	}
	if e.Steps > 0 {
		a.counters["event."+string(e.Kind)+".steps"] += int64(e.Steps)
	}
}

func (a *Agg) Count(name string, delta int64) {
	a.mu.Lock()
	a.counters[name] += delta
	a.mu.Unlock()
}

func (a *Agg) Gauge(name string, v int64) {
	a.mu.Lock()
	if cur, ok := a.gauges[name]; !ok || v > cur {
		a.gauges[name] = v
	}
	a.mu.Unlock()
}

func (a *Agg) Timing(name string, d time.Duration) {
	a.mu.Lock()
	a.timing(name, d)
	a.mu.Unlock()
}

// timing updates a timer; callers hold a.mu.
func (a *Agg) timing(name string, d time.Duration) {
	t := a.timers[name]
	if t.Count == 0 || d < t.Min {
		t.Min = d
	}
	if d > t.Max {
		t.Max = d
	}
	t.Count++
	t.Total += d
	a.timers[name] = t
}

// Events reports how many events of the kind were recorded.
func (a *Agg) Events(kind EventKind) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events[kind]
}

// Counter reports the accumulated sum of the named counter.
func (a *Agg) Counter(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counters[name]
}

// GaugeMax reports the maximum observation of the named gauge.
func (a *Agg) GaugeMax(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gauges[name]
}

// Timer reports the distribution summary of the named timer.
func (a *Agg) Timer(name string) TimerStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.timers[name]
}

// Render formats every aggregate as an aligned, deterministic table.
func (a *Agg) Render() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	section := func(title string) { fmt.Fprintf(&b, "%s\n", title) }

	if len(a.events) > 0 {
		section("events")
		for _, k := range sortedKeys(a.events) {
			fmt.Fprintf(&b, "  %-28s %d\n", k, a.events[EventKind(k)])
		}
	}
	if len(a.counters) > 0 {
		section("counters")
		for _, k := range sortedKeys(a.counters) {
			fmt.Fprintf(&b, "  %-28s %d\n", k, a.counters[k])
		}
	}
	if len(a.gauges) > 0 {
		section("gauges (max)")
		for _, k := range sortedKeys(a.gauges) {
			fmt.Fprintf(&b, "  %-28s %d\n", k, a.gauges[k])
		}
	}
	if len(a.timers) > 0 {
		section("timers")
		for _, k := range sortedKeys(a.timers) {
			t := a.timers[k]
			fmt.Fprintf(&b, "  %-28s n=%-6d total=%-10v mean=%-10v min=%-10v max=%v\n",
				k, t.Count, t.Total.Round(time.Microsecond), t.Mean().Round(time.Microsecond),
				t.Min.Round(time.Microsecond), t.Max.Round(time.Microsecond))
		}
	}
	return b.String()
}

func sortedKeys[V any, K ~string](m map[K]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// Capture is a Recorder retaining the full event stream in memory, for
// tests and programmatic reconciliation against solver counters. Counters,
// gauges, and timings are folded into the stream the same way NDJSON
// serializes them.
type Capture struct {
	mu     sync.Mutex
	events []Event
}

// NewCapture returns an empty capturing sink.
func NewCapture() *Capture { return &Capture{} }

func (c *Capture) Enabled() bool { return true }

func (c *Capture) Record(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *Capture) Count(name string, delta int64) {
	c.Record(Event{Kind: CounterKind, Name: name, Value: delta})
}

func (c *Capture) Gauge(name string, v int64) {
	c.Record(Event{Kind: GaugeKind, Name: name, Value: v})
}

func (c *Capture) Timing(name string, d time.Duration) {
	c.Record(Event{Kind: TimingKind, Name: name, WallNS: int64(d)})
}

// Events returns a copy of the recorded stream, in record order.
func (c *Capture) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Filter returns the recorded events of one kind, in record order.
func (c *Capture) Filter(kind EventKind) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
