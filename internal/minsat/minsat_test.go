package minsat

import (
	"math/rand"
	"testing"

	"tracer/internal/uset"
)

// bruteMinimum enumerates all assignments over n variables and returns the
// minimum-cost, lexicographically-least model, or ok=false when UNSAT.
func bruteMinimum(s *Solver, n int) (uset.Set, bool) {
	bestCost := -1
	var best uset.Set
	for bits := 0; bits < 1<<n; bits++ {
		var model uset.Set
		cost := 0
		for v := 0; v < n; v++ {
			if bits&(1<<v) != 0 {
				model = model.Add(v)
				cost++
			}
		}
		if !s.Satisfies(model) {
			continue
		}
		if bestCost < 0 || cost < bestCost || (cost == bestCost && lexLess(model, best, n)) {
			bestCost = cost
			best = model
		}
	}
	return best, bestCost >= 0
}

// lexLess orders models by false<true per variable index.
func lexLess(a, b uset.Set, n int) bool {
	for v := 0; v < n; v++ {
		av, bv := a.Has(v), b.Has(v)
		if av != bv {
			return !av // a has false where b has true → a smaller
		}
	}
	return false
}

// TestMinimumAgainstBruteForce: random clause sets over small universes.
func TestMinimumAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 8
	for trial := 0; trial < 300; trial++ {
		s := New(n)
		nc := rng.Intn(10)
		for i := 0; i < nc; i++ {
			var c Clause
			for len(c) == 0 {
				for v := 0; v < n; v++ {
					if rng.Intn(4) == 0 {
						c = append(c, Lit{Var: v, Neg: rng.Intn(2) == 0})
					}
				}
			}
			s.Add(c)
		}
		got, ok := s.Minimum()
		want, wantOK := bruteMinimum(s, n)
		if ok != wantOK {
			t.Fatalf("trial %d: sat=%v want %v", trial, ok, wantOK)
		}
		if !ok {
			continue
		}
		if got.Len() != want.Len() {
			t.Fatalf("trial %d: cost %d want %d (got %v want %v)", trial, got.Len(), want.Len(), got, want)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: model %v, want lexicographically-least %v", trial, got, want)
		}
	}
}

// TestEmptyFormula: no clauses means the empty (all-false) model.
func TestEmptyFormula(t *testing.T) {
	s := New(100)
	m, ok := s.Minimum()
	if !ok || !m.Empty() {
		t.Fatalf("Minimum() = %v, %v; want empty model", m, ok)
	}
}

// TestUnsat: the empty clause makes the formula unsatisfiable.
func TestUnsat(t *testing.T) {
	s := New(4)
	s.Block(nil, nil) // blocks every abstraction
	if _, ok := s.Minimum(); ok {
		t.Fatal("expected UNSAT")
	}
}

// TestBlockSemantics: Block(pos, neg) excludes exactly the cube.
func TestBlockSemantics(t *testing.T) {
	s := New(3)
	s.Block(uset.New(0), uset.New(1)) // block {p | 0∈p, 1∉p}
	inCube := uset.New(0, 2)
	if s.Satisfies(inCube) {
		t.Fatalf("%v should be blocked", inCube)
	}
	outside := []uset.Set{nil, uset.New(1), uset.New(0, 1), uset.New(2)}
	for _, m := range outside {
		if !s.Satisfies(m) {
			t.Fatalf("%v should be allowed", m)
		}
	}
	m, ok := s.Minimum()
	if !ok || !m.Empty() {
		t.Fatalf("minimum = %v, want {}", m)
	}
}

// TestTautologyAndDuplicates: x∨¬x is dropped; duplicates are not recounted.
func TestTautologyAndDuplicates(t *testing.T) {
	s := New(2)
	s.Add(Clause{{Var: 0}, {Var: 0, Neg: true}})
	if s.NumClauses() != 0 {
		t.Fatalf("tautology kept: %d clauses", s.NumClauses())
	}
	s.Add(Clause{{Var: 0}})
	s.Add(Clause{{Var: 0}, {Var: 0}})
	if s.NumClauses() != 1 {
		t.Fatalf("duplicate clause kept: %d clauses", s.NumClauses())
	}
}

// TestCloneIndependence: clones do not share clause growth.
func TestCloneIndependence(t *testing.T) {
	s := New(4)
	s.Add(Clause{{Var: 0}})
	c := s.Clone()
	c.Add(Clause{{Var: 1}})
	if s.NumClauses() != 1 || c.NumClauses() != 2 {
		t.Fatalf("clone shares state: %d / %d", s.NumClauses(), c.NumClauses())
	}
	if s.Signature() == c.Signature() {
		t.Fatal("signatures should differ after divergence")
	}
	d := s.Clone()
	if d.Signature() != s.Signature() {
		t.Fatal("clone signature should match original")
	}
}

// TestSignatureOrderIndependent: the signature canonicalizes clause order.
func TestSignatureOrderIndependent(t *testing.T) {
	a := New(4)
	a.Add(Clause{{Var: 0}})
	a.Add(Clause{{Var: 1, Neg: true}})
	b := New(4)
	b.Add(Clause{{Var: 1, Neg: true}})
	b.Add(Clause{{Var: 0}})
	if a.Signature() != b.Signature() {
		t.Fatalf("signatures differ: %q vs %q", a.Signature(), b.Signature())
	}
}

// TestChainForcing: the TRACER-shaped chain (each cube forces the next
// variable) yields the all-on minimum.
func TestChainForcing(t *testing.T) {
	const n = 12
	s := New(n)
	s.Block(nil, uset.New(0))
	for i := 0; i < n-1; i++ {
		s.Block(uset.New(i), uset.New(i+1))
	}
	m, ok := s.Minimum()
	if !ok {
		t.Fatal("unexpectedly unsat")
	}
	if m.Len() != n {
		t.Fatalf("minimum cost %d, want %d", m.Len(), n)
	}
}

// TestMinimumCostTieBreak: among equal-cost models the lexicographically
// least is chosen, with false < true compared at the lowest variable index
// first — so satisfying x0 ∨ x2 by x2 beats doing so by x0.
func TestMinimumCostTieBreak(t *testing.T) {
	s := New(3)
	s.Add(Clause{{Var: 0}, {Var: 2}}) // x0 ∨ x2
	m, ok := s.Minimum()
	if !ok || !m.Equal(uset.New(2)) {
		t.Fatalf("minimum = %v, want {2}", m)
	}
}
