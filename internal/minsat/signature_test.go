package minsat

import (
	"testing"

	"tracer/internal/uset"
)

// TestSignatureCacheInvalidation: the cached signature stays canonical
// through every Clone/Block/Add interleaving — a cached value must never
// survive a clause insertion, and a clone must not share its parent's
// cache slot.
func TestSignatureCacheInvalidation(t *testing.T) {
	fresh := func(build func(s *Solver)) string {
		s := New(8)
		build(s)
		return s.Signature()
	}

	s := New(8)
	s.Block(uset.New(), uset.New(0))
	sig1 := s.Signature()
	if want := fresh(func(f *Solver) { f.Block(uset.New(), uset.New(0)) }); sig1 != want {
		t.Fatalf("signature %q, want %q", sig1, want)
	}

	// Block after a cached Signature must invalidate the cache.
	s.Block(uset.New(1), uset.New(2))
	sig2 := s.Signature()
	if sig2 == sig1 {
		t.Fatal("signature unchanged after Block: stale cache")
	}
	if want := fresh(func(f *Solver) {
		f.Block(uset.New(), uset.New(0))
		f.Block(uset.New(1), uset.New(2))
	}); sig2 != want {
		t.Fatalf("signature %q, want %q", sig2, want)
	}

	// A clone inherits the cached value but diverges independently.
	c := s.Clone()
	if c.Signature() != sig2 {
		t.Fatalf("clone signature %q, want %q", c.Signature(), sig2)
	}
	c.Block(uset.New(), uset.New(3))
	if c.Signature() == sig2 {
		t.Fatal("clone signature unchanged after Block: stale cache")
	}
	if s.Signature() != sig2 {
		t.Fatal("parent signature changed by clone's Block")
	}

	// Re-adding an existing clause is a no-op and must not disturb the
	// canonical form (cached or not).
	s.Block(uset.New(1), uset.New(2))
	if s.Signature() != sig2 {
		t.Fatal("duplicate Block changed the signature")
	}

	// Clauses added in a different order still converge on one signature.
	r := New(8)
	r.Block(uset.New(1), uset.New(2))
	_ = r.Signature() // populate the cache mid-build
	r.Block(uset.New(), uset.New(0))
	if r.Signature() != sig2 {
		t.Fatalf("order-permuted signature %q, want %q", r.Signature(), sig2)
	}
}
