// Package minsat finds minimum-cost models of CNF formulas over boolean
// parameter variables. TRACER (§5) maintains the viable abstraction set as
// a conjunction of blocking clauses learned from the backward meta-analysis
// and repeatedly needs a *minimum* abstraction from it (line 8 of Alg 1):
// the model with the fewest true variables, which corresponds to the
// cheapest abstraction under both clients' cost orders (|p| for type-state,
// number of L-mapped sites for thread-escape).
//
// The solver is an exact branch-and-bound DPLL with unit propagation. Only
// variables mentioned in clauses are branched on; every unmentioned
// variable is false in the returned model, so the solver scales with the
// number of learned clauses rather than with the (possibly huge) parameter
// space. Ties are broken deterministically: among minimum-cost models the
// lexicographically smallest (false < true, by variable index) is returned.
package minsat

import (
	"sort"
	"time"

	"tracer/internal/budget"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// Lit is a literal: a variable index with a sign.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause []Lit

// Solver accumulates clauses and answers minimum-model queries. A Solver is
// not safe for concurrent use; concurrent callers (the parallel batch
// scheduler) must Clone one solver per goroutine.
type Solver struct {
	n       int
	clauses []Clause
	keys    map[string]bool
	rec     obs.Recorder // nil = no recording
	// sig caches Signature(); Add invalidates it. Signature is called once
	// per query per batch iteration, so recomputing the sorted join of every
	// clause key each time was a measurable cost on large clause sets.
	sig   string
	sigOK bool
}

// Instrument attaches an observability recorder: every Minimum call reports
// its wall time (timer "minsat.minimum") and branch-and-bound search size
// (counter "minsat.search_nodes"). Clones inherit the recorder.
func (s *Solver) Instrument(rec obs.Recorder) { s.rec = rec }

// New returns a solver over variables 0..n-1.
func New(n int) *Solver {
	return &Solver{n: n, keys: make(map[string]bool)}
}

// NumVars reports the size of the variable universe.
func (s *Solver) NumVars() int { return s.n }

// Clone returns an independent copy of the solver's clause set. TRACER's
// multi-query driver clones solvers when a query group splits (§6).
func (s *Solver) Clone() *Solver {
	out := New(s.n)
	out.rec = s.rec
	out.clauses = append([]Clause(nil), s.clauses...)
	for k := range s.keys {
		out.keys[k] = true
	}
	out.sig, out.sigOK = s.sig, s.sigOK
	return out
}

// Signature is a canonical identity of the clause set; query groups are
// keyed by it (two queries share a group iff their unviable abstraction
// sets — hence their clauses — coincide). The result is cached until the
// next clause insertion.
func (s *Solver) Signature() string {
	if s.sigOK {
		return s.sig
	}
	ks := make([]string, 0, len(s.keys))
	for k := range s.keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	b := make([]byte, 0, 16*len(ks))
	for _, k := range ks {
		b = append(b, k...)
		b = append(b, ';')
	}
	s.sig, s.sigOK = string(b), true
	return s.sig
}

// NumClauses reports how many (deduplicated) clauses have been added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Add inserts a clause. Duplicate clauses (after canonicalization) are
// ignored. Adding an empty clause makes the formula unsatisfiable.
func (s *Solver) Add(c Clause) {
	canon := canonicalize(c)
	if canon == nil {
		return // tautology
	}
	k := key(canon)
	if s.keys[k] {
		return
	}
	s.keys[k] = true
	s.clauses = append(s.clauses, canon)
	s.sig, s.sigOK = "", false
}

// Block adds the blocking clause for a cube: "no abstraction with all of
// pos on and all of neg off", i.e. the clause ⋁{¬x | x ∈ pos} ∨ ⋁{x | x ∈ neg}.
// An empty cube blocks every abstraction (adds the empty clause).
func (s *Solver) Block(pos, neg uset.Set) {
	c := make(Clause, 0, pos.Len()+neg.Len())
	for _, v := range pos.Elems() {
		c = append(c, Lit{Var: v, Neg: true})
	}
	for _, v := range neg.Elems() {
		c = append(c, Lit{Var: v})
	}
	s.Add(c)
}

// canonicalize sorts, dedups, and detects tautologies (returns nil for a
// tautological clause, which can be dropped; an empty non-nil clause is
// falsity).
func canonicalize(c Clause) Clause {
	out := make(Clause, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return !out[i].Neg && out[j].Neg
	})
	dedup := out[:0]
	for i, l := range out {
		if i > 0 && l == out[i-1] {
			continue
		}
		if i > 0 && l.Var == out[i-1].Var && l.Neg != out[i-1].Neg {
			return nil // x ∨ ¬x
		}
		dedup = append(dedup, l)
	}
	if len(dedup) == 0 {
		return Clause{} // preserve "empty clause = false"
	}
	return dedup
}

func key(c Clause) string {
	b := make([]byte, 0, len(c)*4)
	for _, l := range c {
		if l.Neg {
			b = append(b, '-')
		}
		b = appendInt(b, l.Var)
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// value is a three-valued assignment.
type value int8

const (
	unassigned value = iota
	vFalse
	vTrue
)

// Minimum returns a minimum-cost model of the accumulated clauses as the
// set of true variables, or ok=false if the formula is unsatisfiable.
func (s *Solver) Minimum() (model uset.Set, ok bool) {
	return s.MinimumBudget(nil)
}

// MinimumBudget is Minimum under a cooperative budget: the branch-and-bound
// search polls b once per node and abandons the search when the budget
// trips, returning ok=false even if some (possibly non-minimum) model was
// already found. Callers must therefore check b.Tripped() before reading
// ok=false as unsatisfiability. A nil budget never trips.
func (s *Solver) MinimumBudget(b *budget.Budget) (model uset.Set, ok bool) {
	nodes := 0
	aborted := false
	if s.rec != nil && s.rec.Enabled() {
		start := time.Now()
		defer func() {
			s.rec.Timing("minsat.minimum", time.Since(start))
			s.rec.Count("minsat.search_nodes", int64(nodes))
		}()
	}
	// Variables mentioned in clauses, in increasing order.
	mentioned := map[int]bool{}
	for _, c := range s.clauses {
		if len(c) == 0 {
			return nil, false
		}
		for _, l := range c {
			mentioned[l.Var] = true
		}
	}
	vars := make([]int, 0, len(mentioned))
	for v := range mentioned {
		vars = append(vars, v)
	}
	sort.Ints(vars)

	assign := make(map[int]value, len(vars))
	best := -1
	var bestModel []int

	var search func(idx, cost int)
	// propagate applies unit propagation; it returns the list of variables
	// it assigned (for undo), the number it set true, and whether a
	// conflict arose.
	propagate := func() (trail []int, setTrue int, conflict bool) {
		for changed := true; changed; {
			changed = false
			for _, c := range s.clauses {
				unassignedCount := 0
				var unit Lit
				satisfied := false
				for _, l := range c {
					switch assign[l.Var] {
					case unassigned:
						unassignedCount++
						unit = l
					case vTrue:
						if !l.Neg {
							satisfied = true
						}
					case vFalse:
						if l.Neg {
							satisfied = true
						}
					}
					if satisfied {
						break
					}
				}
				if satisfied {
					continue
				}
				switch unassignedCount {
				case 0:
					return trail, setTrue, true
				case 1:
					if unit.Neg {
						assign[unit.Var] = vFalse
					} else {
						assign[unit.Var] = vTrue
						setTrue++
					}
					trail = append(trail, unit.Var)
					changed = true
				}
			}
		}
		return trail, setTrue, false
	}

	// lowerBound counts pairwise variable-disjoint unsatisfied clauses whose
	// unassigned literals are all positive: each forces at least one more
	// true variable, so their count is an admissible bound.
	lowerBound := func() int {
		used := map[int]bool{}
		lb := 0
	clauseLoop:
		for _, c := range s.clauses {
			positives := c[:0:0]
			for _, l := range c {
				switch assign[l.Var] {
				case vTrue:
					if !l.Neg {
						continue clauseLoop // satisfied
					}
				case vFalse:
					if l.Neg {
						continue clauseLoop // satisfied
					}
				case unassigned:
					if l.Neg {
						continue clauseLoop // satisfiable for free
					}
					positives = append(positives, l)
				}
			}
			for _, l := range positives {
				if used[l.Var] {
					continue clauseLoop // overlaps a counted clause
				}
			}
			for _, l := range positives {
				used[l.Var] = true
			}
			lb++
		}
		return lb
	}

	search = func(idx, cost int) {
		if aborted || !b.Poll() {
			aborted = true
			return
		}
		nodes++
		if best >= 0 && cost >= best {
			return // bound: cannot improve
		}
		trail, extraTrue, conflict := propagate()
		defer func() {
			for _, v := range trail {
				delete(assign, v)
			}
		}()
		cost += extraTrue
		if conflict || (best >= 0 && cost >= best) {
			return
		}
		if best >= 0 && cost+lowerBound() >= best {
			return
		}
		// Find next unassigned mentioned variable.
		for idx < len(vars) && assign[vars[idx]] != unassigned {
			idx++
		}
		if idx == len(vars) {
			// All mentioned variables assigned and no conflict: model found.
			if best < 0 || cost < best {
				best = cost
				bestModel = bestModel[:0]
				for v, val := range assign {
					if val == vTrue {
						bestModel = append(bestModel, v)
					}
				}
			}
			return
		}
		v := vars[idx]
		assign[v] = vFalse // cheap branch first → lexicographically least
		search(idx+1, cost)
		delete(assign, v)
		assign[v] = vTrue
		search(idx+1, cost+1)
		delete(assign, v)
	}
	search(0, 0)
	if aborted || best < 0 {
		return nil, false
	}
	return uset.New(bestModel...), true
}

// Satisfies reports whether the model (set of true variables) satisfies all
// accumulated clauses.
func (s *Solver) Satisfies(model uset.Set) bool {
	for _, c := range s.clauses {
		sat := false
		for _, l := range c {
			if model.Has(l.Var) != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
