// Package minsat finds minimum-cost models of CNF formulas over boolean
// parameter variables. TRACER (§5) maintains the viable abstraction set as
// a conjunction of blocking clauses learned from the backward meta-analysis
// and repeatedly needs a *minimum* abstraction from it (line 8 of Alg 1):
// the model with the fewest true variables, which corresponds to the
// cheapest abstraction under both clients' cost orders (|p| for type-state,
// number of L-mapped sites for thread-escape).
//
// The solver is an exact branch-and-bound DPLL with unit propagation. Only
// variables mentioned in clauses are branched on; every unmentioned
// variable is false in the returned model, so the solver scales with the
// number of learned clauses rather than with the (possibly huge) parameter
// space. Ties are broken deterministically: among minimum-cost models the
// lexicographically smallest (false < true, by variable index) is returned.
//
// The solver is incremental: because CEGAR only ever adds blocking clauses,
// the model set shrinks monotonically and results from one Minimum call
// remain partial answers for the next. Between calls the solver keeps the
// dense clause index (variable mapping, occurrence lists) and a warm result
// (last minimum model and its cost, or a proven UNSAT verdict):
//
//   - If no clause has been added since the last call, or every clause added
//     since is already satisfied by the cached model, that model is still the
//     minimum (the new model set is a subset of the old one containing its
//     lex-least cheapest element) and is returned with zero search.
//   - UNSAT is sticky: adding clauses can never make an unsatisfiable
//     formula satisfiable again.
//   - Otherwise the search reruns, but the previous minimum cost is a valid
//     lower bound (the "floor"): the branch-and-bound stops at the first
//     model matching it instead of exhausting the remaining tree to prove
//     optimality. Depth-first branching false-before-true visits models in
//     lexicographic order, and cost/lower-bound pruning cannot discard a
//     subtree containing a floor-cost model while best > floor, so the first
//     floor-cost model found is exactly the lex-least minimum the fresh
//     search would return.
//
// Zero-search reuses are counted on the "minsat.incremental_reuse" counter.
// Clone carries the warm state, so the batch scheduler's per-group solver
// lineages stay warm across rounds.
package minsat

import (
	"sort"
	"time"

	"tracer/internal/budget"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// Lit is a literal: a variable index with a sign.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause []Lit

// Solver accumulates clauses and answers minimum-model queries. A Solver is
// not safe for concurrent use; concurrent callers (the parallel batch
// scheduler) must Clone one solver per goroutine.
type Solver struct {
	n       int
	clauses []Clause
	keys    map[string]bool
	rec     obs.Recorder // nil = no recording
	// sig caches Signature(); Add invalidates it. Signature is called once
	// per query per batch iteration, so recomputing the sorted join of every
	// clause key each time was a measurable cost on large clause sets.
	sig   string
	sigOK bool
	// eng is the incremental search engine: a dense mirror of the clause set
	// plus the warm result carried between Minimum calls. It is built lazily
	// on the first Minimum and synced to the clause list on each call.
	eng *engine
}

// Instrument attaches an observability recorder: every Minimum call reports
// its wall time (timer "minsat.minimum") and branch-and-bound search size
// (counter "minsat.search_nodes"); calls answered entirely from warm state
// increment "minsat.incremental_reuse". Clones inherit the recorder.
func (s *Solver) Instrument(rec obs.Recorder) { s.rec = rec }

// New returns a solver over variables 0..n-1.
func New(n int) *Solver {
	return &Solver{n: n, keys: make(map[string]bool)}
}

// NumVars reports the size of the variable universe.
func (s *Solver) NumVars() int { return s.n }

// Clone returns an independent copy of the solver's clause set and warm
// search state. TRACER's multi-query driver clones solvers when a query
// group splits (§6); the clone resumes with its parent's bound and cached
// model, so a group's first Minimum after a split is incremental too.
func (s *Solver) Clone() *Solver {
	out := New(s.n)
	out.rec = s.rec
	out.clauses = append([]Clause(nil), s.clauses...)
	for k := range s.keys {
		out.keys[k] = true
	}
	out.sig, out.sigOK = s.sig, s.sigOK
	if s.eng != nil {
		out.eng = s.eng.clone()
	}
	return out
}

// Signature is a canonical identity of the clause set; query groups are
// keyed by it (two queries share a group iff their unviable abstraction
// sets — hence their clauses — coincide). The result is cached until the
// next clause insertion.
func (s *Solver) Signature() string {
	if s.sigOK {
		return s.sig
	}
	ks := make([]string, 0, len(s.keys))
	for k := range s.keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	b := make([]byte, 0, 16*len(ks))
	for _, k := range ks {
		b = append(b, k...)
		b = append(b, ';')
	}
	s.sig, s.sigOK = string(b), true
	return s.sig
}

// NumClauses reports how many (deduplicated) clauses have been added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Add inserts a clause. Duplicate clauses (after canonicalization) are
// ignored. Adding an empty clause makes the formula unsatisfiable.
func (s *Solver) Add(c Clause) {
	canon := canonicalize(c)
	if canon == nil {
		return // tautology
	}
	k := key(canon)
	if s.keys[k] {
		return
	}
	s.keys[k] = true
	s.clauses = append(s.clauses, canon)
	s.sig, s.sigOK = "", false
}

// Block adds the blocking clause for a cube: "no abstraction with all of
// pos on and all of neg off", i.e. the clause ⋁{¬x | x ∈ pos} ∨ ⋁{x | x ∈ neg}.
// An empty cube blocks every abstraction (adds the empty clause).
func (s *Solver) Block(pos, neg uset.Set) {
	s.Add(BlockingClause(pos, neg))
}

// BlockingClause builds the blocking clause of a cube without adding it —
// the warm-start layer uses it to turn stored cubes back into clauses.
func BlockingClause(pos, neg uset.Set) Clause {
	c := make(Clause, 0, pos.Len()+neg.Len())
	for _, v := range pos.Elems() {
		c = append(c, Lit{Var: v, Neg: true})
	}
	for _, v := range neg.Elems() {
		c = append(c, Lit{Var: v})
	}
	return c
}

// SeedClauses bulk-loads clauses carried over from a previous solve (the
// warm-start entry point). Semantically it is just Add in a loop; it reports
// how many clauses were genuinely added after canonicalization and
// deduplication, so callers can account seeded clauses separately from
// learned ones.
func (s *Solver) SeedClauses(cs []Clause) int {
	before := len(s.clauses)
	for _, c := range cs {
		s.Add(c)
	}
	return len(s.clauses) - before
}

// canonicalize sorts, dedups, and detects tautologies (returns nil for a
// tautological clause, which can be dropped; an empty non-nil clause is
// falsity).
func canonicalize(c Clause) Clause {
	out := make(Clause, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return !out[i].Neg && out[j].Neg
	})
	dedup := out[:0]
	for i, l := range out {
		if i > 0 && l == out[i-1] {
			continue
		}
		if i > 0 && l.Var == out[i-1].Var && l.Neg != out[i-1].Neg {
			return nil // x ∨ ¬x
		}
		dedup = append(dedup, l)
	}
	if len(dedup) == 0 {
		return Clause{} // preserve "empty clause = false"
	}
	return dedup
}

func key(c Clause) string {
	b := make([]byte, 0, len(c)*4)
	for _, l := range c {
		if l.Neg {
			b = append(b, '-')
		}
		b = appendInt(b, l.Var)
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Three-valued assignment cells of the dense engine.
const (
	unassigned int8 = iota
	vFalse
	vTrue
)

// Warm-result states carried between Minimum calls.
const (
	warmNone  int8 = iota
	warmModel      // model/floor hold the last minimum and its cost
	warmUnsat      // a search proved UNSAT (sticky: clauses only shrink the model set)
)

// engine is the incremental core behind a Solver: a dense mirror of the
// clause set (variables renamed to contiguous indices, clauses as packed
// literal words, per-variable occurrence lists) plus the warm result of the
// previous search. The mirror is append-only and synced lazily from
// Solver.clauses, so Add stays cheap and clones share the already-built
// prefix. Scratch arrays (assignment, trail, lower-bound stamps) are not
// cloned; they are rebuilt on the next search.
type engine struct {
	vmap   map[int]int32 // external variable -> dense index
	dvar   []int         // dense index -> external variable
	cls    [][]int32     // dense clauses; literal = dense<<1 | neg
	occ    [][]int32     // dense variable -> indices of clauses mentioning it
	synced int           // prefix of Solver.clauses mirrored into cls

	// hasEmpty records that an empty clause (falsity) was added; the formula
	// is then permanently unsatisfiable.
	hasEmpty bool

	// Warm result. model is the minimum model of the first `checked` clauses
	// (when warm == warmModel); floor is its cost, which stays a valid lower
	// bound for every extension of the clause set.
	warm    int8
	model   uset.Set
	floor   int
	checked int

	// Branch order: dense indices sorted by external variable index, so the
	// DFS still visits models in external lexicographic order. Rebuilt (as a
	// fresh slice — clones may share the old one) when a variable interns.
	order   []int32
	orderOK bool

	// Search scratch, reset at the start of every run.
	assign  []int8
	trail   []int32
	posBuf  []int32
	lbUsed  []uint64
	lbEpoch uint64
}

// engine returns the solver's engine, synced with every clause added since
// the previous call.
func (s *Solver) engine() *engine {
	if s.eng == nil {
		s.eng = &engine{vmap: make(map[int]int32), floor: -1}
	}
	e := s.eng
	for _, c := range s.clauses[e.synced:] {
		e.addClause(c)
	}
	e.synced = len(s.clauses)
	return e
}

// addClause mirrors one canonical clause into the dense index.
func (e *engine) addClause(c Clause) {
	ci := int32(len(e.cls))
	if len(c) == 0 {
		e.hasEmpty = true
		e.cls = append(e.cls, nil) // keep clause indices aligned
		return
	}
	row := make([]int32, len(c))
	for i, l := range c {
		dv, ok := e.vmap[l.Var]
		if !ok {
			dv = int32(len(e.dvar))
			e.vmap[l.Var] = dv
			e.dvar = append(e.dvar, l.Var)
			e.occ = append(e.occ, nil)
			e.orderOK = false
		}
		lit := dv << 1
		if l.Neg {
			lit |= 1
		}
		row[i] = lit
		e.occ[dv] = append(e.occ[dv], ci)
	}
	e.cls = append(e.cls, row)
}

// clone copies the engine for an independent solver. Append-only slices are
// shared with their capacity clamped to the current length, so a later
// append by either side reallocates instead of scribbling on the shared
// backing array (clones are taken concurrently by the batch scheduler).
func (e *engine) clone() *engine {
	ne := &engine{
		vmap:     make(map[int]int32, len(e.vmap)),
		dvar:     e.dvar[:len(e.dvar):len(e.dvar)],
		cls:      e.cls[:len(e.cls):len(e.cls)],
		occ:      make([][]int32, len(e.occ)),
		synced:   e.synced,
		hasEmpty: e.hasEmpty,
		warm:     e.warm,
		model:    e.model,
		floor:    e.floor,
		checked:  e.checked,
		order:    e.order,
		orderOK:  e.orderOK,
	}
	for v, dv := range e.vmap {
		ne.vmap[v] = dv
	}
	for i, o := range e.occ {
		ne.occ[i] = o[:len(o):len(o)]
	}
	return ne
}

// ensureOrder rebuilds the branch order after new variables interned.
func (e *engine) ensureOrder() {
	if e.orderOK {
		return
	}
	order := make([]int32, len(e.dvar))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return e.dvar[order[i]] < e.dvar[order[j]] })
	e.order = order
	e.orderOK = true
}

// scanClause classifies a dense clause under the current assignment:
// satisfied, or the count of unassigned literals and one of them (the unit
// when unCount == 1).
func (e *engine) scanClause(c []int32) (sat bool, unCount int, unit int32) {
	for _, lit := range c {
		switch e.assign[lit>>1] {
		case unassigned:
			unCount++
			unit = lit
		case vTrue:
			if lit&1 == 0 {
				return true, 0, 0
			}
		case vFalse:
			if lit&1 == 1 {
				return true, 0, 0
			}
		}
	}
	return false, unCount, unit
}

// Minimum returns a minimum-cost model of the accumulated clauses as the
// set of true variables, or ok=false if the formula is unsatisfiable.
func (s *Solver) Minimum() (model uset.Set, ok bool) {
	return s.MinimumBudget(nil)
}

// MinimumBudget is Minimum under a cooperative budget: the branch-and-bound
// search polls b once on entry and once per node, and abandons the search
// when the budget trips, returning ok=false even if some (possibly
// non-minimum) model was already found. Callers must therefore check
// b.Tripped() before reading ok=false as unsatisfiability. A nil budget
// never trips. An aborted call leaves the warm state untouched, so the
// bound carried from the last completed call stays valid.
func (s *Solver) MinimumBudget(b *budget.Budget) (model uset.Set, ok bool) {
	nodes := 0
	reused := false
	if s.rec != nil && s.rec.Enabled() {
		start := time.Now()
		defer func() {
			s.rec.Timing(obs.MinsatMinimum, time.Since(start))
			s.rec.Count(obs.MinsatSearchNodes, int64(nodes))
			if reused {
				s.rec.Count(obs.MinsatIncrementalReuse, 1)
			}
		}()
	}
	e := s.engine()
	if !b.Poll() {
		return nil, false
	}
	if e.hasEmpty {
		if e.warm == warmUnsat {
			reused = true
		} else {
			e.warm, e.model = warmUnsat, nil
		}
		return nil, false
	}
	switch e.warm {
	case warmUnsat:
		reused = true
		return nil, false
	case warmModel:
		// The cached model is the lex-least minimum of the first `checked`
		// clauses. If it also satisfies every clause added since, it is still
		// the answer: the new model set is a subset of the old one and still
		// contains its cheapest, lex-least element.
		stillSat := true
		for _, c := range s.clauses[e.checked:] {
			if !clauseSatisfied(c, e.model) {
				stillSat = false
				break
			}
		}
		if stillSat {
			e.checked = len(s.clauses)
			reused = true
			return e.model, true
		}
	}
	m, found, aborted := e.run(b, &nodes)
	if aborted {
		return nil, false
	}
	if !found {
		e.warm, e.model = warmUnsat, nil
		return nil, false
	}
	e.warm, e.model, e.floor, e.checked = warmModel, m, m.Len(), len(s.clauses)
	return m, true
}

// clauseSatisfied reports whether the model (set of true variables)
// satisfies the clause.
func clauseSatisfied(c Clause, model uset.Set) bool {
	for _, l := range c {
		if model.Has(l.Var) != l.Neg {
			return true
		}
	}
	return false
}

// run executes the branch-and-bound search over the dense clause index. It
// explores the identical DFS tree a fresh solver would (same branch order,
// same propagation fixpoints, same pruning), with one addition: when a warm
// floor is available and a model matching it is found, the search stops
// there — the floor is a proven lower bound, and the first floor-cost model
// in the false-first DFS is the lex-least minimum.
func (e *engine) run(b *budget.Budget, nodes *int) (model uset.Set, found, aborted bool) {
	e.ensureOrder()
	nv := len(e.dvar)
	if len(e.assign) < nv {
		e.assign = make([]int8, nv)
		e.lbUsed = make([]uint64, nv)
		e.lbEpoch = 0
	} else {
		for i := range e.assign {
			e.assign[i] = unassigned
		}
	}
	e.trail = e.trail[:0]

	best := -1
	var bestModel []int
	floor := -1
	if e.warm == warmModel {
		floor = e.floor
	}
	done := false
	abort := false

	// propagate drains the trail from position start: each newly assigned
	// variable rescans only the clauses that mention it (occurrence lists),
	// assigning units and detecting conflicts until fixpoint. Unit
	// propagation is confluent, so the fixpoint — and whether a conflict
	// exists in it — does not depend on the scan order.
	propagate := func(start int) (setTrue int, conflict bool) {
		for qi := start; qi < len(e.trail); qi++ {
			for _, ci := range e.occ[e.trail[qi]] {
				sat, unCount, unit := e.scanClause(e.cls[ci])
				if sat {
					continue
				}
				switch unCount {
				case 0:
					return setTrue, true
				case 1:
					uv := unit >> 1
					if unit&1 == 1 {
						e.assign[uv] = vFalse
					} else {
						e.assign[uv] = vTrue
						setTrue++
					}
					e.trail = append(e.trail, uv)
				}
			}
		}
		return setTrue, false
	}

	// rootPropagate seeds the trail from the initially-unit clauses (there
	// are no assignments yet, so only those can propagate) and drains it.
	rootPropagate := func() (setTrue int, conflict bool) {
		for _, c := range e.cls {
			sat, unCount, unit := e.scanClause(c)
			if sat {
				continue
			}
			switch unCount {
			case 0:
				return setTrue, true
			case 1:
				uv := unit >> 1
				if unit&1 == 1 {
					e.assign[uv] = vFalse
				} else {
					e.assign[uv] = vTrue
					setTrue++
				}
				e.trail = append(e.trail, uv)
			}
		}
		st, conf := propagate(0)
		return setTrue + st, conf
	}

	// lowerBound counts pairwise variable-disjoint unsatisfied clauses whose
	// unassigned literals are all positive: each forces at least one more
	// true variable, so their count is an admissible bound. Visiting clauses
	// in insertion order keeps the greedy count identical to a fresh
	// solver's. The epoch-stamped lbUsed array replaces a per-call map.
	pos := e.posBuf
	lowerBound := func() int {
		e.lbEpoch++
		epoch := e.lbEpoch
		lb := 0
	clauseLoop:
		for _, c := range e.cls {
			pos = pos[:0]
			for _, lit := range c {
				v := lit >> 1
				switch e.assign[v] {
				case vTrue:
					if lit&1 == 0 {
						continue clauseLoop // satisfied
					}
				case vFalse:
					if lit&1 == 1 {
						continue clauseLoop // satisfied
					}
				case unassigned:
					if lit&1 == 1 {
						continue clauseLoop // satisfiable for free
					}
					pos = append(pos, v)
				}
			}
			for _, v := range pos {
				if e.lbUsed[v] == epoch {
					continue clauseLoop // overlaps a counted clause
				}
			}
			for _, v := range pos {
				e.lbUsed[v] = epoch
			}
			lb++
		}
		return lb
	}

	var search func(idx int32, cost int, branched int32)
	search = func(idx int32, cost int, branched int32) {
		if abort || done {
			return
		}
		if !b.Poll() {
			abort = true
			return
		}
		*nodes++
		if best >= 0 && cost >= best {
			return // bound: cannot improve
		}
		mark := len(e.trail)
		var extraTrue int
		var conflict bool
		if branched < 0 {
			extraTrue, conflict = rootPropagate()
		} else {
			e.trail = append(e.trail, branched)
			extraTrue, conflict = propagate(mark)
		}
		undo := func() {
			for _, v := range e.trail[mark:] {
				e.assign[v] = unassigned
			}
			e.trail = e.trail[:mark]
		}
		cost += extraTrue
		if conflict || (best >= 0 && cost >= best) {
			undo()
			return
		}
		if best >= 0 && cost+lowerBound() >= best {
			undo()
			return
		}
		// Find the next unassigned branch variable.
		i := idx
		for int(i) < len(e.order) && e.assign[e.order[i]] != unassigned {
			i++
		}
		if int(i) == len(e.order) {
			// All mentioned variables assigned and no conflict: model found.
			if best < 0 || cost < best {
				best = cost
				bestModel = bestModel[:0]
				for _, dv := range e.order {
					if e.assign[dv] == vTrue {
						bestModel = append(bestModel, e.dvar[dv])
					}
				}
				if floor >= 0 && best == floor {
					done = true // proven minimum: skip the optimality proof
				}
			}
			undo()
			return
		}
		v := e.order[i]
		e.assign[v] = vFalse // cheap branch first → lexicographically least
		search(i+1, cost, v)
		if abort || done {
			return // scratch is reset at the next run
		}
		e.assign[v] = vTrue
		search(i+1, cost+1, v)
		e.assign[v] = unassigned
		undo()
	}
	// Note the trail push above: the branch variable itself is appended by
	// the child (via `branched`), so propagate sees it as the queue seed;
	// undo then clears it together with its consequences, and the parent
	// reassigns for the true branch.
	search(0, 0, -1)
	e.posBuf = pos[:0]
	if abort {
		return nil, false, true
	}
	if best < 0 {
		return nil, false, false
	}
	return uset.New(bestModel...), true, false
}

// Satisfies reports whether the model (set of true variables) satisfies all
// accumulated clauses.
func (s *Solver) Satisfies(model uset.Set) bool {
	for _, c := range s.clauses {
		if !clauseSatisfied(c, model) {
			return false
		}
	}
	return true
}
