package minsat_test

import (
	"fmt"

	"tracer/internal/minsat"
	"tracer/internal/uset"
)

// ExampleSolver_Minimum blocks two abstraction cubes the way TRACER does
// and asks for the cheapest surviving abstraction.
func ExampleSolver_Minimum() {
	s := minsat.New(4)
	// "No abstraction without parameter 1 can prove the query."
	s.Block(nil, uset.New(1))
	// "No abstraction with 1 but without 3 can prove it either."
	s.Block(uset.New(1), uset.New(3))
	model, ok := s.Minimum()
	fmt.Println(ok, model)
	// Output: true {1,3}
}
