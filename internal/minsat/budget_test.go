package minsat

import (
	"math/rand"
	"testing"
	"time"

	"tracer/internal/budget"
	"tracer/internal/uset"
)

// hardInstance builds a random vertex-cover formula: a clause (xi ∨ xj) for
// ~30% of the pairs i < j < n. Unlike the complete graph (which unit
// propagation collapses), sparse instances make the branch-and-bound search
// visit many thousands of nodes — far more than one polling interval.
func hardInstance(n int) *Solver {
	rng := rand.New(rand.NewSource(1))
	s := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(100) < 30 {
				s.Add(Clause{{Var: i}, {Var: j}})
			}
		}
	}
	return s
}

// TestMinimumBudgetNil: a nil budget behaves exactly like Minimum.
func TestMinimumBudgetNil(t *testing.T) {
	s := hardInstance(8)
	m, ok := s.MinimumBudget(nil)
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	want, _ := bruteMinimum(s, 8)
	if !m.Equal(want) {
		t.Fatalf("model = %v, want %v", m, want)
	}
}

// TestMinimumBudgetAbort: an expired deadline abandons the search with
// ok=false and a tripped budget, so callers can tell "aborted" from "unsat".
func TestMinimumBudgetAbort(t *testing.T) {
	s := hardInstance(60)
	b := budget.New(nil, time.Now().Add(-time.Second), 0)
	start := time.Now()
	_, ok := s.MinimumBudget(b)
	if ok {
		t.Fatal("aborted search returned a model")
	}
	if !b.Tripped() || b.Cause() != budget.Deadline {
		t.Fatalf("budget cause = %v, want deadline", b.Cause())
	}
	// The instance takes far longer than this to solve exactly; an aborted
	// search must return almost immediately (one polling interval of nodes).
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("aborted search took %v", d)
	}
	// The formula is satisfiable: a fresh un-budgeted search proves it.
	if _, ok := hardInstance(60).Minimum(); !ok {
		t.Fatal("control: hard instance reported unsat without a budget")
	}
}

// TestMinimumBudgetStepQuota: the per-node poll enforces a step quota.
func TestMinimumBudgetStepQuota(t *testing.T) {
	s := hardInstance(60)
	b := budget.New(nil, time.Time{}, 50)
	_, ok := s.MinimumBudget(b)
	if ok {
		t.Fatal("quota-tripped search returned a model")
	}
	if b.Cause() != budget.Steps {
		t.Fatalf("cause = %v, want steps", b.Cause())
	}
}

// TestMinimumBudgetPreTripped: a budget tripped before the call aborts the
// search immediately without touching the clause set's answer.
func TestMinimumBudgetPreTripped(t *testing.T) {
	s := New(4)
	s.Block(nil, uset.New(0)) // clause (x0): trivially satisfiable
	b := budget.New(nil, time.Time{}, 0)
	b.Trip(budget.Injected)
	if _, ok := s.MinimumBudget(b); ok {
		t.Fatal("pre-tripped budget still produced a model")
	}
	if m, ok := s.Minimum(); !ok || !m.Equal(uset.New(0)) {
		t.Fatalf("control Minimum = %v, %v", m, ok)
	}
}
