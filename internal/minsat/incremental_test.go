package minsat

import (
	"math/rand"
	"testing"
	"time"

	"tracer/internal/budget"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// freshMinimum rebuilds a solver from scratch over the same clause set and
// solves it, so every differential test below compares the incremental
// answer against one computed with no warm state at all.
func freshMinimum(s *Solver) (uset.Set, bool) {
	f := New(s.NumVars())
	for _, c := range s.clauses {
		f.Add(append(Clause(nil), c...))
	}
	return f.Minimum()
}

// randClause draws a non-tautological clause over n variables.
func randClause(rng *rand.Rand, n int) Clause {
	var c Clause
	for len(c) == 0 {
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				c = append(c, Lit{Var: v, Neg: rng.Intn(2) == 0})
			}
		}
	}
	return c
}

// TestIncrementalMatchesFresh drives one solver through a CEGAR-shaped
// clause sequence — solve, add a batch of clauses, solve again — and pins
// every incremental answer against a from-scratch solver (and, on small
// universes, against brute-force enumeration). Once UNSAT is reached, the
// verdict must stay sticky and still match the fresh solver.
func TestIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 8
	for trial := 0; trial < 120; trial++ {
		s := New(n)
		for round := 0; round < 12; round++ {
			for i := rng.Intn(3); i >= 0; i-- {
				s.Add(randClause(rng, n))
			}
			got, ok := s.Minimum()
			want, wantOK := freshMinimum(s)
			if ok != wantOK {
				t.Fatalf("trial %d round %d: sat=%v fresh=%v", trial, round, ok, wantOK)
			}
			brute, bruteOK := bruteMinimum(s, n)
			if ok != bruteOK {
				t.Fatalf("trial %d round %d: sat=%v brute=%v", trial, round, ok, bruteOK)
			}
			if !ok {
				continue
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d round %d: model %v, fresh %v", trial, round, got, want)
			}
			if !got.Equal(brute) {
				t.Fatalf("trial %d round %d: model %v, brute %v", trial, round, got, brute)
			}
		}
	}
}

// TestIncrementalBlocksOwnModel mirrors the real CEGAR interaction: each
// round blocks the model just returned, so the cached model never survives
// and the warm path exercised is the floor-bounded re-search.
func TestIncrementalBlocksOwnModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 9
	for trial := 0; trial < 40; trial++ {
		s := New(n)
		for i := 0; i < 4; i++ {
			s.Add(randClause(rng, n))
		}
		for round := 0; ; round++ {
			got, ok := s.Minimum()
			want, wantOK := freshMinimum(s)
			if ok != wantOK {
				t.Fatalf("trial %d round %d: sat=%v fresh=%v", trial, round, ok, wantOK)
			}
			if !ok {
				break
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d round %d: model %v, fresh %v", trial, round, got, want)
			}
			// Block exactly this abstraction, as learnCubes does.
			s.Block(got, nil)
			if round > 1<<n {
				t.Fatalf("trial %d: blocking loop failed to terminate", trial)
			}
		}
	}
}

// TestIncrementalCloneDivergence: clones inherit warm state but diverge
// independently; both lineages must keep matching fresh solvers.
func TestIncrementalCloneDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n = 8
	for trial := 0; trial < 60; trial++ {
		s := New(n)
		for i := 0; i < 3; i++ {
			s.Add(randClause(rng, n))
		}
		s.Minimum() // warm the parent
		c := s.Clone()
		s.Add(randClause(rng, n))
		c.Add(randClause(rng, n))
		c.Add(randClause(rng, n))
		for name, sv := range map[string]*Solver{"parent": s, "clone": c} {
			got, ok := sv.Minimum()
			want, wantOK := freshMinimum(sv)
			if ok != wantOK || (ok && !got.Equal(want)) {
				t.Fatalf("trial %d %s: got %v,%v fresh %v,%v", trial, name, got, ok, want, wantOK)
			}
		}
	}
}

// TestIncrementalAbortKeepsWarmState: a budget-aborted call must not
// corrupt the warm state — the next unbudgeted call still answers exactly
// like a fresh solver.
func TestIncrementalAbortKeepsWarmState(t *testing.T) {
	s := hardInstance(40)
	if _, ok := s.Minimum(); !ok {
		t.Fatal("hard instance unexpectedly unsat")
	}
	// Block the cached model so the next solve cannot take the zero-search
	// path, then abort it immediately.
	m, _ := s.Minimum()
	s.Block(m, nil)
	b := budget.New(nil, time.Now().Add(-time.Second), 0)
	if _, ok := s.MinimumBudget(b); ok {
		t.Fatal("aborted search returned a model")
	}
	got, ok := s.Minimum()
	want, wantOK := freshMinimum(s)
	if ok != wantOK || !got.Equal(want) {
		t.Fatalf("post-abort minimum %v,%v; fresh %v,%v", got, ok, want, wantOK)
	}
}

// TestIncrementalReuseCounter: the zero-search paths — unchanged clause
// set, still-satisfied model, sticky UNSAT — all count on
// minsat.incremental_reuse; a genuine re-search does not.
func TestIncrementalReuseCounter(t *testing.T) {
	agg := obs.NewAgg()
	s := New(6)
	s.Instrument(agg)
	s.Add(Clause{{Var: 0}, {Var: 1}})
	s.Minimum() // cold: search
	if n := agg.Counter(obs.MinsatIncrementalReuse); n != 0 {
		t.Fatalf("cold solve counted %d reuses", n)
	}
	s.Minimum() // unchanged clause set
	if n := agg.Counter(obs.MinsatIncrementalReuse); n != 1 {
		t.Fatalf("unchanged-set reuse = %d, want 1", n)
	}
	s.Add(Clause{{Var: 2}, {Var: 1}}) // satisfied by the cached model {1}
	s.Minimum()
	if n := agg.Counter(obs.MinsatIncrementalReuse); n != 2 {
		t.Fatalf("model-still-satisfies reuse = %d, want 2", n)
	}
	s.Add(Clause{{Var: 1, Neg: true}}) // blocks the cached model
	s.Minimum()
	if n := agg.Counter(obs.MinsatIncrementalReuse); n != 2 {
		t.Fatalf("re-search counted as reuse: %d", n)
	}
	s.Block(nil, nil) // empty clause: UNSAT
	s.Minimum()       // proves UNSAT (not a reuse: first detection)
	s.Minimum()       // sticky UNSAT: reuse
	if n := agg.Counter(obs.MinsatIncrementalReuse); n != 3 {
		t.Fatalf("sticky-unsat reuse = %d, want 3", n)
	}
}

// BenchmarkMinimumIncremental measures the CEGAR-shaped resolve loop —
// solve, block the returned model, solve again — with warm state ("warm")
// against rebuilding the solver from scratch each round ("fresh").
func BenchmarkMinimumIncremental(b *testing.B) {
	const vars, rounds = 36, 12
	run := func(b *testing.B, fresh bool) {
		for i := 0; i < b.N; i++ {
			s := hardInstance(vars)
			for r := 0; r < rounds; r++ {
				m, ok := s.Minimum()
				if !ok {
					break
				}
				s.Block(m, nil)
				if fresh {
					s = s.Clone()
					s.eng = nil // discard the warm engine: next solve is cold
				}
			}
		}
	}
	b.Run("warm", func(b *testing.B) { run(b, false) })
	b.Run("fresh", func(b *testing.B) { run(b, true) })
}
