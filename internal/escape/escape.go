// Package escape implements the parametric thread-escape analysis of §3.2
// (Fig 5) and its backward meta-analysis (Fig 11).
//
// The analysis abstracts heap objects by two locations: L (thread-local
// only, possibly missing some local objects) and E (escaping objects, null,
// and possibly some local ones), with the invariant that E-summarized
// objects are closed under pointer reachability. The abstraction parameter
// p : H → {L, E} chooses, per allocation site, which summary its objects
// get; cost is the number of L-mapped sites. An abstract state maps locals
// and (fields of L objects) to {L, E, N}.
package escape

import (
	"fmt"
	"sort"
	"strings"

	"tracer/internal/dataflow"
	"tracer/internal/intern"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// Value is an abstract value: N (null), L (thread-local), or E (possibly
// escaping).
type Value uint8

const (
	N Value = iota
	L
	E
)

func (v Value) String() string {
	switch v {
	case N:
		return "N"
	case L:
		return "L"
	case E:
		return "E"
	}
	return "?"
}

// Values lists the abstract values, used when expanding literal negations.
var Values = [3]Value{N, L, E}

// State is an interned environment (locals ++ fields → Value).
type State int

// Analysis is the parametric thread-escape analysis over a fixed universe
// of locals, fields, and allocation sites.
type Analysis struct {
	Locals *intern.Strings
	Fields *intern.Strings
	Sites  *intern.Strings

	envs *intern.Strings // interned environment payloads
}

// New builds an analysis over the given universes. Site indices are the
// parameter indices of the abstraction family (on = mapped to L).
func New(locals, fields, sites []string) *Analysis {
	a := &Analysis{
		Locals: intern.NewStrings(),
		Fields: intern.NewStrings(),
		Sites:  intern.NewStrings(),
		envs:   intern.NewStrings(),
	}
	for _, v := range locals {
		a.Locals.ID(v)
	}
	for _, f := range fields {
		a.Fields.ID(f)
	}
	for _, h := range sites {
		a.Sites.ID(h)
	}
	return a
}

// Universe collects the locals, fields, and sites mentioned by a CFG's
// atoms, each sorted, for building the analysis universe.
func Universe(g *lang.CFG) (locals, fields, sites []string) {
	lm, fm, hm := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, e := range g.Edges {
		switch a := e.A.(type) {
		case lang.Alloc:
			lm[a.V] = true
			hm[a.H] = true
		case lang.Move:
			lm[a.Dst] = true
			lm[a.Src] = true
		case lang.MoveNull:
			lm[a.V] = true
		case lang.GlobalWrite:
			lm[a.V] = true
		case lang.GlobalRead:
			lm[a.V] = true
		case lang.Load:
			lm[a.Dst] = true
			lm[a.Src] = true
			fm[a.F] = true
		case lang.Store:
			lm[a.Dst] = true
			lm[a.Src] = true
			fm[a.F] = true
		case lang.Invoke:
			lm[a.V] = true
		}
	}
	return sortedKeys(lm), sortedKeys(fm), sortedKeys(hm)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// slots is the environment width.
func (a *Analysis) slots() int { return a.Locals.Len() + a.Fields.Len() }

// localSlot and fieldSlot map names to environment slots.
func (a *Analysis) localSlot(v string) int { return a.Locals.ID(v) }
func (a *Analysis) fieldSlot(f string) int { return a.Locals.Len() + a.Fields.ID(f) }

// internEnv canonicalizes an environment payload. The payload is not
// retained (intern.Strings.IDBytes copies on miss), so callers may hand in
// reusable scratch buffers.
func (a *Analysis) internEnv(env []byte) State { return State(a.envs.IDBytes(env)) }

// env returns the payload of a state; the result must not be mutated.
func (a *Analysis) env(d State) string { return a.envs.Value(int(d)) }

// get reads slot i of state d.
func (a *Analysis) get(d State, i int) Value { return Value(a.env(d)[i]) }

// Local reads the abstract value of local v in d.
func (a *Analysis) Local(d State, v string) Value { return a.get(d, a.localSlot(v)) }

// Field reads the abstract value of field f in d.
func (a *Analysis) Field(d State, f string) Value { return a.get(d, a.fieldSlot(f)) }

// set returns d with slot i set to val.
func (a *Analysis) set(d State, i int, val Value) State {
	cur := a.env(d)
	if Value(cur[i]) == val {
		return d
	}
	// The edited payload usually names an already-interned state, so build it
	// in a stack buffer: internEnv only copies on a genuine miss.
	var arr [512]byte
	buf := editBuf(arr[:], cur)
	buf[i] = byte(val)
	return a.internEnv(buf)
}

// editBuf copies cur into arr when it fits, falling back to the heap for
// extraordinarily wide environments.
func editBuf(arr []byte, cur string) []byte {
	if len(cur) <= len(arr) {
		buf := arr[:len(cur)]
		copy(buf, cur)
		return buf
	}
	return []byte(cur)
}

// Initial returns the state mapping every local and field to N.
func (a *Analysis) Initial() State {
	return a.internEnv(make([]byte, a.slots()))
}

// StateOf builds a state from explicit local and field bindings; unnamed
// slots are N. It is intended for tests.
func (a *Analysis) StateOf(locals map[string]Value, fields map[string]Value) State {
	buf := make([]byte, a.slots())
	for v, val := range locals {
		buf[a.localSlot(v)] = byte(val)
	}
	for f, val := range fields {
		buf[a.fieldSlot(f)] = byte(val)
	}
	return a.internEnv(buf)
}

// AllStates enumerates the full abstract domain: every assignment of
// {L, E, N} to every local and field. Exponential (3^slots); for exhaustive
// soundness tests on small universes.
func (a *Analysis) AllStates() []State {
	n := a.slots()
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	out := make([]State, 0, total)
	buf := make([]byte, n)
	for i := 0; i < total; i++ {
		x := i
		for s := 0; s < n; s++ {
			buf[s] = byte(x % 3)
			x /= 3
		}
		out = append(out, a.internEnv(buf))
	}
	return out
}

// AllAbstractions enumerates the abstraction family 2^H. Exponential; for
// tests on small universes.
func (a *Analysis) AllAbstractions() []uset.Set {
	nh := a.Sites.Len()
	out := make([]uset.Set, 0, 1<<nh)
	for bits := 0; bits < 1<<nh; bits++ {
		var p uset.Set
		for h := 0; h < nh; h++ {
			if bits&(1<<h) != 0 {
				p = p.Add(h)
			}
		}
		out = append(out, p)
	}
	return out
}

// esc applies the escape collapse of Fig 5: locals keep N or become E;
// fields reset to N (no L objects remain).
func (a *Analysis) esc(d State) State {
	cur := a.env(d)
	var arr [512]byte
	buf := editBuf(arr[:], cur)
	for i := 0; i < a.Locals.Len(); i++ {
		if Value(buf[i]) != N {
			buf[i] = byte(E)
		}
	}
	for i := a.Locals.Len(); i < len(buf); i++ {
		buf[i] = byte(N)
	}
	return a.internEnv(buf)
}

// Format renders a state like the α annotations of Fig 6.
func (a *Analysis) Format(d State) string {
	var parts []string
	for i := 0; i < a.Locals.Len(); i++ {
		parts = append(parts, fmt.Sprintf("%s↦%s", a.Locals.Value(i), a.get(d, i)))
	}
	for i := 0; i < a.Fields.Len(); i++ {
		parts = append(parts, fmt.Sprintf("%s↦%s", a.Fields.Value(i), a.get(d, a.Locals.Len()+i)))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Transfer instantiates the transfer function [a]p of Fig 5 at abstraction
// p, the set of site indices mapped to L.
func (a *Analysis) Transfer(p uset.Set) dataflow.Transfer[State] {
	return func(at lang.Atom, d State) State {
		return a.step(p, at, d)
	}
}

// TransferDep is Transfer with dependency reporting for the incremental
// solver (dataflow.Chain): each application also returns the dependency
// literal naming the parameter it consulted. The escape transfer reads the
// abstraction in exactly one place — Alloc consults p.Has(site) to pick L
// or E for the fresh object; every other atom is a pure function of the
// abstract state.
func (a *Analysis) TransferDep(p uset.Set) dataflow.DepTransfer[State] {
	return func(at lang.Atom, d State) (State, int32) {
		lit := int32(0)
		if al, ok := at.(lang.Alloc); ok {
			lit = dataflow.DepLit(p, a.Sites.ID(al.H))
		}
		return a.step(p, at, d), lit
	}
}

func (a *Analysis) step(p uset.Set, at lang.Atom, d State) State {
	switch at := at.(type) {
	case lang.Alloc:
		val := E
		if p.Has(a.Sites.ID(at.H)) {
			val = L
		}
		return a.set(d, a.localSlot(at.V), val)
	case lang.Move:
		return a.set(d, a.localSlot(at.Dst), a.Local(d, at.Src))
	case lang.MoveNull:
		return a.set(d, a.localSlot(at.V), N)
	case lang.GlobalWrite:
		if a.Local(d, at.V) == L {
			return a.esc(d)
		}
		return d
	case lang.GlobalRead:
		return a.set(d, a.localSlot(at.V), E)
	case lang.Load:
		if a.Local(d, at.Src) == L {
			return a.set(d, a.localSlot(at.Dst), a.Field(d, at.F))
		}
		return a.set(d, a.localSlot(at.Dst), E)
	case lang.Store:
		v := a.Local(d, at.Dst)
		w := a.Local(d, at.Src)
		switch v {
		case N:
			return d
		case E:
			if w == L {
				return a.esc(d)
			}
			return d
		case L:
			if w == N {
				return d
			}
			fv := a.Field(d, at.F)
			switch {
			case fv == w:
				return d
			case fv == N:
				return a.set(d, a.fieldSlot(at.F), w)
			default: // {fv, w} = {L, E}
				return a.esc(d)
			}
		}
		return d
	case lang.Invoke:
		return d // interprocedural effects are spliced in by the RHS solver
	}
	return d
}

// Query asks whether local V is thread-local (never E) at a program point —
// the local(v) query of Fig 6 and of the datarace client in §6. A source
// point may correspond to several CFG nodes after inlining.
type Query struct {
	Nodes []int
	V     string
}

// Holds reports whether a single abstract state satisfies the query.
func (a *Analysis) Holds(q Query, d State) bool { return a.Local(d, q.V) != E }
