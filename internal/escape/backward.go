package escape

import (
	"fmt"

	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// The primitive formulas of the thread-escape meta-analysis (§4.1):
//
//	h.o — the abstraction maps site h to o (o ∈ {L, E})
//	v.o — the abstract state binds local v to o (o ∈ {L, E, N})
//	f.o — the abstract state binds field f to o
//
// All negations expand positively (¬v.L ≡ v.E ∨ v.N, ¬h.L ≡ h.E), so DNF
// formulas contain only positive literals.

// PSite is the primitive h.o; O must be L or E.
type PSite struct {
	H string
	O Value
}

// PLocal is the primitive v.o.
type PLocal struct {
	V string
	O Value
}

// PField is the primitive f.o.
type PField struct {
	F string
	O Value
}

func (p PSite) Key() string     { return "h:" + p.H + ":" + p.O.String() }
func (p PLocal) Key() string    { return "v:" + p.V + ":" + p.O.String() }
func (p PField) Key() string    { return "f:" + p.F + ":" + p.O.String() }
func (p PSite) String() string  { return p.H + "." + p.O.String() }
func (p PLocal) String() string { return p.V + "." + p.O.String() }
func (p PField) String() string { return p.F + "." + p.O.String() }

// Theory is the literal theory of the thread-escape meta-analysis.
type Theory struct{}

// NegLit expands ¬(x.o) into the disjunction of the other values of the
// same subject; sites range over {L, E}, locals and fields over {L, E, N}.
func (Theory) NegLit(l formula.Lit) ([]formula.Lit, bool) {
	switch p := l.P.(type) {
	case PSite:
		other := L
		if p.O == L {
			other = E
		}
		return []formula.Lit{{P: PSite{p.H, other}}}, true
	case PLocal:
		var out []formula.Lit
		for _, o := range Values {
			if o != p.O {
				out = append(out, formula.Lit{P: PLocal{p.V, o}})
			}
		}
		return out, true
	case PField:
		var out []formula.Lit
		for _, o := range Values {
			if o != p.O {
				out = append(out, formula.Lit{P: PField{p.F, o}})
			}
		}
		return out, true
	}
	return nil, false
}

// Implies: only identical positive literals entail each other (the fast,
// highly incomplete checker the paper describes for this analysis).
func (Theory) Implies(a, b formula.Lit) bool { return a == b }

// Contradicts: two positive literals about the same subject (site, local,
// or field) with different values are mutually exclusive. The comparison is
// allocation-free — unsat pruning calls this on every literal pair of every
// candidate disjunct, making it the meta-analysis's hottest path.
func (Theory) Contradicts(a, b formula.Lit) bool {
	if a.Neg || b.Neg {
		return false
	}
	switch pa := a.P.(type) {
	case PSite:
		pb, ok := b.P.(PSite)
		return ok && pa.H == pb.H && pa.O != pb.O
	case PLocal:
		pb, ok := b.P.(PLocal)
		return ok && pa.V == pb.V && pa.O != pb.O
	case PField:
		pb, ok := b.P.(PField)
		return ok && pa.F == pb.F && pa.O != pb.O
	}
	return false
}

// EvalLit evaluates a literal at abstraction p (set of L-mapped site
// indices) and state d.
func (a *Analysis) EvalLit(l formula.Lit, p uset.Set, d State) bool {
	v := a.evalPrim(l.P, p, d)
	if l.Neg {
		return !v
	}
	return v
}

func (a *Analysis) evalPrim(pr formula.Prim, p uset.Set, d State) bool {
	switch pr := pr.(type) {
	case PSite:
		mapped := E
		if p.Has(a.Sites.ID(pr.H)) {
			mapped = L
		}
		return mapped == pr.O
	case PLocal:
		return a.Local(d, pr.V) == pr.O
	case PField:
		return a.Field(d, pr.F) == pr.O
	}
	panic(fmt.Sprintf("escape: unknown primitive %T", pr))
}

// Literal constructors.
func lv(v string, o Value) formula.Formula { return formula.L(PLocal{v, o}) }
func lf(f string, o Value) formula.Formula { return formula.L(PField{f, o}) }
func lh(h string, o Value) formula.Formula { return formula.L(PSite{h, o}) }

// escWP is the weakest precondition of a primitive across the esc collapse:
// locals keep N or become E; fields become N.
func escWP(pr formula.Prim) formula.Formula {
	switch pr := pr.(type) {
	case PLocal:
		switch pr.O {
		case N:
			return lv(pr.V, N)
		case E:
			return formula.Or(lv(pr.V, L), lv(pr.V, E))
		case L:
			return formula.False()
		}
	case PField:
		if pr.O == N {
			return formula.True()
		}
		return formula.False()
	case PSite:
		return formula.L(pr)
	}
	panic("escape: bad primitive")
}

// WP returns the weakest precondition [at]♭(π) of a positive primitive π
// (Fig 11, derived per primitive; soundness is verified exhaustively in the
// tests against the forward transfer functions).
func (a *Analysis) WP(at lang.Atom, prim formula.Prim) formula.Formula {
	if _, ok := prim.(PSite); ok {
		return formula.L(prim) // the abstraction never changes
	}
	switch at := at.(type) {
	case lang.Alloc:
		if pl, ok := prim.(PLocal); ok && pl.V == at.V {
			if pl.O == N {
				return formula.False()
			}
			return lh(at.H, pl.O)
		}
		return formula.L(prim)
	case lang.Move:
		if pl, ok := prim.(PLocal); ok && pl.V == at.Dst {
			return lv(at.Src, pl.O)
		}
		return formula.L(prim)
	case lang.MoveNull:
		if pl, ok := prim.(PLocal); ok && pl.V == at.V {
			if pl.O == N {
				return formula.True()
			}
			return formula.False()
		}
		return formula.L(prim)
	case lang.GlobalRead:
		if pl, ok := prim.(PLocal); ok && pl.V == at.V {
			if pl.O == E {
				return formula.True()
			}
			return formula.False()
		}
		return formula.L(prim)
	case lang.Load:
		pl, ok := prim.(PLocal)
		if !ok || pl.V != at.Dst {
			return formula.L(prim)
		}
		switch pl.O {
		case L:
			return formula.And(lv(at.Src, L), lf(at.F, L))
		case N:
			return formula.And(lv(at.Src, L), lf(at.F, N))
		case E:
			return formula.Or(
				formula.And(lv(at.Src, L), lf(at.F, E)),
				lv(at.Src, E), lv(at.Src, N))
		}
	case lang.GlobalWrite:
		v := at.V
		switch pr := prim.(type) {
		case PLocal:
			switch pr.O {
			case N:
				return lv(pr.V, N)
			case E:
				return formula.Or(lv(pr.V, E), formula.And(lv(pr.V, L), lv(v, L)))
			case L:
				return formula.And(lv(pr.V, L), formula.Or(lv(v, E), lv(v, N)))
			}
		case PField:
			switch pr.O {
			case N:
				return formula.Or(lf(pr.F, N), lv(v, L))
			default:
				return formula.And(lf(pr.F, pr.O), formula.Or(lv(v, E), lv(v, N)))
			}
		}
	case lang.Store:
		return a.wpStore(at, prim)
	case lang.Invoke:
		return formula.L(prim)
	}
	return formula.L(prim)
}

// wpStore handles v.f = w, the richest rule of Fig 11. The forward transfer
// has three behaviours, whose guard formulas over the pre-state are:
//
//	ID  — no change
//	UPD — field f updated to the value of w (requires f = N beforehand)
//	ESC — the esc collapse (mixing L and E)
//
// The guards are mutually exclusive and total.
func (a *Analysis) wpStore(at lang.Store, prim formula.Prim) formula.Formula {
	v, w, f := at.Dst, at.Src, at.F
	id := formula.Or(
		lv(v, N),
		formula.And(lv(v, E), formula.Or(lv(w, E), lv(w, N))),
		formula.And(lv(v, L), formula.Or(
			lv(w, N),
			formula.And(lf(f, L), lv(w, L)),
			formula.And(lf(f, E), lv(w, E)))),
	)
	upd := func(o Value) formula.Formula {
		return formula.And(lv(v, L), lf(f, N), lv(w, o))
	}
	updAny := formula.And(lv(v, L), lf(f, N), formula.Or(lv(w, L), lv(w, E)))
	esc := formula.Or(
		formula.And(lv(v, E), lv(w, L)),
		formula.And(lv(v, L), formula.Or(
			formula.And(lf(f, L), lv(w, E)),
			formula.And(lf(f, E), lv(w, L)))),
	)
	switch pr := prim.(type) {
	case PLocal:
		switch pr.O {
		case N:
			return lv(pr.V, N) // locals with N are preserved by all branches
		case E:
			return formula.Or(lv(pr.V, E), formula.And(lv(pr.V, L), esc))
		case L:
			return formula.And(lv(pr.V, L), formula.Or(id, updAny))
		}
	case PField:
		if pr.F == f {
			switch pr.O {
			case L:
				return formula.Or(formula.And(id, lf(f, L)), upd(L))
			case E:
				return formula.Or(formula.And(id, lf(f, E)), upd(E))
			case N:
				return formula.Or(formula.And(id, lf(f, N)), esc)
			}
		}
		switch pr.O {
		case N:
			return formula.Or(lf(pr.F, N), esc)
		default:
			return formula.And(lf(pr.F, pr.O), formula.Or(id, updAny))
		}
	}
	panic(fmt.Sprintf("escape: unknown primitive %T", prim))
}

// NotQ returns the failure condition not(local(v)) = v.E.
func (a *Analysis) NotQ(q Query) formula.Formula { return lv(q.V, E) }
