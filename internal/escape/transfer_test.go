package escape

import (
	"testing"

	"tracer/internal/lang"
	"tracer/internal/uset"
)

// TestTransferRulesFig5 spells out the transfer function of Fig 5 case by
// case, as executable documentation. Universe: locals u, v; field f; sites
// h1, h2.
func TestTransferRulesFig5(t *testing.T) {
	a := newTestAnalysis()
	st := func(u, v, f Value) State {
		return a.StateOf(map[string]Value{"u": u, "v": v}, map[string]Value{"f": f})
	}
	h1 := uset.New(a.Sites.ID("h1"))

	cases := []struct {
		name string
		p    uset.Set
		atom lang.Atom
		in   State
		want State
	}{
		// v = new h: the site's mapping decides.
		{"alloc L", h1, lang.Alloc{V: "u", H: "h1"}, st(N, N, N), st(L, N, N)},
		{"alloc E", nil, lang.Alloc{V: "u", H: "h1"}, st(N, N, N), st(E, N, N)},
		// g = v: escapes everything if v is L, otherwise no-op.
		{"leak L collapses", h1, lang.GlobalWrite{G: "G", V: "u"}, st(L, L, L), st(E, E, N)},
		{"leak E no-op", h1, lang.GlobalWrite{G: "G", V: "u"}, st(E, L, L), st(E, L, L)},
		{"leak N no-op", h1, lang.GlobalWrite{G: "G", V: "u"}, st(N, L, E), st(N, L, E)},
		// v = g: always E.
		{"global read", nil, lang.GlobalRead{V: "u", G: "G"}, st(L, N, N), st(E, N, N)},
		// v = null, v = v'.
		{"null", nil, lang.MoveNull{V: "u"}, st(E, L, N), st(N, L, N)},
		{"move", nil, lang.Move{Dst: "u", Src: "v"}, st(E, L, N), st(L, L, N)},
		// v = v'.f: field value if the base is L, else E.
		{"load from L", nil, lang.Load{Dst: "u", Src: "v", F: "f"}, st(E, L, N), st(N, L, N)},
		{"load from E", nil, lang.Load{Dst: "u", Src: "v", F: "f"}, st(L, E, L), st(E, E, L)},
		{"load from N", nil, lang.Load{Dst: "u", Src: "v", F: "f"}, st(L, N, L), st(E, N, L)},
		// v.f = v': the six-way case analysis.
		{"store null base", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(L, N, N), st(L, N, N)},
		{"store L into E base", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(L, E, L), st(E, E, N)},
		{"store E into E base", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(E, E, L), st(E, E, L)},
		{"store N into L base", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(N, L, E), st(N, L, E)},
		{"store updates N field", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(E, L, N), st(E, L, E)},
		{"store same value", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(E, L, E), st(E, L, E)},
		{"store mixes L into E field", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(L, L, E), st(E, E, N)},
		{"store mixes E into L field", nil, lang.Store{Dst: "v", F: "f", Src: "u"}, st(E, L, L), st(E, E, N)},
		// Calls are identity at this level.
		{"invoke", nil, lang.Invoke{V: "u", M: "m"}, st(L, E, N), st(L, E, N)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := a.step(tc.p, tc.atom, tc.in)
			if got != tc.want {
				t.Fatalf("[%s]p(%s) = %s, want %s", tc.atom, a.Format(tc.in), a.Format(got), a.Format(tc.want))
			}
		})
	}
}

// TestQueryHolds: local(v) accepts L and N, rejects E.
func TestQueryHolds(t *testing.T) {
	a := newTestAnalysis()
	q := Query{V: "u"}
	for val, want := range map[Value]bool{L: true, N: true, E: false} {
		d := a.StateOf(map[string]Value{"u": val}, nil)
		if got := a.Holds(q, d); got != want {
			t.Errorf("Holds(u=%s) = %v, want %v", val, got, want)
		}
	}
}
