package escape

import (
	"testing"

	"tracer/internal/formula"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// describe characterizes (p, d) for the WP synthesizer: one site literal
// per site and one value literal per local and field. The conjunction
// interns its literals into u.
func (a *Analysis) describe(u *formula.Universe, p uset.Set, d State) formula.Conj {
	var lits []formula.Lit
	for i := 0; i < a.Sites.Len(); i++ {
		o := E
		if p.Has(i) {
			o = L
		}
		lits = append(lits, formula.Lit{P: PSite{a.Sites.Value(i), o}})
	}
	for i := 0; i < a.Locals.Len(); i++ {
		v := a.Locals.Value(i)
		lits = append(lits, formula.Lit{P: PLocal{v, a.Local(d, v)}})
	}
	for i := 0; i < a.Fields.Len(); i++ {
		f := a.Fields.Value(i)
		lits = append(lits, formula.Lit{P: PField{f, a.Field(d, f)}})
	}
	return formula.NewConj(u, lits...)
}

// TestHandwrittenWPMatchesSynthesized cross-checks the Fig 11 transfer
// functions against the brute-force synthesized weakest preconditions on
// the full small universe. With 4 abstractions × 27 states per atom and
// primitive, this is the strongest possible finite check.
func TestHandwrittenWPMatchesSynthesized(t *testing.T) {
	a := newTestAnalysis()
	u := formula.NewUniverse(Theory{})
	desc := meta.Descriptor[uset.Set, State]{
		Describe: func(p uset.Set, d State) formula.Conj { return a.describe(u, p, d) },
		Eval:     func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
	}
	abstractions := a.AllAbstractions()
	states := a.AllStates()
	for _, atom := range testAtoms() {
		for _, prim := range primsFor(a) {
			bad := meta.CheckAgainstSynthesized(
				atom, prim, a.WP,
				func(p uset.Set, d State) State { return a.step(p, atom, d) },
				desc, u, abstractions, states,
			)
			if bad != 0 {
				t.Errorf("[%s]♭(%s) disagrees with synthesized WP at %d points", atom, prim, bad)
			}
		}
	}
}
