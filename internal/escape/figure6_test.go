package escape

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

// figure6 builds the example program of Fig 6:
//
//	u = new h1; v = new h2; v.f = u; pc: local(u)?
func figure6(t *testing.T) (*Analysis, *lang.CFG) {
	t.Helper()
	prog := lang.Atoms(
		lang.Alloc{V: "u", H: "h1"},
		lang.Alloc{V: "v", H: "h2"},
		lang.Store{Dst: "v", F: "f", Src: "u"},
	)
	g := lang.BuildCFG(prog)
	locals, fields, sites := Universe(g)
	return New(locals, fields, sites), g
}

// abstraction builds a site set from names.
func (a *Analysis) abstraction(sites ...string) uset.Set {
	var out uset.Set
	for _, h := range sites {
		out = out.Add(a.Sites.ID(h))
	}
	return out
}

// TestFigure6Forward checks the α annotations of Fig 6 for both
// abstractions shown.
func TestFigure6Forward(t *testing.T) {
	a, g := figure6(t)
	q := Query{Nodes: []int{g.Exit}, V: "u"}
	job := &Job{A: a, G: g, Q: q, K: 1}

	// (a)/(b1): p = [h1↦E, h2↦E], i.e. no L-mapped sites.
	out := job.Forward(nil, nil)
	if out.Proved {
		t.Fatal("p = {} must fail local(u)")
	}
	states := dataflow.StatesAlong(out.Trace, a.Initial(), a.Transfer(nil))
	want := []string{
		"[u↦N, v↦N, f↦N]",
		"[u↦E, v↦N, f↦N]",
		"[u↦E, v↦E, f↦N]",
		"[u↦E, v↦E, f↦N]",
	}
	for i, w := range want {
		if got := a.Format(states[i]); got != w {
			t.Errorf("state %d = %s, want %s", i, got, w)
		}
	}

	// (b2): p = [h1↦L, h2↦E]: the store escapes everything.
	p := a.abstraction("h1")
	out = job.Forward(nil, p)
	if out.Proved {
		t.Fatal("p = {h1} must fail local(u)")
	}
	states = dataflow.StatesAlong(out.Trace, a.Initial(), a.Transfer(p))
	want = []string{
		"[u↦N, v↦N, f↦N]",
		"[u↦L, v↦N, f↦N]",
		"[u↦L, v↦E, f↦N]",
		"[u↦E, v↦E, f↦N]",
	}
	for i, w := range want {
		if got := a.Format(states[i]); got != w {
			t.Errorf("(b2) state %d = %s, want %s", i, got, w)
		}
	}
}

// TestFigure6WithUnderApprox reproduces (b1)+(b2): with k = 1 the first
// iteration learns h1.E, the second learns h1.L ∧ h2.E, and the third run
// proves the query with the cheapest abstraction [h1↦L, h2↦L].
func TestFigure6WithUnderApprox(t *testing.T) {
	a, g := figure6(t)
	q := Query{Nodes: []int{g.Exit}, V: "u"}
	job := &Job{A: a, G: g, Q: q, K: 1}

	// Iteration 1 cube: h1 must not be E, i.e. Neg = {h1}.
	out := job.Forward(nil, nil)
	cubes := job.Backward(nil, nil, out.Trace)
	if len(cubes) != 1 {
		t.Fatalf("iter 1 cubes = %v, want 1", cubes)
	}
	h1 := uset.New(a.Sites.ID("h1"))
	if !cubes[0].Pos.Empty() || !cubes[0].Neg.Equal(h1) {
		t.Fatalf("iter 1 cube = %v, want off{h1}", cubes[0])
	}

	// Iteration 2 cube: h1 L-mapped but h2 not, i.e. Pos={h1}, Neg={h2}.
	p := a.abstraction("h1")
	out = job.Forward(nil, p)
	cubes = job.Backward(nil, p, out.Trace)
	if len(cubes) != 1 {
		t.Fatalf("iter 2 cubes = %v, want 1", cubes)
	}
	h2 := uset.New(a.Sites.ID("h2"))
	if !cubes[0].Pos.Equal(h1) || !cubes[0].Neg.Equal(h2) {
		t.Fatalf("iter 2 cube = %v, want on{h1} off{h2}", cubes[0])
	}

	// Full run: proved with [h1↦L, h2↦L] in 3 iterations.
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("status = %v, want proved", res.Status)
	}
	if !res.Abstraction.Equal(a.abstraction("h1", "h2")) {
		t.Fatalf("abstraction = %v, want {h1, h2}", res.Abstraction)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", res.Iterations)
	}
}

// TestFigure6WithoutUnderApprox reproduces (a): with under-approximation
// disabled, one backward pass yields the full condition
// h1.E ∨ (h1.L ∧ h2.E), so TRACER reaches the cheapest abstraction after a
// single counterexample (two forward runs).
func TestFigure6WithoutUnderApprox(t *testing.T) {
	a, g := figure6(t)
	q := Query{Nodes: []int{g.Exit}, V: "u"}
	job := &Job{A: a, G: g, Q: q, K: 0}

	out := job.Forward(nil, nil)
	dI := a.Initial()
	states := dataflow.StatesAlong(out.Trace, dI, a.Transfer(nil))
	dnf := meta.Run(job.Client(nil), out.Trace, states, a.NotQ(q))
	cubes := job.Cubes(dnf, dI)
	if len(cubes) != 2 {
		t.Fatalf("cubes = %v, want 2 (h1.E and h1.L∧h2.E)", cubes)
	}

	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("status = %v, want proved", res.Status)
	}
	if !res.Abstraction.Equal(a.abstraction("h1", "h2")) {
		t.Fatalf("abstraction = %v, want {h1, h2}", res.Abstraction)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

// TestFigure6FormulaAnnotations checks the ψ annotations of Fig 6(b1):
// u.E at pc, then u.E before the store, h1.E at the start.
func TestFigure6FormulaAnnotations(t *testing.T) {
	a, g := figure6(t)
	q := Query{Nodes: []int{g.Exit}, V: "u"}
	job := &Job{A: a, G: g, Q: q, K: 1}
	out := job.Forward(nil, nil)
	dI := a.Initial()
	states := dataflow.StatesAlong(out.Trace, dI, a.Transfer(nil))
	ann := meta.RunAnnotated(job.Client(nil), out.Trace, states, a.NotQ(q))
	if got := ann[len(ann)-1].String(); got != "u.E" {
		t.Errorf("ψ at pc = %s, want u.E", got)
	}
	if got := ann[0].String(); got != "h1.E" {
		t.Errorf("ψ at start = %s, want h1.E", got)
	}
}
