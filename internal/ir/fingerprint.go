package ir

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// This file computes canonical, position-independent fingerprints of IR
// programs. The warm-start store (internal/warm) keys persisted solver state
// by these fingerprints and uses Diff to decide which stored clauses survive
// an edit, so two properties are load-bearing:
//
//   - Renderings ignore source positions entirely. Reformatting a program,
//     inserting blank lines, or reordering nothing must leave every
//     fingerprint unchanged.
//   - A method's fingerprint covers exactly its own body. Editing one method
//     changes that method's fingerprint and no other's, which is what makes
//     per-clause invalidation by "supporting methods" precise.
//
// The shape fingerprint covers everything that affects lowering besides
// method bodies: the globals list, the class hierarchy, field declarations,
// and method signatures (including native-ness). If the shape changes, call
// targets and parameter universes may shift in ways per-method diffs cannot
// see, so warm consumers treat a shape change as "start cold".

// ProgramFP is the fingerprint of a whole program.
type ProgramFP struct {
	// Whole covers the entire program: shape plus every method body.
	Whole uint64
	// Shape covers declarations only (globals, hierarchy, fields,
	// signatures) — no method bodies.
	Shape uint64
	// Methods maps each method's QualName to the fingerprint of its
	// signature + body.
	Methods map[string]uint64
}

// Fingerprint computes the canonical fingerprint of p.
func Fingerprint(p *Program) ProgramFP {
	fp := ProgramFP{Methods: make(map[string]uint64)}

	shape := fnv.New64a()
	writeShape(shape, p)
	fp.Shape = shape.Sum64()

	for _, m := range p.Methods() {
		h := fnv.New64a()
		writeMethod(h, m)
		fp.Methods[m.QualName()] = h.Sum64()
	}

	whole := fnv.New64a()
	writeU64(whole, fp.Shape)
	names := make([]string, 0, len(fp.Methods))
	for name := range fp.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		whole.Write([]byte(name))
		whole.Write([]byte{0})
		writeU64(whole, fp.Methods[name])
	}
	fp.Whole = whole.Sum64()
	return fp
}

// Diff describes how a new program differs from an old one, at the
// granularity the warm store invalidates at.
type DiffResult struct {
	// Same reports Whole fingerprints equal (nothing changed).
	Same bool
	// ShapeChanged reports a declaration-level change; warm consumers
	// must treat the programs as unrelated.
	ShapeChanged bool
	// Touched lists the QualNames of methods whose fingerprint changed,
	// was added, or was removed, sorted.
	Touched []string
}

// Diff compares two fingerprints.
func Diff(old, new ProgramFP) DiffResult {
	d := DiffResult{Same: old.Whole == new.Whole}
	if d.Same {
		return d
	}
	d.ShapeChanged = old.Shape != new.Shape
	seen := map[string]bool{}
	for name, fp := range new.Methods {
		seen[name] = true
		if ofp, ok := old.Methods[name]; !ok || ofp != fp {
			d.Touched = append(d.Touched, name)
		}
	}
	for name := range old.Methods {
		if !seen[name] {
			d.Touched = append(d.Touched, name)
		}
	}
	sort.Strings(d.Touched)
	return d
}

type hashWriter interface {
	Write(p []byte) (int, error)
}

func writeU64(w hashWriter, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	w.Write(buf[:])
}

func writeShape(w hashWriter, p *Program) {
	w.Write([]byte("globals"))
	for _, g := range p.Globals {
		w.Write([]byte{0})
		w.Write([]byte(g))
	}
	for _, c := range p.Classes {
		w.Write([]byte{1})
		w.Write([]byte(c.Name))
		w.Write([]byte{0})
		w.Write([]byte(c.Super))
		for _, f := range c.Fields {
			w.Write([]byte{2})
			w.Write([]byte(f))
		}
		for _, m := range c.Methods {
			w.Write([]byte{3})
			writeSignature(w, m)
		}
	}
}

func writeSignature(w hashWriter, m *Method) {
	w.Write([]byte(m.Name))
	for _, p := range m.Params {
		w.Write([]byte{0})
		w.Write([]byte(p))
	}
	if m.Native {
		w.Write([]byte{1})
	}
}

// writeMethod hashes a method's signature, locals, and body. Locals are part
// of the body fingerprint (not shape): adding a local cannot affect any other
// method's lowering.
func writeMethod(w hashWriter, m *Method) {
	writeSignature(w, m)
	for _, l := range m.Locals {
		w.Write([]byte{2})
		w.Write([]byte(l))
	}
	w.Write([]byte{3})
	writeBlock(w, m.Body)
}

func writeBlock(w hashWriter, body []Stmt) {
	for _, s := range body {
		w.Write([]byte{0xfe})
		w.Write([]byte(RenderStmt(s)))
		switch s := s.(type) {
		case *IfStmt:
			w.Write([]byte{0x10})
			writeBlock(w, s.Then)
			w.Write([]byte{0x11})
			writeBlock(w, s.Else)
		case *LoopStmt:
			w.Write([]byte{0x12})
			writeBlock(w, s.Body)
		}
	}
}

// RenderStmt renders a statement in a canonical, position-free textual form.
// Compound statements render as their header only (their blocks are hashed
// recursively by the fingerprint, and walked explicitly by WalkStmts). The
// rendering doubles as the stable statement identity used in query keys, so
// it must be injective per statement kind modulo positions.
func RenderStmt(s Stmt) string {
	switch s := s.(type) {
	case *NewStmt:
		return s.Dst + " = new " + s.Class + " @ " + s.Site
	case *MoveStmt:
		return s.Dst + " = " + s.Src
	case *NullStmt:
		return s.Dst + " = null"
	case *GlobalGet:
		return s.Dst + " = global " + s.Global
	case *GlobalPut:
		return "global " + s.Global + " = " + s.Src
	case *LoadStmt:
		return s.Dst + " = " + s.Src + "." + s.Field
	case *StoreStmt:
		return s.Dst + "." + s.Field + " = " + s.Src
	case *CallStmt:
		var b strings.Builder
		if s.Dst != "" {
			b.WriteString(s.Dst)
			b.WriteString(" = ")
		}
		b.WriteString(s.Recv)
		b.WriteString(".")
		b.WriteString(s.Method)
		b.WriteString("(")
		for i, a := range s.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a)
		}
		b.WriteString(")")
		return b.String()
	case *IfStmt:
		return "if"
	case *LoopStmt:
		return "loop"
	case *ReturnStmt:
		if s.Src == "" {
			return "return"
		}
		return "return " + s.Src
	case *QueryStmt:
		var b strings.Builder
		b.WriteString("query ")
		b.WriteString(s.Name)
		if s.Kind == QueryLocal {
			b.WriteString(" local(")
			b.WriteString(s.Var)
			b.WriteString(")")
		} else {
			b.WriteString(" state(")
			b.WriteString(s.Var)
			for _, st := range s.States {
				b.WriteString(" ")
				b.WriteString(st)
			}
			b.WriteString(")")
		}
		return b.String()
	}
	return "?"
}

// WalkStmts visits every statement of body in source order, recursing into
// if/loop blocks (parents before children). It is the single definition of
// statement order shared by fingerprinting and stable query keys.
func WalkStmts(body []Stmt, f func(Stmt)) {
	for _, s := range body {
		f(s)
		switch s := s.(type) {
		case *IfStmt:
			WalkStmts(s.Then, f)
			WalkStmts(s.Else, f)
		case *LoopStmt:
			WalkStmts(s.Body, f)
		}
	}
}

// StmtKeys returns a stable, position-independent key for every statement of
// every method: "Class.method#<ordinal>#<rendering>", where ordinal counts
// earlier statements in the same method with the same rendering. Keys are
// invariant under reformatting and under edits to other methods; within an
// edited method, statements before the edit keep their keys.
func StmtKeys(p *Program) map[Stmt]string {
	keys := make(map[Stmt]string)
	for _, m := range p.Methods() {
		qual := m.QualName()
		count := make(map[string]int)
		WalkStmts(m.Body, func(s Stmt) {
			r := RenderStmt(s)
			keys[s] = qual + "#" + strconv.Itoa(count[r]) + "#" + r
			count[r]++
		})
	}
	return keys
}
