// Package ir defines a small Java-like intermediate representation: classes
// with single inheritance, virtual methods, instance fields, allocation
// sites, globals (statics), and nondeterministic control flow. It stands in
// for the Java bytecode the paper analyzes through Chord: the two client
// analyses observe exactly the heap-manipulating commands of Figs 4–5, all
// of which this IR produces.
//
// The package contains a lexer and recursive-descent parser for a textual
// form, a semantic checker, and a lowering pass (lower.go) that expands a
// whole program into the structured language of §3.1 by context-sensitive
// inlining, with virtual calls resolved by the 0-CFA points-to analysis.
package ir

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed IR compilation unit.
type Program struct {
	Globals []string
	Classes []*Class

	classByName map[string]*Class
}

// Class declares fields and methods, optionally extending a superclass.
type Class struct {
	Name    string
	Super   string
	Fields  []string
	Methods []*Method
	Pos     Pos

	super        *Class
	methodByName map[string]*Method
}

// Method is a possibly-native method. The receiver is the implicit first
// parameter "this". Native methods have no body; calls to them only drive
// the type-state automaton.
type Method struct {
	Class  *Class
	Name   string
	Params []string // excluding the implicit receiver
	Locals []string // var declarations
	Body   []Stmt
	Native bool
	Pos    Pos
}

// QualName is the globally unique method name Class.method.
func (m *Method) QualName() string { return m.Class.Name + "." + m.Name }

// Stmt is an IR statement.
type Stmt interface {
	stmt()
	Position() Pos
}

type stmtBase struct{ Pos Pos }

func (s stmtBase) Position() Pos { return s.Pos }
func (stmtBase) stmt()           {}

// NewStmt is "v = new C @ h".
type NewStmt struct {
	stmtBase
	Dst, Class, Site string
}

// MoveStmt is "v = w" between locals.
type MoveStmt struct {
	stmtBase
	Dst, Src string
}

// NullStmt is "v = null".
type NullStmt struct {
	stmtBase
	Dst string
}

// GlobalGet is "v = g" for a declared global g.
type GlobalGet struct {
	stmtBase
	Dst, Global string
}

// GlobalPut is "g = v".
type GlobalPut struct {
	stmtBase
	Global, Src string
}

// LoadStmt is "v = w.f".
type LoadStmt struct {
	stmtBase
	Dst, Src, Field string
}

// StoreStmt is "v.f = w".
type StoreStmt struct {
	stmtBase
	Dst, Field, Src string
}

// CallStmt is "[v =] w.m(a1, ..., an)": a virtual call dispatched on the
// classes w may point to. Dst is empty when the result is discarded.
type CallStmt struct {
	stmtBase
	Dst, Recv, Method string
	Args              []string
}

// IfStmt is "if * { ... } [else { ... }]": nondeterministic branching.
type IfStmt struct {
	stmtBase
	Then, Else []Stmt
}

// LoopStmt is "loop { ... }": nondeterministic iteration (s*).
type LoopStmt struct {
	stmtBase
	Body []Stmt
}

// ReturnStmt is "return [v]"; only valid as the last statement of a body.
type ReturnStmt struct {
	stmtBase
	Src string // empty for bare return
}

// QueryKind distinguishes explicit query statements.
type QueryKind int

const (
	// QueryLocal asks whether a variable is thread-local (escape client).
	QueryLocal QueryKind = iota
	// QueryTypestate asks whether the tracked object's type-state is
	// within the listed automaton states (type-state client).
	QueryTypestate
)

// QueryStmt is "query name local(v)" or "query name state(v, s1 s2 ...)":
// an explicit query point used by the examples; the benchmark harness also
// generates queries pervasively per §6.
type QueryStmt struct {
	stmtBase
	Name   string
	Kind   QueryKind
	Var    string
	States []string
}

// ClassByName resolves a class, or nil.
func (p *Program) ClassByName(name string) *Class { return p.classByName[name] }

// LookupMethod resolves method name on class c following the superclass
// chain, mirroring virtual dispatch.
func (c *Class) LookupMethod(name string) *Method {
	for cur := c; cur != nil; cur = cur.super {
		if m, ok := cur.methodByName[name]; ok {
			return m
		}
	}
	return nil
}

// Superclass returns the resolved superclass, or nil.
func (c *Class) Superclass() *Class { return c.super }

// Main returns the entry method Main.main, which every analyzable program
// must declare.
func (p *Program) Main() *Method {
	c := p.ClassByName("Main")
	if c == nil {
		return nil
	}
	return c.LookupMethod("main")
}

// Methods iterates all methods of all classes in declaration order.
func (p *Program) Methods() []*Method {
	var out []*Method
	for _, c := range p.Classes {
		out = append(out, c.Methods...)
	}
	return out
}
