package ir

import "testing"

const fpBase = `
global g

class Main {
  method main(this) {
    var a
    a = new Main @ h1
    a.run(a)
  }
  method run(this, x) {
    var t
    t = x
    if * {
      g = t
    }
    query q1 local(t)
  }
}
`

// Reformatted: extra blank lines and different statement positions, same
// program.
const fpReformatted = `

global g


class Main {

  method main(this) {
    var a

    a = new Main @ h1

    a.run(a)
  }

  method run(this, x) {
    var t
    t = x

    if * {

      g = t
    }

    query q1 local(t)
  }
}
`

// One body edit in run: the global write is gone.
const fpEdited = `
global g

class Main {
  method main(this) {
    var a
    a = new Main @ h1
    a.run(a)
  }
  method run(this, x) {
    var t
    t = x
    query q1 local(t)
  }
}
`

// Shape edit: an extra field on Main.
const fpShape = `
global g

class Main {
  field f
  method main(this) {
    var a
    a = new Main @ h1
    a.run(a)
  }
  method run(this, x) {
    var t
    t = x
    if * {
      g = t
    }
    query q1 local(t)
  }
}
`

func fpOf(t *testing.T, src string) ProgramFP {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	return Fingerprint(p)
}

func TestFingerprintPositionIndependent(t *testing.T) {
	a, b := fpOf(t, fpBase), fpOf(t, fpReformatted)
	if a.Whole != b.Whole || a.Shape != b.Shape {
		t.Fatalf("reformatting changed fingerprint: %+v vs %+v", a, b)
	}
	for name, fp := range a.Methods {
		if b.Methods[name] != fp {
			t.Fatalf("reformatting changed method fp of %s", name)
		}
	}
	d := Diff(a, b)
	if !d.Same {
		t.Fatalf("Diff of identical programs: %+v", d)
	}
}

func TestFingerprintBodyEdit(t *testing.T) {
	a, b := fpOf(t, fpBase), fpOf(t, fpEdited)
	if a.Whole == b.Whole {
		t.Fatal("body edit left Whole unchanged")
	}
	if a.Shape != b.Shape {
		t.Fatal("body edit changed Shape")
	}
	if a.Methods["Main.main"] != b.Methods["Main.main"] {
		t.Fatal("edit to run changed fp of main")
	}
	if a.Methods["Main.run"] == b.Methods["Main.run"] {
		t.Fatal("edit to run left its fp unchanged")
	}
	d := Diff(a, b)
	if d.Same || d.ShapeChanged {
		t.Fatalf("unexpected diff flags: %+v", d)
	}
	if len(d.Touched) != 1 || d.Touched[0] != "Main.run" {
		t.Fatalf("touched = %v, want [Main.run]", d.Touched)
	}
}

func TestFingerprintShapeEdit(t *testing.T) {
	a, b := fpOf(t, fpBase), fpOf(t, fpShape)
	if a.Shape == b.Shape {
		t.Fatal("field addition left Shape unchanged")
	}
	d := Diff(a, b)
	if !d.ShapeChanged {
		t.Fatalf("diff missed shape change: %+v", d)
	}
}

func TestStmtKeysStable(t *testing.T) {
	pa := MustParse(fpBase)
	pb := MustParse(fpReformatted)
	ka := map[string]bool{}
	for _, k := range StmtKeys(pa) {
		ka[k] = true
	}
	kb := map[string]bool{}
	for _, k := range StmtKeys(pb) {
		kb[k] = true
	}
	if len(ka) != len(kb) {
		t.Fatalf("key counts differ: %d vs %d", len(ka), len(kb))
	}
	for k := range ka {
		if !kb[k] {
			t.Fatalf("key %q missing after reformat", k)
		}
	}
}

func TestStmtKeysDistinguishDuplicates(t *testing.T) {
	p := MustParse(`
class Main {
  method main(this) {
    var a
    a = null
    a = null
  }
}
`)
	keys := StmtKeys(p)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
	if len(keys) != 2 {
		t.Fatalf("want 2 keys, got %d", len(keys))
	}
}
