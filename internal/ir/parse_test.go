package ir

import (
	"strings"
	"testing"
)

const okSrc = `
// A comment.
global G1, G2

class Base {
  field next
  native method touch(this)
  method id(this, x) {
    return x
  }
}

class Derived extends Base {
  method id(this, x) {
    var y
    y = x
    return y
  }
}

class Main {
  method main(this) {
    var a, b, c
    a = new Derived @ h1
    b = a.id(a)
    c = null
    G1 = b
    c = G2
    a.next = b
    b = a.next
    a.touch()
    if * {
      b = a
    } else {
      b = c
    }
    loop {
      a = b
    }
    query q1 local(a)
    query q2 state(b: s1 s2)
  }
}
`

func TestParseOK(t *testing.T) {
	prog, err := Parse(okSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Classes) != 3 {
		t.Fatalf("classes = %d", len(prog.Classes))
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("globals = %v", prog.Globals)
	}
	d := prog.ClassByName("Derived")
	if d == nil || d.Superclass() == nil || d.Superclass().Name != "Base" {
		t.Fatal("inheritance not resolved")
	}
	// Virtual dispatch: Derived overrides id; touch comes from Base.
	if m := d.LookupMethod("id"); m == nil || m.Class.Name != "Derived" {
		t.Fatal("override not picked")
	}
	if m := d.LookupMethod("touch"); m == nil || !m.Native || m.Class.Name != "Base" {
		t.Fatal("inherited native method not found")
	}
	if prog.Main() == nil {
		t.Fatal("Main.main not found")
	}
}

func TestParseReclassifiesGlobals(t *testing.T) {
	prog := MustParse(okSrc)
	main := prog.Main()
	var puts, gets int
	walkAll(main.Body, func(s Stmt) {
		switch s.(type) {
		case *GlobalPut:
			puts++
		case *GlobalGet:
			gets++
		}
	})
	if puts != 1 || gets != 1 {
		t.Fatalf("puts=%d gets=%d, want 1 and 1", puts, gets)
	}
}

func walkAll(body []Stmt, f func(Stmt)) {
	for _, s := range body {
		f(s)
		switch s := s.(type) {
		case *IfStmt:
			walkAll(s.Then, f)
			walkAll(s.Else, f)
		case *LoopStmt:
			walkAll(s.Body, f)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated class", "class A {", "expected member"},
		{"bad char", "class A { # }", "unexpected character"},
		{"reserved ident", "class class { }", "reserved word"},
		{"undeclared var", "class Main { method main(this) { x = null } }", "undeclared variable"},
		{"unknown class", "class Main { method main(this) { var x\n x = new Foo @ h } }", "unknown class"},
		{"unknown super", "class A extends B { }", "unknown class"},
		{"dup class", "class A { } class A { }", "duplicate class"},
		{"dup method", "class A { method m(this) { } method m(this) { } }", "duplicate method"},
		{"dup field", "class A { field f, f }", "duplicate field"},
		{"dup var", "class Main { method main(this) { var x, x } }", "duplicate variable"},
		{"global shadow", "global g\nclass Main { method main(this, g) { } }", "shadows a global"},
		{"global to global", "global a, b\nclass Main { method main(this) { a = b } }", "assignment between globals"},
		{"return not last", "class Main { method main(this) { var x\n return\n x = null } }", "return must be the last"},
		{"return value not last", "class Main { method main(this) { var x\n return x\n x = null } }", ""},
		{"return nested", "class Main { method main(this) { var x\n if * { return x } } }", "return must be the last"},
		{"undeclared field", "class Main { method main(this) { var x\n x = x.f } }", "undeclared field"},
		{"native with body", "class A { native method m(this) { } }", ""},
		{"query bad state", "class Main { method main(this) { var x\n query q state(x:) } }", "at least one state"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error for %q", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestInheritanceCycle(t *testing.T) {
	src := `
class A extends B { }
class B extends A { }
`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want inheritance cycle", err)
	}
}

func TestErrorPositions(t *testing.T) {
	src := "class A {\n  method m(this) {\n    zz = null\n  }\n}"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *Error
	if !asError(err, &perr) {
		t.Fatalf("error %T lacks a position", err)
	}
	if perr.Pos.Line != 3 {
		t.Fatalf("error at line %d, want 3 (%v)", perr.Pos.Line, err)
	}
}

func asError(err error, out **Error) bool {
	if e, ok := err.(*Error); ok {
		*out = e
		return true
	}
	return false
}

func TestCommentsAndPositions(t *testing.T) {
	toks, err := lexAll("// only a comment\nclass // trailing\nA")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // class, A, EOF
		t.Fatalf("tokens = %d", len(toks))
	}
	if toks[0].pos.Line != 2 || toks[1].pos.Line != 3 {
		t.Fatalf("positions: %v %v", toks[0].pos, toks[1].pos)
	}
}

func TestBareReturnThenBrace(t *testing.T) {
	src := `
class A {
  method m(this) {
    return
  }
}
class Main { method main(this) { } }
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
