package ir

import (
	"strings"
	"testing"

	"tracer/internal/lang"
)

// staticResolver resolves calls by method name over all classes — a
// hand-written stand-in for the 0-CFA call graph in these tests.
type staticResolver struct{ prog *Program }

func (r staticResolver) Targets(s *CallStmt) []*Method {
	var out []*Method
	for _, c := range r.prog.Classes {
		if m, ok := c.methodByName[s.Method]; ok {
			out = append(out, m)
		}
	}
	return out
}

func lowerSrc(t *testing.T, src string) *Lowered {
	t.Helper()
	prog := MustParse(src)
	low, err := Lower(prog, staticResolver{prog}, LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return low
}

func TestLowerStraightLine(t *testing.T) {
	low := lowerSrc(t, `
class Main {
  method main(this) {
    var a, b
    a = new Main @ h1
    b = a
    b = null
  }
}
`)
	var kinds []string
	for _, e := range low.G.Edges {
		if e.A != nil {
			kinds = append(kinds, e.A.String())
		}
	}
	joined := strings.Join(kinds, "; ")
	for _, want := range []string{
		"Main.main::a = null", // frame initialization
		"Main.main::a = new h1",
		"Main.main::b = Main.main::a",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lowered atoms %q missing %q", joined, want)
		}
	}
}

func TestLowerCallInlines(t *testing.T) {
	low := lowerSrc(t, `
class Helper {
  method work(this, x) {
    var y
    y = x
    return y
  }
}
class Main {
  method main(this) {
    var a, r, h
    a = new Main @ h1
    h = new Helper @ h2
    r = h.work(a)
  }
}
`)
	var atoms []string
	for _, e := range low.G.Edges {
		if e.A != nil {
			atoms = append(atoms, e.A.String())
		}
	}
	joined := strings.Join(atoms, "; ")
	for _, want := range []string{
		"Main.main::h.work()",              // the type-state event
		"Helper.work::this = Main.main::h", // receiver binding
		"Helper.work::x = Main.main::a",    // argument binding
		"Helper.work::y = Helper.work::x",  // inlined body
		"Main.main::r = Helper.work::y",    // return value
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lowered atoms missing %q in:\n%s", want, joined)
		}
	}
	if len(low.Calls) != 1 {
		t.Fatalf("call sites = %d", len(low.Calls))
	}
}

func TestLowerVirtualChoice(t *testing.T) {
	low := lowerSrc(t, `
class A { method m(this) { var x
  x = new A @ hA } }
class B { method m(this) { var x
  x = new B @ hB } }
class Main {
  method main(this) {
    var o
    o = new A @ h1
    o.m()
  }
}
`)
	// Both targets' alloc sites must appear (nondeterministic choice).
	var sites []string
	for _, e := range low.G.Edges {
		if a, ok := e.A.(lang.Alloc); ok {
			sites = append(sites, a.H)
		}
	}
	joined := strings.Join(sites, ",")
	if !strings.Contains(joined, "hA") || !strings.Contains(joined, "hB") {
		t.Fatalf("virtual call did not inline both targets: %s", joined)
	}
}

func TestLowerRejectsRecursion(t *testing.T) {
	prog := MustParse(`
class Main {
  method main(this) {
    this.main()
  }
}
`)
	_, err := Lower(prog, staticResolver{prog}, LowerOptions{})
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("err = %v, want recursion error", err)
	}
}

func TestLowerDepthLimit(t *testing.T) {
	src := "class Main {\n"
	src += "  method main(this) {\n    this.m0()\n  }\n"
	for i := 0; i < 5; i++ {
		src += "  method m" + string(rune('0'+i)) + "(this) {\n"
		src += "    this.m" + string(rune('1'+i)) + "()\n  }\n"
	}
	src += "  method m5(this) { }\n}\n"
	prog := MustParse(src)
	if _, err := Lower(prog, staticResolver{prog}, LowerOptions{MaxDepth: 3}); err == nil ||
		!strings.Contains(err.Error(), "depth limit") {
		t.Fatalf("expected depth-limit error")
	}
	if _, err := Lower(prog, staticResolver{prog}, LowerOptions{MaxDepth: 10}); err != nil {
		t.Fatalf("depth 10 should succeed: %v", err)
	}
}

func TestLowerQueriesAndAccesses(t *testing.T) {
	low := lowerSrc(t, `
class Main {
  field f
  method main(this) {
    var a, b
    a = new Main @ h1
    a.f = a
    b = a.f
    query q local(a)
  }
}
`)
	if len(low.Accesses) != 2 {
		t.Fatalf("accesses = %d, want 2", len(low.Accesses))
	}
	if len(low.Queries) != 1 || low.Queries[0].Var != "Main.main::a" {
		t.Fatalf("queries = %+v", low.Queries)
	}
	if low.Atoms == 0 || low.AtomsByMethod[low.Prog.Main()] != low.Atoms {
		t.Fatalf("atom attribution wrong: %d vs %v", low.Atoms, low.AtomsByMethod)
	}
}

func TestLowerNativeCallOnly(t *testing.T) {
	low := lowerSrc(t, `
class Main {
  native method ping(this)
  method main(this) {
    var a, r
    a = new Main @ h1
    a.ping()
    r = a.ping()
  }
}
`)
	// Native targets have no body: the call is just the Invoke event, and a
	// call with a destination nulls it.
	var invokes, nulls int
	for _, e := range low.G.Edges {
		switch e.A.(type) {
		case lang.Invoke:
			invokes++
		case lang.MoveNull:
			nulls++
		}
	}
	if invokes != 2 {
		t.Fatalf("invokes = %d, want 2", invokes)
	}
	// Frame init nulls (a, r) + result null for r.
	if nulls != 3 {
		t.Fatalf("nulls = %d, want 3", nulls)
	}
}
