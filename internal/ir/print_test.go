package ir

import (
	"testing"
)

// TestPrintRoundTrip: Print output parses back to a program that prints
// identically (a fixpoint after one round, since Print canonicalizes
// whitespace and var placement).
func TestPrintRoundTrip(t *testing.T) {
	prog := MustParse(okSrc)
	once := Print(prog)
	reparsed, err := Parse(once)
	if err != nil {
		t.Fatalf("Print output does not parse: %v\n%s", err, once)
	}
	twice := Print(reparsed)
	if once != twice {
		t.Fatalf("Print not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

// TestPrintPreservesStructure: statement counts survive the round trip.
func TestPrintPreservesStructure(t *testing.T) {
	prog := MustParse(okSrc)
	reparsed := MustParse(Print(prog))
	count := func(p *Program) map[string]int {
		out := map[string]int{}
		for _, m := range p.Methods() {
			walkAll(m.Body, func(s Stmt) {
				switch s.(type) {
				case *NewStmt:
					out["new"]++
				case *CallStmt:
					out["call"]++
				case *IfStmt:
					out["if"]++
				case *LoopStmt:
					out["loop"]++
				case *QueryStmt:
					out["query"]++
				case *GlobalGet, *GlobalPut:
					out["global"]++
				case *ReturnStmt:
					out["return"]++
				}
			})
		}
		return out
	}
	a, b := count(prog), count(reparsed)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("%s: %d vs %d after round trip", k, v, b[k])
		}
	}
}
