package ir

import (
	"fmt"
	"strings"
)

// Print renders a program back to parseable textual IR. Parse(Print(p)) is
// semantically identical to p (verified by the round-trip test), which
// makes generated benchmarks inspectable and diffable.
func Print(p *Program) string {
	var b strings.Builder
	if len(p.Globals) > 0 {
		fmt.Fprintf(&b, "global %s\n\n", strings.Join(p.Globals, ", "))
	}
	for _, c := range p.Classes {
		printClass(&b, c)
		b.WriteString("\n")
	}
	return b.String()
}

func printClass(b *strings.Builder, c *Class) {
	fmt.Fprintf(b, "class %s", c.Name)
	if c.Super != "" {
		fmt.Fprintf(b, " extends %s", c.Super)
	}
	b.WriteString(" {\n")
	if len(c.Fields) > 0 {
		fmt.Fprintf(b, "  field %s\n", strings.Join(c.Fields, ", "))
	}
	for _, m := range c.Methods {
		printMethod(b, m)
	}
	b.WriteString("}\n")
}

func printMethod(b *strings.Builder, m *Method) {
	params := append([]string{"this"}, m.Params...)
	if m.Native {
		fmt.Fprintf(b, "  native method %s(%s)\n", m.Name, strings.Join(params, ", "))
		return
	}
	fmt.Fprintf(b, "  method %s(%s) {\n", m.Name, strings.Join(params, ", "))
	if len(m.Locals) > 0 {
		fmt.Fprintf(b, "    var %s\n", strings.Join(m.Locals, ", "))
	}
	printBlock(b, m.Body, "    ")
	b.WriteString("  }\n")
}

func printBlock(b *strings.Builder, body []Stmt, indent string) {
	for _, s := range body {
		printStmt(b, s, indent)
	}
}

func printStmt(b *strings.Builder, s Stmt, indent string) {
	switch s := s.(type) {
	case *NewStmt:
		fmt.Fprintf(b, "%s%s = new %s @ %s\n", indent, s.Dst, s.Class, s.Site)
	case *MoveStmt:
		fmt.Fprintf(b, "%s%s = %s\n", indent, s.Dst, s.Src)
	case *NullStmt:
		fmt.Fprintf(b, "%s%s = null\n", indent, s.Dst)
	case *GlobalGet:
		fmt.Fprintf(b, "%s%s = %s\n", indent, s.Dst, s.Global)
	case *GlobalPut:
		fmt.Fprintf(b, "%s%s = %s\n", indent, s.Global, s.Src)
	case *LoadStmt:
		fmt.Fprintf(b, "%s%s = %s.%s\n", indent, s.Dst, s.Src, s.Field)
	case *StoreStmt:
		fmt.Fprintf(b, "%s%s.%s = %s\n", indent, s.Dst, s.Field, s.Src)
	case *CallStmt:
		if s.Dst != "" {
			fmt.Fprintf(b, "%s%s = %s.%s(%s)\n", indent, s.Dst, s.Recv, s.Method, strings.Join(s.Args, ", "))
		} else {
			fmt.Fprintf(b, "%s%s.%s(%s)\n", indent, s.Recv, s.Method, strings.Join(s.Args, ", "))
		}
	case *IfStmt:
		fmt.Fprintf(b, "%sif * {\n", indent)
		printBlock(b, s.Then, indent+"  ")
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", indent)
			printBlock(b, s.Else, indent+"  ")
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case *LoopStmt:
		fmt.Fprintf(b, "%sloop {\n", indent)
		printBlock(b, s.Body, indent+"  ")
		fmt.Fprintf(b, "%s}\n", indent)
	case *ReturnStmt:
		if s.Src != "" {
			fmt.Fprintf(b, "%sreturn %s\n", indent, s.Src)
		} else {
			fmt.Fprintf(b, "%sreturn\n", indent)
		}
	case *QueryStmt:
		switch s.Kind {
		case QueryLocal:
			fmt.Fprintf(b, "%squery %s local(%s)\n", indent, s.Name, s.Var)
		case QueryTypestate:
			fmt.Fprintf(b, "%squery %s state(%s: %s)\n", indent, s.Name, s.Var, strings.Join(s.States, " "))
		}
	}
}
