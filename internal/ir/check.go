package ir

import "fmt"

// Check performs semantic analysis: it resolves the class hierarchy,
// verifies declarations, and reclassifies ambiguous assignments between
// locals and globals. Parse calls it automatically.
func Check(prog *Program) error {
	c := &checker{prog: prog, globals: map[string]bool{}}
	return c.run()
}

type checker struct {
	prog    *Program
	globals map[string]bool
	fields  map[string]bool
}

func errAt(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() error {
	for _, g := range c.prog.Globals {
		if c.globals[g] {
			return fmt.Errorf("ir: duplicate global %q", g)
		}
		c.globals[g] = true
	}
	if err := c.resolveClasses(); err != nil {
		return err
	}
	c.fields = map[string]bool{}
	for _, cl := range c.prog.Classes {
		for _, f := range cl.Fields {
			c.fields[f] = true
		}
	}
	for _, cl := range c.prog.Classes {
		for _, m := range cl.Methods {
			if err := c.checkMethod(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) resolveClasses() error {
	c.prog.classByName = map[string]*Class{}
	for _, cl := range c.prog.Classes {
		if c.prog.classByName[cl.Name] != nil {
			return errAt(cl.Pos, "duplicate class %q", cl.Name)
		}
		c.prog.classByName[cl.Name] = cl
		cl.methodByName = map[string]*Method{}
		seenFields := map[string]bool{}
		for _, f := range cl.Fields {
			if seenFields[f] {
				return errAt(cl.Pos, "class %s: duplicate field %q", cl.Name, f)
			}
			seenFields[f] = true
		}
		for _, m := range cl.Methods {
			if cl.methodByName[m.Name] != nil {
				return errAt(m.Pos, "class %s: duplicate method %q", cl.Name, m.Name)
			}
			cl.methodByName[m.Name] = m
			// An explicit leading "this" parameter is the receiver, which
			// is always in scope; normalize it away so call arguments line
			// up with the remaining parameters.
			if len(m.Params) > 0 && m.Params[0] == "this" {
				m.Params = m.Params[1:]
			}
		}
	}
	for _, cl := range c.prog.Classes {
		if cl.Super == "" {
			continue
		}
		super := c.prog.classByName[cl.Super]
		if super == nil {
			return errAt(cl.Pos, "class %s extends unknown class %q", cl.Name, cl.Super)
		}
		cl.super = super
	}
	// Reject inheritance cycles.
	for _, cl := range c.prog.Classes {
		slow, fast := cl, cl.super
		for fast != nil {
			if fast == slow {
				return errAt(cl.Pos, "inheritance cycle through class %s", cl.Name)
			}
			slow = slow.super
			fast = fast.super
			if fast != nil {
				fast = fast.super
			}
		}
	}
	return nil
}

// scope resolves variables of one method.
type scope struct {
	locals map[string]bool
}

func (c *checker) methodScope(m *Method) (*scope, error) {
	s := &scope{locals: map[string]bool{"this": true}}
	declare := func(v string) error {
		if s.locals[v] {
			return errAt(m.Pos, "method %s: duplicate variable %q", m.QualName(), v)
		}
		if c.globals[v] {
			return errAt(m.Pos, "method %s: variable %q shadows a global", m.QualName(), v)
		}
		s.locals[v] = true
		return nil
	}
	for _, v := range m.Params {
		if err := declare(v); err != nil {
			return nil, err
		}
	}
	for _, v := range m.Locals {
		if err := declare(v); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (c *checker) checkMethod(m *Method) error {
	if m.Native {
		if len(m.Body) != 0 {
			return errAt(m.Pos, "native method %s has a body", m.QualName())
		}
		return nil
	}
	s, err := c.methodScope(m)
	if err != nil {
		return err
	}
	return c.checkBlock(m, s, m.Body, true)
}

// checkBlock validates statements; topLevel marks the method body, where a
// trailing return is allowed.
func (c *checker) checkBlock(m *Method, s *scope, body []Stmt, topLevel bool) error {
	for i, st := range body {
		if ret, ok := st.(*ReturnStmt); ok {
			if !topLevel || i != len(body)-1 {
				return errAt(ret.Position(), "method %s: return must be the last statement of the method body", m.QualName())
			}
			if ret.Src != "" && !s.locals[ret.Src] {
				return errAt(ret.Position(), "method %s: return of undeclared variable %q", m.QualName(), ret.Src)
			}
			continue
		}
		if err := c.checkStmt(m, s, &body[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) local(m *Method, s *scope, pos Pos, v string) error {
	if !s.locals[v] {
		if c.globals[v] {
			return errAt(pos, "method %s: %q is a global; globals may only appear in plain assignments", m.QualName(), v)
		}
		return errAt(pos, "method %s: undeclared variable %q", m.QualName(), v)
	}
	return nil
}

func (c *checker) checkStmt(m *Method, s *scope, slot *Stmt) error {
	switch st := (*slot).(type) {
	case *NewStmt:
		if err := c.local(m, s, st.Position(), st.Dst); err != nil {
			return err
		}
		if c.prog.classByName[st.Class] == nil {
			return errAt(st.Position(), "new of unknown class %q", st.Class)
		}
	case *NullStmt:
		return c.local(m, s, st.Position(), st.Dst)
	case *MoveStmt:
		// Reclassify global reads/writes.
		dstGlobal, srcGlobal := c.globals[st.Dst], c.globals[st.Src]
		switch {
		case dstGlobal && srcGlobal:
			return errAt(st.Position(), "assignment between globals %q and %q (use a local temporary)", st.Dst, st.Src)
		case dstGlobal:
			if err := c.local(m, s, st.Position(), st.Src); err != nil {
				return err
			}
			*slot = &GlobalPut{stmtBase{st.Position()}, st.Dst, st.Src}
		case srcGlobal:
			if err := c.local(m, s, st.Position(), st.Dst); err != nil {
				return err
			}
			*slot = &GlobalGet{stmtBase{st.Position()}, st.Dst, st.Src}
		default:
			if err := c.local(m, s, st.Position(), st.Dst); err != nil {
				return err
			}
			if err := c.local(m, s, st.Position(), st.Src); err != nil {
				return err
			}
		}
	case *GlobalGet, *GlobalPut:
		// Only produced by this checker.
	case *LoadStmt:
		if err := c.local(m, s, st.Position(), st.Dst); err != nil {
			return err
		}
		if err := c.local(m, s, st.Position(), st.Src); err != nil {
			return err
		}
		if !c.fields[st.Field] {
			return errAt(st.Position(), "load of undeclared field %q", st.Field)
		}
	case *StoreStmt:
		if err := c.local(m, s, st.Position(), st.Dst); err != nil {
			return err
		}
		if err := c.local(m, s, st.Position(), st.Src); err != nil {
			return err
		}
		if !c.fields[st.Field] {
			return errAt(st.Position(), "store to undeclared field %q", st.Field)
		}
	case *CallStmt:
		if st.Dst != "" {
			if err := c.local(m, s, st.Position(), st.Dst); err != nil {
				return err
			}
		}
		if err := c.local(m, s, st.Position(), st.Recv); err != nil {
			return err
		}
		for _, a := range st.Args {
			if err := c.local(m, s, st.Position(), a); err != nil {
				return err
			}
		}
	case *IfStmt:
		if err := c.checkBlock(m, s, st.Then, false); err != nil {
			return err
		}
		return c.checkBlock(m, s, st.Else, false)
	case *LoopStmt:
		return c.checkBlock(m, s, st.Body, false)
	case *QueryStmt:
		return c.local(m, s, st.Position(), st.Var)
	case *ReturnStmt:
		return errAt(st.Position(), "method %s: return must be the last statement of the method body", m.QualName())
	default:
		return fmt.Errorf("ir: unknown statement %T", st)
	}
	return nil
}
