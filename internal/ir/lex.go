package ir

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds of the textual IR.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokAssign
	tokDot
	tokAt
	tokStar
	tokColon
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokDot:
		return "'.'"
	case tokAt:
		return "'@'"
	case tokStar:
		return "'*'"
	case tokColon:
		return "':'"
	}
	return "?"
}

// token is a lexed token with its position.
type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer produces tokens from source text. Comments run from // to newline.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a lexing or parsing error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *lexer) advance() byte {
	b := l.src[l.off]
	l.off++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *lexer) skipSpaceAndComments() {
	for {
		b, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			l.advance()
		case b == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for {
				b2, ok2 := l.peekByte()
				if !ok2 || b2 == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || b == '$' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || unicode.IsDigit(rune(b))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := Pos{l.line, l.col}
	b, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, pos: pos}, nil
	}
	switch b {
	case '{':
		l.advance()
		return token{tokLBrace, "{", pos}, nil
	case '}':
		l.advance()
		return token{tokRBrace, "}", pos}, nil
	case '(':
		l.advance()
		return token{tokLParen, "(", pos}, nil
	case ')':
		l.advance()
		return token{tokRParen, ")", pos}, nil
	case ',':
		l.advance()
		return token{tokComma, ",", pos}, nil
	case '=':
		l.advance()
		return token{tokAssign, "=", pos}, nil
	case '.':
		l.advance()
		return token{tokDot, ".", pos}, nil
	case '@':
		l.advance()
		return token{tokAt, "@", pos}, nil
	case '*':
		l.advance()
		return token{tokStar, "*", pos}, nil
	case ':':
		l.advance()
		return token{tokColon, ":", pos}, nil
	}
	if isIdentStart(b) {
		var sb strings.Builder
		for {
			b2, ok2 := l.peekByte()
			if !ok2 || !isIdentPart(b2) {
				break
			}
			sb.WriteByte(l.advance())
		}
		return token{tokIdent, sb.String(), pos}, nil
	}
	return token{}, l.errorf(pos, "unexpected character %q", string(b))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
