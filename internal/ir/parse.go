package ir

import "fmt"

// Parse parses the textual IR into a Program and runs the semantic checker.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse for tests and generated sources that are known good.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// keywords that cannot be used as identifiers for variables, fields, etc.
var keywords = map[string]bool{
	"class": true, "extends": true, "field": true, "method": true,
	"native": true, "var": true, "new": true, "null": true, "if": true,
	"else": true, "loop": true, "return": true, "query": true,
	"global": true, "local": true, "state": true,
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return &Error{Pos: t.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.advance()
	if t.kind != k {
		return t, p.errorf(t, "expected %s, found %q", k, t.text)
	}
	return t, nil
}

// ident consumes an identifier that is not a reserved keyword.
func (p *parser) ident() (token, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return t, err
	}
	if keywords[t.text] {
		return t, p.errorf(t, "%q is a reserved word", t.text)
	}
	return t, nil
}

// keyword consumes the given contextual keyword.
func (p *parser) keyword(kw string) (token, error) {
	t := p.advance()
	if t.kind != tokIdent || t.text != kw {
		return t, p.errorf(t, "expected %q, found %q", kw, t.text)
	}
	return t, nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return prog, nil
		case p.atKeyword("global"):
			p.advance()
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, names...)
		case p.atKeyword("class"):
			c, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, c)
		default:
			return nil, p.errorf(t, "expected 'class' or 'global', found %q", t.text)
		}
	}
}

func (p *parser) identList() ([]string, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	out := []string{first.text}
	for p.peek().kind == tokComma {
		p.advance()
		t, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
	}
	return out, nil
}

func (p *parser) classDecl() (*Class, error) {
	kw, err := p.keyword("class")
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	c := &Class{Name: name.text, Pos: kw.pos}
	if p.atKeyword("extends") {
		p.advance()
		super, err := p.ident()
		if err != nil {
			return nil, err
		}
		c.Super = super.text
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peek().kind == tokRBrace:
			p.advance()
			return c, nil
		case p.atKeyword("field"):
			p.advance()
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, names...)
		case p.atKeyword("native"), p.atKeyword("method"):
			m, err := p.methodDecl(c)
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, m)
		default:
			return nil, p.errorf(p.peek(), "expected member declaration, found %q", p.peek().text)
		}
	}
}

func (p *parser) methodDecl(c *Class) (*Method, error) {
	m := &Method{Class: c}
	if p.atKeyword("native") {
		p.advance()
		m.Native = true
	}
	kw, err := p.keyword("method")
	if err != nil {
		return nil, err
	}
	m.Pos = kw.pos
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m.Name = name.text
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.peek().kind != tokRParen {
		params, err := p.identList()
		if err != nil {
			return nil, err
		}
		m.Params = params
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if m.Native {
		return m, nil
	}
	body, err := p.block(m)
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, nil
}

func (p *parser) block(m *Method) ([]Stmt, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		if p.peek().kind == tokRBrace {
			p.advance()
			return out, nil
		}
		s, err := p.stmt(m)
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

func (p *parser) stmt(m *Method) (Stmt, error) {
	t := p.peek()
	switch {
	case p.atKeyword("var"):
		p.advance()
		names, err := p.identList()
		if err != nil {
			return nil, err
		}
		m.Locals = append(m.Locals, names...)
		return nil, nil
	case p.atKeyword("if"):
		return p.ifStmt(m)
	case p.atKeyword("loop"):
		kw := p.advance()
		body, err := p.block(m)
		if err != nil {
			return nil, err
		}
		return &LoopStmt{stmtBase{kw.pos}, body}, nil
	case p.atKeyword("return"):
		kw := p.advance()
		ret := &ReturnStmt{stmtBase: stmtBase{kw.pos}}
		if p.peek().kind == tokIdent && !keywords[p.peek().text] && p.peek2().kind == tokRBrace {
			v := p.advance()
			ret.Src = v.text
		}
		return ret, nil
	case p.atKeyword("query"):
		return p.queryStmt()
	case t.kind == tokIdent:
		return p.simpleStmt()
	}
	return nil, p.errorf(t, "expected statement, found %q", t.text)
}

func (p *parser) ifStmt(m *Method) (Stmt, error) {
	kw := p.advance()
	if _, err := p.expect(tokStar); err != nil {
		return nil, err
	}
	then, err := p.block(m)
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.atKeyword("else") {
		p.advance()
		els, err = p.block(m)
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{stmtBase{kw.pos}, then, els}, nil
}

func (p *parser) queryStmt() (Stmt, error) {
	kw := p.advance()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	q := &QueryStmt{stmtBase: stmtBase{kw.pos}, Name: name.text}
	switch {
	case p.atKeyword("local"):
		p.advance()
		q.Kind = QueryLocal
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Var = v.text
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	case p.atKeyword("state"):
		p.advance()
		q.Kind = QueryTypestate
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Var = v.text
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		for p.peek().kind == tokIdent {
			s := p.advance()
			q.States = append(q.States, s.text)
		}
		if len(q.States) == 0 {
			return nil, p.errorf(p.peek(), "query %s: expected at least one state", q.Name)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf(p.peek(), "expected 'local' or 'state', found %q", p.peek().text)
	}
	return q, nil
}

// simpleStmt parses statements beginning with an identifier: assignments,
// stores, and calls.
func (p *parser) simpleStmt() (Stmt, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	base := stmtBase{first.pos}
	switch p.peek().kind {
	case tokDot:
		p.advance()
		member, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch p.peek().kind {
		case tokAssign: // v.f = w
			p.advance()
			src, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &StoreStmt{base, first.text, member.text, src.text}, nil
		case tokLParen: // v.m(args)
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &CallStmt{base, "", first.text, member.text, args}, nil
		}
		return nil, p.errorf(p.peek(), "expected '=' or '(' after %s.%s", first.text, member.text)
	case tokAssign:
		p.advance()
		return p.assignRHS(base, first.text)
	}
	return nil, p.errorf(p.peek(), "expected '=' or '.' after %q", first.text)
}

func (p *parser) assignRHS(base stmtBase, dst string) (Stmt, error) {
	t := p.peek()
	switch {
	case p.atKeyword("new"):
		p.advance()
		cls, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAt); err != nil {
			return nil, err
		}
		site, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &NewStmt{base, dst, cls.text, site.text}, nil
	case p.atKeyword("null"):
		p.advance()
		return &NullStmt{base, dst}, nil
	case t.kind == tokIdent:
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokDot {
			p.advance()
			member, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.peek().kind == tokLParen { // v = w.m(args)
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				return &CallStmt{base, dst, src.text, member.text, args}, nil
			}
			return &LoadStmt{base, dst, src.text, member.text}, nil
		}
		// Move or global read; the checker reclassifies by declaration.
		return &MoveStmt{base, dst, src.text}, nil
	}
	return nil, p.errorf(t, "expected expression, found %q", t.text)
}

func (p *parser) args() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.peek().kind == tokRParen {
		p.advance()
		return nil, nil
	}
	out, err := p.identList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return out, nil
}
