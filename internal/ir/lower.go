package ir

import (
	"fmt"

	"tracer/internal/lang"
)

// Resolver abstracts the call-graph oracle the lowering needs; the
// pointsto package's Result implements it. Keeping it an interface avoids
// an import cycle and lets tests use hand-written call graphs.
type Resolver interface {
	// Targets returns the possible callees of a call statement.
	Targets(s *CallStmt) []*Method
}

// Lowered is the whole program expanded into a single CFG over the
// structured language of §3.1. Virtual calls are resolved through the
// 0-CFA call graph and inlined context-sensitively — the moral equivalent
// of the exploded supergraph an RHS tabulation solver works on, specialized
// to acyclic call graphs (see DESIGN.md). Locals are qualified as
// "Class.method::v", so the abstraction family of the type-state analysis
// ranges over method-locals exactly as in the paper.
type Lowered struct {
	G    *lang.CFG
	Prog *Program

	// Calls lists every inlined occurrence of a call site, with the CFG
	// node immediately before the type-state event — the pc of the
	// evaluation's type-state queries (§6).
	Calls []CallSite
	// Accesses lists every inlined field access (load or store), the pc of
	// the evaluation's thread-escape queries.
	Accesses []FieldAccess
	// Queries lists explicit query statements.
	Queries []ExplicitQuery
	// Atoms counts non-ε edges, a proxy for "bytecodes" in Table 1.
	Atoms int
	// AtomsByMethod attributes atom counts to the source method whose
	// statement produced them (call-glue atoms count toward the caller).
	AtomsByMethod map[*Method]int
}

// CallSite is one inlined occurrence of a source call statement.
type CallSite struct {
	Stmt   *CallStmt
	Method *Method // enclosing source method
	Node   int     // node immediately before the call event
	Recv   string  // qualified receiver variable
}

// FieldAccess is one inlined occurrence of a field load or store.
type FieldAccess struct {
	Stmt   Stmt
	Method *Method
	Node   int
	Base   string // qualified base-pointer variable
}

// ExplicitQuery is a lowered query statement.
type ExplicitQuery struct {
	Name   string
	Kind   QueryKind
	Var    string // qualified
	States []string
	Node   int
	Method *Method
}

// LowerOptions tunes lowering.
type LowerOptions struct {
	// MaxDepth bounds the inlining depth (default 64). Exceeding it, or
	// encountering recursion, is an error: the benchmark programs are
	// generated with acyclic call graphs.
	MaxDepth int
}

func (o LowerOptions) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 64
	}
	return o.MaxDepth
}

// Qualify returns the qualified name of local v in method m.
func Qualify(m *Method, v string) string { return m.QualName() + "::" + v }

type lowerer struct {
	prog *Program
	res  Resolver
	opts LowerOptions
	out  *Lowered
	// stack is the current inline chain, for recursion detection.
	stack []*Method
}

// Lower expands the program from its Main.main entry into a CFG.
func Lower(prog *Program, res Resolver, opts LowerOptions) (*Lowered, error) {
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("ir: program has no Main.main entry method")
	}
	lw := &lowerer{prog: prog, res: res, opts: opts, out: &Lowered{G: lang.NewCFG(), Prog: prog, AtomsByMethod: map[*Method]int{}}}
	g := lw.out.G
	g.Entry = g.AddNode()
	end, err := lw.method(main, g.Entry)
	if err != nil {
		return nil, err
	}
	g.Exit = end
	for _, e := range g.Edges {
		if e.A != nil {
			lw.out.Atoms++
		}
	}
	return lw.out, nil
}

// atom appends a single atom edge attributed to method m and returns the
// new node.
func (lw *lowerer) atom(m *Method, from int, a lang.Atom) int {
	to := lw.out.G.AddNode()
	lw.out.G.AddEdge(from, to, a)
	lw.out.AtomsByMethod[m]++
	return to
}

// method inlines a method body, nulling its locals first (a fresh frame).
func (lw *lowerer) method(m *Method, from int) (int, error) {
	for _, prev := range lw.stack {
		if prev == m {
			return 0, fmt.Errorf("ir: recursive call chain through %s (the inlining lowering requires an acyclic call graph)", m.QualName())
		}
	}
	if len(lw.stack) >= lw.opts.maxDepth() {
		return 0, fmt.Errorf("ir: inlining depth limit (%d) exceeded at %s", lw.opts.maxDepth(), m.QualName())
	}
	lw.stack = append(lw.stack, m)
	defer func() { lw.stack = lw.stack[:len(lw.stack)-1] }()
	cur := from
	for _, v := range m.Locals {
		cur = lw.atom(m, cur, lang.MoveNull{V: Qualify(m, v)})
	}
	return lw.block(m, m.Body, cur)
}

func (lw *lowerer) block(m *Method, body []Stmt, from int) (int, error) {
	cur := from
	var err error
	for _, s := range body {
		cur, err = lw.stmt(m, s, cur)
		if err != nil {
			return 0, err
		}
	}
	return cur, nil
}

func (lw *lowerer) stmt(m *Method, s Stmt, from int) (int, error) {
	q := func(v string) string { return Qualify(m, v) }
	g := lw.out.G
	switch s := s.(type) {
	case *NewStmt:
		return lw.atom(m, from, lang.Alloc{V: q(s.Dst), H: s.Site}), nil
	case *MoveStmt:
		return lw.atom(m, from, lang.Move{Dst: q(s.Dst), Src: q(s.Src)}), nil
	case *NullStmt:
		return lw.atom(m, from, lang.MoveNull{V: q(s.Dst)}), nil
	case *GlobalGet:
		return lw.atom(m, from, lang.GlobalRead{V: q(s.Dst), G: s.Global}), nil
	case *GlobalPut:
		return lw.atom(m, from, lang.GlobalWrite{G: s.Global, V: q(s.Src)}), nil
	case *LoadStmt:
		lw.out.Accesses = append(lw.out.Accesses, FieldAccess{Stmt: s, Method: m, Node: from, Base: q(s.Src)})
		return lw.atom(m, from, lang.Load{Dst: q(s.Dst), Src: q(s.Src), F: s.Field}), nil
	case *StoreStmt:
		lw.out.Accesses = append(lw.out.Accesses, FieldAccess{Stmt: s, Method: m, Node: from, Base: q(s.Dst)})
		return lw.atom(m, from, lang.Store{Dst: q(s.Dst), F: s.Field, Src: q(s.Src)}), nil
	case *IfStmt:
		thenEnd, err := lw.block(m, s.Then, from)
		if err != nil {
			return 0, err
		}
		elseEnd, err := lw.block(m, s.Else, from)
		if err != nil {
			return 0, err
		}
		join := g.AddNode()
		g.AddEdge(thenEnd, join, nil)
		g.AddEdge(elseEnd, join, nil)
		return join, nil
	case *LoopStmt:
		head := g.AddNode()
		g.AddEdge(from, head, nil)
		bodyEnd, err := lw.block(m, s.Body, head)
		if err != nil {
			return 0, err
		}
		g.AddEdge(bodyEnd, head, nil)
		return head, nil
	case *ReturnStmt:
		return from, nil // the caller reads the returned variable directly
	case *QueryStmt:
		lw.out.Queries = append(lw.out.Queries, ExplicitQuery{
			Name: s.Name, Kind: s.Kind, Var: q(s.Var), States: s.States,
			Node: from, Method: m,
		})
		return from, nil
	case *CallStmt:
		return lw.call(m, s, from)
	}
	return 0, fmt.Errorf("ir: cannot lower statement %T", s)
}

// call lowers "[dst =] recv.m(args)": a type-state event followed by the
// inlined bodies of every possible callee (a nondeterministic choice).
func (lw *lowerer) call(m *Method, s *CallStmt, from int) (int, error) {
	g := lw.out.G
	recv := Qualify(m, s.Recv)
	lw.out.Calls = append(lw.out.Calls, CallSite{Stmt: s, Method: m, Node: from, Recv: recv})
	cur := lw.atom(m, from, lang.Invoke{V: recv, M: s.Method})
	var bodied []*Method
	for _, callee := range lw.res.Targets(s) {
		if !callee.Native {
			bodied = append(bodied, callee)
		}
	}
	if len(bodied) == 0 {
		if s.Dst != "" {
			cur = lw.atom(m, cur, lang.MoveNull{V: Qualify(m, s.Dst)})
		}
		return cur, nil
	}
	join := g.AddNode()
	for _, callee := range bodied {
		branch := cur
		branch = lw.atom(m, branch, lang.Move{Dst: Qualify(callee, "this"), Src: recv})
		for i, p := range callee.Params {
			if i < len(s.Args) {
				branch = lw.atom(m, branch, lang.Move{Dst: Qualify(callee, p), Src: Qualify(m, s.Args[i])})
			} else {
				branch = lw.atom(m, branch, lang.MoveNull{V: Qualify(callee, p)})
			}
		}
		end, err := lw.method(callee, branch)
		if err != nil {
			return 0, err
		}
		if s.Dst != "" {
			if ret := calleeReturn(callee); ret != "" {
				end = lw.atom(m, end, lang.Move{Dst: Qualify(m, s.Dst), Src: Qualify(callee, ret)})
			} else {
				end = lw.atom(m, end, lang.MoveNull{V: Qualify(m, s.Dst)})
			}
		}
		g.AddEdge(end, join, nil)
	}
	return join, nil
}

// calleeReturn returns the variable a method returns, or "".
func calleeReturn(m *Method) string {
	if len(m.Body) == 0 {
		return ""
	}
	if ret, ok := m.Body[len(m.Body)-1].(*ReturnStmt); ok {
		return ret.Src
	}
	return ""
}
