package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/faultinject"
	"tracer/internal/obs"
)

// fixtureSrc is a small interprocedural program with one typestate and a few
// escape queries — enough to exercise both clients cheaply.
const fixtureSrc = `
global registry

class File {
  native method open(this)
  native method close(this)
}

class Conn {
  field buf
  method fill(this, b) {
    this.buf = b
    return this
  }
}

class Pool {
  method put(this, c) {
    if * {
      registry = c
    }
  }
}

class Main {
  method main(this) {
    var f, c, p, b, c2
    f = new File @ hFile
    f.open()
    f.close()
    c = new Conn @ hConn
    b = new Conn @ hBuf
    c2 = c.fill(b)
    p = new Pool @ hPool
    p.put(c)
    query qBuf local(b)
    query qPool local(p)
    query qFile state(f: closed)
  }
}
`

// newTestServer builds a started Server plus an httptest front end, torn
// down (drained) at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		hs.Close()
	})
	return s, hs
}

// postJSON posts raw bytes to /solve and returns the status plus body.
func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

// solve posts a SolveRequest and decodes the 200 response.
func solve(t *testing.T, url string, sr SolveRequest) SolveResponse {
	t.Helper()
	body, _ := json.Marshal(sr)
	status, data := postJSON(t, url, body)
	if status != http.StatusOK {
		t.Fatalf("POST /solve = %d, want 200; body %s", status, data)
	}
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	return out
}

// localTruth solves every fixture query directly through core.Solve.
func localTruth(t *testing.T, src string, k int) map[string]core.Result {
	t.Helper()
	prog, err := driver.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]core.Result{}
	for _, q := range prog.TypestateQueries() {
		r, err := core.Solve(prog.TypestateJob(q, k), core.Options{})
		if err != nil {
			t.Fatalf("truth %s: %v", q.ID, err)
		}
		truth["typestate/"+q.ID] = r
	}
	for _, q := range prog.EscapeQueries() {
		r, err := core.Solve(prog.EscapeJob(q, k), core.Options{})
		if err != nil {
			t.Fatalf("truth %s: %v", q.ID, err)
		}
		truth["escape/"+q.ID] = r
	}
	return truth
}

// TestSolveMatchesCore: every fixture query served over HTTP returns the
// same verdict and cost as a direct core.Solve.
func TestSolveMatchesCore(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	truth := localTruth(t, fixtureSrc, 5)
	prog, _ := driver.Load(fixtureSrc)
	check := func(client, id string) {
		resp := solve(t, hs.URL, SolveRequest{
			Program: fixtureSrc, Client: client, Query: id,
		})
		want := truth[client+"/"+id]
		if resp.Status != want.Status.String() {
			t.Errorf("%s %s: status %s, want %s", client, id, resp.Status, want.Status)
		}
		if want.Status == core.Proved && resp.Cost != want.Abstraction.Len() {
			t.Errorf("%s %s: cost %d, want %d", client, id, resp.Cost, want.Abstraction.Len())
		}
		if resp.Batch.ID == "" || resp.Batch.Size < 1 {
			t.Errorf("%s %s: missing batch info %+v", client, id, resp.Batch)
		}
		if resp.Timing.TotalNS <= 0 || resp.Timing.SolveNS <= 0 {
			t.Errorf("%s %s: missing timings %+v", client, id, resp.Timing)
		}
	}
	for _, q := range prog.TypestateQueries() {
		check("typestate", q.ID)
	}
	for _, q := range prog.EscapeQueries() {
		check("escape", q.ID)
	}
}

// TestQuerySelectors: index ("#n") and position-independent key selectors
// resolve to the same query as the display ID.
func TestQuerySelectors(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	prog, _ := driver.Load(fixtureSrc)
	q := prog.EscapeQueries()[0]
	byID := solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: q.ID})
	byKey := solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: q.Key})
	byIx := solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
	if byID.Status != byKey.Status || byID.Status != byIx.Status ||
		byID.Cost != byKey.Cost || byID.Cost != byIx.Cost {
		t.Errorf("selector mismatch: id=%+v key=%+v ix=%+v", byID, byKey, byIx)
	}
}

// TestCoalescing: compatible concurrent requests share one batch round.
func TestCoalescing(t *testing.T) {
	_, hs := newTestServer(t, Config{BatchSize: 4, MaxWait: 200 * time.Millisecond})
	var wg sync.WaitGroup
	resps := make([]SolveResponse, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Identical queries coalesce too — each request keeps its own
			// batch slot and response.
			resps[i] = solve(t, hs.URL, SolveRequest{
				Program: fixtureSrc, Client: "escape", Query: "#0",
			})
		}(i)
	}
	wg.Wait()
	batches := map[string]int{}
	for _, r := range resps {
		batches[r.Batch.ID]++
	}
	// All four arrive well inside MaxWait, so they fire as one full batch.
	if len(batches) != 1 {
		t.Fatalf("requests spread over %d batches (%v), want 1", len(batches), batches)
	}
	for _, r := range resps {
		if !r.Batch.Coalesced || r.Batch.Size != 4 {
			t.Errorf("batch info %+v, want coalesced size 4", r.Batch)
		}
	}
}

// TestQueueFullSheds: with the executor pipeline saturated by delayed
// batches and a one-slot accept queue, excess arrivals get structured 429s
// with a Retry-After.
func TestQueueFullSheds(t *testing.T) {
	inj := faultinject.New()
	for i := 0; i < 16; i++ {
		inj.DelayAt(faultinject.SiteServerBatch, fmt.Sprintf("b%d", i), 300*time.Millisecond)
	}
	_, hs := newTestServer(t, Config{
		MaxWait:              -1, // fire every request immediately
		QueueLimit:           1,
		MaxConcurrentBatches: 1,
		Inject:               inj,
	})
	body, _ := json.Marshal(SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
	const n = 8
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postJSON(t, hs.URL, body)
		}(i)
		time.Sleep(20 * time.Millisecond) // establish arrival order
	}
	wg.Wait()
	shed := 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++
			var er ErrorResponse
			if err := json.Unmarshal(bodies[i], &er); err != nil || er.Error == "" {
				t.Errorf("429 body %s not a structured error", bodies[i])
			}
			if er.RetryAfterMS <= 0 {
				t.Errorf("429 without retry_after_ms: %s", bodies[i])
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, st)
		}
	}
	if shed == 0 {
		t.Error("no request was shed despite a saturated one-slot queue")
	}
}

// TestTenantQuota: a tenant over its token bucket is shed with 429 while
// other tenants still get through.
func TestTenantQuota(t *testing.T) {
	_, hs := newTestServer(t, Config{TenantRPS: 0.001, TenantBurst: 1})
	body, _ := json.Marshal(SolveRequest{
		Program: fixtureSrc, Client: "escape", Query: "#0", Tenant: "a",
	})
	if st, _ := postJSON(t, hs.URL, body); st != http.StatusOK {
		t.Fatalf("first request of tenant a = %d, want 200", st)
	}
	st, data := postJSON(t, hs.URL, body)
	if st != http.StatusTooManyRequests {
		t.Fatalf("second request of tenant a = %d (%s), want 429", st, data)
	}
	other, _ := json.Marshal(SolveRequest{
		Program: fixtureSrc, Client: "escape", Query: "#0", Tenant: "b",
	})
	if st, _ := postJSON(t, hs.URL, other); st != http.StatusOK {
		t.Fatalf("tenant b = %d, want 200", st)
	}
}

// TestRequestSiteFaults: injected faults on the admission path degrade the
// one targeted request — panic to Failed, trip to Exhausted — on HTTP 200.
func TestRequestSiteFaults(t *testing.T) {
	inj := faultinject.New()
	inj.PanicAt(faultinject.SiteServerRequest, "r0")
	inj.TripAt(faultinject.SiteServerRequest, "r1")
	cap := obs.NewCapture()
	_, hs := newTestServer(t, Config{Inject: inj, Recorder: cap})
	got := solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
	if got.Status != "failed" || got.Failure == "" {
		t.Errorf("r0 = %+v, want failed with failure detail", got)
	}
	got = solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
	if got.Status != "exhausted" {
		t.Errorf("r1 status = %s, want exhausted", got.Status)
	}
	// The third request is untouched and solves normally.
	got = solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
	if got.Status != "proved" && got.Status != "impossible" {
		t.Errorf("r2 status = %s, want a real verdict", got.Status)
	}
	assertAccessLogReconciles(t, cap.Events())
}

// TestStatsAndHealth: the sidecar endpoints serve the counters and the
// liveness verdict.
func TestStatsAndHealth(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	solve(t, hs.URL, SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.Batches != 1 || st.Draining {
		t.Errorf("stats = %+v, want 1 accepted, 1 batch, not draining", st)
	}
}

// assertAccessLogReconciles checks the access-log contract: every accepted
// request id has exactly one terminal query_resolved event, and every
// rejected id has none.
func assertAccessLogReconciles(t *testing.T, events []obs.Event) {
	t.Helper()
	accepted := map[string]bool{}
	rejected := map[string]bool{}
	resolved := map[string]int{}
	for _, e := range events {
		switch e.Kind {
		case obs.RequestAccepted:
			accepted[e.Query] = true
		case obs.RequestRejected:
			rejected[e.Query] = true
		case obs.QueryResolved:
			resolved[e.Query]++
		}
	}
	for id := range accepted {
		if resolved[id] != 1 {
			t.Errorf("accepted request %s has %d query_resolved events, want 1", id, resolved[id])
		}
	}
	for id := range resolved {
		if !accepted[id] {
			t.Errorf("query_resolved for %s without request_accepted", id)
		}
	}
	for id := range rejected {
		if accepted[id] || resolved[id] > 0 {
			t.Errorf("rejected request %s also appears accepted/resolved", id)
		}
	}
}
