package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"tracer/internal/bench"
	"tracer/internal/core"
)

// TestServerPathMatchesSolve is the metamorphic server-path oracle: for a
// real corpus program, the daemon's coalesced batch responses must carry
// exactly the verdicts and costs of independent per-query core.Solve runs,
// and must not depend on how requests happened to coalesce (heavily batched
// vs one round per request).
func TestServerPathMatchesSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus oracle is not a -short test")
	}
	b := bench.MustLoad(bench.Suite()[0]) // tsp

	type q struct {
		client string
		ix     int
		id     string
	}
	var queries []q
	for i, tq := range b.Prog.TypestateQueries() {
		if i >= 12 {
			break
		}
		queries = append(queries, q{"typestate", i, tq.ID})
	}
	for i, eq := range b.Prog.EscapeQueries() {
		if i >= 12 {
			break
		}
		queries = append(queries, q{"escape", i, eq.ID})
	}

	truth := make([]core.Result, len(queries))
	for i, qq := range queries {
		var job core.Problem
		if qq.client == "typestate" {
			job = b.Prog.TypestateJob(b.Prog.TypestateQueries()[qq.ix], 5)
		} else {
			job = b.Prog.EscapeJob(b.Prog.EscapeQueries()[qq.ix], 5)
		}
		r, err := core.Solve(job, core.Options{})
		if err != nil {
			t.Fatalf("truth %s: %v", qq.id, err)
		}
		truth[i] = r
	}

	// Two server shapes that must be observationally identical.
	shapes := []struct {
		name string
		cfg  Config
	}{
		{"coalesced", Config{BatchSize: 6, MaxWait: 50 * time.Millisecond, Workers: 2}},
		{"uncoalesced", Config{MaxWait: -1}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			_, hs := newTestServer(t, shape.cfg)
			resps := make([]SolveResponse, len(queries))
			var wg sync.WaitGroup
			sem := make(chan struct{}, 8)
			for i, qq := range queries {
				wg.Add(1)
				go func(i int, qq q) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					resps[i] = solve(t, hs.URL, SolveRequest{
						Program: b.Source,
						Client:  qq.client,
						Query:   fmt.Sprintf("#%d", qq.ix),
						K:       5,
					})
				}(i, qq)
			}
			wg.Wait()
			for i, resp := range resps {
				want := truth[i]
				if resp.Status != want.Status.String() {
					t.Errorf("%s %s: status %s, want %s",
						queries[i].client, queries[i].id, resp.Status, want.Status)
					continue
				}
				if want.Status == core.Proved {
					if resp.Cost != want.Abstraction.Len() {
						t.Errorf("%s %s: cost %d, want %d",
							queries[i].client, queries[i].id, resp.Cost, want.Abstraction.Len())
					}
					if len(resp.Abstraction) != resp.Cost {
						t.Errorf("%s %s: abstraction %v does not match cost %d",
							queries[i].client, queries[i].id, resp.Abstraction, resp.Cost)
					}
				}
			}
		})
	}
}

// TestResponseWireStability pins the JSON field names of the wire structs:
// clients and the load generator parse these, so a rename is a breaking
// change that should fail loudly here.
func TestResponseWireStability(t *testing.T) {
	resp := SolveResponse{ID: "r0", Status: "proved", Cost: 2,
		Abstraction: []string{"a", "b"}, Iterations: 3, Clauses: 4,
		ForwardSteps: 5, Timing: PhaseTiming{DecodeNS: 1, QueueNS: 2, SolveNS: 3, TotalNS: 4},
		Batch: BatchInfo{ID: "b0", Size: 2, Rounds: 1, Coalesced: true}}
	data, _ := json.Marshal(resp)
	want := `{"id":"r0","status":"proved","cost":2,"abstraction":["a","b"],` +
		`"iterations":3,"clauses":4,"forward_steps":5,` +
		`"timing":{"decode_ns":1,"queue_ns":2,"solve_ns":3,"total_ns":4},` +
		`"batch":{"id":"b0","size":2,"rounds":1,"coalesced":true}}`
	if string(data) != want {
		t.Errorf("SolveResponse wire form drifted:\n got %s\nwant %s", data, want)
	}
	edata, _ := json.Marshal(ErrorResponse{ID: "r1", Error: "x", RetryAfterMS: 9})
	ewant := `{"id":"r1","error":"x","retry_after_ms":9}`
	if string(edata) != ewant {
		t.Errorf("ErrorResponse wire form drifted:\n got %s\nwant %s", edata, ewant)
	}
}
