package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/faultinject"
	"tracer/internal/obs"
)

// TestChaosSoak hammers an in-process daemon with concurrent requests under
// seeded fault injection across both the server sites and the solver's own
// hooks, then drains it. The acceptance bar: the daemon never dies, nothing
// is silently dropped, the only outcomes are true verdicts, per-request
// degradation (failed/exhausted), or structured shedding (429/503) — and a
// proved/impossible answer is never wrong.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not a -short test")
	}
	prog, err := driver.Load(fixtureSrc)
	if err != nil {
		t.Fatal(err)
	}
	nts, nesc := len(prog.TypestateQueries()), len(prog.EscapeQueries())

	truth := map[string]core.Result{}
	for i, q := range prog.TypestateQueries() {
		r, err := core.Solve(prog.TypestateJob(q, 5), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		truth[fmt.Sprintf("typestate#%d", i)] = r
	}
	for i, q := range prog.EscapeQueries() {
		r, err := core.Solve(prog.EscapeJob(q, 5), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		truth[fmt.Sprintf("escape#%d", i)] = r
	}

	for _, seed := range []int64{7, 41} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			capture := obs.NewCapture()
			s := New(Config{
				BatchSize:  3,
				MaxWait:    3 * time.Millisecond,
				QueueLimit: 16,
				Workers:    2,
				Inject:     faultinject.Seeded(seed, 0.08),
				Recorder:   capture,
			})
			hs := httptest.NewServer(s.Handler())

			const n, workers = 48, 12
			type outcome struct {
				key        string
				httpStatus int
				status     string
				cost       int
			}
			outcomes := make([]outcome, n)
			var wg sync.WaitGroup
			next := make(chan int)
			go func() {
				for i := 0; i < n; i++ {
					next <- i
				}
				close(next)
			}()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range next {
						client, ix := "typestate", i%(nts+nesc)
						if ix >= nts {
							client, ix = "escape", ix-nts
						}
						key := fmt.Sprintf("%s#%d", client, ix)
						b, _ := json.Marshal(SolveRequest{
							Program: fixtureSrc, Client: client,
							Query: fmt.Sprintf("#%d", ix), TimeoutMS: 10_000,
						})
						st, body := postJSON(t, hs.URL, b)
						o := outcome{key: key, httpStatus: st}
						if st == http.StatusOK {
							var resp SolveResponse
							if err := json.Unmarshal(body, &resp); err != nil {
								t.Errorf("bad 200 body %s: %v", body, err)
							}
							o.status, o.cost = resp.Status, resp.Cost
						}
						outcomes[i] = o
					}
				}()
			}
			wg.Wait()

			degraded, shed := 0, 0
			for i, o := range outcomes {
				switch o.httpStatus {
				case http.StatusOK:
					switch o.status {
					case "proved", "impossible":
						want := truth[o.key]
						if o.status != want.Status.String() {
							t.Errorf("request %d (%s): WRONG VERDICT %s, want %s",
								i, o.key, o.status, want.Status)
						} else if o.status == "proved" && o.cost != want.Abstraction.Len() {
							t.Errorf("request %d (%s): WRONG COST %d, want %d",
								i, o.key, o.cost, want.Abstraction.Len())
						}
					case "exhausted", "failed":
						degraded++
					default:
						t.Errorf("request %d (%s): unexpected solver status %q", i, o.key, o.status)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed++
				default:
					t.Errorf("request %d (%s): unexpected HTTP %d", i, o.key, o.httpStatus)
				}
			}
			t.Logf("seed %d: %d requests, %d degraded, %d shed, %d faults fired",
				seed, n, degraded, shed, len(s.inj.Fired()))

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Fatalf("Shutdown after chaos = %v", err)
			}
			hs.Close()
			assertAccessLogReconciles(t, capture.Events())
		})
	}
}
