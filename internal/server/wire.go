// Wire format of the solver daemon: the JSON request/response bodies of
// POST /solve and the hardened decoder that turns an untrusted body into an
// admitted request. The decoder is the daemon's first line of defense: any
// malformed, oversized, or semantically invalid payload must come back as a
// structured 400 — never a panic, and never an enqueued request that a batch
// round then chokes on.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"tracer/internal/driver"
)

// SolveRequest is the body of POST /solve.
type SolveRequest struct {
	// Program is the mini-IR source text to analyze.
	Program string `json:"program"`
	// Client selects the parametric analysis by its registry wire name:
	// "typestate", "escape", or "nullness" (see driver.Clients).
	Client string `json:"client"`
	// Query names one generated query of the client: an exact query ID
	// ("esc:Class.m:3:5:v"), an exact position-independent key, or "#<n>"
	// for the n'th query in the client's deterministic order.
	Query string `json:"query"`
	// K is the beam width of the backward meta-analysis (default 5).
	K int `json:"k,omitempty"`
	// MaxIters caps the query's CEGAR iterations (default/cap: the server's
	// MaxIters config).
	MaxIters int `json:"max_iters,omitempty"`
	// TimeoutMS is the per-request wall-clock budget, measured from arrival
	// (default: the server's DefaultTimeout; capped at MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tenant identifies the caller for per-tenant quotas (also settable via
	// the X-Tenant header; the header wins when both are present).
	Tenant string `json:"tenant,omitempty"`
}

// PhaseTiming is the flat, CSV-friendly per-request timing breakdown.
type PhaseTiming struct {
	// DecodeNS is the cost of decoding, validating, and loading (or finding
	// cached) the request's program.
	DecodeNS int64 `json:"decode_ns"`
	// QueueNS is the time between admission and the start of the coalesced
	// batch round that solved the request.
	QueueNS int64 `json:"queue_ns"`
	// SolveNS is the wall time of the batch round (shared by every request
	// coalesced into it).
	SolveNS int64 `json:"solve_ns"`
	// TotalNS is arrival to response construction.
	TotalNS int64 `json:"total_ns"`
}

// BatchInfo describes the coalesced round that resolved a request.
type BatchInfo struct {
	// ID is the round's server-assigned id ("b<seq>").
	ID string `json:"id"`
	// Size is the number of requests coalesced into the round.
	Size int `json:"size"`
	// Rounds is the number of CEGAR scheduling rounds the batch ran.
	Rounds int `json:"rounds,omitempty"`
	// Coalesced reports whether the request shared its round with others.
	Coalesced bool `json:"coalesced"`
}

// SolveResponse is the 200 body of POST /solve. Status carries the solver
// verdict — proved, impossible, exhausted, or failed — so HTTP 200 means
// "the daemon resolved the request", not "the query was proved"; degraded
// outcomes are per-request statuses, never process deaths.
type SolveResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Cost and Abstraction report the minimum proving abstraction when
	// Status == "proved".
	Cost         int         `json:"cost,omitempty"`
	Abstraction  []string    `json:"abstraction,omitempty"`
	Iterations   int         `json:"iterations"`
	Clauses      int         `json:"clauses"`
	ForwardSteps int         `json:"forward_steps"`
	Failure      string      `json:"failure,omitempty"`
	Timing       PhaseTiming `json:"timing"`
	Batch        BatchInfo   `json:"batch"`
}

// ErrorResponse is the structured body of every non-200 status.
type ErrorResponse struct {
	ID    string `json:"id,omitempty"`
	Error string `json:"error"`
	// RetryAfterMS accompanies 429/503 and mirrors the Retry-After header,
	// derived from the current round wall and queue depth.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// clientKind is a validated SolveRequest.Client: a driver registry wire
// name (driver.ClientByName(string(kind)) != nil for every admitted
// request). The named constants exist for tests and readability; dispatch
// goes through the registry, not through enumerating them.
type clientKind string

const (
	clientTypestate clientKind = "typestate"
	clientEscape    clientKind = "escape"
	clientNullness  clientKind = "nullness"
)

// kMax bounds the accepted beam width; larger values are a resource-abuse
// vector (the meta-analysis is exponential in k), not a legitimate request.
const kMax = 64

// badRequestError is returned by decode for every client-side defect; its
// message is safe to echo into the 400 body.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badReqf(format string, args ...any) *badRequestError {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// request is one admitted solve request flowing through the batcher.
type request struct {
	id      string
	tenant  string
	client  clientKind
	lp      *loadedProgram
	queryIx int
	k       int
	maxIter int
	timeout time.Duration

	arrival  time.Time
	deadline time.Time
	compat   string // coalescing compatibility key
	decodeNS int64

	done chan SolveResponse // buffered(1); the batcher always delivers
}

// decode parses, validates, and resolves a request body. It never panics: a
// panicking parse (a decoder bug surfaced by fuzzing) is recovered into a
// structured error so the offending payload degrades to a 400 instead of
// taking the handler goroutine down.
func (s *Server) decode(body []byte) (req *request, err error) {
	defer func() {
		if r := recover(); r != nil {
			req, err = nil, badReqf("malformed request: %v", r)
		}
	}()
	var sr SolveRequest
	if jerr := json.Unmarshal(body, &sr); jerr != nil {
		return nil, badReqf("malformed JSON: %v", jerr)
	}
	if sr.Program == "" {
		return nil, badReqf("missing program")
	}
	client := clientKind(sr.Client)
	if driver.ClientByName(sr.Client) == nil {
		return nil, badReqf("invalid client %q (want %s)", sr.Client,
			strings.Join(driver.ClientNames(), "|"))
	}
	if sr.K == 0 {
		sr.K = 5
	}
	if sr.K < 1 || sr.K > kMax {
		return nil, badReqf("k %d out of range [1,%d]", sr.K, kMax)
	}
	if sr.MaxIters == 0 {
		sr.MaxIters = s.cfg.MaxIters
	}
	if sr.MaxIters < 1 || sr.MaxIters > s.cfg.MaxIters {
		return nil, badReqf("max_iters %d out of range [1,%d]", sr.MaxIters, s.cfg.MaxIters)
	}
	timeout := s.cfg.DefaultTimeout
	if sr.TimeoutMS != 0 {
		if sr.TimeoutMS < 0 {
			return nil, badReqf("negative timeout_ms")
		}
		timeout = time.Duration(sr.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	lp, lerr := s.progs.get(sr.Program)
	if lerr != nil {
		return nil, badReqf("program does not load: %v", lerr)
	}
	ix, qerr := lp.resolveQuery(client, sr.Query)
	if qerr != nil {
		return nil, qerr
	}
	return &request{
		tenant:  sr.Tenant,
		client:  client,
		lp:      lp,
		queryIx: ix,
		k:       sr.K,
		maxIter: sr.MaxIters,
		timeout: timeout,
		compat: fmt.Sprintf("%s|%s|k%d|i%d|t%d", lp.key, client, sr.K,
			sr.MaxIters, timeout/time.Millisecond),
		done: make(chan SolveResponse, 1),
	}, nil
}

// resolveQuery maps a query selector onto an index into the client's
// deterministic generated-query order.
func (lp *loadedProgram) resolveQuery(client clientKind, sel string) (int, error) {
	cq := lp.byClient[client]
	if cq == nil {
		return 0, badReqf("invalid client %q", client)
	}
	n, idx := len(cq.qs), cq.idx
	if sel == "" {
		return 0, badReqf("missing query selector")
	}
	if sel[0] == '#' {
		var i int
		if _, err := fmt.Sscanf(sel, "#%d", &i); err != nil || i < 0 || i >= n {
			return 0, badReqf("query index %q out of range [0,%d)", sel, n)
		}
		return i, nil
	}
	if i, ok := idx[sel]; ok {
		return i, nil
	}
	return 0, badReqf("no %s query matches %q (%d queries)", client, sel, n)
}

// queryID returns the canonical display ID of the request's query.
func (r *request) queryID() string {
	return r.lp.byClient[r.client].qs[r.queryIx].ID
}

// queryKey returns the position-independent warm-store key of the query.
func (r *request) queryKey() string {
	return r.lp.byClient[r.client].qs[r.queryIx].Key
}

// paramName renders parameter i of the request's abstraction family.
func (r *request) paramName(i int) string {
	return r.lp.byClient[r.client].params[i]
}

// hashSource content-addresses a program text for the cache and the
// coalescing key.
func hashSource(src string) string {
	h := fnv.New64a()
	h.Write([]byte(src))
	return fmt.Sprintf("%016x-%d", h.Sum64(), len(src))
}

// clientQueries is one client's generated-query view of a loaded program:
// the deterministic query list, the selector index (both the display ID and
// the position-independent key of each query map to its index), and the
// parameter universe in parameter-index order.
type clientQueries struct {
	qs     []driver.GenQuery
	idx    map[string]int
	params []string
}

// loadedProgram is a parsed, analyzed program with every registered client's
// generated query lists and selector indices, built once and shared
// read-only by every batch that names the same source text.
type loadedProgram struct {
	key      string
	prog     *driver.Program
	byClient map[clientKind]*clientQueries
}

// loadProgram parses and prepares src. Lazily-built driver memos (statement
// keys, site owners) are forced here, on one goroutine, because the result is
// shared by concurrent batch executors.
func loadProgram(key, src string) (lp *loadedProgram, err error) {
	defer func() {
		if r := recover(); r != nil {
			lp, err = nil, fmt.Errorf("panic while loading program: %v", r)
		}
	}()
	prog, err := driver.Load(src)
	if err != nil {
		return nil, err
	}
	lp = &loadedProgram{key: key, prog: prog, byClient: map[clientKind]*clientQueries{}}
	for _, spec := range driver.Clients() {
		cq := &clientQueries{qs: spec.Queries(prog), idx: map[string]int{},
			params: spec.ParamNames(prog)}
		for i, q := range cq.qs {
			cq.idx[q.ID] = i
			cq.idx[q.Key] = i
		}
		lp.byClient[clientKind(spec.Name)] = cq
	}
	prog.SiteOwner("") // force the site-owner memo (used by warm sessions)
	return lp, nil
}
