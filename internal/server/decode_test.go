package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newDecodeServer builds a Server without an HTTP front end, for driving
// decode directly.
func newDecodeServer(t testing.TB) *Server {
	s := New(Config{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func validBody(t testing.TB) []byte {
	body, err := json.Marshal(SolveRequest{
		Program: fixtureSrc, Client: "escape", Query: "#0", K: 3,
		MaxIters: 50, TimeoutMS: 1000, Tenant: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDecodeRejects: every class of malformed payload is a structured
// badRequestError, never a panic and never an admitted request.
func TestDecodeRejects(t *testing.T) {
	s := newDecodeServer(t)
	mut := func(f func(*SolveRequest)) []byte {
		sr := SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"}
		f(&sr)
		b, _ := json.Marshal(sr)
		return b
	}
	cases := []struct {
		name string
		body []byte
		want string // substring of the error
	}{
		{"empty", nil, "malformed JSON"},
		{"not json", []byte("hello"), "malformed JSON"},
		{"truncated", validBody(t)[:20], "malformed JSON"},
		{"json array", []byte(`[1,2,3]`), "malformed JSON"},
		{"wrong field type", []byte(`{"program": 7}`), "malformed JSON"},
		{"missing program", mut(func(r *SolveRequest) { r.Program = "" }), "missing program"},
		{"unknown client", mut(func(r *SolveRequest) { r.Client = "alias" }), "invalid client"},
		{"k too large", mut(func(r *SolveRequest) { r.K = kMax + 1 }), "out of range"},
		{"k negative", mut(func(r *SolveRequest) { r.K = -1 }), "out of range"},
		{"max_iters negative", mut(func(r *SolveRequest) { r.MaxIters = -4 }), "out of range"},
		{"max_iters huge", mut(func(r *SolveRequest) { r.MaxIters = 1 << 30 }), "out of range"},
		{"negative timeout", mut(func(r *SolveRequest) { r.TimeoutMS = -1 }), "negative timeout"},
		{"missing query", mut(func(r *SolveRequest) { r.Query = "" }), "missing query"},
		{"unknown query", mut(func(r *SolveRequest) { r.Query = "nope" }), "no escape query"},
		{"query index out of range", mut(func(r *SolveRequest) { r.Query = "#999" }), "out of range"},
		{"query index garbage", mut(func(r *SolveRequest) { r.Query = "#x" }), "out of range"},
		{"unparseable program", mut(func(r *SolveRequest) { r.Program = "class {" }), "does not load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := s.decode(tc.body)
			if err == nil {
				t.Fatalf("decode accepted %q as request %+v", tc.body, req)
			}
			if _, ok := err.(*badRequestError); !ok {
				t.Fatalf("error %v is %T, not *badRequestError", err, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeDefaults: omitted knobs take the server's defaults and caps.
func TestDecodeDefaults(t *testing.T) {
	s := newDecodeServer(t)
	b, _ := json.Marshal(SolveRequest{Program: fixtureSrc, Client: "typestate", Query: "#0"})
	req, err := s.decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if req.k != 5 || req.maxIter != s.cfg.MaxIters || req.timeout != s.cfg.DefaultTimeout {
		t.Errorf("defaults = k%d i%d t%v", req.k, req.maxIter, req.timeout)
	}
	b, _ = json.Marshal(SolveRequest{Program: fixtureSrc, Client: "typestate",
		Query: "#0", TimeoutMS: int64(10 * time.Hour / time.Millisecond)})
	req, err = s.decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if req.timeout != s.cfg.MaxTimeout {
		t.Errorf("oversized timeout not capped: %v", req.timeout)
	}
}

// TestOversizedBodyIs400: a body over -max-request-bytes is a structured
// 400 at the HTTP layer, before the decoder ever runs.
func TestOversizedBodyIs400(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxRequestBytes: 512})
	st, data := postJSON(t, hs.URL, validBody(t)) // fixture program > 512 bytes
	if st != http.StatusBadRequest {
		t.Fatalf("oversized body = %d (%s), want 400", st, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
		t.Fatalf("400 body %s is not a structured error", data)
	}
}

// TestDecoderSeededFuzz is the deterministic fuzz pass run by make fuzz:
// byte-level mutations of a valid request must never panic the decoder, and
// whatever it accepts must satisfy the validated invariants. Scale with
// DECODER_FUZZ_N.
func TestDecoderSeededFuzz(t *testing.T) {
	n := 500
	if v := os.Getenv("DECODER_FUZZ_N"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	s := newDecodeServer(t)
	rng := rand.New(rand.NewSource(1))
	seed := validBody(t)
	for i := 0; i < n; i++ {
		body := append([]byte(nil), seed...)
		for m := rng.Intn(8); m >= 0; m-- {
			switch rng.Intn(4) {
			case 0: // flip a byte
				body[rng.Intn(len(body))] = byte(rng.Intn(256))
			case 1: // truncate
				body = body[:rng.Intn(len(body)+1)]
			case 2: // duplicate a chunk
				at := rng.Intn(len(body) + 1)
				chunk := body[:rng.Intn(len(body)+1)]
				body = append(body[:at:at], append(append([]byte(nil), chunk...), body[at:]...)...)
			case 3: // splice random JSON-ish noise
				noise := []string{`{"k":`, `}`, `"program":"x"`, "\x00", `[[[`, `1e309`}
				body = append(body, noise[rng.Intn(len(noise))]...)
			}
			if len(body) == 0 {
				body = []byte{byte(rng.Intn(256))}
			}
		}
		checkDecodeInvariants(t, s, body)
	}
}

// FuzzDecodeRequest is the native fuzz target over the same invariants
// (go test -fuzz=FuzzDecodeRequest ./internal/server).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"program":"class {","client":"escape","query":"#0"}`))
	f.Add([]byte(`{"program":"x","client":"typestate","query":"#0","k":-1}`))
	f.Add(validBody(f))
	s := newDecodeServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		checkDecodeInvariants(t, s, body)
	})
}

// checkDecodeInvariants: decode must return either a structured error or a
// request within validated bounds — and must not panic (a panic inside
// decode is recovered into an error; a panic escaping it fails the test).
func checkDecodeInvariants(t *testing.T, s *Server, body []byte) {
	t.Helper()
	req, err := s.decode(body)
	if err != nil {
		if _, ok := err.(*badRequestError); !ok {
			t.Fatalf("decode(%q) error %v is %T, not *badRequestError", body, err, err)
		}
		return
	}
	if req.k < 1 || req.k > kMax {
		t.Fatalf("accepted k %d out of bounds", req.k)
	}
	if req.maxIter < 1 || req.maxIter > s.cfg.MaxIters {
		t.Fatalf("accepted max_iters %d out of bounds", req.maxIter)
	}
	if req.timeout <= 0 || req.timeout > s.cfg.MaxTimeout {
		t.Fatalf("accepted timeout %v out of bounds", req.timeout)
	}
	if req.lp == nil {
		t.Fatal("accepted request with no loaded program")
	}
	n := len(req.lp.byClient[req.client].qs)
	if req.queryIx < 0 || req.queryIx >= n {
		t.Fatalf("accepted query index %d out of range [0,%d)", req.queryIx, n)
	}
	_ = fmt.Sprintf("%s %s", req.queryID(), req.queryKey())
}
