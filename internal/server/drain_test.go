package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tracer/internal/faultinject"
	"tracer/internal/obs"
)

// TestGracefulDrain is the graceful-degradation integration test: with a
// request in flight (held open by an injected batch delay), Shutdown must
// let it finish with a correct verdict, shed new arrivals with 503, return
// cleanly, and leave an access log in which every accepted request's stream
// terminates.
func TestGracefulDrain(t *testing.T) {
	inj := faultinject.New()
	inj.DelayAt(faultinject.SiteServerBatch, "b0", 400*time.Millisecond)
	// Drain must also survive its own chaos site.
	inj.PanicAt(faultinject.SiteServerDrain, "drain")
	capture := obs.NewCapture()
	s := New(Config{MaxWait: -1, Inject: inj, Recorder: capture})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
		st, body := postJSON(t, hs.URL, b)
		inflight <- result{st, body}
	}()

	// Wait for the request to actually be inside its (delayed) batch round.
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().InflightBatches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached a batch round")
		}
		time.Sleep(5 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// New arrivals during the drain get structured 503s.
	deadline = time.Now().Add(5 * time.Second)
	for {
		b, _ := json.Marshal(SolveRequest{Program: fixtureSrc, Client: "escape", Query: "#0"})
		st, body := postJSON(t, hs.URL, b)
		if st == http.StatusServiceUnavailable {
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("503 body %s is not a structured error", body)
			}
			if er.RetryAfterMS <= 0 {
				t.Errorf("503 without retry_after_ms: %s", body)
			}
			break
		}
		// The drain flag may not be set yet; 200 means we raced ahead of
		// Shutdown, which is fine — try again.
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting new requests")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight request still completes, correctly.
	select {
	case r := <-inflight:
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request = %d (%s), want 200", r.status, r.body)
		}
		var resp SolveResponse
		if err := json.Unmarshal(r.body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != "proved" && resp.Status != "impossible" {
			t.Errorf("in-flight request resolved %s, want a real verdict", resp.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if !s.Snapshot().Draining {
		t.Error("stats do not report draining after shutdown")
	}
	// A second Shutdown is a harmless no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
	assertAccessLogReconciles(t, capture.Events())
}

// TestShutdownDeadlineForcesTrip: when the drain grace period expires, the
// in-flight solve is cancelled cooperatively — the request resolves (as
// exhausted) rather than being abandoned, and Shutdown reports the ctx
// error.
func TestShutdownDeadlineForcesTrip(t *testing.T) {
	// An injected pre-solve delay holds the round in flight well past the
	// 1ms drain grace below, so Shutdown's deadline fires while the request
	// is mid-batch and the forced-cancel path is actually exercised.
	inj := faultinject.New()
	inj.DelayAt(faultinject.SiteServerBatch, "b0", 300*time.Millisecond)
	s := New(Config{MaxWait: -1, Inject: inj})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	done := make(chan SolveResponse, 1)
	go func() {
		b, _ := json.Marshal(SolveRequest{Program: fixtureSrc, Client: "typestate", Query: "#0"})
		st, body := postJSON(t, hs.URL, b)
		if st != http.StatusOK {
			t.Errorf("in-flight request = %d (%s)", st, body)
			done <- SolveResponse{}
			return
		}
		var resp SolveResponse
		_ = json.Unmarshal(body, &resp)
		done <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().InflightBatches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached a batch round")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	resp := <-done
	// Either the solve finished under the wire (nil error, real verdict) or
	// it was forced (deadline error, exhausted verdict) — both are clean
	// outcomes; what must not happen is an abandoned request or a non-ctx
	// error.
	if err != nil && err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v", err)
	}
	if resp.Status == "" {
		t.Fatal("in-flight request abandoned during forced drain")
	}
}
