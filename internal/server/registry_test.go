package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
)

// TestBogusClientFailsRoundWithoutWarmSession is the warmClient regression
// test: a request whose client kind is not registered must fail its round
// with "invalid client" and must never open a warm-store session. Before the
// fix, runBatch's dispatch fell through to the escape batch and warmClient
// mapped any unknown kind onto warm.Escape, so a forged client silently
// solved against — and wrote snapshots into — the escape warm store.
func TestBogusClientFailsRoundWithoutWarmSession(t *testing.T) {
	warmDir := t.TempDir()
	s := newDecodeServer2(t, Config{WarmDir: warmDir})
	req, err := s.decode(validBody(t))
	if err != nil {
		t.Fatal(err)
	}
	req.client = "bogus"
	req.id = "q0"
	req.arrival = time.Now()
	req.deadline = req.arrival.Add(time.Minute)

	s.runBatch([]*request{req})
	resp := <-req.done

	if resp.Status != core.Failed.String() {
		t.Fatalf("bogus client resolved %q, want %q", resp.Status, core.Failed)
	}
	if !strings.Contains(resp.Failure, "invalid client") {
		t.Fatalf("failure %q does not mention invalid client", resp.Failure)
	}
	entries, err := os.ReadDir(warmDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("bogus client wrote %d warm-store file(s); a session was opened", len(entries))
	}
}

// newDecodeServer2 is newDecodeServer with a config.
func newDecodeServer2(t testing.TB, cfg Config) *Server {
	s := New(cfg)
	t.Cleanup(func() { _ = s.Shutdown(t.Context()) })
	return s
}

// TestBogusClientIs400 asserts the HTTP-level contract of the same bug: an
// unregistered client is a structured 400 naming the invalid client, not an
// admitted request.
func TestBogusClientIs400(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	body, _ := json.Marshal(SolveRequest{Program: fixtureSrc, Client: "bogus", Query: "#0"})
	st, data := postJSON(t, hs.URL, body)
	if st != http.StatusBadRequest {
		t.Fatalf("bogus client = %d (%s), want 400", st, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || !strings.Contains(er.Error, "invalid client") {
		t.Fatalf("400 body %s does not name the invalid client", data)
	}
}

// TestClientsRoundTripWire iterates the driver registry and round-trips
// every registered client through the server wire format: each client's
// generated queries resolve by position, by ID, and by key; the decoded
// request renders the same IDs, keys, and parameter names the registry
// reports; and a positional request solves end to end over HTTP.
func TestClientsRoundTripWire(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	prog, err := driver.Load(fixtureSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range driver.Clients() {
		t.Run(spec.Name, func(t *testing.T) {
			qs := spec.Queries(prog)
			if len(qs) == 0 {
				t.Fatalf("client %s generates no queries on the fixture", spec.Name)
			}
			params := spec.ParamNames(prog)
			for i, q := range qs {
				for _, sel := range []string{fmt.Sprintf("#%d", i), q.ID, q.Key} {
					body, _ := json.Marshal(SolveRequest{
						Program: fixtureSrc, Client: spec.Name, Query: sel})
					req, err := s.decode(body)
					if err != nil {
						t.Fatalf("decode(%s, %q): %v", spec.Name, sel, err)
					}
					if req.queryIx != i {
						t.Fatalf("selector %q resolved to %d, want %d", sel, req.queryIx, i)
					}
					if req.queryID() != q.ID || req.queryKey() != q.Key {
						t.Fatalf("round-trip %q: got (%s, %s), want (%s, %s)",
							sel, req.queryID(), req.queryKey(), q.ID, q.Key)
					}
					for pi, name := range params {
						if got := req.paramName(pi); got != name {
							t.Fatalf("paramName(%d) = %q, want %q", pi, got, name)
						}
					}
				}
			}
			resp := solve(t, hs.URL, SolveRequest{
				Program: fixtureSrc, Client: spec.Name, Query: "#0", TimeoutMS: 30000})
			if resp.Status != core.Proved.String() && resp.Status != core.Impossible.String() {
				t.Fatalf("query #0 resolved %q over HTTP", resp.Status)
			}
		})
	}
}
