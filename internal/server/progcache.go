package server

import "sync"

// progCache is a bounded, content-addressed LRU of loaded programs. Repeat
// requests for the same program text — the common case for a service fed by
// a fleet of clients analyzing one codebase — skip the parse/points-to/lower
// pipeline entirely and share one read-only *driver.Program.
//
// Loads are deduplicated: concurrent first requests for the same source wait
// on one load (the entry's once gate) instead of parsing in parallel. Load
// errors are cached too, so a malformed program hammered by a retry loop
// costs one parse, not one per request.
type progCache struct {
	mu      sync.Mutex
	size    int
	tick    int64
	entries map[string]*progEntry
}

type progEntry struct {
	once sync.Once
	lp   *loadedProgram
	err  error
	used int64 // LRU tick, guarded by progCache.mu
}

func newProgCache(size int) *progCache {
	if size < 1 {
		size = 1
	}
	return &progCache{size: size, entries: map[string]*progEntry{}}
}

// get returns the loaded program for src, loading it at most once.
func (c *progCache) get(src string) (*loadedProgram, error) {
	key := hashSource(src)
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &progEntry{}
		c.entries[key] = e
		c.evictLocked()
	}
	c.tick++
	e.used = c.tick
	c.mu.Unlock()
	e.once.Do(func() {
		e.lp, e.err = loadProgram(key, src)
	})
	return e.lp, e.err
}

// evictLocked drops least-recently-used entries beyond the size bound. An
// evicted entry still loading is unaffected: its waiters hold the pointer.
func (c *progCache) evictLocked() {
	for len(c.entries) > c.size {
		var lruKey string
		var lru int64 = 1<<63 - 1
		for k, e := range c.entries {
			if e.used < lru {
				lruKey, lru = k, e.used
			}
		}
		delete(c.entries, lruKey)
	}
}
