// Package server implements tracerd's hardened solve service: an HTTP front
// end that admits solve requests under explicit resource bounds, coalesces
// compatible requests into shared core.SolveBatch rounds, and degrades —
// never dies — when overloaded, fed garbage, or fault-injected.
//
// The survivability contract, end to end:
//
//   - Malformed, oversized, or semantically invalid payloads are structured
//     400s. The decoder never panics and a bad payload never occupies a
//     batch slot.
//   - The accept queue is bounded; beyond it the daemon sheds load with 429
//     and a Retry-After priced from the observed batch wall. Per-tenant
//     token buckets bound any one caller's share.
//   - Per-request deadlines map onto the batch budget.Budget; a request that
//     expires in the queue resolves Exhausted without consuming solver time.
//   - Solver panics and budget trips surface as per-request Failed/Exhausted
//     statuses on HTTP 200 — a 200 means "resolved", not "proved".
//   - SIGTERM drains gracefully: in-flight and queued requests finish, new
//     arrivals get 503, the access log flushes, the process exits 0.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/faultinject"
	"tracer/internal/obs"
	"tracer/internal/warm"
)

// Config carries the daemon's admission and solving knobs. Zero values get
// production defaults from New.
type Config struct {
	// BatchSize fires a coalescing group when it reaches this many requests
	// (default 8).
	BatchSize int
	// MaxWait bounds how long the oldest request of a group waits before the
	// group fires anyway (zero takes the 15ms default). Negative disables
	// coalescing: every request fires its own round immediately.
	MaxWait time.Duration
	// QueueLimit bounds the accept queue; arrivals beyond it get 429
	// (default 256).
	QueueLimit int
	// MaxConcurrentBatches bounds the executor pool (default 4).
	MaxConcurrentBatches int
	// MaxRequestBytes bounds the request body (default 1<<20). Larger bodies
	// are structured 400s.
	MaxRequestBytes int64
	// DefaultTimeout applies to requests that name no timeout_ms
	// (default 5s); MaxTimeout caps what any request may ask for
	// (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxIters caps per-request CEGAR iterations (default 1000).
	MaxIters int
	// TenantRPS/TenantBurst configure per-tenant token buckets; TenantRPS 0
	// disables quotas.
	TenantRPS   float64
	TenantBurst int
	// Workers and FwdCacheSize pass through to core.Options.
	Workers      int
	FwdCacheSize int
	// ProgCacheSize bounds the content-addressed loaded-program cache
	// (default 32).
	ProgCacheSize int
	// WarmDir mounts a warm-start store; empty disables it.
	WarmDir string
	// Recorder receives the access log and server.* counters (default none).
	Recorder obs.Recorder
	// Inject wires deterministic fault injection through both the server
	// sites and the solver's own hooks (default none).
	Inject *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.MaxWait == 0 {
		c.MaxWait = 15 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.MaxConcurrentBatches <= 0 {
		c.MaxConcurrentBatches = 4
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 1000
	}
	if c.ProgCacheSize <= 0 {
		c.ProgCacheSize = 32
	}
	if c.Recorder == nil {
		c.Recorder = obs.Nop{}
	}
	return c
}

// Server is the solve service. Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg       Config
	rec       obs.Recorder
	recording bool
	inj       *faultinject.Injector

	progs  *progCache
	quotas *quotas
	warm   *warm.Store
	warmMu sync.Mutex

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// acceptMu serializes admission against the drain flip: handlers hold it
	// shared around {draining check; queued.Add; send}, Shutdown holds it
	// exclusively to set draining. After Shutdown releases it, queued can
	// only decrease, which is what makes the dispatcher's drain loop finite.
	acceptMu sync.RWMutex
	draining bool

	in      chan *request
	queued  atomic.Int64
	quiesce chan struct{}

	execCh         chan []*request
	execWG         sync.WaitGroup
	dispatcherDone chan struct{}

	rseq        atomic.Int64
	bseq        atomic.Int64
	inflight    atomic.Int64
	ewmaBatchNS atomic.Int64

	stats serverStats
}

type serverStats struct {
	accepted       atomic.Int64
	rejectedBadReq atomic.Int64
	rejectedQueue  atomic.Int64
	rejectedQuota  atomic.Int64
	rejectedDrain  atomic.Int64
	expired        atomic.Int64
	batches        atomic.Int64
	warmSaveErrs   atomic.Int64
}

// Stats is a point-in-time snapshot of the daemon's counters, served on
// GET /stats.
type Stats struct {
	Accepted           int64 `json:"accepted"`
	RejectedBadRequest int64 `json:"rejected_bad_request"`
	RejectedQueueFull  int64 `json:"rejected_queue_full"`
	RejectedQuota      int64 `json:"rejected_quota"`
	RejectedDraining   int64 `json:"rejected_draining"`
	ExpiredInQueue     int64 `json:"expired_in_queue"`
	Batches            int64 `json:"batches"`
	WarmSaveErrors     int64 `json:"warm_save_errors"`
	Queued             int64 `json:"queued"`
	InflightBatches    int64 `json:"inflight_batches"`
	Draining           bool  `json:"draining"`
	EWMABatchMS        int64 `json:"ewma_batch_ms"`
}

// New builds and starts a Server: the dispatcher and executor pool run until
// Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:            cfg,
		rec:            cfg.Recorder,
		recording:      cfg.Recorder.Enabled(),
		inj:            cfg.Inject,
		progs:          newProgCache(cfg.ProgCacheSize),
		quotas:         newQuotas(cfg.TenantRPS, cfg.TenantBurst),
		warm:           warm.Open(cfg.WarmDir, cfg.Recorder),
		in:             make(chan *request, cfg.QueueLimit),
		quiesce:        make(chan struct{}),
		execCh:         make(chan []*request, 1),
		dispatcherDone: make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.execWG.Add(cfg.MaxConcurrentBatches)
	for i := 0; i < cfg.MaxConcurrentBatches; i++ {
		go s.executor()
	}
	go s.dispatch()
	return s
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// handleSolve is the admission path: bound the body, decode, quota-check,
// fire the request-site chaos hook, enqueue (or shed), then wait for the
// batcher's response.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	id := fmt.Sprintf("r%d", s.rseq.Add(1)-1)

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	body, rerr := io.ReadAll(r.Body)
	if rerr != nil {
		s.reject(w, id, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("request body unreadable or over %d bytes: %v",
				s.cfg.MaxRequestBytes, rerr))
		return
	}
	req, derr := s.decode(body)
	if derr != nil {
		s.reject(w, id, http.StatusBadRequest, "bad_request", derr.Error())
		return
	}
	req.id = id
	req.arrival = arrival
	req.deadline = arrival.Add(req.timeout)
	req.decodeNS = int64(time.Since(arrival))
	if h := r.Header.Get("X-Tenant"); h != "" {
		req.tenant = h
	}

	if !s.quotas.allow(req.tenant, arrival) {
		s.reject(w, id, http.StatusTooManyRequests, "quota",
			fmt.Sprintf("tenant %q over quota", req.tenant))
		return
	}

	// Request-site chaos hook. A panic resolves this request Failed, a trip
	// resolves it Exhausted — in both cases before it can occupy a batch
	// slot, and with the access-log stream still correctly terminated.
	hookBud := budget.New(nil, time.Time{}, 0)
	var hookPanic string
	func() {
		defer func() {
			if p := recover(); p != nil {
				hookPanic = fmt.Sprint(p)
			}
		}()
		s.inj.At(hookBud, faultinject.SiteServerRequest, id)
	}()
	if hookPanic != "" {
		s.accepted(req)
		s.writeResolvedHTTP(w, req, core.Failed, "injected request fault: "+hookPanic)
		return
	}
	if hookBud.Tripped() {
		s.accepted(req)
		s.writeResolvedHTTP(w, req, core.Exhausted, "")
		return
	}

	s.acceptMu.RLock()
	if s.draining {
		s.acceptMu.RUnlock()
		s.reject(w, id, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	s.queued.Add(1)
	select {
	case s.in <- req:
	default:
		s.queued.Add(-1)
		s.acceptMu.RUnlock()
		s.reject(w, id, http.StatusTooManyRequests, "queue_full", "accept queue full")
		return
	}
	s.accepted(req)
	s.acceptMu.RUnlock()

	if s.recording {
		s.rec.Gauge(obs.ServerQueueDepth, s.queued.Load())
	}

	select {
	case resp := <-req.done:
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// The client went away. The batcher still delivers into the buffered
		// channel; there is nothing left to write.
	}
}

// accepted marks a request admitted — counted and logged only once its fate
// is decided (enqueued, or resolved degraded on the admission path), so an
// accepted request always gets a terminal query_resolved event and a shed
// one never logs as accepted.
func (s *Server) accepted(req *request) {
	s.stats.accepted.Add(1)
	if s.recording {
		s.rec.Count(obs.ServerAccepted, 1)
		s.rec.Record(obs.Event{Kind: obs.RequestAccepted, Query: req.id, Name: req.compat})
	}
}

// writeResolvedHTTP resolves a request on the admission path (request-site
// fault) with a 200-carried degraded status, keeping the one-terminal-event
// access-log invariant.
func (s *Server) writeResolvedHTTP(w http.ResponseWriter, req *request, status core.Status, failure string) {
	if s.recording {
		s.rec.Record(obs.Event{Kind: obs.QueryResolved, Query: req.id,
			Status: status.String(), WallNS: int64(time.Since(req.arrival))})
	}
	resp := SolveResponse{
		ID:      req.id,
		Status:  status.String(),
		Failure: failure,
		Timing: PhaseTiming{
			DecodeNS: req.decodeNS,
			TotalNS:  int64(time.Since(req.arrival)),
		},
	}
	writeJSON(w, http.StatusOK, resp)
}

// reject writes one structured non-200, bumps its counter, and logs the
// rejection.
func (s *Server) reject(w http.ResponseWriter, id string, status int, reason, msg string) {
	var retryMS int64
	switch reason {
	case "bad_request":
		s.stats.rejectedBadReq.Add(1)
	case "queue_full":
		s.stats.rejectedQueue.Add(1)
	case "quota":
		s.stats.rejectedQuota.Add(1)
	case "draining":
		s.stats.rejectedDrain.Add(1)
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		retryMS = s.retryAfterMS()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (retryMS+999)/1000))
	}
	if s.recording {
		s.rec.Count(rejectCounter(reason), 1)
		s.rec.Record(obs.Event{Kind: obs.RequestRejected, Query: id,
			Name: reason, Status: fmt.Sprintf("%d", status)})
	}
	writeJSON(w, status, ErrorResponse{ID: id, Error: msg, RetryAfterMS: retryMS})
}

func rejectCounter(reason string) string {
	switch reason {
	case "queue_full":
		return obs.ServerRejectedQueue
	case "quota":
		return obs.ServerRejectedQuota
	case "draining":
		return obs.ServerRejectedDrain
	}
	return obs.ServerRejectedBadReq
}

// retryAfterMS prices a Retry-After from the EWMA batch wall scaled by the
// current load (queued rounds ahead plus rounds in flight), clamped to a
// sane range.
func (s *Server) retryAfterMS() int64 {
	base := s.ewmaBatchNS.Load()
	if min := int64(s.cfg.MaxWait); base < min {
		base = min
	}
	factor := s.queued.Load()/int64(s.cfg.BatchSize) + s.inflight.Load() + 1
	ms := base * factor / int64(time.Millisecond)
	if ms < 100 {
		ms = 100
	}
	if ms > 30_000 {
		ms = 30_000
	}
	return ms
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.acceptMu.RLock()
	draining := s.draining
	s.acceptMu.RUnlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot returns the current Stats.
func (s *Server) Snapshot() Stats {
	s.acceptMu.RLock()
	draining := s.draining
	s.acceptMu.RUnlock()
	return Stats{
		Accepted:           s.stats.accepted.Load(),
		RejectedBadRequest: s.stats.rejectedBadReq.Load(),
		RejectedQueueFull:  s.stats.rejectedQueue.Load(),
		RejectedQuota:      s.stats.rejectedQuota.Load(),
		RejectedDraining:   s.stats.rejectedDrain.Load(),
		ExpiredInQueue:     s.stats.expired.Load(),
		Batches:            s.stats.batches.Load(),
		WarmSaveErrors:     s.stats.warmSaveErrs.Load(),
		Queued:             s.queued.Load(),
		InflightBatches:    s.inflight.Load(),
		Draining:           draining,
		EWMABatchMS:        s.ewmaBatchNS.Load() / int64(time.Millisecond),
	}
}

// Shutdown drains the daemon: new arrivals start getting 503, every already
// admitted request is batched and finished, then the batcher goroutines
// exit. When ctx expires first, in-flight solves are cancelled through the
// base context — they resolve Exhausted through the solver's cooperative
// paths — and Shutdown still waits for them before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	// Drain-site chaos hook: shutdown must survive its own fault injection.
	func() {
		defer func() { recover() }()
		s.inj.At(budget.New(nil, time.Time{}, 0), faultinject.SiteServerDrain, "drain")
	}()

	s.acceptMu.Lock()
	already := s.draining
	s.draining = true
	s.acceptMu.Unlock()
	if !already {
		close(s.quiesce)
	}

	done := make(chan struct{})
	go func() {
		<-s.dispatcherDone
		s.execWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
