package server

import (
	"fmt"
	"strconv"
	"time"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/faultinject"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/uset"
	"tracer/internal/warm"
)

// The batcher turns the admitted request stream into coalesced
// core.SolveBatch rounds. A single dispatcher goroutine groups requests by
// their compatibility key (program content hash, client, k, iteration cap,
// timeout) and fires a group as one batch when it reaches BatchSize or its
// oldest member has waited MaxWait; a small executor pool runs the fired
// batches. Backpressure is a chain of bounded stages: executors busy → the
// exec channel fills → the dispatcher blocks → the accept queue fills → the
// handler sheds load with 429s. Nothing in the chain blocks unboundedly with
// a request's response channel unserved: every admitted request receives
// exactly one SolveResponse, whatever degrades along the way.

// pendingBatch accumulates compatible requests awaiting a fire trigger.
type pendingBatch struct {
	reqs   []*request
	oldest time.Time
}

// dispatch is the batcher's single grouping goroutine.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	pending := map[string]*pendingBatch{}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var timerC <-chan time.Time
		if len(pending) > 0 {
			next := time.Duration(1<<63 - 1)
			for _, pb := range pending {
				if d := time.Until(pb.oldest.Add(s.cfg.MaxWait)); d < next {
					next = d
				}
			}
			if next < 0 {
				next = 0
			}
			timer.Reset(next)
			timerC = timer.C
		}
		select {
		case req := <-s.in:
			s.queued.Add(-1)
			s.addPending(pending, req)
		case <-timerC:
			now := time.Now()
			for key, pb := range pending {
				if now.Sub(pb.oldest) >= s.cfg.MaxWait {
					delete(pending, key)
					s.execCh <- pb.reqs
				}
			}
		case <-s.quiesce:
			// Graceful drain: absorb every request already admitted (the
			// accept gate is closed, so queued only decreases), fire all
			// pending groups, and let the executors finish.
			for s.queued.Load() > 0 {
				req := <-s.in
				s.queued.Add(-1)
				s.addPending(pending, req)
			}
			for key, pb := range pending {
				delete(pending, key)
				s.execCh <- pb.reqs
			}
			close(s.execCh)
			return
		}
		if timerC != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// addPending files one request under its compatibility key, firing the group
// when it fills.
func (s *Server) addPending(pending map[string]*pendingBatch, req *request) {
	pb := pending[req.compat]
	if pb == nil {
		pb = &pendingBatch{oldest: time.Now()}
		pending[req.compat] = pb
	}
	pb.reqs = append(pb.reqs, req)
	if len(pb.reqs) >= s.cfg.BatchSize || s.cfg.MaxWait <= 0 {
		delete(pending, req.compat)
		s.execCh <- pb.reqs
	}
}

// executor drains fired batches until the exec channel closes at drain.
func (s *Server) executor() {
	defer s.execWG.Done()
	for reqs := range s.execCh {
		s.runBatch(reqs)
	}
}

// batchRecorder re-tags the solver's per-query events from batch indices to
// request ids, and stamps group-level events (which carry no query) with the
// batch id, so the access log is one attributable stream per request.
type batchRecorder struct {
	rec   obs.Recorder
	ids   []string
	batch string
}

func (b *batchRecorder) Enabled() bool { return true }
func (b *batchRecorder) Record(e obs.Event) {
	if e.Query == "" {
		e.Query = b.batch
	} else if i, err := strconv.Atoi(e.Query); err == nil && i >= 0 && i < len(b.ids) {
		e.Query = b.ids[i]
	}
	b.rec.Record(e)
}
func (b *batchRecorder) Count(name string, delta int64)      { b.rec.Count(name, delta) }
func (b *batchRecorder) Gauge(name string, v int64)          { b.rec.Gauge(name, v) }
func (b *batchRecorder) Timing(name string, d time.Duration) { b.rec.Timing(name, d) }

// runBatch executes one coalesced round. The survivability contract: every
// request in reqs gets exactly one response and one terminal query_resolved
// access-log event, and nothing that happens here — a panic in problem
// construction, an injected fault, a budget trip, a warm-store defect —
// escapes the round.
func (s *Server) runBatch(reqs []*request) {
	bid := fmt.Sprintf("b%d", s.bseq.Add(1)-1)
	start := time.Now()
	s.stats.batches.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// Partition out requests whose own deadline already passed in the
	// queue; they resolve Exhausted without occupying the round.
	var live []*request
	minDeadline := time.Time{}
	for _, r := range reqs {
		if !r.deadline.After(start) {
			s.stats.expired.Add(1)
			if s.recording {
				s.rec.Count(obs.ServerExpired, 1)
			}
			s.respondDegraded(r, bid, len(reqs), start, core.Exhausted, "deadline passed while queued")
			continue
		}
		if minDeadline.IsZero() || r.deadline.Before(minDeadline) {
			minDeadline = r.deadline
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if s.recording {
		s.rec.Count(obs.ServerBatches, 1)
		if len(live) > 1 {
			s.rec.Count(obs.ServerCoalesced, int64(len(live)))
		}
		for _, r := range live {
			s.rec.Timing(obs.ServerBatchWait, start.Sub(r.arrival))
		}
	}

	failAll := func(msg string) {
		for _, r := range live {
			s.respondDegraded(r, bid, len(reqs), start, core.Failed, msg)
		}
	}

	// Batch-site chaos hook. A panic fails the round's requests (never the
	// process); an injected trip lands on the throwaway budget and is
	// translated into a one-step quota so the round resolves Exhausted
	// through the solver's own cooperative paths.
	hookBud := budget.New(nil, time.Time{}, 0)
	var hookPanic string
	func() {
		defer func() {
			if r := recover(); r != nil {
				hookPanic = fmt.Sprint(r)
			}
		}()
		s.inj.At(hookBud, faultinject.SiteServerBatch, bid)
	}()
	if hookPanic != "" {
		failAll("injected batch fault: " + hookPanic)
		return
	}

	// From here on, any panic (problem construction, a solver defect that
	// escapes core's own recovery, a warm-store bug) degrades the round.
	defer func() {
		if r := recover(); r != nil {
			failAll(fmt.Sprintf("batch panic: %v", r))
		}
	}()

	first := live[0]
	// Dispatch through the client registry. decode admits only registered
	// clients, so an unresolvable kind here is a defect (a request forged in
	// tests, or a registry edit racing a deploy) — fail the round before any
	// query key is resolved or any warm-store session can be opened against
	// the wrong client's snapshots.
	spec := driver.ClientByName(string(first.client))
	wc, wcOK := warmClient(first.client)
	if spec == nil || !wcOK {
		failAll(fmt.Sprintf("invalid client %q", first.client))
		return
	}
	opts := core.Options{
		MaxIters:     first.maxIter,
		Timeout:      minDeadline.Sub(start),
		Context:      s.baseCtx,
		Workers:      s.cfg.Workers,
		FwdCacheSize: s.cfg.FwdCacheSize,
		Inject:       s.inj,
	}
	if opts.Timeout <= 0 {
		opts.Timeout = time.Millisecond
	}
	if hookBud.Tripped() {
		opts.MaxSteps = 1
	}
	ids := make([]string, len(live))
	keys := make([]string, len(live))
	for i, r := range live {
		ids[i] = r.id
		keys[i] = r.queryKey()
	}
	if s.recording {
		opts.Recorder = &batchRecorder{rec: s.rec, ids: ids, batch: bid}
	}

	idx := make([]int, len(live))
	for i, r := range live {
		idx[i] = r.queryIx
	}
	bp := spec.Batch(first.lp.prog, idx, first.k)

	// Warm-start: seed each request's surviving stored clauses and persist
	// what the round learns. Sessions for one program race only on Save
	// (tmp+rename, last wins); warmMu serializes open/save so concurrent
	// rounds never interleave snapshot writes. Skipped for rounds already
	// degraded by an injected trip — their partial learning is worthless.
	var sess *warm.Session
	if s.warm.Enabled() && !hookBud.Tripped() {
		s.warmMu.Lock()
		sess = s.warm.Session(first.lp.prog, warm.Config{
			Client:   wc,
			K:        first.k,
			MaxIters: first.maxIter,
			Timeout:  first.timeout,
		})
		s.warmMu.Unlock()
		opts.SeedBatch = func(q int) []core.ParamCube { return sess.SeedFor(keys[q]) }
		opts.OnLearn = func(q int, _ uset.Set, t lang.Trace, cubes []core.ParamCube) {
			sess.RecordLearn(keys[q], t, cubes)
		}
	}

	res, err := core.SolveBatch(bp, opts)
	solveNS := int64(time.Since(start))
	s.observeBatchWall(solveNS)
	if s.recording {
		s.rec.Timing(obs.ServerBatchSolve, time.Duration(solveNS))
	}
	if err != nil {
		failAll("batch solve error: " + err.Error())
		return
	}

	if sess != nil {
		// Proved/Impossible only: a batch Exhausted verdict is measured
		// against the shared round budget and is not replay-comparable.
		for i, r := range res.Results {
			if r.Status == core.Proved || r.Status == core.Impossible {
				sess.RecordResult(keys[i], r)
			}
		}
		s.warmMu.Lock()
		serr := sess.Save()
		s.warmMu.Unlock()
		if serr != nil {
			s.stats.warmSaveErrs.Add(1)
		}
	}

	bi := BatchInfo{ID: bid, Size: len(reqs), Rounds: res.Stats.Rounds, Coalesced: len(live) > 1}
	for i, r := range live {
		s.respond(r, s.resultResponse(r, res.Results[i], bi, start, solveNS))
	}
}

// warmClient maps the wire client onto the warm store's. The mapping is
// exhaustive: an unknown kind returns false instead of silently landing on
// some other client's warm store — cross-client clause reuse would poison
// the cache the moment the mapping fell through.
func warmClient(c clientKind) (warm.Client, bool) {
	switch c {
	case clientTypestate:
		return warm.Typestate, true
	case clientEscape:
		return warm.Escape, true
	case clientNullness:
		return warm.Nullness, true
	}
	return "", false
}

// resultResponse converts one solver Result into the wire response.
func (s *Server) resultResponse(req *request, r core.Result, bi BatchInfo, batchStart time.Time, solveNS int64) SolveResponse {
	resp := SolveResponse{
		Status:       r.Status.String(),
		Iterations:   r.Iterations,
		Clauses:      r.Clauses,
		ForwardSteps: r.ForwardSteps,
		Failure:      r.Failure,
		Timing: PhaseTiming{
			QueueNS: int64(batchStart.Sub(req.arrival)),
			SolveNS: solveNS,
		},
		Batch: bi,
	}
	if r.Status == core.Proved {
		resp.Cost = r.Abstraction.Len()
		resp.Abstraction = make([]string, 0, resp.Cost)
		for _, i := range r.Abstraction.Elems() {
			resp.Abstraction = append(resp.Abstraction, req.paramName(i))
		}
	}
	return resp
}

// respond delivers the response, stamping the request-scoped timing fields.
func (s *Server) respond(req *request, resp SolveResponse) {
	resp.ID = req.id
	resp.Timing.DecodeNS = req.decodeNS
	resp.Timing.TotalNS = int64(time.Since(req.arrival))
	req.done <- resp
}

// respondDegraded resolves a request outside the solver (queue expiry, a
// batch-level fault) and emits the synthetic terminal query_resolved event
// the solver would otherwise have produced, keeping the access-log invariant
// — every accepted request's stream ends in exactly one query_resolved.
func (s *Server) respondDegraded(req *request, bid string, size int, batchStart time.Time, status core.Status, failure string) {
	if s.recording {
		s.rec.Record(obs.Event{Kind: obs.QueryResolved, Query: req.id,
			Status: status.String(), WallNS: int64(time.Since(req.arrival))})
	}
	resp := SolveResponse{
		Status: status.String(),
		Timing: PhaseTiming{QueueNS: int64(batchStart.Sub(req.arrival))},
		Batch:  BatchInfo{ID: bid, Size: size},
	}
	if status == core.Failed {
		resp.Failure = failure
	}
	s.respond(req, resp)
}

// observeBatchWall folds one round's wall time into the EWMA that prices
// Retry-After for shed requests.
func (s *Server) observeBatchWall(ns int64) {
	for {
		old := s.ewmaBatchNS.Load()
		nw := ns
		if old > 0 {
			nw = old + (ns-old)/5
		}
		if s.ewmaBatchNS.CompareAndSwap(old, nw) {
			return
		}
	}
}
