package server

import (
	"sync"
	"time"
)

// quotas is a per-tenant token-bucket admission limiter: each tenant refills
// at rate tokens/second up to burst, and a request is admitted iff its
// tenant has a whole token to spend. A zero rate disables quotas entirely.
//
// The tenant map is bounded: tenant names arrive from the wire, and an
// unbounded map keyed by attacker-chosen strings is a memory leak. When full,
// admitting a new tenant evicts the stalest bucket — a tenant idle long
// enough to be evicted re-enters with a full burst, which only ever errs in
// the client's favor.
type quotas struct {
	rate  float64
	burst float64

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the bucket map.
const maxTenants = 4096

func newQuotas(rate float64, burst int) *quotas {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), m: map[string]*bucket{}}
}

// allow reports whether tenant may spend one token at now. A nil receiver
// (quotas disabled) admits everything.
func (q *quotas) allow(tenant string, now time.Time) bool {
	if q == nil {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[tenant]
	if b == nil {
		if len(q.m) >= maxTenants {
			q.evictStalestLocked()
		}
		b = &bucket{tokens: q.burst, last: now}
		q.m[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (q *quotas) evictStalestLocked() {
	var stalest string
	var when time.Time
	first := true
	for k, b := range q.m {
		if first || b.last.Before(when) {
			stalest, when, first = k, b.last, false
		}
	}
	delete(q.m, stalest)
}
