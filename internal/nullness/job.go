package nullness

import (
	"sync/atomic"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// Job poses one null-dereference query on one program as a core.Problem.
// K is the beam width of the meta-analysis (k in §4.1); K ≤ 0 disables
// under-approximation.
type Job struct {
	A *Analysis
	G *lang.CFG
	Q Query
	K int

	// NoDelta disables the delta-incremental forward path (dataflow.Chain),
	// forcing every CEGAR iteration to solve cold from the reusable scratch.
	// The differential suite uses it as the reference executor.
	NoDelta bool

	// Uni and WPC, when set, are the interned literal universe and the
	// weakest-precondition cache shared across every client of the same
	// analysis instance — across CEGAR iterations and, in the batch driver,
	// across the backward jobs of all queries on that instance (both are
	// concurrency-safe). Client fills them lazily when nil.
	Uni *formula.Universe
	WPC *meta.WPCache

	// chain is the resumable forward solver retained across CEGAR
	// iterations, checked out like fwdScratch. It is stored back only after
	// a solve returns normally (a trip poisons its retained run internally;
	// a panic abandons the chain entirely, so the next solve starts cold).
	chain atomic.Pointer[dataflow.Chain[State]]

	// Delta accounting since the last FlushObs, mirroring the chain's Stats.
	deltaResumes, deltaReused, deltaInvalid atomic.Int64

	// fwdHint carries the discovery count of the previous Forward solve as
	// the next solve's map-capacity hint; consecutive CEGAR iterations
	// re-solve the same CFG and discover similar state counts. Atomic so a
	// job probed from a worker pool stays race-free.
	fwdHint atomic.Int64
	// fwdScratch is the reusable solver state handed to consecutive Forward
	// solves. It is checked out with an atomic swap for the duration of a
	// solve, so concurrent Forward calls on one job simply fall back to
	// fresh allocation instead of racing.
	fwdScratch atomic.Pointer[dataflow.Scratch[State]]
}

var _ core.Problem = (*Job)(nil)

// NumParams returns the number of cells (the family is 2^cells).
func (j *Job) NumParams() int { return j.A.NumParams() }

// ParamName names parameter i (the cell it tracks when on).
func (j *Job) ParamName(i int) string { return j.A.CellName(i) }

// Forward runs the forward analysis under abstraction p and checks the
// query at every node it covers. A budget trip mid-solve yields an
// unproved partial outcome (a partial fixpoint's "no failure found" is
// not a proof).
func (j *Job) Forward(b *budget.Budget, p uset.Set) core.Outcome {
	if j.NoDelta {
		sc := j.fwdScratch.Swap(nil)
		if sc == nil {
			sc = &dataflow.Scratch[State]{}
		}
		// The scratch is returned only after the outcome (including any
		// witness walk over the result) is fully extracted.
		defer j.fwdScratch.Store(sc)
		res := dataflow.SolveScratch(j.G, j.A.Initial(), j.A.Transfer(p), b, int(j.fwdHint.Load()), sc)
		j.fwdHint.Store(int64(res.Steps))
		return j.outcome(b, res)
	}
	ch := j.chain.Swap(nil)
	if ch == nil {
		ch = dataflow.NewChain[State](j.G)
	}
	res := ch.Solve(p, j.A.Initial(), j.A.TransferDep(p), b)
	if resumed, reused, invalid := ch.Stats(); resumed {
		j.deltaResumes.Add(1)
		j.deltaReused.Add(int64(reused))
		j.deltaInvalid.Add(int64(invalid))
	}
	out := j.outcome(b, res)
	if resumed, reused, _ := ch.Stats(); resumed {
		out.Reused = reused
	}
	j.chain.Store(ch)
	return out
}

// outcome checks the query against a forward result and extracts a witness.
func (j *Job) outcome(b *budget.Budget, res *dataflow.Result[State]) core.Outcome {
	if b.Tripped() {
		return core.Outcome{Steps: res.Steps}
	}
	node, bad, ok := FindFailure(j.A, res, j.Q)
	if !ok {
		return core.Outcome{Proved: true, Steps: res.Steps}
	}
	return core.Outcome{Trace: res.Witness(node, bad), Steps: res.Steps}
}

// FindFailure scans the query's nodes in a solved result for a violating
// state, returning the first one in discovery order. Discovery order is a
// pure function of the CFG, the abstraction, and the initial state —
// independent of the analysis instance's intern history — so the choice
// is stable between a fresh cold run and a delta resume on a retained
// analysis. It is shared with the batch driver, which reuses one forward
// run across many queries.
func FindFailure(a *Analysis, res *dataflow.Result[State], q Query) (node int, bad State, ok bool) {
	for _, n := range q.Nodes {
		for _, d := range res.States(n) {
			if !a.Holds(q, d) {
				return n, d, true
			}
		}
	}
	return 0, State(0), false
}

// Client builds the meta-analysis client for abstraction p. Weakest
// preconditions do not depend on p, so all clients of this job share one
// memoization cache (and one literal universe).
func (j *Job) Client(p uset.Set) *meta.Client[State] {
	if j.Uni == nil {
		j.Uni = formula.NewUniverse(Theory{})
	}
	if j.WPC == nil {
		j.WPC = meta.NewWPCache()
	}
	return &meta.Client[State]{
		WP:    j.A.WP,
		U:     j.Uni,
		Eval:  func(l formula.Lit, d State) bool { return j.A.EvalLit(l, p, d) },
		K:     j.K,
		Cache: j.WPC,
	}
}

// FlushObs implements core.ObsFlusher: it reports the formula.* counters
// of the job's literal universe, the meta.* counters of its WP cache, and
// the rhs.* delta counters of the incremental forward chain.
func (j *Job) FlushObs(rec obs.Recorder) {
	meta.FlushUniverseObs(rec, j.Uni)
	meta.FlushWPObs(rec, j.WPC)
	obs.FlushDelta(rec, &j.deltaResumes, &j.deltaReused, &j.deltaInvalid)
}

// Backward runs the meta-analysis over the counterexample trace and
// extracts the parameter cubes of abstractions guaranteed to fail. A
// budget trip mid-walk yields nil (a truncated condition is not sound).
func (j *Job) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	dI := j.A.Initial()
	states := dataflow.StatesAlong(t, dI, j.A.Transfer(p))
	c := j.Client(p)
	c.Budget = b
	dnf := meta.Run(c, t, states, j.A.NotQ(j.Q))
	if b.Tripped() {
		return nil
	}
	return j.Cubes(dnf, dI)
}

// Cubes projects a failure-condition DNF onto parameter cubes. A track
// literal puts its cell in Pos; a coarse literal puts it in Neg; state
// literals are evaluated at dI.
func (j *Job) Cubes(dnf formula.DNF, dI State) []core.ParamCube {
	var out []core.ParamCube
	for _, conj := range dnf {
		var pos, neg uset.Set
		ok := true
		for _, l := range conj.Lits() {
			id, on, isTrack := -1, false, false
			switch pr := l.P.(type) {
			case PTrackVar:
				id, on, isTrack = j.A.localSlot(pr.V), pr.On, true
			case PTrackField:
				id, on, isTrack = j.A.fieldSlot(pr.F), pr.On, true
			}
			if isTrack {
				if l.Neg {
					on = !on
				}
				if on {
					pos = pos.Add(id)
				} else {
					neg = neg.Add(id)
				}
				continue
			}
			if !j.A.EvalLit(l, nil, dI) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, core.ParamCube{Pos: pos, Neg: neg})
		}
	}
	return out
}
