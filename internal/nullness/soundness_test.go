package nullness

import (
	"math/rand"
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/oracle/gen"
	"tracer/internal/uset"
)

// newTestAnalysis builds a small universe: locals u, v; field f. The
// domain has 3^3 = 27 states and 2^3 = 8 abstractions (one parameter per
// cell).
func newTestAnalysis() *Analysis {
	return New([]string{"u", "v"}, []string{"f"})
}

// testAtoms returns the full atom pool over the test universe — the oracle
// generator's cross product (see internal/oracle/gen), shared with the
// fuzzing harness.
func testAtoms() []lang.Atom {
	return gen.Pool(gen.Universe{
		Vars:    []string{"u", "v"},
		Sites:   []string{"h1", "h2"},
		Fields:  []string{"f"},
		Globals: []string{"G"},
		Methods: []string{"m"},
	})
}

func primsFor(a *Analysis) []formula.Prim {
	var prims []formula.Prim
	for i := 0; i < a.Locals.Len(); i++ {
		v := a.Locals.Value(i)
		prims = append(prims, PTrackVar{v, true}, PTrackVar{v, false})
		for _, o := range Values {
			prims = append(prims, PVar{v, o})
		}
	}
	for i := 0; i < a.Fields.Len(); i++ {
		f := a.Fields.Value(i)
		prims = append(prims, PTrackField{f, true}, PTrackField{f, false})
		for _, o := range Values {
			prims = append(prims, PField{f, o})
		}
	}
	return prims
}

// TestWPRequirement2 exhaustively verifies requirement (2) of §4 for every
// (atom, primitive) pair: [a]♭ must be the exact weakest precondition of
// the forward transfer functions.
func TestWPRequirement2(t *testing.T) {
	a := newTestAnalysis()
	u := formula.NewUniverse(Theory{})
	abstractions := a.AllAbstractions()
	states := a.AllStates()
	for _, atom := range testAtoms() {
		for _, prim := range primsFor(a) {
			bad := meta.CheckWP(
				atom, prim, a.WP, u,
				abstractions, states,
				func(p uset.Set, d State) State { return a.step(p, atom, d) },
				func(l formula.Lit, p uset.Set, d State) bool { return a.EvalLit(l, p, d) },
			)
			if len(bad) != 0 {
				pi, di := bad[0][0], bad[0][1]
				t.Errorf("[%s]♭(%s) wrong at p=%v d=%s (%d violations)",
					atom, prim, abstractions[pi], a.Format(states[di]), len(bad))
			}
		}
	}
}

// TestNegLitPartitions checks that for every primitive, the literal and
// the disjunction of its theory-expanded negation alternatives partition
// the (p, d) universe.
func TestNegLitPartitions(t *testing.T) {
	a := newTestAnalysis()
	th := Theory{}
	for _, prim := range primsFor(a) {
		l := formula.Lit{P: prim}
		alts, ok := th.NegLit(l)
		if !ok {
			t.Fatalf("NegLit(%s) not handled", l)
		}
		for _, p := range a.AllAbstractions() {
			for _, d := range a.AllStates() {
				pos := a.EvalLit(l, p, d)
				neg := false
				for _, alt := range alts {
					if a.EvalLit(alt, p, d) {
						neg = true
						break
					}
				}
				if pos == neg {
					t.Fatalf("¬%s wrong at p=%v d=%s", l, p, a.Format(d))
				}
			}
		}
	}
}

// TestUntrackedNeverPrecise: an untracked cell can never hold a precise
// value after any update — the parameter is exactly what precision costs.
func TestUntrackedNeverPrecise(t *testing.T) {
	a := newTestAnalysis()
	atoms := testAtoms()
	for _, p := range a.AllAbstractions() {
		for _, d := range a.AllStates() {
			for _, atom := range atoms {
				d2 := a.step(p, atom, d)
				for i := 0; i < a.NumParams(); i++ {
					if p.Has(i) || a.get(d2, i) == a.get(d, i) {
						continue
					}
					if a.get(d2, i) != U {
						t.Fatalf("%s updated untracked cell %s to %s in %s",
							atom, a.CellName(i), a.get(d2, i), a.Format(d2))
					}
				}
			}
		}
	}
}

// TestTheorem3RandomTraces checks both clauses of Theorem 3 on random
// traces for several beam widths.
func TestTheorem3RandomTraces(t *testing.T) {
	a := newTestAnalysis()
	rng := rand.New(rand.NewSource(11))
	atoms := testAtoms()
	abstractions := a.AllAbstractions()
	states := a.AllStates()
	post := a.NotQ(Query{V: "u"})
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(6)
		tr := make(lang.Trace, n)
		for i := range tr {
			tr[i] = atoms[rng.Intn(len(atoms))]
		}
		p := abstractions[rng.Intn(len(abstractions))]
		dI := a.Initial()
		selfTr := a.Transfer(p)
		final := dataflow.EvalTrace(tr, dI, selfTr)
		failed := post.Eval(func(l formula.Lit) bool { return a.EvalLit(l, p, final) })
		for _, k := range []int{1, 3, 0} {
			client := &meta.Client[State]{
				WP:   a.WP,
				U:    formula.NewUniverse(Theory{}),
				Eval: func(l formula.Lit, d State) bool { return a.EvalLit(l, p, d) },
				K:    k,
			}
			c1, c2 := meta.CheckSoundness(
				client, tr, dI, post, failed,
				abstractions, states,
				func(p0 uset.Set) dataflow.Transfer[State] { return a.Transfer(p0) },
				func(p0 uset.Set) func(l formula.Lit, d State) bool {
					return func(l formula.Lit, d State) bool { return a.EvalLit(l, p0, d) }
				},
				selfTr,
			)
			if c1 != 0 {
				t.Fatalf("k=%d trace %q p=%v: clause 1 violated", k, tr, p)
			}
			if c2 != 0 {
				t.Fatalf("k=%d trace %q p=%v: clause 2 violated %d times", k, tr, p, c2)
			}
		}
	}
}
