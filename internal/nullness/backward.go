package nullness

import (
	"fmt"

	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// The primitive formulas of the nullness meta-analysis:
//
//	track(v), coarse(v) — the abstraction does / does not track local v
//	track(.f), coarse(.f) — likewise for field cell f
//	v.o — the abstract state binds local v to o (o ∈ {U, NIL, NN})
//	f.o — the abstract state binds field cell f to o
//
// All negations expand positively (¬v.NN ≡ v.U ∨ v.NIL, ¬track(v) ≡
// coarse(v)), so DNF formulas contain only positive literals.

// PVar is the primitive v.o.
type PVar struct {
	V string
	O Value
}

// PField is the primitive f.o.
type PField struct {
	F string
	O Value
}

// PTrackVar is the parameter primitive track(v) (On) or coarse(v) (!On).
type PTrackVar struct {
	V  string
	On bool
}

// PTrackField is the parameter primitive track(.f) (On) or coarse(.f).
type PTrackField struct {
	F  string
	On bool
}

func (p PVar) Key() string   { return "v:" + p.V + ":" + p.O.String() }
func (p PField) Key() string { return "f:" + p.F + ":" + p.O.String() }
func (p PTrackVar) Key() string {
	if p.On {
		return "tv:" + p.V + ":1"
	}
	return "tv:" + p.V + ":0"
}
func (p PTrackField) Key() string {
	if p.On {
		return "tf:" + p.F + ":1"
	}
	return "tf:" + p.F + ":0"
}
func (p PVar) String() string   { return p.V + "." + p.O.String() }
func (p PField) String() string { return p.F + "." + p.O.String() }
func (p PTrackVar) String() string {
	if p.On {
		return "track(" + p.V + ")"
	}
	return "coarse(" + p.V + ")"
}
func (p PTrackField) String() string {
	if p.On {
		return "track(." + p.F + ")"
	}
	return "coarse(." + p.F + ")"
}

// Theory is the literal theory of the nullness meta-analysis.
type Theory struct{}

// NegLit expands ¬(x.o) into the disjunction of the other values of the
// same subject; track primitives flip polarity.
func (Theory) NegLit(l formula.Lit) ([]formula.Lit, bool) {
	switch p := l.P.(type) {
	case PVar:
		var out []formula.Lit
		for _, o := range Values {
			if o != p.O {
				out = append(out, formula.Lit{P: PVar{p.V, o}})
			}
		}
		return out, true
	case PField:
		var out []formula.Lit
		for _, o := range Values {
			if o != p.O {
				out = append(out, formula.Lit{P: PField{p.F, o}})
			}
		}
		return out, true
	case PTrackVar:
		return []formula.Lit{{P: PTrackVar{p.V, !p.On}}}, true
	case PTrackField:
		return []formula.Lit{{P: PTrackField{p.F, !p.On}}}, true
	}
	return nil, false
}

// Implies: only identical positive literals entail each other.
func (Theory) Implies(a, b formula.Lit) bool { return a == b }

// Contradicts: two positive literals about the same subject with
// different values (or opposite track polarity) are mutually exclusive.
// Allocation-free — unsat pruning calls this on every literal pair of
// every candidate disjunct.
func (Theory) Contradicts(a, b formula.Lit) bool {
	if a.Neg || b.Neg {
		return false
	}
	switch pa := a.P.(type) {
	case PVar:
		pb, ok := b.P.(PVar)
		return ok && pa.V == pb.V && pa.O != pb.O
	case PField:
		pb, ok := b.P.(PField)
		return ok && pa.F == pb.F && pa.O != pb.O
	case PTrackVar:
		pb, ok := b.P.(PTrackVar)
		return ok && pa.V == pb.V && pa.On != pb.On
	case PTrackField:
		pb, ok := b.P.(PTrackField)
		return ok && pa.F == pb.F && pa.On != pb.On
	}
	return false
}

// EvalLit evaluates a literal at abstraction p (set of tracked cell
// indices) and state d.
func (a *Analysis) EvalLit(l formula.Lit, p uset.Set, d State) bool {
	v := a.evalPrim(l.P, p, d)
	if l.Neg {
		return !v
	}
	return v
}

func (a *Analysis) evalPrim(pr formula.Prim, p uset.Set, d State) bool {
	switch pr := pr.(type) {
	case PVar:
		return a.Local(d, pr.V) == pr.O
	case PField:
		return a.Field(d, pr.F) == pr.O
	case PTrackVar:
		return p.Has(a.localSlot(pr.V)) == pr.On
	case PTrackField:
		return p.Has(a.fieldSlot(pr.F)) == pr.On
	}
	panic(fmt.Sprintf("nullness: unknown primitive %T", pr))
}

// Literal constructors.
func lv(v string, o Value) formula.Formula { return formula.L(PVar{v, o}) }
func lf(f string, o Value) formula.Formula { return formula.L(PField{f, o}) }
func tv(v string, on bool) formula.Formula { return formula.L(PTrackVar{v, on}) }
func tf(f string, on bool) formula.Formula { return formula.L(PTrackField{f, on}) }

// wpAssign is the weakest precondition of a local primitive v.o across
// assign(v, val) where val is given as a formula over the pre-state:
// the tracked cell receives val, the untracked cell receives U.
func wpAssign(v string, o Value, val func(Value) formula.Formula) formula.Formula {
	if o == U {
		return formula.Or(tv(v, false), val(U))
	}
	return formula.And(tv(v, true), val(o))
}

// WP returns the weakest precondition [at]♭(π) of a positive primitive π,
// derived per primitive from the forward transfer; exactness is verified
// exhaustively in the tests against step.
func (a *Analysis) WP(at lang.Atom, prim formula.Prim) formula.Formula {
	switch prim.(type) {
	case PTrackVar, PTrackField:
		return formula.L(prim) // the abstraction never changes
	}
	switch at := at.(type) {
	case lang.Alloc:
		if pl, ok := prim.(PVar); ok && pl.V == at.V {
			return wpAssign(at.V, pl.O, func(o Value) formula.Formula {
				if o == NN {
					return formula.True()
				}
				return formula.False()
			})
		}
		if pf, ok := prim.(PField); ok {
			// Every field summary absorbs the fresh object's null field.
			switch pf.O {
			case U:
				return formula.Or(lf(pf.F, U), lf(pf.F, NN))
			case NN:
				return formula.False()
			case Nil:
				return lf(pf.F, Nil)
			}
		}
		return formula.L(prim)
	case lang.Move:
		if pl, ok := prim.(PVar); ok && pl.V == at.Dst {
			return wpAssign(at.Dst, pl.O, func(o Value) formula.Formula {
				return lv(at.Src, o)
			})
		}
		return formula.L(prim)
	case lang.MoveNull:
		if pl, ok := prim.(PVar); ok && pl.V == at.V {
			return wpAssign(at.V, pl.O, func(o Value) formula.Formula {
				if o == Nil {
					return formula.True()
				}
				return formula.False()
			})
		}
		return formula.L(prim)
	case lang.GlobalRead:
		if pl, ok := prim.(PVar); ok && pl.V == at.V {
			if pl.O == U {
				return formula.True()
			}
			return formula.False()
		}
		return formula.L(prim)
	case lang.GlobalWrite:
		return formula.L(prim)
	case lang.Load:
		if pl, ok := prim.(PVar); ok && pl.V == at.Dst {
			return wpAssign(at.Dst, pl.O, func(o Value) formula.Formula {
				return lf(at.F, o)
			})
		}
		return formula.L(prim)
	case lang.Store:
		pf, ok := prim.(PField)
		if !ok || pf.F != at.F {
			return formula.L(prim)
		}
		f, w := at.F, at.Src
		switch pf.O {
		case NN:
			return formula.And(tf(f, true), lf(f, NN), lv(w, NN))
		case Nil:
			return formula.And(tf(f, true), lf(f, Nil), lv(w, Nil))
		case U:
			return formula.Or(
				tf(f, false),
				lf(f, U),
				lv(w, U),
				formula.And(lf(f, NN), lv(w, Nil)),
				formula.And(lf(f, Nil), lv(w, NN)))
		}
	case lang.Invoke:
		if pl, ok := prim.(PVar); ok && pl.V == at.V {
			return wpAssign(at.V, pl.O, func(o Value) formula.Formula {
				if o == NN {
					return formula.True()
				}
				return formula.False()
			})
		}
		return formula.L(prim)
	}
	return formula.L(prim)
}

// NotQ returns the failure condition not(nonnil(v)) = v.NIL ∨ v.U.
func (a *Analysis) NotQ(q Query) formula.Formula {
	return formula.Or(lv(q.V, Nil), lv(q.V, U))
}
