// Package nullness implements a parametric null-dereference client over
// the shared IR: a must-non-nil analysis whose abstraction parameter
// vector selects, per cell (local or field), whether the cell gets
// precise value tracking or the coarse ⊤ summary.
//
// The abstract domain maps cells to {⊤, nil, nn}: nil means "definitely
// null on every path", nn means "definitely non-null on every path", and
// ⊤ means unknown. The abstraction parameter p ⊆ cells chooses which
// cells are tracked; an untracked cell degrades to ⊤ on every update, so
// its precision is exactly what the parameter pays for. Cost is the
// number of tracked cells. Fields are summarized weakly: one cell per
// field name covers that field of every object, so an allocation (whose
// fresh object has all-null fields) folds nil into every field summary.
package nullness

import (
	"fmt"
	"sort"
	"strings"

	"tracer/internal/dataflow"
	"tracer/internal/intern"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// Value is an abstract value: U (unknown, the coarse ⊤), Nil (must-nil),
// or NN (must-non-nil).
type Value uint8

const (
	U Value = iota
	Nil
	NN
)

func (v Value) String() string {
	switch v {
	case U:
		return "U"
	case Nil:
		return "NIL"
	case NN:
		return "NN"
	}
	return "?"
}

// Values lists the abstract values, used when expanding literal negations.
var Values = [3]Value{U, Nil, NN}

// State is an interned environment (locals ++ fields → Value).
type State int

// Analysis is the parametric nullness analysis over a fixed universe of
// locals and fields. Unlike the escape client, the parameter space is the
// cell space itself: parameter i < Locals.Len() tracks local i, and
// parameter Locals.Len()+j tracks field j — parameter indices coincide
// with environment slots.
type Analysis struct {
	Locals *intern.Strings
	Fields *intern.Strings

	envs *intern.Strings // interned environment payloads
}

// New builds an analysis over the given universes. Cell indices (locals
// first, then fields) are the parameter indices of the abstraction family
// (on = tracked precisely).
func New(locals, fields []string) *Analysis {
	a := &Analysis{
		Locals: intern.NewStrings(),
		Fields: intern.NewStrings(),
		envs:   intern.NewStrings(),
	}
	for _, v := range locals {
		a.Locals.ID(v)
	}
	for _, f := range fields {
		a.Fields.ID(f)
	}
	return a
}

// Universe collects the locals and fields mentioned by a CFG's atoms,
// each sorted, for building the analysis universe.
func Universe(g *lang.CFG) (locals, fields []string) {
	lm, fm := map[string]bool{}, map[string]bool{}
	for _, e := range g.Edges {
		switch a := e.A.(type) {
		case lang.Alloc:
			lm[a.V] = true
		case lang.Move:
			lm[a.Dst] = true
			lm[a.Src] = true
		case lang.MoveNull:
			lm[a.V] = true
		case lang.GlobalWrite:
			lm[a.V] = true
		case lang.GlobalRead:
			lm[a.V] = true
		case lang.Load:
			lm[a.Dst] = true
			lm[a.Src] = true
			fm[a.F] = true
		case lang.Store:
			lm[a.Dst] = true
			lm[a.Src] = true
			fm[a.F] = true
		case lang.Invoke:
			lm[a.V] = true
		}
	}
	return sortedKeys(lm), sortedKeys(fm)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// slots is the environment width — also the parameter count.
func (a *Analysis) slots() int { return a.Locals.Len() + a.Fields.Len() }

// NumParams returns the size of the cell space (the family is 2^cells).
func (a *Analysis) NumParams() int { return a.slots() }

// localSlot and fieldSlot map names to environment slots, which double as
// parameter indices.
func (a *Analysis) localSlot(v string) int { return a.Locals.ID(v) }
func (a *Analysis) fieldSlot(f string) int { return a.Locals.Len() + a.Fields.ID(f) }

// CellName names parameter i. Field cells are prefixed with "." so they
// can never collide with a local of the same name (qualified locals never
// start with a dot).
func (a *Analysis) CellName(i int) string {
	if i < a.Locals.Len() {
		return a.Locals.Value(i)
	}
	return "." + a.Fields.Value(i-a.Locals.Len())
}

// internEnv canonicalizes an environment payload. The payload is not
// retained (intern.Strings.IDBytes copies on miss), so callers may hand
// in reusable scratch buffers.
func (a *Analysis) internEnv(env []byte) State { return State(a.envs.IDBytes(env)) }

// env returns the payload of a state; the result must not be mutated.
func (a *Analysis) env(d State) string { return a.envs.Value(int(d)) }

// get reads slot i of state d.
func (a *Analysis) get(d State, i int) Value { return Value(a.env(d)[i]) }

// Local reads the abstract value of local v in d.
func (a *Analysis) Local(d State, v string) Value { return a.get(d, a.localSlot(v)) }

// Field reads the abstract value of field f in d.
func (a *Analysis) Field(d State, f string) Value { return a.get(d, a.fieldSlot(f)) }

// set returns d with slot i set to val.
func (a *Analysis) set(d State, i int, val Value) State {
	cur := a.env(d)
	if Value(cur[i]) == val {
		return d
	}
	// The edited payload usually names an already-interned state, so build it
	// in a stack buffer: internEnv only copies on a genuine miss.
	var arr [512]byte
	buf := editBuf(arr[:], cur)
	buf[i] = byte(val)
	return a.internEnv(buf)
}

// editBuf copies cur into arr when it fits, falling back to the heap for
// extraordinarily wide environments.
func editBuf(arr []byte, cur string) []byte {
	if len(cur) <= len(arr) {
		buf := arr[:len(cur)]
		copy(buf, cur)
		return buf
	}
	return []byte(cur)
}

// Initial returns the state mapping every cell to Nil: locals are
// uninitialized and no objects exist yet, so every field summary is
// vacuously null.
func (a *Analysis) Initial() State {
	buf := make([]byte, a.slots())
	for i := range buf {
		buf[i] = byte(Nil)
	}
	return a.internEnv(buf)
}

// StateOf builds a state from explicit local and field bindings; unnamed
// slots are U. It is intended for tests.
func (a *Analysis) StateOf(locals map[string]Value, fields map[string]Value) State {
	buf := make([]byte, a.slots())
	for v, val := range locals {
		buf[a.localSlot(v)] = byte(val)
	}
	for f, val := range fields {
		buf[a.fieldSlot(f)] = byte(val)
	}
	return a.internEnv(buf)
}

// AllStates enumerates the full abstract domain: every assignment of
// {U, Nil, NN} to every cell. Exponential (3^slots); for exhaustive
// soundness tests on small universes.
func (a *Analysis) AllStates() []State {
	n := a.slots()
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	out := make([]State, 0, total)
	buf := make([]byte, n)
	for i := 0; i < total; i++ {
		x := i
		for s := 0; s < n; s++ {
			buf[s] = byte(x % 3)
			x /= 3
		}
		out = append(out, a.internEnv(buf))
	}
	return out
}

// AllAbstractions enumerates the abstraction family 2^cells.
// Exponential; for tests on small universes.
func (a *Analysis) AllAbstractions() []uset.Set {
	n := a.slots()
	out := make([]uset.Set, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		var p uset.Set
		for c := 0; c < n; c++ {
			if bits&(1<<c) != 0 {
				p = p.Add(c)
			}
		}
		out = append(out, p)
	}
	return out
}

// combine joins two abstract values: agreement is preserved, disagreement
// is unknown.
func combine(x, y Value) Value {
	if x == y {
		return x
	}
	return U
}

// assign writes val into slot i, degraded to U when the cell is
// untracked — the single point where precision is bought by a parameter.
func (a *Analysis) assign(p uset.Set, d State, i int, val Value) State {
	if !p.Has(i) {
		val = U
	}
	return a.set(d, i, val)
}

// weakenFields folds a fresh all-null object into every field summary:
// must-non-nil summaries become unknown, must-nil and unknown ones are
// already closed under it. Parameter-independent (an untracked field is
// never NN).
func (a *Analysis) weakenFields(d State) State {
	cur := a.env(d)
	var arr [512]byte
	buf := editBuf(arr[:], cur)
	for i := a.Locals.Len(); i < len(buf); i++ {
		if Value(buf[i]) == NN {
			buf[i] = byte(U)
		}
	}
	return a.internEnv(buf)
}

// Format renders a state like the α annotations of Fig 6.
func (a *Analysis) Format(d State) string {
	var parts []string
	for i := 0; i < a.Locals.Len(); i++ {
		parts = append(parts, fmt.Sprintf("%s↦%s", a.Locals.Value(i), a.get(d, i)))
	}
	for i := 0; i < a.Fields.Len(); i++ {
		parts = append(parts, fmt.Sprintf("%s↦%s", a.Fields.Value(i), a.get(d, a.Locals.Len()+i)))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Transfer instantiates the transfer function at abstraction p, the set
// of tracked cell indices.
func (a *Analysis) Transfer(p uset.Set) dataflow.Transfer[State] {
	return func(at lang.Atom, d State) State {
		return a.step(p, at, d)
	}
}

// TransferDep is Transfer with dependency reporting for the incremental
// solver (dataflow.Chain): each application also returns the dependency
// literal naming the parameter it consulted. Every atom consults the
// abstraction in at most one place — the tracked bit of the cell it
// writes; reads and the allocation field-weakening are parameter-free.
func (a *Analysis) TransferDep(p uset.Set) dataflow.DepTransfer[State] {
	return func(at lang.Atom, d State) (State, int32) {
		return a.step(p, at, d), a.dep(p, at)
	}
}

func (a *Analysis) dep(p uset.Set, at lang.Atom) int32 {
	switch at := at.(type) {
	case lang.Alloc:
		return dataflow.DepLit(p, a.localSlot(at.V))
	case lang.Move:
		return dataflow.DepLit(p, a.localSlot(at.Dst))
	case lang.MoveNull:
		return dataflow.DepLit(p, a.localSlot(at.V))
	case lang.Load:
		return dataflow.DepLit(p, a.localSlot(at.Dst))
	case lang.Store:
		return dataflow.DepLit(p, a.fieldSlot(at.F))
	case lang.Invoke:
		return dataflow.DepLit(p, a.localSlot(at.V))
	}
	return 0
}

func (a *Analysis) step(p uset.Set, at lang.Atom, d State) State {
	switch at := at.(type) {
	case lang.Alloc:
		return a.assign(p, a.weakenFields(d), a.localSlot(at.V), NN)
	case lang.Move:
		return a.assign(p, d, a.localSlot(at.Dst), a.Local(d, at.Src))
	case lang.MoveNull:
		return a.assign(p, d, a.localSlot(at.V), Nil)
	case lang.GlobalWrite:
		return d
	case lang.GlobalRead:
		// A global may hold anything; the read is ⊤ whether tracked or not.
		return a.set(d, a.localSlot(at.V), U)
	case lang.Load:
		return a.assign(p, d, a.localSlot(at.Dst), a.Field(d, at.F))
	case lang.Store:
		return a.assign(p, d, a.fieldSlot(at.F), combine(a.Field(d, at.F), a.Local(d, at.Src)))
	case lang.Invoke:
		// A dispatched call witnesses a non-nil receiver on every
		// continuing path.
		return a.assign(p, d, a.localSlot(at.V), NN)
	}
	return d
}

// Query asks whether local V is definitely non-nil (safe to dereference)
// at a program point. A source point may correspond to several CFG nodes
// after inlining.
type Query struct {
	Nodes []int
	V     string
}

// Holds reports whether a single abstract state satisfies the query.
func (a *Analysis) Holds(q Query, d State) bool { return a.Local(d, q.V) == NN }
