package core_test

import (
	"fmt"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// toyProblem is a parametric analysis over three boolean parameters whose
// query needs parameters 0 and 2; its meta-analysis eliminates one missing
// parameter per counterexample.
type toyProblem struct{ need uset.Set }

func (t *toyProblem) NumParams() int { return 3 }

func (t *toyProblem) Forward(_ *budget.Budget, p uset.Set) core.Outcome {
	if t.need.SubsetOf(p) {
		return core.Outcome{Proved: true}
	}
	return core.Outcome{Trace: lang.Trace{lang.MoveNull{V: "x"}}}
}

func (t *toyProblem) Backward(_ *budget.Budget, p uset.Set, _ lang.Trace) []core.ParamCube {
	for _, v := range t.need.Elems() {
		if !p.Has(v) {
			return []core.ParamCube{{Neg: uset.New(v)}}
		}
	}
	return nil
}

// ExampleSolve runs TRACER on the toy problem: it starts from the cheapest
// abstraction and learns one necessary parameter per iteration.
func ExampleSolve() {
	res, err := core.Solve(&toyProblem{need: uset.New(0, 2)}, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Status, res.Abstraction, "in", res.Iterations, "iterations")
	// Output: proved {0,2} in 3 iterations
}
