package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// panicInfo captures a recovered panic at the point of recovery: the
// rendered panic value (deterministic for a given fault) and the goroutine
// stack (diagnostic only — stacks embed goroutine IDs, so they are carried
// in Result.Stack and never in the obs event stream).
type panicInfo struct {
	msg   string
	stack string
}

func capturePanic(r any) *panicInfo {
	return &panicInfo{msg: fmt.Sprint(r), stack: string(debug.Stack())}
}

// parallelFor runs f(0..n-1) across at most workers goroutines and waits for
// all of them. With workers <= 1 it degenerates to a plain loop on the
// calling goroutine (no goroutines spawned), so the sequential batch path
// has zero scheduling overhead. Work is handed out by an atomic counter, so
// the assignment of indices to goroutines is nondeterministic — callers must
// make each f(i) a pure function of its inputs writing only to slot i.
func parallelFor(workers, n int, f func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// fwdEntry is one memoized forward run. lastSteps remembers the run's step
// count as of the last round that used it: forward runs are lazy (typestate
// work happens inside Check), so a memoized run can keep accruing steps
// across rounds, and each round charges only the delta to TotalSteps.
type fwdEntry struct {
	run       BatchRun
	lastSteps int
}

// fwdCache is a small LRU memo of forward runs keyed by the canonical
// abstraction key. It is only touched from the scheduler's sequential merge
// phases, so it needs no locking; determinism follows from those phases
// processing groups in sorted-signature order.
type fwdCache struct {
	cap     int
	entries map[string]*fwdEntry
	order   []string // least recently used first
}

func newFwdCache(cap int) *fwdCache {
	return &fwdCache{cap: cap, entries: map[string]*fwdEntry{}}
}

// get returns the entry for key (refreshing its recency) or nil.
func (c *fwdCache) get(key string) *fwdEntry {
	if c.cap <= 0 {
		return nil
	}
	e := c.entries[key]
	if e != nil {
		c.touch(key)
	}
	return e
}

// put inserts an entry, evicting the least recently used one on overflow.
func (c *fwdCache) put(key string, e *fwdEntry) {
	if c.cap <= 0 {
		return
	}
	if _, ok := c.entries[key]; ok {
		c.entries[key] = e
		c.touch(key)
		return
	}
	c.entries[key] = e
	c.order = append(c.order, key)
	if len(c.order) > c.cap {
		delete(c.entries, c.order[0])
		c.order = append(c.order[:0], c.order[1:]...)
	}
}

func (c *fwdCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}
