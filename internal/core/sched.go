package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tracer/internal/uset"
)

// panicInfo captures a recovered panic at the point of recovery: the
// rendered panic value (deterministic for a given fault) and the goroutine
// stack (diagnostic only — stacks embed goroutine IDs, so they are carried
// in Result.Stack and never in the obs event stream).
type panicInfo struct {
	msg   string
	stack string
}

func capturePanic(r any) *panicInfo {
	return &panicInfo{msg: fmt.Sprint(r), stack: string(debug.Stack())}
}

// parallelFor runs f(0..n-1) across at most workers goroutines and waits for
// all of them. With workers <= 1 it degenerates to a plain loop on the
// calling goroutine (no goroutines spawned), so the sequential batch path
// has zero scheduling overhead. Work is handed out by an atomic counter, so
// the assignment of indices to goroutines is nondeterministic — callers must
// make each f(i) a pure function of its inputs writing only to slot i.
func parallelFor(workers, n int, f func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// fwdEntry is one memoized forward run. lastSteps remembers the run's step
// count as of the last round that used it: forward runs are lazy (typestate
// work happens inside Check), so a memoized run can keep accruing steps
// across rounds, and each round charges only the delta to TotalSteps. key,
// prev, and next embed the entry in the cache's recency list, making every
// LRU operation O(1) (the previous order slice cost an O(cap) scan per hit,
// which showed up once cache sizes grew past the original 16).
type fwdEntry struct {
	run       BatchRun
	p         uset.Set // abstraction the run was produced under
	lastSteps int
	// lastDelta snapshots the run's cumulative DeltaStats as of the last
	// round that used it, so each round charges only the delta (lazy runs
	// keep accruing reuse inside Check, like steps).
	lastDelta  [3]int
	key        string
	prev, next *fwdEntry
}

// fwdCache is an LRU memo of forward runs keyed by the canonical abstraction
// key. Recency is an intrusive circular doubly-linked list through the
// entries (root.next = least recent, root.prev = most recent). It is only
// touched from the scheduler's sequential merge phases, so it needs no
// locking; determinism follows from those phases processing groups in
// sorted-signature order.
type fwdCache struct {
	cap     int
	entries map[string]*fwdEntry
	root    fwdEntry // list sentinel; carries no run
}

func newFwdCache(cap int) *fwdCache {
	c := &fwdCache{cap: cap, entries: map[string]*fwdEntry{}}
	c.root.prev, c.root.next = &c.root, &c.root
	return c
}

// get returns the entry for key (refreshing its recency) or nil.
func (c *fwdCache) get(key string) *fwdEntry {
	if c.cap <= 0 {
		return nil
	}
	e := c.entries[key]
	if e != nil {
		c.unlink(e)
		c.pushMRU(e)
	}
	return e
}

// put inserts an entry, evicting the least recently used one on overflow.
func (c *fwdCache) put(key string, e *fwdEntry) {
	if c.cap <= 0 {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.unlink(old)
	}
	e.key = key
	c.entries[key] = e
	c.pushMRU(e)
	if len(c.entries) > c.cap {
		lru := c.root.next
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
}

// takeDonor removes and returns the memoized run best suited to seed a fresh
// solve under p: the entry with the smallest parameter flip distance to p,
// ties broken toward the more recently used, skipping entries whose exact
// abstraction is still wanted this round and entries farther than maxFlip
// flips away. Consumption is mandatory — resuming a retained run invalidates
// the donor's result, so it must never serve another Check. Called only from
// the scheduler's sequential pass, so the choice is deterministic.
func (c *fwdCache) takeDonor(p uset.Set, wanted map[string]bool, maxFlip int) *fwdEntry {
	if c.cap <= 0 {
		return nil
	}
	var best *fwdEntry
	bestFlip := maxFlip + 1
	for e := c.root.prev; e != &c.root; e = e.prev {
		if wanted[e.key] {
			continue
		}
		if f := flipDist(e.p, p); f < bestFlip {
			best, bestFlip = e, f
		}
	}
	if best != nil {
		c.unlink(best)
		delete(c.entries, best.key)
	}
	return best
}

// flipDist is the size of the symmetric difference of two abstractions — the
// number of parameters a donor run's revalidation has to consider flipped.
func flipDist(a, b uset.Set) int {
	i, j, d := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			d++
		default:
			j++
			d++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

func (c *fwdCache) unlink(e *fwdEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (c *fwdCache) pushMRU(e *fwdEntry) {
	last := c.root.prev
	last.next = e
	e.prev = last
	e.next = &c.root
	c.root.prev = e
}
