package core_test

import (
	"errors"
	"strings"
	"testing"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// brokenCubeProblem is a deliberately buggy Problem: its forward analysis
// never proves the query and its backward meta-analysis returns a fixed
// cube set regardless of the counterexample. It models an unsound backward
// transfer function for pinning the learn-site diagnostics.
type brokenCubeProblem struct {
	cubes []core.ParamCube
}

func (brokenCubeProblem) NumParams() int { return 2 }

func (brokenCubeProblem) Forward(*budget.Budget, uset.Set) core.Outcome {
	return core.Outcome{Proved: false, Steps: 1}
}

func (pr brokenCubeProblem) Backward(*budget.Budget, uset.Set, lang.Trace) []core.ParamCube {
	return pr.cubes
}

// TestSolveRejectsContradictoryCube: a cube with overlapping Pos and Neg
// denotes no abstraction; its blocking clause canonicalizes to a tautology
// that minsat.Solver.Add silently drops, so before the learn-site fix the
// loop failed with a bare no-progress error and no trace of the bad cube.
// Now the cube is rejected explicitly: a clause_rejected event names it,
// the CoreClauseRejected counter ticks, and the Failed diagnostic carries
// its rendering.
func TestSolveRejectsContradictoryCube(t *testing.T) {
	bad := core.ParamCube{Pos: uset.New(0), Neg: uset.New(0)}
	if !bad.Broken() {
		t.Fatalf("cube %s should report Broken", bad)
	}
	cap := obs.NewCapture()
	res, err := core.Solve(brokenCubeProblem{cubes: []core.ParamCube{bad}},
		core.Options{Recorder: cap})
	if !errors.Is(err, core.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if res.Status != core.Failed || res.Iterations != 1 {
		t.Fatalf("status = %v after %d iterations, want failed after 1", res.Status, res.Iterations)
	}
	if !strings.Contains(res.Failure, bad.String()) {
		t.Errorf("Failure %q does not name the contradictory cube %s", res.Failure, bad)
	}
	rejected := cap.Filter(obs.ClauseRejected)
	if len(rejected) != 1 || rejected[0].Name != bad.String() {
		t.Fatalf("clause_rejected events = %+v, want one naming %s", rejected, bad)
	}
	if len(cap.Filter(obs.ClauseLearned)) != 0 {
		t.Error("a contradictory cube must not produce a clause_learned event")
	}
	var count int64
	for _, e := range cap.Events() {
		if e.Kind == obs.CounterKind && e.Name == obs.CoreClauseRejected {
			count += e.Value
		}
	}
	if count != 1 {
		t.Errorf("%s counter = %d, want 1", obs.CoreClauseRejected, count)
	}
	finals := cap.Filter(obs.QueryResolved)
	if len(finals) != 1 || finals[0].Status != "failed" {
		t.Fatalf("query_resolved = %+v, want one failed event", finals)
	}
}

// TestSolveNoProgressNamesCubes: a backward pass whose cubes are all
// well-formed but none of which contains the analyzed abstraction violates
// the progress guarantee; the diagnostic must name the cubes so the
// unsound transfer function can be located from the error alone.
func TestSolveNoProgressNamesCubes(t *testing.T) {
	c := core.ParamCube{Pos: uset.New(1)} // does not contain the initial p = {}
	res, err := core.Solve(brokenCubeProblem{cubes: []core.ParamCube{c}}, core.Options{})
	if !errors.Is(err, core.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if res.Status != core.Failed {
		t.Fatalf("status = %v, want failed", res.Status)
	}
	if !strings.Contains(res.Failure, c.String()) {
		t.Errorf("Failure %q does not name the non-covering cube %s", res.Failure, c)
	}
	// An empty cube set is the degenerate form of the same violation.
	res, err = core.Solve(brokenCubeProblem{}, core.Options{})
	if !errors.Is(err, core.ErrNoProgress) || res.Status != core.Failed {
		t.Fatalf("empty cube set: status %v / err %v, want failed / ErrNoProgress", res.Status, err)
	}
	if !strings.Contains(res.Failure, "no cubes") {
		t.Errorf("Failure %q does not mention the empty cube set", res.Failure)
	}
}

// brokenBatchProblem poses two queries: query 0's backward pass returns a
// contradictory cube (the bug under test), query 1 behaves normally and is
// provable with abstraction {0}. Sibling isolation demands that query 1
// still resolves Proved while query 0 fails with a named-cube diagnostic.
type brokenBatchProblem struct{}

func (brokenBatchProblem) NumParams() int  { return 2 }
func (brokenBatchProblem) NumQueries() int { return 2 }

func (brokenBatchProblem) RunForward(_ *budget.Budget, p uset.Set) core.BatchRun {
	return brokenBatchRun{p: p}
}

func (brokenBatchProblem) Backward(_ *budget.Budget, q int, p uset.Set, _ lang.Trace) []core.ParamCube {
	if q == 0 {
		return []core.ParamCube{{Pos: uset.New(0), Neg: uset.New(0)}}
	}
	// Sound cube for query 1: every abstraction without parameter 0 fails.
	return []core.ParamCube{{Neg: uset.New(0)}}
}

type brokenBatchRun struct{ p uset.Set }

func (r brokenBatchRun) Check(q int) (bool, lang.Trace) {
	return q == 1 && r.p.Has(0), nil
}

func (brokenBatchRun) Steps() int { return 1 }

// TestSolveBatchRejectsContradictoryCube mirrors the single-query
// regression under the batch scheduler: the broken query resolves Failed
// with the cube named, the clause_rejected event is tagged with the query,
// and the healthy sibling query still proves — for every worker count.
func TestSolveBatchRejectsContradictoryCube(t *testing.T) {
	bad := core.ParamCube{Pos: uset.New(0), Neg: uset.New(0)}
	for _, workers := range []int{1, 2, 4} {
		cap := obs.NewCapture()
		res, err := core.SolveBatch(brokenBatchProblem{},
			core.Options{Recorder: cap, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: SolveBatch err = %v, want nil (failure is per-query)", workers, err)
		}
		r0 := res.Results[0]
		if r0.Status != core.Failed {
			t.Fatalf("workers=%d: query 0 status = %v, want failed", workers, r0.Status)
		}
		if !strings.Contains(r0.Failure, bad.String()) || !strings.Contains(r0.Failure, "query 0") {
			t.Errorf("workers=%d: query 0 Failure %q does not name query and cube %s", workers, r0.Failure, bad)
		}
		r1 := res.Results[1]
		if r1.Status != core.Proved || !r1.Abstraction.Equal(uset.New(0)) {
			t.Fatalf("workers=%d: query 1 = %+v, want proved with {0}", workers, r1)
		}
		rejected := cap.Filter(obs.ClauseRejected)
		if len(rejected) != 1 || rejected[0].Name != bad.String() || rejected[0].Query != "0" {
			t.Fatalf("workers=%d: clause_rejected events = %+v, want one for query 0 naming %s",
				workers, rejected, bad)
		}
	}
}
