package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"tracer/internal/budget"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// parBatch is a concurrency-safe mockBatch: RunForward may be called from
// the scheduler's worker pool, so the run counter is locked.
type parBatch struct {
	problems []*mockProblem

	mu   sync.Mutex
	runs int
}

func (b *parBatch) NumParams() int  { return b.problems[0].n }
func (b *parBatch) NumQueries() int { return len(b.problems) }

func (b *parBatch) RunForward(_ *budget.Budget, p uset.Set) BatchRun {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	return &parRun{b: b, p: p}
}

func (b *parBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []ParamCube {
	return b.problems[q].Backward(bud, p, t)
}

type parRun struct {
	b *parBatch
	p uset.Set
}

func (r *parRun) Check(q int) (bool, lang.Trace) {
	// Distinct queries own distinct problems, so no lock is needed here —
	// the scheduler never checks the same query twice concurrently.
	out := r.b.problems[q].Forward(nil, r.p)
	return out.Proved, out.Trace
}

func (r *parRun) Steps() int { return 1 }

// TestSolveBatchWorkerDeterminism: Results, BatchStats, and the recorded
// event stream are identical for every worker count (the satellite
// determinism requirement; runs under the tier-1 -race gate).
func TestSolveBatchWorkerDeterminism(t *testing.T) {
	run := func(workers int) ([]Result, BatchStats, []obs.Event) {
		b := &parBatch{problems: []*mockProblem{
			{n: 10, need: uset.New(0), provable: true},
			{n: 10, need: uset.New(0), provable: true},
			{n: 10, need: uset.New(1, 5), provable: true},
			{n: 10, need: uset.New(2, 4), provable: true},
			{n: 10, need: uset.New(3), provable: true},
			{n: 10, need: uset.New(2, 4, 6), provable: true},
			{n: 10, provable: false},
			{n: 10, need: uset.New(7, 8, 9), provable: true},
		}}
		cap := obs.NewCapture()
		res, err := SolveBatch(b, Options{Workers: workers, Recorder: cap})
		if err != nil {
			t.Fatal(err)
		}
		return res.Results, res.Stats, cap.Events()
	}
	baseRes, baseStats, baseEvents := run(1)
	for _, w := range []int{4, 8} {
		gotRes, gotStats, gotEvents := run(w)
		if !reflect.DeepEqual(gotRes, baseRes) {
			t.Errorf("Workers=%d: Results differ from sequential:\n%+v\nvs\n%+v", w, gotRes, baseRes)
		}
		if gotStats != baseStats {
			t.Errorf("Workers=%d: Stats = %+v, want %+v", w, gotStats, baseStats)
		}
		if len(gotEvents) != len(baseEvents) {
			t.Fatalf("Workers=%d: %d events, want %d", w, len(gotEvents), len(baseEvents))
		}
		for i := range gotEvents {
			ev, base := gotEvents[i], baseEvents[i]
			ev.WallNS, base.WallNS = 0, 0 // wall times legitimately differ
			if ev != base {
				t.Fatalf("Workers=%d: event %d differs: %+v vs %+v", w, i, ev, base)
			}
		}
	}
}

// slowBatch never proves anything and always eliminates exactly the current
// abstraction, exercising the batch wall-clock cap.
type slowBatch struct{ n, q int }

func (b *slowBatch) NumParams() int                                   { return b.n }
func (b *slowBatch) NumQueries() int                                  { return b.q }
func (b *slowBatch) RunForward(_ *budget.Budget, p uset.Set) BatchRun { return slowBatchRun{} }

func (b *slowBatch) Backward(_ *budget.Budget, q int, p uset.Set, t lang.Trace) []ParamCube {
	var neg uset.Set
	for v := 0; v < b.n; v++ {
		if !p.Has(v) {
			neg = neg.Add(v)
		}
	}
	return []ParamCube{{Pos: p, Neg: neg}} // blocks exactly p
}

type slowBatchRun struct{}

func (slowBatchRun) Check(q int) (bool, lang.Trace) {
	return false, lang.Trace{lang.MoveNull{V: "x"}}
}
func (slowBatchRun) Steps() int { return 0 }

// TestSolveBatchTimeout mirrors TestSolveTimeout: an expired wall-clock
// budget lands every unresolved query in the Exhausted bucket.
func TestSolveBatchTimeout(t *testing.T) {
	b := &slowBatch{n: 16, q: 3}
	res, err := SolveBatch(b, Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	for q, r := range res.Results {
		if r.Status != Exhausted {
			t.Errorf("query %d: status = %v, want exhausted", q, r.Status)
		}
	}
	if res.Stats.ForwardRuns != 0 {
		t.Errorf("ForwardRuns = %d, want 0 (budget expired before any round)", res.Stats.ForwardRuns)
	}
}

// hitBatch is scripted so that different groups converge on the same
// minimum abstraction, both within one round and across rounds:
//
//	q0: {} fails learning (x0)∧(x1)       → round 2 picks {0,1}, proved
//	q1: {} fails learning (x1)            → round 2 picks {1}, fails
//	    {1} fails learning (¬x1 ∨ x0)     → round 3 picks {0,1}: a memo hit
//	                                         on q0's round-2 run
type hitBatch struct {
	mu   sync.Mutex
	runs int
}

func (b *hitBatch) NumParams() int  { return 4 }
func (b *hitBatch) NumQueries() int { return 2 }

func (b *hitBatch) RunForward(_ *budget.Budget, p uset.Set) BatchRun {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	return hitRun{p: p}
}

func (b *hitBatch) Backward(_ *budget.Budget, q int, p uset.Set, t lang.Trace) []ParamCube {
	if p.Empty() {
		if q == 0 {
			return []ParamCube{{Neg: uset.New(0)}, {Neg: uset.New(1)}}
		}
		return []ParamCube{{Neg: uset.New(1)}}
	}
	return []ParamCube{{Pos: uset.New(1), Neg: uset.New(0)}}
}

type hitRun struct{ p uset.Set }

func (r hitRun) Check(q int) (bool, lang.Trace) {
	if r.p.Has(0) && r.p.Has(1) {
		return true, nil
	}
	return false, lang.Trace{lang.MoveNull{V: "x"}}
}
func (r hitRun) Steps() int { return 1 }

// TestSolveBatchForwardCache: the abstraction-keyed memo serves repeated
// minimum abstractions without re-running the forward analysis, and the
// hit/miss counters (stats and obs) record it.
func TestSolveBatchForwardCache(t *testing.T) {
	b := &hitBatch{}
	agg := obs.NewAgg()
	res, err := SolveBatch(b, Options{Recorder: agg})
	if err != nil {
		t.Fatal(err)
	}
	for q, r := range res.Results {
		if r.Status != Proved {
			t.Fatalf("query %d: status = %v, want proved", q, r.Status)
		}
		if !r.Abstraction.Equal(uset.New(0, 1)) {
			t.Fatalf("query %d: abstraction = %v, want {0,1}", q, r.Abstraction)
		}
	}
	// Rounds: {} | {0,1}, {1} | {0,1} again — four forward phases, but the
	// last is served by the memo, so only three executions.
	if b.runs != 3 {
		t.Errorf("forward executions = %d, want 3", b.runs)
	}
	if res.Stats.ForwardRuns != 4 {
		t.Errorf("ForwardRuns = %d, want 4 phases", res.Stats.ForwardRuns)
	}
	if res.Stats.FwdCacheHits != 1 || res.Stats.FwdCacheMisses != 3 {
		t.Errorf("cache hits/misses = %d/%d, want 1/3", res.Stats.FwdCacheHits, res.Stats.FwdCacheMisses)
	}
	// The memoized run's steps were already charged in its first round:
	// each execution contributes exactly one step, reuse contributes none.
	if res.Stats.TotalSteps != 3 {
		t.Errorf("TotalSteps = %d, want 3", res.Stats.TotalSteps)
	}
	if agg.Counter(obs.BatchFwdCacheHit) != 1 || agg.Counter(obs.BatchFwdCacheMiss) != 3 {
		t.Errorf("obs counters hit/miss = %d/%d, want 1/3",
			agg.Counter(obs.BatchFwdCacheHit), agg.Counter(obs.BatchFwdCacheMiss))
	}

	// With the memo disabled the last phase re-executes.
	b2 := &hitBatch{}
	res2, err := SolveBatch(b2, Options{FwdCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if b2.runs != 4 {
		t.Errorf("executions with memo disabled = %d, want 4", b2.runs)
	}
	if res2.Stats.FwdCacheHits != 0 {
		t.Errorf("hits with memo disabled = %d, want 0", res2.Stats.FwdCacheHits)
	}
	if res2.Stats.TotalSteps != 4 {
		t.Errorf("TotalSteps with memo disabled = %d, want 4", res2.Stats.TotalSteps)
	}
}
