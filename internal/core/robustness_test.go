package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"tracer/internal/budget"
	"tracer/internal/faultinject"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// ---------- satellite: no-progress resolves Failed with a terminal event ----------

// TestSolveNoProgressEvent: the no-progress exit still returns ErrNoProgress
// but now also resolves the query Failed, with exactly one terminal
// query_resolved event — callers watching the event stream see the query
// close instead of vanishing.
func TestSolveNoProgressEvent(t *testing.T) {
	cap := obs.NewCapture()
	m := &noProgress{mockProblem{n: 64, need: uset.New(0), provable: true}}
	res, err := Solve(m, Options{Recorder: cap})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if res.Status != Failed {
		t.Fatalf("status = %v, want failed", res.Status)
	}
	if !strings.Contains(res.Failure, "did not eliminate") {
		t.Fatalf("Failure = %q, want the no-progress message", res.Failure)
	}
	finals := cap.Filter(obs.QueryResolved)
	if len(finals) != 1 || finals[0].Status != "failed" {
		t.Fatalf("query_resolved events = %+v, want exactly one with status failed", finals)
	}
	if finals[0].Iter != res.Iterations || finals[0].Clauses != res.Clauses {
		t.Fatalf("terminal event %+v does not match result %+v", finals[0], res)
	}
}

// ---------- mid-phase deadline enforcement ----------

// spin busy-polls the budget until it trips; the failsafe deadline keeps a
// broken budget from hanging the test binary rather than failing it.
func spin(b *budget.Budget) {
	failsafe := time.Now().Add(10 * time.Second)
	for b.Poll() {
		if time.Now().After(failsafe) {
			return
		}
	}
}

// spinProblem spins inside one phase until the budget trips; without a
// budget each phase would run ~100× longer than the test's deadline.
type spinProblem struct{ phase string }

func (s *spinProblem) NumParams() int { return 4 }

func (s *spinProblem) Forward(b *budget.Budget, p uset.Set) Outcome {
	if s.phase == "forward" {
		spin(b)
		return Outcome{Steps: int(b.Steps())} // partial: never a false Proved
	}
	return Outcome{Trace: lang.Trace{lang.MoveNull{V: "x"}}, Steps: 1}
}

func (s *spinProblem) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []ParamCube {
	if s.phase == "backward" {
		spin(b)
		return nil // truncated walk: possibly-empty cube set
	}
	var neg uset.Set
	for v := 0; v < s.NumParams(); v++ {
		if !p.Has(v) {
			neg = neg.Add(v)
		}
	}
	return []ParamCube{{Pos: p, Neg: neg}} // blocks exactly p
}

// hardMinProblem front-loads a random vertex-cover clause set (as in
// internal/minsat's budget tests) so the second iteration's minimum search
// explodes; only the cooperative budget inside the branch-and-bound can
// bound it.
type hardMinProblem struct{ n int }

func (h *hardMinProblem) NumParams() int { return h.n }

func (h *hardMinProblem) Forward(b *budget.Budget, p uset.Set) Outcome {
	return Outcome{Trace: lang.Trace{lang.MoveNull{V: "x"}}, Steps: 1}
}

func (h *hardMinProblem) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []ParamCube {
	var cubes []ParamCube
	// Deterministic pseudo-random ~30% of the pairs (i, j): each cube
	// {Neg:{i,j}} blocks abstractions missing both, i.e. clause (xi ∨ xj).
	// The set covers p = {} (every cube has empty Pos).
	rng := uint64(12345)
	for i := 0; i < h.n; i++ {
		for j := i + 1; j < h.n; j++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if (rng>>33)%100 < 30 {
				cubes = append(cubes, ParamCube{Neg: uset.New(i, j)})
			}
		}
	}
	return cubes
}

// TestSolveDeadlineMidPhase: with a deadline set, Solve returns Exhausted
// within a bounded wall time even when a single phase — the forward run, the
// backward walk, or the minimum search — would on its own run far past the
// deadline, and it emits one budget_trip plus one terminal query_resolved.
func TestSolveDeadlineMidPhase(t *testing.T) {
	cases := []struct {
		name string
		pr   Problem
	}{
		{"forward", &spinProblem{phase: "forward"}},
		{"backward", &spinProblem{phase: "backward"}},
		// n sized so the fresh minimum search runs for seconds (the
		// occurrence-list engine solves n=60 in ~10ms), keeping the 40ms
		// deadline tripping mid-search rather than after a completed solve.
		{"minimum", &hardMinProblem{n: 140}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cap := obs.NewCapture()
			start := time.Now()
			res, err := Solve(tc.pr, Options{Timeout: 40 * time.Millisecond, Recorder: cap})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != Exhausted {
				t.Fatalf("status = %v, want exhausted", res.Status)
			}
			// Generous CI bound; the un-budgeted phase runs for ~10s.
			if elapsed > 5*time.Second {
				t.Fatalf("solve took %v with a 40ms deadline", elapsed)
			}
			if trips := cap.Filter(obs.BudgetTrip); len(trips) != 1 || trips[0].Name != "deadline" {
				t.Fatalf("budget_trip events = %+v, want one with cause deadline", trips)
			}
			finals := cap.Filter(obs.QueryResolved)
			if len(finals) != 1 || finals[0].Status != "exhausted" {
				t.Fatalf("query_resolved events = %+v", finals)
			}
		})
	}
}

// TestSolveContextCancelMidPhase: cancellation lands mid-forward-run and the
// solve unwinds cooperatively.
func TestSolveContextCancelMidPhase(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Solve(&spinProblem{phase: "forward"}, Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("solve took %v after a ~20ms cancellation", elapsed)
	}
}

// TestSolveMaxSteps: the machine-independent step quota trips mid-phase and
// the partial forward steps are reported.
func TestSolveMaxSteps(t *testing.T) {
	res, err := Solve(&spinProblem{phase: "forward"}, Options{MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
	if res.ForwardSteps == 0 {
		t.Fatal("ForwardSteps = 0, want the partial steps accumulated before the trip")
	}
}

// ---------- single-query panic isolation ----------

// TestSolvePanicIsolation: a panic in any phase resolves Failed with the
// cause and stack in the Result, a panic_recovered event, one terminal
// query_resolved, and a nil error.
func TestSolvePanicIsolation(t *testing.T) {
	hooks := []struct {
		site faultinject.Site
		key  string
	}{
		{faultinject.SiteMinimum, "i1"},
		{faultinject.SiteForward, "i1"},
		{faultinject.SiteBackward, "i1"},
	}
	for _, h := range hooks {
		t.Run(string(h.site), func(t *testing.T) {
			in := faultinject.New()
			in.PanicAt(h.site, h.key)
			cap := obs.NewCapture()
			m := &mockProblem{n: 6, need: uset.New(1), provable: true}
			res, err := Solve(m, Options{Inject: in, Recorder: cap})
			if err != nil {
				t.Fatalf("err = %v, want nil (panics must not escape as errors)", err)
			}
			if res.Status != Failed {
				t.Fatalf("status = %v, want failed", res.Status)
			}
			if !strings.Contains(res.Failure, "injected panic") {
				t.Fatalf("Failure = %q", res.Failure)
			}
			if res.Stack == "" {
				t.Fatal("Stack is empty, want the recovered goroutine stack")
			}
			if got := cap.Filter(obs.PanicRecovered); len(got) != 1 {
				t.Fatalf("panic_recovered events = %d, want 1", len(got))
			}
			finals := cap.Filter(obs.QueryResolved)
			if len(finals) != 1 || finals[0].Status != "failed" {
				t.Fatalf("query_resolved events = %+v", finals)
			}
		})
	}
}

// ---------- satellite: batch partial stats on a whole-batch budget trip ----------

// pollBatch's forward run charges ten budget polls per execution and reports
// seven steps, so a small MaxSteps trips deterministically inside the second
// round's forward phase.
type pollBatch struct{}

func (pollBatch) NumParams() int  { return 4 }
func (pollBatch) NumQueries() int { return 1 }

func (pollBatch) RunForward(b *budget.Budget, p uset.Set) BatchRun {
	for i := 0; i < 10; i++ {
		b.Poll()
	}
	return pollRun{}
}

func (pollBatch) Backward(_ *budget.Budget, q int, p uset.Set, t lang.Trace) []ParamCube {
	return []ParamCube{{Neg: uset.New(0)}}
}

type pollRun struct{}

func (pollRun) Check(q int) (bool, lang.Trace) {
	return false, lang.Trace{lang.MoveNull{V: "x"}}
}
func (pollRun) Steps() int { return 7 }

// TestSolveBatchPartialStats: a mid-batch budget trip resolves the
// unresolved queries Exhausted with their *accumulated* stats — iterations,
// clauses, and forward steps from the rounds that did run — and the terminal
// query_resolved event carries the same totals.
func TestSolveBatchPartialStats(t *testing.T) {
	cap := obs.NewCapture()
	res, err := SolveBatch(pollBatch{}, Options{MaxSteps: 15, Recorder: cap})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.Status != Exhausted {
		t.Fatalf("status = %v, want exhausted", r.Status)
	}
	if r.Iterations == 0 || r.Clauses == 0 || r.ForwardSteps == 0 {
		t.Fatalf("partial stats zeroed: %+v", r)
	}
	if trips := cap.Filter(obs.BudgetTrip); len(trips) != 1 || trips[0].Name != "steps" {
		t.Fatalf("budget_trip events = %+v, want one with cause steps", trips)
	}
	finals := cap.Filter(obs.QueryResolved)
	if len(finals) != 1 {
		t.Fatalf("query_resolved events = %d, want 1", len(finals))
	}
	e := finals[0]
	if e.Status != "exhausted" || e.Iter != r.Iterations || e.Clauses != r.Clauses || e.Steps != r.ForwardSteps {
		t.Fatalf("terminal event %+v does not reconcile with result %+v", e, r)
	}
	// The trip lands in round 2's forward phase: both phases are charged.
	if res.Stats.ForwardRuns != 2 || res.Stats.Rounds != 2 {
		t.Fatalf("stats = %+v, want 2 rounds and 2 forward runs", res.Stats)
	}
}

// ---------- satellite: chaos determinism across worker counts ----------

// chaosBatch resolves in two rounds when fault-free: round 0 runs every
// query under p = {} and learns clause (x_q) for query q, splitting the root
// group into singletons; round 1 proves query q under p = {q}. Group i in
// round 1's signature order is exactly query i, which makes hook keys easy
// to aim at one query.
type chaosBatch struct{ nq int }

func (b *chaosBatch) NumParams() int  { return b.nq }
func (b *chaosBatch) NumQueries() int { return b.nq }

func (b *chaosBatch) RunForward(_ *budget.Budget, p uset.Set) BatchRun { return chaosRun{p: p} }

func (b *chaosBatch) Backward(_ *budget.Budget, q int, p uset.Set, _ lang.Trace) []ParamCube {
	return []ParamCube{{Neg: uset.New(q)}}
}

type chaosRun struct{ p uset.Set }

func (r chaosRun) Check(q int) (bool, lang.Trace) {
	if r.p.Has(q) {
		return true, nil
	}
	return false, lang.Trace{lang.MoveNull{V: "x"}}
}
func (r chaosRun) Steps() int { return 1 }

// runChaos solves a 4-query chaosBatch with the injector built by mk,
// normalizing the nondeterministic fields (wall times in events, stacks in
// results) so the remainder can be compared byte-for-byte.
func runChaos(t *testing.T, workers int, mk func() *faultinject.Injector) ([]Result, []obs.Event) {
	t.Helper()
	cap := obs.NewCapture()
	res, err := SolveBatch(&chaosBatch{nq: 4}, Options{Workers: workers, Recorder: cap, Inject: mk()})
	if err != nil {
		t.Fatalf("Workers=%d: err = %v", workers, err)
	}
	results := append([]Result(nil), res.Results...)
	for i := range results {
		results[i].Stack = "" // stacks embed goroutine IDs
	}
	events := cap.Events()
	for i := range events {
		events[i].WallNS = 0
	}
	return results, events
}

// TestSolveBatchChaosDeterminism: a panic injected into each phase of the
// query-1 group fails exactly query 1, leaves every other query's verdict
// identical to the fault-free run, and produces byte-identical results and
// event streams for Workers 1, 2, and 4. A delay injection perturbs only
// timing. Runs under the tier-1 -race gate.
func TestSolveBatchChaosDeterminism(t *testing.T) {
	baseRes, _ := runChaos(t, 1, func() *faultinject.Injector { return nil })
	for q, r := range baseRes {
		if r.Status != Proved || !r.Abstraction.Equal(uset.New(q)) {
			t.Fatalf("fault-free baseline: query %d = %+v", q, r)
		}
	}

	cases := []struct {
		name string
		mk   func() *faultinject.Injector
		// failed lists the queries expected to resolve Failed.
		failed []int
	}{
		{"minimum-r1-g1", func() *faultinject.Injector {
			in := faultinject.New()
			in.PanicAt(faultinject.SiteMinimum, "r1.g1")
			return in
		}, []int{1}},
		{"forward-r1-p1", func() *faultinject.Injector {
			in := faultinject.New()
			in.PanicAt(faultinject.SiteForward, "r1.1")
			return in
		}, []int{1}},
		{"backward-r0-q1", func() *faultinject.Injector {
			in := faultinject.New()
			in.PanicAt(faultinject.SiteBackward, "r0.q1")
			return in
		}, []int{1}},
		{"delay-only", func() *faultinject.Injector {
			in := faultinject.New()
			in.DelayAt(faultinject.SiteForward, "r1.2", 2*time.Millisecond)
			return in
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w1Res, w1Events := runChaos(t, 1, tc.mk)
			failed := map[int]bool{}
			for _, q := range tc.failed {
				failed[q] = true
			}
			for q, r := range w1Res {
				if failed[q] {
					if r.Status != Failed || !strings.Contains(r.Failure, "injected panic") {
						t.Fatalf("query %d = %+v, want failed by injection", q, r)
					}
					continue
				}
				if !reflect.DeepEqual(r, baseRes[q]) {
					t.Fatalf("unaffected query %d diverged from fault-free run:\n%+v\nvs\n%+v", q, r, baseRes[q])
				}
			}
			if len(tc.failed) > 0 {
				var recovered int
				for _, e := range w1Events {
					if e.Kind == obs.PanicRecovered {
						recovered++
					}
				}
				if recovered != len(tc.failed) {
					t.Fatalf("panic_recovered events = %d, want %d", recovered, len(tc.failed))
				}
			}
			for _, w := range []int{2, 4} {
				gotRes, gotEvents := runChaos(t, w, tc.mk)
				if !reflect.DeepEqual(gotRes, w1Res) {
					t.Fatalf("Workers=%d: results differ from Workers=1:\n%+v\nvs\n%+v", w, gotRes, w1Res)
				}
				if !reflect.DeepEqual(gotEvents, w1Events) {
					t.Fatalf("Workers=%d: event stream differs from Workers=1 (%d vs %d events)",
						w, len(gotEvents), len(w1Events))
				}
			}
		})
	}
}

// TestChaosSeedSweep: under seeded pseudo-random injection (panics, trips,
// and delays at ~25% of hook points), SolveBatch never crashes, every query
// lands in a valid terminal status, every Failed verdict is backed by a
// panic_recovered event, and a repeated run with the same seed at Workers=1
// is byte-identical. make chaos runs this over a seed sweep.
func TestChaosSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, w := range []int{1, 4} {
			mk := func() *faultinject.Injector { return faultinject.Seeded(seed, 0.25) }
			res, events := runChaos(t, w, mk)
			failed := 0
			for q, r := range res {
				switch r.Status {
				case Proved, Impossible, Exhausted, Failed:
				default:
					t.Fatalf("seed %d Workers=%d: query %d has invalid status %v", seed, w, q, r.Status)
				}
				if r.Status == Failed {
					failed++
					if r.Failure == "" {
						t.Fatalf("seed %d Workers=%d: query %d Failed without a cause", seed, w, q)
					}
				}
			}
			recovered := 0
			for _, e := range events {
				if e.Kind == obs.PanicRecovered {
					recovered++
				}
			}
			if failed > 0 && recovered == 0 {
				t.Fatalf("seed %d Workers=%d: %d Failed queries but no panic_recovered events", seed, w, failed)
			}
			if w == 1 {
				res2, events2 := runChaos(t, 1, mk)
				if !reflect.DeepEqual(res2, res) || !reflect.DeepEqual(events2, events) {
					t.Fatalf("seed %d: same-seed Workers=1 rerun diverged", seed)
				}
			}
		}
	}
}
