package core

import (
	"errors"
	"testing"
	"time"

	"tracer/internal/budget"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// mockProblem simulates a parametric analysis over n boolean parameters:
// the query is provable exactly by abstractions that include all of need;
// the backward meta-analysis eliminates, per failing run, the cube "p with
// the first missing needed parameter off".
type mockProblem struct {
	n        int
	need     uset.Set
	provable bool
	runs     []uset.Set
}

func (m *mockProblem) NumParams() int { return m.n }

func (m *mockProblem) Forward(_ *budget.Budget, p uset.Set) Outcome {
	m.runs = append(m.runs, p)
	if m.provable && m.need.SubsetOf(p) {
		return Outcome{Proved: true, Steps: 1}
	}
	return Outcome{Trace: lang.Trace{lang.MoveNull{V: "x"}}, Steps: 1}
}

func (m *mockProblem) Backward(_ *budget.Budget, p uset.Set, t lang.Trace) []ParamCube {
	if !m.provable {
		// Nothing can prove it: eliminate everything matching p exactly on
		// the needed bits... the strongest sound statement is "everything".
		return []ParamCube{{}}
	}
	for _, v := range m.need.Elems() {
		if !p.Has(v) {
			// Every abstraction missing v fails.
			return []ParamCube{{Neg: uset.New(v)}}
		}
	}
	return nil
}

// TestSolveFindsMinimum: the cheapest abstraction is exactly the needed
// set, reached by learning one parameter per iteration.
func TestSolveFindsMinimum(t *testing.T) {
	need := uset.New(1, 3)
	m := &mockProblem{n: 6, need: need, provable: true}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proved {
		t.Fatalf("status = %v", res.Status)
	}
	if !res.Abstraction.Equal(need) {
		t.Fatalf("abstraction = %v, want %v", res.Abstraction, need)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3 ({} → {1} → {1,3})", res.Iterations)
	}
	// The first run must be the cheapest abstraction (empty set).
	if !m.runs[0].Empty() {
		t.Fatalf("first run used %v, want {}", m.runs[0])
	}
}

// TestSolveImpossible: blocking the full space yields Impossible.
func TestSolveImpossible(t *testing.T) {
	m := &mockProblem{n: 4, provable: false}
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Impossible {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
}

// noProgress is a (deliberately broken) problem whose meta-analysis fails
// to eliminate the current abstraction; Solve must refuse to loop.
type noProgress struct{ mockProblem }

func (n *noProgress) Backward(_ *budget.Budget, p uset.Set, t lang.Trace) []ParamCube {
	return []ParamCube{{Pos: uset.New(63)}} // never covers small p
}

func TestSolveDetectsNoProgress(t *testing.T) {
	m := &noProgress{mockProblem{n: 64, need: uset.New(0), provable: true}}
	_, err := Solve(m, Options{})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

// slowProblem never proves and always eliminates only the current point,
// exercising iteration caps and timeouts.
type slowProblem struct{ n int }

func (s *slowProblem) NumParams() int { return s.n }
func (s *slowProblem) Forward(_ *budget.Budget, p uset.Set) Outcome {
	return Outcome{Trace: lang.Trace{lang.MoveNull{V: "x"}}}
}
func (s *slowProblem) Backward(_ *budget.Budget, p uset.Set, t lang.Trace) []ParamCube {
	var neg uset.Set
	for v := 0; v < s.n; v++ {
		if !p.Has(v) {
			neg = neg.Add(v)
		}
	}
	return []ParamCube{{Pos: p, Neg: neg}} // blocks exactly p
}

func TestSolveIterationCap(t *testing.T) {
	res, err := Solve(&slowProblem{n: 10}, Options{MaxIters: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Exhausted || res.Iterations != 7 {
		t.Fatalf("status = %v after %d iterations", res.Status, res.Iterations)
	}
}

func TestSolveTimeout(t *testing.T) {
	res, err := Solve(&slowProblem{n: 16}, Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
}

// TestParamCubeContains covers the cube membership used for progress
// detection.
func TestParamCubeContains(t *testing.T) {
	c := ParamCube{Pos: uset.New(1), Neg: uset.New(2)}
	cases := []struct {
		p    uset.Set
		want bool
	}{
		{uset.New(1), true},
		{uset.New(1, 3), true},
		{uset.New(1, 2), false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := c.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// ---------- batch driver ----------

// mockBatch wraps several mockProblems sharing a parameter space.
type mockBatch struct {
	problems []*mockProblem
	runs     int
}

func (b *mockBatch) NumParams() int  { return b.problems[0].n }
func (b *mockBatch) NumQueries() int { return len(b.problems) }

type mockBatchRun struct {
	b *mockBatch
	p uset.Set
}

func (b *mockBatch) RunForward(_ *budget.Budget, p uset.Set) BatchRun {
	b.runs++
	return &mockBatchRun{b, p}
}

func (r *mockBatchRun) Check(q int) (bool, lang.Trace) {
	out := r.b.problems[q].Forward(nil, r.p)
	return out.Proved, out.Trace
}

func (r *mockBatchRun) Steps() int { return 1 }

func (b *mockBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []ParamCube {
	return b.problems[q].Backward(bud, p, t)
}

// TestSolveBatchMatchesIndividual: batch resolution returns the same
// statuses and abstractions as per-query Solve, while sharing runs.
func TestSolveBatchMatchesIndividual(t *testing.T) {
	mk := func() *mockBatch {
		return &mockBatch{problems: []*mockProblem{
			{n: 8, need: uset.New(0), provable: true},
			{n: 8, need: uset.New(0), provable: true}, // same group as above
			{n: 8, need: uset.New(2, 4), provable: true},
			{n: 8, provable: false},
		}}
	}
	batch := mk()
	res, err := SolveBatch(batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for q, pr := range mk().problems {
		want, err := Solve(pr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Results[q]
		if got.Status != want.Status {
			t.Errorf("query %d: status %v, want %v", q, got.Status, want.Status)
		}
		if want.Status == Proved && !got.Abstraction.Equal(want.Abstraction) {
			t.Errorf("query %d: abstraction %v, want %v", q, got.Abstraction, want.Abstraction)
		}
	}
	// Queries 0 and 1 share every clause set, so the batch must use fewer
	// forward runs than the 2+2+3+1 = 8 individual ones.
	if batch.runs >= 8 {
		t.Errorf("batch used %d forward runs, expected sharing to reduce below 8", batch.runs)
	}
	if res.Stats.ForwardRuns != batch.runs {
		t.Errorf("stats.ForwardRuns = %d, want %d", res.Stats.ForwardRuns, batch.runs)
	}
}

// TestSolveBatchExhaustion: the per-query iteration cap applies.
func TestSolveBatchExhaustion(t *testing.T) {
	b := &mockBatch{problems: []*mockProblem{{n: 6, need: uset.New(0, 1, 2, 3, 4), provable: true}}}
	res, err := SolveBatch(b, Options{MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Status != Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Results[0].Status)
	}
}
