package core

import (
	"testing"

	"tracer/internal/budget"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// TestSolveWarmSeed: seeding the cubes a cold solve learned makes the warm
// re-solve find the same minimum in one iteration (the single forward run
// that proves it).
func TestSolveWarmSeed(t *testing.T) {
	need := uset.New(1, 3)
	var learned []ParamCube
	cold := &mockProblem{n: 6, need: need, provable: true}
	coldRes, err := Solve(cold, Options{
		OnLearn: func(q int, p uset.Set, tr lang.Trace, cubes []ParamCube) {
			if q != 0 {
				t.Errorf("single-solve OnLearn q = %d", q)
			}
			if len(tr) == 0 {
				t.Error("OnLearn without trace")
			}
			learned = append(learned, cubes...)
		},
	})
	if err != nil || coldRes.Status != Proved {
		t.Fatalf("cold: %v %v", coldRes.Status, err)
	}
	if len(learned) == 0 {
		t.Fatal("OnLearn observed no cubes")
	}

	warm := &mockProblem{n: 6, need: need, provable: true}
	warmRes, err := Solve(warm, Options{Seed: learned})
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Status != Proved || !warmRes.Abstraction.Equal(coldRes.Abstraction) {
		t.Fatalf("warm diverged: %+v vs %+v", warmRes, coldRes)
	}
	if warmRes.Iterations != 1 {
		t.Fatalf("warm iterations = %d, want 1", warmRes.Iterations)
	}
	if warmRes.Clauses != coldRes.Clauses {
		t.Fatalf("warm clauses = %d, want %d", warmRes.Clauses, coldRes.Clauses)
	}
}

// TestSolveWarmSeedImpossible: seeding the full blocking set of an
// impossible query confirms Impossible with zero forward runs.
func TestSolveWarmSeedImpossible(t *testing.T) {
	var learned []ParamCube
	cold := &mockProblem{n: 4, provable: false}
	if res, err := Solve(cold, Options{
		OnLearn: func(_ int, _ uset.Set, _ lang.Trace, cubes []ParamCube) {
			learned = append(learned, cubes...)
		},
	}); err != nil || res.Status != Impossible {
		t.Fatalf("cold: %v %v", res.Status, err)
	}
	warm := &mockProblem{n: 4, provable: false}
	res, err := Solve(warm, Options{Seed: learned})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Impossible {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Iterations != 0 {
		t.Fatalf("iterations = %d, want 0 (UNSAT before any forward run)", res.Iterations)
	}
	if len(warm.runs) != 0 {
		t.Fatalf("warm ran forward %d times", len(warm.runs))
	}
}

// TestSolveSeedIgnoresBroken: corrupted (contradictory) seed cubes are
// dropped, not trusted.
func TestSolveSeedIgnoresBroken(t *testing.T) {
	need := uset.New(2)
	m := &mockProblem{n: 4, need: need, provable: true}
	res, err := Solve(m, Options{Seed: []ParamCube{{Pos: uset.New(0), Neg: uset.New(0)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proved || !res.Abstraction.Equal(need) {
		t.Fatalf("result with broken seed: %+v", res)
	}
}

// batchNeeds is a BatchProblem where query q needs exactly needs[q].
type batchNeeds struct {
	n     int
	needs []uset.Set
}

func (b *batchNeeds) NumParams() int  { return b.n }
func (b *batchNeeds) NumQueries() int { return len(b.needs) }

type batchNeedsRun struct {
	b *batchNeeds
	p uset.Set
}

func (r batchNeedsRun) Check(q int) (bool, lang.Trace) {
	if r.b.needs[q].SubsetOf(r.p) {
		return true, nil
	}
	return false, lang.Trace{lang.MoveNull{V: "x"}}
}
func (r batchNeedsRun) Steps() int { return 1 }

func (b *batchNeeds) RunForward(_ *budget.Budget, p uset.Set) BatchRun {
	return batchNeedsRun{b: b, p: p}
}

func (b *batchNeeds) Backward(_ *budget.Budget, q int, p uset.Set, _ lang.Trace) []ParamCube {
	for _, v := range b.needs[q].Elems() {
		if !p.Has(v) {
			return []ParamCube{{Neg: uset.New(v)}}
		}
	}
	return nil
}

// TestSolveBatchWarmSeed: per-query seeds captured by OnLearn let the warm
// batch resolve every query in one round (one forward-run iteration each).
func TestSolveBatchWarmSeed(t *testing.T) {
	needs := []uset.Set{uset.New(0), uset.New(1, 2), uset.New(3), {}}
	bp := &batchNeeds{n: 5, needs: needs}
	seeds := make([][]ParamCube, len(needs))
	cold, err := SolveBatch(bp, Options{
		OnLearn: func(q int, _ uset.Set, _ lang.Trace, cubes []ParamCube) {
			seeds[q] = append(seeds[q], cubes...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	warmBP := &batchNeeds{n: 5, needs: needs}
	warm, err := SolveBatch(warmBP, Options{
		SeedBatch: func(q int) []ParamCube { return seeds[q] },
	})
	if err != nil {
		t.Fatal(err)
	}
	for q := range needs {
		c, w := cold.Results[q], warm.Results[q]
		if w.Status != c.Status || !w.Abstraction.Equal(c.Abstraction) {
			t.Fatalf("q%d diverged: %+v vs %+v", q, w, c)
		}
		if w.Iterations > 1 {
			t.Fatalf("q%d warm iterations = %d", q, w.Iterations)
		}
	}
	if warm.Stats.Rounds != 1 {
		t.Fatalf("warm rounds = %d, want 1", warm.Stats.Rounds)
	}
}

// TestSolveBatchWarmSeedParallelDeterminism: seeded batches stay
// worker-count deterministic.
func TestSolveBatchWarmSeedParallelDeterminism(t *testing.T) {
	needs := []uset.Set{uset.New(0), uset.New(1, 2), uset.New(0), uset.New(4), {}}
	seeds := make([][]ParamCube, len(needs))
	if _, err := SolveBatch(&batchNeeds{n: 5, needs: needs}, Options{
		OnLearn: func(q int, _ uset.Set, _ lang.Trace, cubes []ParamCube) {
			seeds[q] = append(seeds[q], cubes...)
		},
	}); err != nil {
		t.Fatal(err)
	}
	var base *BatchResult
	for _, workers := range []int{1, 4} {
		got, err := SolveBatch(&batchNeeds{n: 5, needs: needs}, Options{
			Workers:   workers,
			SeedBatch: func(q int) []ParamCube { return seeds[q] },
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		for q := range needs {
			b, g := base.Results[q], got.Results[q]
			if g.Status != b.Status || !g.Abstraction.Equal(b.Abstraction) ||
				g.Iterations != b.Iterations || g.Clauses != b.Clauses {
				t.Fatalf("workers=%d q%d diverged: %+v vs %+v", workers, q, g, b)
			}
		}
	}
}
