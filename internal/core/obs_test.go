package core_test

import (
	"strings"
	"testing"

	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// figure1Job builds the check1 query of the paper's Fig 1 worked example:
//
//	x = new File; y = x; if (*) z = x; x.open(); y.close(); check(x, closed)
//
// It is proved with cheapest abstraction {x, y} in exactly 3 iterations
// (p = {} → {x} → {x, y}), the sequence the README and
// typestate/figure1_test.go pin down.
func figure1Job(t *testing.T) *typestate.Job {
	t.Helper()
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.If(lang.Atoms(lang.Move{Dst: "z", Src: "x"})),
		lang.Atoms(lang.Invoke{V: "x", M: "open"}),
		lang.Atoms(lang.Invoke{V: "y", M: "close"}),
	)
	g := lang.BuildCFG(prog)
	a := typestate.New(typestate.FileProperty(), "h", typestate.CollectVars(g))
	want := uset.Bits(0).Add(a.Prop.MustState("closed"))
	return &typestate.Job{A: a, G: g, Q: typestate.Query{Nodes: []int{g.Exit}, Want: want}, K: 1}
}

// TestFigure1EventSequence replays Fig 1 with a capturing recorder and
// checks that the event stream has the exact shape of the known resolution
// and that its totals reconcile with the returned Result counters.
func TestFigure1EventSequence(t *testing.T) {
	cap := obs.NewCapture()
	res, err := core.Solve(figure1Job(t), core.Options{Recorder: cap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved || res.Iterations != 3 {
		t.Fatalf("status = %v after %d iterations, want proved after 3", res.Status, res.Iterations)
	}

	// Shape: the known resolution does 3 iterations, the first two failing
	// (backward run + learned clauses), the third proving the query.
	iterStarts := cap.Filter(obs.IterStart)
	forwards := cap.Filter(obs.ForwardDone)
	backwards := cap.Filter(obs.BackwardDone)
	learned := cap.Filter(obs.ClauseLearned)
	finals := cap.Filter(obs.QueryResolved)
	if len(iterStarts) != 3 || len(forwards) != 3 {
		t.Fatalf("got %d iter_start / %d forward_done events, want 3 / 3", len(iterStarts), len(forwards))
	}
	if len(backwards) != 2 {
		t.Fatalf("got %d backward_done events, want 2 (two failing iterations)", len(backwards))
	}
	if len(finals) != 1 || finals[0].Status != "proved" {
		t.Fatalf("query_resolved = %+v, want one proved event", finals)
	}
	// The iterations climb the abstraction lattice: |p| = 0, 1, 2.
	for i, e := range iterStarts {
		if e.Iter != i+1 || e.AbsSize != i {
			t.Errorf("iter_start %d: iter=%d abs_size=%d, want iter=%d abs_size=%d",
				i, e.Iter, e.AbsSize, i+1, i)
		}
	}
	// Known learned-clause count: one unit clause per failing iteration.
	if res.Clauses != 2 {
		t.Fatalf("Result.Clauses = %d, want 2", res.Clauses)
	}
	if len(learned) != res.Clauses {
		t.Fatalf("got %d clause_learned events, want %d", len(learned), res.Clauses)
	}
	if last := learned[len(learned)-1]; last.Clauses != res.Clauses {
		t.Errorf("final clause_learned total = %d, want %d", last.Clauses, res.Clauses)
	}

	// Reconciliation: event totals equal the Result counters exactly.
	steps := 0
	for _, e := range forwards {
		steps += e.Steps
	}
	fin := finals[0]
	if steps != res.ForwardSteps || fin.Steps != res.ForwardSteps {
		t.Errorf("forward steps: events sum %d, final %d, Result %d", steps, fin.Steps, res.ForwardSteps)
	}
	if fin.Iter != res.Iterations || fin.Clauses != res.Clauses || fin.AbsSize != res.Abstraction.Len() {
		t.Errorf("query_resolved totals %+v do not match Result %+v", fin, res)
	}

	// Phase events appear in strict per-iteration order.
	var kinds []string
	for _, e := range cap.Events() {
		switch e.Kind {
		case obs.IterStart, obs.ForwardDone, obs.BackwardDone, obs.QueryResolved:
			kinds = append(kinds, string(e.Kind))
		}
	}
	want := "iter_start forward_done backward_done " +
		"iter_start forward_done backward_done " +
		"iter_start forward_done query_resolved"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("event order:\ngot  %s\nwant %s", got, want)
	}

	// The minimum-cost SAT solver reported one timed query per iteration
	// (Instrument is wired through core.Solve).
	var minsatCalls int
	for _, e := range cap.Events() {
		if e.Kind == obs.TimingKind && e.Name == "minsat.minimum" {
			minsatCalls++
		}
	}
	if minsatCalls != 3 {
		t.Errorf("minsat.minimum timings = %d, want 3", minsatCalls)
	}
}

// TestSolveNopRecorderUnchanged: solving with no recorder and with the
// explicit Nop recorder yields identical results (the instrumentation has
// no behavioral footprint).
func TestSolveNopRecorderUnchanged(t *testing.T) {
	a, err := core.Solve(figure1Job(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Solve(figure1Job(t), core.Options{Recorder: obs.Nop{}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status || a.Iterations != b.Iterations || a.Clauses != b.Clauses ||
		a.ForwardSteps != b.ForwardSteps || !a.Abstraction.Equal(b.Abstraction) {
		t.Fatalf("results differ: %+v vs %+v", a, b)
	}
}
