package core

import (
	"strconv"
	"testing"

	"tracer/internal/obs"
	"tracer/internal/uset"
)

// TestSolveBatchEventReconciliation: the batch event stream's totals match
// BatchStats and the per-query Results exactly.
func TestSolveBatchEventReconciliation(t *testing.T) {
	b := &mockBatch{problems: []*mockProblem{
		{n: 8, need: uset.New(0), provable: true},
		{n: 8, need: uset.New(0), provable: true},
		{n: 8, need: uset.New(2, 4), provable: true},
		{n: 8, provable: false},
	}}
	cap := obs.NewCapture()
	res, err := SolveBatch(b, Options{Recorder: cap})
	if err != nil {
		t.Fatal(err)
	}

	forwards := cap.Filter(obs.ForwardDone)
	if len(forwards) != res.Stats.ForwardRuns {
		t.Errorf("forward_done events = %d, want Stats.ForwardRuns = %d", len(forwards), res.Stats.ForwardRuns)
	}
	steps := 0
	for _, e := range forwards {
		steps += e.Steps
	}
	if steps != res.Stats.TotalSteps {
		t.Errorf("forward_done steps sum = %d, want Stats.TotalSteps = %d", steps, res.Stats.TotalSteps)
	}

	finals := cap.Filter(obs.QueryResolved)
	if len(finals) != len(res.Results) {
		t.Fatalf("query_resolved events = %d, want %d", len(finals), len(res.Results))
	}
	seen := map[string]bool{}
	for _, e := range finals {
		if seen[e.Query] {
			t.Errorf("query %s resolved twice", e.Query)
		}
		seen[e.Query] = true
		q, err := strconv.Atoi(e.Query)
		if err != nil {
			t.Fatalf("query_resolved has non-numeric query %q", e.Query)
		}
		r := res.Results[q]
		if e.Status != r.Status.String() || e.Iter != r.Iterations || e.Clauses != r.Clauses ||
			e.AbsSize != r.Abstraction.Len() || e.Steps != r.ForwardSteps {
			t.Errorf("query %d: event %+v does not match result %+v", q, e, r)
		}
	}

	// Queries 0/1 stay together while 2 and 3 learn different clauses, so
	// at least one redistribution is a real split.
	if res.Stats.TotalGroups > 1 && len(cap.Filter(obs.GroupSplit)) == 0 {
		t.Error("groups were created but no group_split event was emitted")
	}
}

// TestSolveBatchPickOrderDeterministic: the sorted signature list preserves
// the original smallest-signature pick order — two identical runs produce
// identical event streams and stats.
func TestSolveBatchPickOrderDeterministic(t *testing.T) {
	run := func() ([]obs.Event, BatchStats) {
		b := &mockBatch{problems: []*mockProblem{
			{n: 8, need: uset.New(0), provable: true},
			{n: 8, need: uset.New(1, 5), provable: true},
			{n: 8, need: uset.New(2, 4), provable: true},
			{n: 8, need: uset.New(3), provable: true},
			{n: 8, provable: false},
		}}
		cap := obs.NewCapture()
		res, err := SolveBatch(b, Options{Recorder: cap})
		if err != nil {
			t.Fatal(err)
		}
		return cap.Events(), res.Stats
	}
	e1, s1 := run()
	e2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		a, b := e1[i], e2[i]
		a.WallNS, b.WallNS = 0, 0 // wall times legitimately differ
		if a != b {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
}
