package core

import "testing"

func cacheKeys(c *fwdCache) []string {
	var ks []string
	for e := c.root.next; e != &c.root; e = e.next {
		ks = append(ks, e.key)
	}
	return ks
}

func TestFwdCacheLRU(t *testing.T) {
	c := newFwdCache(3)
	for _, k := range []string{"a", "b", "c"} {
		c.put(k, &fwdEntry{})
	}
	if got := cacheKeys(c); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("order after fill: %v", got)
	}
	// Hitting "a" makes it most recent; inserting "d" must evict "b".
	if c.get("a") == nil {
		t.Fatal("missing a")
	}
	c.put("d", &fwdEntry{})
	if c.get("b") != nil {
		t.Fatal("b should have been evicted")
	}
	if got := cacheKeys(c); len(got) != 3 || got[0] != "c" || got[1] != "a" || got[2] != "d" {
		t.Fatalf("order after evict: %v", got)
	}
	// Replacing an existing key keeps the size and refreshes recency.
	e2 := &fwdEntry{lastSteps: 7}
	c.put("c", e2)
	if got := c.get("c"); got != e2 {
		t.Fatal("replacement not visible")
	}
	if got := cacheKeys(c); len(got) != 3 || got[2] != "c" {
		t.Fatalf("order after replace: %v", got)
	}
	// Reverse links must mirror forward links (intrusive-list integrity).
	for e := c.root.next; e != &c.root; e = e.next {
		if e.next.prev != e || e.prev.next != e {
			t.Fatalf("broken links at %q", e.key)
		}
	}
}

func TestFwdCacheDisabled(t *testing.T) {
	c := newFwdCache(0)
	c.put("a", &fwdEntry{})
	if c.get("a") != nil {
		t.Fatal("disabled cache stored an entry")
	}
}
