// Package core implements TRACER (Algorithm 1, §5): the iterative
// forward–backward analysis that solves the optimum abstraction problem
// (Definition 2). Given a parametric dataflow analysis and a query, TRACER
// either returns a minimum-cost abstraction that proves the query or shows
// that no abstraction in the family can prove it.
//
// Abstractions are represented uniformly as sets of "on" parameter indices
// (tracked variables for type-state; L-mapped sites for thread-escape), with
// cost = |p|. The viable set of Alg 1 is maintained as a CNF of blocking
// clauses over the parameter bits; choosing a minimum element of the viable
// set (line 8) is a minimum-cost SAT query.
package core

import (
	"errors"
	"fmt"
	"time"

	"tracer/internal/lang"
	"tracer/internal/minsat"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// ParamCube is a conjunction of parameter literals describing a set of
// abstractions: every abstraction containing all of Pos and none of Neg.
// The backward meta-analysis returns cubes of abstractions guaranteed to
// fail; TRACER blocks each cube.
type ParamCube struct {
	Pos, Neg uset.Set
}

func (c ParamCube) String() string {
	return fmt.Sprintf("on%s off%s", c.Pos, c.Neg)
}

// Contains reports whether abstraction p lies in the cube.
func (c ParamCube) Contains(p uset.Set) bool {
	return c.Pos.SubsetOf(p) && p.Intersect(c.Neg).Empty()
}

// Outcome is the result of one forward analysis run for one query.
type Outcome struct {
	Proved bool
	// Trace is an abstract counterexample when !Proved.
	Trace lang.Trace
	// Steps is a machine-independent cost measure of the run.
	Steps int
}

// Problem is a single query posed to a parametric analysis.
type Problem interface {
	// NumParams is the number of boolean abstraction parameters N; the
	// abstraction family is 2^N.
	NumParams() int
	// Forward runs the analysis instantiated at p and checks the query.
	Forward(p uset.Set) Outcome
	// Backward runs the meta-analysis on a counterexample trace produced
	// under abstraction p, returning cubes of abstractions that are
	// guaranteed to fail the query. The cube set must cover p itself
	// (Theorem 3 clause 1 guarantees this for a sound meta-analysis).
	Backward(p uset.Set, t lang.Trace) []ParamCube
}

// Status classifies how a query was resolved.
type Status int

const (
	// Proved: a minimum abstraction proving the query was found.
	Proved Status = iota
	// Impossible: no abstraction in the family proves the query.
	Impossible
	// Exhausted: the iteration budget ran out (the paper's timeout bucket).
	Exhausted
)

func (s Status) String() string {
	switch s {
	case Proved:
		return "proved"
	case Impossible:
		return "impossible"
	case Exhausted:
		return "exhausted"
	}
	return "unknown"
}

// Result reports the resolution of one query.
type Result struct {
	Status       Status
	Abstraction  uset.Set // minimum proving abstraction when Status == Proved
	Iterations   int      // forward analysis runs
	Clauses      int      // blocking clauses learned
	ForwardSteps int      // cumulative forward solver steps
}

// Options tunes the TRACER loop.
type Options struct {
	// MaxIters bounds the number of CEGAR iterations (0 = 1000).
	MaxIters int
	// Timeout bounds wall-clock time per query; 0 means no limit. It plays
	// the role of the paper's 1,000-minute budget: queries exceeding it are
	// reported Exhausted ("could not be resolved", Fig 12).
	Timeout time.Duration
	// Recorder receives structured telemetry from the loop (see
	// internal/obs): one IterStart/ForwardDone pair per forward run,
	// BackwardDone and ClauseLearned while refining, and a final
	// QueryResolved whose totals match the returned Result exactly. nil
	// means no recording.
	Recorder obs.Recorder
	// Workers is the size of SolveBatch's worker pool: independent query
	// groups (and the per-query meta-analyses within a group) are scheduled
	// concurrently across it. 0 or 1 means sequential. Results, stats, and
	// the recorded event stream are identical for every value. Ignored by
	// the single-query Solve.
	Workers int
	// FwdCacheSize bounds SolveBatch's LRU memo of forward runs keyed by
	// the abstraction: groups converging on the same minimum abstraction
	// reuse one whole-program solve. 0 means the default (16); negative
	// disables cross-round memoization (runs are still shared by groups
	// picking the same abstraction within a scheduling round). Ignored by
	// the single-query Solve.
	FwdCacheSize int
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 1000
	}
	return o.MaxIters
}

func (o Options) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

func (o Options) fwdCacheSize() int {
	switch {
	case o.FwdCacheSize == 0:
		return 16
	case o.FwdCacheSize < 0:
		return 0
	}
	return o.FwdCacheSize
}

func (o Options) rec() obs.Recorder { return obs.Default(o.Recorder) }

// ErrNoProgress reports a meta-analysis that failed to eliminate the
// abstraction whose run it analyzed; it indicates an unsound backward
// transfer function and is returned rather than silently looping.
var ErrNoProgress = errors.New("core: backward meta-analysis did not eliminate the current abstraction")

// Solve runs Algorithm 1 for a single query.
func Solve(pr Problem, opts Options) (Result, error) {
	rec := opts.rec()
	recording := rec.Enabled()
	solver := minsat.New(pr.NumParams())
	if recording {
		solver.Instrument(rec)
	}
	res := Result{}
	start := time.Now()
	resolved := func(s Status) Result {
		res.Status = s
		if recording {
			rec.Record(obs.Event{
				Kind: obs.QueryResolved, Status: s.String(),
				Iter: res.Iterations, Clauses: res.Clauses,
				Steps: res.ForwardSteps, AbsSize: res.Abstraction.Len(),
				WallNS: int64(time.Since(start)),
			})
		}
		return res
	}
	for res.Iterations < opts.maxIters() {
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			break
		}
		p, ok := solver.Minimum()
		if !ok {
			return resolved(Impossible), nil
		}
		res.Iterations++
		if recording {
			rec.Record(obs.Event{Kind: obs.IterStart, Iter: res.Iterations,
				AbsSize: p.Len(), Clauses: solver.NumClauses()})
		}
		var phase time.Time
		if recording {
			phase = time.Now()
		}
		out := pr.Forward(p)
		res.ForwardSteps += out.Steps
		if recording {
			rec.Record(obs.Event{Kind: obs.ForwardDone, Iter: res.Iterations,
				AbsSize: p.Len(), Steps: out.Steps, WallNS: int64(time.Since(phase))})
		}
		if out.Proved {
			res.Abstraction = p
			return resolved(Proved), nil
		}
		if recording {
			phase = time.Now()
		}
		cubes := pr.Backward(p, out.Trace)
		if recording {
			rec.Record(obs.Event{Kind: obs.BackwardDone, Iter: res.Iterations,
				AbsSize: p.Len(), Cubes: len(cubes), WallNS: int64(time.Since(phase))})
		}
		covered := false
		for _, c := range cubes {
			before := solver.NumClauses()
			solver.Block(c.Pos, c.Neg)
			if recording && solver.NumClauses() > before {
				rec.Record(obs.Event{Kind: obs.ClauseLearned, Iter: res.Iterations,
					Clauses: solver.NumClauses()})
			}
			if c.Contains(p) {
				covered = true
			}
		}
		res.Clauses = solver.NumClauses()
		if !covered {
			return res, fmt.Errorf("%w (p=%s)", ErrNoProgress, p)
		}
	}
	return resolved(Exhausted), nil
}
