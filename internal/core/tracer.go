// Package core implements TRACER (Algorithm 1, §5): the iterative
// forward–backward analysis that solves the optimum abstraction problem
// (Definition 2). Given a parametric dataflow analysis and a query, TRACER
// either returns a minimum-cost abstraction that proves the query or shows
// that no abstraction in the family can prove it.
//
// Abstractions are represented uniformly as sets of "on" parameter indices
// (tracked variables for type-state; L-mapped sites for thread-escape), with
// cost = |p|. The viable set of Alg 1 is maintained as a CNF of blocking
// clauses over the parameter bits; choosing a minimum element of the viable
// set (line 8) is a minimum-cost SAT query.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"tracer/internal/budget"
	"tracer/internal/faultinject"
	"tracer/internal/lang"
	"tracer/internal/minsat"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// ParamCube is a conjunction of parameter literals describing a set of
// abstractions: every abstraction containing all of Pos and none of Neg.
// The backward meta-analysis returns cubes of abstractions guaranteed to
// fail; TRACER blocks each cube.
type ParamCube struct {
	Pos, Neg uset.Set
}

func (c ParamCube) String() string {
	return fmt.Sprintf("on%s off%s", c.Pos, c.Neg)
}

// Contains reports whether abstraction p lies in the cube.
func (c ParamCube) Contains(p uset.Set) bool {
	return c.Pos.SubsetOf(p) && p.Intersect(c.Neg).Empty()
}

// Broken reports a contradictory cube: Pos and Neg overlap, so the cube
// denotes no abstraction at all. Its blocking clause would contain a literal
// and its negation, canonicalize to a tautology, and be silently dropped by
// minsat.Solver.Add — the loop would re-pick the same abstraction forever.
// The learn site rejects such cubes explicitly (clause_rejected event)
// instead of letting them vanish.
func (c ParamCube) Broken() bool {
	return !c.Pos.Intersect(c.Neg).Empty()
}

// Outcome is the result of one forward analysis run for one query.
type Outcome struct {
	Proved bool
	// Trace is an abstract counterexample when !Proved.
	Trace lang.Trace
	// Steps is a machine-independent cost measure of the run.
	Steps int
	// Reused counts path edges served by the delta-incremental forward
	// path (validated survivors of a retained run plus memo-served
	// expansions); zero for a cold run. Carried into the ForwardDone event.
	Reused int
}

// Problem is a single query posed to a parametric analysis.
//
// Both phases receive the solve's cooperative budget b (nil when the solve
// is unbudgeted — implementations must tolerate nil, which the
// budget.Budget methods do natively). A long-running phase is expected to
// pass b down to its inner loops (dataflow.SolveBudget, rhs.SolveBudget,
// meta.Client.Budget) and, when b trips mid-phase, to return early with a
// partial result: an unproved Outcome (never a false Proved from a partial
// fixpoint) or a possibly-empty cube set. The loop checks b.Tripped() after
// each phase and discards tripped-phase results, resolving Exhausted.
type Problem interface {
	// NumParams is the number of boolean abstraction parameters N; the
	// abstraction family is 2^N.
	NumParams() int
	// Forward runs the analysis instantiated at p and checks the query.
	Forward(b *budget.Budget, p uset.Set) Outcome
	// Backward runs the meta-analysis on a counterexample trace produced
	// under abstraction p, returning cubes of abstractions that are
	// guaranteed to fail the query. The cube set must cover p itself
	// (Theorem 3 clause 1 guarantees this for a sound meta-analysis).
	Backward(b *budget.Budget, p uset.Set, t lang.Trace) []ParamCube
}

// ObsFlusher is implemented by problems that accumulate internal telemetry
// counters outside the event stream — notably the formula kernel's
// interning and theory-memo statistics (the formula.* counters). Solve and
// SolveBatch flush once per solve, after the final event, and only when
// recording. Unlike events, these counters may be scheduling-dependent
// under concurrency, so they are deliberately not part of the byte-identical
// determinism contract across worker counts.
type ObsFlusher interface {
	FlushObs(rec obs.Recorder)
}

// Status classifies how a query was resolved.
type Status int

const (
	// Proved: a minimum abstraction proving the query was found.
	Proved Status = iota
	// Impossible: no abstraction in the family proves the query.
	Impossible
	// Exhausted: a budget ran out — the iteration cap, the wall deadline,
	// the step quota, or caller cancellation (the paper's timeout bucket).
	Exhausted
	// Failed: the query's own solving failed — a panic was recovered from
	// one of its phases, or the meta-analysis made no progress. Failed is
	// confined to the affected query; in SolveBatch sibling queries keep
	// resolving normally.
	Failed
)

func (s Status) String() string {
	switch s {
	case Proved:
		return "proved"
	case Impossible:
		return "impossible"
	case Exhausted:
		return "exhausted"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Result reports the resolution of one query.
type Result struct {
	Status       Status
	Abstraction  uset.Set // minimum proving abstraction when Status == Proved
	Iterations   int      // forward analysis runs
	Clauses      int      // blocking clauses learned
	ForwardSteps int      // cumulative forward solver steps
	// Failure describes why Status == Failed (the recovered panic value or
	// the no-progress error); empty otherwise.
	Failure string
	// Stack is the goroutine stack captured at the recovered panic, when
	// Failure stems from one. It is kept out of the obs event stream
	// (stacks embed goroutine IDs, which would break the byte-identical
	// determinism guarantee across worker counts).
	Stack string
}

// Options tunes the TRACER loop.
type Options struct {
	// MaxIters bounds the number of CEGAR iterations (0 = 1000).
	MaxIters int
	// Timeout bounds wall-clock time per query; 0 means no limit. It plays
	// the role of the paper's 1,000-minute budget: queries exceeding it are
	// reported Exhausted ("could not be resolved", Fig 12). Enforcement is
	// cooperative and mid-phase: every long-running loop polls the solve's
	// budget, so a single pathological minimum search, forward run, or
	// backward expansion is aborted within one polling interval of the
	// deadline instead of overrunning it.
	Timeout time.Duration
	// Context, when non-nil, cancels the solve cooperatively: when the
	// context is done, in-flight phases abort at their next budget poll and
	// unresolved queries are reported Exhausted with their accumulated
	// partial stats. The CLIs wire a signal.NotifyContext here so SIGINT
	// flushes traces and prints partial results.
	Context context.Context
	// MaxSteps, when > 0, bounds the total budget polls of the solve (a
	// machine-independent work quota across all phases: forward solver
	// steps, minsat search nodes, backward expansion steps). Exceeding it
	// resolves the remaining queries Exhausted.
	MaxSteps int64
	// Inject, when non-nil, fires deterministic faults (panics, delays,
	// budget trips) at the loop's named hook points; see
	// internal/faultinject. Production callers leave it nil.
	Inject *faultinject.Injector
	// Recorder receives structured telemetry from the loop (see
	// internal/obs): one IterStart/ForwardDone pair per forward run,
	// BackwardDone and ClauseLearned while refining, and a final
	// QueryResolved whose totals match the returned Result exactly. nil
	// means no recording.
	Recorder obs.Recorder
	// Workers is the size of SolveBatch's worker pool: independent query
	// groups (and the per-query meta-analyses within a group) are scheduled
	// concurrently across it. 0 or 1 means sequential. Results, stats, and
	// the recorded event stream are identical for every value. Ignored by
	// the single-query Solve.
	Workers int
	// FwdCacheSize bounds SolveBatch's LRU memo of forward runs keyed by
	// the abstraction: groups converging on the same minimum abstraction
	// reuse one whole-program solve. 0 means the default (64, picked by a
	// {16,64,256} paperbench sweep: 64 nearly doubles the 16-entry hit
	// rate at indistinguishable wall time, while 256 keeps gaining hits
	// but costs wall); negative disables cross-round memoization (runs
	// are still shared by groups picking the same abstraction within a
	// scheduling round). Ignored by the single-query Solve.
	FwdCacheSize int
	// Seed, when non-empty, blocks the given cubes before iteration 1 of a
	// single-query Solve — the warm-start path. Seeding is sound only if
	// every seeded cube still describes exclusively failing abstractions
	// for this query; internal/warm establishes that via IR-delta
	// invalidation before handing cubes here. Ignored by SolveBatch (use
	// SeedBatch).
	Seed []ParamCube
	// SeedBatch, when non-nil, supplies warm-start cubes per batch query
	// index; it is consulted once per query before the first round, and the
	// initial query groups are formed from the seeded clause sets instead
	// of one shared root group. nil (or all-empty) keeps the cold batch
	// path unchanged. Ignored by the single-query Solve.
	SeedBatch func(q int) []ParamCube
	// NoDelta disables SolveBatch's delta-resume path: evicted or near-miss
	// forward runs are never resumed across an abstraction flip, so every
	// cache miss is a cold whole-program solve. Per-problem delta behavior
	// (the single-query jobs' retained chains) is controlled on the problem
	// itself; this knob only governs the batch scheduler's donor selection.
	NoDelta bool
	// OnLearn, when non-nil, observes every successful backward pass: the
	// abstraction p that was eliminated, its counterexample trace, and the
	// accepted (non-contradictory) cubes that were blocked. q is the batch
	// query index (0 for the single-query Solve). The warm-start layer
	// records these to disk. Calls are only made for passes that satisfied
	// the progress guarantee under an untripped budget, so the cube set is
	// never partial. Must be safe for concurrent calls when Workers > 1.
	OnLearn func(q int, p uset.Set, t lang.Trace, cubes []ParamCube)
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 1000
	}
	return o.MaxIters
}

func (o Options) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

func (o Options) fwdCacheSize() int {
	switch {
	case o.FwdCacheSize == 0:
		return 64
	case o.FwdCacheSize < 0:
		return 0
	}
	return o.FwdCacheSize
}

func (o Options) rec() obs.Recorder { return obs.Default(o.Recorder) }

// newBudget builds the solve's cooperative budget, or nil when nothing
// bounds the solve (the common fully-trusted path keeps its zero-cost nil
// polls). A fault injector forces a budget so injected trips have a place
// to land.
func (o Options) newBudget(start time.Time) *budget.Budget {
	if o.Context == nil && o.Timeout <= 0 && o.MaxSteps <= 0 && o.Inject == nil {
		return nil
	}
	var deadline time.Time
	if o.Timeout > 0 {
		deadline = start.Add(o.Timeout)
	}
	return budget.New(o.Context, deadline, o.MaxSteps)
}

// ErrNoProgress reports a meta-analysis that failed to eliminate the
// abstraction whose run it analyzed; it indicates an unsound backward
// transfer function and is returned rather than silently looping.
var ErrNoProgress = errors.New("core: backward meta-analysis did not eliminate the current abstraction")

// learnCubes is the shared learn site of Solve and the batch runUnit: it
// blocks every well-formed cube of one backward pass in s and reports
// whether the cube set covers p — the progress guarantee (Theorem 3 clause
// 1): some learned clause must eliminate the abstraction whose
// counterexample was analyzed, or the next Minimum re-picks it.
//
// Contradictory cubes (Broken: Pos ∩ Neg ≠ ∅) are rejected here rather than
// passed to the solver, where their tautological blocking clauses would be
// silently dropped by canonicalization; each rejection emits a
// clause_rejected event naming the cube and bumps the CoreClauseRejected
// counter. query tags batch-mode events ("" for the single-query Solve).
func learnCubes(s *minsat.Solver, p uset.Set, cubes []ParamCube, rec obs.Recorder, recording bool, query string, iter int) (covered bool, rejected []ParamCube) {
	for _, c := range cubes {
		if c.Broken() {
			rejected = append(rejected, c)
			if recording {
				rec.Record(obs.Event{Kind: obs.ClauseRejected, Query: query,
					Iter: iter, Name: c.String()})
				rec.Count(obs.CoreClauseRejected, 1)
			}
			continue
		}
		before := s.NumClauses()
		s.Block(c.Pos, c.Neg)
		if recording && s.NumClauses() > before {
			rec.Record(obs.Event{Kind: obs.ClauseLearned, Query: query,
				Iter: iter, Clauses: s.NumClauses()})
		}
		if c.Contains(p) {
			covered = true
		}
	}
	return covered, rejected
}

// seedSolver blocks warm-start cubes in s, returning how many clauses were
// genuinely added (broken cubes are skipped defensively — a corrupted store
// must not abort the solve).
func seedSolver(s *minsat.Solver, seed []ParamCube) int {
	cs := make([]minsat.Clause, 0, len(seed))
	for _, c := range seed {
		if c.Broken() {
			continue
		}
		cs = append(cs, minsat.BlockingClause(c.Pos, c.Neg))
	}
	return s.SeedClauses(cs)
}

// acceptedCubes filters out contradictory cubes, mirroring what learnCubes
// actually blocked; the result is what OnLearn observers may persist.
func acceptedCubes(cubes []ParamCube) []ParamCube {
	out := make([]ParamCube, 0, len(cubes))
	for _, c := range cubes {
		if !c.Broken() {
			out = append(out, c)
		}
	}
	return out
}

// noProgressError builds the diagnostic for a backward pass that violated
// the progress guarantee, naming the offending cubes so the unsound
// transfer function can be found from the error alone.
func noProgressError(p uset.Set, cubes, rejected []ParamCube) error {
	render := func(cs []ParamCube) string {
		parts := make([]string, len(cs))
		for i, c := range cs {
			parts[i] = c.String()
		}
		return "[" + strings.Join(parts, "; ") + "]"
	}
	detail := "no cubes returned"
	if len(cubes) > 0 {
		detail = "cubes " + render(cubes) + " do not cover p"
	}
	if len(rejected) > 0 {
		detail += "; rejected contradictory " + render(rejected)
	}
	return fmt.Errorf("%w (p=%s: %s)", ErrNoProgress, p, detail)
}

// Solve runs Algorithm 1 for a single query.
//
// Failure model: every exit emits exactly one terminal QueryResolved event.
// A tripped budget (deadline, context cancellation, step quota, or injected
// trip) aborts the current phase cooperatively and resolves Exhausted with
// the accumulated partial stats, after a budget_trip event. A panic in any
// phase is recovered here and resolves Failed (Result.Failure/Stack carry
// the cause), after a panic_recovered event; Solve then returns a nil
// error, so one poisoned query cannot crash a caller iterating many. The
// no-progress condition also resolves Failed but still returns
// ErrNoProgress, since it indicates an unsound backward transfer function
// rather than a bad input.
func Solve(pr Problem, opts Options) (res Result, err error) {
	rec := opts.rec()
	recording := rec.Enabled()
	if fl, ok := pr.(ObsFlusher); ok && recording {
		defer fl.FlushObs(rec)
	}
	start := time.Now()
	bud := opts.newBudget(start)
	inj := opts.Inject
	// One solver lives across all CEGAR iterations, so after each round's
	// Block the next Minimum re-searches from the previous cost floor (or is
	// answered from the cached model outright) instead of starting cold — see
	// the incrementality contract in internal/minsat.
	solver := minsat.New(pr.NumParams())
	if recording {
		solver.Instrument(rec)
	}
	if len(opts.Seed) > 0 {
		added := seedSolver(solver, opts.Seed)
		res.Clauses = solver.NumClauses()
		if recording && added > 0 {
			rec.Record(obs.Event{Kind: obs.WarmSeed, Clauses: added})
			rec.Count(obs.CoreWarmSeededClauses, int64(added))
		}
	}
	resolved := func(s Status) Result {
		res.Status = s
		if recording {
			rec.Record(obs.Event{
				Kind: obs.QueryResolved, Status: s.String(),
				Iter: res.Iterations, Clauses: res.Clauses,
				Steps: res.ForwardSteps, AbsSize: res.Abstraction.Len(),
				WallNS: int64(time.Since(start)),
			})
		}
		return res
	}
	tripped := func() Result {
		if recording {
			rec.Record(obs.Event{Kind: obs.BudgetTrip, Iter: res.Iterations,
				Name: bud.Cause().String(), WallNS: int64(time.Since(start))})
			rec.Count(obs.CoreBudgetTrip, 1)
		}
		return resolved(Exhausted)
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		res.Abstraction = nil
		res.Failure = fmt.Sprint(r)
		res.Stack = string(debug.Stack())
		err = nil
		if recording {
			rec.Record(obs.Event{Kind: obs.PanicRecovered,
				Iter: res.Iterations, Name: res.Failure})
			rec.Count(obs.CorePanicRecovered, 1)
		}
		resolved(Failed)
	}()
	for res.Iterations < opts.maxIters() {
		if !bud.Check() {
			return tripped(), nil
		}
		inj.At(bud, faultinject.SiteMinimum, fmt.Sprintf("i%d", res.Iterations+1))
		p, ok := solver.MinimumBudget(bud)
		if bud.Tripped() {
			return tripped(), nil
		}
		if !ok {
			return resolved(Impossible), nil
		}
		res.Iterations++
		if recording {
			rec.Record(obs.Event{Kind: obs.IterStart, Iter: res.Iterations,
				AbsSize: p.Len(), Clauses: solver.NumClauses()})
		}
		var phase time.Time
		if recording {
			phase = time.Now()
		}
		inj.At(bud, faultinject.SiteForward, fmt.Sprintf("i%d", res.Iterations))
		out := pr.Forward(bud, p)
		res.ForwardSteps += out.Steps
		if recording {
			rec.Record(obs.Event{Kind: obs.ForwardDone, Iter: res.Iterations,
				AbsSize: p.Len(), Steps: out.Steps, Reused: out.Reused,
				WallNS: int64(time.Since(phase))})
		}
		// A partial forward fixpoint can fail to reach the failing state and
		// look "proved"; discard the outcome of a tripped run.
		if bud.Tripped() {
			return tripped(), nil
		}
		if out.Proved {
			res.Abstraction = p
			return resolved(Proved), nil
		}
		if recording {
			phase = time.Now()
		}
		inj.At(bud, faultinject.SiteBackward, fmt.Sprintf("i%d", res.Iterations))
		cubes := pr.Backward(bud, p, out.Trace)
		if recording {
			rec.Record(obs.Event{Kind: obs.BackwardDone, Iter: res.Iterations,
				AbsSize: p.Len(), Cubes: len(cubes), WallNS: int64(time.Since(phase))})
		}
		// A truncated backward walk may return cubes not covering p; that is
		// budget pressure, not unsoundness — don't report no-progress.
		if bud.Tripped() {
			return tripped(), nil
		}
		covered, rejected := learnCubes(solver, p, cubes, rec, recording, "", res.Iterations)
		res.Clauses = solver.NumClauses()
		if !covered {
			err := noProgressError(p, cubes, rejected)
			res.Failure = err.Error()
			return resolved(Failed), err
		}
		if opts.OnLearn != nil {
			opts.OnLearn(0, p, out.Trace, acceptedCubes(cubes))
		}
	}
	return resolved(Exhausted), nil
}
