package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"tracer/internal/budget"
	"tracer/internal/faultinject"
	"tracer/internal/lang"
	"tracer/internal/minsat"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// BatchProblem poses many queries over the same program and parametric
// analysis. The framework implements the multi-query optimization of §6: it
// maintains groups of unresolved queries keyed by their set of learned
// blocking clauses; queries in a group share forward analysis runs, and a
// group splits when the meta-analysis learns different conditions for
// different queries.
//
// SolveBatch schedules work across a pool of Options.Workers goroutines, so
// implementations must tolerate concurrency: RunForward may be called
// concurrently for distinct abstractions, each returned BatchRun must allow
// concurrent Check calls (for distinct queries), and Backward must allow
// concurrent calls for distinct queries. Both driver implementations satisfy
// this by giving every run and every backward job its own analysis instance.
//
// Both phases receive the batch's cooperative budget b (nil when the batch
// is unbudgeted), under the same contract as Problem: pass it down to the
// inner loops, and on a mid-phase trip return early with a partial,
// never-falsely-proved result. Runs returned by RunForward should capture b
// so lazily computed Checks stay interruptible.
type BatchProblem interface {
	NumParams() int
	NumQueries() int
	// RunForward runs the forward analysis once under abstraction p,
	// returning a handle that answers per-query checks (lazily, so clients
	// whose queries need per-site runs only pay for the sites asked).
	RunForward(b *budget.Budget, p uset.Set) BatchRun
	// Backward analyzes query q's counterexample under p, as in Problem.
	Backward(b *budget.Budget, q int, p uset.Set, t lang.Trace) []ParamCube
}

// BatchRun is one (shared) forward run.
type BatchRun interface {
	// Check reports whether query q is proved; if not it returns an
	// abstract counterexample trace.
	Check(q int) (proved bool, trace lang.Trace)
	// Steps is the machine-independent cost of the run so far.
	Steps() int
}

// DeltaBatchProblem is a BatchProblem whose forward runs retain resumable
// state (see dataflow.Chain): RunForwardFrom seeds a fresh solve under p with
// a donor run previously produced under donorP, so the solver revalidates the
// donor's retained execution against the parameter flip instead of starting
// cold. The donor is CONSUMED — resuming invalidates the donor's result, so
// the scheduler removes the donor from the forward-run memo before donating
// and never lets it serve another Check. The returned run must be
// byte-equivalent to RunForward(b, p): same check verdicts, same traces, same
// step counts.
type DeltaBatchProblem interface {
	BatchProblem
	RunForwardFrom(b *budget.Budget, p uset.Set, donor BatchRun, donorP uset.Set) BatchRun
}

// DeltaRun is implemented by runs that account path-edge reuse. The counts
// are cumulative over the run's lifetime (lazy runs keep accruing inside
// Check), mirroring Steps; the scheduler charges per-round deltas.
type DeltaRun interface {
	DeltaStats() (resumes, reused, invalidated int)
}

// BatchStats aggregates runner-level statistics.
type BatchStats struct {
	// ForwardRuns counts forward-run phases: one per distinct abstraction
	// used per scheduling round (== the number of ForwardDone events). It
	// equals the number of whole-program forward executions except when the
	// cross-round memo serves a phase from an earlier round.
	ForwardRuns int
	PeakGroups  int
	TotalGroups int // groups ever created (Table 4's "# groups" analogue)
	TotalSteps  int
	// Rounds counts scheduling rounds: each round runs every live group for
	// one CEGAR iteration.
	Rounds int
	// FwdCacheHits / FwdCacheMisses count, per group iteration, whether the
	// group's chosen abstraction was served by an already-available forward
	// run (shared within the round or memoized from an earlier one) or
	// required a fresh whole-program solve.
	FwdCacheHits   int
	FwdCacheMisses int
	// DeltaResumes / PEReused / PEInvalidated aggregate the delta-incremental
	// forward engine's accounting across the batch's runs (DeltaBatchProblem
	// only; zero otherwise). DeltaResumes counts solves served by resuming a
	// retained execution; PEReused counts path edges that survived
	// revalidation or were served from the expansion memo without a transfer
	// call; PEInvalidated counts path edges rolled back by a parameter flip.
	// The totals reconcile with the forward_done events: PEReused equals the
	// sum of their Reused fields, and with the rhs.* counters recorded per
	// forward-run phase.
	DeltaResumes  int
	PEReused      int
	PEInvalidated int
}

// BatchResult is the outcome of SolveBatch.
type BatchResult struct {
	Results []Result
	Stats   BatchStats
}

// group is a set of unresolved queries sharing a clause set.
type group struct {
	solver  *minsat.Solver
	queries []int
}

// groupPlan is the per-round scheduling state of one live group.
type groupPlan struct {
	g      *group
	minBuf *obs.Buffer // minsat telemetry from the parallel Minimum call
	p      uset.Set
	sat    bool
	// panicked is set when the group's Minimum phase panicked; the whole
	// group resolves Failed and schedules no further work this round.
	panicked *panicInfo
	// live marks plans that survived the sequential pass (satisfiable, no
	// panic) and therefore own a task and a unit range.
	live bool
	// ordinal is the global group-iteration number (IterStart.Iter); it is
	// assigned sequentially in signature order, so it is deterministic.
	ordinal int
	task    *fwdTask
	unitLo  int // index of this group's first unit in the round's unit list
}

// fwdTask is one forward-run phase of a round: a distinct abstraction chosen
// by one or more groups, resolved to a fresh or memoized BatchRun.
type fwdTask struct {
	p     uset.Set
	key   string
	run   BatchRun
	entry *fwdEntry // non-nil when served by the cross-round memo
	donor *fwdEntry // non-nil when a fresh run resumes a consumed memo entry
	fresh bool      // true when this phase executes RunForward
	// panicked is set when the RunForward phase panicked; every query in
	// every group sharing the task resolves Failed, and the task is neither
	// charged nor memoized.
	panicked  *panicInfo
	ordinal   int   // ordinal of the first group using the run
	queries   int   // queries checked against the run this round
	stepDelta int   // steps charged to this phase at task close
	execNS    int64 // RunForward wall time (fresh tasks, recording only)
	checkNS   int64 // summed Check wall time (recording only)
}

// unit is one (group, query) check-and-refine step scheduled in a round.
type unit struct {
	pl *groupPlan
	q  int
}

// unitKind classifies a unit's deterministic outcome.
type unitKind uint8

const (
	uProved unitKind = iota
	uExhausted
	uMoved
	uFailed
)

// unitOut is the product of one unit. Everything the sequential merge needs
// is captured here; the unit itself touches no shared state beyond its own
// result slot.
type unitOut struct {
	kind    unitKind
	next    *minsat.Solver // uMoved: the query's refined clause set
	sig     string         // uMoved: next.Signature()
	clauses int            // uMoved: next.NumClauses()
	buf     *obs.Buffer    // backward/clause events, replayed by the merge
	checkNS int64
	// fail describes a uFailed unit; taskFail marks it as inherited from
	// the task's RunForward panic (reported once at task close) rather than
	// the unit's own backward phase.
	fail     *panicInfo
	taskFail bool
	err      error // no-progress: the meta-analysis did not eliminate p
}

// SolveBatch resolves every query, sharing forward runs within groups.
// opts.MaxIters bounds the number of forward runs any single query may
// participate in; opts.Timeout, opts.Context, and opts.MaxSteps bound the
// whole batch through one shared cooperative budget. When the budget trips
// — even in the middle of a minimum search, forward run, or backward
// expansion — the in-flight phase aborts at its next poll, a budget_trip
// event is emitted, and every still-unresolved query resolves Exhausted
// carrying its accumulated partial stats (iterations, clauses, and forward
// steps so far), reconciling with its terminal query_resolved event.
//
// A panic in any phase is recovered at the phase boundary and confined to
// the smallest query set that depends on the panicked computation: the
// group (minimum phase), the queries sharing the run (forward phase), or
// the single query (backward phase). Affected queries resolve Failed
// (Result.Failure/Stack carry the cause) after a panic_recovered event;
// sibling groups keep resolving, and SolveBatch returns a nil error. The
// no-progress condition likewise fails only the affected query.
//
// Scheduling is round-based: each round snapshots the live groups in sorted
// signature order, computes their minimum abstractions concurrently, dedupes
// the needed forward runs through an LRU memo keyed by the abstraction,
// executes the missing runs concurrently, then checks every (group, query)
// pair and runs its backward meta-analysis concurrently. All cross-query
// interaction — cache lookups, event emission, stats, and regrouping — is
// confined to sequential merge passes in signature order, so Results, Stats,
// and the recorded event stream are identical for every Workers value (the
// one exception: a budget tripping mid-round is observed at a
// scheduling-dependent point, so which queries still resolve normally in
// that round can vary; panic confinement and fault injection do not vary).
func SolveBatch(bp BatchProblem, opts Options) (*BatchResult, error) {
	rec := opts.rec()
	recording := rec.Enabled()
	if fl, ok := bp.(ObsFlusher); ok && recording {
		defer fl.FlushObs(rec)
	}
	workers := opts.workers()
	start := time.Now()
	bud := opts.newBudget(start)
	inj := opts.Inject
	n := bp.NumQueries()
	res := &BatchResult{Results: make([]Result, n)}
	if n == 0 {
		return res, nil
	}
	// resolved finalizes query q and emits its closing event; totals match
	// the query's Result fields exactly.
	resolved := func(q int, s Status) {
		res.Results[q].Status = s
		if recording {
			rec.Record(obs.Event{
				Kind: obs.QueryResolved, Query: strconv.Itoa(q), Status: s.String(),
				Iter: res.Results[q].Iterations, Clauses: res.Results[q].Clauses,
				Steps:   res.Results[q].ForwardSteps,
				AbsSize: res.Results[q].Abstraction.Len(),
				WallNS:  int64(time.Since(start)),
			})
		}
	}
	// recordPanic emits the single panic_recovered event for one recovered
	// panic (query set only for panics confined to one query's unit).
	recordPanic := func(query string, iter int, pi *panicInfo) {
		if recording {
			rec.Record(obs.Event{Kind: obs.PanicRecovered, Query: query,
				Iter: iter, Name: pi.msg})
			rec.Count(obs.CorePanicRecovered, 1)
		}
	}
	failQuery := func(q int, pi *panicInfo) {
		res.Results[q].Failure = pi.msg
		res.Results[q].Stack = pi.stack
		resolved(q, Failed)
	}
	// tripEvent emits the batch's single budget_trip event; every code path
	// calling it returns immediately after resolving the remaining queries.
	tripEvent := func() {
		if recording {
			rec.Record(obs.Event{Kind: obs.BudgetTrip,
				Name: bud.Cause().String(), WallNS: int64(time.Since(start))})
			rec.Count(obs.CoreBudgetTrip, 1)
		}
	}
	// Initial grouping. Cold batches start with one root group holding every
	// query (empty clause set). With warm-start seeds, each seeded query gets
	// its own solver pre-loaded with its surviving blocking clauses, and the
	// usual signature keying merges queries whose seeded clause sets coincide
	// — including back into the cold root when every seed deduplicates away.
	groups := map[string]*group{}
	addTo := func(s *minsat.Solver, q int) {
		sig := s.Signature()
		g := groups[sig]
		if g == nil {
			g = &group{solver: s}
			groups[sig] = g
			res.Stats.TotalGroups++
		}
		g.queries = append(g.queries, q)
	}
	root := minsat.New(bp.NumParams())
	for q := 0; q < n; q++ {
		var seed []ParamCube
		if opts.SeedBatch != nil {
			seed = opts.SeedBatch(q)
		}
		if len(seed) == 0 {
			addTo(root, q)
			continue
		}
		s := minsat.New(bp.NumParams())
		added := seedSolver(s, seed)
		res.Results[q].Clauses = s.NumClauses()
		if recording && added > 0 {
			rec.Record(obs.Event{Kind: obs.WarmSeed, Query: strconv.Itoa(q),
				Clauses: added})
			rec.Count(obs.CoreWarmSeededClauses, int64(added))
		}
		addTo(s, q)
	}
	cache := newFwdCache(opts.fwdCacheSize())
	ordinal := 0 // global group-iteration counter
	// Donor-seeded resumption: on a memo miss, a DeltaBatchProblem's fresh
	// run may resume a consumed memo entry whose abstraction is within
	// maxFlip flipped parameters. The cap is tight: a near flip usually
	// leaves the retained run valid (or mostly valid), while a far flip
	// invalidates so much that a cold solve is cheaper — and consuming the
	// entry turns its future exact hits into misses for nothing.
	dbp, _ := bp.(DeltaBatchProblem)
	if opts.NoDelta {
		dbp = nil
	}
	const maxFlip = 2

	for len(groups) > 0 {
		res.Stats.Rounds++
		round := res.Stats.Rounds - 1 // 0-based, for fault-injection keys
		sigs := make([]string, 0, len(groups))
		for sig := range groups {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		if len(sigs) > res.Stats.PeakGroups {
			res.Stats.PeakGroups = len(sigs)
		}
		if !bud.Check() {
			tripEvent()
			for _, sig := range sigs {
				for _, q := range groups[sig].queries {
					resolved(q, Exhausted)
				}
			}
			return res, nil
		}
		gl := make([]*group, len(sigs))
		for i, sig := range sigs {
			gl[i] = groups[sig]
		}

		// Phase A (parallel): pick each group's minimum abstraction. Each
		// solver records into its own buffer; nothing else is shared. A
		// panicking worker marks only its own plan.
		plans := make([]groupPlan, len(gl))
		for i := range plans {
			plans[i].g = gl[i]
		}
		parallelFor(workers, len(gl), func(i int) {
			pl := &plans[i]
			defer func() {
				if r := recover(); r != nil {
					pl.panicked = capturePanic(r)
				}
			}()
			if recording {
				pl.minBuf = obs.NewBuffer()
				pl.g.solver.Instrument(pl.minBuf)
			}
			inj.At(bud, faultinject.SiteMinimum, fmt.Sprintf("r%d.g%d", round, i))
			pl.p, pl.sat = pl.g.solver.MinimumBudget(bud)
		})
		// A trip during phase A makes every !sat plan ambiguous (an aborted
		// search also reports unsatisfiable), so resolve the whole round as
		// Exhausted rather than risk a false Impossible.
		if bud.Tripped() {
			tripEvent()
			for i := range plans {
				pl := &plans[i]
				if pl.panicked != nil {
					recordPanic("", 0, pl.panicked)
					for _, q := range pl.g.queries {
						failQuery(q, pl.panicked)
					}
					continue
				}
				for _, q := range pl.g.queries {
					resolved(q, Exhausted)
				}
			}
			return res, nil
		}

		// Sequential pass (signature order): resolve panicked and
		// unsatisfiable groups, assign iteration ordinals, and map each
		// surviving group to a forward-run task via the abstraction-keyed
		// memo.
		var tasks []*fwdTask // distinct runs used this round, first-use order
		roundTask := map[string]*fwdTask{}
		var fresh []*fwdTask
		var units []unit
		// Abstractions wanted as-is this round are never donated: consuming
		// one would turn a later group's exact memo hit into a miss.
		var wanted map[string]bool
		if dbp != nil {
			wanted = make(map[string]bool, len(plans))
			for i := range plans {
				if plans[i].panicked == nil && plans[i].sat {
					wanted[plans[i].p.Key()] = true
				}
			}
		}
		for i := range plans {
			pl := &plans[i]
			if recording && pl.minBuf != nil {
				pl.minBuf.ReplayTo(rec)
			}
			if pl.panicked != nil {
				recordPanic("", 0, pl.panicked)
				for _, q := range pl.g.queries {
					failQuery(q, pl.panicked)
				}
				continue
			}
			if !pl.sat {
				for _, q := range pl.g.queries {
					resolved(q, Impossible)
				}
				continue
			}
			ordinal++
			pl.ordinal = ordinal
			pl.live = true
			if recording {
				rec.Record(obs.Event{Kind: obs.IterStart, Iter: pl.ordinal,
					AbsSize: pl.p.Len(), Clauses: pl.g.solver.NumClauses(),
					Queries: len(pl.g.queries), Groups: len(gl)})
			}
			key := pl.p.Key()
			t := roundTask[key]
			hit := true
			if t == nil {
				if e := cache.get(key); e != nil {
					t = &fwdTask{p: pl.p, key: key, run: e.run, entry: e, ordinal: pl.ordinal}
				} else {
					hit = false
					t = &fwdTask{p: pl.p, key: key, fresh: true, ordinal: pl.ordinal}
					if dbp != nil {
						t.donor = cache.takeDonor(pl.p, wanted, maxFlip)
					}
					fresh = append(fresh, t)
				}
				roundTask[key] = t
				tasks = append(tasks, t)
			}
			if hit {
				res.Stats.FwdCacheHits++
				if recording {
					rec.Count(obs.BatchFwdCacheHit, 1)
				}
			} else {
				res.Stats.FwdCacheMisses++
				if recording {
					rec.Count(obs.BatchFwdCacheMiss, 1)
				}
			}
			t.queries += len(pl.g.queries)
			pl.task = t
			pl.unitLo = len(units)
			for _, q := range pl.g.queries {
				units = append(units, unit{pl: pl, q: q})
			}
		}

		// Phase B (parallel): execute the missing forward runs. A panicking
		// run marks only its own task.
		parallelFor(workers, len(fresh), func(i int) {
			t := fresh[i]
			defer func() {
				if r := recover(); r != nil {
					t.panicked = capturePanic(r)
				}
			}()
			var s time.Time
			if recording {
				s = time.Now()
			}
			inj.At(bud, faultinject.SiteForward, fmt.Sprintf("r%d.%s", round, t.key))
			if t.donor != nil {
				t.run = dbp.RunForwardFrom(bud, t.p, t.donor.run, t.donor.p)
			} else {
				t.run = bp.RunForward(bud, t.p)
			}
			if recording {
				t.execNS = int64(time.Since(s))
			}
		})

		// Phase C (parallel): check every query against its group's run and
		// refine its clause set from the counterexample. Each unit owns its
		// result slot and buffers its events; a panicking unit fails only
		// its own query. Skipped entirely if the budget tripped during the
		// forward phase — the runs are partial and their checks worthless.
		var outs []unitOut
		if !bud.Tripped() {
			outs = make([]unitOut, len(units))
			parallelFor(workers, len(units), func(i int) {
				outs[i] = runUnit(bp, opts, res, units[i], recording, bud, inj, round)
			})
		}

		// Close the round's forward-run phases in first-use order: charge
		// each run's step delta (lazy runs accrue steps inside Check, so this
		// runs after phase C), refresh the memo, and report forward panics
		// once per task. Per-query ForwardSteps mirror the single-query
		// solver: every query sharing a run is charged the run's delta.
		for i := range units {
			if outs != nil {
				units[i].pl.task.checkNS += outs[i].checkNS
			}
		}
		trippedRound := bud.Tripped()
		for _, t := range tasks {
			if t.panicked != nil {
				recordPanic("", t.ordinal, t.panicked)
				continue
			}
			if t.run == nil {
				continue
			}
			steps := t.run.Steps()
			prev := 0
			if t.entry != nil {
				prev = t.entry.lastSteps
			}
			t.stepDelta = steps - prev
			res.Stats.TotalSteps += t.stepDelta
			res.Stats.ForwardRuns++
			// Delta accounting mirrors the lazy step accounting: runs report
			// cumulative counts, the phase charges the delta since the memo
			// entry's last round.
			var delta [3]int
			var dr, du, di int
			if dl, ok := t.run.(DeltaRun); ok {
				delta[0], delta[1], delta[2] = dl.DeltaStats()
				var prevD [3]int
				if t.entry != nil {
					prevD = t.entry.lastDelta
				}
				dr, du, di = delta[0]-prevD[0], delta[1]-prevD[1], delta[2]-prevD[2]
				res.Stats.DeltaResumes += dr
				res.Stats.PEReused += du
				res.Stats.PEInvalidated += di
			}
			if recording {
				rec.Record(obs.Event{Kind: obs.ForwardDone, Iter: t.ordinal,
					AbsSize: t.p.Len(), Steps: t.stepDelta, Queries: t.queries,
					Reused: du, WallNS: t.execNS + t.checkNS})
				if dr > 0 {
					rec.Count(obs.RhsDeltaResumes, int64(dr))
				}
				if du > 0 {
					rec.Count(obs.RhsPEReused, int64(du))
				}
				if di > 0 {
					rec.Count(obs.RhsPEInvalidated, int64(di))
				}
			}
			// A partial (tripped) run must not poison later rounds or a
			// future batch round via the memo.
			if trippedRound {
				continue
			}
			if t.entry != nil {
				t.entry.lastSteps = steps
				t.entry.lastDelta = delta
			} else {
				cache.put(t.key, &fwdEntry{run: t.run, p: t.p, lastSteps: steps, lastDelta: delta})
			}
		}
		for i := range plans {
			pl := &plans[i]
			if !pl.live || pl.task.panicked != nil {
				continue
			}
			for _, q := range pl.g.queries {
				res.Results[q].ForwardSteps += pl.task.stepDelta
			}
		}

		// A budget trip during phase B or C invalidates the round's
		// outcomes (partial runs can look proved, partial cube sets look
		// like no progress): resolve every live query Exhausted — except
		// those whose phase genuinely panicked, which stay Failed.
		if trippedRound {
			tripEvent()
			for i := range plans {
				pl := &plans[i]
				if !pl.live {
					continue
				}
				for k, q := range pl.g.queries {
					var fail *panicInfo
					taskFail := true
					if outs != nil {
						if o := &outs[pl.unitLo+k]; o.kind == uFailed {
							fail, taskFail = o.fail, o.taskFail
						}
					} else {
						fail = pl.task.panicked
					}
					if fail != nil {
						if !taskFail {
							recordPanic(strconv.Itoa(q), pl.ordinal, fail)
						}
						failQuery(q, fail)
						continue
					}
					resolved(q, Exhausted)
				}
			}
			return res, nil
		}

		// Sequential merge (signature order, then group query order): replay
		// buffered events, finalize resolved queries, and redistribute moved
		// queries into next-round groups.
		next := map[string]*group{}
		for i := range plans {
			pl := &plans[i]
			if !pl.live {
				continue
			}
			planSigs := map[string]bool{}
			born := 0
			for k, q := range pl.g.queries {
				o := &outs[pl.unitLo+k]
				if o.buf != nil {
					o.buf.ReplayTo(rec)
				}
				switch o.kind {
				case uProved:
					res.Results[q].Abstraction = pl.p
					resolved(q, Proved)
				case uExhausted:
					resolved(q, Exhausted)
				case uFailed:
					if o.err != nil {
						// No-progress: fail the query, keep the batch.
						res.Results[q].Failure = o.err.Error()
						resolved(q, Failed)
						continue
					}
					if !o.taskFail {
						recordPanic(strconv.Itoa(q), pl.ordinal, o.fail)
					}
					failQuery(q, o.fail)
				case uMoved:
					res.Results[q].Clauses = o.clauses
					planSigs[o.sig] = true
					g2 := next[o.sig]
					if g2 == nil {
						g2 = &group{solver: o.next}
						next[o.sig] = g2
						res.Stats.TotalGroups++
						born++
					}
					g2.queries = append(g2.queries, q)
				}
			}
			if recording && len(planSigs) > 1 {
				rec.Record(obs.Event{Kind: obs.GroupSplit, Iter: pl.ordinal,
					Groups: len(next), Queries: born})
			}
		}
		groups = next
	}
	return res, nil
}

// runUnit performs one query's check-and-refine step. It is a pure function
// of deterministic inputs (the group's abstraction and clause set, the
// query's forward run) plus the unit's exclusive result slot, so it is safe
// and deterministic to run concurrently with other units. A panic anywhere
// inside — including one injected at the backward hook — is converted into
// a uFailed outcome for this query alone.
func runUnit(bp BatchProblem, opts Options, res *BatchResult, u unit, recording bool, bud *budget.Budget, inj *faultinject.Injector, round int) (out unitOut) {
	pl, q := u.pl, u.q
	res.Results[q].Iterations++
	if pl.task.panicked != nil || pl.task.run == nil {
		out.kind = uFailed
		out.taskFail = true
		out.fail = pl.task.panicked
		if out.fail == nil {
			out.fail = &panicInfo{msg: "forward run unavailable"}
		}
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			out = unitOut{kind: uFailed, fail: capturePanic(r), buf: out.buf, checkNS: out.checkNS}
		}
	}()
	var buf obs.Recorder = obs.Nop{}
	if recording {
		out.buf = obs.NewBuffer()
		buf = out.buf
	}
	var cs time.Time
	if recording {
		cs = time.Now()
	}
	proved, trace := pl.task.run.Check(q)
	if recording {
		out.checkNS = int64(time.Since(cs))
	}
	if proved {
		out.kind = uProved
		return out
	}
	if res.Results[q].Iterations >= opts.maxIters() {
		out.kind = uExhausted
		return out
	}
	var bstart time.Time
	if recording {
		bstart = time.Now()
	}
	inj.At(bud, faultinject.SiteBackward, fmt.Sprintf("r%d.q%d", round, q))
	cubes := bp.Backward(bud, q, pl.p, trace)
	if recording {
		buf.Record(obs.Event{Kind: obs.BackwardDone, Query: strconv.Itoa(q),
			Iter: res.Results[q].Iterations, AbsSize: pl.p.Len(),
			Cubes: len(cubes), WallNS: int64(time.Since(bstart))})
	}
	// Clone carries the group solver's warm state (cached minimum and cost
	// floor) into the refined clause set, so the next round's Minimum for the
	// successor group resumes from this round's floor instead of starting
	// cold. When several units land on one signature, the sequential merge
	// below keeps the first unit's solver in deterministic unit order, so the
	// donated warm state is independent of the worker count.
	next := pl.g.solver.Clone()
	covered, rejected := learnCubes(next, pl.p, cubes, buf, recording, strconv.Itoa(q), res.Results[q].Iterations)
	if !covered {
		// A tripped backward walk legitimately returns cubes not covering
		// p; the merge discards the round, so don't report no-progress.
		if bud.Tripped() {
			out.kind = uExhausted
			return out
		}
		out.kind = uFailed
		out.err = fmt.Errorf("query %d: %w", q, noProgressError(pl.p, cubes, rejected))
		return out
	}
	if opts.OnLearn != nil && !bud.Tripped() {
		// Only untripped passes are recorded: a truncated backward walk may
		// return a partial cube set, and warm-start observers must never
		// persist a pass the merge is about to discard.
		opts.OnLearn(q, pl.p, trace, acceptedCubes(cubes))
	}
	out.kind = uMoved
	out.next = next
	out.clauses = next.NumClauses()
	out.sig = next.Signature()
	return out
}
