package core

import (
	"fmt"
	"sort"

	"tracer/internal/lang"
	"tracer/internal/minsat"
	"tracer/internal/uset"
)

// BatchProblem poses many queries over the same program and parametric
// analysis. The framework implements the multi-query optimization of §6: it
// maintains groups of unresolved queries keyed by their set of learned
// blocking clauses; queries in a group share forward analysis runs, and a
// group splits when the meta-analysis learns different conditions for
// different queries.
type BatchProblem interface {
	NumParams() int
	NumQueries() int
	// RunForward runs the forward analysis once under abstraction p,
	// returning a handle that answers per-query checks (lazily, so clients
	// whose queries need per-site runs only pay for the sites asked).
	RunForward(p uset.Set) BatchRun
	// Backward analyzes query q's counterexample under p, as in Problem.
	Backward(q int, p uset.Set, t lang.Trace) []ParamCube
}

// BatchRun is one (shared) forward run.
type BatchRun interface {
	// Check reports whether query q is proved; if not it returns an
	// abstract counterexample trace.
	Check(q int) (proved bool, trace lang.Trace)
	// Steps is the machine-independent cost of the run so far.
	Steps() int
}

// BatchStats aggregates runner-level statistics.
type BatchStats struct {
	ForwardRuns int
	PeakGroups  int
	TotalGroups int // groups ever created (Table 4's "# groups" analogue)
	TotalSteps  int
}

// BatchResult is the outcome of SolveBatch.
type BatchResult struct {
	Results []Result
	Stats   BatchStats
}

// group is a set of unresolved queries sharing a clause set.
type group struct {
	solver  *minsat.Solver
	queries []int
}

// SolveBatch resolves every query, sharing forward runs within groups.
// opts.MaxIters bounds the number of forward runs any single query may
// participate in; queries exceeding it are Exhausted (the paper's timeout
// bucket in Fig 12).
func SolveBatch(bp BatchProblem, opts Options) (*BatchResult, error) {
	n := bp.NumQueries()
	res := &BatchResult{Results: make([]Result, n)}
	groups := map[string]*group{}
	root := &group{solver: minsat.New(bp.NumParams())}
	for q := 0; q < n; q++ {
		root.queries = append(root.queries, q)
	}
	groups[root.solver.Signature()] = root
	res.Stats.TotalGroups = 1

	for len(groups) > 0 {
		if len(groups) > res.Stats.PeakGroups {
			res.Stats.PeakGroups = len(groups)
		}
		// Deterministic pick: smallest signature.
		var sigs []string
		for s := range groups {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		g := groups[sigs[0]]
		delete(groups, sigs[0])

		p, ok := g.solver.Minimum()
		if !ok {
			for _, q := range g.queries {
				res.Results[q].Status = Impossible
			}
			continue
		}
		run := bp.RunForward(p)
		res.Stats.ForwardRuns++
		moved := map[string][]int{}
		solvers := map[string]*minsat.Solver{}
		for _, q := range g.queries {
			res.Results[q].Iterations++
			proved, trace := run.Check(q)
			if proved {
				res.Results[q].Status = Proved
				res.Results[q].Abstraction = p
				continue
			}
			if res.Results[q].Iterations >= opts.maxIters() {
				res.Results[q].Status = Exhausted
				continue
			}
			cubes := bp.Backward(q, p, trace)
			next := g.solver.Clone()
			covered := false
			for _, c := range cubes {
				next.Block(c.Pos, c.Neg)
				if c.Contains(p) {
					covered = true
				}
			}
			if !covered {
				return nil, fmt.Errorf("%w (query %d, p=%s)", ErrNoProgress, q, p)
			}
			res.Results[q].Clauses = next.NumClauses()
			sig := next.Signature()
			moved[sig] = append(moved[sig], q)
			if _, exists := solvers[sig]; !exists {
				solvers[sig] = next
			}
		}
		res.Stats.TotalSteps += run.Steps()
		for sig, qs := range moved {
			if existing, ok := groups[sig]; ok {
				existing.queries = append(existing.queries, qs...)
				continue
			}
			groups[sig] = &group{solver: solvers[sig], queries: qs}
			res.Stats.TotalGroups++
		}
	}
	return res, nil
}
