package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"tracer/internal/lang"
	"tracer/internal/minsat"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// BatchProblem poses many queries over the same program and parametric
// analysis. The framework implements the multi-query optimization of §6: it
// maintains groups of unresolved queries keyed by their set of learned
// blocking clauses; queries in a group share forward analysis runs, and a
// group splits when the meta-analysis learns different conditions for
// different queries.
type BatchProblem interface {
	NumParams() int
	NumQueries() int
	// RunForward runs the forward analysis once under abstraction p,
	// returning a handle that answers per-query checks (lazily, so clients
	// whose queries need per-site runs only pay for the sites asked).
	RunForward(p uset.Set) BatchRun
	// Backward analyzes query q's counterexample under p, as in Problem.
	Backward(q int, p uset.Set, t lang.Trace) []ParamCube
}

// BatchRun is one (shared) forward run.
type BatchRun interface {
	// Check reports whether query q is proved; if not it returns an
	// abstract counterexample trace.
	Check(q int) (proved bool, trace lang.Trace)
	// Steps is the machine-independent cost of the run so far.
	Steps() int
}

// BatchStats aggregates runner-level statistics.
type BatchStats struct {
	ForwardRuns int
	PeakGroups  int
	TotalGroups int // groups ever created (Table 4's "# groups" analogue)
	TotalSteps  int
}

// BatchResult is the outcome of SolveBatch.
type BatchResult struct {
	Results []Result
	Stats   BatchStats
}

// group is a set of unresolved queries sharing a clause set.
type group struct {
	solver  *minsat.Solver
	queries []int
}

// SolveBatch resolves every query, sharing forward runs within groups.
// opts.MaxIters bounds the number of forward runs any single query may
// participate in; queries exceeding it are Exhausted (the paper's timeout
// bucket in Fig 12).
func SolveBatch(bp BatchProblem, opts Options) (*BatchResult, error) {
	rec := opts.rec()
	recording := rec.Enabled()
	start := time.Now()
	n := bp.NumQueries()
	res := &BatchResult{Results: make([]Result, n)}
	// resolved finalizes query q and emits its closing event; totals match
	// the query's Result fields exactly.
	resolved := func(q int, s Status) {
		res.Results[q].Status = s
		if recording {
			rec.Record(obs.Event{
				Kind: obs.QueryResolved, Query: strconv.Itoa(q), Status: s.String(),
				Iter: res.Results[q].Iterations, Clauses: res.Results[q].Clauses,
				AbsSize: res.Results[q].Abstraction.Len(),
				WallNS:  int64(time.Since(start)),
			})
		}
	}
	groups := map[string]*group{}
	root := &group{solver: minsat.New(bp.NumParams())}
	if recording {
		root.solver.Instrument(rec)
	}
	for q := 0; q < n; q++ {
		root.queries = append(root.queries, q)
	}
	rootSig := root.solver.Signature()
	groups[rootSig] = root
	res.Stats.TotalGroups = 1
	// sigs mirrors the keys of groups in sorted order, so the deterministic
	// pick (smallest signature) is the head of the list instead of a full
	// re-sort of every signature string each iteration.
	sigs := []string{rootSig}
	insertSig := func(sig string) {
		i := sort.SearchStrings(sigs, sig)
		sigs = append(sigs, "")
		copy(sigs[i+1:], sigs[i:])
		sigs[i] = sig
	}

	for len(sigs) > 0 {
		if len(sigs) > res.Stats.PeakGroups {
			res.Stats.PeakGroups = len(sigs)
		}
		g := groups[sigs[0]]
		delete(groups, sigs[0])
		sigs = sigs[1:]

		p, ok := g.solver.Minimum()
		if !ok {
			for _, q := range g.queries {
				resolved(q, Impossible)
			}
			continue
		}
		if recording {
			rec.Record(obs.Event{Kind: obs.IterStart, Iter: res.Stats.ForwardRuns + 1,
				AbsSize: p.Len(), Clauses: g.solver.NumClauses(),
				Queries: len(g.queries), Groups: len(sigs) + 1})
		}
		var phase time.Time
		if recording {
			phase = time.Now()
		}
		run := bp.RunForward(p)
		res.Stats.ForwardRuns++
		// The shared forward run is lazy: work happens inside Check,
		// interleaved with per-query backward runs. backWall accumulates the
		// backward share so ForwardDone reports forward-only wall time.
		var backWall time.Duration
		moved := map[string][]int{}
		solvers := map[string]*minsat.Solver{}
		for _, q := range g.queries {
			res.Results[q].Iterations++
			proved, trace := run.Check(q)
			if proved {
				res.Results[q].Abstraction = p
				resolved(q, Proved)
				continue
			}
			if res.Results[q].Iterations >= opts.maxIters() {
				resolved(q, Exhausted)
				continue
			}
			var bstart time.Time
			if recording {
				bstart = time.Now()
			}
			cubes := bp.Backward(q, p, trace)
			if recording {
				d := time.Since(bstart)
				backWall += d
				rec.Record(obs.Event{Kind: obs.BackwardDone, Query: strconv.Itoa(q),
					Iter: res.Results[q].Iterations, AbsSize: p.Len(),
					Cubes: len(cubes), WallNS: int64(d)})
			}
			next := g.solver.Clone()
			covered := false
			for _, c := range cubes {
				before := next.NumClauses()
				next.Block(c.Pos, c.Neg)
				if recording && next.NumClauses() > before {
					rec.Record(obs.Event{Kind: obs.ClauseLearned, Query: strconv.Itoa(q),
						Iter: res.Results[q].Iterations, Clauses: next.NumClauses()})
				}
				if c.Contains(p) {
					covered = true
				}
			}
			if !covered {
				return nil, fmt.Errorf("%w (query %d, p=%s)", ErrNoProgress, q, p)
			}
			res.Results[q].Clauses = next.NumClauses()
			sig := next.Signature()
			moved[sig] = append(moved[sig], q)
			if _, exists := solvers[sig]; !exists {
				solvers[sig] = next
			}
		}
		res.Stats.TotalSteps += run.Steps()
		if recording {
			rec.Record(obs.Event{Kind: obs.ForwardDone, Iter: res.Stats.ForwardRuns,
				AbsSize: p.Len(), Steps: run.Steps(), Queries: len(g.queries),
				WallNS: int64(time.Since(phase) - backWall)})
		}
		born := 0
		for sig, qs := range moved {
			if existing, ok := groups[sig]; ok {
				existing.queries = append(existing.queries, qs...)
				continue
			}
			groups[sig] = &group{solver: solvers[sig], queries: qs}
			insertSig(sig)
			res.Stats.TotalGroups++
			born++
		}
		if recording && len(moved) > 1 {
			rec.Record(obs.Event{Kind: obs.GroupSplit, Iter: res.Stats.ForwardRuns,
				Groups: len(sigs), Queries: born})
		}
	}
	return res, nil
}
