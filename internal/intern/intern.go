// Package intern provides canonicalizing tables that map structured values
// to small dense integer IDs. Abstract states in the analyses (must-alias
// sets, escape environments) are interned so that the disjunctive solver can
// treat states as comparable keys and so that visited-state sets are compact.
package intern

import "tracer/internal/uset"

// Strings interns strings to dense IDs starting at 0.
type Strings struct {
	ids  map[string]int
	vals []string
}

// NewStrings returns an empty intern table.
func NewStrings() *Strings {
	return &Strings{ids: make(map[string]int)}
}

// ID returns the canonical ID for s, allocating one if needed.
func (t *Strings) ID(s string) int {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := len(t.vals)
	t.ids[s] = id
	t.vals = append(t.vals, s)
	return id
}

// IDBytes is ID keyed by a byte slice. The hit path indexes the map with
// string(b) directly, which the compiler performs without allocating; only a
// miss copies the bytes into a new interned string, so callers may reuse or
// mutate b afterwards.
func (t *Strings) IDBytes(b []byte) int {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id := len(t.vals)
	t.ids[s] = id
	t.vals = append(t.vals, s)
	return id
}

// Lookup returns the ID for s and whether it was present.
func (t *Strings) Lookup(s string) (int, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// Value returns the string for a previously allocated ID.
func (t *Strings) Value(id int) string { return t.vals[id] }

// Len reports the number of interned strings.
func (t *Strings) Len() int { return len(t.vals) }

// Sets interns uset.Set values to dense IDs. ID 0 is always the empty set.
type Sets struct {
	ids  map[string]int
	vals []uset.Set
}

// NewSets returns a table with the empty set pre-interned as ID 0.
func NewSets() *Sets {
	t := &Sets{ids: make(map[string]int)}
	t.ids[""] = 0
	t.vals = append(t.vals, nil)
	return t
}

// ID returns the canonical ID for s.
func (t *Sets) ID(s uset.Set) int {
	k := s.Key()
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := len(t.vals)
	t.ids[k] = id
	t.vals = append(t.vals, s)
	return id
}

// Value returns the set for a previously allocated ID.
func (t *Sets) Value(id int) uset.Set { return t.vals[id] }

// Len reports the number of interned sets.
func (t *Sets) Len() int { return len(t.vals) }
