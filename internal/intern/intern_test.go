package intern

import (
	"testing"

	"tracer/internal/uset"
)

func TestStrings(t *testing.T) {
	s := NewStrings()
	a := s.ID("alpha")
	b := s.ID("beta")
	if a == b {
		t.Fatal("distinct strings share an ID")
	}
	if got := s.ID("alpha"); got != a {
		t.Fatalf("re-intern changed ID: %d vs %d", got, a)
	}
	if s.Value(a) != "alpha" || s.Value(b) != "beta" {
		t.Fatal("Value roundtrip failed")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if id, ok := s.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d, %v", id, ok)
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Fatal("Lookup of absent string succeeded")
	}
}

func TestStringsDense(t *testing.T) {
	s := NewStrings()
	for i := 0; i < 100; i++ {
		if got := s.ID(string(rune('a' + i))); got != i {
			t.Fatalf("IDs not dense: got %d want %d", got, i)
		}
	}
}

func TestSets(t *testing.T) {
	s := NewSets()
	if s.ID(nil) != 0 {
		t.Fatal("empty set must be ID 0")
	}
	a := s.ID(uset.New(1, 2))
	b := s.ID(uset.New(2, 1))
	if a != b {
		t.Fatal("equal sets got distinct IDs")
	}
	c := s.ID(uset.New(1, 2, 3))
	if c == a {
		t.Fatal("distinct sets share an ID")
	}
	if !s.Value(a).Equal(uset.New(1, 2)) {
		t.Fatal("Value roundtrip failed")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}
