// Package budget implements cooperative cancellation for the TRACER loop.
//
// A Budget bundles the three ways a solve can be bounded — a
// context.Context (caller cancellation, e.g. SIGINT), a wall-clock
// deadline (the paper's 1,000-minute cap), and a step quota (a
// machine-independent work bound) — behind one cheap polling point. Every
// potentially-long phase of the loop (the minsat branch-and-bound search,
// the chaotic forward iteration, the RHS tabulation worklist, the backward
// meta-analysis cube expansion) calls Poll once per unit of work and aborts
// its phase when Poll returns false, leaving a partial result that the
// caller reports as Exhausted.
//
// Poll is amortized: it is one atomic add plus a quota comparison on the
// fast path; the context and clock are consulted only every pollInterval
// steps, so a tripped deadline is observed within one polling interval.
// The first trip cause wins and is sticky; all methods are safe for
// concurrent use and tolerate a nil receiver (a nil *Budget never trips),
// so unbudgeted callers pass nil without guards.
package budget

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Cause classifies why a budget tripped.
type Cause int32

const (
	// None: the budget has not tripped.
	None Cause = iota
	// Canceled: the context was canceled (e.g. SIGINT).
	Canceled
	// Deadline: the wall-clock deadline passed.
	Deadline
	// Steps: the step quota was exceeded.
	Steps
	// Injected: a fault injector (or other external caller) tripped the
	// budget explicitly via Trip.
	Injected
)

func (c Cause) String() string {
	switch c {
	case None:
		return "none"
	case Canceled:
		return "canceled"
	case Deadline:
		return "deadline"
	case Steps:
		return "steps"
	case Injected:
		return "injected"
	}
	return "unknown"
}

// pollInterval is how many Poll calls separate two slow checks of the
// context and the clock. It bounds how far past a deadline a cooperative
// phase can run: at most one interval's worth of steps.
const pollInterval = 256

// ErrBudget is wrapped by every error returned from Err.
var ErrBudget = errors.New("budget exhausted")

// Budget is a shared, concurrency-safe cancellation token. The zero value
// (and nil) never trips; use New to attach limits.
type Budget struct {
	ctx      context.Context
	deadline time.Time // zero = none
	quota    int64     // <= 0 = none

	steps atomic.Int64
	cause atomic.Int32
}

// New builds a budget. ctx may be nil (no cancellation), deadline may be
// zero (no wall cap), and quota may be <= 0 (no step cap); a budget with no
// limits still supports Trip, which fault injection uses.
func New(ctx context.Context, deadline time.Time, quota int64) *Budget {
	return &Budget{ctx: ctx, deadline: deadline, quota: quota}
}

// Poll charges one step and reports whether work may continue. It is the
// amortized check placed on the hot paths: the context and clock are
// consulted every pollInterval calls, the quota on every call.
func (b *Budget) Poll() bool {
	if b == nil {
		return true
	}
	if b.cause.Load() != 0 {
		return false
	}
	n := b.steps.Add(1)
	if b.quota > 0 && n > b.quota {
		b.Trip(Steps)
		return false
	}
	if n%pollInterval != 0 {
		return true
	}
	return b.slow()
}

// Check reports whether work may continue without charging a step,
// consulting the context and clock immediately. Phase boundaries use it.
func (b *Budget) Check() bool {
	if b == nil {
		return true
	}
	if b.cause.Load() != 0 {
		return false
	}
	return b.slow()
}

func (b *Budget) slow() bool {
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			b.Trip(Canceled)
			return false
		default:
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.Trip(Deadline)
		return false
	}
	return true
}

// Trip marks the budget exhausted with the given cause. The first cause
// wins; later trips (and later Poll failures) keep it. Tripping a nil
// budget is a no-op.
func (b *Budget) Trip(c Cause) {
	if b == nil || c == None {
		return
	}
	b.cause.CompareAndSwap(0, int32(c))
}

// Tripped reports whether the budget has tripped. It is a single atomic
// load, cheap enough to consult after every phase.
func (b *Budget) Tripped() bool { return b != nil && b.cause.Load() != 0 }

// Cause returns the sticky first trip cause, or None.
func (b *Budget) Cause() Cause {
	if b == nil {
		return None
	}
	return Cause(b.cause.Load())
}

// Steps returns how many steps have been charged via Poll.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// Err returns nil if the budget has not tripped, and otherwise an error
// wrapping ErrBudget that names the cause.
func (b *Budget) Err() error {
	c := b.Cause()
	if c == None {
		return nil
	}
	return &tripError{c}
}

type tripError struct{ c Cause }

func (e *tripError) Error() string { return "budget exhausted: " + e.c.String() }
func (e *tripError) Unwrap() error { return ErrBudget }
