package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestNilBudget: a nil *Budget never trips and all methods are safe.
func TestNilBudget(t *testing.T) {
	var b *Budget
	for i := 0; i < 3*pollInterval; i++ {
		if !b.Poll() {
			t.Fatal("nil budget tripped on Poll")
		}
	}
	if !b.Check() {
		t.Fatal("nil budget tripped on Check")
	}
	b.Trip(Injected) // must not panic
	if b.Tripped() || b.Cause() != None || b.Steps() != 0 || b.Err() != nil {
		t.Fatal("nil budget reports a trip")
	}
}

// TestUnlimitedBudget: a budget with no limits never trips on its own but
// still accepts explicit trips.
func TestUnlimitedBudget(t *testing.T) {
	b := New(nil, time.Time{}, 0)
	for i := 0; i < 3*pollInterval; i++ {
		if !b.Poll() {
			t.Fatalf("unlimited budget tripped at step %d (cause %v)", i, b.Cause())
		}
	}
	if b.Steps() != 3*pollInterval {
		t.Fatalf("Steps = %d, want %d", b.Steps(), 3*pollInterval)
	}
	b.Trip(Injected)
	if !b.Tripped() || b.Cause() != Injected {
		t.Fatalf("cause = %v, want injected", b.Cause())
	}
	if b.Poll() || b.Check() {
		t.Fatal("tripped budget still allows work")
	}
}

// TestStepQuota: the quota is enforced on the very next Poll, independent of
// the slow-path interval, and the overshoot is at most one step.
func TestStepQuota(t *testing.T) {
	const quota = 10 // far below pollInterval: quota checks are per-call
	b := New(nil, time.Time{}, quota)
	polls := 0
	for b.Poll() {
		polls++
		if polls > quota {
			t.Fatalf("quota %d exceeded: %d successful polls", quota, polls)
		}
	}
	if polls != quota {
		t.Fatalf("polls = %d, want %d", polls, quota)
	}
	if b.Cause() != Steps {
		t.Fatalf("cause = %v, want steps", b.Cause())
	}
}

// TestDeadline: an already-expired deadline is observed within one polling
// interval on the amortized path and immediately on Check.
func TestDeadline(t *testing.T) {
	past := time.Now().Add(-time.Hour)

	b := New(nil, past, 0)
	polls := 0
	for b.Poll() {
		polls++
		if polls > pollInterval {
			t.Fatalf("expired deadline not observed within %d polls", pollInterval)
		}
	}
	if b.Cause() != Deadline {
		t.Fatalf("cause = %v, want deadline", b.Cause())
	}

	b2 := New(nil, past, 0)
	if b2.Check() {
		t.Fatal("Check did not observe an expired deadline immediately")
	}
	if b2.Cause() != Deadline {
		t.Fatalf("cause = %v, want deadline", b2.Cause())
	}
}

// TestContextCancel: cancellation is observed on the slow path and takes
// precedence over a later-checked deadline.
func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, time.Now().Add(-time.Hour), 0)
	if b.Check() {
		t.Fatal("Check did not observe a canceled context")
	}
	if b.Cause() != Canceled {
		t.Fatalf("cause = %v, want canceled (context is consulted before the clock)", b.Cause())
	}
}

// TestFirstCauseWins: the trip cause is sticky.
func TestFirstCauseWins(t *testing.T) {
	b := New(nil, time.Time{}, 1)
	b.Trip(Injected)
	b.Poll() // would trip Steps if the cause were not sticky
	b.Poll()
	if b.Cause() != Injected {
		t.Fatalf("cause = %v, want injected (first cause wins)", b.Cause())
	}
	b.Trip(Deadline)
	if b.Cause() != Injected {
		t.Fatalf("cause = %v after second Trip, want injected", b.Cause())
	}
}

// TestErr: Err is nil before a trip and wraps ErrBudget after.
func TestErr(t *testing.T) {
	b := New(nil, time.Time{}, 0)
	if b.Err() != nil {
		t.Fatalf("Err = %v before trip, want nil", b.Err())
	}
	b.Trip(Steps)
	err := b.Err()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Err = %v, want wrapping ErrBudget", err)
	}
	if err.Error() != "budget exhausted: steps" {
		t.Fatalf("Err.Error() = %q", err.Error())
	}
}

// TestCauseString pins the cause names used in budget_trip events.
func TestCauseString(t *testing.T) {
	want := map[Cause]string{
		None: "none", Canceled: "canceled", Deadline: "deadline",
		Steps: "steps", Injected: "injected", Cause(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Cause(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}
