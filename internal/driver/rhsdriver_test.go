package driver

import (
	"strings"
	"testing"

	"tracer/internal/core"
	"tracer/internal/typestate"
)

// recursiveSrc builds a linked structure through recursion — the inlining
// pipeline rejects it, the tabulation pipeline resolves its queries.
const recursiveSrc = `
global registry

class Node {
  field next
  method grow(this, n) {
    var child, out
    out = this
    if * {
      child = new Node @ hChild
      this.next = child
      out = child.grow(n)
    }
    return out
  }
  method leak(this) {
    if * {
      registry = this
    }
  }
}

class File {
  native method open(this)
  native method close(this)
}

class Main {
  method main(this) {
    var root, tail, f, priv
    root = new Node @ hRoot
    tail = root.grow(root)
    root.leak()
    f = new File @ hFile
    f.open()
    f.close()
    query qFile state(f: closed)
    query qRoot local(root)
    priv = new Node @ hPriv
    query qPriv local(priv)
  }
}
`

func TestRHSPipelineRecursive(t *testing.T) {
	if _, err := Load(recursiveSrc); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("inlining pipeline should reject recursion, got %v", err)
	}
	p, err := LoadRHS(recursiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := p.ExplicitJobs(typestate.FileProperty(), 5)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]core.Status{
		"qFile@hFile": core.Proved,     // open/close in order, untouched by recursion
		"qRoot":       core.Impossible, // leaked to the registry on one path
		"qPriv":       core.Proved,     // never escapes
	}
	for name, status := range want {
		job, ok := jobs[name]
		if !ok {
			t.Fatalf("missing job %s (have %v)", name, jobNames(jobs))
		}
		res, err := core.Solve(job, core.Options{MaxIters: 200})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Status != status {
			t.Errorf("%s: status %v, want %v (iters=%d)", name, res.Status, status, res.Iterations)
		}
	}
}

func jobNames(m map[string]core.Problem) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRHSMatchesInlinerOutcomes: on the acyclic interproc program, the two
// backends resolve the explicit queries identically, with identical
// cheapest abstractions.
func TestRHSMatchesInlinerOutcomes(t *testing.T) {
	inl := load(t)
	rhsP, err := LoadRHS(interprocSrc)
	if err != nil {
		t.Fatal(err)
	}
	rhsJobs, err := rhsP.ExplicitJobs(typestate.FileProperty(), 5)
	if err != nil {
		t.Fatal(err)
	}

	// Escape queries.
	for name, inlJob := range inl.ExplicitEscapeJobs(5) {
		want, err := core.Solve(inlJob, core.Options{MaxIters: 300})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.Solve(rhsJobs[name], core.Options{MaxIters: 300})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Errorf("%s: rhs %v vs inliner %v", name, got.Status, want.Status)
		}
		if want.Status == core.Proved && got.Abstraction.Len() != want.Abstraction.Len() {
			t.Errorf("%s: rhs |p|=%d vs inliner %d", name, got.Abstraction.Len(), want.Abstraction.Len())
		}
	}
	// Type-state queries.
	inlTS, err := inl.ExplicitTypestateJobs(typestate.FileProperty(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, inlJob := range inlTS {
		want, err := core.Solve(inlJob, core.Options{MaxIters: 300})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.Solve(rhsJobs[name], core.Options{MaxIters: 300})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Errorf("%s: rhs %v vs inliner %v", name, got.Status, want.Status)
		}
		if want.Status == core.Proved && got.Abstraction.Len() != want.Abstraction.Len() {
			t.Errorf("%s: rhs |p|=%d vs inliner %d", name, got.Abstraction.Len(), want.Abstraction.Len())
		}
	}
}
