package driver

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/typestate"
)

// interprocSrc is a small interprocedural program with virtual dispatch:
// Main.main allocates a Conn and a Pool, registers the Conn in the Pool
// (which escapes it via a global on one path), and uses a File through a
// helper that closes it.
const interprocSrc = `
global registry

class File {
  native method open(this)
  native method close(this)
}

class Conn {
  field buf
  method fill(this, b) {
    this.buf = b
    return this
  }
}

class Pool {
  method put(this, c) {
    if * {
      registry = c
    }
  }
}

class Main {
  method main(this) {
    var f, c, p, b, c2
    f = new File @ hFile
    f.open()
    f.close()
    c = new Conn @ hConn
    b = new Conn @ hBuf
    c2 = c.fill(b)
    p = new Pool @ hPool
    p.put(c)
    query qBuf local(b)
    query qPool local(p)
    query qFile state(f: closed)
  }
}
`

func load(t *testing.T) *Program {
	t.Helper()
	p, err := Load(interprocSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadAndStats(t *testing.T) {
	p := load(t)
	s := p.ComputeStats(interprocSrc)
	if s.TotalClasses != 4 || s.AppClasses != 4 {
		t.Errorf("classes = %d/%d, want 4/4", s.AppClasses, s.TotalClasses)
	}
	if s.TotalMethods != 5 {
		t.Errorf("methods = %d, want 5", s.TotalMethods)
	}
	if s.TypestateParams == 0 || s.EscapeParams != 4 {
		t.Errorf("params = %d vars / %d sites, want >0 / 4", s.TypestateParams, s.EscapeParams)
	}
	if s.TotalAtoms == 0 || s.TotalAtoms != s.AppAtoms {
		t.Errorf("atoms = %d/%d", s.AppAtoms, s.TotalAtoms)
	}
}

func TestPointsToResolvesDispatch(t *testing.T) {
	p := load(t)
	// The Conn allocated at hConn must flow into Pool.put's parameter c.
	put := p.IR.ClassByName("Pool").LookupMethod("put")
	pts := p.PT.PointsTo(put, "c")
	id, ok := p.PT.Sites.Lookup("hConn")
	if !ok || !pts.Has(id) {
		t.Fatalf("Pool.put::c points to %v, want it to include hConn", pts)
	}
	// fill's return value flows back to c2.
	main := p.IR.Main()
	c2 := p.PT.PointsTo(main, "c2")
	if hc, _ := p.PT.Sites.Lookup("hConn"); !c2.Has(hc) {
		t.Fatalf("Main.main::c2 points to %v, want hConn", c2)
	}
}

func TestQueryGeneration(t *testing.T) {
	p := load(t)
	ts := p.TypestateQueries()
	if len(ts) == 0 {
		t.Fatal("no type-state queries generated")
	}
	// Each query pairs an app call site with an app site the receiver may
	// reach; f.open() with hFile must be among them.
	found := false
	for _, q := range ts {
		if q.Site == "hFile" && q.Stmt.Method == "open" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing (f.open(), hFile) query; got %d queries", len(ts))
	}
	esc := p.EscapeQueries()
	if len(esc) == 0 {
		t.Fatal("no escape queries generated")
	}
}

// TestExplicitEscapeQueries: b is stored into a Conn that escapes through
// the registry global on one path, so local(b) is only provable if the
// analysis maps hConn and hBuf to L; p never escapes.
func TestExplicitEscapeQueries(t *testing.T) {
	p := load(t)
	jobs := p.ExplicitEscapeJobs(5)
	if len(jobs) != 2 {
		t.Fatalf("explicit escape jobs = %d, want 2", len(jobs))
	}
	resPool, err := core.Solve(jobs["qPool"], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resPool.Status != core.Proved {
		t.Fatalf("qPool: status = %v, want proved", resPool.Status)
	}
	resBuf, err := core.Solve(jobs["qBuf"], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// b itself is only read locally; the escape of c does not touch the
	// local binding of b (b is set before the store and the store keeps
	// b's L-ness only if hBuf is L). The query must be resolvable either
	// way — what matters is TRACER terminates with a definite answer.
	if resBuf.Status == core.Exhausted {
		t.Fatalf("qBuf: exhausted after %d iterations", resBuf.Iterations)
	}
}

// TestExplicitTypestateQuery: the File protocol query (f in state closed at
// the end) must be provable, since open/close are called in order on f.
func TestExplicitTypestateQuery(t *testing.T) {
	p := load(t)
	jobs, err := p.ExplicitTypestateJobs(typestate.FileProperty(), 5)
	if err != nil {
		t.Fatal(err)
	}
	job := jobs["qFile@hFile"]
	if job == nil {
		t.Fatalf("missing qFile@hFile job; have %v", keys(jobs))
	}
	res, err := core.Solve(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Proved {
		t.Fatalf("qFile: status = %v (iters=%d), want proved", res.Status, res.Iterations)
	}
}

func keys[V any](m map[string]*V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestGeneratedQueriesResolve runs TRACER over every generated query of
// both clients and requires a definite outcome.
func TestGeneratedQueriesResolve(t *testing.T) {
	p := load(t)
	for _, q := range p.TypestateQueries() {
		res, err := core.Solve(p.TypestateJob(q, 5), core.Options{MaxIters: 100})
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if res.Status == core.Exhausted {
			t.Errorf("%s: exhausted", q.ID)
		}
	}
	for _, q := range p.EscapeQueries() {
		res, err := core.Solve(p.EscapeJob(q, 5), core.Options{MaxIters: 100})
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if res.Status == core.Exhausted {
			t.Errorf("%s: exhausted", q.ID)
		}
	}
}
