package driver

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/ir"
	"tracer/internal/lang"
	"tracer/internal/nullness"
	"tracer/internal/obs"
	"tracer/internal/pointsto"
	"tracer/internal/rhs"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// RHSProgram is a program prepared with the summary-based tabulation
// backend instead of the inlining lowering. It supports recursive call
// graphs; everything else — query generation, the backward meta-analysis,
// and TRACER — is shared with the inlining pipeline, since both produce
// flat counterexample traces over the same atoms.
type RHSProgram struct {
	IR *ir.Program
	PT *pointsto.Result
	SP *rhs.Program

	Vars                  []string
	Locals, Fields, Sites []string

	varPts        map[string]uset.Set
	stressMethods []string
}

// LoadRHS parses src and prepares the tabulation pipeline.
func LoadRHS(src string) (*RHSProgram, error) {
	prog, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	pt, err := pointsto.Analyze(prog)
	if err != nil {
		return nil, err
	}
	sp, err := rhs.FromIR(prog, pt)
	if err != nil {
		return nil, err
	}
	p := &RHSProgram{IR: prog, PT: pt, SP: sp, varPts: map[string]uset.Set{}}
	flat := sp.G.AtomsCFG()
	p.Vars = typestate.CollectVars(flat)
	p.Locals, p.Fields, p.Sites = escape.Universe(flat)
	for _, m := range pt.ReachableMethods() {
		if m.Native {
			continue
		}
		vars := append([]string{"this"}, m.Params...)
		vars = append(vars, m.Locals...)
		for _, v := range vars {
			p.varPts[ir.Qualify(m, v)] = pt.PointsTo(m, v)
		}
	}
	methodSet := map[string]bool{}
	for _, cs := range sp.Calls {
		if !isLib(cs.Method) {
			methodSet[cs.Stmt.Method] = true
		}
	}
	for name := range methodSet {
		p.stressMethods = append(p.stressMethods, name)
	}
	sort.Strings(p.stressMethods)
	return p, nil
}

func isLib(m *ir.Method) bool {
	return len(m.Class.Name) >= len(LibPrefix) && m.Class.Name[:len(LibPrefix)] == LibPrefix
}

// mayPoint builds the per-site oracle.
func (p *RHSProgram) mayPoint(h string) func(qv string) bool {
	id, ok := p.PT.Sites.Lookup(h)
	if !ok {
		return func(string) bool { return false }
	}
	return func(qv string) bool { return p.varPts[qv].Has(id) }
}

// rhsForward is the shared forward runner: solve the supergraph and scan
// the query points for a violating fact, picking the first one in
// tabulation (discovery) order — a pure function of the supergraph and the
// abstraction, independent of the analysis instance's intern history, so
// the choice is stable between cold and delta-incremental solves. A budget
// trip mid-tabulation yields an unproved partial outcome (a partial
// tabulation's "no failure found" is not a proof).
func rhsForward[D comparable](
	g *rhs.Graph, dI D, tr dataflow.Transfer[D],
	points []rhs.Point,
	holds func(d D) bool,
	rec obs.Recorder,
	bud *budget.Budget,
) core.Outcome {
	return rhsScan(rhs.SolveBudget(g, dI, tr, rec, bud), points, holds, bud)
}

// rhsScan is the query-point scan shared by the cold and delta forward
// paths: first violating fact in tabulation order, as for rhsForward.
func rhsScan[D comparable](res *rhs.Result[D], points []rhs.Point, holds func(d D) bool, bud *budget.Budget) core.Outcome {
	if bud.Tripped() {
		return core.Outcome{Steps: res.Steps}
	}
	for _, pt := range points {
		for _, d := range res.States(pt.Method, pt.Node) {
			if !holds(d) {
				return core.Outcome{Trace: res.Witness(pt.Method, pt.Node, d), Steps: res.Steps}
			}
		}
	}
	return core.Outcome{Proved: true, Steps: 0}
}

// RHSEscapeJob poses one thread-escape query against the tabulation
// backend. The backward meta-analysis is delegated to the standard job:
// both backends produce flat traces of the same atoms.
type RHSEscapeJob struct {
	P      *RHSProgram
	Points []rhs.Point
	V      string
	K      int
	// Rec, when set, receives the tabulation solver's per-run counters and
	// timings (see rhs.SolveObs).
	Rec obs.Recorder
	// NoDelta disables the delta-incremental tabulation chain; every forward
	// solve then runs cold.
	NoDelta bool

	chain atomic.Pointer[rhs.Chain[escape.State]]
	inner *escape.Job
}

var _ core.Problem = (*RHSEscapeJob)(nil)

// NewRHSEscapeJob builds a query job for variable v at the given points.
func (p *RHSProgram) NewRHSEscapeJob(v string, points []rhs.Point, k int) *RHSEscapeJob {
	a := escape.New(p.Locals, p.Fields, p.Sites)
	return &RHSEscapeJob{
		P: p, Points: points, V: v, K: k,
		inner: &escape.Job{A: a, Q: escape.Query{V: v}, K: k},
	}
}

func (j *RHSEscapeJob) NumParams() int         { return j.inner.A.Sites.Len() }
func (j *RHSEscapeJob) ParamName(i int) string { return j.inner.A.Sites.Value(i) }

// Forward solves the supergraph under abstraction p, resuming the job's
// retained tabulation across CEGAR iterations unless NoDelta is set. The
// chain is checked out for the duration of the solve (a panic abandons it;
// the next iteration starts a fresh one).
func (j *RHSEscapeJob) Forward(b *budget.Budget, p uset.Set) core.Outcome {
	a := j.inner.A
	holds := func(d escape.State) bool { return a.Holds(j.inner.Q, d) }
	if j.NoDelta {
		return rhsForward(j.P.SP.G, a.Initial(), a.Transfer(p), j.Points, holds, j.Rec, b)
	}
	ch := j.chain.Swap(nil)
	if ch == nil {
		ch = rhs.NewChain[escape.State](j.P.SP.G)
	}
	res := ch.Solve(p, a.Initial(), a.TransferDep(p), j.Rec, b)
	out := rhsScan(res, j.Points, holds, b)
	j.chain.Store(ch)
	return out
}

// Backward delegates to the standard escape job.
func (j *RHSEscapeJob) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	return j.inner.Backward(b, p, t)
}

// RHSNullnessJob poses one null-dereference query against the tabulation
// backend. As for escape, the backward meta-analysis is delegated to the
// standard job: both backends produce flat traces of the same atoms.
type RHSNullnessJob struct {
	P      *RHSProgram
	Points []rhs.Point
	V      string
	K      int
	// Rec, when set, receives the tabulation solver's per-run counters and
	// timings (see rhs.SolveObs).
	Rec obs.Recorder
	// NoDelta disables the delta-incremental tabulation chain; every forward
	// solve then runs cold.
	NoDelta bool

	chain atomic.Pointer[rhs.Chain[nullness.State]]
	inner *nullness.Job
}

var _ core.Problem = (*RHSNullnessJob)(nil)

// NewRHSNullnessJob builds a query job for variable v at the given points.
func (p *RHSProgram) NewRHSNullnessJob(v string, points []rhs.Point, k int) *RHSNullnessJob {
	a := nullness.New(p.Locals, p.Fields)
	return &RHSNullnessJob{
		P: p, Points: points, V: v, K: k,
		inner: &nullness.Job{A: a, Q: nullness.Query{V: v}, K: k},
	}
}

func (j *RHSNullnessJob) NumParams() int         { return j.inner.A.NumParams() }
func (j *RHSNullnessJob) ParamName(i int) string { return j.inner.A.CellName(i) }

// Forward solves the supergraph under abstraction p, resuming the job's
// retained tabulation across CEGAR iterations unless NoDelta is set.
func (j *RHSNullnessJob) Forward(b *budget.Budget, p uset.Set) core.Outcome {
	a := j.inner.A
	holds := func(d nullness.State) bool { return a.Holds(j.inner.Q, d) }
	if j.NoDelta {
		return rhsForward(j.P.SP.G, a.Initial(), a.Transfer(p), j.Points, holds, j.Rec, b)
	}
	ch := j.chain.Swap(nil)
	if ch == nil {
		ch = rhs.NewChain[nullness.State](j.P.SP.G)
	}
	res := ch.Solve(p, a.Initial(), a.TransferDep(p), j.Rec, b)
	out := rhsScan(res, j.Points, holds, b)
	j.chain.Store(ch)
	return out
}

// Backward delegates to the standard nullness job.
func (j *RHSNullnessJob) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	return j.inner.Backward(b, p, t)
}

// RHSTypestateJob poses one type-state query against the tabulation
// backend.
type RHSTypestateJob struct {
	P      *RHSProgram
	Points []rhs.Point
	K      int
	// Rec, when set, receives the tabulation solver's per-run counters and
	// timings (see rhs.SolveObs).
	Rec obs.Recorder
	// NoDelta disables the delta-incremental tabulation chain; every forward
	// solve then runs cold.
	NoDelta bool

	chain atomic.Pointer[rhs.Chain[typestate.State]]
	inner *typestate.Job
}

var _ core.Problem = (*RHSTypestateJob)(nil)

// NewRHSTypestateJob builds a job for the given property, tracked site, and
// wanted automaton states.
func (p *RHSProgram) NewRHSTypestateJob(prop *typestate.Property, site string, want uset.Bits, points []rhs.Point, k int) *RHSTypestateJob {
	a := typestate.New(prop, site, p.Vars)
	a.MayPoint = p.mayPoint(site)
	return &RHSTypestateJob{
		P: p, Points: points, K: k,
		inner: &typestate.Job{A: a, Q: typestate.Query{Want: want}, K: k},
	}
}

func (j *RHSTypestateJob) NumParams() int         { return j.inner.A.Vars.Len() }
func (j *RHSTypestateJob) ParamName(i int) string { return j.inner.A.Vars.Value(i) }

// Forward solves the supergraph under abstraction p, resuming the job's
// retained tabulation across CEGAR iterations unless NoDelta is set.
func (j *RHSTypestateJob) Forward(b *budget.Budget, p uset.Set) core.Outcome {
	a := j.inner.A
	holds := func(d typestate.State) bool { return j.inner.Q.Holds(d) }
	if j.NoDelta {
		return rhsForward(j.P.SP.G, a.Initial(), a.Transfer(p), j.Points, holds, j.Rec, b)
	}
	ch := j.chain.Swap(nil)
	if ch == nil {
		ch = rhs.NewChain[typestate.State](j.P.SP.G)
	}
	res := ch.Solve(p, a.Initial(), a.TransferDep(p), j.Rec, b)
	out := rhsScan(res, j.Points, holds, b)
	j.chain.Store(ch)
	return out
}

// Backward delegates to the standard type-state job.
func (j *RHSTypestateJob) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	return j.inner.Backward(b, p, t)
}

// RHSTSQuery is a generated type-state query for the tabulation backend.
type RHSTSQuery struct {
	ID     string
	Site   string
	Stmt   *ir.CallStmt
	Points []rhs.Point
}

// TypestateQueries generates the §6 stress queries: one per (application
// call site, application site the receiver may reach). With the
// supergraph, each source call statement has exactly one point.
func (p *RHSProgram) TypestateQueries() []RHSTSQuery {
	appSite := map[string]bool{}
	for _, m := range p.IR.Methods() {
		if isLib(m) {
			continue
		}
		collectSites(m.Body, appSite)
	}
	var out []RHSTSQuery
	for _, cs := range p.SP.Calls {
		if isLib(cs.Method) {
			continue
		}
		for _, hid := range p.varPts[cs.Recv].Elems() {
			h := p.PT.Sites.Value(hid)
			if !appSite[h] {
				continue
			}
			out = append(out, RHSTSQuery{
				ID:     fmt.Sprintf("ts:%s:%s:%s", cs.Method.QualName(), cs.Stmt.Position(), h),
				Site:   h,
				Stmt:   cs.Stmt,
				Points: []rhs.Point{cs.At},
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func collectSites(body []ir.Stmt, out map[string]bool) {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.NewStmt:
			out[s.Site] = true
		case *ir.IfStmt:
			collectSites(s.Then, out)
			collectSites(s.Else, out)
		case *ir.LoopStmt:
			collectSites(s.Body, out)
		}
	}
}

// TypestateJob builds the tabulation job for a generated stress query.
func (p *RHSProgram) TypestateJob(q RHSTSQuery, k int) *RHSTypestateJob {
	prop := typestate.StressProperty(p.stressMethods)
	return p.NewRHSTypestateJob(prop, q.Site, uset.Bits(0).Add(prop.Init), q.Points, k)
}

// RHSEscQuery is a generated thread-escape query for the tabulation
// backend.
type RHSEscQuery struct {
	ID     string
	Var    string
	Stmt   ir.Stmt
	Points []rhs.Point
}

// EscapeQueries generates one query per application field access.
func (p *RHSProgram) EscapeQueries() []RHSEscQuery {
	var out []RHSEscQuery
	for _, fa := range p.SP.Accesses {
		if isLib(fa.Method) {
			continue
		}
		out = append(out, RHSEscQuery{
			ID:     fmt.Sprintf("esc:%s:%s:%s", fa.Method.QualName(), fa.Stmt.Position(), fa.Base),
			Var:    fa.Base,
			Stmt:   fa.Stmt,
			Points: []rhs.Point{fa.At},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EscapeJob builds the tabulation job for a generated escape query.
func (p *RHSProgram) EscapeJob(q RHSEscQuery, k int) *RHSEscapeJob {
	return p.NewRHSEscapeJob(q.Var, q.Points, k)
}

// RHSNullQuery is a generated null-dereference query for the tabulation
// backend.
type RHSNullQuery struct {
	ID     string
	Var    string
	Stmt   ir.Stmt
	Points []rhs.Point
}

// NullnessQueries generates one query per application field access: the
// dereferenced base must be non-nil at the access point.
func (p *RHSProgram) NullnessQueries() []RHSNullQuery {
	var out []RHSNullQuery
	for _, fa := range p.SP.Accesses {
		if isLib(fa.Method) {
			continue
		}
		out = append(out, RHSNullQuery{
			ID:     fmt.Sprintf("null:%s:%s:%s", fa.Method.QualName(), fa.Stmt.Position(), fa.Base),
			Var:    fa.Base,
			Stmt:   fa.Stmt,
			Points: []rhs.Point{fa.At},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NullnessJob builds the tabulation job for a generated nullness query.
func (p *RHSProgram) NullnessJob(q RHSNullQuery, k int) *RHSNullnessJob {
	return p.NewRHSNullnessJob(q.Var, q.Points, k)
}

// ExplicitJobs builds jobs for the program's explicit query statements:
// "query name local(v)" and, against prop, "query name state(v: ...)"
// (keyed "name@site" per may-site like the inlining driver).
func (p *RHSProgram) ExplicitJobs(prop *typestate.Property, k int) (map[string]core.Problem, error) {
	out := map[string]core.Problem{}
	escPoints := map[string][]rhs.Point{}
	escVar := map[string]string{}
	for _, q := range p.SP.Queries {
		switch q.Kind {
		case ir.QueryLocal:
			escPoints[q.Name] = append(escPoints[q.Name], q.At)
			escVar[q.Name] = q.Var
		case ir.QueryTypestate:
			var want uset.Bits
			for _, s := range q.States {
				found := false
				for i, name := range prop.States {
					if name == s {
						want = want.Add(i)
						found = true
					}
				}
				if !found {
					return nil, fmt.Errorf("driver: query %s: unknown automaton state %q", q.Name, s)
				}
			}
			for _, hid := range p.varPts[q.Var].Elems() {
				h := p.PT.Sites.Value(hid)
				key := q.Name + "@" + h
				job, ok := out[key].(*RHSTypestateJob)
				if !ok {
					job = p.NewRHSTypestateJob(prop, h, want, nil, k)
					out[key] = job
				}
				job.Points = append(job.Points, q.At)
			}
		}
	}
	for name, points := range escPoints {
		out[name] = p.NewRHSEscapeJob(escVar[name], points, k)
	}
	return out, nil
}
