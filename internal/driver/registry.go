package driver

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"tracer/internal/core"
)

// GenQuery is the client-independent view of one generated query: the layers
// above the driver (server, bench, warm) address queries by ID (positional,
// human-readable) or Key (position-independent, warm-store identity) and
// never need the client-specific payload.
type GenQuery struct {
	ID  string
	Key string
}

// ClientSpec describes one parametric analysis client to every layer above
// the driver. The registry replaces the hard-coded two-way client switches
// that had calcified across the stack; adding a client means implementing
// the client contract (Theory, TransferDep with signed dependency literals,
// WP atoms, FindFailure) and appending one entry here.
type ClientSpec struct {
	// Name is the wire name of the client ("typestate", "escape",
	// "nullness"); the warm store's Client values coincide with it.
	Name string
	// BenchName is the display name the bench tables print ("type-state").
	BenchName string

	// Queries lists the client's generated queries for a program, in the
	// same deterministic order as the typed query generators.
	Queries func(p *Program) []GenQuery
	// Job builds the core.Problem for query index i (into Queries' order).
	Job func(p *Program, i, k int) core.Problem
	// Batch builds the batch problem over the query indices idx.
	Batch func(p *Program, idx []int, k int) core.BatchProblem
	// ParamNames lists the client's parameter universe in parameter-index
	// order; the warm store names stored clauses with it.
	ParamNames func(p *Program) []string
	// WarmConfExtra returns the client-specific suffix of the warm store's
	// config signature ("" when the client has no whole-program knob
	// beyond k).
	WarmConfExtra func(p *Program) string
}

// clientSpecs is the registry, in stable presentation order.
var clientSpecs = []*ClientSpec{
	{
		Name:      "typestate",
		BenchName: "type-state",
		Queries: func(p *Program) []GenQuery {
			qs := p.TypestateQueries()
			out := make([]GenQuery, len(qs))
			for i, q := range qs {
				out[i] = GenQuery{ID: q.ID, Key: q.Key}
			}
			return out
		},
		Job: func(p *Program, i, k int) core.Problem {
			return p.TypestateJob(p.TypestateQueries()[i], k)
		},
		Batch: func(p *Program, idx []int, k int) core.BatchProblem {
			all := p.TypestateQueries()
			qs := make([]TSQuery, 0, len(idx))
			for _, i := range idx {
				qs = append(qs, all[i])
			}
			return NewTypestateBatch(p, qs, k)
		},
		ParamNames: func(p *Program) []string { return p.Vars },
		// The stress property's method list is whole-program state for the
		// type-state client: an edit that introduces a new called method name
		// changes the meaning of every stored entry.
		WarmConfExtra: func(p *Program) string {
			return fmt.Sprintf("|stress=%08x", fnv32String(strings.Join(p.StressMethods(), ",")))
		},
	},
	{
		Name:      "escape",
		BenchName: "thread-escape",
		Queries: func(p *Program) []GenQuery {
			qs := p.EscapeQueries()
			out := make([]GenQuery, len(qs))
			for i, q := range qs {
				out[i] = GenQuery{ID: q.ID, Key: q.Key}
			}
			return out
		},
		Job: func(p *Program, i, k int) core.Problem {
			return p.EscapeJob(p.EscapeQueries()[i], k)
		},
		Batch: func(p *Program, idx []int, k int) core.BatchProblem {
			all := p.EscapeQueries()
			qs := make([]EscQuery, 0, len(idx))
			for _, i := range idx {
				qs = append(qs, all[i])
			}
			return NewEscapeBatch(p, qs, k)
		},
		ParamNames:    func(p *Program) []string { return p.Sites },
		WarmConfExtra: func(p *Program) string { return "" },
	},
	{
		Name:      "nullness",
		BenchName: "null-deref",
		Queries: func(p *Program) []GenQuery {
			qs := p.NullnessQueries()
			out := make([]GenQuery, len(qs))
			for i, q := range qs {
				out[i] = GenQuery{ID: q.ID, Key: q.Key}
			}
			return out
		},
		Job: func(p *Program, i, k int) core.Problem {
			return p.NullnessJob(p.NullnessQueries()[i], k)
		},
		Batch: func(p *Program, idx []int, k int) core.BatchProblem {
			all := p.NullnessQueries()
			qs := make([]NullQuery, 0, len(idx))
			for _, i := range idx {
				qs = append(qs, all[i])
			}
			return NewNullnessBatch(p, qs, k)
		},
		// Cell order matches nullness.Analysis parameter indices: locals
		// first (sorted), then field cells with the "." prefix.
		ParamNames: func(p *Program) []string {
			out := make([]string, 0, len(p.Locals)+len(p.Fields))
			out = append(out, p.Locals...)
			for _, f := range p.Fields {
				out = append(out, "."+f)
			}
			return out
		},
		WarmConfExtra: func(p *Program) string { return "" },
	},
}

// Clients returns the registered client specs in stable order. The slice is
// shared; callers must not mutate it.
func Clients() []*ClientSpec { return clientSpecs }

// ClientByName resolves a wire name, or nil when unknown.
func ClientByName(name string) *ClientSpec {
	for _, c := range clientSpecs {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClientNames lists the registered wire names, sorted — for error messages.
func ClientNames() []string {
	out := make([]string, 0, len(clientSpecs))
	for _, c := range clientSpecs {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// fnv32String is 32-bit FNV-1a, matching the warm store's hash so config
// signatures stay byte-identical with snapshots written before the registry.
func fnv32String(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}
