// Package driver ties the front end together: it parses a mini-IR program,
// runs the 0-CFA points-to analysis, lowers the program to a single CFG by
// inlining, and generates queries the way the paper's evaluation does (§6):
// a type-state query at each method call site (pc, h), and a thread-escape
// query at each instance-field access (pc, v), restricted to application
// code (classes whose names start with "Lib" play the role of the JDK).
package driver

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"tracer/internal/escape"
	"tracer/internal/ir"
	"tracer/internal/nullness"
	"tracer/internal/pointsto"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// LibPrefix marks library classes, excluded from query generation but fully
// analyzed, mirroring how the paper poses no queries inside the JDK.
const LibPrefix = "Lib"

// Program is a loaded, lowered, and points-to-analyzed program.
type Program struct {
	IR  *ir.Program
	PT  *pointsto.Result
	Low *ir.Lowered

	// Vars is the type-state parameter universe: the qualified pointer
	// variables appearing in the lowered program, sorted.
	Vars []string
	// Locals, Fields, Sites are the thread-escape universes.
	Locals, Fields, Sites []string

	// varPts maps qualified variable names to their may-point-to site sets.
	varPts map[string]uset.Set

	escapeAnalysis *escape.Analysis
	stressMethods  []string

	// stmtKeysMemo and siteOwnerMemo back StmtKey/SiteOwner; both are
	// built on first use (not thread-safe, like escapeAnalysis).
	stmtKeysMemo  map[ir.Stmt]string
	siteOwnerMemo map[string]string
}

// Load parses src and prepares all analyses.
func Load(src string) (*Program, error) {
	prog, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return Prepare(prog)
}

// Prepare runs points-to and lowering on an already-parsed program.
func Prepare(prog *ir.Program) (*Program, error) {
	pt, err := pointsto.Analyze(prog)
	if err != nil {
		return nil, err
	}
	low, err := ir.Lower(prog, pt, ir.LowerOptions{})
	if err != nil {
		return nil, err
	}
	p := &Program{IR: prog, PT: pt, Low: low, varPts: map[string]uset.Set{}}
	p.Vars = typestate.CollectVars(low.G)
	p.Locals, p.Fields, p.Sites = escape.Universe(low.G)
	for _, m := range pt.ReachableMethods() {
		if m.Native {
			continue
		}
		vars := append([]string{"this"}, m.Params...)
		vars = append(vars, m.Locals...)
		for _, v := range vars {
			p.varPts[ir.Qualify(m, v)] = pt.PointsTo(m, v)
		}
	}
	methodSet := map[string]bool{}
	for _, cs := range low.Calls {
		if p.IsApp(cs.Method) {
			methodSet[cs.Stmt.Method] = true
		}
	}
	for name := range methodSet {
		p.stressMethods = append(p.stressMethods, name)
	}
	sort.Strings(p.stressMethods)
	return p, nil
}

// StressMethods lists the application method names driving the generated
// stress type-state property, sorted. The warm-start layer includes them in
// its per-client configuration hash: the property automaton is built from
// this whole-program list, so an edit that introduces a new called method
// name changes the meaning of every stored type-state entry.
func (p *Program) StressMethods() []string { return p.stressMethods }

// StmtKey returns a stable, position-independent identity for a source
// statement ("Class.method#<ordinal>#<rendering>"); queries keyed by it keep
// their identity across reformatting and across edits to other methods. The
// table is built on first use.
func (p *Program) StmtKey(s ir.Stmt) string {
	if p.stmtKeysMemo == nil {
		p.stmtKeysMemo = ir.StmtKeys(p.IR)
	}
	return p.stmtKeysMemo[s]
}

// SiteOwner returns the QualName of the method whose body allocates at site
// h, or "" when h is unknown. The warm-start layer treats the owner as a
// supporting method of any counterexample trace mentioning h.
func (p *Program) SiteOwner(h string) string {
	if p.siteOwnerMemo == nil {
		p.siteOwnerMemo = map[string]string{}
		for _, m := range p.IR.Methods() {
			qual := m.QualName()
			ir.WalkStmts(m.Body, func(s ir.Stmt) {
				if n, ok := s.(*ir.NewStmt); ok {
					if _, dup := p.siteOwnerMemo[n.Site]; !dup {
						p.siteOwnerMemo[n.Site] = qual
					}
				}
			})
		}
	}
	return p.siteOwnerMemo[h]
}

// EnvHash digests the points-to environment restricted to the given methods
// (QualNames): every qualified variable of a listed method together with its
// sorted may-point-to site labels. A stored blocking clause justified by a
// counterexample trace through those methods remains valid only while this
// hash is unchanged — the trace's call branches were selected by exactly
// these points-to sets. Labels (not interned IDs) are hashed so the result
// is comparable across separately-loaded programs.
func (p *Program) EnvHash(methods []string) uint64 {
	want := make(map[string]bool, len(methods))
	for _, m := range methods {
		want[m] = true
	}
	var qvs []string
	for qv := range p.varPts {
		if i := strings.Index(qv, "::"); i >= 0 && want[qv[:i]] {
			qvs = append(qvs, qv)
		}
	}
	sort.Strings(qvs)
	h := fnv.New64a()
	var labels []string
	for _, qv := range qvs {
		h.Write([]byte(qv))
		h.Write([]byte{0})
		labels = labels[:0]
		for _, id := range p.varPts[qv].Elems() {
			labels = append(labels, p.PT.Sites.Value(id))
		}
		sort.Strings(labels)
		for _, l := range labels {
			h.Write([]byte(l))
			h.Write([]byte{1})
		}
		h.Write([]byte{2})
	}
	return h.Sum64()
}

// IsApp reports whether a method belongs to application code.
func (p *Program) IsApp(m *ir.Method) bool {
	return !strings.HasPrefix(m.Class.Name, LibPrefix)
}

// isAppSite reports whether allocation site h occurs in application code.
func (p *Program) isAppSite(h string) bool {
	found := false
	for _, m := range p.IR.Methods() {
		if !p.IsApp(m) {
			continue
		}
		walkStmts(m.Body, func(s ir.Stmt) {
			if n, ok := s.(*ir.NewStmt); ok && n.Site == h {
				found = true
			}
		})
	}
	return found
}

func walkStmts(body []ir.Stmt, f func(ir.Stmt)) {
	for _, s := range body {
		f(s)
		switch s := s.(type) {
		case *ir.IfStmt:
			walkStmts(s.Then, f)
			walkStmts(s.Else, f)
		case *ir.LoopStmt:
			walkStmts(s.Body, f)
		}
	}
}

// MayPoint returns the oracle "may qualified variable qv point to site h".
func (p *Program) MayPoint(h string) func(qv string) bool {
	id, ok := p.PT.Sites.Lookup(h)
	if !ok {
		return func(string) bool { return false }
	}
	return func(qv string) bool { return p.varPts[qv].Has(id) }
}

// TSQuery is a generated type-state query: at source call site Stmt, is
// every object allocated at Site that the receiver may denote still in the
// automaton's initial state?
type TSQuery struct {
	ID string
	// Key is the position-independent identity used by the warm-start
	// store: unlike ID (which embeds line:col), it survives reformatting
	// and edits to other methods.
	Key   string
	Site  string
	Stmt  *ir.CallStmt
	Nodes []int
}

// TypestateQueries generates one query per (application call site, tracked
// application site h) pair with the receiver possibly pointing to h,
// mirroring §6. Results are deterministically ordered.
func (p *Program) TypestateQueries() []TSQuery {
	type key struct {
		stmt *ir.CallStmt
		site string
	}
	nodes := map[key][]int{}
	meta := map[key]ir.CallSite{}
	appSite := map[string]bool{}
	for i := 0; i < p.PT.Sites.Len(); i++ {
		h := p.PT.Sites.Value(i)
		appSite[h] = p.isAppSite(h)
	}
	for _, cs := range p.Low.Calls {
		if !p.IsApp(cs.Method) {
			continue
		}
		pts := p.varPts[cs.Recv]
		for _, hid := range pts.Elems() {
			h := p.PT.Sites.Value(hid)
			if !appSite[h] {
				continue
			}
			k := key{cs.Stmt, h}
			nodes[k] = append(nodes[k], cs.Node)
			meta[k] = cs
		}
	}
	var out []TSQuery
	for k, ns := range nodes {
		sort.Ints(ns)
		out = append(out, TSQuery{
			ID:    fmt.Sprintf("ts:%s:%s:%s", meta[k].Method.QualName(), k.stmt.Position(), k.site),
			Key:   "ts:" + p.StmtKey(k.stmt) + ":" + k.site,
			Site:  k.site,
			Stmt:  k.stmt,
			Nodes: ns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TypestateJob builds the core.Problem for a generated stress query.
func (p *Program) TypestateJob(q TSQuery, k int) *typestate.Job {
	prop := typestate.StressProperty(p.stressMethods)
	a := typestate.New(prop, q.Site, p.Vars)
	a.MayPoint = p.MayPoint(q.Site)
	return &typestate.Job{
		A: a,
		G: p.Low.G,
		Q: typestate.Query{Nodes: q.Nodes, Want: uset.Bits(0).Add(prop.Init)},
		K: k,
	}
}

// EscQuery is a generated thread-escape query: at source field access Stmt,
// is the base pointer thread-local?
type EscQuery struct {
	ID string
	// Key is the position-independent identity used by the warm-start
	// store (see TSQuery.Key).
	Key   string
	Var   string // qualified base variable
	Stmt  ir.Stmt
	Nodes []int
}

// EscapeQueries generates one query per application field access, as §6
// does for the datarace client.
func (p *Program) EscapeQueries() []EscQuery {
	type key struct {
		stmt ir.Stmt
		base string
	}
	nodes := map[key][]int{}
	meta := map[key]ir.FieldAccess{}
	for _, fa := range p.Low.Accesses {
		if !p.IsApp(fa.Method) {
			continue
		}
		k := key{fa.Stmt, fa.Base}
		nodes[k] = append(nodes[k], fa.Node)
		meta[k] = fa
	}
	var out []EscQuery
	for k, ns := range nodes {
		sort.Ints(ns)
		out = append(out, EscQuery{
			ID:    fmt.Sprintf("esc:%s:%s:%s", meta[k].Method.QualName(), k.stmt.Position(), k.base),
			Key:   "esc:" + p.StmtKey(k.stmt) + ":" + k.base,
			Var:   k.base,
			Stmt:  k.stmt,
			Nodes: ns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NullQuery is a generated null-dereference query: at source field access
// Stmt, is the base pointer definitely non-nil?
type NullQuery struct {
	ID string
	// Key is the position-independent identity used by the warm-start
	// store (see TSQuery.Key).
	Key   string
	Var   string // qualified base variable
	Stmt  ir.Stmt
	Nodes []int
}

// NullnessQueries generates one query per application field access — the
// same dereference points the escape client guards, asked the null-safety
// question instead.
func (p *Program) NullnessQueries() []NullQuery {
	type key struct {
		stmt ir.Stmt
		base string
	}
	nodes := map[key][]int{}
	meta := map[key]ir.FieldAccess{}
	for _, fa := range p.Low.Accesses {
		if !p.IsApp(fa.Method) {
			continue
		}
		k := key{fa.Stmt, fa.Base}
		nodes[k] = append(nodes[k], fa.Node)
		meta[k] = fa
	}
	var out []NullQuery
	for k, ns := range nodes {
		sort.Ints(ns)
		out = append(out, NullQuery{
			ID:    fmt.Sprintf("null:%s:%s:%s", meta[k].Method.QualName(), k.stmt.Position(), k.base),
			Key:   "null:" + p.StmtKey(k.stmt) + ":" + k.base,
			Var:   k.base,
			Stmt:  k.stmt,
			Nodes: ns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FreshNullnessAnalysis builds an independent nullness analysis over the
// program's cell universes (nullness shares the escape client's locals and
// fields, which cover every name the CFG's atoms mention).
func (p *Program) FreshNullnessAnalysis() *nullness.Analysis {
	return nullness.New(p.Locals, p.Fields)
}

// NullnessJob builds the core.Problem for a generated nullness query. Each
// job gets its own analysis instance so jobs can be solved concurrently.
func (p *Program) NullnessJob(q NullQuery, k int) *nullness.Job {
	return &nullness.Job{
		A: p.FreshNullnessAnalysis(),
		G: p.Low.G,
		Q: nullness.Query{Nodes: q.Nodes, V: q.Var},
		K: k,
	}
}

// EscapeAnalysis returns a (query-independent) thread-escape analysis for
// the program, built once. Analyses intern abstract states and are
// therefore not safe for concurrent use; callers resolving queries in
// parallel must use FreshEscapeAnalysis per goroutine.
func (p *Program) EscapeAnalysis() *escape.Analysis {
	if p.escapeAnalysis == nil {
		p.escapeAnalysis = p.FreshEscapeAnalysis()
	}
	return p.escapeAnalysis
}

// FreshEscapeAnalysis builds an independent analysis instance over the
// program's universes.
func (p *Program) FreshEscapeAnalysis() *escape.Analysis {
	return escape.New(p.Locals, p.Fields, p.Sites)
}

// EscapeJob builds the core.Problem for a generated escape query. Each job
// gets its own analysis instance so jobs can be solved concurrently.
func (p *Program) EscapeJob(q EscQuery, k int) *escape.Job {
	return &escape.Job{
		A: p.FreshEscapeAnalysis(),
		G: p.Low.G,
		Q: escape.Query{Nodes: q.Nodes, V: q.Var},
		K: k,
	}
}

// ExplicitEscapeJobs builds jobs for the program's explicit
// "query name local(v)" statements.
func (p *Program) ExplicitEscapeJobs(k int) map[string]*escape.Job {
	out := map[string]*escape.Job{}
	for _, q := range p.Low.Queries {
		if q.Kind != ir.QueryLocal {
			continue
		}
		job := out[q.Name]
		if job == nil {
			job = p.EscapeJob(EscQuery{Var: q.Var}, k)
			out[q.Name] = job
		}
		job.Q.Nodes = append(job.Q.Nodes, q.Node)
	}
	return out
}

// ExplicitTypestateJobs builds jobs for "query name state(v: ...)"
// statements against a user-supplied property; each query yields one job
// per site its variable may point to, keyed "name@site".
func (p *Program) ExplicitTypestateJobs(prop *typestate.Property, k int) (map[string]*typestate.Job, error) {
	out := map[string]*typestate.Job{}
	for _, q := range p.Low.Queries {
		if q.Kind != ir.QueryTypestate {
			continue
		}
		var want uset.Bits
		for _, s := range q.States {
			found := false
			for i, name := range prop.States {
				if name == s {
					want = want.Add(i)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("driver: query %s: unknown automaton state %q", q.Name, s)
			}
		}
		for _, hid := range p.varPts[q.Var].Elems() {
			h := p.PT.Sites.Value(hid)
			keyName := q.Name + "@" + h
			job := out[keyName]
			if job == nil {
				a := typestate.New(prop, h, p.Vars)
				a.MayPoint = p.MayPoint(h)
				job = &typestate.Job{A: a, G: p.Low.G, Q: typestate.Query{Want: want}, K: k}
				out[keyName] = job
			}
			job.Q.Nodes = append(job.Q.Nodes, q.Node)
		}
	}
	return out, nil
}

// Stats summarizes program size for Table 1.
type Stats struct {
	AppClasses, TotalClasses int
	AppMethods, TotalMethods int
	AppAtoms, TotalAtoms     int // lowered atomic commands ("bytecode")
	SourceLines              int
	TypestateParams          int // N for the type-state family 2^N
	EscapeParams             int // N for the thread-escape family 2^N
	NullnessParams           int // N for the null-dereference family 2^N
}

// ComputeStats gathers Table 1 statistics. src may be empty (lines = 0).
func (p *Program) ComputeStats(src string) Stats {
	s := Stats{
		TypestateParams: len(p.Vars),
		EscapeParams:    len(p.Sites),
		NullnessParams:  len(p.Locals) + len(p.Fields),
		SourceLines:     strings.Count(src, "\n") + 1,
	}
	if src == "" {
		s.SourceLines = 0
	}
	for _, c := range p.IR.Classes {
		s.TotalClasses++
		app := !strings.HasPrefix(c.Name, LibPrefix)
		if app {
			s.AppClasses++
		}
		s.TotalMethods += len(c.Methods)
		if app {
			s.AppMethods += len(c.Methods)
		}
	}
	s.TotalAtoms = p.Low.Atoms
	for m, n := range p.Low.AtomsByMethod {
		if p.IsApp(m) {
			s.AppAtoms += n
		}
	}
	return s
}
