package driver

import (
	"fmt"
	"reflect"
	"testing"

	"tracer/internal/core"
	"tracer/internal/obs"
)

// The delta differential suite pins the incremental forward engine against
// the cold executor on the real pipelines: every query of the driver
// fixtures is resolved twice — NoDelta (the reference, solving cold every
// CEGAR iteration) and delta (resuming retained runs across abstraction
// flips) — and the resolutions must be indistinguishable: identical
// Results and identical phase-event streams.

// phaseStream projects a captured stream onto its semantic phase events.
// Measurement records (counters, gauges, timings) are dropped: they report
// how much internal work ran, which the delta path intentionally changes
// (and the delta counters exist only on one side). WallNS and the Reused
// annotation are zeroed everywhere; zeroSteps additionally clears Steps,
// which batch donor consumption legitimately shifts between runs (a
// consumed donor turns a future cache hit into a resumed solve).
func phaseStream(evs []obs.Event, zeroSteps bool) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		switch e.Kind {
		case obs.CounterKind, obs.GaugeKind, obs.TimingKind:
			continue
		}
		e.WallNS = 0
		e.Reused = 0
		if zeroSteps {
			e.Steps = 0
		}
		out = append(out, e)
	}
	return out
}

// diffStreams fails the test at the first diverging event.
func diffStreams(t *testing.T, label string, got, want []obs.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d phase events, reference %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d differs:\ndelta %+v\ncold  %+v", label, i, got[i], want[i])
		}
	}
}

// solveCaptured solves one problem with a capturing recorder.
func solveCaptured(t *testing.T, job core.Problem) (core.Result, []obs.Event) {
	t.Helper()
	cap := obs.NewCapture()
	res, err := core.Solve(job, core.Options{Recorder: cap})
	if err != nil {
		t.Fatal(err)
	}
	return res, cap.Events()
}

// checkDeltaPair runs a cold and a delta instance of the same query and
// requires identical resolutions. The single-query engines replay
// step-identically, so Steps stays in the comparison.
func checkDeltaPair(t *testing.T, label string, cold, delta core.Problem) {
	t.Helper()
	wantRes, wantEvs := solveCaptured(t, cold)
	gotRes, gotEvs := solveCaptured(t, delta)
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("%s: delta result %+v, cold %+v", label, gotRes, wantRes)
	}
	diffStreams(t, label, phaseStream(gotEvs, false), phaseStream(wantEvs, false))
}

// TestDeltaMatchesColdInlining covers every registered client on the inlining
// pipeline: the CEGAR loop's abstraction flips drive dataflow.Chain, and
// the resolution must match a cold solve of every query exactly.
func TestDeltaMatchesColdInlining(t *testing.T) {
	p := load(t)
	for _, q := range p.TypestateQueries() {
		cold := p.TypestateJob(q, 1)
		cold.NoDelta = true
		checkDeltaPair(t, "typestate "+q.ID, cold, p.TypestateJob(q, 1))
	}
	for _, q := range p.EscapeQueries() {
		cold := p.EscapeJob(q, 1)
		cold.NoDelta = true
		checkDeltaPair(t, "escape "+q.ID, cold, p.EscapeJob(q, 1))
	}
	for _, q := range p.NullnessQueries() {
		cold := p.NullnessJob(q, 1)
		cold.NoDelta = true
		checkDeltaPair(t, "nullness "+q.ID, cold, p.NullnessJob(q, 1))
	}
}

// TestDeltaMatchesColdRHS covers every registered client on the tabulation pipeline
// (rhs.Chain) over the recursive fixture the inliner rejects.
func TestDeltaMatchesColdRHS(t *testing.T) {
	p, err := LoadRHS(recursiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range p.TypestateQueries() {
		cold := p.TypestateJob(q, 1)
		cold.NoDelta = true
		checkDeltaPair(t, "rhs typestate "+q.ID, cold, p.TypestateJob(q, 1))
	}
	for _, q := range p.EscapeQueries() {
		cold := p.EscapeJob(q, 1)
		cold.NoDelta = true
		checkDeltaPair(t, "rhs escape "+q.ID, cold, p.EscapeJob(q, 1))
	}
	for _, q := range p.NullnessQueries() {
		cold := p.NullnessJob(q, 1)
		cold.NoDelta = true
		checkDeltaPair(t, "rhs nullness "+q.ID, cold, p.NullnessJob(q, 1))
	}
}

// resolution is the cache-independent projection of a batch query's result:
// donor resumption changes step accounting but may not change how any
// query resolves.
type resolution struct {
	Status  core.Status
	Abs     string
	Iters   int
	Clauses int
}

func resolutions(rs []core.Result) []resolution {
	out := make([]resolution, len(rs))
	for i, r := range rs {
		out[i] = resolution{r.Status, r.Abstraction.String(), r.Iterations, r.Clauses}
	}
	return out
}

// TestDeltaMatchesColdBatch sweeps the batch scheduler's worker grid with
// the delta engine on and off. The reference is the sequential cold run;
// every variant must produce the same per-query resolutions and the same
// phase-event stream (modulo step accounting, which donor consumption
// shifts between forward runs without changing any verdict).
func TestDeltaMatchesColdBatch(t *testing.T) {
	p := load(t)
	mk := map[string]func() core.BatchProblem{
		"escape": func() core.BatchProblem {
			return NewEscapeBatch(p, p.EscapeQueries(), 1)
		},
		"typestate": func() core.BatchProblem {
			return NewTypestateBatch(p, p.TypestateQueries(), 1)
		},
		"nullness": func() core.BatchProblem {
			return NewNullnessBatch(p, p.NullnessQueries(), 1)
		},
	}
	for client, build := range mk {
		run := func(workers int, noDelta bool) ([]resolution, []obs.Event) {
			cap := obs.NewCapture()
			res, err := core.SolveBatch(build(), core.Options{
				Workers: workers, NoDelta: noDelta, Recorder: cap,
			})
			if err != nil {
				t.Fatal(err)
			}
			return resolutions(res.Results), phaseStream(cap.Events(), true)
		}
		wantRes, wantEvs := run(1, true)
		for _, workers := range []int{1, 2, 4} {
			for _, noDelta := range []bool{false, true} {
				label := fmt.Sprintf("%s workers=%d nodelta=%t", client, workers, noDelta)
				gotRes, gotEvs := run(workers, noDelta)
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("%s: resolutions %+v, reference %+v", label, gotRes, wantRes)
				}
				diffStreams(t, label, gotEvs, wantEvs)
			}
		}
	}
}
