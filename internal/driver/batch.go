package driver

import (
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// EscapeBatch runs all generated thread-escape queries of a program through
// core.SolveBatch. The thread-escape analysis is query-independent, so a
// group's queries genuinely share one forward run.
type EscapeBatch struct {
	P       *Program
	Queries []EscQuery
	K       int

	jobs []*escape.Job
}

var _ core.BatchProblem = (*EscapeBatch)(nil)

// NewEscapeBatch builds the batch problem over the given queries. All jobs
// share the batch's single analysis instance: interned state IDs are only
// meaningful within one instance, and the batch runs sequentially.
func NewEscapeBatch(p *Program, queries []EscQuery, k int) *EscapeBatch {
	b := &EscapeBatch{P: p, Queries: queries, K: k}
	a := p.EscapeAnalysis()
	for _, q := range queries {
		b.jobs = append(b.jobs, &escape.Job{
			A: a,
			G: p.Low.G,
			Q: escape.Query{Nodes: q.Nodes, V: q.Var},
			K: k,
		})
	}
	return b
}

func (b *EscapeBatch) NumParams() int  { return b.P.EscapeAnalysis().Sites.Len() }
func (b *EscapeBatch) NumQueries() int { return len(b.Queries) }

// RunForward solves the whole program once under p.
func (b *EscapeBatch) RunForward(p uset.Set) core.BatchRun {
	a := b.P.EscapeAnalysis()
	res := dataflow.Solve(b.P.Low.G, a.Initial(), a.Transfer(p))
	return &escapeRun{b: b, res: res}
}

type escapeRun struct {
	b   *EscapeBatch
	res *dataflow.Result[escape.State]
}

func (r *escapeRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	node, bad, found := escape.FindFailure(job.A, r.res, job.Q)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *escapeRun) Steps() int { return r.res.Steps }

// Backward delegates to the per-query job.
func (b *EscapeBatch) Backward(q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(p, t)
}

// TypestateBatch runs all generated type-state queries through
// core.SolveBatch. Queries tracking the same allocation site share an
// analysis instance, and a shared forward run solves lazily per site (the
// paper's implementation tracks a separate abstract object per site within
// one tabulation run; per-site solves over the same graph are equivalent).
type TypestateBatch struct {
	P       *Program
	Queries []TSQuery
	K       int

	analyses map[string]*typestate.Analysis
	jobs     []*typestate.Job
}

var _ core.BatchProblem = (*TypestateBatch)(nil)

// NewTypestateBatch builds the batch problem over the given queries.
func NewTypestateBatch(p *Program, queries []TSQuery, k int) *TypestateBatch {
	b := &TypestateBatch{P: p, Queries: queries, K: k, analyses: map[string]*typestate.Analysis{}}
	prop := typestate.StressProperty(p.stressMethods)
	for _, q := range queries {
		a := b.analyses[q.Site]
		if a == nil {
			a = typestate.New(prop, q.Site, p.Vars)
			a.MayPoint = p.MayPoint(q.Site)
			b.analyses[q.Site] = a
		}
		b.jobs = append(b.jobs, &typestate.Job{
			A: a,
			G: p.Low.G,
			Q: typestate.Query{Nodes: q.Nodes, Want: uset.Bits(0).Add(prop.Init)},
			K: k,
		})
	}
	return b
}

func (b *TypestateBatch) NumParams() int  { return len(b.P.Vars) }
func (b *TypestateBatch) NumQueries() int { return len(b.Queries) }

// RunForward returns a run that solves per tracked site on demand.
func (b *TypestateBatch) RunForward(p uset.Set) core.BatchRun {
	return &typestateRun{b: b, p: p, perSite: map[string]*dataflow.Result[typestate.State]{}}
}

type typestateRun struct {
	b       *TypestateBatch
	p       uset.Set
	perSite map[string]*dataflow.Result[typestate.State]
	steps   int
}

func (r *typestateRun) solve(site string) *dataflow.Result[typestate.State] {
	if res, ok := r.perSite[site]; ok {
		return res
	}
	a := r.b.analyses[site]
	res := dataflow.Solve(r.b.P.Low.G, a.Initial(), a.Transfer(r.p))
	r.perSite[site] = res
	r.steps += res.Steps
	return res
}

func (r *typestateRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	res := r.solve(r.b.Queries[q].Site)
	node, bad, found := typestate.FindFailure(job.A, res, job.Q)
	if !found {
		return true, nil
	}
	return false, res.Witness(node, bad)
}

func (r *typestateRun) Steps() int { return r.steps }

// Backward delegates to the per-query job.
func (b *TypestateBatch) Backward(q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(p, t)
}
