package driver

import (
	"sync"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/obs"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// EscapeBatch runs all generated thread-escape queries of a program through
// core.SolveBatch. The thread-escape analysis is query-independent, so a
// group's queries genuinely share one forward run.
//
// The batch is safe for the concurrent access pattern of the parallel
// scheduler: every forward run and every query's backward job owns a fresh
// analysis instance (interned state IDs are only meaningful within one
// instance, and interning mutates the instance), while the parameter
// universe is the program's site list, identical across instances. The
// formula kernel's literal universe and the weakest-precondition cache are
// the exception: the escape WP depends only on the atom and primitive, so
// all backward jobs share one concurrency-safe formula.Universe and
// meta.WPCache, letting workers reuse interned IDs, memoized theory bits,
// and WP DNFs instead of re-deriving them per query.
type EscapeBatch struct {
	P       *Program
	Queries []EscQuery
	K       int

	jobs []*escape.Job
	uni  *formula.Universe
	wpc  *meta.WPCache
}

var _ core.BatchProblem = (*EscapeBatch)(nil)
var _ core.ObsFlusher = (*EscapeBatch)(nil)

// NewEscapeBatch builds the batch problem over the given queries.
func NewEscapeBatch(p *Program, queries []EscQuery, k int) *EscapeBatch {
	b := &EscapeBatch{P: p, Queries: queries, K: k,
		uni: formula.NewUniverse(escape.Theory{}), wpc: meta.NewWPCache()}
	for _, q := range queries {
		b.jobs = append(b.jobs, &escape.Job{
			A:   p.FreshEscapeAnalysis(),
			G:   p.Low.G,
			Q:   escape.Query{Nodes: q.Nodes, V: q.Var},
			K:   k,
			Uni: b.uni,
			WPC: b.wpc,
		})
	}
	return b
}

// FlushObs implements core.ObsFlusher for the shared literal universe.
func (b *EscapeBatch) FlushObs(rec obs.Recorder) { meta.FlushUniverseObs(rec, b.uni) }

func (b *EscapeBatch) NumParams() int  { return len(b.P.Sites) }
func (b *EscapeBatch) NumQueries() int { return len(b.Queries) }

// RunForward solves the whole program once under p. The run carries the
// analysis instance that produced it: checks must resolve interned state
// IDs against that instance. On a budget trip the run holds a partial
// fixpoint; the scheduler discards that round's outcomes.
func (b *EscapeBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	a := b.P.FreshEscapeAnalysis()
	res := dataflow.SolveBudget(b.P.Low.G, a.Initial(), a.Transfer(p), bud)
	return &escapeRun{b: b, a: a, res: res}
}

type escapeRun struct {
	b   *EscapeBatch
	a   *escape.Analysis
	res *dataflow.Result[escape.State]
}

// Check is safe for concurrent calls: the solved result and its analysis
// are read-only once RunForward returns.
func (r *escapeRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	node, bad, found := escape.FindFailure(r.a, r.res, job.Q)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *escapeRun) Steps() int { return r.res.Steps }

// Backward delegates to the per-query job; distinct queries may run
// concurrently because each job owns its analysis instance, while the
// shared literal universe and WP cache are concurrency-safe by design
// (read-mostly lock plus copy-on-write snapshots; see formula.Universe).
func (b *EscapeBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(bud, p, t)
}

// TypestateBatch runs all generated type-state queries through
// core.SolveBatch. Queries tracking the same allocation site share a
// forward solve, and a shared forward run solves lazily per site (the
// paper's implementation tracks a separate abstract object per site within
// one tabulation run; per-site solves over the same graph are equivalent).
//
// Like EscapeBatch, every run and every backward job owns fresh analysis
// instances so the parallel scheduler's concurrent Check/Backward calls
// never share an intern table. The formula kernel's literal universe is
// shared batch-wide (the theory is stateless, so memoized theory bits are
// valid across sites), while the weakest-precondition cache is shared per
// tracked site — the type-state WP depends on the analysis's site and
// may-point set, so only same-site jobs compute identical preconditions.
type TypestateBatch struct {
	P       *Program
	Queries []TSQuery
	K       int

	prop *typestate.Property
	jobs []*typestate.Job
	uni  *formula.Universe
}

var _ core.BatchProblem = (*TypestateBatch)(nil)
var _ core.ObsFlusher = (*TypestateBatch)(nil)

// NewTypestateBatch builds the batch problem over the given queries.
func NewTypestateBatch(p *Program, queries []TSQuery, k int) *TypestateBatch {
	b := &TypestateBatch{P: p, Queries: queries, K: k,
		uni: formula.NewUniverse(typestate.Theory{})}
	b.prop = typestate.StressProperty(p.stressMethods)
	siteWPC := map[string]*meta.WPCache{}
	for _, q := range queries {
		a := typestate.New(b.prop, q.Site, p.Vars)
		a.MayPoint = p.MayPoint(q.Site)
		wpc := siteWPC[q.Site]
		if wpc == nil {
			wpc = meta.NewWPCache()
			siteWPC[q.Site] = wpc
		}
		b.jobs = append(b.jobs, &typestate.Job{
			A:   a,
			G:   p.Low.G,
			Q:   typestate.Query{Nodes: q.Nodes, Want: uset.Bits(0).Add(b.prop.Init)},
			K:   k,
			Uni: b.uni,
			WPC: wpc,
		})
	}
	return b
}

// FlushObs implements core.ObsFlusher for the shared literal universe.
func (b *TypestateBatch) FlushObs(rec obs.Recorder) { meta.FlushUniverseObs(rec, b.uni) }

func (b *TypestateBatch) NumParams() int  { return len(b.P.Vars) }
func (b *TypestateBatch) NumQueries() int { return len(b.Queries) }

// RunForward returns a run that solves per tracked site on demand. The run
// captures the batch budget so lazy per-site solves (which happen inside
// Check, possibly rounds later) stay interruptible.
func (b *TypestateBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	return &typestateRun{b: b, bud: bud, p: p, perSite: map[string]*siteCell{}}
}

// siteCell holds one site's lazily-computed solve within a run. The cell's
// once gate lets concurrent checks of same-site queries wait for a single
// solve; a and res are immutable after the gate opens.
type siteCell struct {
	once sync.Once
	a    *typestate.Analysis
	res  *dataflow.Result[typestate.State]
}

type typestateRun struct {
	b   *TypestateBatch
	bud *budget.Budget
	p   uset.Set

	mu      sync.Mutex // guards perSite and steps
	perSite map[string]*siteCell
	steps   int
}

func (r *typestateRun) solve(site string) *siteCell {
	r.mu.Lock()
	c := r.perSite[site]
	if c == nil {
		c = &siteCell{}
		r.perSite[site] = c
	}
	r.mu.Unlock()
	c.once.Do(func() {
		a := typestate.New(r.b.prop, site, r.b.P.Vars)
		a.MayPoint = r.b.P.MayPoint(site)
		c.a = a
		c.res = dataflow.SolveBudget(r.b.P.Low.G, a.Initial(), a.Transfer(r.p), r.bud)
		r.mu.Lock()
		r.steps += c.res.Steps
		r.mu.Unlock()
	})
	return c
}

// Check is safe for concurrent calls with distinct queries; same-site
// queries share one solve through the cell's once gate.
func (r *typestateRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	c := r.solve(r.b.Queries[q].Site)
	node, bad, found := typestate.FindFailure(c.a, c.res, job.Q)
	if !found {
		return true, nil
	}
	return false, c.res.Witness(node, bad)
}

func (r *typestateRun) Steps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// Backward delegates to the per-query job; distinct queries may run
// concurrently because each job owns its analysis instance, while the
// shared literal universe and per-site WP caches are concurrency-safe.
func (b *TypestateBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(bud, p, t)
}
