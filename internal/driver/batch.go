package driver

import (
	"sync"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/nullness"
	"tracer/internal/obs"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// EscapeBatch runs all generated thread-escape queries of a program through
// core.SolveBatch. The thread-escape analysis is query-independent, so a
// group's queries genuinely share one forward run.
//
// The batch is safe for the concurrent access pattern of the parallel
// scheduler: every forward run and every query's backward job owns a fresh
// analysis instance (interned state IDs are only meaningful within one
// instance, and interning mutates the instance), while the parameter
// universe is the program's site list, identical across instances. The
// formula kernel's literal universe and the weakest-precondition cache are
// the exception: the escape WP depends only on the atom and primitive, so
// all backward jobs share one concurrency-safe formula.Universe and
// meta.WPCache, letting workers reuse interned IDs, memoized theory bits,
// and WP DNFs instead of re-deriving them per query.
type EscapeBatch struct {
	P       *Program
	Queries []EscQuery
	K       int

	jobs []*escape.Job
	uni  *formula.Universe
	wpc  *meta.WPCache
}

var _ core.BatchProblem = (*EscapeBatch)(nil)
var _ core.ObsFlusher = (*EscapeBatch)(nil)

// NewEscapeBatch builds the batch problem over the given queries.
func NewEscapeBatch(p *Program, queries []EscQuery, k int) *EscapeBatch {
	b := &EscapeBatch{P: p, Queries: queries, K: k,
		uni: formula.NewUniverse(escape.Theory{}), wpc: meta.NewWPCache()}
	for _, q := range queries {
		b.jobs = append(b.jobs, &escape.Job{
			A:   p.FreshEscapeAnalysis(),
			G:   p.Low.G,
			Q:   escape.Query{Nodes: q.Nodes, V: q.Var},
			K:   k,
			Uni: b.uni,
			WPC: b.wpc,
		})
	}
	return b
}

// FlushObs implements core.ObsFlusher for the shared literal universe.
func (b *EscapeBatch) FlushObs(rec obs.Recorder) { meta.FlushUniverseObs(rec, b.uni) }

func (b *EscapeBatch) NumParams() int  { return len(b.P.Sites) }
func (b *EscapeBatch) NumQueries() int { return len(b.Queries) }

// RunForward solves the whole program once under p. The run carries the
// analysis instance that produced it: checks must resolve interned state
// IDs against that instance. On a budget trip the run holds a partial
// fixpoint; the scheduler discards that round's outcomes.
//
// Runs solve through a dataflow.Chain so they retain resumable state: the
// scheduler may later hand the run back as a donor (RunForwardFrom), turning
// the forward memo into a second-level cache over resumable executions.
func (b *EscapeBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	a := b.P.FreshEscapeAnalysis()
	ch := dataflow.NewChain[escape.State](b.P.Low.G)
	r := &escapeRun{b: b, a: a, ch: ch}
	r.res = ch.Solve(p, a.Initial(), a.TransferDep(p), bud)
	r.resumes, r.reused, r.invalid = chainStats(ch)
	return r
}

var _ core.DeltaBatchProblem = (*EscapeBatch)(nil)

// RunForwardFrom solves under p by resuming the donor's retained execution
// against the parameter flip. The donor is consumed: its chain (and analysis
// instance, whose intern table the chain's memo is bound to) move to the new
// run, and its result is dead.
func (b *EscapeBatch) RunForwardFrom(bud *budget.Budget, p uset.Set, donor core.BatchRun, donorP uset.Set) core.BatchRun {
	d, ok := donor.(*escapeRun)
	if !ok || d.ch == nil {
		return b.RunForward(bud, p)
	}
	r := &escapeRun{b: b, a: d.a, ch: d.ch}
	d.ch, d.res = nil, nil
	r.res = r.ch.Solve(p, r.a.Initial(), r.a.TransferDep(p), bud)
	r.resumes, r.reused, r.invalid = chainStats(r.ch)
	return r
}

// chainStats flattens a chain's last-solve accounting into counters.
func chainStats[D comparable](ch *dataflow.Chain[D]) (resumes, reused, invalid int) {
	resumed, ru, inv := ch.Stats()
	if resumed {
		resumes = 1
	}
	return resumes, ru, inv
}

type escapeRun struct {
	b   *EscapeBatch
	a   *escape.Analysis
	ch  *dataflow.Chain[escape.State]
	res *dataflow.Result[escape.State]

	resumes, reused, invalid int
}

// DeltaStats implements core.DeltaRun; the counts are final at construction.
func (r *escapeRun) DeltaStats() (int, int, int) { return r.resumes, r.reused, r.invalid }

// Check is safe for concurrent calls: the solved result and its analysis
// are read-only once RunForward returns.
func (r *escapeRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	node, bad, found := escape.FindFailure(r.a, r.res, job.Q)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *escapeRun) Steps() int { return r.res.Steps }

// Backward delegates to the per-query job; distinct queries may run
// concurrently because each job owns its analysis instance, while the
// shared literal universe and WP cache are concurrency-safe by design
// (read-mostly lock plus copy-on-write snapshots; see formula.Universe).
func (b *EscapeBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(bud, p, t)
}

// NullnessBatch runs all generated null-dereference queries of a program
// through core.SolveBatch. Like the escape client, the nullness analysis is
// query-independent, so a group's queries genuinely share one forward run;
// the same concurrency contract applies (fresh analysis instance per run and
// per backward job, shared concurrency-safe literal universe and WP cache).
type NullnessBatch struct {
	P       *Program
	Queries []NullQuery
	K       int

	jobs []*nullness.Job
	uni  *formula.Universe
	wpc  *meta.WPCache
}

var _ core.BatchProblem = (*NullnessBatch)(nil)
var _ core.ObsFlusher = (*NullnessBatch)(nil)

// NewNullnessBatch builds the batch problem over the given queries.
func NewNullnessBatch(p *Program, queries []NullQuery, k int) *NullnessBatch {
	b := &NullnessBatch{P: p, Queries: queries, K: k,
		uni: formula.NewUniverse(nullness.Theory{}), wpc: meta.NewWPCache()}
	for _, q := range queries {
		b.jobs = append(b.jobs, &nullness.Job{
			A:   p.FreshNullnessAnalysis(),
			G:   p.Low.G,
			Q:   nullness.Query{Nodes: q.Nodes, V: q.Var},
			K:   k,
			Uni: b.uni,
			WPC: b.wpc,
		})
	}
	return b
}

// FlushObs implements core.ObsFlusher for the shared literal universe.
func (b *NullnessBatch) FlushObs(rec obs.Recorder) { meta.FlushUniverseObs(rec, b.uni) }

func (b *NullnessBatch) NumParams() int  { return len(b.P.Locals) + len(b.P.Fields) }
func (b *NullnessBatch) NumQueries() int { return len(b.Queries) }

// RunForward solves the whole program once under p (see EscapeBatch).
func (b *NullnessBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	a := b.P.FreshNullnessAnalysis()
	ch := dataflow.NewChain[nullness.State](b.P.Low.G)
	r := &nullnessRun{b: b, a: a, ch: ch}
	r.res = ch.Solve(p, a.Initial(), a.TransferDep(p), bud)
	r.resumes, r.reused, r.invalid = chainStats(ch)
	return r
}

var _ core.DeltaBatchProblem = (*NullnessBatch)(nil)

// RunForwardFrom solves under p by resuming the donor's retained execution
// against the parameter flip. The donor is consumed.
func (b *NullnessBatch) RunForwardFrom(bud *budget.Budget, p uset.Set, donor core.BatchRun, donorP uset.Set) core.BatchRun {
	d, ok := donor.(*nullnessRun)
	if !ok || d.ch == nil {
		return b.RunForward(bud, p)
	}
	r := &nullnessRun{b: b, a: d.a, ch: d.ch}
	d.ch, d.res = nil, nil
	r.res = r.ch.Solve(p, r.a.Initial(), r.a.TransferDep(p), bud)
	r.resumes, r.reused, r.invalid = chainStats(r.ch)
	return r
}

type nullnessRun struct {
	b   *NullnessBatch
	a   *nullness.Analysis
	ch  *dataflow.Chain[nullness.State]
	res *dataflow.Result[nullness.State]

	resumes, reused, invalid int
}

// DeltaStats implements core.DeltaRun; the counts are final at construction.
func (r *nullnessRun) DeltaStats() (int, int, int) { return r.resumes, r.reused, r.invalid }

// Check is safe for concurrent calls: the solved result and its analysis
// are read-only once RunForward returns.
func (r *nullnessRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	node, bad, found := nullness.FindFailure(r.a, r.res, job.Q)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *nullnessRun) Steps() int { return r.res.Steps }

// Backward delegates to the per-query job (see EscapeBatch.Backward).
func (b *NullnessBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(bud, p, t)
}

// TypestateBatch runs all generated type-state queries through
// core.SolveBatch. Queries tracking the same allocation site share a
// forward solve, and a shared forward run solves lazily per site (the
// paper's implementation tracks a separate abstract object per site within
// one tabulation run; per-site solves over the same graph are equivalent).
//
// Like EscapeBatch, every run and every backward job owns fresh analysis
// instances so the parallel scheduler's concurrent Check/Backward calls
// never share an intern table. The formula kernel's literal universe is
// shared batch-wide (the theory is stateless, so memoized theory bits are
// valid across sites), while the weakest-precondition cache is shared per
// tracked site — the type-state WP depends on the analysis's site and
// may-point set, so only same-site jobs compute identical preconditions.
type TypestateBatch struct {
	P       *Program
	Queries []TSQuery
	K       int

	prop *typestate.Property
	jobs []*typestate.Job
	uni  *formula.Universe
}

var _ core.BatchProblem = (*TypestateBatch)(nil)
var _ core.ObsFlusher = (*TypestateBatch)(nil)

// NewTypestateBatch builds the batch problem over the given queries.
func NewTypestateBatch(p *Program, queries []TSQuery, k int) *TypestateBatch {
	b := &TypestateBatch{P: p, Queries: queries, K: k,
		uni: formula.NewUniverse(typestate.Theory{})}
	b.prop = typestate.StressProperty(p.stressMethods)
	siteWPC := map[string]*meta.WPCache{}
	for _, q := range queries {
		a := typestate.New(b.prop, q.Site, p.Vars)
		a.MayPoint = p.MayPoint(q.Site)
		wpc := siteWPC[q.Site]
		if wpc == nil {
			wpc = meta.NewWPCache()
			siteWPC[q.Site] = wpc
		}
		b.jobs = append(b.jobs, &typestate.Job{
			A:   a,
			G:   p.Low.G,
			Q:   typestate.Query{Nodes: q.Nodes, Want: uset.Bits(0).Add(b.prop.Init)},
			K:   k,
			Uni: b.uni,
			WPC: wpc,
		})
	}
	return b
}

// FlushObs implements core.ObsFlusher for the shared literal universe.
func (b *TypestateBatch) FlushObs(rec obs.Recorder) { meta.FlushUniverseObs(rec, b.uni) }

func (b *TypestateBatch) NumParams() int  { return len(b.P.Vars) }
func (b *TypestateBatch) NumQueries() int { return len(b.Queries) }

// RunForward returns a run that solves per tracked site on demand. The run
// captures the batch budget so lazy per-site solves (which happen inside
// Check, possibly rounds later) stay interruptible.
func (b *TypestateBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	return &typestateRun{b: b, bud: bud, p: p, perSite: map[string]*siteCell{}}
}

var _ core.DeltaBatchProblem = (*TypestateBatch)(nil)

// RunForwardFrom returns a run seeded with the donor's per-site chains: each
// site the new run is asked to solve resumes the donor's retained execution
// for that site (if any) instead of solving cold. Donor cells the donor
// itself inherited but never touched ride along, so a chain keeps serving
// its site across a whole lineage of donations until the site is asked
// again. The donor is consumed.
func (b *TypestateBatch) RunForwardFrom(bud *budget.Budget, p uset.Set, donor core.BatchRun, donorP uset.Set) core.BatchRun {
	d, ok := donor.(*typestateRun)
	if !ok {
		return b.RunForward(bud, p)
	}
	inherited := d.inherited
	if inherited == nil {
		inherited = map[string]*siteCell{}
	}
	for site, c := range d.perSite {
		if c.res != nil {
			inherited[site] = c // the donor's own cells are the more recent
		}
	}
	d.perSite, d.inherited = nil, nil
	return &typestateRun{b: b, bud: bud, p: p, inherited: inherited, perSite: map[string]*siteCell{}}
}

// siteCell holds one site's lazily-computed solve within a run. The cell's
// once gate lets concurrent checks of same-site queries wait for a single
// solve; a, ch, and res are immutable after the gate opens.
type siteCell struct {
	once sync.Once
	a    *typestate.Analysis
	ch   *dataflow.Chain[typestate.State]
	res  *dataflow.Result[typestate.State]
}

type typestateRun struct {
	b   *TypestateBatch
	bud *budget.Budget
	p   uset.Set
	// inherited maps sites to donor cells whose chain a solve for that site
	// resumes. Written only before the run is published to the scheduler;
	// each site's cell is consumed by exactly one once-gated solve.
	inherited map[string]*siteCell

	mu      sync.Mutex // guards perSite, steps, and the delta counters
	perSite map[string]*siteCell
	steps   int

	resumes, reused, invalid int
}

func (r *typestateRun) solve(site string) *siteCell {
	r.mu.Lock()
	c := r.perSite[site]
	if c == nil {
		c = &siteCell{}
		r.perSite[site] = c
	}
	r.mu.Unlock()
	c.once.Do(func() {
		if dc := r.inherited[site]; dc != nil {
			c.a, c.ch = dc.a, dc.ch
			dc.ch, dc.res = nil, nil
		} else {
			c.a = typestate.New(r.b.prop, site, r.b.P.Vars)
			c.a.MayPoint = r.b.P.MayPoint(site)
			c.ch = dataflow.NewChain[typestate.State](r.b.P.Low.G)
		}
		c.res = c.ch.Solve(r.p, c.a.Initial(), c.a.TransferDep(r.p), r.bud)
		resumes, reused, invalid := chainStats(c.ch)
		r.mu.Lock()
		r.steps += c.res.Steps
		r.resumes += resumes
		r.reused += reused
		r.invalid += invalid
		r.mu.Unlock()
	})
	return c
}

// DeltaStats implements core.DeltaRun; lazy per-site solves keep accruing, so
// the counts are cumulative like Steps.
func (r *typestateRun) DeltaStats() (int, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resumes, r.reused, r.invalid
}

// Check is safe for concurrent calls with distinct queries; same-site
// queries share one solve through the cell's once gate.
func (r *typestateRun) Check(q int) (bool, lang.Trace) {
	job := r.b.jobs[q]
	c := r.solve(r.b.Queries[q].Site)
	node, bad, found := typestate.FindFailure(c.a, c.res, job.Q)
	if !found {
		return true, nil
	}
	return false, c.res.Witness(node, bad)
}

func (r *typestateRun) Steps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// Backward delegates to the per-query job; distinct queries may run
// concurrently because each job owns its analysis instance, while the
// shared literal universe and per-site WP caches are concurrency-safe.
func (b *TypestateBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	return b.jobs[q].Backward(bud, p, t)
}
