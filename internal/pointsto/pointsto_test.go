package pointsto

import (
	"testing"

	"tracer/internal/ir"
)

func analyze(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog := ir.MustParse(src)
	res, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

func sites(t *testing.T, r *Result, names ...string) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, n := range names {
		id, ok := r.Sites.Lookup(n)
		if !ok {
			t.Fatalf("site %s not interned", n)
		}
		out[n] = id
	}
	return out
}

func TestBasicFlow(t *testing.T) {
	prog, r := analyze(t, `
class Main {
  method main(this) {
    var a, b
    a = new Main @ h1
    b = a
  }
}
`)
	main := prog.Main()
	ids := sites(t, r, "h1")
	if !r.PointsTo(main, "a").Has(ids["h1"]) || !r.PointsTo(main, "b").Has(ids["h1"]) {
		t.Fatal("copy flow missing")
	}
	if !r.MayPoint(main, "b", "h1") || r.MayPoint(main, "b", "nope") {
		t.Fatal("MayPoint wrong")
	}
}

func TestGlobalsAndFields(t *testing.T) {
	prog, r := analyze(t, `
global G
class Box { field val }
class Main {
  method main(this) {
    var a, b, c, d
    a = new Box @ hA
    G = a
    b = G
    b.val = a
    c = new Box @ hC
    d = c.val
  }
}
`)
	main := prog.Main()
	ids := sites(t, r, "hA")
	if !r.GlobalPointsTo("G").Has(ids["hA"]) {
		t.Fatal("global flow missing")
	}
	if !r.PointsTo(main, "b").Has(ids["hA"]) {
		t.Fatal("global read missing")
	}
	// Field-based: a store through any base reaches loads through any base.
	if !r.FieldPointsTo("val").Has(ids["hA"]) {
		t.Fatal("field store missing")
	}
	if !r.PointsTo(main, "d").Has(ids["hA"]) {
		t.Fatal("field load missing (field-based semantics)")
	}
}

func TestVirtualDispatch(t *testing.T) {
	prog, r := analyze(t, `
class Base {
  method who(this) {
    var x
    x = new Base @ hBase
    return x
  }
}
class Derived extends Base {
  method who(this) {
    var y
    y = new Derived @ hDerived
    return y
  }
}
class Main {
  method main(this) {
    var o, w
    o = new Derived @ h1
    w = o.who()
  }
}
`)
	main := prog.Main()
	ids := sites(t, r, "hDerived")
	w := r.PointsTo(main, "w")
	if !w.Has(ids["hDerived"]) {
		t.Fatal("override's return value missing")
	}
	if base, ok := r.Sites.Lookup("hBase"); ok && w.Has(base) {
		t.Fatal("dispatch imprecision: Base.who should not be called on a Derived-only receiver")
	}
	derivedWho := prog.ClassByName("Derived").LookupMethod("who")
	baseWho := prog.ClassByName("Base").LookupMethod("who")
	if !r.Reachable(derivedWho) {
		t.Fatal("Derived.who unreachable")
	}
	if r.Reachable(baseWho) {
		t.Fatal("Base.who should be unreachable")
	}
}

func TestInheritedMethodReceiver(t *testing.T) {
	prog, r := analyze(t, `
class Base {
  method self(this) {
    return this
  }
}
class Derived extends Base { }
class Main {
  method main(this) {
    var o, s
    o = new Derived @ hD
    s = o.self()
  }
}
`)
	main := prog.Main()
	ids := sites(t, r, "hD")
	if !r.PointsTo(main, "s").Has(ids["hD"]) {
		t.Fatal("receiver flow through inherited method missing")
	}
}

func TestParameterBinding(t *testing.T) {
	prog, r := analyze(t, `
class Sink {
  method take(this, p, q) {
    var keep
    keep = q
  }
}
class Main {
  method main(this) {
    var s, a, b
    s = new Sink @ hS
    a = new Main @ hA
    b = new Main @ hB
    s.take(a, b)
  }
}
`)
	take := prog.ClassByName("Sink").LookupMethod("take")
	ids := sites(t, r, "hA", "hB")
	if !r.PointsTo(take, "p").Has(ids["hA"]) || r.PointsTo(take, "p").Has(ids["hB"]) {
		t.Fatalf("p = %v", r.PointsTo(take, "p"))
	}
	if !r.PointsTo(take, "keep").Has(ids["hB"]) {
		t.Fatalf("keep = %v", r.PointsTo(take, "keep"))
	}
}

func TestUnreachableCodeNotAnalyzed(t *testing.T) {
	prog, r := analyze(t, `
class Dead {
  method never(this) {
    var z
    z = new Dead @ hDead
  }
}
class Main {
  method main(this) { }
}
`)
	dead := prog.ClassByName("Dead").LookupMethod("never")
	if r.Reachable(dead) {
		t.Fatal("Dead.never should be unreachable")
	}
	// Its site is still interned (stable IDs) but flows nowhere.
	ids := sites(t, r, "hDead")
	if r.PointsTo(dead, "z").Has(ids["hDead"]) {
		t.Fatal("unreachable method was analyzed")
	}
	if len(r.ReachableMethods()) != 1 {
		t.Fatalf("reachable = %v", r.ReachableMethods())
	}
}

func TestMissingMain(t *testing.T) {
	prog := ir.MustParse(`class A { }`)
	if _, err := Analyze(prog); err == nil {
		t.Fatal("expected error for missing Main.main")
	}
}

func TestOnTheFlyCallGraph(t *testing.T) {
	// Reaching deep requires discovering each call target from the
	// previous one's points-to facts.
	prog, r := analyze(t, `
class A { method step(this, n) {
    n.step2(n)
  } }
class B { method step2(this, n) {
    var x
    x = new B @ hDeep
  } }
class Main {
  method main(this) {
    var a, b
    a = new A @ hA
    b = new B @ hB
    a.step(b)
  }
}
`)
	step2 := prog.ClassByName("B").LookupMethod("step2")
	if !r.Reachable(step2) {
		t.Fatal("transitively discovered callee missing")
	}
	if _, ok := r.Sites.Lookup("hDeep"); !ok {
		t.Fatal("site of deep method not interned")
	}
}
