// Package pointsto implements a 0-CFA (context-insensitive,
// flow-insensitive) Andersen-style may-points-to analysis over the mini-IR,
// with an on-the-fly call graph. It plays the role of Chord's 0-CFA
// call-graph analysis in the paper's evaluation (§6): it resolves virtual
// dispatch for the lowering pass and answers the "may v point to h" queries
// that gate the type-state client and drive query generation.
//
// Fields are field-based: one points-to summary per field name across all
// objects, matching the thread-escape analysis's field abstraction.
package pointsto

import (
	"fmt"
	"sort"

	"tracer/internal/intern"
	"tracer/internal/ir"
	"tracer/internal/uset"
)

// Result holds the fixpoint of the analysis.
type Result struct {
	prog *ir.Program
	// Sites interns allocation-site names to parameter indices shared with
	// the escape analysis.
	Sites *intern.Strings

	siteClass map[int]map[string]bool // site → class names allocated there
	varPts    map[varKey]uset.Set
	globalPts map[string]uset.Set
	fieldPts  map[string]uset.Set
	reachable map[*ir.Method]bool
	targets   map[*ir.CallStmt][]*ir.Method
}

type varKey struct {
	m *ir.Method
	v string
}

// Analyze runs the analysis from Main.main to fixpoint.
func Analyze(prog *ir.Program) (*Result, error) {
	main := prog.Main()
	if main == nil {
		return nil, fmt.Errorf("pointsto: program has no Main.main entry method")
	}
	r := &Result{
		prog:      prog,
		Sites:     intern.NewStrings(),
		siteClass: map[int]map[string]bool{},
		varPts:    map[varKey]uset.Set{},
		globalPts: map[string]uset.Set{},
		fieldPts:  map[string]uset.Set{},
		reachable: map[*ir.Method]bool{main: true},
		targets:   map[*ir.CallStmt][]*ir.Method{},
	}
	// Pre-intern every site in source order so indices are stable even for
	// code that turns out to be unreachable.
	for _, m := range prog.Methods() {
		walk(m.Body, func(s ir.Stmt) {
			if n, ok := s.(*ir.NewStmt); ok {
				id := r.Sites.ID(n.Site)
				if r.siteClass[id] == nil {
					r.siteClass[id] = map[string]bool{}
				}
				r.siteClass[id][n.Class] = true
			}
		})
	}
	r.solve()
	return r, nil
}

// walk visits statements recursively.
func walk(body []ir.Stmt, f func(ir.Stmt)) {
	for _, s := range body {
		f(s)
		switch s := s.(type) {
		case *ir.IfStmt:
			walk(s.Then, f)
			walk(s.Else, f)
		case *ir.LoopStmt:
			walk(s.Body, f)
		}
	}
}

func (r *Result) addVar(k varKey, sites uset.Set) bool {
	merged := r.varPts[k].Union(sites)
	if merged.Len() == r.varPts[k].Len() {
		return false
	}
	r.varPts[k] = merged
	return true
}

func (r *Result) solve() {
	for changed := true; changed; {
		changed = false
		// Iterate over a stable snapshot of reachable methods; newly
		// discovered methods are picked up on the next sweep.
		var ms []*ir.Method
		for m := range r.reachable {
			ms = append(ms, m)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].QualName() < ms[j].QualName() })
		for _, m := range ms {
			if m.Native {
				continue
			}
			walk(m.Body, func(s ir.Stmt) {
				if r.processStmt(m, s) {
					changed = true
				}
			})
		}
	}
}

func (r *Result) processStmt(m *ir.Method, s ir.Stmt) bool {
	changed := false
	pts := func(v string) uset.Set { return r.varPts[varKey{m, v}] }
	switch s := s.(type) {
	case *ir.NewStmt:
		changed = r.addVar(varKey{m, s.Dst}, uset.New(r.Sites.ID(s.Site)))
	case *ir.MoveStmt:
		changed = r.addVar(varKey{m, s.Dst}, pts(s.Src))
	case *ir.GlobalGet:
		changed = r.addVar(varKey{m, s.Dst}, r.globalPts[s.Global])
	case *ir.GlobalPut:
		merged := r.globalPts[s.Global].Union(pts(s.Src))
		if merged.Len() != r.globalPts[s.Global].Len() {
			r.globalPts[s.Global] = merged
			changed = true
		}
	case *ir.LoadStmt:
		changed = r.addVar(varKey{m, s.Dst}, r.fieldPts[s.Field])
	case *ir.StoreStmt:
		merged := r.fieldPts[s.Field].Union(pts(s.Src))
		if merged.Len() != r.fieldPts[s.Field].Len() {
			r.fieldPts[s.Field] = merged
			changed = true
		}
	case *ir.CallStmt:
		changed = r.processCall(m, s)
	}
	return changed
}

// processCall resolves virtual dispatch per receiver site and wires
// parameter, receiver, and return-value constraints.
func (r *Result) processCall(m *ir.Method, s *ir.CallStmt) bool {
	changed := false
	recv := r.varPts[varKey{m, s.Recv}]
	seen := map[*ir.Method]bool{}
	var tgts []*ir.Method
	for _, h := range recv.Elems() {
		for className := range r.siteClass[h] {
			cls := r.prog.ClassByName(className)
			if cls == nil {
				continue
			}
			callee := cls.LookupMethod(s.Method)
			if callee == nil {
				continue
			}
			if !seen[callee] {
				seen[callee] = true
				tgts = append(tgts, callee)
			}
			if !r.reachable[callee] {
				r.reachable[callee] = true
				changed = true
			}
			if callee.Native {
				continue
			}
			// Receiver: only the sites whose dispatch lands on callee.
			if r.addVar(varKey{callee, "this"}, uset.New(h)) {
				changed = true
			}
			for i, p := range callee.Params {
				if i < len(s.Args) {
					if r.addVar(varKey{callee, p}, r.varPts[varKey{m, s.Args[i]}]) {
						changed = true
					}
				}
			}
			if s.Dst != "" {
				if ret := returnVar(callee); ret != "" {
					if r.addVar(varKey{m, s.Dst}, r.varPts[varKey{callee, ret}]) {
						changed = true
					}
				}
			}
		}
	}
	sort.Slice(tgts, func(i, j int) bool { return tgts[i].QualName() < tgts[j].QualName() })
	r.targets[s] = tgts
	return changed
}

// returnVar returns the variable a method returns, or "".
func returnVar(m *ir.Method) string {
	if len(m.Body) == 0 {
		return ""
	}
	if ret, ok := m.Body[len(m.Body)-1].(*ir.ReturnStmt); ok {
		return ret.Src
	}
	return ""
}

// PointsTo returns the site set a local of a method may point to.
func (r *Result) PointsTo(m *ir.Method, v string) uset.Set { return r.varPts[varKey{m, v}] }

// GlobalPointsTo returns the site set a global may point to.
func (r *Result) GlobalPointsTo(g string) uset.Set { return r.globalPts[g] }

// FieldPointsTo returns the field-based summary for field f.
func (r *Result) FieldPointsTo(f string) uset.Set { return r.fieldPts[f] }

// MayPoint reports whether local v of method m may point to site h.
func (r *Result) MayPoint(m *ir.Method, v string, site string) bool {
	id, ok := r.Sites.Lookup(site)
	if !ok {
		return false
	}
	return r.varPts[varKey{m, v}].Has(id)
}

// Targets returns the resolved callees of a call statement, sorted.
func (r *Result) Targets(s *ir.CallStmt) []*ir.Method { return r.targets[s] }

// Reachable reports whether m is reachable from the entry method.
func (r *Result) Reachable(m *ir.Method) bool { return r.reachable[m] }

// ReachableMethods returns all reachable methods sorted by qualified name.
func (r *Result) ReachableMethods() []*ir.Method {
	var out []*ir.Method
	for m := range r.reachable {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QualName() < out[j].QualName() })
	return out
}

// NumSites reports the number of allocation sites in the program.
func (r *Result) NumSites() int { return r.Sites.Len() }
