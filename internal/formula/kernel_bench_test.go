package formula_test

// Microbenchmarks of the interned DNF kernel's hot paths on formulas sized
// like the Fig 12 evaluation programs (a thread-escape universe with several
// locals, fields, and allocation sites; the store weakest precondition is
// the largest formula either theory produces). Run with -benchmem: the
// allocs/op column is the regression gate for the "no string keys on hot
// paths" property — see `make bench-micro`.

import (
	"testing"

	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/formula"
	"tracer/internal/lang"
	"tracer/internal/meta"
)

// benchAnalysis builds a fig12-sized thread-escape universe.
func benchAnalysis() *escape.Analysis {
	locals := []string{"u", "v", "w", "x", "y", "z"}
	fields := []string{"f", "g"}
	sites := []string{"h1", "h2", "h3", "h4", "h5", "h6", "h7", "h8"}
	return escape.New(locals, fields, sites)
}

// benchWPFormula returns the store weakest precondition — the largest
// formula in either theory — over the bench universe.
func benchWPFormula(a *escape.Analysis) formula.Formula {
	st := lang.Store{Dst: "u", F: "f", Src: "v"}
	return a.WP(st, escape.PField{F: "f", O: escape.N})
}

// benchTrace is a counterexample-shaped trace mixing allocations, moves,
// stores, and loads, so the backward walk exercises every WP shape.
func benchTrace() lang.Trace {
	return lang.Trace{
		lang.Alloc{V: "u", H: "h1"},
		lang.Alloc{V: "v", H: "h2"},
		lang.Move{Dst: "w", Src: "u"},
		lang.Store{Dst: "v", F: "f", Src: "u"},
		lang.GlobalWrite{G: "G", V: "w"},
		lang.Load{Dst: "x", Src: "v", F: "f"},
		lang.Alloc{V: "y", H: "h3"},
		lang.Move{Dst: "z", Src: "x"},
		lang.Store{Dst: "y", F: "g", Src: "z"},
		lang.Load{Dst: "u", Src: "y", F: "g"},
	}
}

func BenchmarkApprox(b *testing.B) {
	a := benchAnalysis()
	u := formula.NewUniverse(escape.Theory{})
	f := benchWPFormula(a)
	dI := a.Initial()
	holds := func(c formula.Conj) bool {
		return c.Eval(func(l formula.Lit) bool { return a.EvalLit(l, nil, dI) })
	}
	formula.Approx(f, u, 5, holds) // warm the universe and theory memos
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		formula.Approx(f, u, 5, holds)
	}
}

func BenchmarkSimplify(b *testing.B) {
	a := benchAnalysis()
	u := formula.NewUniverse(escape.Theory{})
	d := formula.ToDNF(benchWPFormula(a), u)
	d.Simplify() // warm the theory memos
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Simplify()
	}
}

func BenchmarkWpDNF(b *testing.B) {
	a := benchAnalysis()
	u := formula.NewUniverse(escape.Theory{})
	cache := meta.NewWPCache()
	tr := benchTrace()
	dI := a.Initial()
	states := dataflow.StatesAlong(tr, dI, a.Transfer(nil))
	post := a.NotQ(escape.Query{V: "u"})
	client := func() *meta.Client[escape.State] {
		return &meta.Client[escape.State]{
			WP:    a.WP,
			U:     u,
			Eval:  func(l formula.Lit, d escape.State) bool { return a.EvalLit(l, nil, d) },
			K:     5,
			Cache: cache,
		}
	}
	meta.Run(client(), tr, states, post) // warm the WP cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta.Run(client(), tr, states, post)
	}
}
