package formula

import "strings"

// Formula is an arbitrary boolean formula over primitive literals:
// f ::= π | true | false | ¬f | f ∧ f' | f ∨ f'. Backward transfer functions
// produce Formula values; the meta-analysis converts them to DNF with ToDNF.
type Formula struct {
	kind kind
	lit  Lit
	subs []Formula
}

type kind uint8

const (
	kTrue kind = iota
	kFalse
	kLit
	kNot
	kAnd
	kOr
)

// True and False are the boolean constants.
func True() Formula  { return Formula{kind: kTrue} }
func False() Formula { return Formula{kind: kFalse} }

// L lifts a primitive to a positive literal formula.
func L(p Prim) Formula { return Formula{kind: kLit, lit: Lit{P: p}} }

// NegL lifts a primitive to a negated literal formula.
func NegL(p Prim) Formula { return Formula{kind: kLit, lit: Lit{P: p, Neg: true}} }

// FromLit lifts a literal to a formula.
func FromLit(l Lit) Formula { return Formula{kind: kLit, lit: l} }

// FromDNF converts a DNF back to a Formula.
func FromDNF(d DNF) Formula {
	disjuncts := make([]Formula, 0, len(d))
	for _, c := range d {
		lits := make([]Formula, 0, c.Size())
		for _, l := range c.Lits() {
			lits = append(lits, FromLit(l))
		}
		disjuncts = append(disjuncts, And(lits...))
	}
	return Or(disjuncts...)
}

// Not negates a formula.
func Not(f Formula) Formula {
	switch f.kind {
	case kTrue:
		return False()
	case kFalse:
		return True()
	case kNot:
		return f.subs[0]
	case kLit:
		return FromLit(f.lit.Negate())
	}
	return Formula{kind: kNot, subs: []Formula{f}}
}

// And conjoins formulas, folding constants.
func And(fs ...Formula) Formula {
	var subs []Formula
	for _, f := range fs {
		switch f.kind {
		case kTrue:
			continue
		case kFalse:
			return False()
		case kAnd:
			subs = append(subs, f.subs...)
		default:
			subs = append(subs, f)
		}
	}
	switch len(subs) {
	case 0:
		return True()
	case 1:
		return subs[0]
	}
	return Formula{kind: kAnd, subs: subs}
}

// Or disjoins formulas, folding constants.
func Or(fs ...Formula) Formula {
	var subs []Formula
	for _, f := range fs {
		switch f.kind {
		case kFalse:
			continue
		case kTrue:
			return True()
		case kOr:
			subs = append(subs, f.subs...)
		default:
			subs = append(subs, f)
		}
	}
	switch len(subs) {
	case 0:
		return False()
	case 1:
		return subs[0]
	}
	return Formula{kind: kOr, subs: subs}
}

// Implies builds f → g as ¬f ∨ g.
func Implies(f, g Formula) Formula { return Or(Not(f), g) }

func (f Formula) String() string {
	switch f.kind {
	case kTrue:
		return "true"
	case kFalse:
		return "false"
	case kLit:
		return f.lit.String()
	case kNot:
		return "¬(" + f.subs[0].String() + ")"
	case kAnd:
		return joinSubs(f.subs, " ∧ ")
	case kOr:
		return joinSubs(f.subs, " ∨ ")
	}
	return "?"
}

func joinSubs(subs []Formula, sep string) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		if s.kind == kAnd || s.kind == kOr {
			parts[i] = "(" + s.String() + ")"
		} else {
			parts[i] = s.String()
		}
	}
	return strings.Join(parts, sep)
}

// Eval evaluates the formula under a literal valuation; it treats negation
// classically (eval is consulted only on the literal's positive form via the
// valuation itself, which must handle Neg).
func (f Formula) Eval(eval func(Lit) bool) bool {
	switch f.kind {
	case kTrue:
		return true
	case kFalse:
		return false
	case kLit:
		return eval(f.lit)
	case kNot:
		return !f.subs[0].Eval(eval)
	case kAnd:
		for _, s := range f.subs {
			if !s.Eval(eval) {
				return false
			}
		}
		return true
	case kOr:
		for _, s := range f.subs {
			if s.Eval(eval) {
				return true
			}
		}
		return false
	}
	panic("formula: bad kind")
}

// ToDNF converts a formula to disjunctive normal form, sorted by disjunct
// size as Fig 8's toDNF requires. Negations of literals are resolved through
// the universe's theory (¬v.L becomes v.E ∨ v.N in the thread-escape theory,
// while the type-state theory keeps signed literals). u must be non-nil.
func ToDNF(f Formula, u *Universe) DNF {
	return toDNF(f, false, u).SortBySize()
}

func toDNF(f Formula, neg bool, u *Universe) DNF {
	switch f.kind {
	case kTrue:
		if neg {
			return DFalse()
		}
		return DTrue()
	case kFalse:
		if neg {
			return DTrue()
		}
		return DFalse()
	case kNot:
		return toDNF(f.subs[0], !neg, u)
	case kLit:
		l := f.lit
		if neg {
			l = l.Negate()
		}
		if l.Neg {
			if alts, ok := u.th.NegLit(l.Negate()); ok {
				out := make(DNF, 0, len(alts))
				for _, a := range alts {
					out = append(out, NewConj(u, a))
				}
				return out
			}
		}
		return DNF{NewConj(u, l)}
	case kAnd, kOr:
		isAnd := f.kind == kAnd
		if neg {
			isAnd = !isAnd
		}
		if isAnd {
			out := DTrue()
			for _, s := range f.subs {
				out = out.And(toDNF(s, neg, u))
				if out.IsFalse() {
					return out
				}
			}
			return out
		}
		out := DFalse()
		for _, s := range f.subs {
			out = out.Or(toDNF(s, neg, u))
		}
		return out
	}
	panic("formula: bad kind")
}
