// Package formula implements the generic boolean-formula machinery of the
// backward meta-analysis (§4.1 of the paper). Formulas are built over
// analysis-specific primitive formulas (Fig 9 for type-state, the h.o/v.o/f.o
// primitives for thread-escape); the package provides the DNF representation
// and the toDNF, simplify, and dropk operations of Fig 8, combined into the
// generic under-approximation operator approx.
//
// The kernel runs on interned literals: a per-analysis Universe maps each
// Lit to a dense uint32 ID and memoizes the theory relations as bitset rows,
// so the hot operations work on sorted integer slices and 64-bit hashes
// rather than joined string keys. A DNF/Conj remembers its Universe; only
// formulas built against the same Universe may be combined.
package formula

import (
	"sort"
	"strings"

	"tracer/internal/uset"
)

// Prim is a primitive formula. Implementations must be immutable values; Key
// must uniquely identify the primitive within its theory.
type Prim interface {
	Key() string
	String() string
}

// Lit is a possibly negated primitive formula.
type Lit struct {
	P   Prim
	Neg bool
}

// Key returns a canonical identity for the literal. Hot paths avoid calling
// it repeatedly: a Universe interns each distinct key to a dense ID once.
func (l Lit) Key() string {
	if l.Neg {
		return "!" + l.P.Key()
	}
	return l.P.Key()
}

func (l Lit) String() string {
	if l.Neg {
		return "¬" + l.P.String()
	}
	return l.P.String()
}

// Negate returns the literal with flipped sign.
func (l Lit) Negate() Lit { return Lit{l.P, !l.Neg} }

// Theory supplies the analysis-specific reasoning the generic machinery
// needs: how to negate a literal, when one literal entails another (used by
// simplify, the ⪯ of Figs 9/11), and when two literals are mutually
// exclusive (used to prune unsatisfiable disjuncts). Implies and Contradicts
// are consulted through a Universe's memo rows, at most once per literal
// pair per universe.
type Theory interface {
	// NegLit rewrites the negation of a positive literal l into an
	// equivalent disjunction of positive literals (e.g. ¬v.L ≡ v.E ∨ v.N for
	// thread-escape). It returns ok=false when the theory keeps signed
	// literals instead.
	NegLit(l Lit) (alts []Lit, ok bool)
	// Implies reports whether δ(a) ⊆ δ(b).
	Implies(a, b Lit) bool
	// Contradicts reports whether δ(a) ∩ δ(b) = ∅. It may be incomplete
	// (returning false is always safe).
	Contradicts(a, b Lit) bool
}

// Conj is a conjunction of literals, stored as interned IDs sorted by
// literal key and deduplicated, with a precomputed hash — entailment,
// contradiction, and deduplication checks are the meta-analysis's hottest
// paths and never touch strings. The zero Conj is true.
type Conj struct {
	u    *Universe
	ids  []uint32 // canonical (key-sorted, deduplicated) literal IDs
	hash uint64   // FNV-1a over ids; 0 for the empty conjunction
}

// NewConj builds a canonical conjunction from literals, interning them into
// u (which must be non-nil when lits is non-empty).
func NewConj(u *Universe, lits ...Lit) Conj {
	if len(lits) == 0 {
		return Conj{}
	}
	ids := make([]uint32, len(lits))
	for i, l := range lits {
		ids[i] = u.LitID(l)
	}
	rank := u.view.Load().rank
	sort.Slice(ids, func(i, j int) bool { return rank[ids[i]] < rank[ids[j]] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return mkConj(u, out)
}

// mkConj finalizes a canonical (sorted, deduplicated) id list.
func mkConj(u *Universe, ids []uint32) Conj {
	if len(ids) == 0 {
		return Conj{}
	}
	return Conj{u: u, ids: ids, hash: hashIDs(ids)}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashIDs is FNV-1a over the id values; canonical id lists are equal iff
// their conjunctions are, so the hash keys deduplication sets directly.
func hashIDs(ids []uint32) uint64 {
	h := uint64(fnvOffset)
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime
	}
	return h
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IDs returns the interned literal IDs in canonical order. The result must
// not be mutated.
func (c Conj) IDs() []uint32 { return c.ids }

// Hash returns the conjunction's precomputed identity hash.
func (c Conj) Hash() uint64 { return c.hash }

// Equal reports whether c and d are the same canonical conjunction.
func (c Conj) Equal(d Conj) bool { return c.hash == d.hash && equalIDs(c.ids, d.ids) }

// Retain returns the sub-conjunction of literals at indices where keep is
// true, preserving canonical order.
func (c Conj) Retain(keep func(i int) bool) Conj {
	ids := make([]uint32, 0, len(c.ids))
	for i := range c.ids {
		if keep(i) {
			ids = append(ids, c.ids[i])
		}
	}
	return mkConj(c.u, ids)
}

// SingletonLit reports whether the DNF is exactly one single-literal
// disjunct and returns that literal; the meta-analysis uses it to detect
// identity weakest preconditions.
func (d DNF) SingletonLit() (Lit, bool) {
	if len(d) == 1 && len(d[0].ids) == 1 {
		return d[0].u.Lit(d[0].ids[0]), true
	}
	return Lit{}, false
}

// Lits returns the representative literals in canonical order.
func (c Conj) Lits() []Lit {
	if len(c.ids) == 0 {
		return nil
	}
	v := c.u.view.Load()
	out := make([]Lit, len(c.ids))
	for i, id := range c.ids {
		out[i] = v.lits[id]
	}
	return out
}

// Size is the syntactic size of the conjunction (its literal count).
func (c Conj) Size() int { return len(c.ids) }

// Key returns a canonical identity for the conjunction, materialized lazily
// (debug/API paths; the kernel itself identifies conjunctions by hash+ids).
func (c Conj) Key() string {
	if len(c.ids) == 0 {
		return ""
	}
	return c.u.view.Load().joined(c.ids)
}

func (c Conj) String() string {
	if len(c.ids) == 0 {
		return "true"
	}
	lits := c.Lits()
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Eval evaluates the conjunction under a literal valuation.
func (c Conj) Eval(eval func(Lit) bool) bool {
	if len(c.ids) == 0 {
		return true
	}
	v := c.u.view.Load()
	for _, id := range c.ids {
		if !eval(v.lits[id]) {
			return false
		}
	}
	return true
}

// maskOf builds a bitset of the given ids, reusing buf when wide enough so
// the common case stays on the caller's stack.
func maskOf(buf []uint64, ids []uint32) uset.Words {
	max := uint32(0)
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	w := int(max>>6) + 1
	var m uset.Words
	if w <= len(buf) {
		m = uset.Words(buf[:w])
		for i := range m {
			m[i] = 0
		}
	} else {
		m = make(uset.Words, w)
	}
	for _, id := range ids {
		m.SetBit(id)
	}
	return m
}

// unsatIDs reports whether a canonical id list contains two contradictory
// literals (syntactic complement or theory contradiction). Each literal's
// contradiction-memo row is intersected against the mask of literals already
// admitted, so the theory is never re-consulted on the hot path.
func unsatIDs(u *Universe, v *uview, ids []uint32) bool {
	max := ids[0]
	for _, id := range ids[1:] {
		if id > max {
			max = id
		}
	}
	w := int(max>>6) + 1
	var buf [8]uint64
	var mask uset.Words
	if w <= len(buf) {
		mask = uset.Words(buf[:w])
	} else {
		mask = make(uset.Words, w)
	}
	mask.SetBit(ids[0])
	for _, id := range ids[1:] {
		if u.conRow(v, id).Intersects(mask) {
			return true
		}
		mask.SetBit(id)
	}
	return false
}

// reduceIDs drops literals entailed by another literal of the list (e.g.
// type(σ) entails ¬err in the type-state theory), keeping one representative
// of equivalent literals with the seed kernel's tie-break (the earlier
// literal wins). Returns the input slice unchanged when nothing drops.
func reduceIDs(u *Universe, v *uview, ids []uint32) []uint32 {
	n := len(ids)
	out := ids
	removed := 0
	for i := 0; i < n; i++ {
		li := ids[i]
		ri := u.impRow(v, li) // {a : a entails li}; the diagonal bit is i itself
		dropI := false
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			lj := ids[j]
			if ri.Has(lj) && (j < i || !u.impRow(v, lj).Has(li)) {
				dropI = true
				break
			}
		}
		if dropI {
			if removed == 0 {
				out = append(make([]uint32, 0, n-1), ids[:i]...)
			}
			removed++
		} else if removed > 0 {
			out = append(out, ids[i])
		}
	}
	return out
}

// mergeIDs merges two canonically sorted id lists, deduplicating; rank is
// the universe's key order, so the result is canonical again.
func mergeIDs(rank []int32, a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x == y:
			out = append(out, x)
			i++
			j++
		case rank[x] < rank[y]:
			out = append(out, x)
			i++
		default:
			out = append(out, y)
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// impliesMask reports whether every literal of d is entailed by some literal
// in mask (a bitset of the antecedent conjunction's ids).
func impliesMask(u *Universe, v *uview, mask uset.Words, d []uint32) bool {
	for _, ld := range d {
		if !u.impRow(v, ld).Intersects(mask) {
			return false
		}
	}
	return true
}

// Implies reports whether c entails d: every literal of d is entailed by
// some literal of c. This is the fast, incomplete entailment check of
// Figs 9/11 (f ⪯ f'), answered from the universe's entailment rows.
func (c Conj) Implies(d Conj) bool {
	if len(d.ids) == 0 {
		return true
	}
	if len(c.ids) == 0 {
		return false
	}
	u := c.u
	v := u.view.Load()
	var buf [8]uint64
	return impliesMask(u, v, maskOf(buf[:], c.ids), d.ids)
}

// ConjSet is a deduplication set of canonical conjunctions, keyed by the
// precomputed hash with an id-slice check on collisions. The zero value is
// ready to use. Not safe for concurrent use.
type ConjSet struct {
	m map[uint64][]Conj
}

// Add inserts c and reports whether it was absent.
func (s *ConjSet) Add(c Conj) bool {
	if s.m == nil {
		s.m = make(map[uint64][]Conj)
	}
	bucket := s.m[c.hash]
	for _, o := range bucket {
		if equalIDs(o.ids, c.ids) {
			return false
		}
	}
	s.m[c.hash] = append(bucket, c)
	return true
}

// Has reports whether c is present.
func (s *ConjSet) Has(c Conj) bool {
	for _, o := range s.m[c.hash] {
		if equalIDs(o.ids, c.ids) {
			return true
		}
	}
	return false
}

// DNF is a disjunction of conjunctions. nil is false; a DNF containing an
// empty Conj is true (once simplified).
type DNF []Conj

// DTrue and DFalse are the boolean constants in DNF form.
func DTrue() DNF  { return DNF{Conj{}} }
func DFalse() DNF { return nil }

// IsFalse reports whether the DNF has no disjuncts.
func (d DNF) IsFalse() bool { return len(d) == 0 }

// IsTrue reports whether some disjunct is the empty conjunction.
func (d DNF) IsTrue() bool {
	for _, c := range d {
		if c.Size() == 0 {
			return true
		}
	}
	return false
}

// Size is the total syntactic size.
func (d DNF) Size() int {
	n := 0
	for _, c := range d {
		n += c.Size()
	}
	return n
}

func (d DNF) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		if len(d) > 1 && c.Size() > 1 {
			parts[i] = "(" + c.String() + ")"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " ∨ ")
}

// Eval evaluates the DNF under a literal valuation.
func (d DNF) Eval(eval func(Lit) bool) bool {
	for _, c := range d {
		if c.Eval(eval) {
			return true
		}
	}
	return false
}

// universe returns the Universe the DNF's conjunctions were built against
// (nil only when every disjunct is the empty conjunction, where no theory
// reasoning is needed).
func (d DNF) universe() *Universe {
	for _, c := range d {
		if c.u != nil {
			return c.u
		}
	}
	return nil
}

// Or returns the disjunction d ∨ e with unsatisfiable and duplicate
// disjuncts removed. It iterates both operands in place.
func (d DNF) Or(e DNF) DNF {
	u := d.universe()
	if u == nil {
		u = e.universe()
	}
	var v *uview
	if u != nil {
		v = u.view.Load()
	}
	out := make(DNF, 0, len(d)+len(e))
	var seen ConjSet
	out = orInto(out, &seen, u, v, d)
	return orInto(out, &seen, u, v, e)
}

func orInto(out DNF, seen *ConjSet, u *Universe, v *uview, d DNF) DNF {
	for _, c := range d {
		if len(c.ids) >= 2 {
			if unsatIDs(u, v, c.ids) {
				continue
			}
			if ids := reduceIDs(u, v, c.ids); len(ids) != len(c.ids) {
				c = mkConj(u, ids)
			}
		}
		if seen.Add(c) {
			out = append(out, c)
		}
	}
	return out
}

// And returns the conjunction d ∧ e, distributing into DNF, with
// unsatisfiable and duplicate disjuncts removed.
func (d DNF) And(e DNF) DNF {
	if len(d) == 0 || len(e) == 0 {
		return nil
	}
	u := d.universe()
	if u == nil {
		u = e.universe()
	}
	var v *uview
	if u != nil {
		v = u.view.Load()
		u.products.Add(int64(len(d)) * int64(len(e)))
	}
	var out DNF
	var seen ConjSet
	for _, c1 := range d {
		for _, c2 := range e {
			var ids []uint32
			switch {
			case len(c1.ids) == 0:
				ids = c2.ids
			case len(c2.ids) == 0:
				ids = c1.ids
			default:
				ids = mergeIDs(v.rank, c1.ids, c2.ids)
			}
			// Prune before hashing: most products of large formulas die here.
			if len(ids) >= 2 {
				if unsatIDs(u, v, ids) {
					continue
				}
				ids = reduceIDs(u, v, ids)
			}
			c := mkConj(u, ids)
			if seen.Add(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// SortBySize orders disjuncts by syntactic size (then by joined key, for
// determinism), as required by toDNF in Fig 8. The tie-break compares
// interned keys positionally without materializing the joined string.
func (d DNF) SortBySize() DNF {
	out := append(DNF{}, d...)
	var v *uview
	if u := d.universe(); u != nil {
		v = u.view.Load()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].ids) != len(out[j].ids) {
			return len(out[i].ids) < len(out[j].ids)
		}
		if v == nil {
			return false
		}
		return v.lessJoined(out[i].ids, out[j].ids)
	})
	return out
}

// Simplify removes disjuncts subsumed by earlier (shorter) ones: a disjunct
// is dropped if it entails a kept disjunct, which means its denotation is
// contained in the kept one's and removing it preserves δ (Fig 8).
func (d DNF) Simplify() DNF {
	sorted := d.SortBySize()
	if len(sorted) <= 1 {
		return sorted
	}
	u := d.universe()
	if u == nil { // every disjunct is the empty conjunction
		return sorted[:1]
	}
	v := u.view.Load()
	var out DNF
	var checks int64
	var buf [8]uint64
	for _, c := range sorted {
		mask := maskOf(buf[:], c.ids)
		redundant := false
		for _, kept := range out {
			checks++
			if impliesMask(u, v, mask, kept.ids) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	u.subsumes.Add(checks)
	return out
}

// DropK implements dropk of Fig 8: keep the first k−1 disjuncts by size plus
// the shortest disjunct that holds at the current (p, d) — supplied as the
// holds predicate. If no disjunct holds, the first k disjuncts are kept
// (the retention condition of approx is vacuous in that case).
func (d DNF) DropK(k int, holds func(Conj) bool) DNF {
	if len(d) <= k {
		return d
	}
	keep := k - 1
	if keep < 0 {
		keep = 0
	}
	out := append(DNF{}, d[:keep]...)
	for _, c := range d {
		if holds(c) {
			// Already kept?
			dup := false
			for _, o := range out {
				if o.Equal(c) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, c)
			}
			return out
		}
	}
	// No disjunct holds at (p, d); keep the first k.
	return append(out, d[keep:k]...)
}

// Approx is the generic under-approximation operator of §4.1:
// simplify ∘ toDNF, followed by dropk when more than k disjuncts remain.
// k ≤ 0 disables dropping (the "no under-approximation" ablation).
func Approx(f Formula, u *Universe, k int, holds func(Conj) bool) DNF {
	d := ToDNF(f, u).Simplify()
	if k <= 0 || len(d) <= k {
		return d
	}
	return d.DropK(k, holds)
}

// ApproxDNF is Approx for an already-converted DNF.
func ApproxDNF(d DNF, k int, holds func(Conj) bool) DNF {
	d = d.Simplify()
	if k <= 0 || len(d) <= k {
		return d
	}
	return d.DropK(k, holds)
}
