// Package formula implements the generic boolean-formula machinery of the
// backward meta-analysis (§4.1 of the paper). Formulas are built over
// analysis-specific primitive formulas (Fig 9 for type-state, the h.o/v.o/f.o
// primitives for thread-escape); the package provides the DNF representation
// and the toDNF, simplify, and dropk operations of Fig 8, combined into the
// generic under-approximation operator approx.
package formula

import (
	"sort"
	"strings"
)

// Prim is a primitive formula. Implementations must be immutable values; Key
// must uniquely identify the primitive within its theory.
type Prim interface {
	Key() string
	String() string
}

// Lit is a possibly negated primitive formula.
type Lit struct {
	P   Prim
	Neg bool
}

// Key returns a canonical identity for the literal. Hot paths avoid calling
// it repeatedly: Conj precomputes and stores literal keys at construction.
func (l Lit) Key() string {
	if l.Neg {
		return "!" + l.P.Key()
	}
	return l.P.Key()
}

func (l Lit) String() string {
	if l.Neg {
		return "¬" + l.P.String()
	}
	return l.P.String()
}

// Negate returns the literal with flipped sign.
func (l Lit) Negate() Lit { return Lit{l.P, !l.Neg} }

// Theory supplies the analysis-specific reasoning the generic machinery
// needs: how to negate a literal into DNF, when one literal entails another
// (used by simplify, the ⪯ of Figs 9/11), and when two literals are
// mutually exclusive (used to prune unsatisfiable disjuncts).
type Theory interface {
	// NegLit rewrites the negation of a positive literal l into an
	// equivalent positive DNF (e.g. ¬v.L ≡ v.E ∨ v.N for thread-escape).
	// It returns ok=false when the theory keeps signed literals instead.
	NegLit(l Lit) (d DNF, ok bool)
	// Implies reports whether δ(a) ⊆ δ(b).
	Implies(a, b Lit) bool
	// Contradicts reports whether δ(a) ∩ δ(b) = ∅. It may be incomplete
	// (returning false is always safe).
	Contradicts(a, b Lit) bool
}

// Conj is a conjunction of literals, kept sorted by literal key and
// deduplicated, with the per-literal keys and the joined conjunction key
// precomputed — entailment, contradiction, and deduplication checks are the
// meta-analysis's hottest paths. The zero Conj is true.
type Conj struct {
	lits []Lit
	keys []string // parallel to lits
	key  string   // joined identity
}

// NewConj builds a canonical conjunction from literals.
func NewConj(lits ...Lit) Conj {
	ls := make([]Lit, len(lits))
	copy(ls, lits)
	keys := make([]string, len(ls))
	for i, l := range ls {
		keys[i] = l.Key()
	}
	sort.Sort(&litSorter{ls, keys})
	outL := ls[:0]
	outK := keys[:0]
	for i := range ls {
		if i > 0 && keys[i] == outK[len(outK)-1] {
			continue
		}
		outL = append(outL, ls[i])
		outK = append(outK, keys[i])
	}
	return mkConj(outL, outK)
}

type litSorter struct {
	lits []Lit
	keys []string
}

func (s *litSorter) Len() int           { return len(s.lits) }
func (s *litSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *litSorter) Swap(i, j int) {
	s.lits[i], s.lits[j] = s.lits[j], s.lits[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// mkConj finalizes a sorted, deduplicated literal list.
func mkConj(lits []Lit, keys []string) Conj {
	return Conj{lits: lits, keys: keys, key: strings.Join(keys, "&")}
}

// Retain returns the sub-conjunction of literals at indices where keep is
// true, preserving canonical order.
func (c Conj) Retain(keep func(i int) bool) Conj {
	lits := make([]Lit, 0, len(c.lits))
	keys := make([]string, 0, len(c.keys))
	for i := range c.lits {
		if keep(i) {
			lits = append(lits, c.lits[i])
			keys = append(keys, c.keys[i])
		}
	}
	return mkConj(lits, keys)
}

// SingletonLit reports whether the DNF is exactly one single-literal
// disjunct and returns that literal; the meta-analysis uses it to detect
// identity weakest preconditions.
func (d DNF) SingletonLit() (Lit, bool) {
	if len(d) == 1 && len(d[0].lits) == 1 {
		return d[0].lits[0], true
	}
	return Lit{}, false
}

// Lits returns the literals in canonical order; the result must not be
// mutated.
func (c Conj) Lits() []Lit { return c.lits }

// Size is the syntactic size of the conjunction (its literal count).
func (c Conj) Size() int { return len(c.lits) }

// Key returns a canonical identity for the conjunction.
func (c Conj) Key() string { return c.key }

func (c Conj) String() string {
	if len(c.lits) == 0 {
		return "true"
	}
	parts := make([]string, len(c.lits))
	for i, l := range c.lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Eval evaluates the conjunction under a literal valuation.
func (c Conj) Eval(eval func(Lit) bool) bool {
	for _, l := range c.lits {
		if !eval(l) {
			return false
		}
	}
	return true
}

// unsatRaw reports whether a literal list contains two contradictory
// literals (syntactic complement or theory contradiction).
func unsatRaw(lits []Lit, th Theory) bool {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			a, b := lits[i], lits[j]
			if a.Neg != b.Neg && a.P == b.P {
				return true
			}
			if th != nil && (th.Contradicts(a, b) || th.Contradicts(b, a)) {
				return true
			}
		}
	}
	return false
}

// unsat reports whether the conjunction is syntactically unsatisfiable.
func (c Conj) unsat(th Theory) bool { return unsatRaw(c.lits, th) }

// mergeSorted merges two key-sorted literal lists, deduplicating.
func mergeSorted(c, d Conj) (lits []Lit, keys []string) {
	lits = make([]Lit, 0, len(c.lits)+len(d.lits))
	keys = make([]string, 0, len(c.keys)+len(d.keys))
	i, j := 0, 0
	for i < len(c.lits) && j < len(d.lits) {
		switch {
		case c.keys[i] < d.keys[j]:
			lits, keys = append(lits, c.lits[i]), append(keys, c.keys[i])
			i++
		case c.keys[i] > d.keys[j]:
			lits, keys = append(lits, d.lits[j]), append(keys, d.keys[j])
			j++
		default:
			lits, keys = append(lits, c.lits[i]), append(keys, c.keys[i])
			i++
			j++
		}
	}
	for ; i < len(c.lits); i++ {
		lits, keys = append(lits, c.lits[i]), append(keys, c.keys[i])
	}
	for ; j < len(d.lits); j++ {
		lits, keys = append(lits, d.lits[j]), append(keys, d.keys[j])
	}
	return lits, keys
}

// and returns the canonical conjunction c ∧ d by merging the sorted lists.
func (c Conj) and(d Conj) Conj {
	if len(c.lits) == 0 {
		return d
	}
	if len(d.lits) == 0 {
		return c
	}
	return mkConj(mergeSorted(c, d))
}

// reduceRaw drops literals that are entailed by another literal of the
// list (e.g. type(σ) entails ¬err in the type-state theory), keeping one
// representative of equivalent literals. The result denotes the same set
// and is syntactically smaller.
func reduceRaw(lits []Lit, keys []string, th Theory) ([]Lit, []string) {
	if th == nil || len(lits) < 2 {
		return lits, keys
	}
	drop := make([]bool, len(lits))
	any := false
	for i, li := range lits {
		for j, lj := range lits {
			if i == j || keys[i] == keys[j] {
				continue
			}
			if th.Implies(lj, li) && (!th.Implies(li, lj) || j < i) {
				drop[i] = true
				any = true
				break
			}
		}
	}
	if !any {
		return lits, keys
	}
	outL := make([]Lit, 0, len(lits))
	outK := make([]string, 0, len(keys))
	for i := range lits {
		if !drop[i] {
			outL = append(outL, lits[i])
			outK = append(outK, keys[i])
		}
	}
	return outL, outK
}

// reduce applies reduceRaw to a conjunction.
func (c Conj) reduce(th Theory) Conj {
	lits, keys := reduceRaw(c.lits, c.keys, th)
	if len(lits) == len(c.lits) {
		return c
	}
	return mkConj(lits, keys)
}

// Implies reports whether c entails d: every literal of d is entailed by
// some literal of c. This is the fast, incomplete entailment check of
// Figs 9/11 (f ⪯ f'). Both literal lists are key-sorted, so the syntactic
// subset part is a linear merge; the theory part handles the rest.
func (c Conj) Implies(d Conj, th Theory) bool {
	for j, ld := range d.lits {
		ok := false
		for i, lc := range c.lits {
			if c.keys[i] == d.keys[j] || (th != nil && th.Implies(lc, ld)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// DNF is a disjunction of conjunctions. nil is false; a DNF containing an
// empty Conj is true (once simplified).
type DNF []Conj

// DTrue and DFalse are the boolean constants in DNF form.
func DTrue() DNF  { return DNF{Conj{}} }
func DFalse() DNF { return nil }

// IsFalse reports whether the DNF has no disjuncts.
func (d DNF) IsFalse() bool { return len(d) == 0 }

// IsTrue reports whether some disjunct is the empty conjunction.
func (d DNF) IsTrue() bool {
	for _, c := range d {
		if c.Size() == 0 {
			return true
		}
	}
	return false
}

// Size is the total syntactic size.
func (d DNF) Size() int {
	n := 0
	for _, c := range d {
		n += c.Size()
	}
	return n
}

func (d DNF) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		if len(d) > 1 && c.Size() > 1 {
			parts[i] = "(" + c.String() + ")"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " ∨ ")
}

// Eval evaluates the DNF under a literal valuation.
func (d DNF) Eval(eval func(Lit) bool) bool {
	for _, c := range d {
		if c.Eval(eval) {
			return true
		}
	}
	return false
}

// Or returns the disjunction d ∨ e with unsatisfiable and duplicate
// disjuncts removed.
func (d DNF) Or(e DNF, th Theory) DNF {
	out := make(DNF, 0, len(d)+len(e))
	seen := make(map[string]bool)
	for _, c := range append(append(DNF{}, d...), e...) {
		if c.unsat(th) {
			continue
		}
		c = c.reduce(th)
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// And returns the conjunction d ∧ e, distributing into DNF, with
// unsatisfiable and duplicate disjuncts removed.
func (d DNF) And(e DNF, th Theory) DNF {
	var out DNF
	seen := make(map[string]bool)
	for _, c1 := range d {
		for _, c2 := range e {
			// Merge first and test satisfiability before paying for the
			// joined key: most products of large formulas are pruned here.
			lits, keys := mergeSorted(c1, c2)
			if unsatRaw(lits, th) {
				continue
			}
			lits, keys = reduceRaw(lits, keys, th)
			c := mkConj(lits, keys)
			k := c.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// SortBySize orders disjuncts by syntactic size (then by key, for
// determinism), as required by toDNF in Fig 8.
func (d DNF) SortBySize() DNF {
	out := append(DNF{}, d...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() < out[j].Size()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// Simplify removes disjuncts subsumed by earlier (shorter) ones: a disjunct
// is dropped if it entails a kept disjunct, which means its denotation is
// contained in the kept one's and removing it preserves δ (Fig 8).
func (d DNF) Simplify(th Theory) DNF {
	sorted := d.SortBySize()
	var out DNF
	for _, c := range sorted {
		redundant := false
		for _, kept := range out {
			if c.Implies(kept, th) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	return out
}

// DropK implements dropk of Fig 8: keep the first k−1 disjuncts by size plus
// the shortest disjunct that holds at the current (p, d) — supplied as the
// holds predicate. If no disjunct holds, the first k disjuncts are kept
// (the retention condition of approx is vacuous in that case).
func (d DNF) DropK(k int, holds func(Conj) bool) DNF {
	if len(d) <= k {
		return d
	}
	keep := k - 1
	if keep < 0 {
		keep = 0
	}
	out := append(DNF{}, d[:keep]...)
	for _, c := range d {
		if holds(c) {
			// Already kept?
			dup := false
			for _, o := range out {
				if o.Key() == c.Key() {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, c)
			}
			return out
		}
	}
	// No disjunct holds at (p, d); keep the first k.
	return append(out, d[keep:k]...)
}

// Approx is the generic under-approximation operator of §4.1:
// simplify ∘ toDNF, followed by dropk when more than k disjuncts remain.
// k ≤ 0 disables dropping (the "no under-approximation" ablation).
func Approx(f Formula, th Theory, k int, holds func(Conj) bool) DNF {
	d := ToDNF(f, th).Simplify(th)
	if k <= 0 || len(d) <= k {
		return d
	}
	return d.DropK(k, holds)
}

// ApproxDNF is Approx for an already-converted DNF.
func ApproxDNF(d DNF, th Theory, k int, holds func(Conj) bool) DNF {
	d = d.Simplify(th)
	if k <= 0 || len(d) <= k {
		return d
	}
	return d.DropK(k, holds)
}
