// Package formula implements the generic boolean-formula machinery of the
// backward meta-analysis (§4.1 of the paper). Formulas are built over
// analysis-specific primitive formulas (Fig 9 for type-state, the h.o/v.o/f.o
// primitives for thread-escape); the package provides the DNF representation
// and the toDNF, simplify, and dropk operations of Fig 8, combined into the
// generic under-approximation operator approx.
//
// The kernel runs on interned literals: a per-analysis Universe maps each
// Lit to a dense uint32 ID and memoizes the theory relations as bitset rows,
// so the hot operations work on sorted integer slices and 64-bit hashes
// rather than joined string keys. A DNF/Conj remembers its Universe; only
// formulas built against the same Universe may be combined.
package formula

import (
	"sort"
	"strings"

	"tracer/internal/uset"
)

// Prim is a primitive formula. Implementations must be immutable values; Key
// must uniquely identify the primitive within its theory.
type Prim interface {
	Key() string
	String() string
}

// Lit is a possibly negated primitive formula.
type Lit struct {
	P   Prim
	Neg bool
}

// Key returns a canonical identity for the literal. Hot paths avoid calling
// it repeatedly: a Universe interns each distinct key to a dense ID once.
func (l Lit) Key() string {
	if l.Neg {
		return "!" + l.P.Key()
	}
	return l.P.Key()
}

func (l Lit) String() string {
	if l.Neg {
		return "¬" + l.P.String()
	}
	return l.P.String()
}

// Negate returns the literal with flipped sign.
func (l Lit) Negate() Lit { return Lit{l.P, !l.Neg} }

// Theory supplies the analysis-specific reasoning the generic machinery
// needs: how to negate a literal, when one literal entails another (used by
// simplify, the ⪯ of Figs 9/11), and when two literals are mutually
// exclusive (used to prune unsatisfiable disjuncts). Implies and Contradicts
// are consulted through a Universe's memo rows, at most once per literal
// pair per universe.
type Theory interface {
	// NegLit rewrites the negation of a positive literal l into an
	// equivalent disjunction of positive literals (e.g. ¬v.L ≡ v.E ∨ v.N for
	// thread-escape). It returns ok=false when the theory keeps signed
	// literals instead.
	NegLit(l Lit) (alts []Lit, ok bool)
	// Implies reports whether δ(a) ⊆ δ(b).
	Implies(a, b Lit) bool
	// Contradicts reports whether δ(a) ∩ δ(b) = ∅. It may be incomplete
	// (returning false is always safe).
	Contradicts(a, b Lit) bool
}

// Conj is a conjunction of literals, stored as interned IDs sorted by
// literal key and deduplicated, with a precomputed hash — entailment,
// contradiction, and deduplication checks are the meta-analysis's hottest
// paths and never touch strings. The zero Conj is true.
type Conj struct {
	u    *Universe
	ids  []uint32 // canonical (key-sorted, deduplicated) literal IDs
	hash uint64   // FNV-1a over ids; 0 for the empty conjunction
	sig  uint64   // presence signature: OR of 1<<(id&63) over ids
}

// NewConj builds a canonical conjunction from literals, interning them into
// u (which must be non-nil when lits is non-empty).
func NewConj(u *Universe, lits ...Lit) Conj {
	if len(lits) == 0 {
		return Conj{}
	}
	ids := make([]uint32, len(lits))
	for i, l := range lits {
		ids[i] = u.LitID(l)
	}
	rank := u.view.Load().rank
	sort.Slice(ids, func(i, j int) bool { return rank[ids[i]] < rank[ids[j]] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return mkConj(u, out)
}

// mkConj finalizes a canonical (sorted, deduplicated) id list, computing the
// identity hash and the presence signature in one pass. The signature maps
// each id to bit id&63, so it is stable as the universe grows: a set bit
// means "some literal with this residue is present", and superset tests on
// signatures are a sound necessary condition for subsumption.
func mkConj(u *Universe, ids []uint32) Conj {
	if len(ids) == 0 {
		return Conj{}
	}
	h := uint64(fnvOffset)
	var sig uint64
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime
		sig |= 1 << (id & 63)
	}
	return Conj{u: u, ids: ids, hash: h, sig: sig}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IDs returns the interned literal IDs in canonical order. The result must
// not be mutated.
func (c Conj) IDs() []uint32 { return c.ids }

// Hash returns the conjunction's precomputed identity hash.
func (c Conj) Hash() uint64 { return c.hash }

// Equal reports whether c and d are the same canonical conjunction.
func (c Conj) Equal(d Conj) bool { return c.hash == d.hash && equalIDs(c.ids, d.ids) }

// Fingerprint returns an order-sensitive 64-bit fingerprint of d for memo
// keys; pair it with Equal to resolve collisions.
func (d DNF) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	for _, c := range d {
		h ^= c.hash
		h *= fnvPrime
	}
	return h
}

// Equal reports whether d and e are structurally identical: the same cubes
// in the same order. DNF construction is deterministic, so structural
// equality is the right identity for memoizing DNF-valued functions.
func (d DNF) Equal(e DNF) bool {
	if len(d) != len(e) {
		return false
	}
	for i := range d {
		if d[i].hash != e[i].hash || !equalIDs(d[i].ids, e[i].ids) {
			return false
		}
	}
	return true
}

// Retain returns the sub-conjunction of literals at indices where keep is
// true, preserving canonical order.
func (c Conj) Retain(keep func(i int) bool) Conj {
	ids := make([]uint32, 0, len(c.ids))
	for i := range c.ids {
		if keep(i) {
			ids = append(ids, c.ids[i])
		}
	}
	return mkConj(c.u, ids)
}

// SingletonLit reports whether the DNF is exactly one single-literal
// disjunct and returns that literal; the meta-analysis uses it to detect
// identity weakest preconditions.
func (d DNF) SingletonLit() (Lit, bool) {
	if len(d) == 1 && len(d[0].ids) == 1 {
		return d[0].u.Lit(d[0].ids[0]), true
	}
	return Lit{}, false
}

// Lits returns the representative literals in canonical order.
func (c Conj) Lits() []Lit {
	if len(c.ids) == 0 {
		return nil
	}
	v := c.u.view.Load()
	out := make([]Lit, len(c.ids))
	for i, id := range c.ids {
		out[i] = v.lits[id]
	}
	return out
}

// Size is the syntactic size of the conjunction (its literal count).
func (c Conj) Size() int { return len(c.ids) }

// Key returns a canonical identity for the conjunction, materialized lazily
// (debug/API paths; the kernel itself identifies conjunctions by hash+ids).
func (c Conj) Key() string {
	if len(c.ids) == 0 {
		return ""
	}
	return c.u.view.Load().joined(c.ids)
}

func (c Conj) String() string {
	if len(c.ids) == 0 {
		return "true"
	}
	lits := c.Lits()
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Eval evaluates the conjunction under a literal valuation.
func (c Conj) Eval(eval func(Lit) bool) bool {
	if len(c.ids) == 0 {
		return true
	}
	v := c.u.view.Load()
	for _, id := range c.ids {
		if !eval(v.lits[id]) {
			return false
		}
	}
	return true
}

// maskOf builds a bitset of the given ids, reusing buf when wide enough so
// the common case stays on the caller's stack.
func maskOf(buf []uint64, ids []uint32) uset.Words {
	max := uint32(0)
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	w := int(max>>6) + 1
	var m uset.Words
	if w <= len(buf) {
		m = uset.Words(buf[:w])
		for i := range m {
			m[i] = 0
		}
	} else {
		m = make(uset.Words, w)
	}
	for _, id := range ids {
		m.SetBit(id)
	}
	return m
}

// unsatIDs reports whether a canonical id list contains two contradictory
// literals (syntactic complement or theory contradiction). Each literal's
// contradiction-memo row is intersected against the mask of literals already
// admitted, so the theory is never re-consulted on the hot path.
func unsatIDs(u *Universe, v *uview, ids []uint32) bool {
	max := ids[0]
	for _, id := range ids[1:] {
		if id > max {
			max = id
		}
	}
	w := int(max>>6) + 1
	var buf [8]uint64
	var mask uset.Words
	if w <= len(buf) {
		mask = uset.Words(buf[:w])
	} else {
		mask = make(uset.Words, w)
	}
	mask.SetBit(ids[0])
	var hits int64
	unsat := false
	for _, id := range ids[1:] {
		if u.conRowBatch(v, id, &hits).Intersects(mask) {
			unsat = true
			break
		}
		mask.SetBit(id)
	}
	if hits > 0 {
		u.memoHits.Add(hits)
	}
	return unsat
}

// reduceIDs drops literals entailed by another literal of the list (e.g.
// type(σ) entails ¬err in the type-state theory), keeping one representative
// of equivalent literals with the seed kernel's tie-break (the earlier
// literal wins). Returns the input slice unchanged when nothing drops.
func reduceIDs(u *Universe, v *uview, ids []uint32) []uint32 {
	n := len(ids)
	out := ids
	removed := 0
	var hits int64
	for i := 0; i < n; i++ {
		li := ids[i]
		// {a : a entails li}; the diagonal bit is i itself
		ri := u.impRowBatch(v, li, &hits)
		dropI := false
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			lj := ids[j]
			if ri.Has(lj) && (j < i || !u.impRowBatch(v, lj, &hits).Has(li)) {
				dropI = true
				break
			}
		}
		if dropI {
			if removed == 0 {
				out = append(make([]uint32, 0, n-1), ids[:i]...)
			}
			removed++
		} else if removed > 0 {
			out = append(out, ids[i])
		}
	}
	if hits > 0 {
		u.memoHits.Add(hits)
	}
	return out
}

// mergeIDs merges two canonically sorted id lists into dst[:0],
// deduplicating; rank is the universe's key order, so the result is canonical
// again. And passes a reusable scratch buffer as dst — most products die in
// the unsat/duplicate filters, so the merge result is copied out only for
// the few that survive.
func mergeIDs(dst []uint32, rank []int32, a, b []uint32) []uint32 {
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x == y:
			out = append(out, x)
			i++
			j++
		case rank[x] < rank[y]:
			out = append(out, x)
			i++
		default:
			out = append(out, y)
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// crossUnsat reports whether some literal of ids2 contradicts a literal of
// the cube whose ids are set in mask1. When both operand cubes of a product
// are internally contradiction-free — which prepAndSides established for
// every non-skipped And operand — a contradictory pair in the merged cube
// must be a cross pair, so this scan is equivalent to the full pairwise scan
// over the merged id list while loading only len(ids2) memo rows and running
// before the merge is materialized. A literal shared by both sides is
// excluded from its own row test: the merged cube contains it once, and the
// pairwise scan never tested a literal against itself.
func crossUnsat(u *Universe, v *uview, mask1 uset.Words, ids2 []uint32) bool {
	var hits int64
	unsat := false
	for _, b := range ids2 {
		row := u.conRowBatch(v, b, &hits)
		if !row.Intersects(mask1) {
			continue
		}
		if mask1.Has(b) && row.Has(b) {
			// Shared literal whose row has its own diagonal bit (a theory
			// self-contradiction): re-test without it.
			mask1.ClearBit(b)
			hit := row.Intersects(mask1)
			mask1.SetBit(b)
			if !hit {
				continue
			}
		}
		unsat = true
		break
	}
	if hits > 0 {
		u.memoHits.Add(hits)
	}
	return unsat
}

// impliesMask reports whether every literal of d is entailed by some literal
// in mask (a bitset of the antecedent conjunction's ids).
func impliesMask(u *Universe, v *uview, mask uset.Words, d []uint32) bool {
	var hits int64
	ok := true
	for _, ld := range d {
		if !u.impRowBatch(v, ld, &hits).Intersects(mask) {
			ok = false
			break
		}
	}
	if hits > 0 {
		u.memoHits.Add(hits)
	}
	return ok
}

// Implies reports whether c entails d: every literal of d is entailed by
// some literal of c. This is the fast, incomplete entailment check of
// Figs 9/11 (f ⪯ f'), answered from the universe's entailment rows.
func (c Conj) Implies(d Conj) bool {
	if len(d.ids) == 0 {
		return true
	}
	if len(c.ids) == 0 {
		return false
	}
	u := c.u
	v := u.view.Load()
	var buf [8]uint64
	return impliesMask(u, v, maskOf(buf[:], c.ids), d.ids)
}

// ConjSet is a deduplication set of canonical conjunctions, keyed by the
// precomputed hash with an id-slice check on collisions. The zero value is
// ready to use. Not safe for concurrent use.
//
// Small sets — the overwhelming majority under dropk-bounded DNF widths —
// stay in an inline linear array, so they cost no allocation at all. Larger
// sets move to an open-addressed index table over an insertion-order element
// slice: the table holds 4-byte indices (zero meaning empty, so a freshly
// zeroed table needs no -1 fill pass), which keeps escalation and doubling
// an order of magnitude lighter than a table of inline Conj slots or a Go
// map with a per-bucket slice behind every distinct hash.
type ConjSet struct {
	n     int
	small [conjSetSmallMax]Conj
	elems []Conj  // insertion order
	slots []int32 // linear probing; len is a power of two; value = elem index + 1
}

const conjSetSmallMax = 16

// Add inserts c and reports whether it was absent.
func (s *ConjSet) Add(c Conj) bool {
	if s.slots == nil {
		for _, o := range s.small[:s.n] {
			if o.hash == c.hash && equalIDs(o.ids, c.ids) {
				return false
			}
		}
		if s.n < conjSetSmallMax {
			s.small[s.n] = c
			s.n++
			return true
		}
		s.elems = append(make([]Conj, 0, 2*conjSetSmallMax), s.small[:s.n]...)
		s.n = 0
		s.rebuild(4 * conjSetSmallMax)
	}
	if s.lookup(c) {
		return false
	}
	if 2*(len(s.elems)+1) > len(s.slots) { // keep load factor under 1/2
		s.rebuild(2 * len(s.slots))
	}
	s.elems = append(s.elems, c)
	s.place(int32(len(s.elems)))
	return true
}

// Has reports whether c is present.
func (s *ConjSet) Has(c Conj) bool {
	if s.slots == nil {
		for _, o := range s.small[:s.n] {
			if o.hash == c.hash && equalIDs(o.ids, c.ids) {
				return true
			}
		}
		return false
	}
	return s.lookup(c)
}

func (s *ConjSet) lookup(c Conj) bool {
	mask := uint64(len(s.slots) - 1)
	for i := c.hash & mask; ; i = (i + 1) & mask {
		ei := s.slots[i]
		if ei == 0 {
			return false
		}
		o := &s.elems[ei-1]
		if o.hash == c.hash && equalIDs(o.ids, c.ids) {
			return true
		}
	}
}

// place writes the 1-based element index into its probe slot; the
// load-factor bound guarantees a free slot exists.
func (s *ConjSet) place(ei int32) {
	mask := uint64(len(s.slots) - 1)
	i := s.elems[ei-1].hash & mask
	for s.slots[i] != 0 {
		i = (i + 1) & mask
	}
	s.slots[i] = ei
}

func (s *ConjSet) rebuild(n int) {
	s.slots = make([]int32, n)
	for i := range s.elems {
		s.place(int32(i + 1))
	}
}

// DNF is a disjunction of conjunctions. nil is false; a DNF containing an
// empty Conj is true (once simplified).
type DNF []Conj

// DTrue and DFalse are the boolean constants in DNF form.
func DTrue() DNF  { return DNF{Conj{}} }
func DFalse() DNF { return nil }

// IsFalse reports whether the DNF has no disjuncts.
func (d DNF) IsFalse() bool { return len(d) == 0 }

// IsTrue reports whether some disjunct is the empty conjunction.
func (d DNF) IsTrue() bool {
	for _, c := range d {
		if c.Size() == 0 {
			return true
		}
	}
	return false
}

// Size is the total syntactic size.
func (d DNF) Size() int {
	n := 0
	for _, c := range d {
		n += c.Size()
	}
	return n
}

func (d DNF) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		if len(d) > 1 && c.Size() > 1 {
			parts[i] = "(" + c.String() + ")"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " ∨ ")
}

// Eval evaluates the DNF under a literal valuation.
func (d DNF) Eval(eval func(Lit) bool) bool {
	for _, c := range d {
		if c.Eval(eval) {
			return true
		}
	}
	return false
}

// universe returns the Universe the DNF's conjunctions were built against
// (nil only when every disjunct is the empty conjunction, where no theory
// reasoning is needed).
func (d DNF) universe() *Universe {
	for _, c := range d {
		if c.u != nil {
			return c.u
		}
	}
	return nil
}

// Or returns the disjunction d ∨ e with unsatisfiable and duplicate
// disjuncts removed. It iterates both operands in place.
func (d DNF) Or(e DNF) DNF {
	u := d.universe()
	if u == nil {
		u = e.universe()
	}
	var v *uview
	if u != nil {
		v = u.view.Load()
	}
	out := make(DNF, 0, len(d)+len(e))
	var seen ConjSet
	out = orInto(out, &seen, u, v, d)
	return orInto(out, &seen, u, v, e)
}

func orInto(out DNF, seen *ConjSet, u *Universe, v *uview, d DNF) DNF {
	var skips int64
	for _, c := range d {
		if len(c.ids) >= 2 {
			impCap, conCap := capUnion(u, v, c.ids)
			if conCap&c.sig != 0 {
				if unsatIDs(u, v, c.ids) {
					continue
				}
			} else {
				skips++ // signature proves no contradictory pair
			}
			if impCap&c.sig != 0 {
				if ids := reduceIDs(u, v, c.ids); len(ids) != len(c.ids) {
					c = mkConj(u, ids)
				}
			} else {
				skips++ // signature proves no entailing pair
			}
		}
		if seen.Add(c) {
			out = append(out, c)
		}
	}
	if skips > 0 {
		u.sigSkips.Add(skips)
	}
	return out
}

// capUnion ORs the capability signatures of an id list: impCap covers every
// id some listed literal strictly entails, conCap every id some listed
// literal contradicts. A zero intersection with a conjunction's presence
// signature proves the corresponding pairwise scan would find nothing.
func capUnion(u *Universe, v *uview, ids []uint32) (impCap, conCap uint64) {
	for _, id := range ids {
		imp, con := u.capOf(v, id)
		impCap |= imp
		conCap |= con
	}
	return impCap, conCap
}

// And returns the conjunction d ∧ e, distributing into DNF, with
// unsatisfiable and duplicate disjuncts removed.
func (d DNF) And(e DNF) DNF {
	if len(d) == 0 || len(e) == 0 {
		return nil
	}
	u := d.universe()
	if u == nil {
		u = e.universe()
	}
	var v *uview
	if u != nil {
		v = u.view.Load()
		u.products.Add(int64(len(d)) * int64(len(e)))
	}
	// Per-operand-disjunct capability signatures, computed once per call and
	// tested per product: a merged cube can only contain a contradictory
	// (resp. entailing) pair if some literal's contradiction (entailment)
	// signature meets the merged presence signature. An operand disjunct that
	// is internally unsatisfiable poisons every product it touches, so its
	// whole row/column is skipped outright.
	var sdBuf, seBuf [8]andSide
	sd, se := prepAndSides(sdBuf[:0], u, v, d), prepAndSides(seBuf[:0], u, v, e)
	out, _ := andCore(u, v, d, sd, e, se, nil)
	return out
}

// AndChain folds d ∧ subs[0] ∧ subs[1] ∧ … into DNF, stopping early when
// the accumulator collapses to false or poll (if non-nil) reports the budget
// tripped — in which case the partial conjunction computed so far is
// returned, exactly as a caller-side And loop would.
//
// The point of the dedicated entry is incremental reuse: And derives each
// operand disjunct's filter state (capability signatures plus an internal
// satisfiability check) from scratch on every call, so a fold over And
// re-derives the accumulator's state once per link. AndChain instead carries
// the survivors' state across links — a product's capability signature is
// the union of its parents' (an over-approximation after literal reduction,
// which can only cost a redundant scan, never an unsound skip), and a
// survivor is contradiction-free by construction. A view change mid-chain
// (new literals interned) invalidates carried signatures; the fold detects
// that and re-derives the state for the next link.
func (d DNF) AndChain(subs []DNF, poll func() bool) DNF {
	acc := d
	var accSides []andSide
	// Two survivor-side buffers, alternated per link: the incoming accSides
	// may occupy the one the previous link wrote, so the next link must
	// append into the other.
	var accBuf, seBuf, outA, outB [8]andSide
	outBufs := [2][]andSide{outA[:0], outB[:0]}
	flip := 0
	var u *Universe
	var v *uview
	for _, s := range subs {
		if poll != nil && !poll() {
			break
		}
		if len(acc) == 0 || len(s) == 0 {
			return nil
		}
		if u == nil {
			u = acc.universe()
			if u == nil {
				u = s.universe()
			}
			if u != nil {
				v = u.view.Load()
			}
		}
		if u != nil {
			if cur := u.view.Load(); cur != v {
				v = cur
				accSides = nil
			}
			u.products.Add(int64(len(acc)) * int64(len(s)))
		}
		if accSides == nil {
			accSides = prepAndSides(accBuf[:0], u, v, acc)
		}
		se := prepAndSides(seBuf[:0], u, v, s)
		acc, accSides = andCore(u, v, acc, accSides, s, se, outBufs[flip][:0])
		flip = 1 - flip
	}
	return acc
}

// andCore is the product loop shared by And and AndChain: conjoin every
// (d, e) disjunct pair under the precomputed filter states sd and se. When
// sideBuf is non-nil it also returns each survivor's filter state (appended
// into sideBuf), aligned with the returned DNF.
func andCore(u *Universe, v *uview, d DNF, sd []andSide, e DNF, se []andSide, sideBuf []andSide) (DNF, []andSide) {
	var skips int64
	var out DNF
	outSides := sideBuf
	// A lone product cannot collide with anything, so the dedup set — and its
	// hashing — is bypassed entirely for 1×1 conjunctions, the bulk of the
	// backward walk's And traffic.
	single := len(d) == 1 && len(e) == 1
	var seen ConjSet
	var scratch []uint32
	// Survivor id lists are carved out of a shared arena: many small merged
	// cubes become a few chunk allocations. Full slice expressions keep later
	// appends from clobbering handed-out chunks.
	var arena []uint32
	var buf1 [8]uint64
	for i1, c1 := range d {
		s1 := sd[i1]
		if s1.skip {
			continue
		}
		var mask1 uset.Words
		if len(c1.ids) > 0 {
			mask1 = maskOf(buf1[:], c1.ids)
		}
		for i2, c2 := range e {
			s2 := se[i2]
			if s2.skip {
				continue
			}
			var ids []uint32
			var sig uint64
			scratched := false // ids aliases scratch: copy before retaining
			switch {
			case len(c1.ids) == 0:
				ids, sig = c2.ids, c2.sig
			case len(c2.ids) == 0:
				ids, sig = c1.ids, c1.sig
			default:
				// Both operands are internally contradiction-free, so an
				// unsatisfiable product must pair a c1 literal against a c2
				// literal — testable from c2's rows against c1's mask before
				// paying for the merge. Most doomed products die here without
				// ever materializing their id list.
				if (s1.conCap&c2.sig)|(s2.conCap&c1.sig) != 0 {
					if crossUnsat(u, v, mask1, c2.ids) {
						continue
					}
				} else {
					skips++ // signatures prove no contradictory cross pair
				}
				scratch = mergeIDs(scratch, v.rank, c1.ids, c2.ids)
				ids, sig = scratch, c1.sig|c2.sig
				scratched = true
			}
			if len(ids) >= 2 {
				if (s1.impCap|s2.impCap)&sig != 0 {
					// reduceIDs allocates only when it drops a literal, so a
					// shorter result no longer aliases the scratch buffer.
					if r := reduceIDs(u, v, ids); len(r) != len(ids) {
						ids, scratched = r, false
					}
				} else {
					skips++
				}
			}
			c := mkConj(u, ids)
			if !single && seen.Has(c) {
				continue
			}
			if scratched {
				if len(arena)+len(ids) > cap(arena) {
					// Start small — most And calls keep only a cube or two —
					// and double per exhausted chunk.
					n := 2 * cap(arena)
					if n < 16 {
						n = 16
					}
					if len(ids) > n {
						n = len(ids)
					}
					arena = make([]uint32, 0, n)
				}
				start := len(arena)
				arena = append(arena, ids...)
				c.ids = arena[start:len(arena):len(arena)]
			}
			if !single {
				seen.Add(c)
			}
			if out == nil {
				// First survivor: size for the common shape (few survivors
				// per operand pair) without paying for calls that die empty.
				n := len(d) + len(e)
				if p := len(d) * len(e); p < n {
					n = p
				}
				out = make(DNF, 0, n)
			}
			out = append(out, c)
			if outSides != nil {
				// A survivor is contradiction-free by construction (both
				// parents are, and their cross pairs were just checked); its
				// capability signature is the union of its parents', which
				// over-approximates after literal reduction — safe for a
				// skip gate.
				outSides = append(outSides, andSide{
					impCap: s1.impCap | s2.impCap,
					conCap: s1.conCap | s2.conCap,
				})
			}
		}
	}
	if skips > 0 {
		u.sigSkips.Add(skips)
	}
	return out, outSides
}

// andSide is one operand disjunct's precomputed filter state for And.
type andSide struct {
	skip           bool // internally unsatisfiable: every product dies
	impCap, conCap uint64
}

// prepAndSides appends each disjunct's filter state to buf, which And hands
// in as a stack array so typical (narrow) operands allocate nothing.
func prepAndSides(buf []andSide, u *Universe, v *uview, d DNF) []andSide {
	out := buf
	if cap(out) < len(d) {
		out = make([]andSide, 0, len(d))
	}
	out = out[:len(d)]
	for i, c := range d {
		s := &out[i]
		*s = andSide{}
		s.impCap, s.conCap = capUnion(u, v, c.ids)
		// The signature gate is exact here too: conCap∩sig == 0 proves the
		// disjunct contradiction-free without a scan.
		if len(c.ids) >= 2 && s.conCap&c.sig != 0 && unsatIDs(u, v, c.ids) {
			s.skip = true
		}
	}
	return out
}

// SortBySize orders disjuncts by syntactic size (then by joined key, for
// determinism), as required by toDNF in Fig 8. The tie-break compares
// interned keys positionally without materializing the joined string.
func (d DNF) SortBySize() DNF {
	var v *uview
	if u := d.universe(); u != nil {
		v = u.view.Load()
	}
	// DNFs that have been through the pipeline once are usually already in
	// order; detecting that saves the defensive copy.
	if d.sortedBySize(v) {
		return d
	}
	out := append(DNF{}, d...)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].ids) != len(out[j].ids) {
			return len(out[i].ids) < len(out[j].ids)
		}
		if v == nil {
			return false
		}
		return v.lessJoined(out[i].ids, out[j].ids)
	})
	return out
}

func (d DNF) sortedBySize(v *uview) bool {
	for i := 1; i < len(d); i++ {
		if len(d[i-1].ids) < len(d[i].ids) {
			continue
		}
		if len(d[i-1].ids) > len(d[i].ids) {
			return false
		}
		if v != nil && v.lessJoined(d[i].ids, d[i-1].ids) {
			return false
		}
	}
	return true
}

// Simplify removes disjuncts subsumed by earlier (shorter) ones: a disjunct
// is dropped if it entails a kept disjunct, which means its denotation is
// contained in the kept one's and removing it preserves δ (Fig 8).
//
// Candidate×kept pairs are screened before the full entailment check by two
// index structures, both sound necessary conditions, so most pairs never
// dereference a cube:
//
//   - One-watched-literal groups: kept disjuncts sharing a first id w live in
//     one group. A candidate can only entail them if some candidate literal
//     entails w, i.e. imp(w) intersects the candidate's mask — one row test
//     dismisses the whole group.
//   - Signature superset test: a candidate entails a kept disjunct only if
//     the kept presence signature is covered by the candidate's capability
//     signature (the ids its literals entail, plus its own ids for the
//     diagonal). kept.sig &^ csig != 0 disproves subsumption bitwise.
//
// Dismissed pairs count on formula.sig_filtered; executed full checks on
// formula.subsumption_checks. The redundancy decision is an existential over
// kept disjuncts, so reordering the checks by group never changes the output.
func (d DNF) Simplify() DNF {
	if len(d) <= 1 {
		return d // nothing to subsume or reorder; skip the sort copy
	}
	sorted := d.SortBySize()
	u := d.universe()
	if u == nil { // every disjunct is the empty conjunction
		return sorted[:1]
	}
	if len(sorted[0].ids) == 0 {
		return sorted[:1] // a true disjunct subsumes everything
	}
	v := u.view.Load()
	out := make(DNF, 0, len(sorted))
	// A group's first member lives inline; the overflow slice is only
	// allocated for groups that accumulate a second kept disjunct, which is
	// the minority — most first ids are unique within a DNF.
	type watchGroup struct {
		w     uint32 // shared first id of the group's kept disjuncts
		first int32
		rest  []int32
	}
	var groups []watchGroup
	var checks, filtered int64
	var buf [8]uint64
	for _, c := range sorted {
		mask := maskOf(buf[:], c.ids)
		var csig uint64
		for _, id := range c.ids {
			imp, _ := u.capOf(v, id)
			csig |= imp | 1<<(id&63)
		}
		redundant := false
		for gi := range groups {
			g := &groups[gi]
			if !u.impRow(v, g.w).Intersects(mask) {
				filtered += int64(1 + len(g.rest))
				continue
			}
			subsumedBy := func(oi int32) bool {
				kept := out[oi]
				if kept.sig&^csig != 0 {
					filtered++
					return false
				}
				checks++
				return impliesMask(u, v, mask, kept.ids)
			}
			if subsumedBy(g.first) {
				redundant = true
				break
			}
			for _, oi := range g.rest {
				if subsumedBy(oi) {
					redundant = true
					break
				}
			}
			if redundant {
				break
			}
		}
		if !redundant {
			w := c.ids[0]
			placed := false
			for gi := range groups {
				if groups[gi].w == w {
					groups[gi].rest = append(groups[gi].rest, int32(len(out)))
					placed = true
					break
				}
			}
			if !placed {
				groups = append(groups, watchGroup{w: w, first: int32(len(out))})
			}
			out = append(out, c)
		}
	}
	u.subsumes.Add(checks)
	u.sigFiltered.Add(filtered)
	return out
}

// DropK implements dropk of Fig 8: keep the first k−1 disjuncts by size plus
// the shortest disjunct that holds at the current (p, d) — supplied as the
// holds predicate. If no disjunct holds, the first k disjuncts are kept
// (the retention condition of approx is vacuous in that case).
func (d DNF) DropK(k int, holds func(Conj) bool) DNF {
	if len(d) <= k {
		return d
	}
	keep := k - 1
	if keep < 0 {
		keep = 0
	}
	out := append(DNF{}, d[:keep]...)
	for _, c := range d {
		if holds(c) {
			// Already kept?
			dup := false
			for _, o := range out {
				if o.Equal(c) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, c)
			}
			return out
		}
	}
	// No disjunct holds at (p, d); keep the first k.
	return append(out, d[keep:k]...)
}

// Approx is the generic under-approximation operator of §4.1:
// simplify ∘ toDNF, followed by dropk when more than k disjuncts remain.
// k ≤ 0 disables dropping (the "no under-approximation" ablation).
func Approx(f Formula, u *Universe, k int, holds func(Conj) bool) DNF {
	d := ToDNF(f, u).Simplify()
	if k <= 0 || len(d) <= k {
		return d
	}
	return d.DropK(k, holds)
}

// ApproxDNF is Approx for an already-converted DNF.
func ApproxDNF(d DNF, k int, holds func(Conj) bool) DNF {
	d = d.Simplify()
	if k <= 0 || len(d) <= k {
		return d
	}
	return d.DropK(k, holds)
}
