package formula

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the DNF data structure: each
// property derives its formulas from a quick-generated seed so the
// structures stay well-formed while the coverage stays randomized.

func formulaFromSeed(seed int64, nv, depth int) Formula {
	rng := rand.New(rand.NewSource(seed))
	return randFormula(rng, nv, depth)
}

// TestQuickDNFIdempotent: converting a DNF back to a formula and
// re-normalizing is semantically stable.
func TestQuickDNFIdempotent(t *testing.T) {
	u := newU()
	f := func(seed int64) bool {
		const nv = 4
		d1 := ToDNF(formulaFromSeed(seed, nv, 4), u)
		d2 := ToDNF(FromDNF(d1), u)
		for env := uint(0); env < 1<<nv; env++ {
			if d1.Eval(evalEnv(env)) != d2.Eval(evalEnv(env)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAndMonotone: δ(a ∧ b) ⊆ δ(a) and δ(a ∧ b) ⊆ δ(b).
func TestQuickAndMonotone(t *testing.T) {
	u := newU()
	f := func(s1, s2 int64) bool {
		const nv = 4
		a := ToDNF(formulaFromSeed(s1, nv, 3), u)
		b := ToDNF(formulaFromSeed(s2, nv, 3), u)
		ab := a.And(b)
		for env := uint(0); env < 1<<nv; env++ {
			ev := evalEnv(env)
			if ab.Eval(ev) && (!a.Eval(ev) || !b.Eval(ev)) {
				return false
			}
			if a.Eval(ev) && b.Eval(ev) && !ab.Eval(ev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrIsUnion: δ(a ∨ b) = δ(a) ∪ δ(b).
func TestQuickOrIsUnion(t *testing.T) {
	u := newU()
	f := func(s1, s2 int64) bool {
		const nv = 4
		a := ToDNF(formulaFromSeed(s1, nv, 3), u)
		b := ToDNF(formulaFromSeed(s2, nv, 3), u)
		or := a.Or(b)
		for env := uint(0); env < 1<<nv; env++ {
			ev := evalEnv(env)
			if or.Eval(ev) != (a.Eval(ev) || b.Eval(ev)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNotInvolutive: ¬¬f ≡ f through ToDNF.
func TestQuickNotInvolutive(t *testing.T) {
	u := newU()
	f := func(seed int64) bool {
		const nv = 4
		orig := formulaFromSeed(seed, nv, 4)
		d1 := ToDNF(orig, u)
		d2 := ToDNF(Not(Not(orig)), u)
		for env := uint(0); env < 1<<nv; env++ {
			if d1.Eval(evalEnv(env)) != d2.Eval(evalEnv(env)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortBySizeStable: SortBySize is a permutation (no disjunct lost
// or invented) with sizes non-decreasing.
func TestQuickSortBySizeStable(t *testing.T) {
	u := newU()
	f := func(seed int64) bool {
		d := ToDNF(formulaFromSeed(seed, 4, 4), u)
		s := d.SortBySize()
		if len(s) != len(d) {
			return false
		}
		seen := map[string]int{}
		for _, c := range d {
			seen[c.Key()]++
		}
		for i, c := range s {
			seen[c.Key()]--
			if i > 0 && s[i-1].Size() > c.Size() {
				return false
			}
		}
		for _, n := range seen {
			if n != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConjKeySorted: the interned canonical order within a conjunction
// is exactly the key-sorted order the string-keyed kernel used, so Key()
// strings come out byte-identical regardless of interning order.
func TestQuickConjKeySorted(t *testing.T) {
	u := newU()
	f := func(seed int64) bool {
		d := ToDNF(formulaFromSeed(seed, 4, 4), u)
		for _, c := range d {
			lits := c.Lits()
			for i := 1; i < len(lits); i++ {
				if lits[i-1].Key() > lits[i].Key() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortTieBreakJoinedKey: size ties in SortBySize are broken by the
// joined "&"-separated key string, exactly as the string-keyed kernel did.
func TestQuickSortTieBreakJoinedKey(t *testing.T) {
	u := newU()
	f := func(seed int64) bool {
		s := ToDNF(formulaFromSeed(seed, 4, 4), u).SortBySize()
		for i := 1; i < len(s); i++ {
			if s[i-1].Size() == s[i].Size() && s[i-1].Key() > s[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInternOrderIndependent: interning the same formula into two
// universes with different literal arrival orders yields byte-identical
// canonical DNFs. IDs are schedule-dependent; the canonical order must not
// be.
func TestQuickInternOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		const nv = 4
		orig := formulaFromSeed(seed, nv, 4)
		u1 := newU()
		d1 := ToDNF(orig, u1)
		// u2 sees the literals in reverse key order first.
		u2 := newU()
		pre := make([]Lit, 0, 2*nv)
		for v := nv - 1; v >= 0; v-- {
			pre = append(pre, lit(v, true), lit(v, false))
		}
		sort.Slice(pre, func(i, j int) bool { return pre[i].Key() > pre[j].Key() })
		for _, l := range pre {
			u2.LitID(l)
		}
		d2 := ToDNF(orig, u2)
		if len(d1) != len(d2) {
			return false
		}
		for i := range d1 {
			if d1[i].Key() != d2[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
