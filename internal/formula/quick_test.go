package formula

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the DNF data structure: each
// property derives its formulas from a quick-generated seed so the
// structures stay well-formed while the coverage stays randomized.

func formulaFromSeed(seed int64, nv, depth int) Formula {
	rng := rand.New(rand.NewSource(seed))
	return randFormula(rng, nv, depth)
}

// TestQuickDNFIdempotent: converting a DNF back to a formula and
// re-normalizing is semantically stable.
func TestQuickDNFIdempotent(t *testing.T) {
	th := mockTheory{}
	f := func(seed int64) bool {
		const nv = 4
		d1 := ToDNF(formulaFromSeed(seed, nv, 4), th)
		d2 := ToDNF(FromDNF(d1), th)
		for env := uint(0); env < 1<<nv; env++ {
			if d1.Eval(evalEnv(env)) != d2.Eval(evalEnv(env)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAndMonotone: δ(a ∧ b) ⊆ δ(a) and δ(a ∧ b) ⊆ δ(b).
func TestQuickAndMonotone(t *testing.T) {
	th := mockTheory{}
	f := func(s1, s2 int64) bool {
		const nv = 4
		a := ToDNF(formulaFromSeed(s1, nv, 3), th)
		b := ToDNF(formulaFromSeed(s2, nv, 3), th)
		ab := a.And(b, th)
		for env := uint(0); env < 1<<nv; env++ {
			ev := evalEnv(env)
			if ab.Eval(ev) && (!a.Eval(ev) || !b.Eval(ev)) {
				return false
			}
			if a.Eval(ev) && b.Eval(ev) && !ab.Eval(ev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrIsUnion: δ(a ∨ b) = δ(a) ∪ δ(b).
func TestQuickOrIsUnion(t *testing.T) {
	th := mockTheory{}
	f := func(s1, s2 int64) bool {
		const nv = 4
		a := ToDNF(formulaFromSeed(s1, nv, 3), th)
		b := ToDNF(formulaFromSeed(s2, nv, 3), th)
		or := a.Or(b, th)
		for env := uint(0); env < 1<<nv; env++ {
			ev := evalEnv(env)
			if or.Eval(ev) != (a.Eval(ev) || b.Eval(ev)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNotInvolutive: ¬¬f ≡ f through ToDNF.
func TestQuickNotInvolutive(t *testing.T) {
	th := mockTheory{}
	f := func(seed int64) bool {
		const nv = 4
		orig := formulaFromSeed(seed, nv, 4)
		d1 := ToDNF(orig, th)
		d2 := ToDNF(Not(Not(orig)), th)
		for env := uint(0); env < 1<<nv; env++ {
			if d1.Eval(evalEnv(env)) != d2.Eval(evalEnv(env)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortBySizeStable: SortBySize is a permutation (no disjunct lost
// or invented) with sizes non-decreasing.
func TestQuickSortBySizeStable(t *testing.T) {
	th := mockTheory{}
	f := func(seed int64) bool {
		d := ToDNF(formulaFromSeed(seed, 4, 4), th)
		s := d.SortBySize()
		if len(s) != len(d) {
			return false
		}
		seen := map[string]int{}
		for _, c := range d {
			seen[c.Key()]++
		}
		for i, c := range s {
			seen[c.Key()]--
			if i > 0 && s[i-1].Size() > c.Size() {
				return false
			}
		}
		for _, n := range seen {
			if n != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
