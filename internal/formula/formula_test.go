package formula

import (
	"math/rand"
	"strings"
	"testing"
)

// mockPrim is a tiny primitive theory for testing: variables b0..bN-1 over
// booleans, where an environment is a bitmask.
type mockPrim struct{ V int }

func (p mockPrim) Key() string    { return "b" + string(rune('0'+p.V)) }
func (p mockPrim) String() string { return p.Key() }

// mockTheory has no entailments or contradictions beyond the syntactic
// ones, like the thread-escape theory's fast checker.
type mockTheory struct{}

func (mockTheory) NegLit(l Lit) ([]Lit, bool) { return nil, false }
func (mockTheory) Implies(a, b Lit) bool      { return a == b }
func (mockTheory) Contradicts(a, b Lit) bool  { return false }

func lit(v int, neg bool) Lit { return Lit{P: mockPrim{v}, Neg: neg} }

// newU builds a fresh interning universe for one test (or one trial).
func newU() *Universe { return NewUniverse(mockTheory{}) }

// evalEnv evaluates a literal against a bitmask environment.
func evalEnv(env uint) func(Lit) bool {
	return func(l Lit) bool {
		val := env&(1<<uint(l.P.(mockPrim).V)) != 0
		if l.Neg {
			return !val
		}
		return val
	}
}

// randFormula builds a random formula over nv variables.
func randFormula(rng *rand.Rand, nv, depth int) Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		return FromLit(lit(rng.Intn(nv), rng.Intn(2) == 0))
	}
	switch rng.Intn(5) {
	case 0:
		return Not(randFormula(rng, nv, depth-1))
	case 1:
		return True()
	case 2:
		return False()
	case 3:
		return And(randFormula(rng, nv, depth-1), randFormula(rng, nv, depth-1))
	default:
		return Or(randFormula(rng, nv, depth-1), randFormula(rng, nv, depth-1))
	}
}

// TestToDNFEquivalence: ToDNF preserves semantics on random formulas over
// all environments.
func TestToDNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const nv = 4
	u := newU()
	for trial := 0; trial < 500; trial++ {
		f := randFormula(rng, nv, 4)
		d := ToDNF(f, u)
		for env := uint(0); env < 1<<nv; env++ {
			if f.Eval(evalEnv(env)) != d.Eval(evalEnv(env)) {
				t.Fatalf("ToDNF changed semantics of %s at env %b: dnf %s", f, env, d)
			}
		}
	}
}

// TestSimplifyEquivalence: Simplify preserves semantics.
func TestSimplifyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nv = 4
	u := newU()
	for trial := 0; trial < 500; trial++ {
		d := ToDNF(randFormula(rng, nv, 4), u)
		s := d.Simplify()
		if len(s) > len(d) {
			t.Fatalf("Simplify grew the formula: %d -> %d", len(d), len(s))
		}
		for env := uint(0); env < 1<<nv; env++ {
			if d.Eval(evalEnv(env)) != s.Eval(evalEnv(env)) {
				t.Fatalf("Simplify changed semantics of %s -> %s at env %b", d, s, env)
			}
		}
	}
}

// TestDropKUnderApproximates: DropK keeps a subset of disjuncts (so its
// denotation is contained in the input's) and, when some disjunct holds at
// the probe, retains one that holds.
func TestDropKUnderApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nv = 4
	u := newU()
	for trial := 0; trial < 500; trial++ {
		d := ToDNF(randFormula(rng, nv, 4), u).Simplify()
		env := uint(rng.Intn(1 << nv))
		holds := func(c Conj) bool { return c.Eval(evalEnv(env)) }
		for k := 1; k <= 3; k++ {
			got := d.DropK(k, holds)
			if len(got) > k {
				t.Fatalf("DropK(%d) kept %d disjuncts", k, len(got))
			}
			// Under-approximation: every kept disjunct appears in d.
			for _, c := range got {
				found := false
				for _, orig := range d {
					if orig.Key() == c.Key() {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("DropK invented disjunct %s", c)
				}
			}
			// Retention: if (p, d) ∈ δ(input) then (p, d) ∈ δ(output).
			if d.Eval(evalEnv(env)) && !got.Eval(evalEnv(env)) {
				t.Fatalf("DropK dropped the holding disjunct: %s -> %s at %b", d, got, env)
			}
		}
	}
}

// TestApproxContract checks both approx requirements of §4 together.
func TestApproxContract(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const nv = 4
	u := newU()
	for trial := 0; trial < 500; trial++ {
		f := randFormula(rng, nv, 4)
		env := uint(rng.Intn(1 << nv))
		holds := func(c Conj) bool { return c.Eval(evalEnv(env)) }
		for _, k := range []int{0, 1, 2, 5} {
			a := Approx(f, u, k, holds)
			for e := uint(0); e < 1<<nv; e++ {
				if a.Eval(evalEnv(e)) && !f.Eval(evalEnv(e)) {
					t.Fatalf("approx over-approximated %s -> %s at %b", f, a, e)
				}
			}
			if f.Eval(evalEnv(env)) && !a.Eval(evalEnv(env)) {
				t.Fatalf("approx lost the probe point: %s -> %s at %b", f, a, env)
			}
		}
	}
}

// TestConjCanonical: NewConj sorts, deduplicates, and keys canonically.
func TestConjCanonical(t *testing.T) {
	u := newU()
	c1 := NewConj(u, lit(2, false), lit(0, true), lit(2, false))
	c2 := NewConj(u, lit(0, true), lit(2, false))
	if c1.Key() != c2.Key() {
		t.Fatalf("keys differ: %q vs %q", c1.Key(), c2.Key())
	}
	if c1.Size() != 2 {
		t.Fatalf("dedup failed: %v", c1)
	}
	if c1.Hash() != c2.Hash() || !c1.Equal(c2) {
		t.Fatalf("canonical conjunctions disagree on hash/equality")
	}
}

// TestConjImplies: syntactic conjunction entailment.
func TestConjImplies(t *testing.T) {
	u := newU()
	ab := NewConj(u, lit(0, false), lit(1, false))
	a := NewConj(u, lit(0, false))
	if !ab.Implies(a) {
		t.Error("a∧b must imply a")
	}
	if a.Implies(ab) {
		t.Error("a must not imply a∧b")
	}
	empty := NewConj(u)
	if !a.Implies(empty) {
		t.Error("anything implies true")
	}
}

// TestAndOrPruneContradictions: And removes syntactic complements.
func TestAndOrPruneContradictions(t *testing.T) {
	u := newU()
	d1 := DNF{NewConj(u, lit(0, false))}
	d2 := DNF{NewConj(u, lit(0, true))}
	if got := d1.And(d2); !got.IsFalse() {
		t.Fatalf("b0 ∧ ¬b0 = %s, want false", got)
	}
	or := d1.Or(d2)
	if len(or) != 2 {
		t.Fatalf("or lost disjuncts: %s", or)
	}
}

// TestConstants: boolean constants behave.
func TestConstants(t *testing.T) {
	u := newU()
	if !DTrue().IsTrue() || DTrue().IsFalse() {
		t.Error("DTrue wrong")
	}
	if !DFalse().IsFalse() || DFalse().IsTrue() {
		t.Error("DFalse wrong")
	}
	if ToDNF(True(), u).IsFalse() {
		t.Error("ToDNF(true) is false")
	}
	if !ToDNF(Not(True()), u).IsFalse() {
		t.Error("ToDNF(¬true) is not false")
	}
	if !ToDNF(And(), u).IsTrue() || !ToDNF(Or(), u).IsFalse() {
		t.Error("empty And/Or wrong")
	}
}

// TestFormulaString: renders readably (used by examples and docs).
func TestFormulaString(t *testing.T) {
	f := Or(And(L(mockPrim{0}), NegL(mockPrim{1})), L(mockPrim{2}))
	s := f.String()
	for _, want := range []string{"b0", "¬b1", "b2", "∨", "∧"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if DFalse().String() != "false" {
		t.Errorf("false renders as %q", DFalse().String())
	}
}

// TestRetain keeps the selected literals in canonical order. Indices refer
// to the canonical (key-sorted) literal order of Lits().
func TestRetain(t *testing.T) {
	u := newU()
	c := NewConj(u, lit(0, false), lit(1, true), lit(2, false))
	drop := -1
	for i, l := range c.Lits() {
		if l == lit(1, true) {
			drop = i
		}
	}
	r := c.Retain(func(i int) bool { return i != drop })
	if r.Size() != 2 {
		t.Fatalf("Retain size = %d", r.Size())
	}
	if r.Key() != NewConj(u, lit(0, false), lit(2, false)).Key() {
		t.Fatalf("Retain key = %q", r.Key())
	}
}

// TestSingletonLit detects exactly single-literal DNFs.
func TestSingletonLit(t *testing.T) {
	u := newU()
	d := DNF{NewConj(u, lit(1, false))}
	if l, ok := d.SingletonLit(); !ok || l != lit(1, false) {
		t.Fatalf("SingletonLit = %v %v", l, ok)
	}
	if _, ok := DTrue().SingletonLit(); ok {
		t.Error("true is not a singleton literal")
	}
	if _, ok := (DNF{NewConj(u, lit(0, false), lit(1, false))}).SingletonLit(); ok {
		t.Error("two-literal conj is not a singleton literal")
	}
}

// TestNegLitExpansion: a theory-provided expansion is applied by ToDNF.
func TestNegLitExpansion(t *testing.T) {
	u := NewUniverse(expandTheory{})
	d := ToDNF(Not(L(mockPrim{0})), u)
	// expandTheory says ¬b0 ≡ b1 ∨ b2.
	if len(d) != 2 {
		t.Fatalf("expansion not applied: %s", d)
	}
}

type expandTheory struct{ mockTheory }

func (expandTheory) NegLit(l Lit) ([]Lit, bool) {
	if l.P.(mockPrim).V == 0 && !l.Neg {
		return []Lit{lit(1, false), lit(2, false)}, true
	}
	return nil, false
}

// TestUniverseStats: the universe exposes interning size and counter
// snapshots, and TakeStats drains the deltas.
func TestUniverseStats(t *testing.T) {
	u := newU()
	d1 := DNF{NewConj(u, lit(0, false), lit(1, false))}
	d2 := DNF{NewConj(u, lit(2, false))}
	_ = d1.And(d2).Simplify()
	s := u.Stats()
	if s.Size != 3 {
		t.Fatalf("universe size = %d, want 3", s.Size)
	}
	if s.CubeProducts == 0 {
		t.Fatalf("And did not count cube products: %+v", s)
	}
	taken := u.TakeStats()
	if taken.CubeProducts != s.CubeProducts {
		t.Fatalf("TakeStats delta %d, want %d", taken.CubeProducts, s.CubeProducts)
	}
	if after := u.Stats(); after.CubeProducts != 0 || after.Size != 3 {
		t.Fatalf("TakeStats must reset counters but keep size: %+v", after)
	}
}
