package formula

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tracer/internal/intern"
	"tracer/internal/uset"
)

// Universe interns the literals of one analysis instance to dense uint32 IDs
// and memoizes the theory's Implies/Contradicts relations as per-literal
// bitset rows. Every Conj built against a Universe stores sorted IDs plus a
// precomputed 64-bit hash, so merging, deduplication, entailment, and
// contradiction pruning are pure integer/bitset operations — no string key is
// built on the And/Or/Simplify/DropK hot paths (Key and String materialize
// lazily for debugging and external APIs).
//
// One Universe is shared per analysis instance across CEGAR iterations and
// across the batch solver's backward jobs: interning takes a short write
// lock, while the hot read paths go through an atomically published
// copy-on-write snapshot (view), so concurrent workers reuse IDs and memo
// rows without locking. Published snapshots and memo rows are never mutated
// in place. All ordering decisions (canonical literal order, SortBySize
// tie-breaks) are made against the interned keys, which depend only on the
// literals themselves — never on interning order — so results and events
// stay byte-identical across worker counts.
type Universe struct {
	th Theory

	mu    sync.RWMutex    // guards byLit, keys, and view publication
	byLit map[Lit]uint32  // exact Lit values already interned (fast path)
	keys  *intern.Strings // canonical key → dense ID (defines the ID space)
	view  atomic.Pointer[uview]

	// Telemetry, surfaced via Stats/TakeStats as formula.* obs counters.
	products    atomic.Int64 // cube products attempted by DNF.And
	subsumes    atomic.Int64 // full subsumption checks executed in Simplify
	sigFiltered atomic.Int64 // Simplify candidate pairs dismissed by signature/watch filters
	sigSkips    atomic.Int64 // And/Or contradiction+entailment scans skipped by capability signatures
	memoHits    atomic.Int64 // theory-memo row reads served from the snapshot
	memoFills   atomic.Int64 // (a, b) theory pairs computed into memo/capability rows
}

// uview is one immutable snapshot of the universe. Slices are shared between
// snapshots; only the snapshot that owns a slice header may have appended to
// it before publication. The row cells are shared across every snapshot, so
// filling a memo row never needs to republish the view — only interning does.
type uview struct {
	lits  []Lit      // lits[id] = representative literal (first to claim the key)
	keys  []string   // keys[id] = lits[id].Key()
	order []uint32   // ids in ascending key order
	rank  []int32    // rank[id] = position of id in order
	imp   []*rowCell // imp[b] = {a : a == b or th.Implies(lits[a], lits[b])}
	con   []*rowCell // con[b] = {a : complement or th.Contradicts either way}
	caps  []*capCell // caps[a] = 64-bit signature compression of a's forward relations
}

// rowCell holds one literal's memo row. The cell itself is allocated once at
// intern time and shared by every subsequent snapshot; the row data it points
// to is immutable (extension swaps in a grown copy), so readers load it
// lock-free and never observe a partially filled row.
type rowCell struct{ p atomic.Pointer[rowData] }

// rowData is an immutable filled prefix of a memo row: bits holds the
// relation against every id < n.
type rowData struct {
	bits uset.Words
	n    uint32
}

// capCell holds one literal's capability signature: the 64-bit compression
// (bit b&63 per related id b) of its *forward* theory relations. Like memo
// rows, the cell is allocated at intern time, shared by every snapshot, and
// republished as an immutable capData when extended.
type capCell struct{ p atomic.Pointer[capData] }

// capData is one literal a's capability signature covering every id < n.
// imp compresses {b ≠ a : th.Implies(lits[a], lits[b])} — the ids a entails,
// diagonal excluded by index so signature tests stay exact under bit
// collisions; con compresses {b ≠ a : a and b are complementary or
// contradict} (the relation is symmetric). Because bits only identify ids
// modulo 64, a signature test is a necessary condition: "no bit overlap"
// proves the relation absent, overlap falls back to the exact bitset rows.
// The n field versions the signature against universe growth — a stale
// signature would miss relations with later-interned literals, so readers
// must check n ≥ their snapshot size, exactly as with rowData.
type capData struct {
	imp, con uint64
	n        uint32
}

// NewUniverse returns an empty universe over the given theory. The theory's
// methods must be pure functions of their literal arguments (both client
// theories are stateless values), as results are memoized for the lifetime
// of the universe.
func NewUniverse(th Theory) *Universe {
	u := &Universe{th: th, byLit: make(map[Lit]uint32), keys: intern.NewStrings()}
	u.view.Store(&uview{})
	return u
}

// Theory returns the theory the universe reasons over.
func (u *Universe) Theory() Theory { return u.th }

// Len reports the number of interned literals.
func (u *Universe) Len() int { return len(u.view.Load().lits) }

// LitID interns l and returns its dense ID. Distinct Lit values with the
// same canonical key (Lit.Key) share an ID; the first value to claim a key
// becomes the representative returned by Lit(id), mirroring the seed
// kernel's dedup-by-key semantics.
func (u *Universe) LitID(l Lit) uint32 {
	u.mu.RLock()
	id, ok := u.byLit[l]
	u.mu.RUnlock()
	if ok {
		return id
	}
	return u.internSlow(l)
}

// Lit returns the representative literal for a previously interned ID.
func (u *Universe) Lit(id uint32) Lit { return u.view.Load().lits[id] }

func (u *Universe) internSlow(l Lit) uint32 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if id, ok := u.byLit[l]; ok {
		return id
	}
	key := l.Key()
	if id, ok := u.keys.Lookup(key); ok {
		u.byLit[l] = uint32(id)
		return uint32(id)
	}
	id := uint32(u.keys.ID(key))
	u.byLit[l] = id
	v := u.view.Load()
	n := len(v.lits)
	pos := sort.Search(n, func(i int) bool { return v.keys[v.order[i]] > key })
	nv := &uview{
		lits:  append(append(make([]Lit, 0, n+1), v.lits...), l),
		keys:  append(append(make([]string, 0, n+1), v.keys...), key),
		order: make([]uint32, 0, n+1),
		rank:  make([]int32, n+1),
		imp:   append(append(make([]*rowCell, 0, n+1), v.imp...), &rowCell{}),
		con:   append(append(make([]*rowCell, 0, n+1), v.con...), &rowCell{}),
		caps:  append(append(make([]*capCell, 0, n+1), v.caps...), &capCell{}),
	}
	nv.order = append(nv.order, v.order[:pos]...)
	nv.order = append(nv.order, id)
	nv.order = append(nv.order, v.order[pos:]...)
	for i, oid := range nv.order {
		nv.rank[oid] = int32(i)
	}
	u.view.Store(nv)
	return id
}

// impRow returns b's entailment memo row, covering every ID of the caller's
// snapshot v. The common case loads the shared row cell lock-free; a stale or
// missing row is suffix-extended under the write lock and swapped into the
// cell — the view itself is untouched, so fills cost one small allocation.
func (u *Universe) impRow(v *uview, b uint32) uset.Words {
	if rd := v.imp[b].p.Load(); rd != nil && rd.n >= uint32(len(v.lits)) {
		u.memoHits.Add(1)
		return rd.bits
	}
	return u.fillRow(b, true)
}

// conRow is impRow for the contradiction relation.
func (u *Universe) conRow(v *uview, b uint32) uset.Words {
	if rd := v.con[b].p.Load(); rd != nil && rd.n >= uint32(len(v.lits)) {
		u.memoHits.Add(1)
		return rd.bits
	}
	return u.fillRow(b, false)
}

// impRowBatch and conRowBatch are the hot-loop variants of impRow/conRow:
// instead of one atomic add on the shared hit counter per row read, they
// bump a caller-local tally that the caller flushes once per scan. The
// counter value is identical; the atomic traffic drops by the scan length.
func (u *Universe) impRowBatch(v *uview, b uint32, hits *int64) uset.Words {
	if rd := v.imp[b].p.Load(); rd != nil && rd.n >= uint32(len(v.lits)) {
		*hits++
		return rd.bits
	}
	return u.fillRow(b, true)
}

func (u *Universe) conRowBatch(v *uview, b uint32, hits *int64) uset.Words {
	if rd := v.con[b].p.Load(); rd != nil && rd.n >= uint32(len(v.lits)) {
		*hits++
		return rd.bits
	}
	return u.fillRow(b, false)
}

// capOf returns a's capability signature, covering every ID of the caller's
// snapshot v. The common case is one lock-free pointer load (cheaper than a
// row read: no Words indexing, no counter update); stale signatures are
// suffix-extended under the write lock like memo rows.
func (u *Universe) capOf(v *uview, a uint32) (imp, con uint64) {
	if cd := v.caps[a].p.Load(); cd != nil && cd.n >= uint32(len(v.lits)) {
		return cd.imp, cd.con
	}
	return u.fillCap(a)
}

func (u *Universe) fillCap(a uint32) (uint64, uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	v := u.view.Load()
	n := uint32(len(v.lits))
	cell := v.caps[a]
	var covered uint32
	var imp, con uint64
	if cd := cell.p.Load(); cd != nil {
		if cd.n >= n {
			return cd.imp, cd.con
		}
		covered, imp, con = cd.n, cd.imp, cd.con
	}
	la := v.lits[a]
	for b := covered; b < n; b++ {
		if b == a {
			continue
		}
		lb := v.lits[b]
		if u.th.Implies(la, lb) {
			imp |= 1 << (b & 63)
		}
		if (la.Neg != lb.Neg && la.P == lb.P) ||
			u.th.Contradicts(la, lb) || u.th.Contradicts(lb, la) {
			con |= 1 << (b & 63)
		}
	}
	u.memoFills.Add(int64(n - covered))
	cell.p.Store(&capData{imp: imp, con: con, n: n})
	return imp, con
}

func (u *Universe) fillRow(b uint32, imp bool) uset.Words {
	u.mu.Lock()
	defer u.mu.Unlock()
	v := u.view.Load()
	n := uint32(len(v.lits))
	cell := v.con[b]
	if imp {
		cell = v.imp[b]
	}
	var covered uint32
	var old uset.Words
	if rd := cell.p.Load(); rd != nil {
		if rd.n >= n {
			return rd.bits
		}
		covered, old = rd.n, rd.bits
	}
	row := old.Grow(int(n)) // copies, so the published prefix stays immutable
	lb := v.lits[b]
	for a := covered; a < n; a++ {
		la := v.lits[a]
		hit := false
		if imp {
			hit = a == b || u.th.Implies(la, lb)
		} else {
			hit = (la.Neg != lb.Neg && la.P == lb.P) ||
				u.th.Contradicts(la, lb) || u.th.Contradicts(lb, la)
		}
		if hit {
			row.SetBit(a)
		}
	}
	u.memoFills.Add(int64(n - covered))
	cell.p.Store(&rowData{bits: row, n: n})
	return row
}

// joined materializes the "&"-joined key of an id list (the seed kernel's
// conjunction identity). Debug/API paths only.
func (v *uview) joined(ids []uint32) string {
	switch len(ids) {
	case 0:
		return ""
	case 1:
		return v.keys[ids[0]]
	}
	n := len(ids) - 1
	for _, id := range ids {
		n += len(v.keys[id])
	}
	var b strings.Builder
	b.Grow(n)
	for i, id := range ids {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(v.keys[id])
	}
	return b.String()
}

// lessJoined reports joined(a) < joined(b) without materializing either
// string. While per-position ids agree the joined strings agree (keys are
// unique per id); the first differing position decides by byte comparison,
// treating a conjunction's next "&" separator (or its end) against the
// longer key's continuation. The one ambiguous case — a key that is a prefix
// of the other and a continuation byte equal to '&' — falls back to
// materialized suffixes; client keys never contain '&'.
func (v *uview) lessJoined(a, b []uint32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		ka, kb := v.keys[a[i]], v.keys[b[i]]
		m := len(ka)
		if len(kb) < m {
			m = len(kb)
		}
		for j := 0; j < m; j++ {
			if ka[j] != kb[j] {
				return ka[j] < kb[j]
			}
		}
		// ids differ, so the keys differ: one is a proper prefix of the other.
		if len(ka) < len(kb) {
			if i+1 >= len(a) {
				return true // joined(a) is a strict prefix of joined(b)
			}
			if kb[m] != '&' {
				return '&' < kb[m]
			}
		} else {
			if i+1 >= len(b) {
				return false
			}
			if ka[m] != '&' {
				return ka[m] < '&'
			}
		}
		return v.joined(a[i:]) < v.joined(b[i:])
	}
	return len(a) < len(b)
}

// UniverseStats is a snapshot of a universe's telemetry, surfaced as the
// formula.* obs counters (see internal/obs and ARCHITECTURE.md).
type UniverseStats struct {
	Size              int   // interned literals (gauge)
	CubeProducts      int64 // cube products attempted by DNF.And
	SubsumptionChecks int64 // full subsumption checks executed in Simplify
	SigFiltered       int64 // Simplify candidate pairs dismissed before a full check
	SigSkips          int64 // And/Or contradiction+entailment scans skipped by signatures
	TheoryMemoHits    int64 // memo row reads served without theory calls
	TheoryMemoFills   int64 // theory pairs evaluated into memo/capability rows
}

// Stats reads the counters without resetting them.
func (u *Universe) Stats() UniverseStats {
	return UniverseStats{
		Size:              u.Len(),
		CubeProducts:      u.products.Load(),
		SubsumptionChecks: u.subsumes.Load(),
		SigFiltered:       u.sigFiltered.Load(),
		SigSkips:          u.sigSkips.Load(),
		TheoryMemoHits:    u.memoHits.Load(),
		TheoryMemoFills:   u.memoFills.Load(),
	}
}

// TakeStats reads and resets the counters (Size is not reset — it is a
// gauge). Flush hooks use it so repeated flushes report deltas.
func (u *Universe) TakeStats() UniverseStats {
	return UniverseStats{
		Size:              u.Len(),
		CubeProducts:      u.products.Swap(0),
		SubsumptionChecks: u.subsumes.Swap(0),
		SigFiltered:       u.sigFiltered.Swap(0),
		SigSkips:          u.sigSkips.Swap(0),
		TheoryMemoHits:    u.memoHits.Swap(0),
		TheoryMemoFills:   u.memoFills.Swap(0),
	}
}
